/**
 * @file
 * Unit and property tests for the mesh topology and MC placements.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "noc/topology.hh"

namespace tenoc
{
namespace
{

TopologyParams
baseParams()
{
    TopologyParams p;
    p.rows = 6;
    p.cols = 6;
    p.numMcs = 8;
    return p;
}

TEST(Topology, CoordinateRoundTrip)
{
    Topology t(baseParams());
    for (unsigned y = 0; y < 6; ++y) {
        for (unsigned x = 0; x < 6; ++x) {
            const NodeId n = t.nodeAt(x, y);
            EXPECT_EQ(t.xOf(n), x);
            EXPECT_EQ(t.yOf(n), y);
        }
    }
    EXPECT_EQ(t.numNodes(), 36u);
}

TEST(Topology, NeighborsAndEdges)
{
    Topology t(baseParams());
    const NodeId c = t.nodeAt(2, 3);
    EXPECT_EQ(t.neighbor(c, DIR_WEST), t.nodeAt(1, 3));
    EXPECT_EQ(t.neighbor(c, DIR_EAST), t.nodeAt(3, 3));
    EXPECT_EQ(t.neighbor(c, DIR_NORTH), t.nodeAt(2, 2));
    EXPECT_EQ(t.neighbor(c, DIR_SOUTH), t.nodeAt(2, 4));
    EXPECT_EQ(t.neighbor(t.nodeAt(0, 0), DIR_WEST), INVALID_NODE);
    EXPECT_EQ(t.neighbor(t.nodeAt(0, 0), DIR_NORTH), INVALID_NODE);
    EXPECT_EQ(t.neighbor(t.nodeAt(5, 5), DIR_EAST), INVALID_NODE);
    EXPECT_EQ(t.neighbor(t.nodeAt(5, 5), DIR_SOUTH), INVALID_NODE);
}

TEST(Topology, OppositeDirections)
{
    EXPECT_EQ(opposite(DIR_WEST), DIR_EAST);
    EXPECT_EQ(opposite(DIR_EAST), DIR_WEST);
    EXPECT_EQ(opposite(DIR_NORTH), DIR_SOUTH);
    EXPECT_EQ(opposite(DIR_SOUTH), DIR_NORTH);
}

TEST(TopologyDeath, OppositeRejectsPortIndices)
{
    // Regression: opposite() used to map any non-direction input to
    // DIR_WEST, turning port-arithmetic bugs into silent mis-wiring.
    EXPECT_DEATH({ opposite(static_cast<Direction>(PORT_EJECT)); },
                 "non-direction port index");
    EXPECT_DEATH({ opposite(static_cast<Direction>(7)); },
                 "non-direction port index");
}

TEST(TopologyDeath, DirNameRejectsPortIndices)
{
    EXPECT_EQ(std::string(dirName(DIR_SOUTH)), "S");
    EXPECT_EQ(std::string(dirName(PORT_EJECT)), "EJ");
    EXPECT_DEATH({ dirName(PORT_EJECT + 1); },
                 "non-direction port index");
}

TEST(Topology, TorusNeighborsWrap)
{
    auto p = baseParams();
    p.kind = TopoKind::TORUS;
    Topology t(p);
    EXPECT_TRUE(t.isTorus());
    // Interior links match the mesh...
    const NodeId c = t.nodeAt(2, 3);
    EXPECT_EQ(t.neighbor(c, DIR_EAST), t.nodeAt(3, 3));
    // ...and edge routers close into rings instead of dead-ending.
    EXPECT_EQ(t.neighbor(t.nodeAt(0, 0), DIR_WEST), t.nodeAt(5, 0));
    EXPECT_EQ(t.neighbor(t.nodeAt(0, 0), DIR_NORTH), t.nodeAt(0, 5));
    EXPECT_EQ(t.neighbor(t.nodeAt(5, 5), DIR_EAST), t.nodeAt(0, 5));
    EXPECT_EQ(t.neighbor(t.nodeAt(5, 5), DIR_SOUTH), t.nodeAt(5, 0));
}

TEST(Topology, TorusHopDistanceUsesWrapLinks)
{
    auto p = baseParams();
    p.kind = TopoKind::TORUS;
    Topology t(p);
    // Opposite corners are 1+1 hops around the wrap, not 5+5 across.
    EXPECT_EQ(t.hopDistance(t.nodeAt(0, 0), t.nodeAt(5, 5)), 2u);
    // Mid-ring pairs fold to min(forward, backward) per dimension.
    EXPECT_EQ(t.hopDistance(t.nodeAt(0, 2), t.nodeAt(4, 2)), 2u);
    Topology mesh(baseParams());
    EXPECT_EQ(mesh.hopDistance(mesh.nodeAt(0, 0), mesh.nodeAt(5, 5)),
              10u);
}

TEST(Topology, ConcentrationIsStored)
{
    auto p = baseParams();
    p.concentration = 4;
    Topology t(p);
    EXPECT_EQ(t.concentration(), 4u);
    EXPECT_EQ(t.numNodes(), 36u); // routers, not terminals
}

TEST(TopologyDeath, ZeroConcentrationIsRejected)
{
    auto p = baseParams();
    p.concentration = 0;
    EXPECT_EXIT({ Topology t(p); }, ::testing::ExitedWithCode(1),
                "concentration must be >= 1");
}

TEST(TopologyDeath, TorusCheckerboardIsRejected)
{
    auto p = baseParams();
    p.kind = TopoKind::TORUS;
    p.placement = McPlacement::CHECKERBOARD;
    p.checkerboardRouters = true;
    EXPECT_EXIT({ Topology t(p); }, ::testing::ExitedWithCode(1),
                "checkerboard");
}

TEST(Topology, TopBottomPlacement)
{
    Topology t(baseParams());
    EXPECT_EQ(t.mcNodes().size(), 8u);
    EXPECT_EQ(t.computeNodes().size(), 28u);
    for (NodeId mc : t.mcNodes()) {
        const unsigned y = t.yOf(mc);
        EXPECT_TRUE(y == 0 || y == 5) << "MC not on top/bottom row";
    }
}

TEST(Topology, CheckerboardPlacementUsesOddParityCells)
{
    auto p = baseParams();
    p.placement = McPlacement::CHECKERBOARD;
    p.checkerboardRouters = true;
    Topology t(p);
    for (NodeId mc : t.mcNodes()) {
        EXPECT_EQ(Topology::parity(t.xOf(mc), t.yOf(mc)), 1u);
        EXPECT_TRUE(t.isHalfRouter(mc));
    }
}

TEST(Topology, CheckerboardPlacementIsStaggered)
{
    auto p = baseParams();
    p.placement = McPlacement::CHECKERBOARD;
    Topology t(p);
    // MCs spread over many rows (not packed on two rows like TB).
    std::set<unsigned> rows;
    for (NodeId mc : t.mcNodes())
        rows.insert(t.yOf(mc));
    EXPECT_GE(rows.size(), 5u);
}

TEST(Topology, HalfRouterPattern)
{
    auto p = baseParams();
    p.checkerboardRouters = true;
    p.placement = McPlacement::CHECKERBOARD;
    Topology t(p);
    unsigned halves = 0;
    for (NodeId n = 0; n < t.numNodes(); ++n) {
        EXPECT_EQ(t.isHalfRouter(n),
                  Topology::parity(t.xOf(n), t.yOf(n)) == 1);
        halves += t.isHalfRouter(n);
    }
    EXPECT_EQ(halves, 18u);
}

TEST(Topology, NoHalfRoutersByDefault)
{
    Topology t(baseParams());
    for (NodeId n = 0; n < t.numNodes(); ++n)
        EXPECT_FALSE(t.isHalfRouter(n));
}

TEST(Topology, HopDistance)
{
    Topology t(baseParams());
    EXPECT_EQ(t.hopDistance(t.nodeAt(0, 0), t.nodeAt(5, 5)), 10u);
    EXPECT_EQ(t.hopDistance(t.nodeAt(2, 3), t.nodeAt(2, 3)), 0u);
    EXPECT_EQ(t.hopDistance(t.nodeAt(1, 1), t.nodeAt(4, 0)), 4u);
}

TEST(Topology, CustomPlacement)
{
    auto p = baseParams();
    p.placement = McPlacement::CUSTOM;
    p.numMcs = 2;
    p.customMcs = {{0, 0}, {5, 5}};
    Topology t(p);
    EXPECT_TRUE(t.isMc(t.nodeAt(0, 0)));
    EXPECT_TRUE(t.isMc(t.nodeAt(5, 5)));
    EXPECT_EQ(t.computeNodes().size(), 34u);
}

TEST(TopologyDeath, TbPlacementWithHalfRoutersIsRejected)
{
    auto p = baseParams();
    p.placement = McPlacement::TOP_BOTTOM;
    p.checkerboardRouters = true;
    // Some TB MCs land on full-router (even-parity) cells, which would
    // make checkerboard routing infeasible (Sec. IV-A).
    EXPECT_EXIT({ Topology t(p); }, ::testing::ExitedWithCode(1),
                "not on a half-router cell");
}

TEST(TopologyDeath, DuplicateCustomMcPanics)
{
    auto p = baseParams();
    p.placement = McPlacement::CUSTOM;
    p.numMcs = 2;
    p.customMcs = {{1, 1}, {1, 1}};
    EXPECT_DEATH({ Topology t(p); }, "duplicate MC");
}

TEST(Topology, RenderShowsKindsAndPlacement)
{
    auto count = [](const std::string &s, char c) {
        return std::count(s.begin(), s.end(), c);
    };
    Topology tb(baseParams());
    const std::string tb_art = renderTopology(tb);
    EXPECT_EQ(count(tb_art, 'M'), 8);
    EXPECT_EQ(count(tb_art, 'C'), 28);
    EXPECT_EQ(count(tb_art, 'm'), 0);

    auto p = baseParams();
    p.placement = McPlacement::CHECKERBOARD;
    p.checkerboardRouters = true;
    Topology cb(p);
    const std::string cb_art = renderTopology(cb);
    EXPECT_EQ(count(cb_art, 'm'), 8);  // MCs on half-routers
    EXPECT_EQ(count(cb_art, 'c'), 10); // compute half-routers
    EXPECT_EQ(count(cb_art, 'C'), 18); // compute full-routers
    EXPECT_EQ(count(cb_art, 'M'), 0);
}

/** Generic checkerboard placement must work for other mesh sizes. */
class TopologySizeTest
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned,
                                                 unsigned>>
{};

TEST_P(TopologySizeTest, CheckerboardPlacementValidEverywhere)
{
    auto [rows, cols, mcs] = GetParam();
    TopologyParams p;
    p.rows = rows;
    p.cols = cols;
    p.numMcs = mcs;
    p.placement = McPlacement::CHECKERBOARD;
    p.checkerboardRouters = true;
    Topology t(p);
    EXPECT_EQ(t.mcNodes().size(), mcs);
    for (NodeId mc : t.mcNodes())
        EXPECT_TRUE(t.isHalfRouter(mc));
}

INSTANTIATE_TEST_SUITE_P(Sizes, TopologySizeTest,
                         ::testing::Values(
                             std::tuple{4u, 4u, 4u},
                             std::tuple{6u, 6u, 8u},
                             std::tuple{8u, 8u, 8u},
                             std::tuple{8u, 8u, 16u},
                             std::tuple{10u, 10u, 16u},
                             std::tuple{5u, 7u, 6u}));

} // namespace
} // namespace tenoc
