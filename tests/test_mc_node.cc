/**
 * @file
 * Tests for the MC node (L2 bank + FR-FCFS DRAM + reply path) using a
 * scripted network.
 */

#include <gtest/gtest.h>

#include <deque>

#include "accel/mc_node.hh"

namespace tenoc
{
namespace
{

/** Minimal network stub capturing injected replies. */
class FakeNet : public Network
{
  public:
    FakeNet() : topo_(TopologyParams{}), stats_(topo_.numNodes()) {}

    const Topology &topology() const override { return topo_; }
    unsigned flitBytes() const override { return 16; }

    bool
    canInject(NodeId, int) const override
    {
        return space > 0;
    }

    unsigned injectSpace(NodeId, int) const override { return space; }

    void
    inject(PacketPtr pkt, Cycle) override
    {
        ASSERT_GT(space, 0u);
        --space;
        injected.push_back(std::move(pkt));
    }

    void setSink(NodeId, PacketSink *) override {}
    void cycle(Cycle) override {}
    bool drained() const override { return true; }
    NetStats &stats() override { return stats_; }

    unsigned space = 8;
    std::vector<PacketPtr> injected;

  private:
    Topology topo_;
    NetStats stats_;
};

McNodeParams
mcParams(double l2_hit = 0.0)
{
    McNodeParams p;
    p.l2.mode = CacheParams::Mode::PROFILE;
    p.l2.profileHitRate = l2_hit;
    p.l2.sizeBytes = 128 * 1024;
    p.l2.ways = 8;
    return p;
}

PacketPtr
request(NodeId src, MemOp op, Addr addr)
{
    auto pkt = makePacket();
    pkt->src = src;
    pkt->op = op;
    pkt->addr = addr;
    pkt->protoClass = 0;
    return pkt;
}

/** Drives both clock domains in the 602/1107 ratio. */
void
run(McNode &mc, Cycle icnt_cycles)
{
    static Cycle icnt = 0;
    static Cycle mem = 0;
    for (Cycle i = 0; i < icnt_cycles; ++i) {
        mc.memCycle(mem++);
        mc.icntCycle(icnt++);
        if (i % 2 == 0)
            mc.memCycle(mem++); // ~1.84 mem cycles per icnt cycle
    }
}

TEST(McNode, ReadMissGoesToDramAndReplies)
{
    FakeNet net;
    McNode mc(3, 0, mcParams(0.0), net, 1);
    ASSERT_TRUE(mc.tryReserve(*request(7, MemOp::READ_REQUEST, 0x40)));
    mc.deliver(request(7, MemOp::READ_REQUEST, 0x40), 0);
    run(mc, 200);
    ASSERT_EQ(net.injected.size(), 1u);
    EXPECT_EQ(net.injected[0]->op, MemOp::READ_REPLY);
    EXPECT_EQ(net.injected[0]->dst, 7u);
    EXPECT_EQ(net.injected[0]->src, 3u);
    EXPECT_EQ(net.injected[0]->addr, 0x40u);
    EXPECT_EQ(net.injected[0]->protoClass, 1);
    EXPECT_TRUE(mc.idle());
}

TEST(McNode, L2HitRepliesWithoutDram)
{
    FakeNet net;
    McNode mc(3, 0, mcParams(1.0), net, 2);
    mc.tryReserve(*request(5, MemOp::READ_REQUEST, 0x80));
    mc.deliver(request(5, MemOp::READ_REQUEST, 0x80), 0);
    run(mc, 40);
    ASSERT_EQ(net.injected.size(), 1u);
    EXPECT_EQ(mc.dram().servedRequests(), 0u);
}

TEST(McNode, WritesAreFireAndForget)
{
    FakeNet net;
    McNode mc(3, 0, mcParams(0.0), net, 3);
    mc.tryReserve(*request(5, MemOp::WRITE_REQUEST, 0x100));
    mc.deliver(request(5, MemOp::WRITE_REQUEST, 0x100), 0);
    run(mc, 300);
    EXPECT_TRUE(net.injected.empty()); // no reply for writes
    EXPECT_EQ(mc.dram().servedRequests(), 1u);
    EXPECT_TRUE(mc.idle());
}

TEST(McNode, InputQueueBackpressure)
{
    FakeNet net;
    auto params = mcParams(0.0);
    params.inputQueueCap = 2;
    McNode mc(3, 0, params, net, 4);
    EXPECT_TRUE(mc.tryReserve(*request(1, MemOp::READ_REQUEST, 0)));
    EXPECT_TRUE(mc.tryReserve(*request(1, MemOp::READ_REQUEST, 64)));
    EXPECT_FALSE(mc.tryReserve(*request(1, MemOp::READ_REQUEST, 128)));
    mc.deliver(request(1, MemOp::READ_REQUEST, 0), 0);
    // Delivery converts a reservation into queue occupancy; capacity
    // frees only once the L2 consumes the request.
    EXPECT_FALSE(mc.tryReserve(*request(1, MemOp::READ_REQUEST, 128)));
    run(mc, 5);
    EXPECT_TRUE(mc.tryReserve(*request(1, MemOp::READ_REQUEST, 128)));
}

TEST(McNode, StallCountedWhenNetworkBlocked)
{
    FakeNet net;
    net.space = 0; // reply network never accepts
    McNode mc(3, 0, mcParams(1.0), net, 5);
    mc.tryReserve(*request(5, MemOp::READ_REQUEST, 0));
    mc.deliver(request(5, MemOp::READ_REQUEST, 0), 0);
    run(mc, 100);
    EXPECT_TRUE(net.injected.empty());
    EXPECT_GT(mc.stallFraction(), 0.5);
    net.space = 8;
    run(mc, 50);
    EXPECT_EQ(net.injected.size(), 1u);
}

TEST(McNode, ManyRequestsAllServed)
{
    FakeNet net;
    net.space = 1u << 20;
    McNode mc(3, 0, mcParams(0.3), net, 6);
    unsigned delivered = 0;
    for (unsigned i = 0; i < 64; ++i) {
        auto pkt = request(static_cast<NodeId>(i % 28),
                           MemOp::READ_REQUEST, i * 64);
        if (mc.tryReserve(*pkt)) {
            mc.deliver(std::move(pkt), 0);
            ++delivered;
        }
        run(mc, 8);
    }
    run(mc, 3000);
    EXPECT_EQ(net.injected.size(), delivered);
    EXPECT_TRUE(mc.idle());
    EXPECT_GT(mc.requestsServed(), 0u);
}

TEST(McNodeDeath, ReplyDeliveredToMcPanics)
{
    FakeNet net;
    McNode mc(3, 0, mcParams(0.0), net, 7);
    auto pkt = request(1, MemOp::READ_REPLY, 0);
    mc.tryReserve(*pkt);
    EXPECT_DEATH(mc.deliver(std::move(pkt), 0), "non-request");
}

} // namespace
} // namespace tenoc
