/**
 * @file
 * Tests for the SIMT core model with a scripted memory port.
 */

#include <gtest/gtest.h>

#include <deque>

#include "gpu/simt_core.hh"

namespace tenoc
{
namespace
{

/** Memory port that answers reads after a fixed delay. */
class FakePort : public CoreMemPort
{
  public:
    bool
    canSendRequests(unsigned n) const override
    {
        return accepting && n <= 64;
    }

    void
    sendRead(Addr line) override
    {
        ++reads;
        pending.push_back(line);
    }

    void
    sendWrite(Addr line) override
    {
        (void)line;
        ++writes;
    }

    /** Delivers up to `n` oldest replies to `core`. */
    void
    replyOldest(SimtCore &core, unsigned n)
    {
        while (n-- && !pending.empty()) {
            core.onReadReply(pending.front());
            pending.pop_front();
        }
    }

    bool accepting = true;
    unsigned reads = 0;
    unsigned writes = 0;
    std::deque<Addr> pending;
};

KernelProfile
computeProfile()
{
    KernelProfile p;
    p.abbr = "TEST";
    p.warpsPerCore = 4;
    p.warpInstsPerWarp = 100;
    p.memFraction = 0.0; // pure ALU
    return p;
}

TEST(SimtCore, PureComputeRunsAtPeak)
{
    FakePort port;
    SimtCoreParams params;
    const auto prof = computeProfile();
    SimtCore core(0, params, prof, port, 1);
    Cycle t = 0;
    while (!core.done() && t < 100000)
        core.cycle(t++);
    ASSERT_TRUE(core.done());
    EXPECT_EQ(core.warpInstsIssued(), 400u);
    EXPECT_EQ(core.scalarInsts(), 400u * 32u);
    // One warp instruction per 4 cycles: 1600 cycles + epsilon.
    EXPECT_NEAR(static_cast<double>(t), 1600.0, 20.0);
    EXPECT_EQ(port.reads, 0u);
}

TEST(SimtCore, IssueIntervalFromWidths)
{
    SimtCoreParams p;
    EXPECT_EQ(p.issueInterval(), 4u); // 32-thread warp on 8 lanes
}

TEST(SimtCore, MemoryInstructionsSendReads)
{
    FakePort port;
    SimtCoreParams params;
    auto prof = computeProfile();
    prof.memFraction = 0.5;
    prof.l1HitRate = 0.0;
    prof.avgLinesPerMemInst = 1.0;
    prof.maxPendingLines = 64;
    prof.writebackRate = 0.0;
    SimtCore core(0, params, prof, port, 2);
    Cycle t = 0;
    while (!core.done() && t < 1000000) {
        core.cycle(t++);
        port.replyOldest(core, 2);
    }
    ASSERT_TRUE(core.done());
    // About half the 400 instructions are loads that all miss.
    EXPECT_NEAR(static_cast<double>(port.reads), 200.0, 40.0);
    EXPECT_EQ(port.writes, 0u);
    EXPECT_NEAR(static_cast<double>(core.memInsts()),
                static_cast<double>(port.reads), 1.0);
}

TEST(SimtCore, WritebacksEmitWrites)
{
    FakePort port;
    SimtCoreParams params;
    auto prof = computeProfile();
    prof.memFraction = 0.5;
    prof.l1HitRate = 0.0;
    prof.writebackRate = 1.0; // every miss evicts dirty
    prof.maxPendingLines = 64;
    SimtCore core(0, params, prof, port, 3);
    Cycle t = 0;
    while (!core.done() && t < 1000000) {
        core.cycle(t++);
        port.replyOldest(core, 4);
    }
    ASSERT_TRUE(core.done());
    EXPECT_EQ(port.writes, port.reads);
}

TEST(SimtCore, MlpLimitsOutstandingLines)
{
    FakePort port;
    SimtCoreParams params;
    auto prof = computeProfile();
    prof.warpsPerCore = 1;
    prof.memFraction = 1.0;
    prof.l1HitRate = 0.0;
    prof.avgLinesPerMemInst = 1.0;
    prof.maxPendingLines = 3;
    prof.writebackRate = 0.0;
    SimtCore core(0, params, prof, port, 4);
    // Never reply: the lone warp must stop after 3 outstanding lines.
    for (Cycle t = 0; t < 1000; ++t)
        core.cycle(t);
    EXPECT_EQ(port.reads, 3u);
    EXPECT_FALSE(core.done());
    // Replies unblock it.
    port.replyOldest(core, 3);
    for (Cycle t = 1000; t < 2000; ++t)
        core.cycle(t);
    EXPECT_GT(port.reads, 3u);
}

TEST(SimtCore, StallsWhenPortRefuses)
{
    FakePort port;
    port.accepting = false;
    SimtCoreParams params;
    auto prof = computeProfile();
    prof.warpsPerCore = 1;
    prof.memFraction = 1.0;
    prof.l1HitRate = 0.0;
    SimtCore core(0, params, prof, port, 5);
    for (Cycle t = 0; t < 400; ++t)
        core.cycle(t);
    EXPECT_EQ(port.reads, 0u);
    EXPECT_GT(core.stallSlots(), 50u);
    EXPECT_EQ(core.warpInstsIssued(), 0u);
}

TEST(SimtCore, StalledInstructionIsNotRedrawn)
{
    // The decoded instruction must survive structural stalls: once the
    // port opens, the same memory instruction issues (the instruction
    // mix cannot be biased by congestion).
    FakePort port;
    port.accepting = false;
    SimtCoreParams params;
    auto prof = computeProfile();
    prof.warpsPerCore = 1;
    prof.warpInstsPerWarp = 50;
    prof.memFraction = 0.5;
    prof.l1HitRate = 0.0;
    prof.maxPendingLines = 64;
    SimtCore core(0, params, prof, port, 6);
    for (Cycle t = 0; t < 100; ++t)
        core.cycle(t);
    port.accepting = true;
    Cycle t = 100;
    while (!core.done() && t < 100000) {
        core.cycle(t++);
        port.replyOldest(core, 2);
    }
    ASSERT_TRUE(core.done());
    // With 50 insts at memFraction 0.5 expect roughly half memory.
    EXPECT_NEAR(static_cast<double>(core.memInsts()), 25.0, 12.0);
}

TEST(SimtCore, OccupancyLimitedByProfileWarps)
{
    FakePort port;
    SimtCoreParams params;
    auto prof = computeProfile();
    prof.warpsPerCore = 64; // clamped to maxWarps = 32
    SimtCore core(0, params, prof, port, 7);
    Cycle t = 0;
    while (!core.done() && t < 1000000)
        core.cycle(t++);
    EXPECT_EQ(core.warpInstsIssued(), 32u * 100u);
}

TEST(SimtCore, DeterministicAcrossRuns)
{
    auto run_once = [] {
        FakePort port;
        SimtCoreParams params;
        auto prof = computeProfile();
        prof.memFraction = 0.3;
        prof.l1HitRate = 0.5;
        prof.maxPendingLines = 8;
        SimtCore core(0, params, prof, port, 42);
        Cycle t = 0;
        while (!core.done() && t < 1000000) {
            core.cycle(t++);
            port.replyOldest(core, 1);
        }
        return std::tuple{t, port.reads, port.writes};
    };
    EXPECT_EQ(run_once(), run_once());
}

} // namespace
} // namespace tenoc
