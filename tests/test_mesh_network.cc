/**
 * @file
 * Integration tests for the mesh network and the channel-sliced
 * double network.
 */

#include <gtest/gtest.h>

#include <map>

#include "noc/mesh_network.hh"

namespace tenoc
{
namespace
{

/** Collects delivered packets. */
struct Collector : PacketSink
{
    bool tryReserve(const Packet &) override { return true; }

    void
    deliver(PacketPtr pkt, Cycle now) override
    {
        delivered.emplace_back(now, std::move(pkt));
    }

    std::vector<std::pair<Cycle, PacketPtr>> delivered;
};

MeshNetworkParams
baseNet()
{
    MeshNetworkParams p;
    p.seed = 99;
    return p;
}

PacketPtr
makePkt(const Network &net, NodeId src, NodeId dst, MemOp op,
        int proto)
{
    auto pkt = makePacket();
    pkt->src = src;
    pkt->dst = dst;
    pkt->op = op;
    pkt->protoClass = proto;
    pkt->sizeFlits = net.packetFlits(op);
    pkt->sizeBytes = memOpBytes(op);
    return pkt;
}

TEST(MeshNetwork, DeliversSinglePacket)
{
    MeshNetwork net(baseNet());
    const auto &topo = net.topology();
    Collector sink;
    const NodeId src = topo.nodeAt(0, 0);
    const NodeId dst = topo.nodeAt(3, 4);
    net.setSink(dst, &sink);

    net.inject(makePkt(net, src, dst, MemOp::READ_REQUEST, 0), 0);
    for (Cycle t = 0; t < 100; ++t)
        net.cycle(t);
    ASSERT_EQ(sink.delivered.size(), 1u);
    EXPECT_TRUE(net.drained());
    EXPECT_EQ(net.stats().packetsInjected, 1u);
    EXPECT_EQ(net.stats().packetsEjected, 1u);
}

TEST(MeshNetwork, ZeroLoadLatencyMatchesPipeline)
{
    // 7 hops x (4-stage pipeline + 1-cycle channel) for a 1-flit
    // packet, plus ejection; Sec. III-B's 5-cycle-per-hop baseline.
    MeshNetwork net(baseNet());
    const auto &topo = net.topology();
    Collector sink;
    const NodeId src = topo.nodeAt(0, 0);
    const NodeId dst = topo.nodeAt(3, 4);
    net.setSink(dst, &sink);
    net.inject(makePkt(net, src, dst, MemOp::READ_REQUEST, 0), 0);
    for (Cycle t = 0; t < 100; ++t)
        net.cycle(t);
    const double lat = net.stats().netLatency.mean();
    const double hops = topo.hopDistance(src, dst);
    EXPECT_GE(lat, hops * 5.0);
    EXPECT_LE(lat, hops * 5.0 + 8.0);
}

TEST(MeshNetwork, MultiFlitPacketsArriveCompletely)
{
    MeshNetwork net(baseNet());
    const auto &topo = net.topology();
    Collector sink;
    const NodeId dst = topo.nodeAt(5, 5);
    net.setSink(dst, &sink);
    for (unsigned i = 0; i < 4; ++i) {
        net.inject(makePkt(net, topo.nodeAt(i, 0), dst,
                           MemOp::READ_REPLY, 1), 0);
    }
    for (Cycle t = 0; t < 300; ++t)
        net.cycle(t);
    EXPECT_EQ(sink.delivered.size(), 4u);
    EXPECT_EQ(net.stats().flitsEjected, 16u); // 4 x 4-flit replies
    EXPECT_TRUE(net.drained());
}

TEST(MeshNetwork, PacketsOnOneVcLaneStayOrdered)
{
    MeshNetworkParams p = baseNet();
    p.vcsPerClass = 1;
    MeshNetwork net(p);
    const auto &topo = net.topology();
    Collector sink;
    const NodeId src = topo.nodeAt(0, 0);
    const NodeId dst = topo.nodeAt(4, 4);
    net.setSink(dst, &sink);
    Cycle t = 0;
    for (unsigned i = 0; i < 5; ++i) {
        auto pkt = makePkt(net, src, dst, MemOp::READ_REQUEST, 0);
        pkt->tag = i;
        while (!net.canInject(src, 0))
            net.cycle(t++);
        net.inject(std::move(pkt), t);
    }
    for (Cycle e = t + 300; t < e; ++t)
        net.cycle(t);
    ASSERT_EQ(sink.delivered.size(), 5u);
    for (unsigned i = 0; i < 5; ++i)
        EXPECT_EQ(sink.delivered[i].second->tag, i);
}

TEST(MeshNetwork, ManyToFewStressAllDelivered)
{
    MeshNetworkParams p = baseNet();
    p.topo.placement = McPlacement::CHECKERBOARD;
    p.topo.checkerboardRouters = true;
    p.routing = "cr";
    MeshNetwork net(p);
    const auto &topo = net.topology();
    std::map<NodeId, Collector> sinks;
    for (NodeId n = 0; n < topo.numNodes(); ++n)
        net.setSink(n, &sinks[n]);

    Rng rng(3);
    Cycle t = 0;
    unsigned sent = 0;
    while (sent < 200) {
        for (NodeId core : topo.computeNodes()) {
            if (sent >= 200)
                break;
            if (net.canInject(core, 0)) {
                const NodeId mc = rng.pick(topo.mcNodes());
                net.inject(makePkt(net, core, mc,
                                   MemOp::READ_REQUEST, 0), t);
                ++sent;
            }
        }
        net.cycle(t++);
    }
    for (Cycle e = t + 2000; t < e && !net.drained(); ++t)
        net.cycle(t);
    EXPECT_TRUE(net.drained());
    std::size_t got = 0;
    for (NodeId mc : topo.mcNodes())
        got += sinks[mc].delivered.size();
    EXPECT_EQ(got, 200u);
}

TEST(MeshNetwork, SinkBackpressureHoldsPackets)
{
    struct Refuser : PacketSink
    {
        bool tryReserve(const Packet &) override { return allow; }
        void deliver(PacketPtr, Cycle) override { ++count; }
        bool allow = false;
        unsigned count = 0;
    };
    MeshNetwork net(baseNet());
    const auto &topo = net.topology();
    Refuser sink;
    const NodeId dst = topo.nodeAt(1, 0);
    net.setSink(dst, &sink);
    net.inject(makePkt(net, topo.nodeAt(0, 0), dst,
                       MemOp::READ_REQUEST, 0), 0);
    Cycle t = 0;
    for (; t < 100; ++t)
        net.cycle(t);
    EXPECT_EQ(sink.count, 0u);
    EXPECT_FALSE(net.drained());
    sink.allow = true;
    for (; t < 200; ++t)
        net.cycle(t);
    EXPECT_EQ(sink.count, 1u);
    EXPECT_TRUE(net.drained());
}

TEST(DoubleNetwork, SlicesByProtocolClass)
{
    MeshNetworkParams p = baseNet();
    p.topo.placement = McPlacement::CHECKERBOARD;
    p.topo.checkerboardRouters = true;
    p.routing = "cr";
    DoubleNetwork net(p);
    EXPECT_EQ(net.flitBytes(), 8u); // half-width slices
    EXPECT_EQ(net.packetFlits(MemOp::READ_REPLY), 8u);
    EXPECT_EQ(net.packetFlits(MemOp::READ_REQUEST), 1u);

    const auto &topo = net.topology();
    Collector core_sink;
    Collector mc_sink;
    const NodeId core = topo.computeNodes()[0];
    const NodeId mc = topo.mcNodes()[0];
    net.setSink(core, &core_sink);
    net.setSink(mc, &mc_sink);

    net.inject(makePkt(net, core, mc, MemOp::READ_REQUEST, 0), 0);
    net.inject(makePkt(net, mc, core, MemOp::READ_REPLY, 1), 0);
    for (Cycle t = 0; t < 200; ++t)
        net.cycle(t);
    EXPECT_EQ(mc_sink.delivered.size(), 1u);
    EXPECT_EQ(core_sink.delivered.size(), 1u);
    EXPECT_TRUE(net.drained());
    // Both slices share one stats block.
    EXPECT_EQ(net.stats().packetsEjected, 2u);
}

TEST(DoubleNetwork, InjectSpaceIsPerSlice)
{
    MeshNetworkParams p = baseNet();
    p.topo.placement = McPlacement::CHECKERBOARD;
    p.topo.checkerboardRouters = true;
    p.routing = "cr";
    DoubleNetwork net(p);
    const NodeId n = net.topology().computeNodes()[0];
    EXPECT_EQ(net.injectSpace(n, 0), p.ni.injQueueCap);
    EXPECT_EQ(net.injectSpace(n, 1), p.ni.injQueueCap);
}

TEST(NetStats, PerNodeRatesAndAcceptedBytes)
{
    NetStats s(4);
    s.cycles = 100;
    s.nodeInjectedFlits = {200, 0, 0, 0};
    s.nodeEjectedBytes = {0, 0, 400, 0};
    EXPECT_DOUBLE_EQ(s.injectionRate({0}), 2.0);
    EXPECT_DOUBLE_EQ(s.injectionRate({0, 1}), 1.0);
    EXPECT_DOUBLE_EQ(s.acceptedBytesPerCyclePerNode(),
                     400.0 / (100.0 * 4.0));
    NetStats empty(0);
    EXPECT_DOUBLE_EQ(empty.acceptedBytesPerCyclePerNode(), 0.0);
    EXPECT_DOUBLE_EQ(empty.injectionRate({}), 0.0);
}

TEST(MeshNetwork, AgePriorityIsDeterministicAndDelivers)
{
    MeshNetworkParams p = baseNet();
    p.agePriority = true;
    auto run_once = [&] {
        MeshNetwork net(p);
        const auto &topo = net.topology();
        Collector sink;
        for (NodeId mc : topo.mcNodes())
            net.setSink(mc, &sink);
        Rng rng(4);
        Cycle t = 0;
        unsigned sent = 0;
        while (sent < 60) {
            const NodeId core = rng.pick(topo.computeNodes());
            if (net.canInject(core, 0)) {
                net.inject(makePkt(net, core, rng.pick(topo.mcNodes()),
                                   MemOp::READ_REQUEST, 0), t);
                ++sent;
            }
            net.cycle(t++);
        }
        for (Cycle e = t + 1000; t < e && !net.drained(); ++t)
            net.cycle(t);
        EXPECT_TRUE(net.drained());
        EXPECT_EQ(sink.delivered.size(), 60u);
        return net.stats().netLatency.mean();
    };
    EXPECT_DOUBLE_EQ(run_once(), run_once());
}

TEST(MakeMeshNetwork, FactorySelectsKind)
{
    MeshNetworkParams p = baseNet();
    auto single = makeMeshNetwork(p, false);
    EXPECT_EQ(single->flitBytes(), 16u);
    p.topo.placement = McPlacement::CHECKERBOARD;
    p.topo.checkerboardRouters = true;
    p.routing = "cr";
    auto dbl = makeMeshNetwork(p, true);
    EXPECT_EQ(dbl->flitBytes(), 8u);
}

} // namespace
} // namespace tenoc
