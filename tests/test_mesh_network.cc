/**
 * @file
 * Integration tests for the mesh network and the channel-sliced
 * double network.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>

#include "common/rng.hh"
#include "noc/mesh_network.hh"
#include "noc/traffic.hh"

namespace tenoc
{
namespace
{

/** Collects delivered packets. */
struct Collector : PacketSink
{
    bool tryReserve(const Packet &) override { return true; }

    void
    deliver(PacketPtr pkt, Cycle now) override
    {
        delivered.emplace_back(now, std::move(pkt));
    }

    std::vector<std::pair<Cycle, PacketPtr>> delivered;
};

MeshNetworkParams
baseNet()
{
    MeshNetworkParams p;
    p.seed = 99;
    return p;
}

PacketPtr
makePkt(const Network &net, NodeId src, NodeId dst, MemOp op,
        int proto)
{
    auto pkt = makePacket();
    pkt->src = src;
    pkt->dst = dst;
    pkt->op = op;
    pkt->protoClass = proto;
    pkt->sizeFlits = net.packetFlits(op);
    pkt->sizeBytes = memOpBytes(op);
    return pkt;
}

TEST(MeshNetwork, DeliversSinglePacket)
{
    MeshNetwork net(baseNet());
    const auto &topo = net.topology();
    Collector sink;
    const NodeId src = topo.nodeAt(0, 0);
    const NodeId dst = topo.nodeAt(3, 4);
    net.setSink(dst, &sink);

    net.inject(makePkt(net, src, dst, MemOp::READ_REQUEST, 0), 0);
    for (Cycle t = 0; t < 100; ++t)
        net.cycle(t);
    ASSERT_EQ(sink.delivered.size(), 1u);
    EXPECT_TRUE(net.drained());
    EXPECT_EQ(net.stats().packetsInjected, 1u);
    EXPECT_EQ(net.stats().packetsEjected, 1u);
}

TEST(MeshNetwork, ZeroLoadLatencyMatchesPipeline)
{
    // 7 hops x (4-stage pipeline + 1-cycle channel) for a 1-flit
    // packet, plus ejection; Sec. III-B's 5-cycle-per-hop baseline.
    MeshNetwork net(baseNet());
    const auto &topo = net.topology();
    Collector sink;
    const NodeId src = topo.nodeAt(0, 0);
    const NodeId dst = topo.nodeAt(3, 4);
    net.setSink(dst, &sink);
    net.inject(makePkt(net, src, dst, MemOp::READ_REQUEST, 0), 0);
    for (Cycle t = 0; t < 100; ++t)
        net.cycle(t);
    const double lat = net.stats().netLatency.mean();
    const double hops = topo.hopDistance(src, dst);
    EXPECT_GE(lat, hops * 5.0);
    EXPECT_LE(lat, hops * 5.0 + 8.0);
}

TEST(MeshNetwork, MultiFlitPacketsArriveCompletely)
{
    MeshNetwork net(baseNet());
    const auto &topo = net.topology();
    Collector sink;
    const NodeId dst = topo.nodeAt(5, 5);
    net.setSink(dst, &sink);
    for (unsigned i = 0; i < 4; ++i) {
        net.inject(makePkt(net, topo.nodeAt(i, 0), dst,
                           MemOp::READ_REPLY, 1), 0);
    }
    for (Cycle t = 0; t < 300; ++t)
        net.cycle(t);
    EXPECT_EQ(sink.delivered.size(), 4u);
    EXPECT_EQ(net.stats().flitsEjected, 16u); // 4 x 4-flit replies
    EXPECT_TRUE(net.drained());
}

TEST(MeshNetwork, PacketsOnOneVcLaneStayOrdered)
{
    MeshNetworkParams p = baseNet();
    p.vcsPerClass = 1;
    MeshNetwork net(p);
    const auto &topo = net.topology();
    Collector sink;
    const NodeId src = topo.nodeAt(0, 0);
    const NodeId dst = topo.nodeAt(4, 4);
    net.setSink(dst, &sink);
    Cycle t = 0;
    for (unsigned i = 0; i < 5; ++i) {
        auto pkt = makePkt(net, src, dst, MemOp::READ_REQUEST, 0);
        pkt->tag = i;
        while (!net.canInject(src, 0))
            net.cycle(t++);
        net.inject(std::move(pkt), t);
    }
    for (Cycle e = t + 300; t < e; ++t)
        net.cycle(t);
    ASSERT_EQ(sink.delivered.size(), 5u);
    for (unsigned i = 0; i < 5; ++i)
        EXPECT_EQ(sink.delivered[i].second->tag, i);
}

TEST(MeshNetwork, ManyToFewStressAllDelivered)
{
    MeshNetworkParams p = baseNet();
    p.topo.placement = McPlacement::CHECKERBOARD;
    p.topo.checkerboardRouters = true;
    p.routing = "cr";
    MeshNetwork net(p);
    const auto &topo = net.topology();
    std::map<NodeId, Collector> sinks;
    for (NodeId n = 0; n < topo.numNodes(); ++n)
        net.setSink(n, &sinks[n]);

    Rng rng(3);
    Cycle t = 0;
    unsigned sent = 0;
    while (sent < 200) {
        for (NodeId core : topo.computeNodes()) {
            if (sent >= 200)
                break;
            if (net.canInject(core, 0)) {
                const NodeId mc = rng.pick(topo.mcNodes());
                net.inject(makePkt(net, core, mc,
                                   MemOp::READ_REQUEST, 0), t);
                ++sent;
            }
        }
        net.cycle(t++);
    }
    for (Cycle e = t + 2000; t < e && !net.drained(); ++t)
        net.cycle(t);
    EXPECT_TRUE(net.drained());
    std::size_t got = 0;
    for (NodeId mc : topo.mcNodes())
        got += sinks[mc].delivered.size();
    EXPECT_EQ(got, 200u);
}

TEST(MeshNetwork, SinkBackpressureHoldsPackets)
{
    struct Refuser : PacketSink
    {
        bool tryReserve(const Packet &) override { return allow; }
        void deliver(PacketPtr, Cycle) override { ++count; }
        bool allow = false;
        unsigned count = 0;
    };
    MeshNetwork net(baseNet());
    const auto &topo = net.topology();
    Refuser sink;
    const NodeId dst = topo.nodeAt(1, 0);
    net.setSink(dst, &sink);
    net.inject(makePkt(net, topo.nodeAt(0, 0), dst,
                       MemOp::READ_REQUEST, 0), 0);
    Cycle t = 0;
    for (; t < 100; ++t)
        net.cycle(t);
    EXPECT_EQ(sink.count, 0u);
    EXPECT_FALSE(net.drained());
    sink.allow = true;
    for (; t < 200; ++t)
        net.cycle(t);
    EXPECT_EQ(sink.count, 1u);
    EXPECT_TRUE(net.drained());
}

TEST(DoubleNetwork, SlicesByProtocolClass)
{
    MeshNetworkParams p = baseNet();
    p.topo.placement = McPlacement::CHECKERBOARD;
    p.topo.checkerboardRouters = true;
    p.routing = "cr";
    DoubleNetwork net(p);
    EXPECT_EQ(net.flitBytes(), 8u); // half-width slices
    EXPECT_EQ(net.packetFlits(MemOp::READ_REPLY), 8u);
    EXPECT_EQ(net.packetFlits(MemOp::READ_REQUEST), 1u);

    const auto &topo = net.topology();
    Collector core_sink;
    Collector mc_sink;
    const NodeId core = topo.computeNodes()[0];
    const NodeId mc = topo.mcNodes()[0];
    net.setSink(core, &core_sink);
    net.setSink(mc, &mc_sink);

    net.inject(makePkt(net, core, mc, MemOp::READ_REQUEST, 0), 0);
    net.inject(makePkt(net, mc, core, MemOp::READ_REPLY, 1), 0);
    for (Cycle t = 0; t < 200; ++t)
        net.cycle(t);
    EXPECT_EQ(mc_sink.delivered.size(), 1u);
    EXPECT_EQ(core_sink.delivered.size(), 1u);
    EXPECT_TRUE(net.drained());
    // Both slices share one stats block.
    EXPECT_EQ(net.stats().packetsEjected, 2u);
}

TEST(DoubleNetwork, InjectSpaceIsPerSlice)
{
    MeshNetworkParams p = baseNet();
    p.topo.placement = McPlacement::CHECKERBOARD;
    p.topo.checkerboardRouters = true;
    p.routing = "cr";
    DoubleNetwork net(p);
    const NodeId n = net.topology().computeNodes()[0];
    EXPECT_EQ(net.injectSpace(n, 0), p.ni.injQueueCap);
    EXPECT_EQ(net.injectSpace(n, 1), p.ni.injQueueCap);
}

TEST(NetStats, PerNodeRatesAndAcceptedBytes)
{
    NetStats s(4);
    s.cycles = 100;
    s.nodeInjectedFlits = {200, 0, 0, 0};
    s.nodeEjectedBytes = {0, 0, 400, 0};
    EXPECT_DOUBLE_EQ(s.injectionRate({0}), 2.0);
    EXPECT_DOUBLE_EQ(s.injectionRate({0, 1}), 1.0);
    EXPECT_DOUBLE_EQ(s.acceptedBytesPerCyclePerNode(),
                     400.0 / (100.0 * 4.0));
    NetStats empty(0);
    EXPECT_DOUBLE_EQ(empty.acceptedBytesPerCyclePerNode(), 0.0);
    EXPECT_DOUBLE_EQ(empty.injectionRate({}), 0.0);
}

TEST(MeshNetwork, AgePriorityIsDeterministicAndDelivers)
{
    MeshNetworkParams p = baseNet();
    p.agePriority = true;
    auto run_once = [&] {
        MeshNetwork net(p);
        const auto &topo = net.topology();
        Collector sink;
        for (NodeId mc : topo.mcNodes())
            net.setSink(mc, &sink);
        Rng rng(4);
        Cycle t = 0;
        unsigned sent = 0;
        while (sent < 60) {
            const NodeId core = rng.pick(topo.computeNodes());
            if (net.canInject(core, 0)) {
                net.inject(makePkt(net, core, rng.pick(topo.mcNodes()),
                                   MemOp::READ_REQUEST, 0), t);
                ++sent;
            }
            net.cycle(t++);
        }
        for (Cycle e = t + 1000; t < e && !net.drained(); ++t)
            net.cycle(t);
        EXPECT_TRUE(net.drained());
        EXPECT_EQ(sink.delivered.size(), 60u);
        return net.stats().netLatency.mean();
    };
    EXPECT_DOUBLE_EQ(run_once(), run_once());
}

TEST(MeshNetwork, InjectMulticastIsAllOrNothing)
{
    MeshNetwork net(baseNet());
    const auto &topo = net.topology();
    Collector sink;
    for (NodeId n = 0; n < topo.numNodes(); ++n)
        net.setSink(n, &sink);

    const NodeId src = topo.nodeAt(0, 0);
    const std::vector<NodeId> dsts = {
        topo.nodeAt(3, 0), topo.nodeAt(0, 3), topo.nodeAt(2, 2)};

    // Leave only 2 free slots in the class-0 injection queue: a 3-way
    // multicast must refuse outright rather than fork partially.
    const unsigned cap = net.injectSpace(src, 0);
    ASSERT_GE(cap, 3u);
    for (unsigned i = 0; i + 2 < cap; ++i) {
        net.inject(makePkt(net, src, topo.nodeAt(5, 5),
                           MemOp::READ_REQUEST, 0), 0);
    }

    Packet proto;
    proto.src = src;
    proto.op = MemOp::READ_REQUEST;
    proto.protoClass = 0;
    proto.sizeFlits = net.packetFlits(MemOp::READ_REQUEST);
    proto.sizeBytes = memOpBytes(MemOp::READ_REQUEST);
    proto.collectiveId = collectiveIdFor(src, 0);

    ASSERT_EQ(net.injectSpace(src, 0), 2u);
    EXPECT_FALSE(net.injectMulticast(dsts, proto, 0));
    // No partial fork consumed any of the remaining slots.
    EXPECT_EQ(net.injectSpace(src, 0), 2u);

    // After draining, the identical multicast goes through whole: one
    // fork per destination, all stamped with the shared collective id.
    for (Cycle t = 0; t < 300; ++t)
        net.cycle(t);
    ASSERT_TRUE(net.drained());

    std::vector<const Packet *> forked;
    EXPECT_TRUE(net.injectMulticast(dsts, proto, 300, &forked));
    ASSERT_EQ(forked.size(), dsts.size());
    for (std::size_t i = 0; i < forked.size(); ++i) {
        EXPECT_EQ(forked[i]->src, src);
        EXPECT_EQ(forked[i]->dst, dsts[i]);
        EXPECT_EQ(forked[i]->collectiveId, proto.collectiveId);
    }

    for (Cycle t = 300; t < 600; ++t)
        net.cycle(t);
    EXPECT_TRUE(net.drained());
    // Conservation: every pre-fill packet and every fork ejected.
    EXPECT_EQ(net.stats().packetsInjected, cap - 2 + dsts.size());
    EXPECT_EQ(net.stats().packetsEjected, cap - 2 + dsts.size());
}

TEST(MeshNetwork, CollectiveRoundTripMergesAtRoot)
{
    // Broadcast -> reduce round trip: a root multicasts to four
    // leaves, each leaf echoes one contribution, and the root's merge
    // sink must complete exactly one reduction per issued collective.
    MeshNetwork net(baseNet());
    const auto &topo = net.topology();
    const NodeId root = topo.nodeAt(2, 2);
    const std::vector<NodeId> dsts = {
        topo.nodeAt(0, 0), topo.nodeAt(5, 0),
        topo.nodeAt(0, 5), topo.nodeAt(5, 5)};

    Rng rng(123);
    CollectiveSource source(root, 0.05, 1, dsts, net, rng);
    std::vector<std::unique_ptr<CollectiveEchoSink>> leaves;
    for (NodeId d : dsts) {
        leaves.push_back(
            std::make_unique<CollectiveEchoSink>(d, 1, net));
        net.setSink(d, leaves.back().get());
    }
    Accumulator latency;
    ReductionSink merge(static_cast<unsigned>(dsts.size()), latency);
    net.setSink(root, &merge);

    Cycle t = 0;
    for (; t < 400; ++t) {
        source.cycle(t, true);
        for (auto &leaf : leaves)
            leaf->cycle(t);
        net.cycle(t);
    }
    // Flush stragglers still queued at the source (new low-rate draws
    // drain in the same call), then let the echoes finish.
    while (source.queueDepth() > 0 && t < 2000) {
        source.cycle(t, false);
        for (auto &leaf : leaves)
            leaf->cycle(t);
        net.cycle(t);
        ++t;
    }
    ASSERT_EQ(source.queueDepth(), 0u);
    for (; t < 3000; ++t) {
        for (auto &leaf : leaves)
            leaf->cycle(t);
        net.cycle(t);
        if (net.drained() &&
            std::all_of(leaves.begin(), leaves.end(),
                        [](const auto &l) { return l->idle(); })) {
            break;
        }
    }

    ASSERT_GT(source.issued(), 0u);
    EXPECT_EQ(merge.merged(), source.issued());
    EXPECT_EQ(merge.partial(), 0u);
    EXPECT_TRUE(net.drained());
    // Conservation through fork and merge: every collective moved
    // fanout forks out and fanout contributions back.
    const std::uint64_t fanout = dsts.size();
    EXPECT_EQ(net.stats().packetsEjected,
              2 * fanout * source.issued());
    EXPECT_EQ(net.stats().flitsInjected, net.stats().flitsEjected);
}

TEST(MakeMeshNetwork, FactorySelectsKind)
{
    MeshNetworkParams p = baseNet();
    auto single = makeMeshNetwork(p, false);
    EXPECT_EQ(single->flitBytes(), 16u);
    p.topo.placement = McPlacement::CHECKERBOARD;
    p.topo.checkerboardRouters = true;
    p.routing = "cr";
    auto dbl = makeMeshNetwork(p, true);
    EXPECT_EQ(dbl->flitBytes(), 8u);
}

} // namespace
} // namespace tenoc
