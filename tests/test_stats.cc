/**
 * @file
 * Unit tests for the statistics package.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/stats.hh"

namespace tenoc
{
namespace
{

TEST(Counter, IncrementAndReset)
{
    Counter c("events");
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(41);
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Accumulator, TracksMeanMinMax)
{
    Accumulator a("lat");
    EXPECT_EQ(a.mean(), 0.0);
    a.sample(10.0);
    a.sample(20.0);
    a.sample(-6.0);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_DOUBLE_EQ(a.mean(), 8.0);
    EXPECT_DOUBLE_EQ(a.min(), -6.0);
    EXPECT_DOUBLE_EQ(a.max(), 20.0);
    a.reset();
    EXPECT_EQ(a.count(), 0u);
    EXPECT_EQ(a.max(), 0.0);
}

TEST(Histogram, BucketsAndMean)
{
    Histogram h("lat", 0.0, 100.0, 10);
    for (int i = 0; i < 10; ++i)
        h.sample(5.0 + 10.0 * i);
    EXPECT_EQ(h.count(), 10u);
    for (auto b : h.buckets())
        EXPECT_EQ(b, 1u);
    EXPECT_DOUBLE_EQ(h.mean(), 50.0);
}

TEST(Histogram, OutOfRangeSaturates)
{
    Histogram h("x", 0.0, 10.0, 2);
    h.sample(-5.0);
    h.sample(100.0);
    EXPECT_EQ(h.buckets().front(), 1u);
    EXPECT_EQ(h.buckets().back(), 1u);
}

TEST(Histogram, Percentile)
{
    Histogram h("x", 0.0, 100.0, 100);
    for (int i = 0; i < 100; ++i)
        h.sample(i + 0.5);
    EXPECT_NEAR(h.percentile(0.5), 50.0, 2.0);
    EXPECT_NEAR(h.percentile(0.99), 99.0, 2.0);
}

TEST(Histogram, PercentileZeroUsesFirstNonEmptyBucket)
{
    Histogram h("x", 0.0, 100.0, 10);
    h.sample(95.0);
    // The minimum lives in [90, 100); p=0 must not report bucket 0.
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 90.0);
    // Tiny but non-zero p rounds up to the first sample.
    EXPECT_DOUBLE_EQ(h.percentile(0.001), 100.0);
}

TEST(Histogram, PercentileOneCoversMaximum)
{
    Histogram h("x", 0.0, 100.0, 10);
    h.sample(5.0);
    h.sample(55.0);
    EXPECT_DOUBLE_EQ(h.percentile(1.0), 60.0);
    // percentile(0)..percentile(1) brackets the observed samples.
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 0.0);
}

TEST(Histogram, PercentileSingleBucket)
{
    Histogram h("x", 0.0, 10.0, 1);
    h.sample(3.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 0.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 10.0);
    EXPECT_DOUBLE_EQ(h.percentile(1.0), 10.0);
}

TEST(Histogram, PercentileSaturatingEdges)
{
    Histogram h("x", 0.0, 10.0, 2);
    h.sample(-5.0);  // saturates into bucket 0
    h.sample(100.0); // saturates into the last bucket
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 0.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 5.0);
    EXPECT_DOUBLE_EQ(h.percentile(1.0), 10.0);
}

TEST(Histogram, PercentileEmpty)
{
    Histogram h("x", 0.0, 10.0, 4);
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 0.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);
    EXPECT_DOUBLE_EQ(h.percentile(1.0), 0.0);
}

TEST(Histogram, WeightedSamples)
{
    Histogram h("x", 0.0, 10.0, 10);
    h.sample(1.0, 5);
    EXPECT_EQ(h.count(), 5u);
    EXPECT_DOUBLE_EQ(h.mean(), 1.0);
}

TEST(Means, Harmonic)
{
    EXPECT_DOUBLE_EQ(harmonicMean({}), 0.0);
    EXPECT_DOUBLE_EQ(harmonicMean({4.0}), 4.0);
    EXPECT_DOUBLE_EQ(harmonicMean({1.0, 1.0}), 1.0);
    EXPECT_NEAR(harmonicMean({1.0, 2.0, 4.0}), 3.0 / 1.75, 1e-12);
    // Any non-positive value makes the HM undefined here.
    EXPECT_DOUBLE_EQ(harmonicMean({1.0, 0.0}), 0.0);
}

TEST(Means, Arithmetic)
{
    EXPECT_DOUBLE_EQ(arithmeticMean({}), 0.0);
    EXPECT_DOUBLE_EQ(arithmeticMean({2.0, 4.0}), 3.0);
}

TEST(Means, Geometric)
{
    EXPECT_DOUBLE_EQ(geometricMean({}), 0.0);
    EXPECT_NEAR(geometricMean({2.0, 8.0}), 4.0, 1e-12);
    EXPECT_DOUBLE_EQ(geometricMean({1.0, -1.0}), 0.0);
}

TEST(Means, HarmonicDominatedBySmallValues)
{
    const double hm = harmonicMean({1.0, 100.0, 100.0});
    EXPECT_LT(hm, 3.0);
}

TEST(StatGroup, DumpsAllStats)
{
    Counter c("hits");
    c.inc(7);
    Accumulator a("lat");
    a.sample(2.0);
    StatGroup child("l1");
    child.add(&c);
    StatGroup root("core0");
    root.addChild(&child);
    root.add(&a);

    std::ostringstream os;
    root.dump(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("core0.lat.mean 2"), std::string::npos);
    EXPECT_NE(out.find("core0.l1.hits 7"), std::string::npos);
}

TEST(StatGroup, DumpsLazyValues)
{
    int calls = 0;
    StatGroup g("chip");
    g.addValue("ipc", [&] {
        ++calls;
        return 1.5;
    });
    EXPECT_EQ(calls, 0); // lazy until dumped
    std::ostringstream os;
    g.dump(os);
    EXPECT_EQ(calls, 1);
    EXPECT_NE(os.str().find("chip.ipc 1.5"), std::string::npos);
}

} // namespace
} // namespace tenoc
