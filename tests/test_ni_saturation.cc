/**
 * @file
 * Network-interface saturation equivalence suite.
 *
 * Drives every NI hard from both ends at once — injection offered
 * well above network capacity (class queues pinned at injQueueCap,
 * canInject refusing most cycles) and ejection throttled by a sink
 * that accepts only a fraction of reservation attempts (ejection
 * buffers pinned at ejBufferFlits, credits withheld upstream) — and
 * requires bit-identical final statistics across the scheduler
 * toggles: idle-skip, channel slicing (DoubleNetwork), the parallel
 * cycle engine, arrival-scheduled channels, and link-stall fault
 * injection.  The slab-backed NI rings spend the whole run at their
 * capacity bounds, so any ring-arithmetic or early-out-counter bug
 * diverges a counter here.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "noc/mesh_network.hh"

namespace tenoc
{
namespace
{

/**
 * Accepts one reservation in `stride`, refusing the rest.  One sink
 * per node: each NI issues its reservation attempts in a
 * deterministic per-NI order, so a per-node counter throttles
 * identically whatever the cross-NI execution order — a single
 * shared counter would observe the parallel drain phase's worker
 * interleaving and break the equivalence the suite asserts.
 */
struct ThrottledSink : PacketSink
{
    explicit ThrottledSink(unsigned stride = 3) : stride_(stride) {}

    bool
    tryReserve(const Packet &) override
    {
        return calls_++ % stride_ == 0;
    }

    void deliver(PacketPtr, Cycle) override {}

    unsigned stride_;
    std::uint64_t calls_ = 0;
};

struct RunResult
{
    Cycle drainedAt = 0;
    NetStats stats;
};

/**
 * Saturating request/reply driver: offered load far above the
 * many-to-few capacity bound, every sink throttled 1-in-3.
 */
RunResult
saturate(const MeshNetworkParams &params, bool sliced,
         std::uint64_t seed, Cycle cycles)
{
    const auto net = makeMeshNetwork(params, sliced);
    const auto &topo = net->topology();
    std::vector<ThrottledSink> sinks(topo.numNodes());
    for (NodeId n = 0; n < topo.numNodes(); ++n)
        net->setSink(n, &sinks[n]);

    Rng rng(seed);
    Cycle now = 0;
    std::uint64_t refused = 0;
    for (; now < cycles; ++now) {
        for (NodeId core : topo.computeNodes()) {
            if (!rng.nextBool(0.6))
                continue;
            if (!net->canInject(core, 0)) {
                ++refused; // saturation evidence, not an error
                continue;
            }
            auto pkt = makePacket();
            pkt->src = core;
            pkt->dst = rng.pick(topo.mcNodes());
            pkt->op = MemOp::READ_REQUEST;
            pkt->protoClass = 0;
            pkt->sizeFlits = net->packetFlits(MemOp::READ_REQUEST);
            pkt->sizeBytes = memOpBytes(MemOp::READ_REQUEST);
            net->inject(std::move(pkt), now);
        }
        for (NodeId mc : topo.mcNodes()) {
            if (!rng.nextBool(0.5) || !net->canInject(mc, 1))
                continue;
            auto pkt = makePacket();
            pkt->src = mc;
            pkt->dst = rng.pick(topo.computeNodes());
            pkt->op = MemOp::READ_REPLY;
            pkt->protoClass = 1;
            pkt->sizeFlits = net->packetFlits(MemOp::READ_REPLY);
            pkt->sizeBytes = memOpBytes(MemOp::READ_REPLY);
            net->inject(std::move(pkt), now);
        }
        net->cycle(now);
    }
    // The workload must actually have saturated the injection queues.
    EXPECT_GT(refused, 0u);

    while (!net->drained() && now < cycles + 200000)
        net->cycle(now++);
    EXPECT_TRUE(net->drained());

    RunResult r;
    r.drainedAt = now;
    r.stats = net->stats();
    return r;
}

void
expectRunsEqual(const RunResult &a, const RunResult &b)
{
    EXPECT_EQ(a.drainedAt, b.drainedAt);
    EXPECT_EQ(a.stats.cycles, b.stats.cycles);
    EXPECT_EQ(a.stats.packetsInjected, b.stats.packetsInjected);
    EXPECT_EQ(a.stats.packetsEjected, b.stats.packetsEjected);
    EXPECT_EQ(a.stats.flitsInjected, b.stats.flitsInjected);
    EXPECT_EQ(a.stats.flitsEjected, b.stats.flitsEjected);
    EXPECT_EQ(a.stats.nodeInjectedFlits, b.stats.nodeInjectedFlits);
    EXPECT_EQ(a.stats.nodeEjectedFlits, b.stats.nodeEjectedFlits);
    EXPECT_EQ(a.stats.totalLatency.count(),
              b.stats.totalLatency.count());
    EXPECT_EQ(a.stats.totalLatency.sum(), b.stats.totalLatency.sum());
    EXPECT_EQ(a.stats.netLatency.sum(), b.stats.netLatency.sum());
    EXPECT_EQ(a.stats.totalLatencyHist.buckets(),
              b.stats.totalLatencyHist.buckets());
    EXPECT_EQ(a.stats.queueLatencyHist.buckets(),
              b.stats.queueLatencyHist.buckets());
}

MeshNetworkParams
baseParams(std::uint64_t seed)
{
    MeshNetworkParams p;
    p.seed = seed;
    p.validate = true;
    p.validateInterval = 32;
    return p;
}

constexpr Cycle SAT_CYCLES = 1200;

/** (seed, idleSkip, sliced, cycleThreads, faults) toggle cross. */
class NiSaturationEquivalence
    : public ::testing::TestWithParam<
          std::tuple<std::uint64_t, bool, bool, unsigned, bool>>
{};

TEST_P(NiSaturationEquivalence, MatchesReferenceScheduler)
{
    const auto [seed, idle_skip, sliced, threads, faults] = GetParam();

    MeshNetworkParams ref = baseParams(seed);
    ref.idleSkip = false;
    ref.cycleThreads = 1;
    if (faults) {
        ref.faults.linkStallRate = 1e-3;
        ref.faults.linkStallDuration = 8;
        ref.faults.seed = seed * 7 + 1;
    }

    MeshNetworkParams toggled = ref;
    toggled.idleSkip = idle_skip;
    toggled.cycleThreads = threads;

    // Slicing is a topology axis, not a results-preserving toggle
    // (a DoubleNetwork is two half-width physical networks), so the
    // reference run shares it and only the scheduler toggles differ.
    const RunResult a = saturate(ref, sliced, seed, SAT_CYCLES);
    const RunResult b = saturate(toggled, sliced, seed, SAT_CYCLES);
    expectRunsEqual(a, b);
}

std::string
satCaseName(const ::testing::TestParamInfo<
            std::tuple<std::uint64_t, bool, bool, unsigned, bool>>
                &info)
{
    const auto [seed, idle_skip, sliced, threads, faults] = info.param;
    std::string s = idle_skip ? "skip" : "full";
    s += sliced ? "_double" : "_single";
    s += "_t" + std::to_string(threads);
    s += faults ? "_faults" : "_clean";
    s += "_" + std::to_string(seed);
    return s;
}

INSTANTIATE_TEST_SUITE_P(
    ToggleCross, NiSaturationEquivalence,
    ::testing::Combine(::testing::Values<std::uint64_t>(11),
                       ::testing::Bool(), ::testing::Bool(),
                       ::testing::Values(1u, 2u), ::testing::Bool()),
    satCaseName);

TEST(NiSaturation, ArrivalSleepInvariantUnderBackpressure)
{
    // The wheel vs mark-on-send cross, separately, under the same
    // saturating workload: ejection backpressure keeps matured flits
    // parked in channels for many cycles, exercising the readInputs
    // keep-bit path far harder than free-flowing traffic.
    MeshNetworkParams p = baseParams(13);
    p.arrivalSleep = false;
    const RunResult off = saturate(p, false, 13, SAT_CYCLES);
    p.arrivalSleep = true;
    const RunResult on = saturate(p, false, 13, SAT_CYCLES);
    expectRunsEqual(off, on);
}

TEST(NiSaturation, McMultiPortRouters)
{
    // Multi-port MC routers give NIs uneven port counts; the slab's
    // per-NI base offsets must keep every ring in bounds at capacity.
    MeshNetworkParams p = baseParams(17);
    p.mcInjPorts = 2;
    p.mcEjPorts = 2;
    p.arrivalSleep = false;
    const RunResult off = saturate(p, false, 17, SAT_CYCLES);
    p.arrivalSleep = true;
    const RunResult on = saturate(p, false, 17, SAT_CYCLES);
    expectRunsEqual(off, on);
}

} // namespace
} // namespace tenoc
