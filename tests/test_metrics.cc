/**
 * @file
 * Tests for suite metrics and the paper's classification rule.
 */

#include <gtest/gtest.h>

#include "accel/metrics.hh"

namespace tenoc
{
namespace
{

SuiteRun
run(const char *abbr, double ipc, TrafficClass cls = TrafficClass::LL)
{
    SuiteRun r;
    r.abbr = abbr;
    r.cls = cls;
    r.result.ipc = ipc;
    return r;
}

TEST(Metrics, HarmonicMeanIpc)
{
    std::vector<SuiteRun> runs{run("A", 100.0), run("B", 50.0)};
    EXPECT_NEAR(harmonicMeanIpc(runs), 2.0 / (0.01 + 0.02), 1e-9);
}

TEST(Metrics, SpeedupsPerBenchmark)
{
    std::vector<SuiteRun> base{run("A", 100.0), run("B", 50.0)};
    std::vector<SuiteRun> test{run("A", 150.0), run("B", 50.0)};
    const auto s = speedups(base, test);
    ASSERT_EQ(s.size(), 2u);
    EXPECT_DOUBLE_EQ(s[0], 1.5);
    EXPECT_DOUBLE_EQ(s[1], 1.0);
    EXPECT_NEAR(harmonicMeanSpeedup(base, test), 2.0 / (1 / 1.5 + 1.0),
                1e-9);
}

TEST(MetricsDeath, MismatchedSuitesPanic)
{
    std::vector<SuiteRun> base{run("A", 1.0)};
    std::vector<SuiteRun> test{run("B", 1.0)};
    EXPECT_DEATH(speedups(base, test), "order mismatch");
}

TEST(Metrics, ClassificationRule)
{
    // Sec. III-B: >30% perfect speedup = H first letter; >1 B/cyc/node
    // = H second letter; no HL group exists.
    EXPECT_EQ(classify(1.05, 0.3), TrafficClass::LL);
    EXPECT_EQ(classify(1.10, 2.0), TrafficClass::LH);
    EXPECT_EQ(classify(1.87, 5.0), TrafficClass::HH);
    EXPECT_EQ(classify(1.50, 0.5), TrafficClass::HH);
    EXPECT_EQ(classify(1.29, 1.01), TrafficClass::LH);
    EXPECT_EQ(classify(1.31, 1.01), TrafficClass::HH);
}

TEST(Metrics, ClassFilteredMean)
{
    std::vector<SuiteRun> runs{
        run("A", 100.0, TrafficClass::LL),
        run("B", 10.0, TrafficClass::HH),
        run("C", 30.0, TrafficClass::HH),
    };
    EXPECT_NEAR(harmonicMeanIpcOfClass(runs, TrafficClass::HH),
                2.0 / (0.1 + 1.0 / 30.0), 1e-9);
    EXPECT_DOUBLE_EQ(harmonicMeanIpcOfClass(runs, TrafficClass::LL),
                     100.0);
    EXPECT_DOUBLE_EQ(harmonicMeanIpcOfClass(runs, TrafficClass::LH),
                     0.0);
}

} // namespace
} // namespace tenoc
