/**
 * @file
 * Tests for the named experiment configurations (Table V).
 */

#include <gtest/gtest.h>

#include "accel/chip_config.hh"

namespace tenoc
{
namespace
{

const ConfigId kAll[] = {
    ConfigId::BASELINE_TB_DOR, ConfigId::TB_DOR_2X,
    ConfigId::TB_DOR_1CYC, ConfigId::PERFECT, ConfigId::CP_DOR_2VC,
    ConfigId::CP_DOR_4VC, ConfigId::CP_CR_4VC,
    ConfigId::CP_CR_SINGLE_16B_4VC, ConfigId::CP_CR_DOUBLE,
    ConfigId::CP_CR_DOUBLE_2INJ, ConfigId::CP_CR_DOUBLE_2EJ,
    ConfigId::CP_CR_DOUBLE_2INJ2EJ, ConfigId::THROUGHPUT_EFFECTIVE,
    ConfigId::CP_CR_2INJ_SINGLE,
};

TEST(ChipConfig, BaselineMatchesTables)
{
    const auto p = makeConfig(ConfigId::BASELINE_TB_DOR);
    EXPECT_EQ(p.mesh.topo.rows, 6u);
    EXPECT_EQ(p.mesh.topo.cols, 6u);
    EXPECT_EQ(p.mesh.topo.numMcs, 8u);
    EXPECT_EQ(p.mesh.flitBytes, 16u);           // Table III
    EXPECT_EQ(p.mesh.pipelineDepth, 4u);        // 4-stage routers
    EXPECT_EQ(p.mesh.vcDepth, 8u);              // 8 buffers per VC
    EXPECT_EQ(p.mesh.protoClasses * p.mesh.vcsPerClass, 2u); // 2 VCs
    EXPECT_EQ(p.mesh.routing, "xy");
    EXPECT_EQ(p.mesh.topo.placement, McPlacement::TOP_BOTTOM);
    EXPECT_EQ(p.core.warpSize, 32u);            // Table II
    EXPECT_EQ(p.core.maxWarps, 32u);
    EXPECT_EQ(p.core.mshrEntries, 64u);
    EXPECT_EQ(p.mc.dram.queueCapacity, 32u);
    EXPECT_DOUBLE_EQ(p.coreClockMhz, 1296.0);
    EXPECT_DOUBLE_EQ(p.icntClockMhz, 602.0);
    EXPECT_DOUBLE_EQ(p.memClockMhz, 1107.0);
}

TEST(ChipConfig, TwoXDoublesChannels)
{
    const auto p = makeConfig(ConfigId::TB_DOR_2X);
    EXPECT_EQ(p.mesh.flitBytes, 32u);
}

TEST(ChipConfig, OneCycleRouters)
{
    const auto p = makeConfig(ConfigId::TB_DOR_1CYC);
    EXPECT_EQ(p.mesh.pipelineDepth, 1u);
    EXPECT_EQ(p.mesh.halfPipelineDepth, 1u);
}

TEST(ChipConfig, CheckerboardConfigs)
{
    const auto cr = makeConfig(ConfigId::CP_CR_4VC);
    EXPECT_TRUE(cr.mesh.topo.checkerboardRouters);
    EXPECT_EQ(cr.mesh.routing, "cr");
    EXPECT_EQ(cr.mesh.topo.placement, McPlacement::CHECKERBOARD);

    const auto dor4 = makeConfig(ConfigId::CP_DOR_4VC);
    EXPECT_FALSE(dor4.mesh.topo.checkerboardRouters);
    EXPECT_EQ(dor4.mesh.vcsPerClass, 2u);
}

TEST(ChipConfig, ThroughputEffectiveCombinesEverything)
{
    const auto p = makeConfig(ConfigId::THROUGHPUT_EFFECTIVE);
    EXPECT_EQ(p.netKind, NetKind::DOUBLE);
    EXPECT_TRUE(p.mesh.topo.checkerboardRouters);
    EXPECT_EQ(p.mesh.routing, "cr");
    EXPECT_EQ(p.mesh.mcInjPorts, 2u);
    EXPECT_EQ(p.mesh.mcEjPorts, 1u); // ejection ports dropped (Sec. V-E)
}

TEST(ChipConfig, AllConfigsHaveNames)
{
    for (ConfigId id : kAll)
        EXPECT_STRNE(configName(id), "unknown");
}

TEST(ChipConfig, DramBandwidthFootnote3)
{
    // Footnote 3: bisection ratio 0.816 corresponds to N = 12
    // flits/interconnect cycle, i.e. full DRAM bandwidth is ~14.7
    // 16-byte flits per interconnect cycle.
    const auto p = makeConfig(ConfigId::BASELINE_TB_DOR);
    EXPECT_NEAR(dramBandwidthFlitsPerIcntCycle(p), 14.71, 0.05);
    const auto bw = makeBwLimitedConfig(0.816);
    EXPECT_EQ(bw.netKind, NetKind::BW_LIMITED);
    EXPECT_NEAR(bw.idealFlitsPerCycle, 12.0, 0.05);
}

TEST(ChipConfig, AreaSpecsMatchSimulatedConfigs)
{
    for (ConfigId id : kAll) {
        const auto p = makeConfig(id);
        const auto s = areaSpecFor(id);
        if (p.netKind == NetKind::MESH) {
            EXPECT_EQ(s.channelBytes,
                      static_cast<double>(p.mesh.flitBytes))
                << configName(id);
            EXPECT_EQ(s.subnetworks, 1u);
        }
        if (p.netKind == NetKind::DOUBLE) {
            EXPECT_EQ(s.subnetworks, 2u) << configName(id);
            EXPECT_EQ(s.channelBytes,
                      static_cast<double>(p.mesh.flitBytes) / 2.0);
        }
        EXPECT_EQ(s.checkerboard, p.mesh.topo.checkerboardRouters);
        EXPECT_EQ(s.mcInjPorts, p.mesh.mcInjPorts) << configName(id);
        EXPECT_EQ(s.mcEjPorts, p.mesh.mcEjPorts) << configName(id);
    }
}

TEST(ChipConfig, SeedPropagates)
{
    const auto a = makeConfig(ConfigId::BASELINE_TB_DOR, 7);
    const auto b = makeConfig(ConfigId::BASELINE_TB_DOR, 8);
    EXPECT_NE(a.mesh.seed, b.mesh.seed);
}

} // namespace
} // namespace tenoc
