/**
 * @file
 * Replays every minimized fuzz repro checked into tests/corpus/
 * through the full differential-testing oracle battery.  Each corpus
 * file is a configuration that once exposed a bug; it must parse, be
 * legal, and pass forever.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "noc/golden/diff.hh"

#ifndef TENOC_CORPUS_DIR
#error "TENOC_CORPUS_DIR must point at tests/corpus"
#endif

namespace tenoc
{
namespace
{

std::vector<std::filesystem::path>
corpusFiles()
{
    std::vector<std::filesystem::path> files;
    for (const auto &entry :
         std::filesystem::directory_iterator(TENOC_CORPUS_DIR)) {
        if (entry.is_regular_file() &&
            entry.path().extension() == ".cfg")
            files.push_back(entry.path());
    }
    std::sort(files.begin(), files.end());
    return files;
}

TEST(FuzzCorpus, HasSeedEntries)
{
    // The corpus is never empty: the burn-down checked in one repro
    // per bug the fuzzer surfaced.
    EXPECT_GE(corpusFiles().size(), 3u);
}

TEST(FuzzCorpus, EveryReproReplaysClean)
{
    for (const auto &path : corpusFiles()) {
        SCOPED_TRACE(path.filename().string());

        std::ifstream in(path);
        ASSERT_TRUE(in) << "unreadable corpus file";
        std::ostringstream text;
        text << in.rdbuf();

        DiffConfig cfg;
        std::string err;
        ASSERT_TRUE(DiffConfig::parse(text.str(), cfg, &err)) << err;

        const DiffReport rep = runDiff(cfg);
        EXPECT_TRUE(rep.ok())
            << rep.violations.size() << " violations, first: "
            << rep.violations.front();
    }
}

} // namespace
} // namespace tenoc
