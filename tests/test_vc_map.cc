/**
 * @file
 * Unit tests for the VC organization used by the paper's configs.
 */

#include <gtest/gtest.h>

#include "noc/vc_map.hh"

namespace tenoc
{
namespace
{

Packet
packet(int proto, RouteMode mode, bool phase2 = false)
{
    Packet p;
    p.protoClass = proto;
    p.mode = mode;
    p.phase2 = phase2;
    return p;
}

TEST(VcMap, BaselineTwoVcs)
{
    // Table III: 2 VCs = request + reply, DOR.
    VcMap m{2, 1, 1};
    EXPECT_EQ(m.numVcs(), 2u);
    EXPECT_EQ(m.baseVc(packet(0, RouteMode::XY)), 0u);
    EXPECT_EQ(m.baseVc(packet(1, RouteMode::XY)), 1u);
}

TEST(VcMap, CpDor4Vc)
{
    // Fig. 17: DOR with 4 VCs = 2 protocol x 2 lanes.
    VcMap m{2, 1, 2};
    EXPECT_EQ(m.numVcs(), 4u);
    EXPECT_EQ(m.baseVc(packet(0, RouteMode::XY)), 0u);
    EXPECT_EQ(m.baseVc(packet(1, RouteMode::XY)), 2u);
}

TEST(VcMap, CpCr4Vc)
{
    // Fig. 17: CR with 4 VCs = 2 protocol x 2 routing classes.
    VcMap m{2, 2, 1};
    EXPECT_EQ(m.numVcs(), 4u);
    EXPECT_EQ(m.baseVc(packet(0, RouteMode::XY)), 0u);
    EXPECT_EQ(m.baseVc(packet(0, RouteMode::YX)), 1u);
    EXPECT_EQ(m.baseVc(packet(1, RouteMode::XY)), 2u);
    EXPECT_EQ(m.baseVc(packet(1, RouteMode::YX)), 3u);
}

TEST(VcMap, TwoPhaseSwitchesClassAtWaypoint)
{
    VcMap m{1, 2, 1};
    EXPECT_EQ(m.baseVc(packet(0, RouteMode::TWO_PHASE, false)), 1u);
    EXPECT_EQ(m.baseVc(packet(0, RouteMode::TWO_PHASE, true)), 0u);
}

TEST(VcMap, DedicatedSliceCollapsesProtocol)
{
    // A dedicated double-network slice has one protocol class; reply
    // packets (protoClass 1) wrap onto class 0.
    VcMap m{1, 2, 2};
    EXPECT_EQ(m.numVcs(), 4u);
    EXPECT_EQ(m.baseVc(packet(1, RouteMode::XY)), 0u);
    EXPECT_EQ(m.baseVc(packet(1, RouteMode::YX)), 2u);
}

} // namespace
} // namespace tenoc
