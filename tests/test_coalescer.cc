/**
 * @file
 * Tests for the memory coalescing stage.
 */

#include <gtest/gtest.h>

#include "gpu/coalescer.hh"

namespace tenoc
{
namespace
{

KernelProfile
profile(double lines)
{
    KernelProfile p;
    p.avgLinesPerMemInst = lines;
    p.rowLocality = 1.0;
    return p;
}

TEST(Coalescer, IntegerAvgIsExact)
{
    Coalescer c(32);
    Rng rng(1);
    const auto p = profile(3.0);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(c.linesForAccess(p, rng), 3u);
}

TEST(Coalescer, FractionalAvgMatchesMean)
{
    Coalescer c(32);
    Rng rng(2);
    const auto p = profile(2.3);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += c.linesForAccess(p, rng);
    EXPECT_NEAR(sum / n, 2.3, 0.03);
}

TEST(Coalescer, ClampedToWarpSize)
{
    Coalescer c(32);
    Rng rng(3);
    const auto p = profile(40.0);
    EXPECT_EQ(c.linesForAccess(p, rng), 32u);
}

TEST(Coalescer, FullyCoalescedSingleLine)
{
    Coalescer c(32);
    Rng rng(4);
    const auto p = profile(1.0);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(c.linesForAccess(p, rng), 1u);
}

TEST(Coalescer, CoalesceProducesAddressesFromStream)
{
    Coalescer c(32);
    Rng rng(5);
    auto p = profile(2.0);
    AddressStream stream(0x1000, 0, 4, p, 64);
    const auto lines = c.coalesce(p, stream, rng);
    ASSERT_EQ(lines.size(), 2u);
    // Warp 0 of 4: lines at base, base + 4*64, ...
    EXPECT_EQ(lines[0], 0x1000u);
    EXPECT_EQ(lines[1], 0x1000u + 256u);
}

} // namespace
} // namespace tenoc
