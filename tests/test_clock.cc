/**
 * @file
 * Unit tests for the multi-clock-domain scheduler.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/clock.hh"

namespace tenoc
{
namespace
{

TEST(ClockDomain, PeriodFromFrequency)
{
    ClockDomain d("core", 1000.0); // 1 GHz -> 1000 ps
    EXPECT_EQ(d.periodPs(), 1000u);
    ClockDomain e("icnt", 602.0);
    EXPECT_EQ(e.periodPs(), 1661u); // 1e6/602 = 1661.13
}

TEST(ClockDomainSet, SingleDomainTicksEveryAdvance)
{
    ClockDomainSet cs;
    auto id = cs.addDomain("only", 500.0);
    for (int i = 1; i <= 5; ++i) {
        const auto &t = cs.advance();
        EXPECT_TRUE(t[id]);
        EXPECT_EQ(cs.domain(id).cycles(), static_cast<Cycle>(i));
        EXPECT_EQ(cs.nowPs(), static_cast<Picoseconds>(2000 * i));
    }
}

TEST(ClockDomainSet, TickRatioMatchesFrequencyRatio)
{
    // The paper's three domains (Table II).
    ClockDomainSet cs;
    auto core = cs.addDomain("core", 1296.0);
    auto icnt = cs.addDomain("icnt", 602.0);
    auto mem = cs.addDomain("mem", 1107.0);
    for (int i = 0; i < 200000; ++i)
        cs.advance();
    const double core_c = static_cast<double>(cs.domain(core).cycles());
    const double icnt_c = static_cast<double>(cs.domain(icnt).cycles());
    const double mem_c = static_cast<double>(cs.domain(mem).cycles());
    EXPECT_NEAR(core_c / icnt_c, 1296.0 / 602.0, 0.01);
    EXPECT_NEAR(mem_c / icnt_c, 1107.0 / 602.0, 0.01);
}

TEST(ClockDomainSet, SimultaneousEdgesTickTogether)
{
    ClockDomainSet cs;
    auto a = cs.addDomain("a", 1000.0); // 1000 ps
    auto b = cs.addDomain("b", 500.0);  // 2000 ps
    const auto &t1 = cs.advance(); // t=1000: only a
    EXPECT_TRUE(t1[a]);
    EXPECT_FALSE(t1[b]);
    const auto &t2 = cs.advance(); // t=2000: both
    EXPECT_TRUE(t2[a]);
    EXPECT_TRUE(t2[b]);
}

TEST(ClockDomainSet, TimeIsMonotonic)
{
    ClockDomainSet cs;
    cs.addDomain("a", 1296.0);
    cs.addDomain("b", 1107.0);
    Picoseconds prev = 0;
    for (int i = 0; i < 10000; ++i) {
        cs.advance();
        EXPECT_GT(cs.nowPs(), prev);
        prev = cs.nowPs();
    }
}

TEST(ClockDomainSet, ResetRestartsEverything)
{
    ClockDomainSet cs;
    auto a = cs.addDomain("a", 100.0);
    cs.advance();
    cs.advance();
    cs.reset();
    EXPECT_EQ(cs.nowPs(), 0u);
    EXPECT_EQ(cs.domain(a).cycles(), 0u);
    const auto &t = cs.advance();
    EXPECT_TRUE(t[a]);
    EXPECT_EQ(cs.domain(a).cycles(), 1u);
}

} // namespace
} // namespace tenoc
