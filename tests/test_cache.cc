/**
 * @file
 * Tests for the set-associative cache (real and profile modes).
 */

#include <gtest/gtest.h>

#include "cache/cache.hh"

namespace tenoc
{
namespace
{

CacheParams
smallCache()
{
    CacheParams p;
    p.sizeBytes = 1024; // 16 lines
    p.lineBytes = 64;
    p.ways = 4;         // 4 sets
    return p;
}

TEST(Cache, GeometryComputed)
{
    Cache c(smallCache());
    EXPECT_EQ(c.numSets(), 4u);
    EXPECT_EQ(c.lineAddr(0x12345), 0x12340ull & ~0x3full);
}

TEST(Cache, MissThenFillThenHit)
{
    Cache c(smallCache());
    EXPECT_FALSE(c.access(0x1000, false).hit);
    EXPECT_FALSE(c.probe(0x1000));
    c.fill(0x1000, false);
    EXPECT_TRUE(c.probe(0x1000));
    EXPECT_TRUE(c.access(0x1000, false).hit);
    EXPECT_EQ(c.hits(), 1u);
    EXPECT_EQ(c.misses(), 1u);
}

TEST(Cache, LruEviction)
{
    Cache c(smallCache());
    // Fill all 4 ways of set 0 (stride = sets * line = 256).
    for (Addr i = 0; i < 4; ++i)
        c.fill(i * 256, false);
    // Touch line 0 so line 256 becomes LRU.
    EXPECT_TRUE(c.access(0, false).hit);
    c.fill(4 * 256, false);
    EXPECT_TRUE(c.probe(0));
    EXPECT_FALSE(c.probe(256)); // evicted
    EXPECT_TRUE(c.probe(4 * 256));
}

TEST(Cache, DirtyEvictionReturnsVictimAddress)
{
    Cache c(smallCache());
    for (Addr i = 0; i < 4; ++i)
        c.fill(i * 256, false);
    EXPECT_TRUE(c.access(0, true).hit); // dirty line 0
    for (Addr i = 1; i < 4; ++i)
        c.access(i * 256, false); // freshen others; 0 becomes LRU
    const auto wb = c.fill(4 * 256, false);
    ASSERT_TRUE(wb.has_value());
    EXPECT_EQ(*wb, 0u);
}

TEST(Cache, CleanEvictionHasNoWriteback)
{
    Cache c(smallCache());
    for (Addr i = 0; i < 5; ++i) {
        const auto wb = c.fill(i * 256, false);
        EXPECT_FALSE(wb.has_value());
    }
}

TEST(Cache, FillDirtyMarksLine)
{
    Cache c(smallCache());
    c.fill(0x40, true);
    for (Addr i = 1; i < 5; ++i)
        c.fill(0x40 + i * 256, false);
    // 0x40 was LRU and dirty -> the last fill must have written back.
    EXPECT_FALSE(c.probe(0x40));
}

TEST(Cache, DuplicateFillRefreshes)
{
    Cache c(smallCache());
    c.fill(0x80, false);
    const auto wb = c.fill(0x80, true);
    EXPECT_FALSE(wb.has_value());
    EXPECT_TRUE(c.probe(0x80));
}

TEST(Cache, FlushInvalidatesEverything)
{
    Cache c(smallCache());
    c.fill(0x100, true);
    c.flush();
    EXPECT_FALSE(c.probe(0x100));
}

TEST(Cache, ProfileModeMatchesHitRate)
{
    CacheParams p = smallCache();
    p.mode = CacheParams::Mode::PROFILE;
    p.profileHitRate = 0.7;
    p.profileWritebackRate = 0.5;
    Cache c(p, 42);
    unsigned hits = 0;
    unsigned wbs = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const auto r = c.access(static_cast<Addr>(i) * 64, false);
        hits += r.hit;
        wbs += r.writeback.has_value();
    }
    EXPECT_NEAR(hits / double(n), 0.7, 0.02);
    // Writebacks occur on half the misses.
    EXPECT_NEAR(wbs / double(n), 0.3 * 0.5, 0.02);
    EXPECT_NEAR(c.hitRate(), 0.7, 0.02);
}

TEST(Cache, ProfileModeFillIsNoop)
{
    CacheParams p = smallCache();
    p.mode = CacheParams::Mode::PROFILE;
    p.profileHitRate = 0.0;
    Cache c(p);
    EXPECT_FALSE(c.fill(0x40, true).has_value());
    EXPECT_FALSE(c.probe(0x40));
}

TEST(CacheDeath, BadGeometryPanics)
{
    CacheParams p;
    p.sizeBytes = 1000; // not a power-of-two line multiple
    p.lineBytes = 48;
    EXPECT_DEATH({ Cache c(p); }, "pow2");
}

/** Parameterized sweep over Table II geometries. */
class CacheGeometry
    : public ::testing::TestWithParam<std::tuple<std::uint64_t,
                                                 unsigned, unsigned>>
{};

TEST_P(CacheGeometry, FillsAndHitsWholeCapacity)
{
    auto [size, line, ways] = GetParam();
    CacheParams p;
    p.sizeBytes = size;
    p.lineBytes = line;
    p.ways = ways;
    Cache c(p);
    const std::uint64_t lines = size / line;
    for (std::uint64_t i = 0; i < lines; ++i)
        c.fill(i * line, false);
    for (std::uint64_t i = 0; i < lines; ++i)
        EXPECT_TRUE(c.access(i * line, false).hit);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometry,
    ::testing::Values(std::tuple{16ull * 1024, 64u, 4u},   // L1
                      std::tuple{128ull * 1024, 64u, 8u},  // L2 bank
                      std::tuple{8ull * 1024, 64u, 2u},
                      std::tuple{4ull * 1024, 128u, 4u},
                      std::tuple{1ull * 1024, 64u, 16u})); // fully assoc

} // namespace
} // namespace tenoc
