/**
 * @file
 * Tests for the telemetry subsystem: JSON model round trips, metric
 * sinks versus StatGroup::dump, interval-sampler window semantics
 * (including cross-clock-domain driving), Chrome trace output, CLI
 * flag parsing, and an end-to-end mesh run through a TelemetryHub.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/clock.hh"
#include "common/stats.hh"
#include "noc/mesh_network.hh"
#include "telemetry/interval_sampler.hh"
#include "telemetry/json.hh"
#include "telemetry/metric_sink.hh"
#include "telemetry/telemetry.hh"
#include "telemetry/trace_sink.hh"

namespace tenoc
{
namespace
{

using telemetry::JsonValue;

// ---------------------------------------------------------------- JSON

TEST(Json, WriteParseRoundTrip)
{
    JsonValue doc = JsonValue::makeObject();
    doc.set("int", JsonValue(42));
    doc.set("neg", JsonValue(-3.5));
    doc.set("big", JsonValue(std::uint64_t{123456789012345}));
    doc.set("str", JsonValue("hi \"there\"\n\t\\"));
    doc.set("flag", JsonValue(true));
    doc.set("nil", JsonValue());
    JsonValue arr = JsonValue::makeArray();
    arr.push(JsonValue(1));
    arr.push(JsonValue("two"));
    JsonValue nested = JsonValue::makeObject();
    nested.set("x", JsonValue(0.25));
    arr.push(std::move(nested));
    doc.set("arr", std::move(arr));

    for (unsigned indent : {0u, 2u}) {
        JsonValue back;
        std::string err;
        ASSERT_TRUE(
            JsonValue::parse(doc.toString(indent), back, &err))
            << err;
        EXPECT_DOUBLE_EQ(back.find("int")->asNumber(), 42.0);
        EXPECT_DOUBLE_EQ(back.find("neg")->asNumber(), -3.5);
        EXPECT_DOUBLE_EQ(back.find("big")->asNumber(),
                         123456789012345.0);
        EXPECT_EQ(back.find("str")->asString(), "hi \"there\"\n\t\\");
        EXPECT_TRUE(back.find("flag")->asBool());
        EXPECT_TRUE(back.find("nil")->isNull());
        const auto &a = back.find("arr")->asArray();
        ASSERT_EQ(a.size(), 3u);
        EXPECT_EQ(a[1].asString(), "two");
        EXPECT_DOUBLE_EQ(a[2].find("x")->asNumber(), 0.25);
    }
}

TEST(Json, ParseUnicodeEscapes)
{
    JsonValue v;
    ASSERT_TRUE(
        JsonValue::parse("\"a\\u0041\\u00e9\"", v, nullptr));
    EXPECT_EQ(v.asString(), "aA\xc3\xa9");
    // Surrogate pair: U+1F600.
    ASSERT_TRUE(
        JsonValue::parse("\"\\ud83d\\ude00\"", v, nullptr));
    EXPECT_EQ(v.asString(), "\xf0\x9f\x98\x80");
}

TEST(Json, ParseRejectsGarbage)
{
    JsonValue v;
    std::string err;
    EXPECT_FALSE(JsonValue::parse("{", v, &err));
    EXPECT_FALSE(JsonValue::parse("[1,]", v, &err));
    EXPECT_FALSE(JsonValue::parse("{} trailing", v, &err));
    EXPECT_FALSE(JsonValue::parse("'single'", v, &err));
    EXPECT_FALSE(err.empty());
}

// ---------------------------------------------------------- metric sinks

/** Builds a small but full-featured stats hierarchy for sink tests. */
struct SampleStats
{
    Counter hits{"hits"};
    Accumulator lat{"lat"};
    Histogram hist{"hist", 0.0, 10.0, 5};
    StatGroup l1{"l1"};
    StatGroup root{"core0"};

    SampleStats()
    {
        hits.inc(7);
        lat.sample(2.0);
        lat.sample(4.0);
        hist.sample(1.0);
        hist.sample(9.0);
        l1.add(&hits);
        root.addChild(&l1);
        root.add(&lat);
        root.add(&hist);
        root.addValue("ipc", [] { return 1.25; });
    }
};

/** Parses "name value" dump lines into (name, value) pairs. */
std::vector<std::pair<std::string, double>>
dumpLines(const StatGroup &g)
{
    std::ostringstream os;
    g.dump(os);
    std::vector<std::pair<std::string, double>> out;
    std::istringstream is(os.str());
    std::string name;
    double value;
    while (is >> name >> value)
        out.push_back({name, value});
    return out;
}

TEST(JsonMetricSink, ContainsEveryDumpLine)
{
    SampleStats s;
    std::ostringstream os;
    telemetry::JsonMetricSink().write(s.root, os);

    JsonValue doc;
    std::string err;
    ASSERT_TRUE(JsonValue::parse(os.str(), doc, &err)) << err;
    EXPECT_EQ(doc.find("schema")->asString(), "tenoc-metrics-v1");
    const JsonValue *metrics = doc.find("metrics");
    ASSERT_NE(metrics, nullptr);

    const auto lines = dumpLines(s.root);
    ASSERT_FALSE(lines.empty());
    for (const auto &[name, value] : lines) {
        const JsonValue *v = metrics->find(name);
        ASSERT_NE(v, nullptr) << "missing metric: " << name;
        EXPECT_DOUBLE_EQ(v->asNumber(), value) << name;
    }

    // Histogram bucket data rides along.
    const JsonValue *h = doc.find("histograms");
    ASSERT_NE(h, nullptr);
    const JsonValue *hv = h->find("core0.hist");
    ASSERT_NE(hv, nullptr);
    EXPECT_DOUBLE_EQ(hv->find("low")->asNumber(), 0.0);
    EXPECT_DOUBLE_EQ(hv->find("high")->asNumber(), 10.0);
    EXPECT_DOUBLE_EQ(hv->find("count")->asNumber(), 2.0);
    const auto &counts = hv->find("counts")->asArray();
    ASSERT_EQ(counts.size(), 5u);
    EXPECT_DOUBLE_EQ(counts[0].asNumber(), 1.0);
    EXPECT_DOUBLE_EQ(counts[4].asNumber(), 1.0);
}

TEST(CsvMetricSink, EmitsNameValueRows)
{
    SampleStats s;
    std::ostringstream os;
    telemetry::CsvMetricSink().write(s.root, os);
    const std::string out = os.str();
    EXPECT_EQ(out.rfind("name,value\n", 0), 0u);
    EXPECT_NE(out.find("core0.l1.hits,7\n"), std::string::npos);
    EXPECT_NE(out.find("core0.lat.mean,3\n"), std::string::npos);
    EXPECT_NE(out.find("core0.ipc,1.25\n"), std::string::npos);
    EXPECT_NE(out.find("core0.hist.bucket[0],1\n"), std::string::npos);
    EXPECT_NE(out.find("core0.hist.bucket[4],1\n"), std::string::npos);
}

TEST(MetricSinks, WriteMetricsFilePicksFormatByExtension)
{
    SampleStats s;
    const std::string dir = testing::TempDir();
    const std::string json_path = dir + "/tenoc_metrics.json";
    const std::string csv_path = dir + "/tenoc_metrics.csv";
    ASSERT_TRUE(telemetry::writeMetricsFile(s.root, json_path));
    ASSERT_TRUE(telemetry::writeMetricsFile(s.root, csv_path));

    std::stringstream js;
    js << std::ifstream(json_path).rdbuf();
    JsonValue doc;
    EXPECT_TRUE(JsonValue::parse(js.str(), doc, nullptr));

    std::stringstream cs;
    cs << std::ifstream(csv_path).rdbuf();
    EXPECT_EQ(cs.str().rfind("name,value\n", 0), 0u);
    std::remove(json_path.c_str());
    std::remove(csv_path.c_str());
}

// ------------------------------------------------------ interval sampler

TEST(IntervalSampler, CounterDeltasAndGauges)
{
    telemetry::IntervalSampler s(100);
    double total = 0.0;
    double level = 0.0;
    s.addCounter("flits", [&] { return total; });
    s.addGauge("occ", [&] { return level; });

    total = 10.0;
    level = 3.0;
    s.tick(50); // mid-window: no row
    EXPECT_EQ(s.numRows(), 0u);
    s.tick(100); // first boundary
    ASSERT_EQ(s.numRows(), 1u);
    EXPECT_EQ(s.rowStart(0), 0u);
    EXPECT_EQ(s.rowEnd(0), 100u);
    EXPECT_DOUBLE_EQ(s.row(0)[0], 10.0); // delta over the window
    EXPECT_DOUBLE_EQ(s.row(0)[1], 3.0);  // instantaneous

    total = 25.0;
    level = 1.0;
    s.tick(200);
    ASSERT_EQ(s.numRows(), 2u);
    EXPECT_DOUBLE_EQ(s.row(1)[0], 15.0); // only this window's delta
    EXPECT_DOUBLE_EQ(s.row(1)[1], 1.0);
}

TEST(IntervalSampler, MultiWindowJumpEmitsEveryRow)
{
    telemetry::IntervalSampler s(10);
    double total = 0.0;
    s.addCounter("c", [&] { return total; });
    total = 7.0;
    s.tick(35); // crosses windows [0,10), [10,20), [20,30)
    ASSERT_EQ(s.numRows(), 3u);
    // The whole delta lands in the first crossed window.
    EXPECT_DOUBLE_EQ(s.row(0)[0], 7.0);
    EXPECT_DOUBLE_EQ(s.row(1)[0], 0.0);
    EXPECT_DOUBLE_EQ(s.row(2)[0], 0.0);
    EXPECT_EQ(s.rowStart(2), 20u);
    EXPECT_EQ(s.rowEnd(2), 30u);
}

TEST(IntervalSampler, FinishFlushesPartialWindowOnce)
{
    telemetry::IntervalSampler s(100);
    double total = 0.0;
    s.addCounter("c", [&] { return total; });
    total = 5.0;
    s.finish(42);
    ASSERT_EQ(s.numRows(), 1u);
    EXPECT_EQ(s.rowStart(0), 0u);
    EXPECT_EQ(s.rowEnd(0), 42u);
    EXPECT_DOUBLE_EQ(s.row(0)[0], 5.0);
    s.finish(42); // idempotent
    EXPECT_EQ(s.numRows(), 1u);
}

TEST(IntervalSampler, VectorProbesExpandToColumns)
{
    telemetry::IntervalSampler s(10);
    s.addGaugeVector("occ", 3,
                     [](std::size_t i) { return double(i) * 2.0; });
    ASSERT_EQ(s.columns().size(), 3u);
    EXPECT_EQ(s.columns()[0], "occ[0]");
    EXPECT_EQ(s.columns()[2], "occ[2]");
    s.tick(10);
    ASSERT_EQ(s.numRows(), 1u);
    EXPECT_DOUBLE_EQ(s.row(0)[2], 4.0);
}

TEST(IntervalSampler, AlignToEmitsWarmupRowThenAlignedWindows)
{
    telemetry::IntervalSampler s(100);
    double total = 0.0;
    s.addCounter("flits", [&] { return total; });
    s.alignTo(250); // warmup cycles [0, 250)

    total = 5.0;
    s.tick(100); // inside warmup: no row yet
    EXPECT_EQ(s.numRows(), 0u);
    total = 9.0;
    s.tick(250); // warmup boundary: dedicated warmup row
    ASSERT_EQ(s.numRows(), 1u);
    EXPECT_EQ(s.rowStart(0), 0u);
    EXPECT_EQ(s.rowEnd(0), 250u);
    EXPECT_DOUBLE_EQ(s.row(0)[0], 9.0); // warmup deltas kept

    total = 21.0;
    s.tick(350); // first measurement window [250, 350)
    ASSERT_EQ(s.numRows(), 2u);
    EXPECT_EQ(s.rowStart(1), 250u);
    EXPECT_EQ(s.rowEnd(1), 350u);
    EXPECT_DOUBLE_EQ(s.row(1)[0], 12.0);

    // Column sums stay exhaustive: warmup + windows == final total.
    total = 30.0;
    s.finish(400);
    ASSERT_EQ(s.numRows(), 3u);
    EXPECT_DOUBLE_EQ(s.row(0)[0] + s.row(1)[0] + s.row(2)[0], 30.0);
}

TEST(IntervalSampler, AlignToZeroIsPlainWindowing)
{
    telemetry::IntervalSampler s(10);
    double total = 0.0;
    s.addCounter("c", [&] { return total; });
    s.alignTo(0);
    total = 4.0;
    s.tick(10);
    ASSERT_EQ(s.numRows(), 1u);
    EXPECT_EQ(s.rowStart(0), 0u);
    EXPECT_EQ(s.rowEnd(0), 10u);
}

TEST(IntervalSampler, CsvFormat)
{
    telemetry::IntervalSampler s(10);
    double total = 0.0;
    s.addCounter("flits", [&] { return total; });
    total = 4.0;
    s.tick(10);
    total = 6.0;
    s.finish(15);
    std::ostringstream os;
    s.writeCsv(os);
    EXPECT_EQ(os.str(), "window,start,end,flits\n"
                        "0,0,10,4\n"
                        "1,10,15,2\n");
}

TEST(IntervalSampler, DrivenAcrossClockDomains)
{
    // Tick the sampler from the icnt domain of a three-domain clock
    // set (Table II frequencies): rows must land exactly one per
    // icnt-cycle window regardless of the other domains' edges.
    ClockDomainSet clocks;
    const auto core = clocks.addDomain("core", 1296.0);
    const auto icnt = clocks.addDomain("icnt", 602.0);
    const auto mem = clocks.addDomain("mem", 1107.0);
    (void)core;
    (void)mem;

    const Cycle window = 25;
    telemetry::IntervalSampler s(window);
    Cycle icnt_now = 0;
    s.addGauge("now", [&] { return double(icnt_now); });

    while (icnt_now < 200) {
        const auto &ticked = clocks.advance();
        if (ticked[icnt]) {
            ++icnt_now;
            s.tick(icnt_now);
        }
    }
    ASSERT_EQ(s.numRows(), 200 / window);
    for (std::size_t i = 0; i < s.numRows(); ++i) {
        EXPECT_EQ(s.rowStart(i), i * window);
        EXPECT_EQ(s.rowEnd(i), (i + 1) * window);
    }
}

// ------------------------------------------------------------ trace sink

TEST(TraceSink, SamplingGate)
{
    telemetry::ChromeTraceSink t(64);
    EXPECT_TRUE(t.wants(0));
    EXPECT_TRUE(t.wants(64));
    EXPECT_TRUE(t.wants(128));
    EXPECT_FALSE(t.wants(1));
    EXPECT_FALSE(t.wants(63));
    telemetry::ChromeTraceSink all(1);
    EXPECT_TRUE(all.wants(17));
}

TEST(TraceSink, ChromeEventsParseBack)
{
    telemetry::ChromeTraceSink t(1);
    t.complete("hop", 3, 42, 10, 15);
    t.instant("va", 4, 42, 12);
    std::ostringstream os;
    t.write(os);

    JsonValue doc;
    std::string err;
    ASSERT_TRUE(JsonValue::parse(os.str(), doc, &err)) << err;
    ASSERT_TRUE(doc.isArray());
    ASSERT_EQ(doc.asArray().size(), 2u);
    for (const auto &e : doc.asArray()) {
        ASSERT_TRUE(e.isObject());
        EXPECT_TRUE(e.has("name"));
        EXPECT_TRUE(e.has("ph"));
        EXPECT_TRUE(e.has("ts"));
        EXPECT_TRUE(e.has("pid"));
        EXPECT_TRUE(e.has("tid"));
    }
    const auto &hop = doc.asArray()[0];
    EXPECT_EQ(hop.find("name")->asString(), "hop");
    EXPECT_EQ(hop.find("ph")->asString(), "X");
    EXPECT_DOUBLE_EQ(hop.find("ts")->asNumber(), 10.0);
    EXPECT_DOUBLE_EQ(hop.find("dur")->asNumber(), 5.0);
    EXPECT_DOUBLE_EQ(hop.find("pid")->asNumber(), 3.0);
    EXPECT_DOUBLE_EQ(hop.find("tid")->asNumber(), 42.0);
    const auto &va = doc.asArray()[1];
    EXPECT_EQ(va.find("ph")->asString(), "i");
    EXPECT_FALSE(va.has("dur"));
}

// ------------------------------------------------------------- CLI flags

TEST(TelemetryFlags, ParsesAndStripsKnownFlags)
{
    const char *argv0[] = {"prog",       "--stats-json", "m.json",
                           "0.5",        "--interval-csv=iv.csv",
                           "--interval", "500",          "--trace",
                           "t.json",     "--trace-sample=8",
                           "extra"};
    std::vector<char *> argv;
    for (const char *a : argv0)
        argv.push_back(const_cast<char *>(a));
    argv.push_back(nullptr);
    int argc = static_cast<int>(argv.size()) - 1;

    const auto cfg =
        telemetry::parseTelemetryFlags(argc, argv.data());
    EXPECT_EQ(cfg.statsJsonPath, "m.json");
    EXPECT_EQ(cfg.intervalCsvPath, "iv.csv");
    EXPECT_EQ(cfg.intervalCycles, 500u);
    EXPECT_EQ(cfg.tracePath, "t.json");
    EXPECT_EQ(cfg.traceSampleEvery, 8u);
    EXPECT_TRUE(cfg.any());

    // Positional arguments survive, in order.
    ASSERT_EQ(argc, 3);
    EXPECT_STREQ(argv[0], "prog");
    EXPECT_STREQ(argv[1], "0.5");
    EXPECT_STREQ(argv[2], "extra");
    EXPECT_EQ(argv[3], nullptr);
}

TEST(TelemetryFlags, EmptyWhenNoFlags)
{
    const char *argv0[] = {"prog", "1.0"};
    std::vector<char *> argv;
    for (const char *a : argv0)
        argv.push_back(const_cast<char *>(a));
    argv.push_back(nullptr);
    int argc = 2;
    const auto cfg =
        telemetry::parseTelemetryFlags(argc, argv.data());
    EXPECT_FALSE(cfg.any());
    EXPECT_EQ(argc, 2);
    EXPECT_EQ(cfg.intervalCycles, 1000u); // defaults intact
    EXPECT_EQ(cfg.traceSampleEvery, 64u);
}

// ------------------------------------------------------------ end to end

TEST(TelemetryHub, EndToEndMeshRun)
{
    const std::string dir = testing::TempDir();
    telemetry::TelemetryConfig cfg;
    cfg.statsJsonPath = dir + "/tenoc_e2e_stats.json";
    cfg.intervalCsvPath = dir + "/tenoc_e2e_interval.csv";
    cfg.tracePath = dir + "/tenoc_e2e_trace.json";
    cfg.intervalCycles = 64;
    cfg.traceSampleEvery = 1;
    telemetry::TelemetryHub hub(cfg);

    MeshNetworkParams p;
    p.topo.rows = 4;
    p.topo.cols = 4;
    MeshNetwork net(p);
    struct Sink : PacketSink
    {
        bool tryReserve(const Packet &) override { return true; }
        void deliver(PacketPtr, Cycle) override {}
    } sink;
    for (NodeId n = 0; n < net.topology().numNodes(); ++n)
        net.setSink(n, &sink);
    net.attachTelemetry(hub);

    Cycle now = 0;
    for (; now < 300; ++now) {
        if (now < 200 && now % 4 == 0 && net.canInject(0, 0)) {
            auto pkt = makePacket();
            pkt->src = 0;
            pkt->dst = static_cast<NodeId>(15 - (now / 4) % 15);
            pkt->sizeFlits = 2;
            pkt->sizeBytes = 32;
            net.inject(std::move(pkt), now);
        }
        net.cycle(now);
        hub.tick(now + 1);
    }
    hub.finish(now);

    StatGroup root("net");
    net.stats().registerStats(root);
    ASSERT_TRUE(hub.writeOutputs(&root));
    ASSERT_GT(net.stats().packetsEjected, 0u);

    // Stats JSON: parses and matches the dump.
    {
        std::stringstream ss;
        ss << std::ifstream(cfg.statsJsonPath).rdbuf();
        JsonValue doc;
        std::string err;
        ASSERT_TRUE(JsonValue::parse(ss.str(), doc, &err)) << err;
        const JsonValue *metrics = doc.find("metrics");
        ASSERT_NE(metrics, nullptr);
        // dump() prints 6 significant digits; the JSON keeps full
        // precision, so compare with a matching relative tolerance.
        for (const auto &[name, value] : dumpLines(root)) {
            const JsonValue *v = metrics->find(name);
            ASSERT_NE(v, nullptr) << "missing metric: " << name;
            EXPECT_NEAR(v->asNumber(), value,
                        1e-9 + 1e-5 * std::abs(value))
                << name;
        }
    }

    // Interval CSV: one row per full window plus the partial tail.
    {
        std::ifstream is(cfg.intervalCsvPath);
        std::string line;
        ASSERT_TRUE(std::getline(is, line));
        EXPECT_EQ(line.rfind("window,start,end,", 0), 0u);
        EXPECT_NE(line.find("router_occ[0]"), std::string::npos);
        EXPECT_NE(line.find("link_flits[0]"), std::string::npos);
        std::size_t rows = 0;
        while (std::getline(is, line))
            ++rows;
        EXPECT_EQ(rows, 300u / 64u + 1u);
    }

    // Trace: valid Chrome trace-event JSON with the expected phases.
    {
        std::stringstream ss;
        ss << std::ifstream(cfg.tracePath).rdbuf();
        JsonValue doc;
        std::string err;
        ASSERT_TRUE(JsonValue::parse(ss.str(), doc, &err)) << err;
        ASSERT_TRUE(doc.isArray());
        ASSERT_GT(doc.asArray().size(), 0u);
        bool saw_inject = false;
        bool saw_hop = false;
        bool saw_eject = false;
        for (const auto &e : doc.asArray()) {
            ASSERT_TRUE(e.has("name") && e.has("ph") && e.has("ts") &&
                        e.has("pid") && e.has("tid"));
            const auto &name = e.find("name")->asString();
            saw_inject |= name == "inject_queue";
            saw_hop |= name == "hop" || name == "eject_hop";
            saw_eject |= name == "eject";
        }
        EXPECT_TRUE(saw_inject);
        EXPECT_TRUE(saw_hop);
        EXPECT_TRUE(saw_eject);
    }

    std::remove(cfg.statsJsonPath.c_str());
    std::remove(cfg.intervalCsvPath.c_str());
    std::remove(cfg.tracePath.c_str());
}

TEST(TelemetryHub, NoSinksMeansNullAccessors)
{
    telemetry::TelemetryConfig cfg;
    EXPECT_FALSE(cfg.any());
    telemetry::TelemetryHub hub(cfg);
    EXPECT_EQ(hub.sampler(), nullptr);
    EXPECT_EQ(hub.tracer(), nullptr);
    EXPECT_FALSE(hub.wantsStats());
    hub.tick(123);   // null-sink fast path: no-op
    hub.finish(456);
    EXPECT_TRUE(hub.writeOutputs(nullptr)); // nothing requested
}

} // namespace
} // namespace tenoc
