/**
 * @file
 * Structure-of-arrays layout suite (noc/slab.hh and its consumers).
 *
 * The VcSlabs arena is pure storage: every router/VC state machine
 * reads and writes through it, so a layout bug shows up as a stats
 * divergence somewhere in the scheduler/threading/fault matrix.  Three
 * layers of coverage:
 *   1. arena mechanics — configure() growth and shrink-with-reuse,
 *      release of stale packet references, ring wraparound, and the
 *      out-of-range index assertions armed by TENOC_VALIDATE=1;
 *   2. view independence — InputPort views at different bases of one
 *      arena must not alias;
 *   3. sealed-stats equality — the identical seeded workload run
 *      across the full idleSkip x validate x cycleThreads toggle cube,
 *      crossed with the semantic axes (fault injection, single vs
 *      sliced double network), each cell compared field-for-field
 *      against its base run.
 */

#include <gtest/gtest.h>

#include <string>

#include "common/parallel.hh"
#include "common/rng.hh"
#include "noc/buffer.hh"
#include "noc/mesh_network.hh"
#include "noc/slab.hh"

namespace tenoc
{
namespace
{

Flit
makeFlit(unsigned vc, bool head = true, bool tail = true)
{
    auto pkt = makePacket();
    pkt->sizeFlits = 1;
    Flit f;
    f.pkt = std::move(pkt);
    f.head = head;
    f.tail = tail;
    f.vc = vc;
    return f;
}

// --------------------------------------------------------------------
// 1. Arena mechanics
// --------------------------------------------------------------------

TEST(VcSlabs, ConfigureSizesAllArrays)
{
    VcSlabs slabs;
    slabs.configure(6, 10, 4);
    EXPECT_EQ(slabs.numInputVcs(), 6u);
    EXPECT_EQ(slabs.numOutputVcs(), 10u);
    EXPECT_EQ(slabs.depth(), 4u);
    EXPECT_EQ(slabs.flits.size(), 24u);
    EXPECT_EQ(slabs.inState.size(), 6u);
    EXPECT_EQ(slabs.inBaseVc.size(), 6u);
    EXPECT_EQ(slabs.outCredits.size(), 10u);
    for (std::size_t i = 0; i < slabs.numInputVcs(); ++i) {
        EXPECT_EQ(slabs.inState[i], VcState::IDLE);
        EXPECT_EQ(slabs.ringCount[i], 0u);
    }
}

TEST(VcSlabs, RingWrapsAroundThroughSteadyState)
{
    VcSlabs slabs;
    slabs.configure(2, 0, 3);
    // Push/pop more flits than the depth so head wraps repeatedly.
    std::uint32_t next_seq = 1;
    for (unsigned round = 0; round < 7; ++round) {
        auto f = makeFlit(1);
        f.seq = next_seq++;
        slabs.pushFlit(1, std::move(f));
        if (round >= 1) {
            const Flit popped = slabs.popFlit(1);
            EXPECT_EQ(popped.seq, next_seq - 2);
        }
    }
    EXPECT_EQ(slabs.ringCount[1], 1u);
    EXPECT_EQ(slabs.frontFlit(1).seq, next_seq - 1);
    // Ring 0 was never touched.
    EXPECT_EQ(slabs.ringCount[0], 0u);
}

TEST(VcSlabs, ReconfigureGrowsAndShrinksWithStateReset)
{
    VcSlabs slabs;
    slabs.configure(4, 4, 2);
    slabs.inState[3] = VcState::ACTIVE;
    slabs.outOwned[2] = 1;
    slabs.outCredits[1] = 7;
    slabs.pushFlit(0, makeFlit(0));

    // Grow: more VCs, deeper rings.
    slabs.configure(16, 8, 5);
    EXPECT_EQ(slabs.numInputVcs(), 16u);
    EXPECT_EQ(slabs.depth(), 5u);
    EXPECT_EQ(slabs.flits.size(), 80u);
    for (std::size_t i = 0; i < 16; ++i) {
        EXPECT_EQ(slabs.inState[i], VcState::IDLE);
        EXPECT_EQ(slabs.ringCount[i], 0u);
    }
    for (std::size_t o = 0; o < 8; ++o) {
        EXPECT_EQ(slabs.outOwned[o], 0u);
        EXPECT_EQ(slabs.outCredits[o], 0u);
    }

    // Shrink back below the original size: capacity is reused, state
    // still fully reset.
    slabs.configure(2, 2, 1);
    EXPECT_EQ(slabs.numInputVcs(), 2u);
    EXPECT_EQ(slabs.flits.size(), 2u);
    EXPECT_EQ(slabs.inState[0], VcState::IDLE);
    EXPECT_EQ(slabs.ringCount[1], 0u);
}

TEST(VcSlabs, ReconfigureReleasesStalePacketReferences)
{
    VcSlabs slabs;
    slabs.configure(1, 0, 2);
    auto pkt = makePacket();
    pkt->sizeFlits = 1;
    Flit f;
    f.pkt = pkt; // second reference held by the ring slot
    f.head = f.tail = true;
    slabs.pushFlit(0, std::move(f));
    ASSERT_EQ(pkt.use_count(), 2u);
    // A reused arena must not pin packets from the previous
    // configuration alive.
    slabs.configure(1, 0, 2);
    EXPECT_EQ(pkt.use_count(), 1u);
}

TEST(VcSlabsDeathTest, ValidateArmsOutOfRangeChecks)
{
    VcSlabs slabs;
    slabs.configure(2, 2, 2);
    slabs.setValidate(true);
    EXPECT_DEATH(slabs.pushFlit(5, makeFlit(0)), "out of range");
    EXPECT_DEATH(slabs.popFlit(9), "out of range");
}

TEST(VcSlabsDeathTest, OverflowPanicsEvenWithoutValidate)
{
    VcSlabs slabs;
    slabs.configure(1, 0, 1);
    slabs.pushFlit(0, makeFlit(0));
    // The credit protocol assert stays on in every build: overflow is
    // memory corruption in ring storage.
    EXPECT_DEATH(slabs.pushFlit(0, makeFlit(0)), "overflow");
}

// --------------------------------------------------------------------
// 2. View independence
// --------------------------------------------------------------------

TEST(VcSlabs, PortViewsAtDifferentBasesDoNotAlias)
{
    VcSlabs slabs;
    slabs.configure(6, 0, 3);
    InputPort a(slabs, 0, 2, 3); // VCs [0, 2)
    InputPort b(slabs, 2, 4, 3); // VCs [2, 6)

    auto fa = makeFlit(1);
    fa.seq = 11;
    a.push(std::move(fa), 5);
    auto fb = makeFlit(1);
    fb.seq = 22;
    b.push(std::move(fb), 6);
    a.setState(1, VcState::ACTIVE);
    b.setState(1, VcState::VC_ALLOC);
    b.setBaseVc(1, 3);

    EXPECT_EQ(a.front(1).seq, 11u);
    EXPECT_EQ(b.front(1).seq, 22u);
    EXPECT_EQ(a.state(1), VcState::ACTIVE);
    EXPECT_EQ(b.state(1), VcState::VC_ALLOC);
    EXPECT_EQ(b.baseVc(1), 3u);
    EXPECT_EQ(a.totalOccupancy(), 1u);
    EXPECT_EQ(b.totalOccupancy(), 1u);
    // The underlying slots are the global indices 1 and 3.
    EXPECT_EQ(slabs.ringCount[1], 1u);
    EXPECT_EQ(slabs.ringCount[3], 1u);
    EXPECT_EQ(slabs.ringCount[0], 0u);
}

// --------------------------------------------------------------------
// 3. Sealed-stats equality across the toggle cube
// --------------------------------------------------------------------

/** Accepts everything, keeps nothing. */
struct DropSink : PacketSink
{
    bool tryReserve(const Packet &) override { return true; }
    void deliver(PacketPtr, Cycle) override {}
};

void
expectAccumulatorsEqual(const Accumulator &a, const Accumulator &b)
{
    EXPECT_EQ(a.count(), b.count()) << a.name();
    EXPECT_EQ(a.sum(), b.sum()) << a.name();
    EXPECT_EQ(a.min(), b.min()) << a.name();
    EXPECT_EQ(a.max(), b.max()) << a.name();
}

void
expectHistogramsEqual(const Histogram &a, const Histogram &b)
{
    EXPECT_EQ(a.count(), b.count()) << a.name();
    EXPECT_EQ(a.mean(), b.mean()) << a.name();
    EXPECT_EQ(a.buckets(), b.buckets()) << a.name();
}

void
expectStatsEqual(const NetStats &a, const NetStats &b)
{
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.packetsInjected, b.packetsInjected);
    EXPECT_EQ(a.packetsEjected, b.packetsEjected);
    EXPECT_EQ(a.flitsInjected, b.flitsInjected);
    EXPECT_EQ(a.flitsEjected, b.flitsEjected);
    EXPECT_EQ(a.nodeInjectedFlits, b.nodeInjectedFlits);
    EXPECT_EQ(a.nodeEjectedFlits, b.nodeEjectedFlits);
    EXPECT_EQ(a.nodeInjectedBytes, b.nodeInjectedBytes);
    EXPECT_EQ(a.nodeEjectedBytes, b.nodeEjectedBytes);
    expectAccumulatorsEqual(a.totalLatency, b.totalLatency);
    expectAccumulatorsEqual(a.netLatency, b.netLatency);
    expectHistogramsEqual(a.totalLatencyHist, b.totalLatencyHist);
    expectHistogramsEqual(a.queueLatencyHist, b.queueLatencyHist);
    expectHistogramsEqual(a.traversalLatencyHist,
                          b.traversalLatencyHist);
    expectHistogramsEqual(a.serializationLatencyHist,
                          b.serializationLatencyHist);
}

/** Drives `net` with seeded request/reply traffic, then drains. */
Cycle
drive(Network &net, std::uint64_t seed, Cycle cycles)
{
    DropSink sink;
    const auto &topo = net.topology();
    for (NodeId n = 0; n < topo.numNodes(); ++n)
        net.setSink(n, &sink);
    Rng rng(seed);
    Cycle now = 0;
    for (; now < cycles; ++now) {
        for (NodeId core : topo.computeNodes()) {
            if (rng.nextBool(0.04) && net.canInject(core, 0)) {
                auto pkt = makePacket();
                pkt->src = core;
                pkt->dst = rng.pick(topo.mcNodes());
                pkt->op = MemOp::READ_REQUEST;
                pkt->protoClass = 0;
                pkt->sizeFlits = net.packetFlits(MemOp::READ_REQUEST);
                pkt->sizeBytes = memOpBytes(MemOp::READ_REQUEST);
                net.inject(std::move(pkt), now);
            }
        }
        for (NodeId mc : topo.mcNodes()) {
            if (rng.nextBool(0.10) && net.canInject(mc, 1)) {
                auto pkt = makePacket();
                pkt->src = mc;
                pkt->dst = rng.pick(topo.computeNodes());
                pkt->op = MemOp::READ_REPLY;
                pkt->protoClass = 1;
                pkt->sizeFlits = net.packetFlits(MemOp::READ_REPLY);
                pkt->sizeBytes = memOpBytes(MemOp::READ_REPLY);
                net.inject(std::move(pkt), now);
            }
        }
        net.cycle(now);
    }
    while (!net.drained() && now < cycles + 100000)
        net.cycle(now++);
    EXPECT_TRUE(net.drained());
    return now;
}

/** The semantic axes: these change behavior, so each combination is
 *  its own equality base. */
struct SoaBase
{
    bool faults;
    bool sliced;
};

std::string
soaBaseName(const ::testing::TestParamInfo<SoaBase> &info)
{
    std::string name = info.param.faults ? "faults" : "clean";
    name += info.param.sliced ? "_double" : "_single";
    return name;
}

MeshNetworkParams
soaParams(const SoaBase &base, bool idle_skip, bool validate,
          unsigned threads)
{
    MeshNetworkParams p;
    p.seed = 11;
    p.idleSkip = idle_skip;
    p.cycleThreads = threads;
    if (validate) {
        p.validate = true;
        p.validateInterval = 16;
    }
    if (base.faults) {
        p.faults.linkStallRate = 2e-4;
        p.faults.linkStallDuration = 8;
        p.faults.routerFreezeRate = 1e-4;
        p.faults.routerFreezeDuration = 12;
        p.faults.seed = 77;
    }
    return p;
}

class SoaToggleMatrix : public ::testing::TestWithParam<SoaBase>
{};

TEST_P(SoaToggleMatrix, SealedStatsIdenticalAcrossToggles)
{
    const SoaBase base = GetParam();
    // Reference cell: full-tick, unvalidated, serial.
    const auto ref =
        makeMeshNetwork(soaParams(base, false, false, 1), base.sliced);
    const Cycle ref_done = drive(*ref, 97, 1200);

    for (const bool idle_skip : {false, true}) {
        for (const bool validate : {false, true}) {
            for (const unsigned threads : {1u, 2u}) {
                if (!idle_skip && !validate && threads == 1)
                    continue; // the reference itself
                const auto net = makeMeshNetwork(
                    soaParams(base, idle_skip, validate, threads),
                    base.sliced);
                const Cycle done = drive(*net, 97, 1200);
                SCOPED_TRACE("idleSkip=" + std::to_string(idle_skip) +
                             " validate=" + std::to_string(validate) +
                             " threads=" + std::to_string(threads));
                EXPECT_EQ(ref_done, done);
                expectStatsEqual(ref->stats(), net->stats());
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    SemanticAxes, SoaToggleMatrix,
    ::testing::Values(SoaBase{false, false}, SoaBase{false, true},
                      SoaBase{true, false}, SoaBase{true, true}),
    soaBaseName);

} // namespace
} // namespace tenoc
