/**
 * @file
 * Unit tests for input-port VC buffers.
 */

#include <gtest/gtest.h>

#include "noc/buffer.hh"

namespace tenoc
{
namespace
{

Flit
makeFlit(unsigned vc, bool head = true, bool tail = true)
{
    auto pkt = makePacket();
    pkt->sizeFlits = 1;
    Flit f;
    f.pkt = std::move(pkt);
    f.head = head;
    f.tail = tail;
    f.vc = vc;
    return f;
}

TEST(InputPort, PushPopFifoOrder)
{
    InputPort port(2, 4);
    auto a = makeFlit(0);
    a.seq = 1;
    auto b = makeFlit(0);
    b.seq = 2;
    port.push(std::move(a), 10);
    port.push(std::move(b), 11);
    EXPECT_EQ(port.occupancy(0), 2u);
    EXPECT_EQ(port.front(0).seq, 1u);
    EXPECT_EQ(port.front(0).enqueueCycle, 10u);
    EXPECT_EQ(port.pop(0).seq, 1u);
    EXPECT_EQ(port.pop(0).seq, 2u);
    EXPECT_TRUE(port.empty(0));
}

TEST(InputPort, VcsAreIndependent)
{
    InputPort port(3, 2);
    port.push(makeFlit(0), 0);
    port.push(makeFlit(2), 0);
    EXPECT_EQ(port.occupancy(0), 1u);
    EXPECT_EQ(port.occupancy(1), 0u);
    EXPECT_EQ(port.occupancy(2), 1u);
    EXPECT_EQ(port.freeSlots(0), 1u);
    EXPECT_EQ(port.freeSlots(1), 2u);
    EXPECT_EQ(port.totalOccupancy(), 2u);
}

TEST(InputPort, StateMachineFields)
{
    InputPort port(2, 4);
    EXPECT_EQ(port.state(0), VcState::IDLE);
    port.setState(0, VcState::ACTIVE);
    port.setOutPort(0, 3);
    port.setOutVc(0, 1);
    EXPECT_EQ(port.state(0), VcState::ACTIVE);
    EXPECT_EQ(port.outPort(0), 3u);
    EXPECT_EQ(port.outVc(0), 1u);
    EXPECT_EQ(port.state(1), VcState::IDLE);
}

TEST(InputPortDeath, OverflowPanics)
{
    InputPort port(1, 2);
    port.push(makeFlit(0), 0);
    port.push(makeFlit(0), 1);
    EXPECT_DEATH(port.push(makeFlit(0), 2), "overflow");
}

TEST(InputPortDeath, PopEmptyPanics)
{
    InputPort port(1, 2);
    EXPECT_DEATH(port.pop(0), "empty");
}

} // namespace
} // namespace tenoc
