/**
 * @file
 * Checkpoint/restore correctness: a run interrupted by a checkpoint
 * and resumed in a fresh process image must be indistinguishable —
 * bit-for-bit in the final sealed state, not just statistically — from
 * the run that was never interrupted.  Exercised across the scheduler
 * knobs that must not leak into architectural state (idle-skip,
 * validation, cycle threads) and both network shapes, plus the
 * rejection paths (wrong version, trailing bytes, wrong structure).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "accel/chip.hh"
#include "accel/chip_config.hh"
#include "accel/experiments.hh"
#include "common/snapshot.hh"

namespace tenoc
{
namespace
{

/** Temp snapshot path unique to the current test. */
std::string
snapPath(const char *tag)
{
    const auto *info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    return ::testing::TempDir() + "tenoc_" + info->name() + "_" + tag +
           ".snap";
}

std::vector<std::uint8_t>
sealedState(const Chip &chip)
{
    SnapshotWriter w;
    chip.save(w);
    return sealSnapshot(w);
}

/**
 * Runs `params` to completion twice — once straight through, once
 * checkpointed at `at` and resumed into a fresh Chip — and requires
 * identical results and identical final sealed state.
 */
void
expectResumeBitIdentical(const ChipParams &params, const char *abbr,
                         double scale, Cycle at)
{
    const auto prof = scaleWorkload(findWorkload(abbr), scale);
    const std::string path = snapPath("mid");

    Chip uninterrupted(params, prof);
    const ChipResult want = uninterrupted.run();
    ASSERT_FALSE(want.timedOut);

    Chip first(params, prof);
    first.scheduleCheckpoint(at, path);
    first.run();

    Chip resumed(params, prof);
    std::string error;
    ASSERT_TRUE(resumed.restoreFromFile(path, &error)) << error;
    const ChipResult got = resumed.run();

    EXPECT_EQ(want.scalarInsts, got.scalarInsts);
    EXPECT_EQ(want.coreCycles, got.coreCycles);
    EXPECT_EQ(want.icntCycles, got.icntCycles);
    EXPECT_EQ(want.memCycles, got.memCycles);
    EXPECT_EQ(want.packetsEjected, got.packetsEjected);
    EXPECT_EQ(want.timedOut, got.timedOut);
    EXPECT_EQ(want.ipc, got.ipc);
    EXPECT_EQ(want.avgNetLatency, got.avgNetLatency);
    EXPECT_EQ(want.dramEfficiency, got.dramEfficiency);

    // The strong form: every counter, buffer, and queue agrees.
    EXPECT_EQ(sealedState(uninterrupted), sealedState(resumed));
    std::remove(path.c_str());
}

TEST(Snapshot, ResumeMatchesUninterruptedBaseline)
{
    expectResumeBitIdentical(makeConfig(ConfigId::BASELINE_TB_DOR),
                             "MM", 0.05, 300);
}

TEST(Snapshot, ResumeMatchesWithoutIdleSkip)
{
    auto p = makeConfig(ConfigId::BASELINE_TB_DOR);
    p.mesh.idleSkip = false;
    expectResumeBitIdentical(p, "MM", 0.05, 300);
}

TEST(Snapshot, ResumeMatchesWithValidation)
{
    auto p = makeConfig(ConfigId::BASELINE_TB_DOR);
    p.mesh.validate = true;
    p.mesh.validateInterval = 16;
    expectResumeBitIdentical(p, "BFS", 0.05, 400);
}

TEST(Snapshot, ResumeMatchesWithCycleThreads)
{
    auto p = makeConfig(ConfigId::BASELINE_TB_DOR);
    p.mesh.cycleThreads = 2;
    expectResumeBitIdentical(p, "MM", 0.05, 300);
}

TEST(Snapshot, ResumeMatchesDoubleNetwork)
{
    expectResumeBitIdentical(makeConfig(ConfigId::CP_CR_DOUBLE),
                             "BFS", 0.05, 400);
}

TEST(Snapshot, ResumeMatchesThroughputEffective)
{
    auto p = makeConfig(ConfigId::THROUGHPUT_EFFECTIVE);
    p.mesh.validate = true;
    expectResumeBitIdentical(p, "MM", 0.05, 300);
}

/**
 * The fleet acceptance shape: one warm-up checkpoint consumed by two
 * differently *scheduled* downstream runs (validation on; two cycle
 * threads).  Scheduler knobs are bit-exact by design, so both resumed
 * runs must land in the identical final state as the uninterrupted
 * reference.
 */
TEST(Snapshot, WarmupFeedsTwoDownstreamConfigs)
{
    const auto base = makeConfig(ConfigId::BASELINE_TB_DOR);
    const auto prof = scaleWorkload(findWorkload("MM"), 0.05);
    const std::string path = snapPath("warm");

    Chip uninterrupted(base, prof);
    uninterrupted.run();
    const auto want = sealedState(uninterrupted);

    Chip warmup(base, prof);
    warmup.scheduleCheckpoint(250, path);
    warmup.run();

    auto with_validate = base;
    with_validate.mesh.validate = true;
    with_validate.mesh.validateInterval = 32;
    Chip a(with_validate, prof);
    std::string error;
    ASSERT_TRUE(a.restoreFromFile(path, &error)) << error;
    a.run();
    EXPECT_EQ(want, sealedState(a));

    auto with_threads = base;
    with_threads.mesh.cycleThreads = 2;
    Chip b(with_threads, prof);
    ASSERT_TRUE(b.restoreFromFile(path, &error)) << error;
    b.run();
    EXPECT_EQ(want, sealedState(b));
    std::remove(path.c_str());
}

TEST(Snapshot, RoundTripPrimitives)
{
    SnapshotWriter w;
    w.tag("TEST");
    w.u8(0x5a);
    w.boolean(true);
    w.u32(0xdeadbeef);
    w.u64(0x0123456789abcdefULL);
    w.i64(-42);
    w.f64(3.25);
    w.str("hello");

    SnapshotReader r;
    std::string error;
    ASSERT_TRUE(openSnapshot(sealSnapshot(w), r, &error)) << error;
    r.tag("TEST");
    EXPECT_EQ(r.u8(), 0x5a);
    EXPECT_TRUE(r.boolean());
    EXPECT_EQ(r.u32(), 0xdeadbeefu);
    EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
    EXPECT_EQ(r.i64(), -42);
    EXPECT_EQ(r.f64(), 3.25);
    EXPECT_EQ(r.str(), "hello");
    EXPECT_TRUE(r.exhausted());
}

TEST(Snapshot, RejectsWrongFormatVersion)
{
    SnapshotWriter w;
    w.u32(7);
    auto blob = sealSnapshot(w);
    blob[4] ^= 0xff; // format version field (after the magic)

    SnapshotReader r;
    std::string error;
    EXPECT_FALSE(openSnapshot(blob, r, &error));
    EXPECT_NE(error.find("format version"), std::string::npos)
        << error;
}

TEST(Snapshot, RejectsWrongSimulatorVersion)
{
    SnapshotWriter w;
    w.u32(7);
    auto blob = sealSnapshot(w);
    // The simulator-version string starts right after magic + format
    // + its u64 length.
    blob[16] ^= 0xff;

    SnapshotReader r;
    std::string error;
    EXPECT_FALSE(openSnapshot(blob, r, &error));
    EXPECT_NE(error.find("simulator version"), std::string::npos)
        << error;
}

TEST(Snapshot, RejectsBadMagicAndTruncation)
{
    SnapshotWriter w;
    w.u64(99);
    auto blob = sealSnapshot(w);

    auto bad_magic = blob;
    bad_magic[0] ^= 0xff;
    SnapshotReader r;
    std::string error;
    EXPECT_FALSE(openSnapshot(bad_magic, r, &error));
    EXPECT_NE(error.find("magic"), std::string::npos) << error;

    auto truncated = blob;
    truncated.pop_back();
    EXPECT_FALSE(openSnapshot(truncated, r, &error));

    auto padded = blob;
    padded.push_back(0);
    EXPECT_FALSE(openSnapshot(padded, r, &error));
}

TEST(Snapshot, ChipRejectsVersionMismatchedFile)
{
    const auto params = makeConfig(ConfigId::BASELINE_TB_DOR);
    const auto prof = scaleWorkload(findWorkload("MM"), 0.02);
    const std::string path = snapPath("ver");

    Chip chip(params, prof);
    std::string error;
    ASSERT_TRUE(chip.saveToFile(path, &error)) << error;

    // Corrupt the simulator-version string on disk.
    std::fstream f(path, std::ios::in | std::ios::out |
                             std::ios::binary);
    f.seekp(16);
    f.put('\xff');
    f.close();

    Chip victim(params, prof);
    EXPECT_FALSE(victim.restoreFromFile(path, &error));
    EXPECT_NE(error.find("simulator version"), std::string::npos)
        << error;
    std::remove(path.c_str());
}

TEST(Snapshot, ChipRejectsTrailingBytes)
{
    const auto params = makeConfig(ConfigId::BASELINE_TB_DOR);
    const auto prof = scaleWorkload(findWorkload("MM"), 0.02);
    const std::string path = snapPath("trail");

    Chip chip(params, prof);
    SnapshotWriter w;
    chip.save(w);
    w.u64(0xfeedULL); // bytes no restore() will consume
    std::string error;
    ASSERT_TRUE(saveSnapshotFile(path, w, &error)) << error;

    Chip victim(params, prof);
    EXPECT_FALSE(victim.restoreFromFile(path, &error));
    EXPECT_NE(error.find("trailing"), std::string::npos) << error;
    std::remove(path.c_str());
}

TEST(SnapshotDeathTest, ChipRefusesStructuralMismatch)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    const auto params = makeConfig(ConfigId::BASELINE_TB_DOR);
    const auto prof = scaleWorkload(findWorkload("MM"), 0.02);
    const std::string path = snapPath("shape");

    Chip chip(params, prof);
    std::string error;
    ASSERT_TRUE(chip.saveToFile(path, &error)) << error;

    // A structurally different chip (double network) must refuse the
    // blob loudly rather than misinterpret it.
    auto other = makeConfig(ConfigId::CP_CR_DOUBLE);
    Chip victim(other, prof);
    EXPECT_DEATH(
        { victim.restoreFromFile(path, &error); }, "");
    std::remove(path.c_str());
}

} // namespace
} // namespace tenoc
