/**
 * @file
 * Seeded fault injection: each fault class is provably detected by the
 * hardening layer — a wedging fault (permanent link stall, permanent
 * router freeze) trips the deadlock watchdog with a parseable
 * diagnostic snapshot, a leaked credit trips the invariant checker —
 * and transient faults degrade progress without breaking any
 * conservation invariant.  Fault processes are deterministic under a
 * fixed seed.
 */

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "noc/faults.hh"
#include "noc/mesh_network.hh"

namespace tenoc
{
namespace
{

struct DropSink : PacketSink
{
    bool tryReserve(const Packet &) override { return true; }
    void deliver(PacketPtr, Cycle) override { ++count; }
    unsigned count = 0;
};

void
attachDropSinks(Network &net, DropSink &sink)
{
    for (NodeId n = 0; n < net.topology().numNodes(); ++n)
        net.setSink(n, &sink);
}

PacketPtr
makeRequest(const Network &net, NodeId src, NodeId dst)
{
    auto pkt = makePacket();
    pkt->src = src;
    pkt->dst = dst;
    pkt->op = MemOp::READ_REQUEST;
    pkt->protoClass = 0;
    pkt->sizeFlits = net.packetFlits(MemOp::READ_REQUEST);
    pkt->sizeBytes = memOpBytes(MemOp::READ_REQUEST);
    return pkt;
}

/** Network with a tight watchdog and a report-capturing handler. */
struct WatchedNet
{
    explicit WatchedNet(const MeshNetworkParams &params) : net(params)
    {
        net.setWatchdogHandler(
            [this](const WatchdogReport &r) { reports.push_back(r); });
    }

    MeshNetwork net;
    std::vector<WatchdogReport> reports;
};

MeshNetworkParams
watchedParams()
{
    MeshNetworkParams p;
    p.validate = true; // stalls/freezes must not break any invariant
    p.validateInterval = 16;
    p.watchdogWindow = 1500;
    return p;
}

TEST(Faults, PermanentLinkStallTripsWatchdog)
{
    MeshNetworkParams p = watchedParams();
    const NodeId src = Topology(p.topo).nodeAt(0, 2);
    p.faults.schedule.push_back(FaultEvent{
        FaultKind::LINK_STALL, /*at=*/0, /*duration=*/0, src,
        DIR_EAST, 0});
    WatchedNet w(p);
    DropSink sink;
    attachDropSinks(w.net, sink);

    // One eastbound packet wedges in the stalled channel.
    const auto &topo = w.net.topology();
    w.net.inject(makeRequest(w.net, src, topo.nodeAt(5, 2)), 0);
    Cycle t = 0;
    while (w.reports.empty() && t < 10000)
        w.net.cycle(t++);

    ASSERT_FALSE(w.reports.empty()) << "watchdog never fired";
    const WatchdogReport &r = w.reports.front();
    EXPECT_EQ(r.reason, "no_progress");
    EXPECT_EQ(r.inflight, 1u);
    EXPECT_GE(r.oldestAge, p.watchdogWindow);
    // The snapshot is structured and carries the fault summary.
    EXPECT_NE(r.snapshotJson.find("tenoc-watchdog-v1"),
              std::string::npos);
    EXPECT_NE(r.snapshotJson.find("link_stalls"), std::string::npos);
    ASSERT_NE(w.net.faultStats(), nullptr);
    EXPECT_EQ(w.net.faultStats()->linkStalls, 1u);
}

TEST(Faults, PermanentRouterFreezeTripsWatchdog)
{
    MeshNetworkParams p = watchedParams();
    const Topology pre(p.topo);
    const NodeId src = pre.nodeAt(0, 2);
    const NodeId frozen = pre.nodeAt(1, 2); // next hop east
    p.faults.schedule.push_back(FaultEvent{
        FaultKind::ROUTER_FREEZE, /*at=*/0, /*duration=*/0, frozen,
        0, 0});
    WatchedNet w(p);
    DropSink sink;
    attachDropSinks(w.net, sink);

    w.net.inject(makeRequest(w.net, src, w.net.topology().nodeAt(5, 2)),
                 0);
    Cycle t = 0;
    while (w.reports.empty() && t < 10000)
        w.net.cycle(t++);

    ASSERT_FALSE(w.reports.empty()) << "watchdog never fired";
    EXPECT_EQ(w.reports.front().reason, "no_progress");
    ASSERT_NE(w.net.faultStats(), nullptr);
    EXPECT_EQ(w.net.faultStats()->routerFreezes, 1u);
}

TEST(Faults, PacketAgeBoundTripsWatchdog)
{
    // Livelock/starvation detector: the network keeps making progress
    // (fresh traffic flows) but one packet is stuck behind a stalled
    // link and exceeds its age bound.
    MeshNetworkParams p = watchedParams();
    p.watchdogWindow = 0; // isolate the age scan
    p.maxPacketAge = 3000;
    const Topology pre(p.topo);
    const NodeId src = pre.nodeAt(0, 2);
    p.faults.schedule.push_back(FaultEvent{
        FaultKind::LINK_STALL, /*at=*/0, /*duration=*/0, src,
        DIR_EAST, 0});
    WatchedNet w(p);
    DropSink sink;
    attachDropSinks(w.net, sink);

    const auto &topo = w.net.topology();
    w.net.inject(makeRequest(w.net, src, topo.nodeAt(5, 2)), 0);
    Rng rng(11);
    Cycle t = 0;
    while (w.reports.empty() && t < 20000) {
        // Unrelated traffic keeps global progress alive.
        const NodeId core = topo.nodeAt(3, 3);
        if (rng.nextBool(0.05) && w.net.canInject(core, 0))
            w.net.inject(makeRequest(w.net, core, topo.nodeAt(5, 4)), t);
        w.net.cycle(t++);
    }

    ASSERT_FALSE(w.reports.empty()) << "age scan never fired";
    EXPECT_EQ(w.reports.front().reason, "packet_age");
    EXPECT_GE(w.reports.front().oldestAge, p.maxPacketAge);
}

TEST(Faults, CreditDropCaughtByChecker)
{
    MeshNetworkParams p; // validate off: audit by hand below
    const NodeId victim = Topology(p.topo).nodeAt(1, 1);
    p.faults.schedule.push_back(FaultEvent{
        FaultKind::CREDIT_DROP, /*at=*/5, /*duration=*/0, victim,
        DIR_EAST, 0});
    MeshNetwork net(p);
    DropSink sink;
    attachDropSinks(net, sink);

    for (Cycle t = 0; t < 10; ++t)
        net.cycle(t);

    ASSERT_NE(net.faultStats(), nullptr);
    EXPECT_EQ(net.faultStats()->creditDrops, 1u);
    const auto vs = net.checker().audit(10);
    ASSERT_FALSE(vs.empty());
    EXPECT_EQ(vs.front().kind, Violation::Kind::CREDIT_CONSERVATION)
        << vs.front().message;
}

TEST(FaultsDeathTest, CreditDropFailsFastUnderValidate)
{
    MeshNetworkParams p;
    p.validate = true;
    p.validateInterval = 1;
    const NodeId victim = Topology(p.topo).nodeAt(1, 1);
    p.faults.schedule.push_back(FaultEvent{
        FaultKind::CREDIT_DROP, /*at=*/2, /*duration=*/0, victim,
        DIR_EAST, 0});
    MeshNetwork net(p);
    EXPECT_DEATH(
        {
            for (Cycle t = 0; t < 10; ++t)
                net.cycle(t);
        },
        "credit_conservation");
}

TEST(Faults, TransientFaultsPreserveConservation)
{
    MeshNetworkParams p;
    p.validate = true;
    p.validateInterval = 32;
    p.faults.seed = 0xdead01;
    p.faults.linkStallRate = 2e-3;
    p.faults.linkStallDuration = 12;
    p.faults.routerFreezeRate = 5e-4;
    p.faults.routerFreezeDuration = 12;
    MeshNetwork net(p);
    DropSink sink;
    attachDropSinks(net, sink);

    const auto &topo = net.topology();
    Rng rng(21);
    Cycle t = 0;
    unsigned sent = 0;
    while (sent < 300 && t < 50000) {
        const NodeId core = rng.pick(topo.computeNodes());
        if (net.canInject(core, 0)) {
            net.inject(
                makeRequest(net, core, rng.pick(topo.mcNodes())), t);
            ++sent;
        }
        net.cycle(t++);
    }
    ASSERT_EQ(sent, 300u);
    const Cycle deadline = t + 50000;
    while (!net.drained() && t < deadline)
        net.cycle(t++);
    ASSERT_TRUE(net.drained())
        << "transient faults wedged the network:\n"
        << net.diagnosticReport(t);

    // Every packet still arrives exactly once, and faults really ran.
    EXPECT_EQ(sink.count, sent);
    EXPECT_EQ(net.stats().flitsInjected, net.stats().flitsEjected);
    ASSERT_NE(net.faultStats(), nullptr);
    EXPECT_GT(net.faultStats()->linkStalls, 0u);
    EXPECT_GT(net.faultStats()->routerFreezes, 0u);
    const auto vs = net.checker().audit(t);
    EXPECT_TRUE(vs.empty());
}

TEST(Faults, SeededProcessesAreDeterministic)
{
    auto run = [](std::uint64_t seed) {
        MeshNetworkParams p;
        p.faults.seed = seed;
        p.faults.linkStallRate = 1e-3;
        p.faults.linkStallDuration = 8;
        p.faults.routerFreezeRate = 1e-3;
        p.faults.routerFreezeDuration = 8;
        MeshNetwork net(p);
        DropSink sink;
        attachDropSinks(net, sink);
        const auto &topo = net.topology();
        Rng rng(4);
        Cycle t = 0;
        for (; t < 4000; ++t) {
            const NodeId core = rng.pick(topo.computeNodes());
            if (rng.nextBool(0.05) && net.canInject(core, 0))
                net.inject(
                    makeRequest(net, core, rng.pick(topo.mcNodes())),
                    t);
            net.cycle(t);
        }
        FaultStats fs = *net.faultStats();
        return std::make_tuple(fs.linkStalls, fs.routerFreezes,
                               net.stats().packetsEjected);
    };
    EXPECT_EQ(run(123), run(123));
    EXPECT_NE(std::get<0>(run(123)) + std::get<1>(run(123)), 0u);
    EXPECT_NE(run(123), run(456));
}

} // namespace
} // namespace tenoc
