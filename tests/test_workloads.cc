/**
 * @file
 * Tests for the Table I synthetic benchmark suite.
 */

#include <gtest/gtest.h>

#include <set>

#include "gpu/workloads.hh"

namespace tenoc
{
namespace
{

TEST(Workloads, ThirtyOneBenchmarks)
{
    EXPECT_EQ(workloadSuite().size(), 31u);
}

TEST(Workloads, ClassCountsMatchFig7Grouping)
{
    unsigned ll = 0;
    unsigned lh = 0;
    unsigned hh = 0;
    for (const auto &p : workloadSuite()) {
        switch (p.expectedClass) {
          case TrafficClass::LL: ++ll; break;
          case TrafficClass::LH: ++lh; break;
          case TrafficClass::HH: ++hh; break;
        }
    }
    EXPECT_EQ(ll, 11u);
    EXPECT_EQ(lh, 11u);
    EXPECT_EQ(hh, 9u);
}

TEST(Workloads, UniqueAbbreviations)
{
    std::set<std::string> abbrs;
    for (const auto &p : workloadSuite())
        abbrs.insert(p.abbr);
    EXPECT_EQ(abbrs.size(), 31u);
}

TEST(Workloads, AllParametersInValidRanges)
{
    for (const auto &p : workloadSuite()) {
        EXPECT_GE(p.warpsPerCore, 1u) << p.abbr;
        EXPECT_LE(p.warpsPerCore, 32u) << p.abbr;
        EXPECT_GT(p.warpInstsPerWarp, 0u) << p.abbr;
        EXPECT_GT(p.memFraction, 0.0) << p.abbr;
        EXPECT_LT(p.memFraction, 1.0) << p.abbr;
        EXPECT_GE(p.loadFraction, 0.0) << p.abbr;
        EXPECT_LE(p.loadFraction, 1.0) << p.abbr;
        EXPECT_GE(p.avgLinesPerMemInst, 1.0) << p.abbr;
        EXPECT_LE(p.avgLinesPerMemInst, 32.0) << p.abbr;
        EXPECT_GE(p.l1HitRate, 0.0) << p.abbr;
        EXPECT_LE(p.l1HitRate, 1.0) << p.abbr;
        EXPECT_GE(p.l2HitRate, 0.0) << p.abbr;
        EXPECT_LE(p.l2HitRate, 1.0) << p.abbr;
        EXPECT_GE(p.rowLocality, 0.0) << p.abbr;
        EXPECT_LE(p.rowLocality, 1.0) << p.abbr;
        EXPECT_GE(p.maxPendingLines, 1u) << p.abbr;
    }
}

TEST(Workloads, TrafficIntensityOrderedByClass)
{
    // lambda = m * lines * (1 - l1): LL << LH < HH on average.
    auto lambda = [](const KernelProfile &p) {
        return p.memFraction * p.avgLinesPerMemInst *
            (1.0 - p.l1HitRate);
    };
    double ll_max = 0.0;
    double hh_min = 1e9;
    for (const auto &p : workloadSuite()) {
        if (p.expectedClass == TrafficClass::LL)
            ll_max = std::max(ll_max, lambda(p));
        if (p.expectedClass == TrafficClass::HH)
            hh_min = std::min(hh_min, lambda(p));
    }
    EXPECT_LT(ll_max, 0.03);
    EXPECT_GT(hh_min, 0.1);
}

TEST(Workloads, FindByAbbreviation)
{
    EXPECT_EQ(findWorkload("BFS").name, "BFS Graph Traversal");
    EXPECT_EQ(findWorkload("AES").expectedClass, TrafficClass::LL);
    EXPECT_EQ(findWorkload("MUM").expectedClass, TrafficClass::HH);
}

TEST(WorkloadsDeath, UnknownAbbreviationIsFatal)
{
    EXPECT_EXIT(findWorkload("NOPE"), ::testing::ExitedWithCode(1),
                "unknown workload");
}

TEST(Workloads, ScaleAdjustsKernelLength)
{
    const auto &bfs = findWorkload("BFS");
    const auto half = scaleWorkload(bfs, 0.5);
    EXPECT_EQ(half.warpInstsPerWarp, bfs.warpInstsPerWarp / 2);
    EXPECT_EQ(half.memFraction, bfs.memFraction);
    const auto tiny = scaleWorkload(bfs, 1e-9);
    EXPECT_EQ(tiny.warpInstsPerWarp, 1u); // floors at one instruction
}

TEST(Workloads, MeanWritebackNearPaperRatio)
{
    // Sec. III-D: MC injection is 6.9x a core's, implying writes are
    // roughly 0.39x reads on average across the suite.
    double sum = 0.0;
    for (const auto &p : workloadSuite())
        sum += p.writebackRate;
    const double mean = sum / workloadSuite().size();
    EXPECT_GT(mean, 0.25);
    EXPECT_LT(mean, 0.50);
}

} // namespace
} // namespace tenoc
