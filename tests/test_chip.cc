/**
 * @file
 * Closed-loop integration tests.  Kernels are scaled short so these
 * stay fast; behavioural invariants rather than exact numbers.
 */

#include <gtest/gtest.h>

#include "accel/experiments.hh"

namespace tenoc
{
namespace
{

KernelProfile
quick(const char *abbr, double scale = 0.1)
{
    return scaleWorkload(findWorkload(abbr), scale);
}

TEST(Chip, ComputeBoundWorkloadNearsPeak)
{
    const auto r =
        runWorkload(makeConfig(ConfigId::BASELINE_TB_DOR), quick("AES"));
    EXPECT_FALSE(r.timedOut);
    // Peak is 8 scalar IPC per core x 28 cores = 224.
    EXPECT_GT(r.ipc, 200.0);
    EXPECT_LE(r.ipc, 224.0);
    EXPECT_LT(r.mcStallFractionMean, 0.05);
}

TEST(Chip, AllInstructionsExecute)
{
    const auto profile = quick("MM", 0.1);
    const auto r =
        runWorkload(makeConfig(ConfigId::BASELINE_TB_DOR), profile);
    EXPECT_EQ(r.scalarInsts,
              profile.totalWarpInsts(28) * 32);
}

TEST(Chip, DeterministicForSameSeed)
{
    const auto p = makeConfig(ConfigId::BASELINE_TB_DOR, 5);
    const auto a = runWorkload(p, quick("BFS"));
    const auto b = runWorkload(p, quick("BFS"));
    EXPECT_EQ(a.coreCycles, b.coreCycles);
    EXPECT_EQ(a.packetsEjected, b.packetsEjected);
    EXPECT_DOUBLE_EQ(a.ipc, b.ipc);
}

TEST(Chip, PerfectNetworkBeatsBaselineOnHeavyTraffic)
{
    const auto prof = quick("BFS", 0.15);
    const auto base =
        runWorkload(makeConfig(ConfigId::BASELINE_TB_DOR), prof);
    const auto perfect =
        runWorkload(makeConfig(ConfigId::PERFECT), prof);
    EXPECT_GT(perfect.ipc, base.ipc * 1.2);
    EXPECT_EQ(perfect.avgNetLatency, 0.0);
    EXPECT_GT(base.mcStallFractionMean, 0.1); // Fig. 11 behaviour
}

TEST(Chip, ClockDomainRatiosHold)
{
    const auto r =
        runWorkload(makeConfig(ConfigId::BASELINE_TB_DOR), quick("AES"));
    EXPECT_NEAR(static_cast<double>(r.coreCycles) /
                    static_cast<double>(r.icntCycles),
                1296.0 / 602.0, 0.05);
    EXPECT_NEAR(static_cast<double>(r.memCycles) /
                    static_cast<double>(r.icntCycles),
                1107.0 / 602.0, 0.05);
}

TEST(Chip, BandwidthLimitedNetworkThrottles)
{
    const auto prof = quick("SCP", 0.15);
    const auto wide = runWorkload(makeBwLimitedConfig(1.6), prof);
    const auto narrow = runWorkload(makeBwLimitedConfig(0.1), prof);
    EXPECT_GT(wide.ipc, narrow.ipc * 1.3);
}

TEST(Chip, CheckerboardConfigRunsCleanly)
{
    const auto r = runWorkload(makeConfig(ConfigId::CP_CR_4VC),
                               quick("KM", 0.12));
    EXPECT_FALSE(r.timedOut);
    EXPECT_GT(r.ipc, 1.0);
}

TEST(Chip, DoubleNetworkRunsCleanly)
{
    const auto r =
        runWorkload(makeConfig(ConfigId::THROUGHPUT_EFFECTIVE),
                    quick("KM", 0.12));
    EXPECT_FALSE(r.timedOut);
    EXPECT_GT(r.ipc, 1.0);
}

TEST(Chip, TorusConfigRunsCleanly)
{
    auto p = makeConfig(ConfigId::BASELINE_TB_DOR);
    p.mesh.topo.kind = TopoKind::TORUS;
    const auto r = runWorkload(p, quick("KM", 0.12));
    EXPECT_FALSE(r.timedOut);
    EXPECT_GT(r.ipc, 1.0);
}

TEST(Chip, ConcentratedMeshRunsCleanly)
{
    auto p = makeConfig(ConfigId::BASELINE_TB_DOR);
    p.mesh.topo.concentration = 2;
    const auto r = runWorkload(p, quick("KM", 0.12));
    EXPECT_FALSE(r.timedOut);
    EXPECT_GT(r.ipc, 1.0);
}

TEST(Chip, McInjectionRatioIsManyToFewSkewed)
{
    // Sec. III-D: MCs inject several times more bytes/cycle than
    // cores (6.9x in the paper).
    const auto r = runWorkload(makeConfig(ConfigId::BASELINE_TB_DOR),
                               quick("LIB", 0.15));
    EXPECT_GT(r.mcToCoreInjectionRatio, 3.0);
    EXPECT_LT(r.mcToCoreInjectionRatio, 15.0);
}

TEST(Chip, RunSuiteProducesAllBenchmarks)
{
    // Tiny scale smoke of the experiment driver.
    const auto runs =
        runSuite(makeConfig(ConfigId::BASELINE_TB_DOR), 0.02);
    ASSERT_EQ(runs.size(), 31u);
    for (const auto &r : runs) {
        EXPECT_FALSE(r.result.timedOut) << r.abbr;
        EXPECT_GT(r.result.ipc, 0.0) << r.abbr;
    }
}

TEST(Chip, OneCycleRoutersCutLatencyNotThroughputForCompute)
{
    // The Sec. III-C result in miniature: aggressive routers shrink
    // network latency but barely move a compute-bound workload's IPC.
    const auto prof = quick("AES", 0.1);
    const auto base =
        runWorkload(makeConfig(ConfigId::BASELINE_TB_DOR), prof);
    const auto fast =
        runWorkload(makeConfig(ConfigId::TB_DOR_1CYC), prof);
    EXPECT_LT(fast.avgNetLatency, base.avgNetLatency * 0.8);
    EXPECT_NEAR(fast.ipc / base.ipc, 1.0, 0.05);
}

TEST(Chip, BandwidthHelpsHeavyTrafficMoreThanLatency)
{
    const auto prof = quick("BFS", 0.15);
    const auto base =
        runWorkload(makeConfig(ConfigId::BASELINE_TB_DOR), prof);
    const auto two = runWorkload(makeConfig(ConfigId::TB_DOR_2X), prof);
    const auto fast =
        runWorkload(makeConfig(ConfigId::TB_DOR_1CYC), prof);
    EXPECT_GT(two.ipc / base.ipc, 1.15);
    EXPECT_GT(two.ipc, fast.ipc);
}

TEST(Chip, CheckerboardPlacementHelpsHeavyTraffic)
{
    const auto prof = quick("KM", 0.15);
    const auto tb =
        runWorkload(makeConfig(ConfigId::BASELINE_TB_DOR), prof);
    const auto cp = runWorkload(makeConfig(ConfigId::CP_DOR_2VC), prof);
    EXPECT_GT(cp.ipc, tb.ipc * 1.05);
}

TEST(Chip, MultiPortMcsHelpTheDoubleNetwork)
{
    const auto prof = quick("SCP", 0.15);
    const auto dbl =
        runWorkload(makeConfig(ConfigId::CP_CR_DOUBLE), prof);
    const auto twop =
        runWorkload(makeConfig(ConfigId::CP_CR_DOUBLE_2INJ), prof);
    EXPECT_GT(twop.ipc, dbl.ipc * 1.02);
}

TEST(Chip, SeedChangesResultsOnlySlightly)
{
    const auto prof = quick("MM", 0.1);
    const auto a =
        runWorkload(makeConfig(ConfigId::BASELINE_TB_DOR, 1), prof);
    const auto b =
        runWorkload(makeConfig(ConfigId::BASELINE_TB_DOR, 2), prof);
    EXPECT_NE(a.coreCycles, b.coreCycles); // different randomness...
    EXPECT_NEAR(a.ipc / b.ipc, 1.0, 0.10); // ...same physics
}

TEST(Chip, AgePriorityRunsCleanly)
{
    auto params = makeConfig(ConfigId::CP_DOR_2VC);
    params.mesh.agePriority = true;
    const auto r = runWorkload(params, quick("SS", 0.1));
    EXPECT_FALSE(r.timedOut);
    EXPECT_GT(r.ipc, 1.0);
}

TEST(Chip, MultiKernelLaunchesExecuteEverything)
{
    auto prof = quick("MM", 0.05);
    const auto single = runWorkload(
        makeConfig(ConfigId::BASELINE_TB_DOR), prof);
    prof.numKernels = 4;
    const auto multi = runWorkload(
        makeConfig(ConfigId::BASELINE_TB_DOR), prof);
    EXPECT_FALSE(multi.timedOut);
    // Same per-launch work, four launches.
    EXPECT_EQ(multi.scalarInsts, 4 * single.scalarInsts);
    // Launch barriers cost drain time while later launches reuse warm
    // DRAM row state; either way the result stays near the
    // single-launch rate.
    EXPECT_GT(multi.coreCycles, single.coreCycles * 3);
    EXPECT_NEAR(multi.ipc / single.ipc, 1.0, 0.35);
}

TEST(Chip, KernelBarrierExposesNetworkTailLatency)
{
    // With many short launches the drain tails are network-latency
    // sensitive, so a perfect NoC gains more than it does on the
    // single-launch version of the same workload.
    auto prof = quick("LPS", 0.05);
    prof.numKernels = 8;
    const auto base = runWorkload(
        makeConfig(ConfigId::BASELINE_TB_DOR), prof);
    const auto perfect =
        runWorkload(makeConfig(ConfigId::PERFECT), prof);
    EXPECT_GT(perfect.ipc, base.ipc * 1.01);
}

TEST(Chip, EnvScaleParsing)
{
    ::setenv("TENOC_SCALE", "0.25", 1);
    EXPECT_DOUBLE_EQ(envScale(1.0), 0.25);
    ::setenv("TENOC_SCALE", "junk", 1);
    EXPECT_DOUBLE_EQ(envScale(1.0), 1.0);
    ::unsetenv("TENOC_SCALE");
    EXPECT_DOUBLE_EQ(envScale(0.5), 0.5);
}

} // namespace
} // namespace tenoc
