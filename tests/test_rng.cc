/**
 * @file
 * Unit tests for the deterministic RNG.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/rng.hh"

namespace tenoc
{
namespace
{

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 3);
}

TEST(Rng, ReseedRestartsSequence)
{
    Rng a(77);
    std::vector<std::uint64_t> first;
    for (int i = 0; i < 16; ++i)
        first.push_back(a.next());
    a.seed(77);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(a.next(), first[static_cast<std::size_t>(i)]);
}

TEST(Rng, NextRangeStaysInBounds)
{
    Rng r(5);
    for (std::uint64_t bound : {1ull, 2ull, 7ull, 1000ull}) {
        for (int i = 0; i < 2000; ++i)
            EXPECT_LT(r.nextRange(bound), bound);
    }
}

TEST(Rng, NextRangeCoversAllValues)
{
    Rng r(9);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(r.nextRange(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, NextDoubleInUnitInterval)
{
    Rng r(11);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double v = r.nextDouble();
        ASSERT_GE(v, 0.0);
        ASSERT_LT(v, 1.0);
        sum += v;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, NextBoolMatchesProbability)
{
    Rng r(13);
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
        hits += r.nextBool(0.3);
    EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Rng, NextBoolEdgeCases)
{
    Rng r(17);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.nextBool(0.0));
        EXPECT_TRUE(r.nextBool(1.0));
        EXPECT_FALSE(r.nextBool(-1.0));
        EXPECT_TRUE(r.nextBool(2.0));
    }
}

TEST(Rng, PickReturnsMemberElement)
{
    Rng r(19);
    const std::vector<int> v{3, 5, 7};
    for (int i = 0; i < 100; ++i) {
        const int x = r.pick(v);
        EXPECT_TRUE(x == 3 || x == 5 || x == 7);
    }
}

TEST(DeriveStreamSeed, DeterministicAndComponentLocal)
{
    // Same (global, component) always derives the same stream seed.
    EXPECT_EQ(deriveStreamSeed(42, 7), deriveStreamSeed(42, 7));
    // Distinct components and distinct global seeds get distinct
    // streams.
    EXPECT_NE(deriveStreamSeed(42, 7), deriveStreamSeed(42, 8));
    EXPECT_NE(deriveStreamSeed(42, 7), deriveStreamSeed(43, 7));
    // The component id is mixed, not XORed in raw: seeds that differ
    // only in low bits must not collapse to related streams.
    EXPECT_NE(deriveStreamSeed(42, 0) ^ deriveStreamSeed(42, 1), 1u);
}

TEST(DeriveStreamSeed, StreamsAreStatisticallyIndependent)
{
    // Component k's draws must not change when a neighbouring stream
    // draws more or less (the whole point vs a shared generator), and
    // adjacent component ids must not produce correlated sequences.
    Rng a(deriveStreamSeed(123, 4));
    Rng b(deriveStreamSeed(123, 5));
    unsigned agree = 0;
    const unsigned n = 4096;
    for (unsigned i = 0; i < n; ++i)
        agree += (a.next() & 1) == (b.next() & 1);
    // Two fair independent bit streams agree ~50% of the time.
    EXPECT_NEAR(agree / double(n), 0.5, 0.05);
}

} // namespace
} // namespace tenoc
