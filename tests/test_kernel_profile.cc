/**
 * @file
 * Tests for the synthetic address stream.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "gpu/kernel_profile.hh"

namespace tenoc
{
namespace
{

KernelProfile
profile(double row_locality, std::uint64_t footprint = 1 << 20)
{
    KernelProfile p;
    p.rowLocality = row_locality;
    p.footprintBytes = footprint;
    return p;
}

TEST(AddressStream, SequentialWhenFullyLocal)
{
    auto p = profile(1.0);
    AddressStream s(0, 0, 32, p, 64);
    Rng rng(1);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(s.next(rng), static_cast<Addr>(i) * 32 * 64);
}

TEST(AddressStream, WarpsInterleaveLikeCoalescedKernels)
{
    // Adjacent warps touch adjacent lines; advancing in lock step
    // they cover a dense region (cross-warp DRAM row locality).
    auto p = profile(1.0);
    const unsigned warps = 4;
    std::vector<AddressStream> streams;
    for (unsigned w = 0; w < warps; ++w)
        streams.emplace_back(0, w, warps, p, 64);
    Rng rng(2);
    std::set<Addr> seen;
    for (int step = 0; step < 8; ++step)
        for (auto &s : streams)
            seen.insert(s.next(rng));
    // 32 consecutive lines, no overlap between warps.
    ASSERT_EQ(seen.size(), 32u);
    EXPECT_EQ(*seen.begin(), 0u);
    EXPECT_EQ(*seen.rbegin(), 31u * 64u);
}

TEST(AddressStream, JumpsScatterWithinFootprint)
{
    auto p = profile(0.0, 1 << 18);
    AddressStream s(0x100000, 0, 32, p, 64);
    Rng rng(3);
    std::set<Addr> distinct;
    for (int i = 0; i < 500; ++i) {
        const Addr a = s.next(rng);
        EXPECT_GE(a, 0x100000u);
        EXPECT_LT(a, 0x100000u + (1u << 18));
        distinct.insert(a / (32 * 64));
    }
    EXPECT_GT(distinct.size(), 50u); // well scattered
}

TEST(AddressStream, WrapsAtFootprintEnd)
{
    auto p = profile(1.0, 32 * 64 * 4); // 4 strides
    AddressStream s(0, 0, 32, p, 64);
    Rng rng(4);
    std::set<Addr> seen;
    for (int i = 0; i < 12; ++i)
        seen.insert(s.next(rng));
    EXPECT_EQ(seen.size(), 4u); // wrapped around
}

TEST(KernelProfile, TotalWarpInsts)
{
    KernelProfile p;
    p.warpsPerCore = 32;
    p.warpInstsPerWarp = 100;
    EXPECT_EQ(p.totalWarpInsts(28), 28u * 32u * 100u);
}

} // namespace
} // namespace tenoc
