/**
 * @file
 * Equivalence regression for the idle-skip scheduler: with
 * MeshNetworkParams::idleSkip on and off, every statistic of a run —
 * scalar counters, per-node vectors, latency accumulators, and the
 * full per-packet latency histograms — must be identical.  Covered
 * across seeds, routing algorithms, and the single/double network, in
 * open loop and closed loop.  Any divergence means the activity
 * tracking dropped a component that still had work.
 */

#include <gtest/gtest.h>

#include "accel/chip.hh"
#include "accel/chip_config.hh"
#include "accel/experiments.hh"
#include "common/rng.hh"
#include "noc/mesh_network.hh"
#include "noc/openloop.hh"

namespace tenoc
{
namespace
{

/** Accepts everything, keeps nothing. */
struct DropSink : PacketSink
{
    bool tryReserve(const Packet &) override { return true; }
    void deliver(PacketPtr, Cycle) override {}
};

void
expectAccumulatorsEqual(const Accumulator &a, const Accumulator &b)
{
    EXPECT_EQ(a.count(), b.count()) << a.name();
    EXPECT_EQ(a.sum(), b.sum()) << a.name();
    EXPECT_EQ(a.min(), b.min()) << a.name();
    EXPECT_EQ(a.max(), b.max()) << a.name();
}

void
expectHistogramsEqual(const Histogram &a, const Histogram &b)
{
    EXPECT_EQ(a.count(), b.count()) << a.name();
    EXPECT_EQ(a.mean(), b.mean()) << a.name();
    EXPECT_EQ(a.buckets(), b.buckets()) << a.name();
}

void
expectStatsEqual(const NetStats &a, const NetStats &b)
{
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.packetsInjected, b.packetsInjected);
    EXPECT_EQ(a.packetsEjected, b.packetsEjected);
    EXPECT_EQ(a.flitsInjected, b.flitsInjected);
    EXPECT_EQ(a.flitsEjected, b.flitsEjected);
    EXPECT_EQ(a.nodeInjectedFlits, b.nodeInjectedFlits);
    EXPECT_EQ(a.nodeEjectedFlits, b.nodeEjectedFlits);
    EXPECT_EQ(a.nodeInjectedBytes, b.nodeInjectedBytes);
    EXPECT_EQ(a.nodeEjectedBytes, b.nodeEjectedBytes);
    expectAccumulatorsEqual(a.totalLatency, b.totalLatency);
    expectAccumulatorsEqual(a.netLatency, b.netLatency);
    expectHistogramsEqual(a.totalLatencyHist, b.totalLatencyHist);
    expectHistogramsEqual(a.queueLatencyHist, b.queueLatencyHist);
    expectHistogramsEqual(a.traversalLatencyHist,
                          b.traversalLatencyHist);
    expectHistogramsEqual(a.serializationLatencyHist,
                          b.serializationLatencyHist);
}

/**
 * Drives `net` with seeded many-to-few requests (class 0) and
 * few-to-many replies (class 1) for `cycles`, then lets it drain.
 * @return the cycle at which drained() first became true.
 */
Cycle
drive(Network &net, std::uint64_t seed, Cycle cycles)
{
    DropSink sink;
    const auto &topo = net.topology();
    for (NodeId n = 0; n < topo.numNodes(); ++n)
        net.setSink(n, &sink);
    Rng rng(seed);
    Cycle now = 0;
    for (; now < cycles; ++now) {
        for (NodeId core : topo.computeNodes()) {
            if (rng.nextBool(0.04) && net.canInject(core, 0)) {
                auto pkt = makePacket();
                pkt->src = core;
                pkt->dst = rng.pick(topo.mcNodes());
                pkt->op = MemOp::READ_REQUEST;
                pkt->protoClass = 0;
                pkt->sizeFlits = net.packetFlits(MemOp::READ_REQUEST);
                pkt->sizeBytes = memOpBytes(MemOp::READ_REQUEST);
                net.inject(std::move(pkt), now);
            }
        }
        for (NodeId mc : topo.mcNodes()) {
            if (rng.nextBool(0.10) && net.canInject(mc, 1)) {
                auto pkt = makePacket();
                pkt->src = mc;
                pkt->dst = rng.pick(topo.computeNodes());
                pkt->op = MemOp::READ_REPLY;
                pkt->protoClass = 1;
                pkt->sizeFlits = net.packetFlits(MemOp::READ_REPLY);
                pkt->sizeBytes = memOpBytes(MemOp::READ_REPLY);
                net.inject(std::move(pkt), now);
            }
        }
        net.cycle(now);
    }
    while (!net.drained() && now < cycles + 100000)
        net.cycle(now++);
    EXPECT_TRUE(net.drained());
    return now;
}

MeshNetworkParams
netParams(const std::string &routing, std::uint64_t seed,
          bool idle_skip)
{
    MeshNetworkParams p;
    p.routing = routing;
    p.seed = seed;
    p.idleSkip = idle_skip;
    // Audit invariants in both scheduler modes: the checker must stay
    // clean and must not perturb a single statistic.
    p.validate = true;
    p.validateInterval = 16;
    if (routing == "cr") {
        p.topo.placement = McPlacement::CHECKERBOARD;
        p.topo.checkerboardRouters = true;
        p.vcsPerClass = 2; // CR needs a lane per routing class
    }
    return p;
}

class IdleSkipEquivalence
    : public ::testing::TestWithParam<
          std::tuple<std::uint64_t, std::string, bool>>
{};

TEST_P(IdleSkipEquivalence, MatchesFullTick)
{
    const auto [seed, routing, sliced] = GetParam();
    const auto full =
        makeMeshNetwork(netParams(routing, seed, false), sliced);
    const auto skip =
        makeMeshNetwork(netParams(routing, seed, true), sliced);
    const Cycle done_full = drive(*full, seed * 31 + 7, 3000);
    const Cycle done_skip = drive(*skip, seed * 31 + 7, 3000);
    EXPECT_EQ(done_full, done_skip);
    expectStatsEqual(full->stats(), skip->stats());
}

std::string
idleSkipCaseName(
    const ::testing::TestParamInfo<
        std::tuple<std::uint64_t, std::string, bool>> &info)
{
    return std::get<1>(info.param) +
           (std::get<2>(info.param) ? "_double_" : "_single_") +
           std::to_string(std::get<0>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    SeedsRoutingsSlicing, IdleSkipEquivalence,
    ::testing::Combine(
        ::testing::Values<std::uint64_t>(1, 42, 2024),
        ::testing::Values<std::string>("xy", "yx", "cr"),
        ::testing::Bool()),
    idleSkipCaseName);

TEST(IdleSkipEquivalence, OpenLoopResultsIdentical)
{
    for (double rate : {0.02, 0.08}) {
        OpenLoopParams p;
        p.injectionRate = rate;
        p.seed = 5;
        p.warmupCycles = 500;
        p.measureCycles = 2000;
        p.net.validate = true;
        p.net.idleSkip = false;
        const auto full = runOpenLoop(p);
        p.net.idleSkip = true;
        const auto skip = runOpenLoop(p);
        EXPECT_EQ(full.offeredLoad, skip.offeredLoad) << rate;
        EXPECT_EQ(full.acceptedLoad, skip.acceptedLoad) << rate;
        EXPECT_EQ(full.avgLatency, skip.avgLatency) << rate;
        EXPECT_EQ(full.avgRequestLatency, skip.avgRequestLatency);
        EXPECT_EQ(full.avgReplyLatency, skip.avgReplyLatency);
        EXPECT_EQ(full.p95Latency, skip.p95Latency) << rate;
        EXPECT_EQ(full.saturated, skip.saturated) << rate;
    }
}

TEST(IdleSkipEquivalence, ClosedLoopChipIdentical)
{
    // Whole-chip runs (cores + caches + DRAM in the loop) on both a
    // single and a sliced network config.
    for (auto id : {ConfigId::BASELINE_TB_DOR, ConfigId::CP_CR_DOUBLE}) {
        const auto prof = scaleWorkload(findWorkload("MM"), 0.01);
        ChipParams full_p = makeConfig(id);
        full_p.mesh.idleSkip = false;
        ChipParams skip_p = makeConfig(id);
        skip_p.mesh.idleSkip = true;
        const auto full = runWorkload(full_p, prof);
        const auto skip = runWorkload(skip_p, prof);
        EXPECT_EQ(full.ipc, skip.ipc) << configName(id);
        EXPECT_EQ(full.scalarInsts, skip.scalarInsts);
        EXPECT_EQ(full.coreCycles, skip.coreCycles);
        EXPECT_EQ(full.icntCycles, skip.icntCycles) << configName(id);
        EXPECT_EQ(full.memCycles, skip.memCycles);
        EXPECT_EQ(full.avgNetLatency, skip.avgNetLatency);
        EXPECT_EQ(full.avgTotalLatency, skip.avgTotalLatency);
        EXPECT_EQ(full.packetsEjected, skip.packetsEjected);
        EXPECT_EQ(full.dramEfficiency, skip.dramEfficiency);
    }
}

TEST(IdleSkipEquivalence, DrainedIsExactUnderIdleSkip)
{
    // drained() is an O(1) in-flight counter; check it flips exactly
    // when the last packet leaves.
    MeshNetwork net(netParams("xy", 3, true));
    DropSink sink;
    const auto &topo = net.topology();
    for (NodeId n = 0; n < topo.numNodes(); ++n)
        net.setSink(n, &sink);
    EXPECT_TRUE(net.drained());
    auto pkt = makePacket();
    pkt->src = topo.nodeAt(0, 0);
    pkt->dst = topo.nodeAt(5, 5);
    pkt->op = MemOp::READ_REQUEST;
    pkt->protoClass = 0;
    pkt->sizeFlits = net.packetFlits(MemOp::READ_REQUEST);
    pkt->sizeBytes = memOpBytes(MemOp::READ_REQUEST);
    net.inject(std::move(pkt), 0);
    EXPECT_FALSE(net.drained());
    Cycle now = 0;
    while (!net.drained() && now < 1000)
        net.cycle(now++);
    EXPECT_TRUE(net.drained());
    EXPECT_EQ(net.stats().packetsEjected, 1u);
    // Once drained, further cycles are cheap no-ops and stay drained.
    for (Cycle t = 0; t < 10; ++t)
        net.cycle(now++);
    EXPECT_TRUE(net.drained());
}

} // namespace
} // namespace tenoc
