/**
 * @file
 * Tests for the perfect and bandwidth-limited ideal networks.
 */

#include <gtest/gtest.h>

#include "noc/ideal_network.hh"

namespace tenoc
{
namespace
{

struct Collector : PacketSink
{
    bool tryReserve(const Packet &) override { return allow; }
    void deliver(PacketPtr, Cycle now) override
    {
        times.push_back(now);
    }
    bool allow = true;
    std::vector<Cycle> times;
};

PacketPtr
pkt(NodeId src, NodeId dst, unsigned flits)
{
    auto p = makePacket();
    p->src = src;
    p->dst = dst;
    p->sizeFlits = flits;
    p->sizeBytes = flits * 16;
    return p;
}

IdealNetworkParams
perfectParams()
{
    IdealNetworkParams p;
    return p;
}

TEST(IdealNetwork, PerfectDeliversImmediately)
{
    IdealNetwork net(perfectParams());
    Collector sink;
    net.setSink(7, &sink);
    net.inject(pkt(0, 7, 4), 10);
    net.cycle(10);
    ASSERT_EQ(sink.times.size(), 1u);
    EXPECT_EQ(sink.times[0], 10u);
    EXPECT_TRUE(net.drained());
}

TEST(IdealNetwork, PerfectHasNoBandwidthLimit)
{
    IdealNetwork net(perfectParams());
    Collector sink;
    net.setSink(3, &sink);
    for (int i = 0; i < 100; ++i)
        net.inject(pkt(static_cast<NodeId>(i % 36), 3, 4), 0);
    net.cycle(0);
    EXPECT_EQ(sink.times.size(), 100u);
}

TEST(IdealNetwork, SinkBackpressureQueues)
{
    IdealNetwork net(perfectParams());
    Collector sink;
    sink.allow = false;
    net.setSink(5, &sink);
    net.inject(pkt(0, 5, 1), 0);
    net.cycle(0);
    net.cycle(1);
    EXPECT_TRUE(sink.times.empty());
    EXPECT_FALSE(net.drained());
    sink.allow = true;
    net.cycle(2);
    ASSERT_EQ(sink.times.size(), 1u);
    EXPECT_EQ(sink.times[0], 2u);
}

TEST(IdealNetwork, BandwidthLimitEnforced)
{
    IdealNetworkParams p;
    p.bandwidthLimited = true;
    p.flitsPerCycle = 2.0;
    IdealNetwork net(p);
    Collector sink;
    net.setSink(9, &sink);
    // 10 x 4-flit packets = 40 flits: at 2 flits/cycle this needs
    // about 20 cycles (the token bucket allows small bursts).
    for (int i = 0; i < 10; ++i)
        net.inject(pkt(0, 9, 4), 0);
    Cycle done = 0;
    for (Cycle t = 0; t < 100; ++t) {
        net.cycle(t);
        if (net.drained() && done == 0)
            done = t;
    }
    EXPECT_EQ(sink.times.size(), 10u);
    EXPECT_GE(done, 14u);
    EXPECT_LE(done, 25u);
}

TEST(IdealNetwork, FractionalBandwidthAccumulates)
{
    IdealNetworkParams p;
    p.bandwidthLimited = true;
    p.flitsPerCycle = 0.5; // one flit every two cycles
    IdealNetwork net(p);
    Collector sink;
    net.setSink(1, &sink);
    for (int i = 0; i < 5; ++i)
        net.inject(pkt(0, 1, 1), 0);
    for (Cycle t = 0; t < 12; ++t)
        net.cycle(t);
    EXPECT_EQ(sink.times.size(), 5u);
    for (Cycle t = 12; t < 20; ++t)
        net.cycle(t);
    EXPECT_TRUE(net.drained());
}

TEST(IdealNetwork, StatsTrackPerNodeTraffic)
{
    IdealNetwork net(perfectParams());
    Collector sink;
    net.setSink(2, &sink);
    net.inject(pkt(1, 2, 4), 0);
    net.cycle(0);
    EXPECT_EQ(net.stats().nodeInjectedFlits[1], 4u);
    EXPECT_EQ(net.stats().nodeEjectedFlits[2], 4u);
    EXPECT_EQ(net.stats().nodeInjectedBytes[1], 64u);
}

} // namespace
} // namespace tenoc
