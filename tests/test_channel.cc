/**
 * @file
 * Unit tests for the pipelined channel.
 */

#include <gtest/gtest.h>

#include "noc/channel.hh"

namespace tenoc
{
namespace
{

TEST(Channel, DeliversAfterLatency)
{
    Channel<int> ch(3);
    ch.send(42, 10);
    EXPECT_FALSE(ch.receive(11).has_value());
    EXPECT_FALSE(ch.receive(12).has_value());
    auto v = ch.receive(13);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, 42);
    EXPECT_TRUE(ch.empty());
}

TEST(Channel, PreservesOrder)
{
    Channel<int> ch(1);
    ch.send(1, 0);
    ch.send(2, 1);
    ch.send(3, 2);
    EXPECT_EQ(ch.inFlight(), 3u);
    EXPECT_EQ(*ch.receive(5), 1);
    EXPECT_EQ(*ch.receive(5), 2);
    EXPECT_EQ(*ch.receive(5), 3);
    EXPECT_FALSE(ch.receive(5).has_value());
}

TEST(Channel, LateReceiverStillGetsItems)
{
    Channel<int> ch(1);
    ch.send(9, 0);
    EXPECT_EQ(*ch.receive(100), 9);
}

TEST(ChannelDeath, TwoSendsInOneCyclePanic)
{
    Channel<int> ch(1);
    ch.send(1, 5);
    EXPECT_DEATH(ch.send(2, 5), "one item per cycle");
}

TEST(ChannelDeath, SendInPastPanics)
{
    Channel<int> ch(1);
    ch.send(1, 5);
    EXPECT_DEATH(ch.send(2, 4), "one item per cycle");
}

} // namespace
} // namespace tenoc
