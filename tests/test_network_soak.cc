/**
 * @file
 * Randomized soak tests: drive every network organization with
 * bidirectional many-to-few-to-many traffic and check conservation
 * invariants (every packet delivered exactly once, to the right node,
 * with all its flits, and the network drains).  The router's internal
 * assertions (credit protocol, connectivity, turn legality) are live
 * during the soak.
 */

#include <gtest/gtest.h>

#include <map>

#include "noc/mesh_network.hh"

namespace tenoc
{
namespace
{

struct SoakConfig
{
    const char *name;
    std::string routing;
    bool checkerboard; // placement + half routers
    unsigned flitBytes;
    unsigned vcsPerClass;
    unsigned mcInjPorts;
    unsigned mcEjPorts;
    bool sliced;
};

class NetworkSoak : public ::testing::TestWithParam<SoakConfig>
{};

struct CountingSink : PacketSink
{
    bool tryReserve(const Packet &) override { return true; }

    void
    deliver(PacketPtr pkt, Cycle) override
    {
        ++count;
        flits += pkt->sizeFlits;
        last = std::move(pkt);
    }

    unsigned count = 0;
    unsigned flits = 0;
    PacketPtr last;
};

TEST_P(NetworkSoak, ConservationUnderRandomTraffic)
{
    const auto &cfg = GetParam();
    MeshNetworkParams p;
    p.routing = cfg.routing;
    p.flitBytes = cfg.flitBytes;
    p.vcsPerClass = cfg.vcsPerClass;
    p.mcInjPorts = cfg.mcInjPorts;
    p.mcEjPorts = cfg.mcEjPorts;
    p.seed = 31337;
    // Full hardening during the soak: audit every invariant on a tight
    // stride and keep the deadlock watchdog well inside the drain
    // deadline so a hang fails with a diagnosis, not a timeout.
    p.validate = true;
    p.validateInterval = 16;
    p.watchdogWindow = 10000;
    if (cfg.checkerboard) {
        p.topo.placement = McPlacement::CHECKERBOARD;
        p.topo.checkerboardRouters = true;
    }
    auto net = makeMeshNetwork(p, cfg.sliced);
    const Topology &topo = net->topology();

    std::vector<CountingSink> sinks(topo.numNodes());
    for (NodeId n = 0; n < topo.numNodes(); ++n)
        net->setSink(n, &sinks[n]);

    Rng rng(1234);
    Cycle t = 0;
    unsigned sent_req = 0;
    unsigned sent_rep = 0;
    unsigned flits_req = 0;
    unsigned flits_rep = 0;
    const unsigned target = 400;
    while (sent_req + sent_rep < target && t < 50000) {
        // Requests: random core -> random MC.
        const NodeId core = rng.pick(topo.computeNodes());
        if (sent_req + sent_rep < target && net->canInject(core, 0)) {
            auto pkt = makePacket();
            pkt->src = core;
            pkt->dst = rng.pick(topo.mcNodes());
            pkt->op = rng.nextBool(0.3) ? MemOp::WRITE_REQUEST
                                        : MemOp::READ_REQUEST;
            pkt->protoClass = 0;
            pkt->sizeFlits = net->packetFlits(pkt->op);
            pkt->sizeBytes = memOpBytes(pkt->op);
            flits_req += pkt->sizeFlits;
            net->inject(std::move(pkt), t);
            ++sent_req;
        }
        // Replies: random MC -> random core.
        const NodeId mc = rng.pick(topo.mcNodes());
        if (sent_req + sent_rep < target && net->canInject(mc, 1)) {
            auto pkt = makePacket();
            pkt->src = mc;
            pkt->dst = rng.pick(topo.computeNodes());
            pkt->op = MemOp::READ_REPLY;
            pkt->protoClass = 1;
            pkt->sizeFlits = net->packetFlits(pkt->op);
            pkt->sizeBytes = memOpBytes(pkt->op);
            flits_rep += pkt->sizeFlits;
            net->inject(std::move(pkt), t);
            ++sent_rep;
        }
        net->cycle(t++);
    }
    ASSERT_EQ(sent_req + sent_rep, target) << "injection starved";

    // Drain.
    const Cycle deadline = t + 20000;
    while (!net->drained() && t < deadline)
        net->cycle(t++);
    ASSERT_TRUE(net->drained())
        << "network failed to drain; diagnostic snapshot:\n"
        << net->diagnosticReport(t);

    unsigned mc_packets = 0;
    unsigned core_packets = 0;
    unsigned got_flits = 0;
    for (NodeId n = 0; n < topo.numNodes(); ++n) {
        got_flits += sinks[n].flits;
        if (topo.isMc(n)) {
            mc_packets += sinks[n].count;
        } else {
            core_packets += sinks[n].count;
            if (sinks[n].last) {
                EXPECT_EQ(sinks[n].last->dst, n);
            }
        }
    }
    EXPECT_EQ(mc_packets, sent_req);
    EXPECT_EQ(core_packets, sent_rep);
    EXPECT_EQ(got_flits, flits_req + flits_rep);
    EXPECT_EQ(net->stats().packetsEjected, target);
    EXPECT_EQ(net->stats().flitsInjected, net->stats().flitsEjected);
}

INSTANTIATE_TEST_SUITE_P(
    Organizations, NetworkSoak,
    ::testing::Values(
        SoakConfig{"baseline", "xy", false, 16, 1, 1, 1, false},
        SoakConfig{"yx", "yx", false, 16, 1, 1, 1, false},
        SoakConfig{"wide", "xy", false, 32, 1, 1, 1, false},
        SoakConfig{"dor4vc", "xy", false, 16, 2, 1, 1, false},
        SoakConfig{"cpcr", "cr", true, 16, 1, 1, 1, false},
        SoakConfig{"cpcr2p", "cr", true, 16, 1, 2, 1, false},
        SoakConfig{"cpcr2ej", "cr", true, 16, 1, 1, 2, false},
        SoakConfig{"double", "cr", true, 16, 1, 1, 1, true},
        SoakConfig{"double2p", "cr", true, 16, 1, 2, 1, true},
        SoakConfig{"o1turn", "o1turn", false, 16, 1, 1, 1, false},
        SoakConfig{"romm", "romm", false, 16, 1, 1, 1, false},
        SoakConfig{"valiant", "valiant", false, 16, 1, 1, 1, false}),
    [](const auto &info) { return std::string(info.param.name); });

} // namespace
} // namespace tenoc
