/**
 * @file
 * Tests for arrival-scheduled channel delivery (noc/arrival.hh):
 *
 *  - ArrivalScheduler wheel mechanics: exact-cycle firing, bucket
 *    aliasing one wheel turn apart, gap sweeps when the driver skips
 *    cycles, the unprimed post-restore full sweep, the firedThrough
 *    horizon and deferred (parallel-phase) merging;
 *  - Channel integration: send posts a wake at the delivery cycle,
 *    stalled channels keep their pending bit alive, and clearing a
 *    stall re-marks the receiver immediately (the wheel slot already
 *    fired and will never fire again);
 *  - whole-network equivalence: with MeshNetworkParams::arrivalSleep
 *    on and off every statistic of a run must be identical, across
 *    idle-skip, channel slicing, the parallel cycle engine, torus
 *    wrap links and link-stall fault injection.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "noc/arrival.hh"
#include "noc/channel.hh"
#include "noc/mesh_network.hh"

namespace tenoc
{
namespace
{

// --- ArrivalScheduler unit tests ---

TEST(ArrivalScheduler, FiresAtExactCycle)
{
    ActiveSet set(8);
    ArrivalScheduler sched;
    sched.configure(8, 4, &set);
    sched.schedule(5, 2, 0x4);
    EXPECT_EQ(sched.scheduled(), 1u);

    sched.fire(4);
    EXPECT_EQ(sched.pending(2), 0u);
    EXPECT_FALSE(set.test(2));

    sched.fire(5);
    EXPECT_EQ(sched.pending(2), 0x4u);
    EXPECT_TRUE(set.test(2));
    EXPECT_EQ(sched.scheduled(), 0u);
}

TEST(ArrivalScheduler, AliasedBucketKeepsFutureEntry)
{
    // Two entries one full wheel turn apart land in the same bucket;
    // firing the earlier cycle must deliver only the earlier entry.
    ActiveSet set(4);
    ArrivalScheduler sched;
    sched.configure(4, 4, &set);
    // configure(latency 4) sizes the wheel at the smallest power of
    // two > latency + 1, i.e. 8 buckets.
    sched.schedule(3, 0, 0x1);
    sched.schedule(3 + 8, 1, 0x2);
    sched.fire(3);
    EXPECT_EQ(sched.pending(0), 0x1u);
    EXPECT_EQ(sched.pending(1), 0u);
    EXPECT_EQ(sched.scheduled(), 1u);
    sched.setPending(0, 0);
    set.clear(0);

    // Walk the gap one fire at a time up to the aliased cycle.
    for (Cycle c = 4; c <= 11; ++c)
        sched.fire(c);
    EXPECT_EQ(sched.pending(0), 0u);
    EXPECT_EQ(sched.pending(1), 0x2u);
    EXPECT_TRUE(set.test(1));
    EXPECT_EQ(sched.scheduled(), 0u);
}

TEST(ArrivalScheduler, GapLargerThanWheelSweepsEverything)
{
    ActiveSet set(4);
    ArrivalScheduler sched;
    sched.configure(4, 2, &set);
    sched.fire(1); // prime
    sched.schedule(3, 1, 0x1);
    sched.schedule(7, 2, 0x2);
    // A driver that skips far ahead must still deliver both.
    sched.fire(1000);
    EXPECT_EQ(sched.pending(1), 0x1u);
    EXPECT_EQ(sched.pending(2), 0x2u);
    EXPECT_EQ(sched.scheduled(), 0u);
}

TEST(ArrivalScheduler, FirstFireAfterConfigureSweepsEverything)
{
    // Post-restore path: the wheel is rebuilt by reschedulePending and
    // the first fire has no last-fire history — it must behave as a
    // full sweep and deliver every matured entry.
    ActiveSet set(4);
    ArrivalScheduler sched;
    sched.configure(4, 2, &set);
    sched.schedule(2, 0, 0x1);
    sched.schedule(9, 1, 0x2);
    EXPECT_EQ(sched.firedThrough(), 0u);
    sched.fire(9);
    EXPECT_EQ(sched.pending(0), 0x1u);
    EXPECT_EQ(sched.pending(1), 0x2u);
    EXPECT_EQ(sched.firedThrough(), 9u);
}

TEST(ArrivalScheduler, WakeNowMarksImmediately)
{
    ActiveSet set(4);
    ArrivalScheduler sched;
    sched.configure(4, 2, &set);
    sched.wakeNow(3, 0x10);
    EXPECT_EQ(sched.pending(3), 0x10u);
    EXPECT_TRUE(set.test(3));
}

TEST(ArrivalScheduler, DeferredEntriesMergeAtBarrier)
{
    ActiveSet set(4);
    ArrivalScheduler sched;
    sched.configure(4, 2, &set);
    sched.enableDeferred();
    sched.beginDeferred();
    sched.schedule(4, 1, 0x1);
    // Frozen: nothing lands in the wheel until the barrier merge.
    EXPECT_EQ(sched.scheduled(), 0u);
    sched.endDeferred();
    sched.mergeDeferred();
    EXPECT_EQ(sched.scheduled(), 1u);
    sched.fire(4);
    EXPECT_EQ(sched.pending(1), 0x1u);
}

// --- Channel integration ---

TEST(ArrivalChannel, SendPostsWakeAtDeliveryCycle)
{
    ActiveSet set(2);
    ArrivalScheduler sched;
    sched.configure(2, 3, &set);
    Channel<int> ch(3);
    ch.setArrivalTarget(&sched, 0, 0x1);

    ch.send(7, 10);
    // Mark-on-send would flag the receiver now; the wheel must not.
    EXPECT_FALSE(set.test(0));
    sched.fire(12);
    EXPECT_FALSE(set.test(0));
    sched.fire(13);
    EXPECT_TRUE(set.test(0));
    EXPECT_EQ(sched.pending(0), 0x1u);
    EXPECT_EQ(*ch.receive(13), 7);
}

TEST(ArrivalChannel, StallClearRemarksMaturedBacklog)
{
    // The wheel wake fires into a stalled channel and is consumed;
    // clearing the stall must set the pending bit immediately or the
    // backlog would sleep forever.
    ActiveSet set(2);
    ArrivalScheduler sched;
    sched.configure(2, 1, &set);
    Channel<int> ch(1);
    ch.setArrivalTarget(&sched, 0, 0x2);

    ch.send(1, 0);
    ch.setStalled(true);
    sched.fire(1);
    EXPECT_EQ(sched.pending(0), 0x2u);
    EXPECT_FALSE(ch.receive(1).has_value()); // stalled: delivers nothing
    // The receiver's drain loop clears the bit it saw nothing behind
    // ... except that readInputs keeps it while a matured entry sits in
    // the channel (earliestArrival() <= now).  Model the worst case
    // here: the bit was fully cleared.
    sched.setPending(0, 0);
    set.clear(0);

    ch.setStalled(false);
    EXPECT_EQ(sched.pending(0), 0x2u);
    EXPECT_TRUE(set.test(0));
    EXPECT_EQ(*ch.receive(5), 1);
}

TEST(ArrivalChannel, ReschedulePendingRebuildsWheel)
{
    // Restore path: channels carry their in-flight entries but the
    // wheel starts empty; reschedulePending must repost each arrival.
    ActiveSet set(2);
    ArrivalScheduler sched;
    sched.configure(2, 2, &set);
    Channel<int> ch(2);
    ch.setArrivalTarget(&sched, 1, 0x1);
    ch.send(5, 0);
    ch.send(6, 1);

    sched.configure(2, 2, &set); // wipe, as restore does
    EXPECT_EQ(sched.scheduled(), 0u);
    ch.reschedulePending();
    EXPECT_EQ(sched.scheduled(), 2u);
    sched.fire(2);
    EXPECT_EQ(sched.pending(1), 0x1u);
    EXPECT_EQ(*ch.receive(2), 5);
    sched.fire(3);
    EXPECT_EQ(*ch.receive(3), 6);
}

// --- Whole-network equivalence ---

/** Accepts everything, keeps nothing. */
struct DropSink : PacketSink
{
    bool tryReserve(const Packet &) override { return true; }
    void deliver(PacketPtr, Cycle) override {}
};

void
expectStatsEqual(const NetStats &a, const NetStats &b)
{
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.packetsInjected, b.packetsInjected);
    EXPECT_EQ(a.packetsEjected, b.packetsEjected);
    EXPECT_EQ(a.flitsInjected, b.flitsInjected);
    EXPECT_EQ(a.flitsEjected, b.flitsEjected);
    EXPECT_EQ(a.nodeInjectedFlits, b.nodeInjectedFlits);
    EXPECT_EQ(a.nodeEjectedFlits, b.nodeEjectedFlits);
    EXPECT_EQ(a.totalLatency.count(), b.totalLatency.count());
    EXPECT_EQ(a.totalLatency.sum(), b.totalLatency.sum());
    EXPECT_EQ(a.netLatency.sum(), b.netLatency.sum());
    EXPECT_EQ(a.totalLatencyHist.buckets(),
              b.totalLatencyHist.buckets());
    EXPECT_EQ(a.queueLatencyHist.buckets(),
              b.queueLatencyHist.buckets());
}

/** Seeded request/reply driver; @return the cycle drained() turned. */
Cycle
drive(Network &net, std::uint64_t seed, Cycle cycles)
{
    DropSink sink;
    const auto &topo = net.topology();
    for (NodeId n = 0; n < topo.numNodes(); ++n)
        net.setSink(n, &sink);
    Rng rng(seed);
    Cycle now = 0;
    for (; now < cycles; ++now) {
        for (NodeId core : topo.computeNodes()) {
            if (rng.nextBool(0.05) && net.canInject(core, 0)) {
                auto pkt = makePacket();
                pkt->src = core;
                pkt->dst = rng.pick(topo.mcNodes());
                pkt->op = MemOp::READ_REQUEST;
                pkt->protoClass = 0;
                pkt->sizeFlits = net.packetFlits(MemOp::READ_REQUEST);
                pkt->sizeBytes = memOpBytes(MemOp::READ_REQUEST);
                net.inject(std::move(pkt), now);
            }
        }
        for (NodeId mc : topo.mcNodes()) {
            if (rng.nextBool(0.12) && net.canInject(mc, 1)) {
                auto pkt = makePacket();
                pkt->src = mc;
                pkt->dst = rng.pick(topo.computeNodes());
                pkt->op = MemOp::READ_REPLY;
                pkt->protoClass = 1;
                pkt->sizeFlits = net.packetFlits(MemOp::READ_REPLY);
                pkt->sizeBytes = memOpBytes(MemOp::READ_REPLY);
                net.inject(std::move(pkt), now);
            }
        }
        net.cycle(now);
    }
    while (!net.drained() && now < cycles + 100000)
        net.cycle(now++);
    EXPECT_TRUE(net.drained());
    return now;
}

MeshNetworkParams
baseParams(std::uint64_t seed)
{
    MeshNetworkParams p;
    p.seed = seed;
    p.validate = true;
    p.validateInterval = 16;
    return p;
}

void
expectArrivalSleepInvariant(MeshNetworkParams p, bool sliced,
                            std::uint64_t seed)
{
    p.arrivalSleep = false;
    const auto off = makeMeshNetwork(p, sliced);
    p.arrivalSleep = true;
    const auto on = makeMeshNetwork(p, sliced);
    const Cycle done_off = drive(*off, seed * 17 + 3, 2000);
    const Cycle done_on = drive(*on, seed * 17 + 3, 2000);
    EXPECT_EQ(done_off, done_on);
    expectStatsEqual(off->stats(), on->stats());
}

class ArrivalSleepEquivalence
    : public ::testing::TestWithParam<
          std::tuple<std::uint64_t, bool, bool, unsigned>>
{};

TEST_P(ArrivalSleepEquivalence, MatchesMarkOnSend)
{
    const auto [seed, idle_skip, sliced, threads] = GetParam();
    MeshNetworkParams p = baseParams(seed);
    p.idleSkip = idle_skip;
    p.cycleThreads = threads;
    expectArrivalSleepInvariant(p, sliced, seed);
}

std::string
arrivalCaseName(const ::testing::TestParamInfo<
                std::tuple<std::uint64_t, bool, bool, unsigned>> &info)
{
    const auto [seed, idle_skip, sliced, threads] = info.param;
    std::string s = idle_skip ? "skip" : "full";
    s += sliced ? "_double_" : "_single_";
    s += "t" + std::to_string(threads);
    s += "_" + std::to_string(seed);
    return s;
}

INSTANTIATE_TEST_SUITE_P(
    TogglesAndSeeds, ArrivalSleepEquivalence,
    ::testing::Combine(::testing::Values<std::uint64_t>(3, 77),
                       ::testing::Bool(), ::testing::Bool(),
                       ::testing::Values(1u, 2u)),
    arrivalCaseName);

TEST(ArrivalSleepEquivalence, TorusWrapLinks)
{
    // Wrap channels give distant node pairs one-hop links; their
    // arrival wakes must land on the right routers.
    MeshNetworkParams p = baseParams(9);
    p.topo.kind = TopoKind::TORUS;
    expectArrivalSleepInvariant(p, false, 9);
}

TEST(ArrivalSleepEquivalence, LongChannelLatency)
{
    // Multi-cycle links park several entries per channel in the wheel.
    MeshNetworkParams p = baseParams(4);
    p.channelLatency = 5;
    expectArrivalSleepInvariant(p, false, 4);
}

TEST(ArrivalSleepEquivalence, LinkStallFaults)
{
    // Transient link stalls consume wheel wakes while the channel
    // delivers nothing; the stall-clear re-mark and the readInputs
    // keep-bit must together never strand a flit.
    MeshNetworkParams p = baseParams(6);
    p.faults.linkStallRate = 2e-3;
    p.faults.linkStallDuration = 12;
    p.faults.seed = 99;
    expectArrivalSleepInvariant(p, false, 6);
}

TEST(ArrivalSleepEquivalence, AgePriorityAllocator)
{
    MeshNetworkParams p = baseParams(5);
    p.agePriority = true;
    expectArrivalSleepInvariant(p, false, 5);
}

} // namespace
} // namespace tenoc
