/**
 * @file
 * Unit tests for the VC router: connectivity rules, pipeline latency,
 * credit flow, and multi-port ejection.
 */

#include <gtest/gtest.h>

#include "noc/router.hh"

namespace tenoc
{
namespace
{

TopologyParams
cbParams()
{
    TopologyParams p;
    p.placement = McPlacement::CHECKERBOARD;
    p.checkerboardRouters = true;
    return p;
}

Router::Params
routerParams(bool half = false, unsigned inj = 1, unsigned ej = 1)
{
    Router::Params rp;
    rp.vcMap = VcMap{2, 1, 1};
    rp.vcDepth = 8;
    rp.pipelineDepth = half ? 3 : 4;
    rp.half = half;
    rp.numInjPorts = inj;
    rp.numEjPorts = ej;
    return rp;
}

TEST(RouterConnectivity, FullRouterConnectsEverything)
{
    Topology topo(TopologyParams{});
    DorRouting xy(topo, true);
    Router r(topo.nodeAt(2, 2), topo, xy, routerParams(false));
    for (unsigned in = 0; in < NUM_DIRS; ++in) {
        // Full crossbar, including U-turns (used by Valiant waypoints).
        for (unsigned out = 0; out < NUM_DIRS; ++out) {
            EXPECT_TRUE(r.connectivityAllows(in, out));
        }
        EXPECT_TRUE(r.connectivityAllows(in, NUM_DIRS)); // ejection
    }
    // injection reaches every output
    EXPECT_TRUE(r.connectivityAllows(NUM_DIRS, DIR_WEST));
    EXPECT_TRUE(r.connectivityAllows(NUM_DIRS, NUM_DIRS));
}

TEST(RouterConnectivity, HalfRouterRestrictsToStraightThrough)
{
    Topology topo(cbParams());
    CheckerboardRouting cr(topo);
    Router r(topo.nodeAt(1, 0), topo, cr, routerParams(true));
    // Fig. 13: E<->W and N<->S only.
    EXPECT_TRUE(r.connectivityAllows(DIR_WEST, DIR_EAST));
    EXPECT_TRUE(r.connectivityAllows(DIR_EAST, DIR_WEST));
    EXPECT_TRUE(r.connectivityAllows(DIR_NORTH, DIR_SOUTH));
    EXPECT_TRUE(r.connectivityAllows(DIR_SOUTH, DIR_NORTH));
    EXPECT_FALSE(r.connectivityAllows(DIR_WEST, DIR_NORTH));
    EXPECT_FALSE(r.connectivityAllows(DIR_WEST, DIR_SOUTH));
    EXPECT_FALSE(r.connectivityAllows(DIR_NORTH, DIR_EAST));
    EXPECT_FALSE(r.connectivityAllows(DIR_SOUTH, DIR_WEST));
    // Injection and ejection connect to everything (Sec. IV-A).
    for (unsigned d = 0; d < NUM_DIRS; ++d) {
        EXPECT_TRUE(r.connectivityAllows(NUM_DIRS, d));
        EXPECT_TRUE(r.connectivityAllows(d, NUM_DIRS));
    }
}

/** Two-router fixture: A --east--> B, NI sink at B. */
class TwoRouterTest : public ::testing::Test, public EjectionSink
{
  protected:
    TwoRouterTest()
        : topo_(TopologyParams{}), xy_(topo_, true),
          a_(topo_.nodeAt(0, 0), topo_, xy_, routerParams()),
          b_(topo_.nodeAt(1, 0), topo_, xy_, routerParams()),
          ab_flit_(1), ab_credit_(1)
    {
        a_.connectOutput(DIR_EAST, &ab_flit_, &ab_credit_);
        b_.connectInput(DIR_WEST, &ab_flit_, &ab_credit_);
        b_.setEjectionSink(this);
        a_.setEjectionSink(this);
    }

    bool ejectReady(unsigned) const override { return true; }

    void
    ejectFlit(unsigned, Flit &&flit, Cycle now) override
    {
        ejected_.emplace_back(now, std::move(flit));
    }

    /** Injects a packet at A addressed to B and runs `cycles` more
     *  simulated cycles (time continues across calls). */
    void
    run(unsigned size_flits, Cycle cycles)
    {
        auto pkt = makePacket();
        pkt->src = topo_.nodeAt(0, 0);
        pkt->dst = topo_.nodeAt(1, 0);
        pkt->sizeFlits = size_flits;
        pkt->protoClass = 0;
        pkt->mode = RouteMode::XY;
        std::vector<Flit> flits;
        makeFlits(pkt, flits);
        std::size_t next = 0;
        const Cycle end = now_ + cycles;
        for (; now_ < end; ++now_) {
            a_.readInputs(now_);
            b_.readInputs(now_);
            if (next < flits.size() &&
                a_.injFreeSlots(0, 0) > 0) {
                Flit f = flits[next++];
                f.vc = 0;
                a_.injectFlit(0, std::move(f), now_);
            }
            a_.compute(now_);
            b_.compute(now_);
        }
    }

    Cycle now_ = 0;

    Topology topo_;
    DorRouting xy_;
    Router a_;
    Router b_;
    Channel<Flit> ab_flit_;
    Channel<Credit> ab_credit_;
    std::vector<std::pair<Cycle, Flit>> ejected_;
};

TEST_F(TwoRouterTest, SingleFlitHopLatency)
{
    run(1, 30);
    ASSERT_EQ(ejected_.size(), 1u);
    // Head injected at cycle 0 spends pipelineDepth = 4 cycles in A,
    // 1 cycle on the channel (arrives B at 5), and 4 cycles in B:
    // ejects at 9.  Per-hop latency is pipeline + channel = 5 cycles
    // (Sec. III-B's 5-cycle hops).
    EXPECT_EQ(ejected_[0].first, 9u);
}

TEST_F(TwoRouterTest, MultiFlitWormKeepsOrderAndStreams)
{
    run(4, 40);
    ASSERT_EQ(ejected_.size(), 4u);
    for (unsigned i = 0; i < 4; ++i)
        EXPECT_EQ(ejected_[i].second.seq, i);
    // Body flits stream one per cycle behind the head.
    for (unsigned i = 1; i < 4; ++i)
        EXPECT_EQ(ejected_[i].first, ejected_[i - 1].first + 1);
    EXPECT_EQ(a_.flitsTraversed(), 4u);
    EXPECT_EQ(b_.flitsTraversed(), 4u);
    EXPECT_TRUE(a_.empty());
    EXPECT_TRUE(b_.empty());
}

TEST_F(TwoRouterTest, CreditsRecoverAfterDrain)
{
    // Two back-to-back 8-flit packets exactly fill the 8-deep VC; the
    // second can only flow as credits return.
    run(8, 10);
    run(8, 120);
    EXPECT_EQ(ejected_.size(), 16u);
    EXPECT_TRUE(a_.empty());
    EXPECT_TRUE(b_.empty());
}

TEST(Router, AggressiveSingleCycleRouter)
{
    Topology topo{TopologyParams{}};
    DorRouting xy(topo, true);
    auto rp = routerParams();
    rp.pipelineDepth = 1;
    Router a(topo.nodeAt(0, 0), topo, xy, rp);
    struct Sink : EjectionSink
    {
        bool ejectReady(unsigned) const override { return true; }
        void ejectFlit(unsigned, Flit &&, Cycle now) override
        {
            eject_time = now;
        }
        Cycle eject_time = INVALID_CYCLE;
    } sink;
    a.setEjectionSink(&sink);

    auto pkt = makePacket();
    pkt->src = topo.nodeAt(1, 0);
    pkt->dst = topo.nodeAt(0, 0);
    pkt->sizeFlits = 1;
    pkt->mode = RouteMode::XY;
    std::vector<Flit> flits;
    makeFlits(pkt, flits);
    flits[0].vc = 0;
    a.injectFlit(0, std::move(flits[0]), 5);
    a.compute(5);
    a.compute(6);
    // 1-cycle router: one cycle of residency (2-cycle hops with the
    // 1-cycle channel, vs 5 for the 4-stage baseline).
    EXPECT_EQ(sink.eject_time, 6u);
}

TEST(Router, MultiEjectionPortsRoundRobin)
{
    Topology topo{TopologyParams{}};
    DorRouting xy(topo, true);
    Router r(topo.nodeAt(0, 0), topo, xy, routerParams(false, 1, 2));
    struct Sink : EjectionSink
    {
        bool ejectReady(unsigned) const override { return true; }
        void ejectFlit(unsigned port, Flit &&, Cycle) override
        {
            ports.push_back(port);
        }
        std::vector<unsigned> ports;
    } sink;
    r.setEjectionSink(&sink);

    // Two 1-flit packets on different VCs eject via different ports.
    for (int i = 0; i < 2; ++i) {
        auto pkt = makePacket();
        pkt->src = topo.nodeAt(1, 0);
        pkt->dst = topo.nodeAt(0, 0);
        pkt->sizeFlits = 1;
        pkt->protoClass = i; // distinct VCs
        pkt->mode = RouteMode::XY;
        std::vector<Flit> flits;
        makeFlits(pkt, flits);
        flits[0].vc = static_cast<unsigned>(i);
        r.injectFlit(0, std::move(flits[0]), 0);
    }
    for (Cycle t = 0; t < 10; ++t) {
        r.readInputs(t);
        r.compute(t);
    }
    ASSERT_EQ(sink.ports.size(), 2u);
    EXPECT_NE(sink.ports[0], sink.ports[1]);
}

TEST(Router, AgePriorityGrantsOldestPacket)
{
    // Two packets on different VCs contend for the same output; with
    // age priority the one that entered the network earlier must win
    // switch allocation, regardless of round-robin state.
    Topology topo{TopologyParams{}};
    DorRouting xy(topo, true);
    auto rp = routerParams();
    rp.agePriority = true;
    rp.pipelineDepth = 1;
    Router r(topo.nodeAt(0, 0), topo, xy, rp);
    Channel<Flit> out(1);
    Channel<Credit> credit(1);
    r.connectOutput(DIR_EAST, &out, &credit);

    auto mk = [&](int proto, Cycle injected) {
        auto pkt = makePacket();
        pkt->src = topo.nodeAt(0, 0);
        pkt->dst = topo.nodeAt(3, 0); // east
        pkt->sizeFlits = 1;
        pkt->protoClass = proto;
        pkt->mode = RouteMode::XY;
        pkt->injectedCycle = injected;
        std::vector<Flit> flits;
        makeFlits(pkt, flits);
        flits[0].vc = static_cast<unsigned>(proto);
        return flits[0];
    };
    // Newer packet on VC0, older packet on VC1.
    r.injectFlit(0, mk(0, /*injected=*/50), 100);
    Flit old_flit = mk(1, /*injected=*/10);
    const auto old_pkt = old_flit.pkt;
    r.injectFlit(0, std::move(old_flit), 100);

    r.compute(100); // RC + VA
    r.compute(101); // SA + ST (1-cycle residency elapsed)
    auto first = out.receive(102);
    ASSERT_TRUE(first.has_value());
    EXPECT_EQ(first->pkt.get(), old_pkt.get());
}

TEST(Router, InjFreeSlotsTracksOccupancy)
{
    Topology topo{TopologyParams{}};
    DorRouting xy(topo, true);
    Router r(topo.nodeAt(0, 0), topo, xy, routerParams());
    EXPECT_EQ(r.injFreeSlots(0, 0), 8u);
    auto pkt = makePacket();
    pkt->src = topo.nodeAt(1, 0);
    pkt->dst = topo.nodeAt(0, 0);
    pkt->sizeFlits = 2;
    std::vector<Flit> flits;
    makeFlits(pkt, flits);
    flits[0].vc = 0;
    r.injectFlit(0, std::move(flits[0]), 0);
    EXPECT_EQ(r.injFreeSlots(0, 0), 7u);
    EXPECT_EQ(r.bufferedFlits(), 1u);
    EXPECT_FALSE(r.empty());
}

} // namespace
} // namespace tenoc
