/**
 * @file
 * Unit tests for packets and flits.
 */

#include <gtest/gtest.h>

#include "noc/flit.hh"

namespace tenoc
{
namespace
{

TEST(MemOpBytes, PaperPacketSizes)
{
    // Sec. III-D: small 8-byte requests, large 64-byte transfers.
    EXPECT_EQ(memOpBytes(MemOp::READ_REQUEST), 8u);
    EXPECT_EQ(memOpBytes(MemOp::WRITE_REQUEST), 64u);
    EXPECT_EQ(memOpBytes(MemOp::READ_REPLY), 64u);
    EXPECT_EQ(memOpBytes(MemOp::WRITE_ACK), 8u);
}

TEST(FlitsForBytes, SixteenByteChannels)
{
    EXPECT_EQ(flitsForBytes(8, 16), 1u);
    EXPECT_EQ(flitsForBytes(64, 16), 4u); // 4-flit replies (Fig. 21)
    EXPECT_EQ(flitsForBytes(65, 16), 5u);
}

TEST(FlitsForBytes, SlicedEightByteChannels)
{
    EXPECT_EQ(flitsForBytes(8, 8), 1u);
    EXPECT_EQ(flitsForBytes(64, 8), 8u);
}

TEST(FlitsForBytes, DoubleWidthChannels)
{
    EXPECT_EQ(flitsForBytes(8, 32), 1u);
    EXPECT_EQ(flitsForBytes(64, 32), 2u);
}

TEST(Packet, RouteClassFollowsMode)
{
    Packet p;
    p.mode = RouteMode::XY;
    EXPECT_EQ(p.routeClass(), 0);
    p.mode = RouteMode::YX;
    EXPECT_EQ(p.routeClass(), 1);
    p.mode = RouteMode::TWO_PHASE;
    p.phase2 = false;
    EXPECT_EQ(p.routeClass(), 1); // phase 1 is a YX leg
    p.phase2 = true;
    EXPECT_EQ(p.routeClass(), 0); // phase 2 is an XY leg
}

TEST(MakeFlits, HeadTailAndSequence)
{
    auto pkt = makePacket();
    pkt->sizeFlits = 4;
    std::vector<Flit> flits;
    makeFlits(pkt, flits);
    ASSERT_EQ(flits.size(), 4u);
    EXPECT_TRUE(flits[0].head);
    EXPECT_FALSE(flits[0].tail);
    EXPECT_TRUE(flits[3].tail);
    EXPECT_FALSE(flits[3].head);
    for (unsigned i = 0; i < 4; ++i) {
        EXPECT_EQ(flits[i].seq, i);
        EXPECT_EQ(flits[i].pkt.get(), pkt.get());
    }
}

TEST(MakeFlits, SingleFlitIsHeadAndTail)
{
    auto pkt = makePacket();
    pkt->sizeFlits = 1;
    std::vector<Flit> flits;
    makeFlits(pkt, flits);
    ASSERT_EQ(flits.size(), 1u);
    EXPECT_TRUE(flits[0].head);
    EXPECT_TRUE(flits[0].tail);
}

TEST(MemOp, RequestClassification)
{
    EXPECT_TRUE(isRequest(MemOp::READ_REQUEST));
    EXPECT_TRUE(isRequest(MemOp::WRITE_REQUEST));
    EXPECT_FALSE(isRequest(MemOp::READ_REPLY));
    EXPECT_FALSE(isRequest(MemOp::WRITE_ACK));
}

TEST(MemOp, Names)
{
    EXPECT_STREQ(memOpName(MemOp::READ_REPLY), "READ_REPLY");
    EXPECT_STREQ(trafficClassName(TrafficClass::HH), "HH");
}

} // namespace
} // namespace tenoc
