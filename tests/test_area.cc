/**
 * @file
 * Tests for the area model against the paper's published Table VI.
 */

#include <gtest/gtest.h>

#include "area/area_model.hh"

namespace tenoc
{
namespace
{

RouterAreaParams
baselineRouter()
{
    RouterAreaParams p; // 16B, 2 VCs x 8, full, 1 inj/ej
    return p;
}

TEST(AreaModel, BaselineRouterMatchesTableVI)
{
    AreaModel m;
    const auto b = m.routerArea(baselineRouter());
    EXPECT_NEAR(b.crossbar, 1.73, 0.02);
    EXPECT_NEAR(b.buffer, 0.17, 0.01);
    EXPECT_NEAR(b.allocator, 0.004, 0.002);
    EXPECT_NEAR(b.total, 1.916, 0.05);
}

TEST(AreaModel, DoubleBandwidthRouterQuadraticCrossbar)
{
    AreaModel m;
    auto p = baselineRouter();
    p.channelBytes = 32.0;
    const auto b = m.routerArea(p);
    EXPECT_NEAR(b.crossbar, 6.95, 0.05);  // 4x the 16B crossbar
    EXPECT_NEAR(b.buffer, 0.34, 0.01);    // 2x storage
    EXPECT_NEAR(b.total, 7.305, 0.12);
}

TEST(AreaModel, HalfRouterRoughlyHalfArea)
{
    // Sec. V-F: half-router occupies ~56% of a full router (4 VCs).
    AreaModel m;
    auto full = baselineRouter();
    full.vcs = 4;
    auto half = full;
    half.half = true;
    const auto fb = m.routerArea(full);
    const auto hb = m.routerArea(half);
    EXPECT_NEAR(hb.crossbar, 0.83, 0.02);
    EXPECT_NEAR(fb.crossbar, 1.73, 0.02);
    EXPECT_NEAR(hb.total / fb.total, 0.56, 0.03);
    EXPECT_NEAR(fb.total, 2.10, 0.05);
    EXPECT_NEAR(hb.total, 1.18, 0.05);
}

TEST(AreaModel, CrosspointCounts)
{
    RouterAreaParams p;
    EXPECT_EQ(p.crosspoints(), 25u); // full 5x5
    p.half = true;
    EXPECT_EQ(p.crosspoints(), 12u); // Fig. 13 connectivity
    p.injPorts = 2;
    EXPECT_EQ(p.crosspoints(), 16u); // 2 injection ports
    p.injPorts = 1;
    p.ejPorts = 2;
    EXPECT_EQ(p.crosspoints(), 16u);
    p.half = false;
    EXPECT_EQ(p.crosspoints(), 30u); // full with 2 ejection ports
}

TEST(AreaModel, LinkAreaAndCount)
{
    AreaModel m;
    EXPECT_NEAR(m.linkArea(16.0), 0.175, 0.002);
    EXPECT_NEAR(m.linkArea(32.0), 0.349, 0.004);
    EXPECT_EQ(AreaModel::meshDirectedLinks(6, 6), 120u);
    EXPECT_EQ(AreaModel::meshDirectedLinks(4, 4), 48u);
}

MeshAreaSpec
baselineMesh()
{
    MeshAreaSpec s;
    s.numMcs = 8;
    return s;
}

TEST(AreaModel, BaselineMeshMatchesTableVI)
{
    AreaModel m;
    const auto r = m.meshArea(baselineMesh());
    EXPECT_NEAR(r.linkAreaSum, 21.015, 0.1);
    EXPECT_NEAR(r.routerAreaSum, 69.0, 0.8);
    EXPECT_NEAR(r.nocTotal() / AreaModel::kGtx280AreaMm2, 0.1563,
                0.003);
    EXPECT_NEAR(m.chipArea(r), 576.0, 1.0);
}

TEST(AreaModel, TwoXBandwidthMeshMatchesTableVI)
{
    AreaModel m;
    auto s = baselineMesh();
    s.channelBytes = 32.0;
    const auto r = m.meshArea(s);
    EXPECT_NEAR(r.routerAreaSum, 263.0, 3.0);
    EXPECT_NEAR(r.linkAreaSum, 41.963, 0.3);
    EXPECT_NEAR(m.chipArea(r), 790.9, 4.0);
}

TEST(AreaModel, CheckerboardMeshMatchesTableVI)
{
    AreaModel m;
    auto s = baselineMesh();
    s.vcs = 4;
    s.checkerboard = true;
    const auto r = m.meshArea(s);
    EXPECT_NEAR(r.routerAreaSum, 59.2, 0.8);
    EXPECT_NEAR(m.chipArea(r), 566.2, 1.5);
}

TEST(AreaModel, DoubleNetworkMatchesTableVI)
{
    // Table VI "Double CP-CR" with the paper's 2-VC slices.
    AreaModel m;
    auto s = baselineMesh();
    s.subnetworks = 2;
    s.channelBytes = 8.0;
    s.vcs = 2;
    s.checkerboard = true;
    const auto r = m.meshArea(s);
    EXPECT_NEAR(r.routerAreaSum, 29.74, 0.6);
    EXPECT_NEAR(r.linkAreaSum, 21.015, 0.1);
    EXPECT_NEAR(m.chipArea(r), 536.74, 1.5);
}

TEST(AreaModel, DoubleNetworkWithTwoInjectionPorts)
{
    // Table VI last row: +2 injection ports at the 8 MC routers adds
    // ~0.7 mm^2 (only the reply slice grows).
    AreaModel m;
    auto s = baselineMesh();
    s.subnetworks = 2;
    s.channelBytes = 8.0;
    s.vcs = 2;
    s.checkerboard = true;
    auto base = m.meshArea(s);
    s.mcInjPorts = 2;
    auto twop = m.meshArea(s);
    EXPECT_NEAR(twop.routerAreaSum, 30.44, 0.7);
    EXPECT_NEAR(twop.routerAreaSum - base.routerAreaSum, 0.70, 0.25);
    EXPECT_NEAR(m.chipArea(twop), 537.44, 1.6);
}

TEST(AreaModel, ThroughputEffectiveness)
{
    EXPECT_DOUBLE_EQ(throughputEffectiveness(230.0, 576.0),
                     230.0 / 576.0);
    // The headline: +17% IPC and the double-network area give +25.4%
    // IPC/mm^2 (Sec. V-F).
    const double gain =
        throughputEffectiveness(1.17, 537.44) /
        throughputEffectiveness(1.0, 576.0);
    EXPECT_NEAR(gain, 1.254, 0.01);
}

TEST(AreaModel, SlicedBuffersKeepStorageConstant)
{
    // Our simulated double network uses 4 VCs x 8 x 8B per slice: the
    // same storage as the single network's 2 VCs x 8 x 16B.
    AreaModel m;
    auto single = baselineRouter();
    auto slice = baselineRouter();
    slice.vcs = 4;
    slice.channelBytes = 8.0;
    EXPECT_NEAR(m.routerArea(single).buffer,
                m.routerArea(slice).buffer, 1e-9);
}

} // namespace
} // namespace tenoc
