/**
 * @file
 * Tests for the golden reference models and the differential-testing
 * harness (src/noc/golden/): route reconstruction vs the real
 * algorithms, exact zero-load latency, shadow conservation, the config
 * space (serialize/parse/sample/legal), the full oracle battery on
 * directed configs — including all 8 idle-skip x validate x
 * pool-bypass combinations — and the minimizer.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "noc/golden/diff.hh"
#include "noc/golden/golden.hh"
#include "noc/routing.hh"

namespace tenoc
{
namespace
{

/** Walks the real per-hop routing function, returning the node path. */
std::vector<NodeId>
walkRealRoute(const Topology &topo, const RoutingAlgorithm &algo,
              const Packet &pkt)
{
    std::vector<NodeId> path{pkt.src};
    Packet copy = pkt; // route() mutates phase2
    NodeId cur = pkt.src;
    for (unsigned steps = 0; steps <= 4 * topo.numNodes(); ++steps) {
        const unsigned port = algo.route(cur, copy);
        if (port == PORT_EJECT)
            return path;
        cur = topo.neighbor(cur, static_cast<Direction>(port));
        EXPECT_NE(cur, INVALID_NODE);
        path.push_back(cur);
    }
    ADD_FAILURE() << "walk did not terminate";
    return path;
}

TEST(GoldenModel, ReconstructsEveryAlgorithmsRoutes)
{
    for (const char *name : {"xy", "yx", "o1turn", "romm", "valiant"}) {
        TopologyParams tp;
        tp.rows = 5;
        tp.cols = 4;
        tp.numMcs = 4;
        Topology topo(tp);
        auto algo = makeRouting(name, topo);
        MeshNetworkParams np;
        np.topo = tp;
        np.routing = name;
        GoldenModel golden(topo, np);
        Rng rng(7);

        std::vector<NodeId> expect;
        for (NodeId s = 0; s < topo.numNodes(); ++s) {
            for (NodeId d = 0; d < topo.numNodes(); ++d) {
                if (s == d)
                    continue;
                Packet pkt;
                pkt.src = s;
                pkt.dst = d;
                algo->initPacket(pkt, rng);
                golden.reconstructRoute(pkt, expect);
                EXPECT_EQ(walkRealRoute(topo, *algo, pkt), expect)
                    << name << " " << s << " -> " << d;
            }
        }
    }
}

TEST(GoldenModel, ReconstructsCheckerboardRoutes)
{
    TopologyParams tp;
    tp.rows = 6;
    tp.cols = 6;
    tp.numMcs = 8;
    tp.placement = McPlacement::CHECKERBOARD;
    tp.checkerboardRouters = true;
    Topology topo(tp);
    auto algo = makeRouting("cr", topo);
    MeshNetworkParams np;
    np.topo = tp;
    np.routing = "cr";
    GoldenModel golden(topo, np);
    Rng rng(7);

    std::vector<NodeId> expect;
    std::vector<std::string> violations;
    for (NodeId s = 0; s < topo.numNodes(); ++s) {
        for (NodeId d = 0; d < topo.numNodes(); ++d) {
            // Full-to-full with both offsets odd is unroutable.
            const bool odd_x = (topo.xOf(s) ^ topo.xOf(d)) & 1;
            const bool odd_y = (topo.yOf(s) ^ topo.yOf(d)) & 1;
            if (s == d || (!topo.isHalfRouter(s) &&
                           !topo.isHalfRouter(d) && odd_x && odd_y))
                continue;
            Packet pkt;
            pkt.src = s;
            pkt.dst = d;
            algo->initPacket(pkt, rng);
            const auto path = walkRealRoute(topo, *algo, pkt);
            golden.reconstructRoute(pkt, expect);
            EXPECT_EQ(path, expect) << s << " -> " << d;
            golden.checkRoute(pkt, path, violations);
        }
    }
    EXPECT_TRUE(violations.empty())
        << violations.size() << " route violations, first: "
        << violations.front();
}

TEST(GoldenModel, CheckRouteFlagsDefects)
{
    TopologyParams tp;
    tp.rows = 4;
    tp.cols = 4;
    tp.numMcs = 2;
    Topology topo(tp);
    MeshNetworkParams np;
    np.topo = tp;
    GoldenModel golden(topo, np);

    Packet pkt;
    pkt.src = 0;
    pkt.dst = 3;

    std::vector<std::string> v;
    golden.checkRoute(pkt, {0, 1, 3}, v); // nodes 1 and 3 not adjacent
    EXPECT_FALSE(v.empty());

    v.clear();
    golden.checkRoute(pkt, {0, 1, 2}, v); // wrong final node
    EXPECT_FALSE(v.empty());

    v.clear();
    golden.checkRoute(pkt, {0, 4, 5, 1, 2, 3}, v); // detour, not minimal
    EXPECT_FALSE(v.empty());

    v.clear();
    golden.checkRoute(pkt, {0, 1, 2, 3}, v);
    EXPECT_TRUE(v.empty());
}

TEST(GoldenModel, ZeroLoadMatchesSimulatedProbe)
{
    // Single packets on an idle mesh must hit the formula exactly for
    // every size that fits in one VC buffer.
    MeshNetworkParams np;
    np.topo.rows = 4;
    np.topo.cols = 4;
    np.topo.numMcs = 2;
    np.protoClasses = 1;

    struct Cap : PacketSink
    {
        Cycle got = 0;
        bool tryReserve(const Packet &) override { return true; }
        void
        deliver(PacketPtr pkt, Cycle now) override
        {
            got = now - pkt->createdCycle;
        }
    };

    for (unsigned size = 1; size <= 4; ++size) {
        MeshNetwork net(np);
        Cap cap;
        for (NodeId n = 0; n < net.topology().numNodes(); ++n)
            net.setSink(n, &cap);
        auto pkt = makePacket();
        pkt->src = 0;
        pkt->dst = 15;
        pkt->protoClass = 0;
        pkt->sizeFlits = size;
        pkt->sizeBytes = size * np.flitBytes;
        pkt->createdCycle = 0;
        PacketPtr held = pkt;
        net.inject(std::move(pkt), 0);
        Cycle now = 0;
        while (!net.drained() && now < 10000) {
            net.cycle(now);
            ++now;
        }
        ASSERT_TRUE(net.drained());

        GoldenModel golden(net.topology(), np);
        std::vector<NodeId> route;
        golden.reconstructRoute(*held, route);
        EXPECT_EQ(cap.got, golden.zeroLoadLatency(route, size))
            << "size " << size;
    }
}

TEST(GoldenShadow, CatchesPhantomDeliveryAndStatMismatch)
{
    TopologyParams tp;
    tp.rows = 4;
    tp.cols = 4;
    tp.numMcs = 2;
    Topology topo(tp);
    MeshNetworkParams np;
    np.topo = tp;
    GoldenModel golden(topo, np);
    GoldenShadow shadow(golden, topo);

    Packet pkt;
    pkt.id = 99;
    pkt.src = 0;
    pkt.dst = 3;
    pkt.createdCycle = 0;
    shadow.onDeliver(pkt, 3, 40); // never injected
    EXPECT_EQ(shadow.violations().size(), 1u);

    shadow.onInject(pkt, 0);
    EXPECT_EQ(shadow.inFlight(), 1u);
    shadow.onDeliver(pkt, 2, 40); // wrong node
    EXPECT_GE(shadow.violations().size(), 2u);

    // Drained network with nothing delivered per its stats: every
    // aggregate the shadow tracked must be reported as a mismatch.
    NetStats empty(topo.numNodes());
    const std::size_t before = shadow.violations().size();
    shadow.finalCheck(empty, true);
    EXPECT_GT(shadow.violations().size(), before);
}

TEST(GoldenShadow, FlagsFasterThanPossibleDelivery)
{
    TopologyParams tp;
    tp.rows = 4;
    tp.cols = 4;
    tp.numMcs = 2;
    Topology topo(tp);
    MeshNetworkParams np;
    np.topo = tp;
    GoldenModel golden(topo, np);
    GoldenShadow shadow(golden, topo);

    Packet pkt;
    pkt.id = 1;
    pkt.src = 0;
    pkt.dst = 15;
    pkt.createdCycle = 0;
    shadow.onInject(pkt, 0);
    shadow.onDeliver(pkt, 15, 5); // physically impossible
    EXPECT_FALSE(shadow.violations().empty());
}

TEST(DiffConfig, SerializeParseRoundtrip)
{
    Rng rng(3);
    for (int i = 0; i < 50; ++i) {
        const DiffConfig cfg = sampleDiffConfig(rng);
        DiffConfig back;
        std::string err;
        ASSERT_TRUE(DiffConfig::parse(cfg.serialize(), back, &err))
            << err;
        EXPECT_EQ(cfg.serialize(), back.serialize());
    }
}

TEST(DiffConfig, ParseRejectsGarbage)
{
    DiffConfig out;
    std::string err;
    EXPECT_FALSE(DiffConfig::parse("bogusKey = 3\n", out, &err));
    EXPECT_FALSE(DiffConfig::parse("rows\n", out, &err));
    EXPECT_FALSE(DiffConfig::parse("rows = banana\n", out, &err));
    // Legal syntax, illegal config space.
    EXPECT_FALSE(DiffConfig::parse("routing = cr\n", out, &err));
    // Comments and defaults are fine.
    EXPECT_TRUE(DiffConfig::parse("# just a comment\n", out, &err));
}

TEST(DiffConfig, SampledConfigsAreLegal)
{
    Rng rng(11);
    for (int i = 0; i < 500; ++i)
        EXPECT_TRUE(legalDiffConfig(sampleDiffConfig(rng)));
}

TEST(DiffHarness, DefaultConfigPassesAllToggleCombinations)
{
    // Acceptance: golden-vs-optimized equivalence with idle-skip,
    // pooling, and validation toggled in all 8 combinations.
    DiffConfig cfg;
    cfg.genCycles = 300;
    DiffOptions opts;
    opts.thorough = true;
    const DiffReport rep = runDiff(cfg, opts);
    EXPECT_TRUE(rep.ok()) << rep.violations.size()
                          << " violations, first: "
                          << rep.violations.front();
}

TEST(DiffHarness, CheckerboardConfigPasses)
{
    DiffConfig cfg;
    cfg.checkerboard = true;
    cfg.routing = "cr";
    cfg.genCycles = 300;
    const DiffReport rep = runDiff(cfg);
    EXPECT_TRUE(rep.ok()) << rep.violations.size()
                          << " violations, first: "
                          << rep.violations.front();
}

TEST(DiffHarness, SlicedConfigPasses)
{
    DiffConfig cfg;
    cfg.sliced = true;
    cfg.genCycles = 300;
    const DiffReport rep = runDiff(cfg);
    EXPECT_TRUE(rep.ok()) << rep.violations.size()
                          << " violations, first: "
                          << rep.violations.front();
}

TEST(DiffHarness, TorusConfigPasses)
{
    // Full battery on the wrap topology: routing sweep + zero-load
    // against the torus golden legs, shadow run, determinism, toggles.
    DiffConfig cfg;
    cfg.topology = "torus";
    cfg.routing = "yx";
    cfg.genCycles = 300;
    const DiffReport rep = runDiff(cfg);
    EXPECT_TRUE(rep.ok()) << rep.violations.size()
                          << " violations, first: "
                          << rep.violations.front();
}

TEST(DiffHarness, ConcentratedCollectiveConfigPasses)
{
    // Concentration widens the endpoint ports; collective traffic
    // adds shared-id fork groups to the schedule.  Both must preserve
    // every oracle, including sliced equivalence.
    DiffConfig cfg;
    cfg.concentration = 2;
    cfg.collectiveRate = 0.01;
    cfg.sliced = true;
    cfg.genCycles = 300;
    const DiffReport rep = runDiff(cfg);
    EXPECT_TRUE(rep.ok()) << rep.violations.size()
                          << " violations, first: "
                          << rep.violations.front();
}

TEST(DiffConfig, LegalityRulesForNewAxes)
{
    DiffConfig cfg;
    EXPECT_TRUE(legalDiffConfig(cfg));
    cfg.topology = "hypercube";
    EXPECT_FALSE(legalDiffConfig(cfg));
    cfg.topology = "torus";
    EXPECT_TRUE(legalDiffConfig(cfg));
    cfg.routing = "o1turn"; // no dateline classes off dimension order
    EXPECT_FALSE(legalDiffConfig(cfg));
    cfg.routing = "xy";
    cfg.concentration = 0;
    EXPECT_FALSE(legalDiffConfig(cfg));
    cfg.concentration = 5; // fuzz cap
    EXPECT_FALSE(legalDiffConfig(cfg));
    cfg.concentration = 4;
    EXPECT_TRUE(legalDiffConfig(cfg));
    cfg.collectiveRate = 1.5;
    EXPECT_FALSE(legalDiffConfig(cfg));
    cfg.collectiveRate = 0.01;
    EXPECT_TRUE(legalDiffConfig(cfg));
    cfg.numMcs = 1; // collective fanout needs >= 2 members
    EXPECT_FALSE(legalDiffConfig(cfg));
}

TEST(DiffHarness, RejectsIllegalConfig)
{
    DiffConfig cfg;
    cfg.rows = 1; // below the 2x2 minimum
    const DiffReport rep = runDiff(cfg);
    EXPECT_FALSE(rep.ok());
}

TEST(DiffHarness, MinimizerPreservesLegality)
{
    // The minimizer never runs the oracles on an illegal config and,
    // on a passing input, returns it unchanged (nothing to preserve).
    DiffConfig cfg;
    cfg.genCycles = 100;
    const DiffConfig out = minimizeConfig(cfg, {}, 4);
    EXPECT_TRUE(legalDiffConfig(out));
    EXPECT_EQ(out.serialize(), cfg.serialize());
}

} // namespace
} // namespace tenoc
