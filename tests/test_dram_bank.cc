/**
 * @file
 * Tests for the DRAM bank state machine against Table II timings.
 */

#include <gtest/gtest.h>

#include "dram/dram_bank.hh"

namespace tenoc
{
namespace
{

Gddr3Timing
timing()
{
    return Gddr3Timing{};
}

TEST(Gddr3Timing, TableIIDefaults)
{
    const auto t = timing();
    EXPECT_EQ(t.tCL, 9u);
    EXPECT_EQ(t.tRP, 13u);
    EXPECT_EQ(t.tRC, 34u);
    EXPECT_EQ(t.tRAS, 21u);
    EXPECT_EQ(t.tRCD, 12u);
    EXPECT_EQ(t.tRRD, 8u);
    EXPECT_EQ(t.burstCycles(), 4u); // 64B over a DDR 8B bus
}

TEST(AddressMapping, BankAndRow)
{
    const auto t = timing();
    // Row-interleaved across banks: consecutive 2KB blocks alternate.
    auto c0 = mapAddress(t, 0);
    auto c1 = mapAddress(t, 2048);
    auto c8 = mapAddress(t, 2048ull * 8);
    EXPECT_EQ(c0.bank, 0u);
    EXPECT_EQ(c0.row, 0u);
    EXPECT_EQ(c1.bank, 1u);
    EXPECT_EQ(c1.row, 0u);
    EXPECT_EQ(c8.bank, 0u);
    EXPECT_EQ(c8.row, 1u);
}

TEST(AddressMapping, CompactionInvertsInterleaving)
{
    // Global addresses are low-order interleaved every 256 B across 8
    // channels (Sec. II); channel-local addresses must be dense.
    EXPECT_EQ(channelOf(0, 8, 256), 0u);
    EXPECT_EQ(channelOf(256, 8, 256), 1u);
    EXPECT_EQ(channelOf(256 * 8, 8, 256), 0u);
    EXPECT_EQ(compactAddress(0, 8, 256), 0u);
    EXPECT_EQ(compactAddress(256ull * 8, 8, 256), 256u);
    EXPECT_EQ(compactAddress(256ull * 8 + 64, 8, 256), 256u + 64u);
    EXPECT_EQ(compactAddress(256ull * 16, 8, 256), 512u);
}

TEST(DramBank, ActivateThenCasAfterTrcd)
{
    DramBank b(timing());
    EXPECT_TRUE(b.canActivate(0));
    b.activate(0, 5);
    EXPECT_EQ(b.state(), DramBank::State::ACTIVE);
    EXPECT_EQ(b.activeRow(), 5u);
    EXPECT_FALSE(b.canCas(11, 5)); // tRCD = 12
    EXPECT_TRUE(b.canCas(12, 5));
    EXPECT_FALSE(b.canCas(12, 6)); // wrong row
}

TEST(DramBank, PrechargeRespectsTras)
{
    DramBank b(timing());
    b.activate(0, 1);
    EXPECT_FALSE(b.canPrecharge(20)); // tRAS = 21
    EXPECT_TRUE(b.canPrecharge(21));
    b.precharge(21);
    EXPECT_EQ(b.state(), DramBank::State::IDLE);
    EXPECT_FALSE(b.canActivate(33)); // tRP = 13 -> ready at 34
    EXPECT_TRUE(b.canActivate(34));
}

TEST(DramBank, RowCycleTimeTrc)
{
    DramBank b(timing());
    b.activate(0, 1);
    b.precharge(21);
    // tRP satisfied at 34, and tRC (34) also elapsed at 34.
    EXPECT_TRUE(b.canActivate(34));
    b.activate(34, 2);
    b.precharge(55);
    EXPECT_FALSE(b.canActivate(67)); // tRC from t=34 -> 68
    EXPECT_TRUE(b.canActivate(68));
}

TEST(DramBank, CasDelaysPrecharge)
{
    DramBank b(timing());
    b.activate(0, 1);
    b.cas(12);
    // Precharge must wait for tCL + burst after the CAS (data on bus).
    EXPECT_FALSE(b.canPrecharge(21));
    EXPECT_FALSE(b.canPrecharge(24));
    EXPECT_TRUE(b.canPrecharge(25)); // 12 + 9 + 4
}

TEST(DramBank, BackToBackCasSpacedByBurst)
{
    DramBank b(timing());
    b.activate(0, 1);
    b.cas(12);
    EXPECT_FALSE(b.canCas(15, 1)); // burst = 4
    EXPECT_TRUE(b.canCas(16, 1));
}

TEST(DramBank, ActivationCountTracked)
{
    DramBank b(timing());
    b.activate(0, 1);
    b.precharge(21);
    b.activate(40, 2);
    EXPECT_EQ(b.activations(), 2u);
}

TEST(DramBankDeath, IllegalActivatePanics)
{
    DramBank b(timing());
    b.activate(0, 1);
    EXPECT_DEATH(b.activate(1, 2), "illegal ACTIVATE");
}

TEST(DramBankDeath, IllegalPrechargePanics)
{
    DramBank b(timing());
    b.activate(0, 1);
    EXPECT_DEATH(b.precharge(5), "illegal PRECHARGE");
}

} // namespace
} // namespace tenoc
