/**
 * @file
 * Unit tests for the round-robin arbiter.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <vector>

#include "common/rng.hh"
#include "noc/arbiter.hh"

namespace tenoc
{
namespace
{

TEST(Arbiter, NoRequestsNoGrant)
{
    RoundRobinArbiter arb(4);
    EXPECT_EQ(arb.grant({false, false, false, false}), 4u);
}

TEST(Arbiter, SingleRequestWins)
{
    RoundRobinArbiter arb(4);
    EXPECT_EQ(arb.grant({false, false, true, false}), 2u);
}

TEST(Arbiter, RotatesAfterAccept)
{
    RoundRobinArbiter arb(3);
    const std::vector<bool> all{true, true, true};
    unsigned w = arb.grant(all);
    EXPECT_EQ(w, 0u);
    arb.accept(w);
    w = arb.grant(all);
    EXPECT_EQ(w, 1u);
    arb.accept(w);
    w = arb.grant(all);
    EXPECT_EQ(w, 2u);
    arb.accept(w);
    w = arb.grant(all);
    EXPECT_EQ(w, 0u);
}

TEST(Arbiter, PointerHoldsWithoutAccept)
{
    RoundRobinArbiter arb(3);
    const std::vector<bool> all{true, true, true};
    EXPECT_EQ(arb.grant(all), 0u);
    EXPECT_EQ(arb.grant(all), 0u); // iSLIP: no accept, no rotation
}

TEST(Arbiter, FairUnderFullLoad)
{
    RoundRobinArbiter arb(4);
    const std::vector<bool> all{true, true, true, true};
    std::map<unsigned, int> wins;
    for (int i = 0; i < 400; ++i) {
        const unsigned w = arb.grant(all);
        arb.accept(w);
        ++wins[w];
    }
    for (unsigned i = 0; i < 4; ++i)
        EXPECT_EQ(wins[i], 100);
}

TEST(Arbiter, SkipsNonRequestors)
{
    RoundRobinArbiter arb(4);
    arb.accept(0); // pointer at 1
    EXPECT_EQ(arb.grant({true, false, false, true}), 3u);
}

TEST(Arbiter, ResizeResetsOutOfRangePointer)
{
    RoundRobinArbiter arb(4);
    arb.accept(3); // pointer at 0
    arb.accept(0); // pointer at 1
    arb.resize(1);
    EXPECT_EQ(arb.grant({true}), 0u);
}

TEST(Arbiter, GrantWordsFindsRequestorAbove64)
{
    // Regression: the single-word mask path silently dropped
    // requestors 64 and above (concentrated / high-radix routers);
    // the multi-word scan must see them.
    RoundRobinArbiter arb(70);
    std::vector<bool> requests(70, false);
    requests[68] = true;
    std::uint64_t words[2] = {0, std::uint64_t{1} << (68 - 64)};
    EXPECT_EQ(arb.grant(requests), 68u);
    EXPECT_EQ(arb.grantWords(words, 2), 68u);
}

TEST(Arbiter, GrantWordsWrapsAcrossWordBoundary)
{
    // Pointer past the only requestor: the scan must wrap from the
    // tail words back through the head of the pointer's own word.
    RoundRobinArbiter arb(130);
    arb.setPointer(129);
    std::uint64_t words[3] = {std::uint64_t{1} << 3, 0, 0};
    EXPECT_EQ(arb.grantWords(words, 3), 3u);
    // A requestor exactly at the pointer wins outright.
    words[2] = std::uint64_t{1} << (129 - 128);
    EXPECT_EQ(arb.grantWords(words, 3), 129u);
}

TEST(Arbiter, GrantWordsMatchesGrantExhaustively)
{
    // Identical-grants proof: for wide arbiters, every (random request
    // set, pointer position) pair must grant the same requestor via
    // the reference vector<bool> scan and the word-mask scan.
    Rng rng(0xa6b17e5ULL);
    for (const unsigned size : {65u, 96u, 128u, 130u, 192u}) {
        RoundRobinArbiter arb(size);
        const unsigned nwords = (size + 63) / 64;
        for (int trial = 0; trial < 200; ++trial) {
            std::vector<bool> requests(size, false);
            std::vector<std::uint64_t> words(nwords, 0);
            const double density =
                trial % 3 == 0 ? 0.02 : (trial % 3 == 1 ? 0.3 : 0.9);
            for (unsigned i = 0; i < size; ++i) {
                if (rng.nextBool(density)) {
                    requests[i] = true;
                    words[i / 64] |= std::uint64_t{1} << (i % 64);
                }
            }
            arb.setPointer(
                static_cast<unsigned>(rng.nextRange(size)));
            const unsigned ref = arb.grant(requests);
            const unsigned wide = arb.grantWords(words.data(), nwords);
            ASSERT_EQ(ref, wide)
                << "size " << size << " pointer " << arb.pointer();
            if (ref < size)
                arb.accept(ref); // walk the pointer like iSLIP does
        }
    }
}

} // namespace
} // namespace tenoc
