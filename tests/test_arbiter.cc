/**
 * @file
 * Unit tests for the round-robin arbiter.
 */

#include <gtest/gtest.h>

#include <map>

#include "noc/arbiter.hh"

namespace tenoc
{
namespace
{

TEST(Arbiter, NoRequestsNoGrant)
{
    RoundRobinArbiter arb(4);
    EXPECT_EQ(arb.grant({false, false, false, false}), 4u);
}

TEST(Arbiter, SingleRequestWins)
{
    RoundRobinArbiter arb(4);
    EXPECT_EQ(arb.grant({false, false, true, false}), 2u);
}

TEST(Arbiter, RotatesAfterAccept)
{
    RoundRobinArbiter arb(3);
    const std::vector<bool> all{true, true, true};
    unsigned w = arb.grant(all);
    EXPECT_EQ(w, 0u);
    arb.accept(w);
    w = arb.grant(all);
    EXPECT_EQ(w, 1u);
    arb.accept(w);
    w = arb.grant(all);
    EXPECT_EQ(w, 2u);
    arb.accept(w);
    w = arb.grant(all);
    EXPECT_EQ(w, 0u);
}

TEST(Arbiter, PointerHoldsWithoutAccept)
{
    RoundRobinArbiter arb(3);
    const std::vector<bool> all{true, true, true};
    EXPECT_EQ(arb.grant(all), 0u);
    EXPECT_EQ(arb.grant(all), 0u); // iSLIP: no accept, no rotation
}

TEST(Arbiter, FairUnderFullLoad)
{
    RoundRobinArbiter arb(4);
    const std::vector<bool> all{true, true, true, true};
    std::map<unsigned, int> wins;
    for (int i = 0; i < 400; ++i) {
        const unsigned w = arb.grant(all);
        arb.accept(w);
        ++wins[w];
    }
    for (unsigned i = 0; i < 4; ++i)
        EXPECT_EQ(wins[i], 100);
}

TEST(Arbiter, SkipsNonRequestors)
{
    RoundRobinArbiter arb(4);
    arb.accept(0); // pointer at 1
    EXPECT_EQ(arb.grant({true, false, false, true}), 3u);
}

TEST(Arbiter, ResizeResetsOutOfRangePointer)
{
    RoundRobinArbiter arb(4);
    arb.accept(3); // pointer at 0
    arb.accept(0); // pointer at 1
    arb.resize(1);
    EXPECT_EQ(arb.grant({true}), 0u);
}

} // namespace
} // namespace tenoc
