/**
 * @file
 * Tests for the open-loop latency/throughput harness (Fig. 21 infra).
 */

#include <gtest/gtest.h>

#include "noc/openloop.hh"
#include "noc/traffic.hh"
#include "telemetry/telemetry.hh"

namespace tenoc
{
namespace
{

OpenLoopParams
quickParams(double rate)
{
    OpenLoopParams p;
    p.injectionRate = rate;
    p.warmupCycles = 500;
    p.measureCycles = 2000;
    p.drainCycles = 8000;
    p.seed = 321;
    return p;
}

TEST(DestinationChooser, UniformCoversAllMcs)
{
    std::vector<NodeId> mcs{10, 11, 12, 13};
    DestinationChooser dc(mcs, 0.0);
    Rng rng(1);
    std::map<NodeId, int> counts;
    for (int i = 0; i < 4000; ++i)
        ++counts[dc.pick(rng)];
    for (NodeId mc : mcs)
        EXPECT_NEAR(counts[mc], 1000, 150);
}

TEST(DestinationChooser, HotspotFractionRespected)
{
    std::vector<NodeId> mcs{10, 11, 12, 13};
    DestinationChooser dc(mcs, 0.4);
    Rng rng(2);
    int hot = 0;
    for (int i = 0; i < 10000; ++i)
        hot += (dc.pick(rng) == 10);
    EXPECT_NEAR(hot / 10000.0, 0.4, 0.03);
}

TEST(DestinationChooser, ExclusionDrawIsUnbiased)
{
    // Drawing a destination while excluding the source must condition
    // the uniform distribution, not bias it (a modulo-skip would
    // overweight the excluded slot's successor).  Chi-squared test
    // over the three remaining MCs.
    std::vector<NodeId> mcs{10, 11, 12, 13};
    DestinationChooser dc(mcs, 0.0);
    Rng rng(5);
    const int n = 9000;
    std::map<NodeId, int> counts;
    for (int i = 0; i < n; ++i) {
        const NodeId d = dc.pick(rng, 11);
        ASSERT_NE(d, 11u);
        ++counts[d];
    }
    const double expect = n / 3.0;
    double chi2 = 0.0;
    for (NodeId mc : {10u, 12u, 13u}) {
        const double dev = counts[mc] - expect;
        chi2 += dev * dev / expect;
    }
    // 99.9th percentile of chi-squared with 2 degrees of freedom.
    EXPECT_LT(chi2, 13.82);
}

TEST(DestinationChooser, ExclusionOfNonMemberChangesNothing)
{
    std::vector<NodeId> mcs{10, 11, 12, 13};
    DestinationChooser dc(mcs, 0.0);
    Rng a(6), b(6);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(dc.pick(a), dc.pick(b, 99));
}

TEST(OpenLoop, LegacySharedRngReproducesPinnedStats)
{
    // Pinned latency statistics from the pre-stream-split harness
    // (one shared Rng for all sources).  The compat flag must
    // reproduce them bit for bit; if this ever breaks, the legacy
    // draw order changed.
    OpenLoopParams p = quickParams(0.03);
    p.legacySharedRng = true;
    auto r = runOpenLoop(p);
    EXPECT_NEAR(r.avgLatency, 30.3652355397, 1e-9);
    EXPECT_NEAR(r.avgRequestLatency, 25.7930828861, 1e-9);
    EXPECT_NEAR(r.avgReplyLatency, 34.9373881932, 1e-9);
    EXPECT_DOUBLE_EQ(r.p95Latency, 60.0);
}

TEST(OpenLoop, PerSourceStreamsAreDeterministic)
{
    auto r1 = runOpenLoop(quickParams(0.03));
    auto r2 = runOpenLoop(quickParams(0.03));
    EXPECT_DOUBLE_EQ(r1.avgLatency, r2.avgLatency);
    EXPECT_DOUBLE_EQ(r1.acceptedLoad, r2.acceptedLoad);
    // And the stream split really changed the schedule vs legacy.
    OpenLoopParams legacy = quickParams(0.03);
    legacy.legacySharedRng = true;
    auto r3 = runOpenLoop(legacy);
    EXPECT_NE(r1.avgLatency, r3.avgLatency);
}

TEST(OpenLoop, TelemetryWarmupLandsInDedicatedIntervalRow)
{
    OpenLoopParams p = quickParams(0.02);
    telemetry::TelemetryConfig cfg;
    cfg.intervalCsvPath = "-"; // any non-empty value enables sampling
    cfg.intervalCycles = 1000;
    telemetry::TelemetryHub hub(cfg);
    p.telemetry = &hub;
    runOpenLoop(p);

    auto *s = hub.sampler();
    ASSERT_NE(s, nullptr);
    ASSERT_GE(s->numRows(), 2u);
    // Row 0 is exactly the warmup; measurement windows start at its
    // boundary, so warmup-injected traffic never leaks into them.
    EXPECT_EQ(s->rowStart(0), 0u);
    EXPECT_EQ(s->rowEnd(0), p.warmupCycles);
    EXPECT_EQ(s->rowStart(1), p.warmupCycles);
    EXPECT_EQ(s->rowEnd(1), p.warmupCycles + cfg.intervalCycles);
}

TEST(OpenLoop, LowLoadLatencyNearZeroLoad)
{
    auto r = runOpenLoop(quickParams(0.005));
    EXPECT_FALSE(r.saturated);
    EXPECT_GT(r.avgLatency, 10.0);
    EXPECT_LT(r.avgLatency, 60.0);
    EXPECT_GT(r.avgReplyLatency, r.avgRequestLatency * 0.5);
}

TEST(OpenLoop, AcceptedTracksOfferedBelowSaturation)
{
    auto r = runOpenLoop(quickParams(0.02));
    EXPECT_FALSE(r.saturated);
    // Accepted flits/node include 4-flit replies, so accepted exceeds
    // the offered request load.
    EXPECT_GT(r.acceptedLoad, r.offeredLoad);
}

TEST(OpenLoop, TailLatencyAtLeastMean)
{
    auto r = runOpenLoop(quickParams(0.04));
    EXPECT_GE(r.p95Latency, r.avgLatency * 0.9);
    EXPECT_GT(r.p95Latency, 0.0);
}

TEST(OpenLoop, SaturatesAtHighLoad)
{
    // Far beyond the many-to-few terminal limit (~0.071 for 8 MCs
    // with one injection port each).
    auto r = runOpenLoop(quickParams(0.3));
    EXPECT_TRUE(r.saturated);
}

TEST(OpenLoop, SweepStopsAtSaturation)
{
    OpenLoopParams p = quickParams(0.0);
    auto results = sweepOpenLoop(p, 0.02, 0.04, 0.30);
    ASSERT_GE(results.size(), 2u);
    EXPECT_TRUE(results.back().saturated);
    for (std::size_t i = 0; i + 1 < results.size(); ++i)
        EXPECT_FALSE(results[i].saturated);
    // Latency grows with offered load.
    EXPECT_LT(results.front().avgLatency, results.back().avgLatency);
}

TEST(OpenLoop, MultiPortMcRaisesSaturationThroughput)
{
    // Compare on the checkerboard network (as Fig. 21 does): with
    // top-bottom placement the row-0 links, not the terminal ports,
    // are the binding constraint and extra ports cannot help.
    OpenLoopParams base = quickParams(0.085);
    base.net.topo.placement = McPlacement::CHECKERBOARD;
    base.net.topo.checkerboardRouters = true;
    base.net.routing = "cr";
    auto r1 = runOpenLoop(base);
    OpenLoopParams twop = base;
    twop.net.mcInjPorts = 2;
    auto r2 = runOpenLoop(twop);
    // 0.085 packets/node/cycle demands ~1.2 reply flits/cycle per
    // MC: beyond one injection port, manageable with two (Fig. 21).
    EXPECT_TRUE(r1.saturated);
    EXPECT_FALSE(r2.saturated);
}

TEST(OpenLoop, HotspotSaturatesEarlier)
{
    OpenLoopParams uni = quickParams(0.06);
    OpenLoopParams hot = quickParams(0.06);
    hot.hotspotFraction = 0.3;
    auto ru = runOpenLoop(uni);
    auto rh = runOpenLoop(hot);
    EXPECT_FALSE(ru.saturated);
    EXPECT_TRUE(rh.saturated);
}

} // namespace
} // namespace tenoc
