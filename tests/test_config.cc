/**
 * @file
 * Unit tests for Config.
 */

#include <gtest/gtest.h>

#include "common/config.hh"

namespace tenoc
{
namespace
{

TEST(Config, TypedSetAndGet)
{
    Config c;
    c.set("a.b", 42);
    c.set("a.c", 2.5);
    c.set("a.d", true);
    c.set("a.e", "hello");
    EXPECT_EQ(c.getInt("a.b", 0), 42);
    EXPECT_DOUBLE_EQ(c.getDouble("a.c", 0.0), 2.5);
    EXPECT_TRUE(c.getBool("a.d", false));
    EXPECT_EQ(c.getString("a.e"), "hello");
}

TEST(Config, DefaultsWhenMissing)
{
    Config c;
    EXPECT_EQ(c.getInt("nope", -7), -7);
    EXPECT_EQ(c.getUint("nope", 9u), 9u);
    EXPECT_FALSE(c.getBool("nope", false));
    EXPECT_EQ(c.getString("nope", "dflt"), "dflt");
    EXPECT_FALSE(c.has("nope"));
}

TEST(Config, BoolSpellings)
{
    Config c;
    for (const char *t : {"true", "1", "yes", "on", "TRUE", "Yes"}) {
        c.set("k", t);
        EXPECT_TRUE(c.getBool("k", false)) << t;
    }
    for (const char *f : {"false", "0", "no", "off", "False"}) {
        c.set("k", f);
        EXPECT_FALSE(c.getBool("k", true)) << f;
    }
}

TEST(Config, ParseText)
{
    Config c;
    const std::size_t n = c.parseText(
        "# a comment\n"
        "noc.vcs = 4\n"
        "\n"
        "noc.routing = cr   # trailing comment\n"
        "dram.queue = 32\n");
    EXPECT_EQ(n, 3u);
    EXPECT_EQ(c.getInt("noc.vcs", 0), 4);
    EXPECT_EQ(c.getString("noc.routing"), "cr");
    EXPECT_EQ(c.getUint("dram.queue", 0), 32u);
}

TEST(Config, ParseHexAndNegative)
{
    Config c;
    c.parseText("mask = 0xff\nneg = -5\n");
    EXPECT_EQ(c.getInt("mask", 0), 255);
    EXPECT_EQ(c.getInt("neg", 0), -5);
}

TEST(Config, MergeOverrides)
{
    Config base;
    base.set("a", 1);
    base.set("b", 2);
    Config over;
    over.set("b", 3);
    over.set("c", 4);
    base.merge(over);
    EXPECT_EQ(base.getInt("a", 0), 1);
    EXPECT_EQ(base.getInt("b", 0), 3);
    EXPECT_EQ(base.getInt("c", 0), 4);
}

TEST(Config, ToTextRoundTrip)
{
    Config c;
    c.set("x.y", 5);
    c.set("z", "w");
    Config d;
    d.parseText(c.toText());
    EXPECT_EQ(d.getInt("x.y", 0), 5);
    EXPECT_EQ(d.getString("z"), "w");
}

TEST(Config, KeysSorted)
{
    Config c;
    c.set("b", 1);
    c.set("a", 1);
    const auto keys = c.keys();
    ASSERT_EQ(keys.size(), 2u);
    EXPECT_EQ(keys[0], "a");
    EXPECT_EQ(keys[1], "b");
}

using ConfigDeath = ::testing::Test;

TEST(ConfigDeath, MalformedIntIsFatal)
{
    Config c;
    c.set("k", "12abc");
    EXPECT_EXIT(c.getInt("k", 0), ::testing::ExitedWithCode(1),
                "non-integer");
}

TEST(ConfigDeath, MissingEqualsIsFatal)
{
    Config c;
    EXPECT_EXIT(c.parseText("no equals here\n"),
                ::testing::ExitedWithCode(1), "missing '='");
}

} // namespace
} // namespace tenoc
