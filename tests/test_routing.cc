/**
 * @file
 * Unit and property tests for the routing algorithms — in particular
 * the checkerboard routing invariants of Sec. IV-B:
 *   (1) every core<->MC (and core<->core involving a half-router pair)
 *       route is feasible,
 *   (2) packets never turn at a half-router,
 *   (3) the route is minimal (hop count == Manhattan distance),
 *   (4) two-phase routes switch from the YX class to the XY class
 *       exactly once, at a full router inside the minimal quadrant.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.hh"
#include "noc/routing.hh"

namespace tenoc
{
namespace
{

struct WalkResult
{
    unsigned hops = 0;
    unsigned turns_at_half = 0;
    unsigned class_switches = 0;
    bool arrived = false;
};

/** Walks a packet hop by hop through the topology. */
WalkResult
walk(const Topology &topo, RoutingAlgorithm &algo, NodeId src,
     NodeId dst, Rng &rng)
{
    Packet pkt;
    pkt.src = src;
    pkt.dst = dst;
    algo.initPacket(pkt, rng);

    WalkResult res;
    NodeId cur = src;
    int prev_dir = -1;
    int prev_class = pkt.routeClass();
    const unsigned max_hops = topo.numNodes() * 2;
    while (res.hops <= max_hops) {
        const unsigned out = algo.route(cur, pkt);
        if (out == PORT_EJECT) {
            res.arrived = (cur == dst);
            return res;
        }
        if (pkt.routeClass() != prev_class) {
            ++res.class_switches;
            prev_class = pkt.routeClass();
        }
        if (prev_dir >= 0 && static_cast<int>(out) != prev_dir &&
            topo.isHalfRouter(cur)) {
            ++res.turns_at_half;
        }
        prev_dir = static_cast<int>(out);
        cur = topo.neighbor(cur, static_cast<Direction>(out));
        EXPECT_NE(cur, INVALID_NODE);
        ++res.hops;
    }
    return res; // livelock: arrived stays false
}

Topology
checkerboardTopo(unsigned rows = 6, unsigned cols = 6,
                 unsigned mcs = 8)
{
    TopologyParams p;
    p.rows = rows;
    p.cols = cols;
    p.numMcs = mcs;
    p.placement = McPlacement::CHECKERBOARD;
    p.checkerboardRouters = true;
    return Topology(p);
}

TEST(DorRouting, XyGoesXThenY)
{
    TopologyParams tp;
    Topology t(tp);
    DorRouting xy(t, true);
    Rng rng(1);
    Packet pkt;
    pkt.src = t.nodeAt(0, 0);
    pkt.dst = t.nodeAt(3, 2);
    xy.initPacket(pkt, rng);
    EXPECT_EQ(xy.route(t.nodeAt(0, 0), pkt), DIR_EAST);
    EXPECT_EQ(xy.route(t.nodeAt(2, 0), pkt), DIR_EAST);
    EXPECT_EQ(xy.route(t.nodeAt(3, 0), pkt), DIR_SOUTH);
    EXPECT_EQ(xy.route(t.nodeAt(3, 2), pkt), PORT_EJECT);
}

TEST(DorRouting, YxGoesYThenX)
{
    TopologyParams tp;
    Topology t(tp);
    DorRouting yx(t, false);
    Rng rng(1);
    Packet pkt;
    pkt.src = t.nodeAt(0, 0);
    pkt.dst = t.nodeAt(3, 2);
    yx.initPacket(pkt, rng);
    EXPECT_EQ(yx.route(t.nodeAt(0, 0), pkt), DIR_SOUTH);
    EXPECT_EQ(yx.route(t.nodeAt(0, 2), pkt), DIR_EAST);
}

TEST(DorRouting, AllPairsMinimal)
{
    TopologyParams tp;
    Topology t(tp);
    DorRouting xy(t, true);
    Rng rng(2);
    for (NodeId s = 0; s < t.numNodes(); ++s) {
        for (NodeId d = 0; d < t.numNodes(); ++d) {
            if (s == d)
                continue;
            const auto res = walk(t, xy, s, d, rng);
            EXPECT_TRUE(res.arrived);
            EXPECT_EQ(res.hops, t.hopDistance(s, d));
        }
    }
}

TEST(CheckerboardRouting, RequiresCheckerboardMesh)
{
    TopologyParams tp; // full routers only
    Topology t(tp);
    EXPECT_DEATH({ CheckerboardRouting cr(t); },
                 "requires a checkerboard mesh");
}

TEST(CheckerboardRouting, XyWhenTurnNodeIsFull)
{
    Topology t = checkerboardTopo();
    CheckerboardRouting cr(t);
    Rng rng(3);
    // (0,0) full -> (3,0)? parity(3,0)=1 half. dst (3,2): turn node
    // (3,0) is half => XY infeasible; YX turn (0,2) parity 0 full.
    Packet pkt;
    pkt.src = t.nodeAt(0, 0);
    pkt.dst = t.nodeAt(3, 2);
    cr.initPacket(pkt, rng);
    EXPECT_EQ(pkt.mode, RouteMode::YX);

    // dst (2,2): XY turn (2,0) parity 0 full => XY.
    pkt.dst = t.nodeAt(2, 2);
    cr.initPacket(pkt, rng);
    EXPECT_EQ(pkt.mode, RouteMode::XY);
}

TEST(CheckerboardRouting, StraightRoutesAreXy)
{
    Topology t = checkerboardTopo();
    CheckerboardRouting cr(t);
    Rng rng(4);
    Packet pkt;
    pkt.src = t.nodeAt(1, 0);
    pkt.dst = t.nodeAt(1, 4); // same column, both half-routers
    cr.initPacket(pkt, rng);
    EXPECT_EQ(pkt.mode, RouteMode::XY);
    const auto res = walk(t, cr, pkt.src, pkt.dst, rng);
    EXPECT_TRUE(res.arrived);
    EXPECT_EQ(res.hops, 4u);
}

TEST(CheckerboardRouting, Case2NeedsTwoPhase)
{
    Topology t = checkerboardTopo();
    CheckerboardRouting cr(t);
    Rng rng(5);
    // Half (1,0) -> half (3,2): even columns apart, different rows:
    // XY turn (3,0) half, YX turn (1,2) half -> two-phase (Fig 12(c)).
    Packet pkt;
    pkt.src = t.nodeAt(1, 0);
    pkt.dst = t.nodeAt(3, 2);
    cr.initPacket(pkt, rng);
    EXPECT_EQ(pkt.mode, RouteMode::TWO_PHASE);
    ASSERT_NE(pkt.intermediate, INVALID_NODE);
    EXPECT_FALSE(t.isHalfRouter(pkt.intermediate));
    // Waypoint inside the minimal quadrant, not in the source row, an
    // even number of columns from the source (Sec. IV-B).
    const unsigned ix = t.xOf(pkt.intermediate);
    const unsigned iy = t.yOf(pkt.intermediate);
    EXPECT_GE(ix, 1u);
    EXPECT_LE(ix, 3u);
    EXPECT_NE(iy, 0u);
    EXPECT_LE(iy, 2u);
    EXPECT_EQ((ix - 1) % 2, 0u);
}

TEST(CheckerboardRouting, TwoPhaseCandidatesAllValid)
{
    Topology t = checkerboardTopo();
    CheckerboardRouting cr(t);
    const NodeId src = t.nodeAt(1, 0);
    const NodeId dst = t.nodeAt(3, 2);
    const auto cands = cr.twoPhaseCandidates(src, dst);
    EXPECT_FALSE(cands.empty());
    for (NodeId c : cands) {
        EXPECT_FALSE(t.isHalfRouter(c));
        EXPECT_NE(t.yOf(c), t.yOf(src));
    }
}

TEST(CheckerboardRouting, FullToFullOddDistanceIsImpossible)
{
    Topology t = checkerboardTopo();
    CheckerboardRouting cr(t);
    Rng rng(6);
    // Fig. 12(a): full (0,0) to full (1,1): odd columns and rows away;
    // not routable on a checkerboard mesh.  Our traffic never needs
    // it, and the router panics if asked.
    Packet pkt;
    pkt.src = t.nodeAt(0, 0);
    pkt.dst = t.nodeAt(1, 1);
    EXPECT_DEATH(cr.initPacket(pkt, rng), "not routable");
}

/**
 * Directed boundary cases, one per mesh edge: full-to-full odd/odd
 * pairs whose source or destination hugs an edge row/column of
 * half-routers.  Before the waypoint filter checked the *second* leg's
 * XY turn node, each of these pairs got a waypoint whose phase-2 turn
 * landed on an edge half-router; now the candidate set is empty and
 * initPacket refuses (the pair is genuinely unroutable).
 */
TEST(CheckerboardRouting, TopEdgeOddPairHasNoWaypoint)
{
    Topology t = checkerboardTopo();
    CheckerboardRouting cr(t);
    Rng rng(8);
    const NodeId src = t.nodeAt(0, 0), dst = t.nodeAt(1, 3);
    EXPECT_TRUE(cr.twoPhaseCandidates(src, dst).empty());
    Packet pkt;
    pkt.src = src;
    pkt.dst = dst;
    EXPECT_DEATH(cr.initPacket(pkt, rng), "not routable");
}

TEST(CheckerboardRouting, BottomEdgeOddPairHasNoWaypoint)
{
    Topology t = checkerboardTopo();
    CheckerboardRouting cr(t);
    Rng rng(8);
    const NodeId src = t.nodeAt(1, 5), dst = t.nodeAt(2, 2);
    EXPECT_TRUE(cr.twoPhaseCandidates(src, dst).empty());
    Packet pkt;
    pkt.src = src;
    pkt.dst = dst;
    EXPECT_DEATH(cr.initPacket(pkt, rng), "not routable");
}

TEST(CheckerboardRouting, LeftEdgeOddPairHasNoWaypoint)
{
    Topology t = checkerboardTopo();
    CheckerboardRouting cr(t);
    Rng rng(8);
    const NodeId src = t.nodeAt(0, 2), dst = t.nodeAt(3, 5);
    EXPECT_TRUE(cr.twoPhaseCandidates(src, dst).empty());
    Packet pkt;
    pkt.src = src;
    pkt.dst = dst;
    EXPECT_DEATH(cr.initPacket(pkt, rng), "not routable");
}

TEST(CheckerboardRouting, RightEdgeOddPairHasNoWaypoint)
{
    Topology t = checkerboardTopo();
    CheckerboardRouting cr(t);
    Rng rng(8);
    const NodeId src = t.nodeAt(5, 1), dst = t.nodeAt(2, 4);
    EXPECT_TRUE(cr.twoPhaseCandidates(src, dst).empty());
    Packet pkt;
    pkt.src = src;
    pkt.dst = dst;
    EXPECT_DEATH(cr.initPacket(pkt, rng), "not routable");
}

TEST(CheckerboardRouting, EveryWaypointTurnsOnlyAtFullRouters)
{
    // Exhaustive: for every two-phase pair, both of each candidate's
    // turn nodes (YX leg at the waypoint, XY leg at (dst.x, wp.y))
    // must be full routers, and the realized walk never turns at a
    // half-router.
    Topology t = checkerboardTopo();
    CheckerboardRouting cr(t);
    Rng rng(9);
    for (NodeId s = 0; s < t.numNodes(); ++s) {
        for (NodeId d = 0; d < t.numNodes(); ++d) {
            if (s == d)
                continue;
            const auto cands = cr.twoPhaseCandidates(s, d);
            if (cands.empty())
                continue;
            for (NodeId wp : cands) {
                EXPECT_FALSE(t.isHalfRouter(wp))
                    << s << "->" << d << " via " << wp;
                const NodeId turn2 = t.nodeAt(t.xOf(d), t.yOf(wp));
                if (t.xOf(wp) != t.xOf(d) && t.yOf(wp) != t.yOf(d)) {
                    EXPECT_FALSE(t.isHalfRouter(turn2))
                        << s << "->" << d << " via " << wp;
                }
            }
            const auto res = walk(t, cr, s, d, rng);
            EXPECT_TRUE(res.arrived) << s << "->" << d;
            EXPECT_EQ(res.turns_at_half, 0u) << s << "->" << d;
        }
    }
}

/** Property sweep: all core<->MC pairs on several mesh sizes. */
class CrPropertyTest
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned,
                                                 unsigned>>
{};

TEST_P(CrPropertyTest, AllMemoryTrafficRoutesAreMinimalAndLegal)
{
    auto [rows, cols, mcs] = GetParam();
    Topology t = checkerboardTopo(rows, cols, mcs);
    CheckerboardRouting cr(t);
    Rng rng(7);

    for (NodeId core : t.computeNodes()) {
        for (NodeId mc : t.mcNodes()) {
            for (int rep = 0; rep < 3; ++rep) { // random waypoints
                // Requests: core -> MC.
                auto req = walk(t, cr, core, mc, rng);
                EXPECT_TRUE(req.arrived) << core << "->" << mc;
                EXPECT_EQ(req.hops, t.hopDistance(core, mc))
                    << "non-minimal request route";
                EXPECT_EQ(req.turns_at_half, 0u)
                    << "illegal turn at half-router";
                EXPECT_LE(req.class_switches, 1u);

                // Replies: MC -> core.
                auto rep_walk = walk(t, cr, mc, core, rng);
                EXPECT_TRUE(rep_walk.arrived) << mc << "->" << core;
                EXPECT_EQ(rep_walk.hops, t.hopDistance(mc, core))
                    << "non-minimal reply route";
                EXPECT_EQ(rep_walk.turns_at_half, 0u);
                EXPECT_LE(rep_walk.class_switches, 1u);
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Meshes, CrPropertyTest,
                         ::testing::Values(
                             std::tuple{6u, 6u, 8u},
                             std::tuple{4u, 4u, 4u},
                             std::tuple{8u, 8u, 8u},
                             std::tuple{8u, 8u, 16u},
                             std::tuple{5u, 7u, 6u}));

TEST(CheckerboardRouting, McToMcRoutable)
{
    // L2 miss traffic between half-routers must work (Sec. IV-A).
    Topology t = checkerboardTopo();
    CheckerboardRouting cr(t);
    Rng rng(8);
    for (NodeId a : t.mcNodes()) {
        for (NodeId b : t.mcNodes()) {
            if (a == b)
                continue;
            auto res = walk(t, cr, a, b, rng);
            EXPECT_TRUE(res.arrived);
            EXPECT_EQ(res.hops, t.hopDistance(a, b));
            EXPECT_EQ(res.turns_at_half, 0u);
        }
    }
}

TEST(MakeRouting, FactoryNames)
{
    Topology t = checkerboardTopo();
    EXPECT_STREQ(makeRouting("xy", t)->name(), "XY");
    EXPECT_STREQ(makeRouting("yx", t)->name(), "YX");
    EXPECT_STREQ(makeRouting("cr", t)->name(), "CR");
    EXPECT_EQ(makeRouting("cr", t)->numRouteClasses(), 2u);
    EXPECT_EQ(makeRouting("xy", t)->numRouteClasses(), 1u);
    Topology full{TopologyParams{}};
    EXPECT_STREQ(makeRouting("o1turn", full)->name(), "O1TURN");
    EXPECT_STREQ(makeRouting("romm", full)->name(), "ROMM");
    EXPECT_STREQ(makeRouting("valiant", full)->name(), "VALIANT");
}

TEST(O1TurnRouting, MixesOrientationsAndStaysMinimal)
{
    Topology t{TopologyParams{}};
    O1TurnRouting o1(t);
    Rng rng(11);
    unsigned xy = 0;
    unsigned yx = 0;
    for (int i = 0; i < 400; ++i) {
        const NodeId s = static_cast<NodeId>(rng.nextRange(36));
        NodeId d = s;
        while (d == s)
            d = static_cast<NodeId>(rng.nextRange(36));
        const auto res = walk(t, o1, s, d, rng);
        EXPECT_TRUE(res.arrived);
        EXPECT_EQ(res.hops, t.hopDistance(s, d));
    }
    // Orientation choice is per packet, roughly 50/50.
    Packet pkt;
    pkt.src = t.nodeAt(0, 0);
    pkt.dst = t.nodeAt(3, 3);
    for (int i = 0; i < 1000; ++i) {
        o1.initPacket(pkt, rng);
        (pkt.mode == RouteMode::XY ? xy : yx) += 1;
    }
    EXPECT_NEAR(static_cast<double>(xy), 500.0, 80.0);
    EXPECT_NEAR(static_cast<double>(yx), 500.0, 80.0);
}

TEST(RommRouting, MinimalViaQuadrantWaypoint)
{
    Topology t{TopologyParams{}};
    RommRouting romm(t);
    Rng rng(12);
    for (int i = 0; i < 400; ++i) {
        const NodeId s = static_cast<NodeId>(rng.nextRange(36));
        NodeId d = s;
        while (d == s)
            d = static_cast<NodeId>(rng.nextRange(36));
        Packet pkt;
        pkt.src = s;
        pkt.dst = d;
        romm.initPacket(pkt, rng);
        // Waypoint lies inside the minimal quadrant.
        if (pkt.intermediate != INVALID_NODE) {
            const unsigned ix = t.xOf(pkt.intermediate);
            const unsigned iy = t.yOf(pkt.intermediate);
            EXPECT_GE(ix, std::min(t.xOf(s), t.xOf(d)));
            EXPECT_LE(ix, std::max(t.xOf(s), t.xOf(d)));
            EXPECT_GE(iy, std::min(t.yOf(s), t.yOf(d)));
            EXPECT_LE(iy, std::max(t.yOf(s), t.yOf(d)));
        }
        const auto res = walk(t, romm, s, d, rng);
        EXPECT_TRUE(res.arrived);
        EXPECT_EQ(res.hops, t.hopDistance(s, d)); // ROMM is minimal
    }
}

TEST(ValiantRouting, NonMinimalButAlwaysArrives)
{
    Topology t{TopologyParams{}};
    ValiantRouting val(t);
    Rng rng(13);
    bool saw_nonminimal = false;
    for (int i = 0; i < 400; ++i) {
        const NodeId s = static_cast<NodeId>(rng.nextRange(36));
        NodeId d = s;
        while (d == s)
            d = static_cast<NodeId>(rng.nextRange(36));
        const auto res = walk(t, val, s, d, rng);
        EXPECT_TRUE(res.arrived);
        EXPECT_GE(res.hops, t.hopDistance(s, d));
        saw_nonminimal |= (res.hops > t.hopDistance(s, d));
    }
    EXPECT_TRUE(saw_nonminimal);
}

TEST(RoutingDeath, FullRouterAlgorithmsRejectCheckerboard)
{
    Topology t = checkerboardTopo();
    EXPECT_EXIT(makeRouting("o1turn", t), ::testing::ExitedWithCode(1),
                "cannot run on a checkerboard");
    EXPECT_EXIT(makeRouting("romm", t), ::testing::ExitedWithCode(1),
                "cannot run on a checkerboard");
    EXPECT_EXIT(makeRouting("valiant", t),
                ::testing::ExitedWithCode(1),
                "cannot run on a checkerboard");
}

TEST(MakeRoutingDeath, UnknownNameIsFatal)
{
    Topology t = checkerboardTopo();
    EXPECT_EXIT(makeRouting("bogus", t), ::testing::ExitedWithCode(1),
                "unknown routing");
}

Topology
torusTopo(unsigned rows = 6, unsigned cols = 6, unsigned mcs = 8)
{
    TopologyParams p;
    p.rows = rows;
    p.cols = cols;
    p.numMcs = mcs;
    p.kind = TopoKind::TORUS;
    return Topology(p);
}

TEST(TorusRouting, FactorySelectsDatelineRouting)
{
    Topology t = torusTopo();
    EXPECT_STREQ(makeRouting("xy", t)->name(), "TORUS_XY");
    EXPECT_STREQ(makeRouting("yx", t)->name(), "TORUS_YX");
    // Two route classes: before and after the dateline crossing.
    EXPECT_EQ(makeRouting("xy", t)->numRouteClasses(), 2u);
}

TEST(TorusRouting, RingDirectionTakesShortWayAndBreaksTiesPositive)
{
    // Shorter way around wins...
    EXPECT_EQ(TorusRouting::ringDirection(1, 5, 6, true), DIR_WEST);
    EXPECT_EQ(TorusRouting::ringDirection(5, 1, 6, true), DIR_EAST);
    EXPECT_EQ(TorusRouting::ringDirection(0, 1, 6, false), DIR_SOUTH);
    // ...and an exact half-ring tie prefers the positive direction in
    // both orders (the golden model replicates this tie-break).
    EXPECT_EQ(TorusRouting::ringDirection(0, 3, 6, true), DIR_EAST);
    EXPECT_EQ(TorusRouting::ringDirection(3, 0, 6, true), DIR_EAST);
}

TEST(TorusRouting, WrapHopCrossesDateline)
{
    Topology t = torusTopo();
    auto algo = makeRouting("xy", t);
    Rng rng(7);

    Packet pkt;
    pkt.src = t.nodeAt(0, 2);
    pkt.dst = t.nodeAt(5, 2);
    algo->initPacket(pkt, rng);
    EXPECT_FALSE(pkt.dateline);
    EXPECT_EQ(pkt.routeClass(), 0);

    // One hop west across the wrap link: the dateline bit flips so
    // the wrap link is only ever occupied by class-1 packets (the
    // cycle on each ring is cut -> no credit-dependency deadlock).
    EXPECT_EQ(algo->route(pkt.src, pkt), DIR_WEST);
    EXPECT_TRUE(pkt.dateline);
    EXPECT_EQ(pkt.routeClass(), 1);
    EXPECT_EQ(algo->route(pkt.dst, pkt), PORT_EJECT);
}

TEST(TorusRouting, DatelineResetsOnDimensionSwitch)
{
    Topology t = torusTopo();
    auto algo = makeRouting("xy", t);
    Rng rng(7);

    Packet pkt;
    pkt.src = t.nodeAt(0, 0);
    pkt.dst = t.nodeAt(5, 5);
    algo->initPacket(pkt, rng);

    // X leg: wrap west, dateline set.
    EXPECT_EQ(algo->route(t.nodeAt(0, 0), pkt), DIR_WEST);
    EXPECT_TRUE(pkt.dateline);

    // Y leg: the dimension switch re-arms the dateline (each ring has
    // its own cut), then the northward wrap sets it again.
    EXPECT_EQ(algo->route(t.nodeAt(5, 0), pkt), DIR_NORTH);
    EXPECT_TRUE(pkt.dateline);
    EXPECT_EQ(algo->route(t.nodeAt(5, 5), pkt), PORT_EJECT);
}

TEST(TorusRouting, AllPairsMinimalEvenAndOddRings)
{
    // DOR on a torus is minimal with wrap-folded distance; odd sizes
    // exercise the no-tie paths, even sizes the tie-break.
    for (const unsigned size : {5u, 6u}) {
        Topology t = torusTopo(size, size, 4);
        auto algo = makeRouting("yx", t);
        Rng rng(11);
        for (NodeId s = 0; s < t.numNodes(); ++s) {
            for (NodeId d = 0; d < t.numNodes(); ++d) {
                if (s == d)
                    continue;
                const auto res = walk(t, *algo, s, d, rng);
                ASSERT_TRUE(res.arrived) << s << "->" << d;
                ASSERT_EQ(res.hops, t.hopDistance(s, d))
                    << s << "->" << d;
            }
        }
    }
}

} // namespace
} // namespace tenoc
