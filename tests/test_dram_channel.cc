/**
 * @file
 * Tests for the FR-FCFS GDDR3 channel.
 */

#include <gtest/gtest.h>

#include "dram/dram_channel.hh"

namespace tenoc
{
namespace
{

DramChannelParams
params()
{
    return DramChannelParams{};
}

DramRequest
read(Addr local, std::uint64_t tag)
{
    DramRequest r;
    r.localAddr = local;
    r.write = false;
    r.tag = tag;
    return r;
}

DramRequest
write(Addr local, std::uint64_t tag)
{
    DramRequest r = read(local, tag);
    r.write = true;
    return r;
}

/** Runs the channel until `n` requests complete (popping them). */
std::vector<DramRequest>
runUntil(DramChannel &ch, unsigned n, Cycle &now, Cycle limit = 20000)
{
    std::vector<DramRequest> done;
    while (done.size() < n && now < limit) {
        ch.cycle(now);
        while (auto r = ch.popCompleted())
            done.push_back(std::move(*r));
        ++now;
    }
    return done;
}

TEST(DramChannel, SingleReadCompletes)
{
    DramChannel ch(params());
    ch.push(read(0, 1), 0);
    Cycle now = 0;
    const auto done = runUntil(ch, 1, now);
    ASSERT_EQ(done.size(), 1u);
    EXPECT_EQ(done[0].tag, 1u);
    // ACT(0) -> CAS(12) -> data at 12+9+4 = 25.
    EXPECT_NEAR(static_cast<double>(now), 26.0, 3.0);
    EXPECT_TRUE(ch.idle());
    EXPECT_EQ(ch.rowMisses(), 1u);
}

TEST(DramChannel, RowHitsServedFasterThanMisses)
{
    // Four reads in one row vs four reads in different rows of the
    // same bank.
    DramChannel hit_ch(params());
    for (int i = 0; i < 4; ++i)
        hit_ch.push(read(static_cast<Addr>(i) * 64, i), 0);
    Cycle hit_time = 0;
    runUntil(hit_ch, 4, hit_time);
    EXPECT_EQ(hit_ch.rowHits(), 3u);

    DramChannel miss_ch(params());
    for (int i = 0; i < 4; ++i)
        miss_ch.push(read(static_cast<Addr>(i) * 2048 * 8, i), 0);
    Cycle miss_time = 0;
    runUntil(miss_ch, 4, miss_time);
    EXPECT_EQ(miss_ch.rowHits(), 0u);
    EXPECT_LT(hit_time, miss_time);
}

TEST(DramChannel, BankParallelismOverlapsActivates)
{
    // Misses to different banks overlap (tRRD apart); misses to one
    // bank serialize on tRC.
    DramChannel multi(params());
    for (int i = 0; i < 4; ++i)
        multi.push(read(static_cast<Addr>(i) * 2048, i), 0);
    Cycle multi_time = 0;
    runUntil(multi, 4, multi_time);

    DramChannel single(params());
    for (int i = 0; i < 4; ++i)
        single.push(read(static_cast<Addr>(i) * 2048 * 8, i), 0);
    Cycle single_time = 0;
    runUntil(single, 4, single_time);
    EXPECT_LT(multi_time + 20, single_time);
}

TEST(DramChannel, QueueCapacityEnforced)
{
    DramChannel ch(params());
    for (unsigned i = 0; i < 32; ++i) {
        EXPECT_TRUE(ch.canAccept());
        ch.push(read(i * 64, i), 0);
    }
    EXPECT_FALSE(ch.canAccept());
    EXPECT_EQ(ch.queueDepth(), 32u);
}

TEST(DramChannel, FrFcfsPrefersRowHitOverOlderMiss)
{
    DramChannel ch(params());
    // Oldest request: bank 0 row 0.  Then bank 0 row 1 (miss), then
    // bank 0 row 0 again (hit once the row is open).
    ch.push(read(0, 1), 0);
    ch.push(read(2048ull * 8, 2), 0); // bank 0, row 1
    ch.push(read(64, 3), 0);          // bank 0, row 0 -> hit
    Cycle now = 0;
    const auto done = runUntil(ch, 3, now);
    ASSERT_EQ(done.size(), 3u);
    EXPECT_EQ(done[0].tag, 1u);
    EXPECT_EQ(done[1].tag, 3u); // out-of-order row hit first
    EXPECT_EQ(done[2].tag, 2u);
    EXPECT_GE(ch.rowHits(), 1u);
}

TEST(DramChannel, ReadWriteTurnaroundCostsTime)
{
    // Alternating reads and writes in an open row pay tRTW/tWTR.
    DramChannel rw(params());
    for (int i = 0; i < 8; ++i) {
        if (i % 2)
            rw.push(write(static_cast<Addr>(i) * 64, i), 0);
        else
            rw.push(read(static_cast<Addr>(i) * 64, i), 0);
    }
    Cycle rw_time = 0;
    runUntil(rw, 8, rw_time);

    DramChannel ro(params());
    for (int i = 0; i < 8; ++i)
        ro.push(read(static_cast<Addr>(i) * 64, i), 0);
    Cycle ro_time = 0;
    runUntil(ro, 8, ro_time);
    EXPECT_GT(rw_time, ro_time + 3 * 8); // several turnaround bubbles
}

TEST(DramChannel, ReturnBufferGatesCas)
{
    auto p = params();
    p.returnBufferCap = 2;
    DramChannel ch(p);
    for (int i = 0; i < 6; ++i)
        ch.push(read(static_cast<Addr>(i) * 64, i), 0);
    // Never pop: after two completions the channel must stop issuing.
    for (Cycle t = 0; t < 500; ++t)
        ch.cycle(t);
    EXPECT_EQ(ch.servedRequests(), 2u);
    // Popping releases the gate.
    Cycle now = 500;
    auto done = runUntil(ch, 6, now);
    EXPECT_EQ(done.size(), 6u);
}

TEST(DramChannel, EfficiencyBetweenZeroAndOne)
{
    DramChannel ch(params());
    for (int i = 0; i < 16; ++i)
        ch.push(read(static_cast<Addr>(i) * 64, i), 0);
    Cycle now = 0;
    runUntil(ch, 16, now);
    EXPECT_GT(ch.efficiency(), 0.2);
    EXPECT_LE(ch.efficiency(), 1.0);
}

TEST(DramChannel, StreamingReachesHighBusUtilization)
{
    // A long row-friendly stream should approach one line per burst.
    DramChannel ch(params());
    Cycle now = 0;
    unsigned pushed = 0;
    unsigned done_count = 0;
    while (done_count < 200 && now < 30000) {
        if (ch.canAccept() && pushed < 240) {
            ch.push(read(static_cast<Addr>(pushed) * 64, pushed), now);
            ++pushed;
        }
        ch.cycle(now);
        while (ch.popCompleted())
            ++done_count;
        ++now;
    }
    ASSERT_EQ(done_count, 200u);
    // 200 lines x 4-cycle bursts = 800 busy cycles minimum.
    const double lines_per_cycle = 200.0 / static_cast<double>(now);
    EXPECT_GT(lines_per_cycle, 0.15);
}

TEST(DramChannelDeath, OverflowPanics)
{
    DramChannel ch(params());
    for (unsigned i = 0; i < 32; ++i)
        ch.push(read(i * 64, i), 0);
    EXPECT_DEATH(ch.push(read(0x8000, 99), 0), "overflow");
}

} // namespace
} // namespace tenoc
