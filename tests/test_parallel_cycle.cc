/**
 * @file
 * Determinism suite for the intra-simulation parallel engine
 * (common/parallel.hh): the phase-parallel MeshNetwork cycle, the
 * sliced DoubleNetwork, and Chip's parallel core ticking must be
 * byte-for-byte identical to serial execution at every thread count.
 *
 * Three layers of coverage:
 *   1. primitives — shardRange partitioning, parallelFor execution
 *      contract (every task exactly once, nested calls fall back
 *      inline), the cycle-thread cap/resolve logic;
 *   2. ActiveSet deferred marks — buffering, merge visibility, and
 *      the word-edge masking of forEachInRange;
 *   3. end-to-end bit-equivalence — seeded network and whole-chip
 *      runs compared across cycleThreads in {1, 2, MAX}, crossed with
 *      the idle-skip scheduler, the invariant checker, fault
 *      injection, and single/sliced networks.
 *
 * Corpus replay under threads rides on test_fuzz_corpus.cc: runDiff's
 * toggle battery now includes cycleThreads=2 shadow runs, so every
 * checked-in repro also executes threaded.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "accel/chip.hh"
#include "accel/chip_config.hh"
#include "accel/experiments.hh"
#include "common/parallel.hh"
#include "common/rng.hh"
#include "noc/activity.hh"
#include "noc/mesh_network.hh"

namespace tenoc
{
namespace
{

// --------------------------------------------------------------------
// 1. Primitives
// --------------------------------------------------------------------

TEST(ShardRange, PartitionsContiguouslyAndCompletely)
{
    for (unsigned n : {0u, 1u, 7u, 36u, 256u, 1000u}) {
        for (unsigned shards : {1u, 2u, 3u, 8u, 16u}) {
            unsigned expect_lo = 0;
            for (unsigned s = 0; s < shards; ++s) {
                const auto [lo, hi] =
                    parallel::shardRange(s, n, shards);
                EXPECT_EQ(lo, expect_lo) << n << "/" << shards;
                EXPECT_LE(lo, hi);
                expect_lo = hi;
            }
            EXPECT_EQ(expect_lo, n) << n << "/" << shards;
        }
    }
}

TEST(ShardRange, IsBalanced)
{
    // No shard exceeds ceil(n / shards): static sharding spreads work
    // as evenly as contiguity allows.
    const unsigned n = 1000, shards = 16;
    for (unsigned s = 0; s < shards; ++s) {
        const auto [lo, hi] = parallel::shardRange(s, n, shards);
        EXPECT_LE(hi - lo, (n + shards - 1) / shards);
    }
}

TEST(ParallelFor, RunsEveryTaskExactlyOnce)
{
    for (unsigned tasks : {0u, 1u, 2u, 5u, 16u}) {
        std::vector<std::atomic<unsigned>> hits(tasks);
        for (auto &h : hits)
            h.store(0);
        parallel::parallelFor(tasks, [&](unsigned t) {
            hits[t].fetch_add(1);
        });
        for (unsigned t = 0; t < tasks; ++t)
            EXPECT_EQ(hits[t].load(), 1u) << "task " << t;
    }
}

TEST(ParallelFor, NestedCallsFallBackInline)
{
    // A parallelFor issued from inside a region must not deadlock or
    // drop tasks: the pool is busy, so the inner call runs inline on
    // whichever thread issued it.
    std::atomic<unsigned> total{0};
    parallel::parallelFor(4, [&](unsigned) {
        parallel::parallelFor(3, [&](unsigned) {
            total.fetch_add(1);
        });
    });
    EXPECT_EQ(total.load(), 12u);
}

TEST(ParallelFor, PropagatesExceptions)
{
    EXPECT_THROW(
        parallel::parallelFor(4, [](unsigned t) {
            if (t == 2)
                throw std::runtime_error("boom");
        }),
        std::runtime_error);
    // The pool must be reusable after a failed region.
    std::atomic<unsigned> ok{0};
    parallel::parallelFor(4, [&](unsigned) { ok.fetch_add(1); });
    EXPECT_EQ(ok.load(), 4u);
}

TEST(ResolveCycleThreads, ClampsAndHonorsCap)
{
    EXPECT_EQ(parallel::resolveCycleThreads(1), 1u);
    EXPECT_EQ(parallel::resolveCycleThreads(4), 4u);
    EXPECT_EQ(parallel::resolveCycleThreads(10000),
              parallel::MAX_CYCLE_THREADS);

    const unsigned prev = parallel::setCycleThreadCap(2);
    EXPECT_EQ(parallel::resolveCycleThreads(8), 2u);
    EXPECT_EQ(parallel::resolveCycleThreads(1), 1u);
    parallel::setCycleThreadCap(prev);
    EXPECT_EQ(parallel::resolveCycleThreads(8), 8u);
}

// --------------------------------------------------------------------
// 2. ActiveSet deferred marks
// --------------------------------------------------------------------

TEST(ActiveSetDeferred, MarksBufferUntilMerge)
{
    ActiveSet set(100);
    set.enableDeferredMarks();
    set.beginDeferred();
    set.mark(3);
    set.mark(64);
    set.mark(99);
    EXPECT_FALSE(set.test(3));   // frozen during the phase
    EXPECT_FALSE(set.test(64));
    set.mergeDeferredMarks();
    set.endDeferred();
    EXPECT_TRUE(set.test(3));
    EXPECT_TRUE(set.test(64));
    EXPECT_TRUE(set.test(99));
    EXPECT_EQ(set.popCount(), 3u);
}

TEST(ActiveSetDeferred, AlreadyLiveBitsAreNotRebuffered)
{
    ActiveSet set(100);
    set.enableDeferredMarks();
    set.mark(7); // live mark, outside any phase
    set.beginDeferred();
    set.mark(7); // already visible: fast-out, no buffer entry
    set.mark(8);
    set.mergeDeferredMarks();
    set.endDeferred();
    EXPECT_TRUE(set.test(7));
    EXPECT_TRUE(set.test(8));
    EXPECT_EQ(set.popCount(), 2u);
}

TEST(ActiveSetDeferred, ForEachInRangeMasksWordEdges)
{
    ActiveSet set(200);
    for (unsigned i : {0u, 63u, 64u, 100u, 127u, 128u, 199u})
        set.mark(i);
    // Sub-word range straddling two word boundaries.
    std::vector<unsigned> got;
    set.forEachInRange(63, 129, [&](unsigned i) {
        got.push_back(i);
    });
    EXPECT_EQ(got, (std::vector<unsigned>{63, 64, 100, 127, 128}));
    got.clear();
    set.forEachInRange(0, 63, [&](unsigned i) { got.push_back(i); });
    EXPECT_EQ(got, (std::vector<unsigned>{0}));
    got.clear();
    set.forEachInRange(128, 200, [&](unsigned i) {
        got.push_back(i);
    });
    EXPECT_EQ(got, (std::vector<unsigned>{128, 199}));
}

// --------------------------------------------------------------------
// 3. End-to-end bit-equivalence
// --------------------------------------------------------------------

/** Accepts everything, keeps nothing. */
struct DropSink : PacketSink
{
    bool tryReserve(const Packet &) override { return true; }
    void deliver(PacketPtr, Cycle) override {}
};

void
expectAccumulatorsEqual(const Accumulator &a, const Accumulator &b)
{
    EXPECT_EQ(a.count(), b.count()) << a.name();
    EXPECT_EQ(a.sum(), b.sum()) << a.name();
    EXPECT_EQ(a.min(), b.min()) << a.name();
    EXPECT_EQ(a.max(), b.max()) << a.name();
}

void
expectHistogramsEqual(const Histogram &a, const Histogram &b)
{
    EXPECT_EQ(a.count(), b.count()) << a.name();
    EXPECT_EQ(a.mean(), b.mean()) << a.name();
    EXPECT_EQ(a.buckets(), b.buckets()) << a.name();
}

void
expectStatsEqual(const NetStats &a, const NetStats &b)
{
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.packetsInjected, b.packetsInjected);
    EXPECT_EQ(a.packetsEjected, b.packetsEjected);
    EXPECT_EQ(a.flitsInjected, b.flitsInjected);
    EXPECT_EQ(a.flitsEjected, b.flitsEjected);
    EXPECT_EQ(a.nodeInjectedFlits, b.nodeInjectedFlits);
    EXPECT_EQ(a.nodeEjectedFlits, b.nodeEjectedFlits);
    EXPECT_EQ(a.nodeInjectedBytes, b.nodeInjectedBytes);
    EXPECT_EQ(a.nodeEjectedBytes, b.nodeEjectedBytes);
    expectAccumulatorsEqual(a.totalLatency, b.totalLatency);
    expectAccumulatorsEqual(a.netLatency, b.netLatency);
    expectHistogramsEqual(a.totalLatencyHist, b.totalLatencyHist);
    expectHistogramsEqual(a.queueLatencyHist, b.queueLatencyHist);
    expectHistogramsEqual(a.traversalLatencyHist,
                          b.traversalLatencyHist);
    expectHistogramsEqual(a.serializationLatencyHist,
                          b.serializationLatencyHist);
}

/**
 * Drives `net` with seeded many-to-few requests and few-to-many
 * replies for `cycles`, then drains.  @return the drain cycle.
 */
Cycle
drive(Network &net, std::uint64_t seed, Cycle cycles)
{
    DropSink sink;
    const auto &topo = net.topology();
    for (NodeId n = 0; n < topo.numNodes(); ++n)
        net.setSink(n, &sink);
    Rng rng(seed);
    Cycle now = 0;
    for (; now < cycles; ++now) {
        for (NodeId core : topo.computeNodes()) {
            if (rng.nextBool(0.04) && net.canInject(core, 0)) {
                auto pkt = makePacket();
                pkt->src = core;
                pkt->dst = rng.pick(topo.mcNodes());
                pkt->op = MemOp::READ_REQUEST;
                pkt->protoClass = 0;
                pkt->sizeFlits = net.packetFlits(MemOp::READ_REQUEST);
                pkt->sizeBytes = memOpBytes(MemOp::READ_REQUEST);
                net.inject(std::move(pkt), now);
            }
        }
        for (NodeId mc : topo.mcNodes()) {
            if (rng.nextBool(0.10) && net.canInject(mc, 1)) {
                auto pkt = makePacket();
                pkt->src = mc;
                pkt->dst = rng.pick(topo.computeNodes());
                pkt->op = MemOp::READ_REPLY;
                pkt->protoClass = 1;
                pkt->sizeFlits = net.packetFlits(MemOp::READ_REPLY);
                pkt->sizeBytes = memOpBytes(MemOp::READ_REPLY);
                net.inject(std::move(pkt), now);
            }
        }
        net.cycle(now);
    }
    while (!net.drained() && now < cycles + 100000)
        net.cycle(now++);
    EXPECT_TRUE(net.drained());
    return now;
}

struct EquivCase
{
    unsigned threads;
    bool idleSkip;
    bool validate;
    bool faults;
    bool sliced;
};

std::string
equivCaseName(const ::testing::TestParamInfo<EquivCase> &info)
{
    const EquivCase &c = info.param;
    std::string name = "t" + std::to_string(c.threads);
    name += c.idleSkip ? "_skip" : "_full";
    if (c.validate)
        name += "_validate";
    if (c.faults)
        name += "_faults";
    name += c.sliced ? "_double" : "_single";
    return name;
}

MeshNetworkParams
equivParams(const EquivCase &c, unsigned threads)
{
    MeshNetworkParams p;
    p.seed = 11;
    p.idleSkip = c.idleSkip;
    p.cycleThreads = threads;
    if (c.validate) {
        p.validate = true;
        p.validateInterval = 16;
    }
    if (c.faults) {
        // Random stalls/freezes exercise the hoisted anyFrozen() gate
        // and the frozen-router handling inside the parallel phases.
        p.faults.linkStallRate = 2e-4;
        p.faults.linkStallDuration = 8;
        p.faults.routerFreezeRate = 1e-4;
        p.faults.routerFreezeDuration = 12;
        p.faults.seed = 77;
    }
    return p;
}

class ParallelCycleEquivalence
    : public ::testing::TestWithParam<EquivCase>
{};

TEST_P(ParallelCycleEquivalence, MatchesSerialExecution)
{
    const EquivCase c = GetParam();
    const auto serial =
        makeMeshNetwork(equivParams(c, 1), c.sliced);
    const auto threaded =
        makeMeshNetwork(equivParams(c, c.threads), c.sliced);
    const Cycle done_serial = drive(*serial, 97, 2000);
    const Cycle done_threaded = drive(*threaded, 97, 2000);
    EXPECT_EQ(done_serial, done_threaded);
    expectStatsEqual(serial->stats(), threaded->stats());
}

INSTANTIATE_TEST_SUITE_P(
    ThreadsTogglesSlicing, ParallelCycleEquivalence,
    ::testing::Values(
        // threads=2: scheduler crossings
        EquivCase{2, true, false, false, false},
        EquivCase{2, false, false, false, false},
        EquivCase{2, true, true, false, false},
        EquivCase{2, true, false, true, false},
        EquivCase{2, true, false, false, true},
        EquivCase{2, false, true, true, true},
        // threads=MAX (16 > node count): oversharded shards go empty
        EquivCase{parallel::MAX_CYCLE_THREADS, true, false, false,
                  false},
        EquivCase{parallel::MAX_CYCLE_THREADS, true, true, true,
                  true}),
    equivCaseName);

TEST(ParallelCycleEquivalence, ChipRunIdenticalUnderCoreThreads)
{
    // Whole-chip closed loop: parallel core ticking + parallel network
    // cycles against the serial run, on a single and a sliced config.
    for (auto id : {ConfigId::BASELINE_TB_DOR, ConfigId::CP_CR_DOUBLE}) {
        const auto prof = scaleWorkload(findWorkload("MM"), 0.01);
        ChipParams serial_p = makeConfig(id);
        serial_p.mesh.cycleThreads = 1;
        ChipParams par_p = makeConfig(id);
        par_p.mesh.cycleThreads = 4;
        const auto serial = runWorkload(serial_p, prof);
        const auto par = runWorkload(par_p, prof);
        EXPECT_EQ(serial.ipc, par.ipc) << configName(id);
        EXPECT_EQ(serial.scalarInsts, par.scalarInsts);
        EXPECT_EQ(serial.coreCycles, par.coreCycles);
        EXPECT_EQ(serial.icntCycles, par.icntCycles) << configName(id);
        EXPECT_EQ(serial.memCycles, par.memCycles);
        EXPECT_EQ(serial.avgNetLatency, par.avgNetLatency);
        EXPECT_EQ(serial.avgTotalLatency, par.avgTotalLatency);
        EXPECT_EQ(serial.packetsEjected, par.packetsEjected);
        EXPECT_EQ(serial.dramEfficiency, par.dramEfficiency);
    }
}

TEST(ParallelCycleEquivalence, SweepCapMakesThreadedNetworksSerial)
{
    // bench/sweep.hh installs a cap of budget/workers; a capped
    // network must resolve to the capped thread count at construction
    // and still produce identical results.
    const unsigned prev = parallel::setCycleThreadCap(1);
    MeshNetworkParams p;
    p.cycleThreads = 8;
    MeshNetwork capped(p);
    parallel::setCycleThreadCap(prev);
    EXPECT_EQ(capped.cycleThreads(), 1u);

    MeshNetworkParams q;
    q.cycleThreads = 8;
    MeshNetwork threaded(q);
    EXPECT_GT(threaded.cycleThreads(), 1u);
    const Cycle done_a = drive(capped, 123, 1500);
    const Cycle done_b = drive(threaded, 123, 1500);
    EXPECT_EQ(done_a, done_b);
    expectStatsEqual(capped.stats(), threaded.stats());
}

} // namespace
} // namespace tenoc
