/**
 * @file
 * Self-healing fleet correctness (docs/fleet.md).
 *
 * Covers the recovery machinery end to end: retry backoff arithmetic,
 * the crash-safe job journal (round trip, torn tail, replay serving),
 * result-cache integrity eviction, chaos spec parsing and monkey
 * determinism, periodic-checkpoint resume equivalence at the Chip
 * level, and — via the real tenoc_server binary (TENOC_SERVER_BIN) —
 * hung-worker supervision with retry-from-checkpoint and a server
 * SIGKILL'd mid-sweep whose restart completes the sweep from its
 * journal.
 */

#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "accel/chip.hh"
#include "accel/chip_config.hh"
#include "common/snapshot.hh"
#include "fleet/cache.hh"
#include "fleet/chaos.hh"
#include "fleet/job.hh"
#include "fleet/journal.hh"
#include "fleet/retry.hh"
#include "fleet/server.hh"
#include "gpu/workloads.hh"
#include "telemetry/json.hh"

namespace tenoc::fleet
{
namespace
{

namespace fs = std::filesystem;
using telemetry::JsonValue;

/** Temp path unique to the current test. */
std::string
tempPath(const char *tag)
{
    const auto *info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    return ::testing::TempDir() + "tenoc_fleet_" + info->name() + "_" +
           tag;
}

std::string
slurp(const std::string &path)
{
    std::ifstream is(path);
    std::stringstream ss;
    ss << is.rdbuf();
    return ss.str();
}

JobSpec
smallJob(const char *vc_depth)
{
    JobSpec j;
    j.workload = "MM";
    j.scale = 0.02;
    j.overrides.set("noc.vcDepth", std::string(vc_depth));
    return j;
}

/** Numeric result fields that must survive any recovery path. */
void
expectSameMetrics(const std::string &a_json, const std::string &b_json)
{
    JsonValue a, b;
    std::string err;
    ASSERT_TRUE(JsonValue::parse(a_json, a, &err)) << err;
    ASSERT_TRUE(JsonValue::parse(b_json, b, &err)) << err;
    for (const char *field :
         {"ipc", "scalar_insts", "core_cycles", "icnt_cycles",
          "avg_net_latency", "packets_ejected", "dram_efficiency"}) {
        const JsonValue *av = a.find(field);
        const JsonValue *bv = b.find(field);
        ASSERT_NE(av, nullptr) << field;
        ASSERT_NE(bv, nullptr) << field;
        EXPECT_EQ(av->asNumber(), bv->asNumber()) << field;
    }
}

// ---------------------------------------------------------------- retry

TEST(RetryPolicy, FirstAttemptNeverWaits)
{
    RetryPolicy p;
    EXPECT_EQ(p.delayForAttempt("h", 1), 0.0);
}

TEST(RetryPolicy, BackoffDoublesJittersAndCaps)
{
    RetryPolicy p;
    p.maxAttempts = 10;
    p.backoffBaseSeconds = 1.0;
    p.backoffMaxSeconds = 8.0;
    double prev_nominal = 0.5; // jitter floor of the base delay
    for (unsigned attempt = 2; attempt <= 9; ++attempt) {
        const double d = p.delayForAttempt("somehash", attempt);
        // Deterministic: same (seed, hash, attempt) -> same delay.
        EXPECT_EQ(d, p.delayForAttempt("somehash", attempt));
        // Jitter scales into [0.5, 1.0) of the nominal delay.
        const double nominal =
            std::min(p.backoffMaxSeconds,
                     p.backoffBaseSeconds *
                         static_cast<double>(1u << (attempt - 2)));
        EXPECT_GE(d, 0.5 * nominal);
        EXPECT_LT(d, nominal);
        EXPECT_GE(nominal, prev_nominal);
        prev_nominal = nominal;
        EXPECT_LE(d, p.backoffMaxSeconds);
    }
    // Different hashes see different jitter (thundering-herd spread).
    EXPECT_NE(p.delayForAttempt("hash-a", 3),
              p.delayForAttempt("hash-b", 3));
}

TEST(RetryPolicy, ShouldRetryHonorsBudget)
{
    RetryPolicy p;
    p.maxAttempts = 3;
    EXPECT_TRUE(p.shouldRetry(1));
    EXPECT_TRUE(p.shouldRetry(2));
    EXPECT_FALSE(p.shouldRetry(3));
    RetryPolicy off;
    off.maxAttempts = 1;
    EXPECT_FALSE(off.shouldRetry(1));
}

// -------------------------------------------------------------- journal

TEST(Journal, RoundTripsJobStates)
{
    const std::string path = tempPath("journal");
    std::remove(path.c_str());
    {
        Journal j;
        std::string err;
        ASSERT_TRUE(j.open(path, &err)) << err;
        j.batchOpened({"h1", "h2"});
        j.attemptStarted("h1", 1);
        j.jobDone("h1", "ok", "{\"status\": \"ok\", \"ipc\": 1.5}");
        j.attemptStarted("h2", 1);
        j.attemptStarted("h2", 2);
    }
    JournalState st;
    std::string err;
    ASSERT_TRUE(replayJournal(path, st, &err)) << err;
    EXPECT_FALSE(st.truncated);
    EXPECT_FALSE(st.batchDone);
    ASSERT_EQ(st.batchHashes.size(), 2u);
    EXPECT_EQ(st.batchHashes[0], "h1");
    EXPECT_TRUE(st.isDone("h1"));
    EXPECT_FALSE(st.isDone("h2"));
    EXPECT_EQ(st.attempts.at("h2"), 2u);
    EXPECT_EQ(st.doneStatus.at("h1"), "ok");

    // The recorded result document round-trips.
    JsonValue doc;
    ASSERT_TRUE(JsonValue::parse(st.doneResults.at("h1"), doc, &err))
        << err;
    EXPECT_EQ(doc.find("ipc")->asNumber(), 1.5);
    std::remove(path.c_str());
}

TEST(Journal, ToleratesTornFinalLine)
{
    const std::string path = tempPath("torn");
    {
        Journal j;
        std::string err;
        ASSERT_TRUE(j.open(path, &err)) << err;
        j.batchOpened({"h1"});
        j.jobDone("h1", "ok", "{\"status\": \"ok\"}");
    }
    // Simulate a crash mid-append: a record cut off before its
    // newline (and before its closing brace).
    {
        std::ofstream os(path, std::ios::app);
        os << "{\"event\":\"done\",\"hash\":\"h2\"";
    }
    JournalState st;
    std::string err;
    ASSERT_TRUE(replayJournal(path, st, &err)) << err;
    EXPECT_TRUE(st.truncated);
    EXPECT_TRUE(st.isDone("h1")); // records before the tear survive
    EXPECT_FALSE(st.isDone("h2"));
    std::remove(path.c_str());
}

TEST(Journal, MissingFileIsEmptyState)
{
    JournalState st;
    std::string err;
    ASSERT_TRUE(replayJournal(tempPath("nonexistent"), st, &err))
        << err;
    EXPECT_EQ(st.records, 0u);
    EXPECT_TRUE(st.batchHashes.empty());
}

TEST(Journal, GarbledMiddleLineIsAnError)
{
    const std::string path = tempPath("garbled");
    {
        std::ofstream os(path);
        os << "this is not json\n";
        os << "{\"event\":\"batch\",\"schema\":\"tenoc-journal-v1\","
              "\"jobs\":[]}\n";
    }
    JournalState st;
    std::string err;
    EXPECT_FALSE(replayJournal(path, st, &err));
    EXPECT_FALSE(err.empty());
    std::remove(path.c_str());
}

TEST(Journal, RebatchKeepsDoneFactsButResetsMembership)
{
    const std::string path = tempPath("rebatch");
    std::remove(path.c_str());
    {
        Journal j;
        std::string err;
        ASSERT_TRUE(j.open(path, &err)) << err;
        j.batchOpened({"old1", "old2"});
        j.jobDone("old1", "ok", "{\"status\": \"ok\"}");
        j.batchClosed(1, 1);
        // A restarted server re-opens the same journal and appends a
        // fresh batch record.
        j.batchOpened({"new1"});
        j.attemptStarted("new1", 1);
    }
    JournalState st;
    std::string err;
    ASSERT_TRUE(replayJournal(path, st, &err)) << err;
    ASSERT_EQ(st.batchHashes.size(), 1u);
    EXPECT_EQ(st.batchHashes[0], "new1");
    EXPECT_FALSE(st.batchDone); // the *new* batch is not done
    // Done records are content-addressed facts: they survive a
    // rebatch, so a twice-restarted server still serves the first
    // incarnation's results without recomputing them.
    EXPECT_TRUE(st.isDone("old1"));
    std::remove(path.c_str());
}

// ---------------------------------------------------------------- cache

TEST(CacheIntegrity, RoundTripsAndVerifies)
{
    const std::string dir = tempPath("cache");
    fs::remove_all(dir);
    ResultCache cache(dir);
    const std::string payload = "{\"status\": \"ok\", \"ipc\": 2.0}";
    cache.store("abcd", payload);
    const auto hit = cache.lookup("abcd");
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(*hit, payload);
    EXPECT_EQ(cache.evictions(), 0u);
    fs::remove_all(dir);
}

TEST(CacheIntegrity, EvictsTruncatedEntry)
{
    const std::string dir = tempPath("cache");
    fs::remove_all(dir);
    ResultCache cache(dir);
    cache.store("abcd", "{\"status\": \"ok\", \"ipc\": 2.0}");
    ASSERT_TRUE(cache.corruptEntry("abcd"));

    EXPECT_FALSE(cache.lookup("abcd").has_value());
    EXPECT_EQ(cache.evictions(), 1u);
    EXPECT_FALSE(fs::exists(cache.entryPath("abcd")));
    // Stays a clean miss afterwards.
    EXPECT_FALSE(cache.lookup("abcd").has_value());
    EXPECT_EQ(cache.evictions(), 1u);
    fs::remove_all(dir);
}

TEST(CacheIntegrity, EvictsFlippedByteAndMissingTrailer)
{
    const std::string dir = tempPath("cache");
    fs::remove_all(dir);
    ResultCache cache(dir);
    cache.store("flip", "{\"status\": \"ok\", \"ipc\": 2.0}");
    {
        std::fstream f(cache.entryPath("flip"),
                       std::ios::in | std::ios::out);
        f.seekp(12);
        f.put('X'); // bit-rot inside the payload
    }
    EXPECT_FALSE(cache.lookup("flip").has_value());

    // An entry with no trailer at all (pre-integrity format, or a
    // torn write) is also refused.
    {
        std::ofstream os(cache.entryPath("bare"));
        os << "{\"status\": \"ok\"}\n";
    }
    EXPECT_FALSE(cache.lookup("bare").has_value());
    EXPECT_EQ(cache.evictions(), 2u);
    fs::remove_all(dir);
}

TEST(CacheIntegrity, DisabledCacheMissesQuietly)
{
    ResultCache cache("");
    cache.store("h", "{}");
    EXPECT_FALSE(cache.lookup("h").has_value());
    EXPECT_FALSE(cache.enabled());
}

// ---------------------------------------------------------------- chaos

TEST(Chaos, ParsesSpecStrings)
{
    ChaosSpec s;
    std::string err;
    EXPECT_TRUE(parseChaosSpec(nullptr, s, &err));
    EXPECT_FALSE(s.enabled());
    EXPECT_TRUE(parseChaosSpec("", s, &err));
    EXPECT_FALSE(s.enabled());

    ASSERT_TRUE(parseChaosSpec(
        "kill=0.5,stall=0.25,corrupt=0.3,drop=0.2,seed=7,budget=3", s,
        &err))
        << err;
    EXPECT_EQ(s.killRate, 0.5);
    EXPECT_EQ(s.stallRate, 0.25);
    EXPECT_EQ(s.corruptRate, 0.3);
    EXPECT_EQ(s.dropRate, 0.2);
    EXPECT_EQ(s.seed, 7u);
    EXPECT_EQ(s.faultBudgetPerJob, 3u);
    EXPECT_TRUE(s.enabled());

    EXPECT_FALSE(parseChaosSpec("kill=1.5", s, &err));
    EXPECT_FALSE(parseChaosSpec("bogus=1", s, &err));
    EXPECT_FALSE(parseChaosSpec("kill=abc", s, &err));
}

TEST(Chaos, MonkeyIsDeterministicAndBudgeted)
{
    ChaosSpec s;
    s.killRate = 1.0; // every attempt faulted until the budget runs out
    s.seed = 11;
    s.faultBudgetPerJob = 2;

    ChaosMonkey a(s), b(s);
    std::uint64_t at_a = 0, at_b = 0;
    for (unsigned attempt = 1; attempt <= 2; ++attempt) {
        EXPECT_EQ(a.workerFault("job1", attempt, &at_a),
                  ChaosMonkey::WorkerFault::KILL);
        EXPECT_EQ(b.workerFault("job1", attempt, &at_b),
                  ChaosMonkey::WorkerFault::KILL);
        EXPECT_EQ(at_a, at_b); // reproducible fault schedule
        EXPECT_GE(at_a, 50u);  // never before the warm-up window
        EXPECT_LT(at_a, 500u); // short CI workloads must reach it
    }
    // Budget exhausted: the job's remaining attempts run clean, which
    // is what makes a chaos sweep provably convergent.
    EXPECT_EQ(a.workerFault("job1", 3, &at_a),
              ChaosMonkey::WorkerFault::NONE);
    // Other jobs have their own budget.
    EXPECT_NE(a.workerFault("job2", 1, &at_a),
              ChaosMonkey::WorkerFault::NONE);
    EXPECT_EQ(a.killsInjected() + a.stallsInjected(), 3u);
}

// ------------------------------------------- periodic checkpoint resume

/**
 * The substrate of retry-from-checkpoint: run with recurring
 * checkpoints armed, resume a fresh chip from the last one (with the
 * cadence re-armed, exactly as a retried worker does), and require the
 * final sealed state to be bit-identical to an uninterrupted run.
 */
TEST(PeriodicCheckpoint, ResumeIsBitIdentical)
{
    const auto params = makeConfig(ConfigId::BASELINE_TB_DOR);
    const auto prof = scaleWorkload(findWorkload("MM"), 0.05);
    const std::string path = tempPath("ckpt");

    Chip uninterrupted(params, prof);
    const ChipResult want = uninterrupted.run();
    ASSERT_FALSE(want.timedOut);
    SnapshotWriter ww;
    uninterrupted.save(ww);
    const auto want_state = sealSnapshot(ww);

    Chip first(params, prof);
    first.schedulePeriodicCheckpoint(300, path);
    first.run();
    ASSERT_TRUE(fs::exists(path)) << "no periodic checkpoint written";

    // Resume as a retried worker would: restore the last checkpoint
    // AND re-arm the same cadence at the same path.
    Chip resumed(params, prof);
    std::string error;
    ASSERT_TRUE(resumed.restoreFromFile(path, &error)) << error;
    resumed.schedulePeriodicCheckpoint(300, path);
    const ChipResult got = resumed.run();

    EXPECT_EQ(want.scalarInsts, got.scalarInsts);
    EXPECT_EQ(want.icntCycles, got.icntCycles);
    EXPECT_EQ(want.packetsEjected, got.packetsEjected);
    EXPECT_EQ(want.ipc, got.ipc);
    SnapshotWriter wr;
    resumed.save(wr);
    EXPECT_EQ(want_state, sealSnapshot(wr));
    std::remove(path.c_str());
}

// --------------------------------------- in-process server-level tests

ServerOptions
baseServerOptions(const char *tag)
{
    ServerOptions o;
    o.workerExe = TENOC_SERVER_BIN;
    o.resultsDir = tempPath(tag);
    o.defaultTimeoutSeconds = 300;
    return o;
}

TEST(FleetRecovery, HungWorkerIsKilledAndRetriedToSuccess)
{
    // Clean reference first.
    ServerOptions clean = baseServerOptions("clean");
    clean.retry.maxAttempts = 1;
    const auto want = FleetServer(clean).runJobs({smallJob("4")});
    ASSERT_EQ(want.size(), 1u);
    ASSERT_TRUE(want[0].ok) << want[0].json;

    // Now stall attempt 1's heartbeats; supervision must SIGKILL the
    // hung harness and the retry (resuming from the periodic
    // checkpoint when one exists) must converge to the same numbers.
    ServerOptions o = baseServerOptions("hung");
    o.retry.maxAttempts = 3;
    o.retry.backoffBaseSeconds = 0.05;
    o.retry.backoffMaxSeconds = 0.1;
    o.heartbeatTimeoutSeconds = 1;
    o.heartbeatIntervalCycles = 100;
    o.checkpointEveryCycles = 300;
    o.chaos.stallRate = 1.0;
    o.chaos.seed = 5;
    o.chaos.faultBudgetPerJob = 1;

    bool saw_heartbeat = false;
    FleetServer::RunHooks hooks;
    hooks.onFrame = [&](const std::string &, const std::string &f) {
        if (f.find("\"type\": \"hb\"") != std::string::npos ||
            f.find("\"type\":\"hb\"") != std::string::npos)
            saw_heartbeat = true;
    };
    const auto got = FleetServer(o).runJobs({smallJob("4")}, hooks);
    ASSERT_EQ(got.size(), 1u);
    ASSERT_TRUE(got[0].ok) << got[0].json;
    EXPECT_GE(got[0].attempts, 2u);
    EXPECT_TRUE(saw_heartbeat);
    expectSameMetrics(want[0].json, got[0].json);
}

TEST(FleetRecovery, KilledWorkerRetriesFromCheckpointBitEqual)
{
    ServerOptions clean = baseServerOptions("clean");
    clean.retry.maxAttempts = 1;
    const auto want = FleetServer(clean).runJobs({smallJob("6")});
    ASSERT_TRUE(want[0].ok) << want[0].json;

    ServerOptions o = baseServerOptions("killed");
    o.retry.maxAttempts = 4;
    o.retry.backoffBaseSeconds = 0.05;
    o.retry.backoffMaxSeconds = 0.1;
    o.checkpointEveryCycles = 300;
    // Faults only fire at progress-callback boundaries; keep them
    // dense so the scheduled kill cycle is reached before run end.
    o.heartbeatIntervalCycles = 100;
    o.chaos.killRate = 1.0;
    o.chaos.seed = 9;
    o.chaos.faultBudgetPerJob = 2; // attempts 1 and 2 die, 3 resumes
    const auto got = FleetServer(o).runJobs({smallJob("6")});
    ASSERT_TRUE(got[0].ok) << got[0].json;
    EXPECT_EQ(got[0].attempts, 3u);
    expectSameMetrics(want[0].json, got[0].json);
}

TEST(FleetRecovery, ExhaustedRetriesReportHungOrCrashed)
{
    ServerOptions o = baseServerOptions("exhausted");
    o.retry.maxAttempts = 2;
    o.retry.backoffBaseSeconds = 0.05;
    o.retry.backoffMaxSeconds = 0.1;
    o.heartbeatIntervalCycles = 100;
    o.chaos.killRate = 1.0;
    o.chaos.seed = 3;
    o.chaos.faultBudgetPerJob = 100; // never runs clean
    const auto got = FleetServer(o).runJobs({smallJob("4")});
    ASSERT_EQ(got.size(), 1u);
    ASSERT_FALSE(got[0].ok) << got[0].json;
    EXPECT_EQ(got[0].attempts, 2u);
    JsonValue doc;
    std::string err;
    ASSERT_TRUE(JsonValue::parse(got[0].json, doc, &err)) << err;
    ASSERT_NE(doc.find("status"), nullptr) << got[0].json;
    ASSERT_NE(doc.find("attempts"), nullptr) << got[0].json;
    EXPECT_EQ(doc.find("status")->asString(), "crashed");
    EXPECT_EQ(doc.find("attempts")->asNumber(), 2.0);
}

TEST(FleetRecovery, JournalReplayServesCompletedJobs)
{
    const std::string journal_path = tempPath("journal");
    std::remove(journal_path.c_str());
    const std::vector<JobSpec> jobs = {smallJob("4"), smallJob("6")};

    ServerOptions o = baseServerOptions("journaled");
    std::vector<JobOutcome> first;
    {
        Journal journal;
        std::string err;
        ASSERT_TRUE(journal.open(journal_path, &err)) << err;
        FleetServer::RunHooks hooks;
        hooks.journal = &journal;
        first = FleetServer(o).runJobs(jobs, hooks);
        ASSERT_TRUE(first[0].ok && first[1].ok);
    }

    // A "restarted server": no cache, fresh FleetServer — everything
    // must come back from the journal without spawning a worker.
    JournalState replay;
    std::string err;
    ASSERT_TRUE(replayJournal(journal_path, replay, &err)) << err;
    EXPECT_TRUE(replay.batchDone);
    FleetServer::RunHooks hooks;
    hooks.replay = &replay;
    const auto again =
        FleetServer(baseServerOptions("replayed")).runJobs(jobs, hooks);
    ASSERT_EQ(again.size(), 2u);
    for (std::size_t i = 0; i < again.size(); ++i) {
        EXPECT_TRUE(again[i].replayed);
        EXPECT_TRUE(again[i].ok);
        expectSameMetrics(first[i].json, again[i].json);
    }
    std::remove(journal_path.c_str());
}

// ------------------------------------- process-level server kill test

pid_t
spawnServer(const std::vector<std::string> &args)
{
    const pid_t pid = fork();
    if (pid != 0)
        return pid;
    std::vector<char *> argv;
    argv.reserve(args.size() + 1);
    for (const auto &a : args)
        argv.push_back(const_cast<char *>(a.c_str()));
    argv.push_back(nullptr);
    execv(argv[0], argv.data());
    _exit(127);
}

/**
 * The headline robustness scenario: SIGKILL a spool server mid-sweep,
 * restart it, and require the sweep to finish with every job's result
 * present — completed jobs recovered from the write-ahead journal,
 * the rest re-run.
 */
TEST(FleetRecovery, ServerKilledMidSweepRestartsAndCompletes)
{
    const std::string spool = tempPath("spool");
    const std::string results = tempPath("results");
    fs::remove_all(spool);
    fs::create_directories(spool);

    // Four jobs through one worker so the kill lands mid-sweep.
    JsonValue doc = JsonValue::makeObject();
    JsonValue arr = JsonValue::makeArray();
    for (const char *vd : {"2", "4", "6", "8"})
        arr.push(jobToJson(smallJob(vd)));
    doc.set("jobs", std::move(arr));
    const std::string spec = spool + "/sweep.json";
    {
        std::ofstream os(spec);
        os << doc.toString(2) << "\n";
    }

    const std::vector<std::string> args = {
        TENOC_SERVER_BIN, "--spool", spool,   "--once",
        "--workers",      "1",       "--results", results};
    const pid_t pid = spawnServer(args);
    ASSERT_GT(pid, 0);

    // Wait for the journal to record at least one finished job, then
    // SIGKILL the server (no chance to clean up — that is the point).
    const std::string journal_path = spec + ".journal";
    bool saw_done = false;
    for (int spin = 0; spin < 3000; ++spin) { // <= 60 s
        if (slurp(journal_path).find("\"event\": \"done\"") !=
                std::string::npos ||
            slurp(journal_path).find("\"event\":\"done\"") !=
                std::string::npos) {
            saw_done = true;
            break;
        }
        if (fs::exists(spec + ".done"))
            break; // sweep outran us; restart still must be a no-op
        timespec nap{0, 20'000'000};
        nanosleep(&nap, nullptr);
    }
    kill(pid, SIGKILL);
    waitpid(pid, nullptr, 0);

    if (saw_done) {
        // Mid-sweep state: spec still live, journal has progress.
        EXPECT_TRUE(fs::exists(spec) || fs::exists(spec + ".done"));
    }

    // Restart: replays the journal, finishes what is missing.  A
    // fresh scratch dir keeps the dead server's orphaned in-flight
    // worker (if any) from racing the rerun on result files.
    const std::vector<std::string> args2 = {
        TENOC_SERVER_BIN, "--spool", spool, "--once",
        "--workers",      "1",       "--results", results + "-2"};
    const pid_t pid2 = spawnServer(args2);
    ASSERT_GT(pid2, 0);
    int status = 0;
    ASSERT_EQ(waitpid(pid2, &status, 0), pid2);
    ASSERT_TRUE(WIFEXITED(status)) << status;
    ASSERT_EQ(WEXITSTATUS(status), 0);

    EXPECT_TRUE(fs::exists(spec + ".done"));
    EXPECT_FALSE(fs::exists(journal_path))
        << "journal should be retired with its spec";
    const std::string results_text =
        slurp(spool + "/sweep.results.jsonl");
    std::istringstream lines(results_text);
    std::string line;
    std::size_t rows = 0;
    while (std::getline(lines, line)) {
        if (line.empty())
            continue;
        ++rows;
        JsonValue row;
        std::string err;
        ASSERT_TRUE(JsonValue::parse(line, row, &err)) << err;
        EXPECT_EQ(row.find("status")->asString(), "ok") << line;
    }
    EXPECT_EQ(rows, 4u);

    fs::remove_all(spool);
    fs::remove_all(results);
    fs::remove_all(results + "-2");
}

} // namespace
} // namespace tenoc::fleet
