/**
 * @file
 * Tests for the MSHR table.
 */

#include <gtest/gtest.h>

#include "cache/mshr.hh"

namespace tenoc
{
namespace
{

TEST(Mshr, AllocateNewEntrySendsRequest)
{
    MshrTable m(4);
    EXPECT_TRUE(m.allocate(0x100, 1));
    EXPECT_TRUE(m.pending(0x100));
    EXPECT_EQ(m.size(), 1u);
    EXPECT_EQ(m.allocations(), 1u);
}

TEST(Mshr, MergeDoesNotSendRequest)
{
    MshrTable m(4);
    EXPECT_TRUE(m.allocate(0x100, 1));
    EXPECT_FALSE(m.allocate(0x100, 2));
    EXPECT_FALSE(m.allocate(0x100, 3));
    EXPECT_EQ(m.size(), 1u);
    EXPECT_EQ(m.merges(), 2u);
    EXPECT_EQ(m.waiters(0x100), 3u);
}

TEST(Mshr, ReleaseReturnsAllWaitersInOrder)
{
    MshrTable m(4);
    m.allocate(0x40, 10);
    m.allocate(0x40, 20);
    const auto waiters = m.release(0x40);
    ASSERT_EQ(waiters.size(), 2u);
    EXPECT_EQ(waiters[0], 10u);
    EXPECT_EQ(waiters[1], 20u);
    EXPECT_FALSE(m.pending(0x40));
    EXPECT_EQ(m.size(), 0u);
}

TEST(Mshr, FullTableRefusesNewLines)
{
    MshrTable m(2);
    m.allocate(0x0, 1);
    m.allocate(0x40, 2);
    EXPECT_TRUE(m.full());
    EXPECT_FALSE(m.canAllocate(0x80));
    EXPECT_TRUE(m.canAllocate(0x0)); // merge still allowed
    m.release(0x0);
    EXPECT_TRUE(m.canAllocate(0x80));
}

TEST(Mshr, MergeLimitEnforced)
{
    MshrTable m(4, 2);
    m.allocate(0x0, 1);
    m.allocate(0x0, 2);
    EXPECT_FALSE(m.canAllocate(0x0));
}

TEST(Mshr, CapacityMatchesTableII)
{
    MshrTable m(64); // 64 MSHRs per core
    for (Addr i = 0; i < 64; ++i)
        EXPECT_TRUE(m.allocate(i * 64, i));
    EXPECT_TRUE(m.full());
    EXPECT_EQ(m.capacity(), 64u);
}

TEST(MshrDeath, ReleaseUnknownLinePanics)
{
    MshrTable m(4);
    EXPECT_DEATH(m.release(0xdead), "unknown MSHR line");
}

TEST(MshrDeath, OverflowPanics)
{
    MshrTable m(1);
    m.allocate(0x0, 1);
    EXPECT_DEATH(m.allocate(0x40, 2), "overflow");
}

} // namespace
} // namespace tenoc
