/**
 * @file
 * Tests for instruction sources (profile statistics and trace replay)
 * and the real-tag-cache closed-loop mode.
 */

#include <gtest/gtest.h>

#include "accel/experiments.hh"
#include "gpu/inst_source.hh"

namespace tenoc
{
namespace
{

TEST(ProfileInstSource, MatchesProfileStatistics)
{
    KernelProfile p;
    p.memFraction = 0.3;
    p.loadFraction = 0.8;
    p.avgLinesPerMemInst = 2.0;
    p.rowLocality = 1.0;
    ProfileInstSource src(p, 0, 4, 64, 32);
    EXPECT_EQ(src.numWarps(), 4u);
    EXPECT_EQ(src.warpLength(2), p.warpInstsPerWarp);

    Rng rng(5);
    unsigned mem = 0;
    unsigned stores = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        Warp::PendingInst inst;
        src.decode(static_cast<unsigned>(i % 4), inst, rng);
        if (inst.isMem) {
            ++mem;
            stores += inst.isStore;
            EXPECT_EQ(inst.lines.size(), 2u);
        } else {
            EXPECT_TRUE(inst.lines.empty());
        }
    }
    EXPECT_NEAR(mem / double(n), 0.3, 0.02);
    EXPECT_NEAR(stores / double(mem), 0.2, 0.03);
}

TEST(TraceInstSource, ParsesAllOps)
{
    auto src = TraceInstSource::fromText(
        "# demo trace\n"
        "0 A\n"
        "0 L 0x100 0x200\n"
        "1 S 4096\n"
        "\n"
        "0 A   # trailing comment\n");
    EXPECT_EQ(src->numWarps(), 2u);
    EXPECT_EQ(src->warpLength(0), 3u);
    EXPECT_EQ(src->warpLength(1), 1u);

    Rng rng(1);
    Warp::PendingInst inst;
    src->decode(0, inst, rng);
    EXPECT_FALSE(inst.isMem);
    src->decode(0, inst, rng);
    EXPECT_TRUE(inst.isMem);
    EXPECT_FALSE(inst.isStore);
    ASSERT_EQ(inst.lines.size(), 2u);
    EXPECT_EQ(inst.lines[0], 0x100u);
    EXPECT_EQ(inst.lines[1], 0x200u);
    src->decode(1, inst, rng);
    EXPECT_TRUE(inst.isStore);
    EXPECT_EQ(inst.lines[0], 4096u);
}

TEST(TraceInstSourceDeath, MalformedTracesAreFatal)
{
    EXPECT_EXIT(TraceInstSource::fromText("0 X\n"),
                ::testing::ExitedWithCode(1), "unknown op");
    EXPECT_EXIT(TraceInstSource::fromText("0 L\n"),
                ::testing::ExitedWithCode(1), "without addresses");
    EXPECT_EXIT(TraceInstSource::fromText("0 L zzz\n"),
                ::testing::ExitedWithCode(1), "bad address");
    EXPECT_EXIT(TraceInstSource::fromText("# nothing\n"),
                ::testing::ExitedWithCode(1), "no instructions");
    EXPECT_EXIT(TraceInstSource::fromFile("/no/such/trace"),
                ::testing::ExitedWithCode(1), "cannot open");
}

TEST(TraceReplay, ClosedLoopWithRealCaches)
{
    // Two warps streaming disjoint lines plus a shared reused line.
    std::string text;
    for (int i = 0; i < 40; ++i) {
        for (unsigned w = 0; w < 2; ++w) {
            text += std::to_string(w) + " L " +
                std::to_string((i * 2 + w) * 64) + "\n";
            text += std::to_string(w) + " A\n";
            text += std::to_string(w) + " L 8192\n"; // hot line
        }
    }
    KernelProfile profile;
    profile.abbr = "TRC";
    profile.realCaches = true;
    profile.maxPendingLines = 4;

    Chip chip(makeConfig(ConfigId::BASELINE_TB_DOR), profile,
              [&](unsigned) { return TraceInstSource::fromText(text); });
    const auto r = chip.run();
    EXPECT_FALSE(r.timedOut);
    // 28 cores x 2 warps x 120 insts x 32 threads.
    EXPECT_EQ(r.scalarInsts, 28ull * 240 * 32);
    EXPECT_GT(r.ipc, 1.0);
}

TEST(TraceReplay, HotLineHitsInRealL1)
{
    // All loads to one line: after the first miss per core, everything
    // hits in the real L1, so network traffic stays tiny.
    std::string text;
    for (int i = 0; i < 100; ++i)
        text += "0 L 4096\n";
    KernelProfile profile;
    profile.realCaches = true;
    profile.maxPendingLines = 1;

    Chip chip(makeConfig(ConfigId::BASELINE_TB_DOR), profile,
              [&](unsigned) { return TraceInstSource::fromText(text); });
    const auto r = chip.run();
    EXPECT_FALSE(r.timedOut);
    // One read request + one reply per core, nothing else.
    EXPECT_EQ(r.packetsEjected, 2ull * 28);
}

TEST(TraceInstSource, RewindReplaysFromTheStart)
{
    auto src = TraceInstSource::fromText("0 A\n0 L 64\n");
    Rng rng(1);
    Warp::PendingInst inst;
    src->decode(0, inst, rng);
    src->decode(0, inst, rng);
    EXPECT_TRUE(inst.isMem);
    src->rewind();
    src->decode(0, inst, rng);
    EXPECT_FALSE(inst.isMem); // back at the first instruction
}

TEST(TraceReplay, MultiKernelRewindsTrace)
{
    std::string text;
    for (int i = 0; i < 30; ++i)
        text += "0 L " + std::to_string(i * 64) + "\n";
    KernelProfile profile;
    profile.realCaches = true;
    profile.maxPendingLines = 4;
    profile.numKernels = 3;
    Chip chip(makeConfig(ConfigId::BASELINE_TB_DOR), profile,
              [&](unsigned) { return TraceInstSource::fromText(text); });
    const auto r = chip.run();
    EXPECT_FALSE(r.timedOut);
    EXPECT_EQ(r.scalarInsts, 3ull * 28 * 30 * 32);
}

TEST(TraceReplay, DeterministicAcrossRuns)
{
    std::string text;
    for (int i = 0; i < 50; ++i)
        text += "0 L " + std::to_string(i * 64) + "\n0 A\n";
    KernelProfile profile;
    profile.realCaches = true;

    auto run_once = [&] {
        Chip chip(makeConfig(ConfigId::CP_CR_4VC), profile,
                  [&](unsigned) {
                      return TraceInstSource::fromText(text);
                  });
        return chip.run().coreCycles;
    };
    EXPECT_EQ(run_once(), run_once());
}

} // namespace
} // namespace tenoc
