/**
 * @file
 * Hardening-layer tests: the invariant checker stays clean on correct
 * executions, and mutation tests prove that each deliberately injected
 * inconsistency (leaked credit, corrupted in-flight counter, router
 * retired from the active set while it still has work, pooled-packet
 * double release) is detected and reported precisely.  Also covers the
 * config-hardening fatal paths (0 VCs, off-mesh MCs, odd sliced flit
 * width, ...) as exit-code tests.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "noc/invariants.hh"
#include "noc/mesh_network.hh"

namespace tenoc
{
namespace
{

/** Accepts everything, keeps nothing. */
struct DropSink : PacketSink
{
    bool tryReserve(const Packet &) override { return true; }
    void deliver(PacketPtr, Cycle) override {}
};

void
attachDropSinks(Network &net, DropSink &sink)
{
    for (NodeId n = 0; n < net.topology().numNodes(); ++n)
        net.setSink(n, &sink);
}

/** Injects seeded request/reply traffic for `cycles` cycles. */
void
driveTraffic(Network &net, Rng &rng, Cycle &now, Cycle cycles)
{
    const auto &topo = net.topology();
    const Cycle end = now + cycles;
    for (; now < end; ++now) {
        for (NodeId core : topo.computeNodes()) {
            if (rng.nextBool(0.05) && net.canInject(core, 0)) {
                auto pkt = makePacket();
                pkt->src = core;
                pkt->dst = rng.pick(topo.mcNodes());
                pkt->op = MemOp::READ_REQUEST;
                pkt->protoClass = 0;
                pkt->sizeFlits = net.packetFlits(MemOp::READ_REQUEST);
                pkt->sizeBytes = memOpBytes(MemOp::READ_REQUEST);
                net.inject(std::move(pkt), now);
            }
        }
        for (NodeId mc : topo.mcNodes()) {
            if (rng.nextBool(0.10) && net.canInject(mc, 1)) {
                auto pkt = makePacket();
                pkt->src = mc;
                pkt->dst = rng.pick(topo.computeNodes());
                pkt->op = MemOp::READ_REPLY;
                pkt->protoClass = 1;
                pkt->sizeFlits = net.packetFlits(MemOp::READ_REPLY);
                pkt->sizeBytes = memOpBytes(MemOp::READ_REPLY);
                net.inject(std::move(pkt), now);
            }
        }
        net.cycle(now);
    }
}

bool
hasViolation(const std::vector<Violation> &vs, Violation::Kind kind)
{
    for (const auto &v : vs)
        if (v.kind == kind)
            return true;
    return false;
}

std::string
describe(const std::vector<Violation> &vs)
{
    std::string out;
    for (const auto &v : vs) {
        out += "[";
        out += violationKindName(v.kind);
        out += "] " + v.message + "\n";
    }
    return out;
}

TEST(Invariants, CleanAuditUnderTraffic)
{
    MeshNetworkParams p;
    p.validate = true; // periodic check() live too
    p.validateInterval = 8;
    MeshNetwork net(p);
    DropSink sink;
    attachDropSinks(net, sink);
    Rng rng(99);
    Cycle now = 0;
    for (int burst = 0; burst < 8; ++burst) {
        driveTraffic(net, rng, now, 250);
        const auto vs = net.checker().audit(now);
        EXPECT_TRUE(vs.empty()) << describe(vs);
    }
    while (!net.drained() && now < 100000)
        net.cycle(now++);
    ASSERT_TRUE(net.drained());
    const auto vs = net.checker().audit(now);
    EXPECT_TRUE(vs.empty()) << describe(vs);
}

TEST(Invariants, CleanAuditDoubleNetwork)
{
    MeshNetworkParams p;
    p.validate = true;
    p.validateInterval = 8;
    DoubleNetwork net(p);
    DropSink sink;
    attachDropSinks(net, sink);
    Rng rng(7);
    Cycle now = 0;
    driveTraffic(net, rng, now, 1500);
    while (!net.drained() && now < 100000)
        net.cycle(now++);
    ASSERT_TRUE(net.drained());
    for (MeshNetwork *slice : {&net.requestNet(), &net.replyNet()}) {
        const auto vs = slice->checker().audit(now);
        EXPECT_TRUE(vs.empty()) << describe(vs);
    }
}

TEST(Invariants, MutatedCreditIsCaught)
{
    MeshNetworkParams p; // validate off: audit by hand, no panic
    MeshNetwork net(p);
    ASSERT_TRUE(net.checker().audit(0).empty());

    // Leak one downstream credit on the first connected output.
    Router &r = net.router(net.topology().nodeAt(1, 1));
    unsigned out = NUM_DIRS;
    for (unsigned d = 0; d < NUM_DIRS; ++d) {
        if (r.outputConnected(d)) {
            out = d;
            break;
        }
    }
    ASSERT_LT(out, NUM_DIRS);
    ASSERT_TRUE(r.dropCredit(out, 0));

    const auto vs = net.checker().audit(0);
    ASSERT_FALSE(vs.empty());
    EXPECT_TRUE(hasViolation(vs, Violation::Kind::CREDIT_CONSERVATION))
        << describe(vs);
    // The report pinpoints the faulted link, direction and VC.
    bool precise = false;
    for (const auto &v : vs) {
        if (v.kind == Violation::Kind::CREDIT_CONSERVATION &&
            v.message.find("vc 0") != std::string::npos) {
            precise = true;
        }
    }
    EXPECT_TRUE(precise) << describe(vs);
}

TEST(Invariants, CorruptedInflightCounterIsCaught)
{
    MeshNetworkParams p;
    MeshNetwork net(p);
    net.debugAdjustInflight(+1);
    const auto vs = net.checker().audit(0);
    ASSERT_FALSE(vs.empty());
    EXPECT_TRUE(hasViolation(vs, Violation::Kind::PACKET_CONSERVATION))
        << describe(vs);
    net.debugAdjustInflight(-1);
    EXPECT_TRUE(net.checker().audit(0).empty());
}

TEST(Invariants, RetiredActiveRouterIsCaught)
{
    MeshNetworkParams p; // idleSkip defaults on -> activity checked
    MeshNetwork net(p);
    DropSink sink;
    attachDropSinks(net, sink);

    const auto &topo = net.topology();
    auto pkt = makePacket();
    pkt->src = topo.nodeAt(0, 2);
    pkt->dst = topo.nodeAt(5, 2);
    pkt->op = MemOp::READ_REQUEST;
    pkt->protoClass = 0;
    pkt->sizeFlits = net.packetFlits(MemOp::READ_REQUEST);
    pkt->sizeBytes = memOpBytes(MemOp::READ_REQUEST);
    net.inject(std::move(pkt), 0);

    // Tick until some router holds buffered flits, then retire it from
    // the active set as a buggy idle-skip scheduler would.
    NodeId busy = INVALID_NODE;
    Cycle now = 0;
    while (busy == INVALID_NODE && now < 100) {
        net.cycle(now++);
        for (NodeId n = 0; n < topo.numNodes() && busy == INVALID_NODE;
             ++n) {
            unsigned flits = 0;
            net.router(n).forEachBufferedFlit(
                [&](unsigned, unsigned, const Flit &) { ++flits; });
            if (flits > 0)
                busy = n;
        }
    }
    ASSERT_NE(busy, INVALID_NODE) << "packet never entered a router";

    ASSERT_TRUE(net.checker().audit(now).empty());
    net.debugRetireRouter(busy);
    const auto vs = net.checker().audit(now);
    ASSERT_FALSE(vs.empty());
    EXPECT_TRUE(hasViolation(vs, Violation::Kind::ACTIVITY))
        << describe(vs);
}

TEST(Invariants, ValidateForcedByEnvParsesValues)
{
    const char *saved = ::getenv("TENOC_VALIDATE");
    const std::string restore = saved ? saved : "";
    ::setenv("TENOC_VALIDATE", "1", 1);
    EXPECT_TRUE(validateForcedByEnv());
    ::setenv("TENOC_VALIDATE", "0", 1);
    EXPECT_FALSE(validateForcedByEnv());
    ::unsetenv("TENOC_VALIDATE");
    EXPECT_FALSE(validateForcedByEnv());
    if (saved)
        ::setenv("TENOC_VALIDATE", restore.c_str(), 1);
}

using InvariantsDeathTest = ::testing::Test;

TEST(InvariantsDeathTest, CheckPanicsListingViolations)
{
    MeshNetworkParams p;
    MeshNetwork net(p);
    Router &r = net.router(net.topology().nodeAt(1, 1));
    ASSERT_TRUE(r.dropCredit(DIR_EAST, 0));
    EXPECT_DEATH(net.checker().check(0), "credit_conservation");
}

TEST(InvariantsDeathTest, PeriodicCheckFiresUnderValidate)
{
    MeshNetworkParams p;
    p.validate = true;
    p.validateInterval = 1;
    MeshNetwork net(p);
    net.debugAdjustInflight(+1);
    EXPECT_DEATH(net.cycle(0), "packet_conservation");
}

TEST(InvariantsDeathTest, PoolDoubleReleaseIsHardError)
{
    auto &pool = packetPool();
    pool.setValidate(true);
    Packet *raw = pool.allocate();
    pool.release(raw);
    EXPECT_DEATH(pool.release(raw), "double-release");
    pool.setValidate(false);
}

using ConfigHardeningDeathTest = ::testing::Test;

TEST(ConfigHardeningDeathTest, ZeroVcsRejected)
{
    MeshNetworkParams p;
    p.vcsPerClass = 0;
    EXPECT_EXIT(validateMeshNetworkParams(p),
                ::testing::ExitedWithCode(1), "vcsPerClass");
}

TEST(ConfigHardeningDeathTest, ZeroVcDepthRejected)
{
    MeshNetworkParams p;
    p.vcDepth = 0;
    EXPECT_EXIT(validateMeshNetworkParams(p),
                ::testing::ExitedWithCode(1), "vcDepth");
}

TEST(ConfigHardeningDeathTest, ZeroValidateIntervalRejected)
{
    MeshNetworkParams p;
    p.validate = true;
    p.validateInterval = 0;
    EXPECT_EXIT(validateMeshNetworkParams(p),
                ::testing::ExitedWithCode(1), "validateInterval");
}

TEST(ConfigHardeningDeathTest, OffMeshMcRejected)
{
    TopologyParams tp;
    tp.placement = McPlacement::CUSTOM;
    tp.numMcs = 1;
    tp.customMcs = {{9, 9}}; // 6x6 mesh has x,y in [0,5]
    EXPECT_EXIT({ Topology topo(tp); }, ::testing::ExitedWithCode(1),
                "off the");
}

TEST(ConfigHardeningDeathTest, TooManyMcsRejected)
{
    TopologyParams tp;
    tp.numMcs = 36; // every node an MC leaves no compute nodes
    EXPECT_EXIT({ Topology topo(tp); }, ::testing::ExitedWithCode(1),
                "");
}

TEST(ConfigHardeningDeathTest, DegenerateMeshRejected)
{
    TopologyParams tp;
    tp.rows = 1;
    EXPECT_EXIT({ Topology topo(tp); }, ::testing::ExitedWithCode(1),
                "");
}

TEST(ConfigHardeningDeathTest, OddSlicedFlitBytesRejected)
{
    MeshNetworkParams p;
    p.flitBytes = 15; // cannot halve evenly
    EXPECT_EXIT(makeMeshNetwork(p, true),
                ::testing::ExitedWithCode(1), "even value");
}

} // namespace
} // namespace tenoc
