/**
 * @file
 * Tests for building ChipParams from dotted-key Configs.
 */

#include <gtest/gtest.h>

#include "accel/chip_config.hh"

namespace tenoc
{
namespace
{

TEST(ConfigLoader, DefaultsToBaseline)
{
    Config cfg;
    const auto p = chipParamsFromConfig(cfg);
    const auto ref = makeConfig(ConfigId::BASELINE_TB_DOR);
    EXPECT_EQ(p.mesh.flitBytes, ref.mesh.flitBytes);
    EXPECT_EQ(p.mesh.routing, ref.mesh.routing);
    EXPECT_EQ(p.netKind, NetKind::MESH);
}

TEST(ConfigLoader, BaseNames)
{
    EXPECT_EQ(configIdFromName("baseline"),
              ConfigId::BASELINE_TB_DOR);
    EXPECT_EQ(configIdFromName("2x"), ConfigId::TB_DOR_2X);
    EXPECT_EQ(configIdFromName("perfect"), ConfigId::PERFECT);
    EXPECT_EQ(configIdFromName("cp-cr"), ConfigId::CP_CR_4VC);
    EXPECT_EQ(configIdFromName("thr-eff"),
              ConfigId::THROUGHPUT_EFFECTIVE);
    EXPECT_EQ(configIdFromName("cp-cr-2p"),
              ConfigId::CP_CR_2INJ_SINGLE);
}

TEST(ConfigLoader, OverridesApply)
{
    Config cfg;
    cfg.parseText(
        "base = cp-cr\n"
        "noc.flitBytes = 32\n"
        "noc.mcInjPorts = 2\n"
        "noc.vcDepth = 16\n"
        "clk.coreMhz = 1000\n"
        "dram.banks = 4\n"
        "sim.seed = 99\n");
    const auto p = chipParamsFromConfig(cfg);
    EXPECT_EQ(p.mesh.flitBytes, 32u);
    EXPECT_EQ(p.mesh.mcInjPorts, 2u);
    EXPECT_EQ(p.mesh.vcDepth, 16u);
    EXPECT_DOUBLE_EQ(p.coreClockMhz, 1000.0);
    EXPECT_EQ(p.mc.dram.timing.numBanks, 4u);
    EXPECT_EQ(p.mesh.routing, "cr");
    EXPECT_TRUE(p.mesh.topo.checkerboardRouters);
}

TEST(ConfigLoader, PlacementStrings)
{
    Config cfg;
    cfg.set("noc.placement", "checkerboard");
    EXPECT_EQ(chipParamsFromConfig(cfg).mesh.topo.placement,
              McPlacement::CHECKERBOARD);
    cfg.set("noc.placement", "top-bottom");
    EXPECT_EQ(chipParamsFromConfig(cfg).mesh.topo.placement,
              McPlacement::TOP_BOTTOM);
}

TEST(ConfigLoader, SlicingToggle)
{
    Config cfg;
    cfg.set("base", "thr-eff");
    EXPECT_EQ(chipParamsFromConfig(cfg).netKind, NetKind::DOUBLE);
    cfg.set("noc.sliced", false);
    EXPECT_EQ(chipParamsFromConfig(cfg).netKind, NetKind::MESH);
}

TEST(ConfigLoader, McCountPropagatesToInterleaving)
{
    Config cfg;
    cfg.set("noc.rows", 8);
    cfg.set("noc.cols", 8);
    cfg.set("noc.mcs", 16);
    const auto p = chipParamsFromConfig(cfg);
    EXPECT_EQ(p.mesh.topo.numMcs, 16u);
    EXPECT_EQ(p.mc.numChannels, 16u);
}

TEST(ConfigLoaderDeath, UnknownKeyIsFatal)
{
    Config cfg;
    cfg.set("noc.flitbytes", 32); // wrong capitalization
    EXPECT_EXIT(chipParamsFromConfig(cfg),
                ::testing::ExitedWithCode(1), "unknown configuration");
}

TEST(ConfigLoaderDeath, UnknownBaseIsFatal)
{
    Config cfg;
    cfg.set("base", "bogus");
    EXPECT_EXIT(chipParamsFromConfig(cfg),
                ::testing::ExitedWithCode(1), "unknown base");
}

TEST(ConfigLoaderDeath, UnknownPlacementIsFatal)
{
    Config cfg;
    cfg.set("noc.placement", "diagonal");
    EXPECT_EXIT(chipParamsFromConfig(cfg),
                ::testing::ExitedWithCode(1), "unknown placement");
}

} // namespace
} // namespace tenoc
