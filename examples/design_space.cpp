/**
 * @file
 * Design-space exploration example: evaluate a user-defined NoC
 * configuration (mesh size, placement, routing, channel width, VCs,
 * MC ports) on a chosen workload and report throughput-effectiveness
 * next to the paper's named designs.
 *
 * Usage: design_space [ABBR] [scale]
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "accel/experiments.hh"
#include "area/area_model.hh"

using namespace tenoc;

namespace
{

/** Evaluates one chip configuration on one workload. */
void
evaluate(const char *label, const ChipParams &params,
         const MeshAreaSpec &area_spec, const KernelProfile &profile)
{
    const AreaModel model;
    const auto noc = model.meshArea(area_spec);
    const double chip = model.chipArea(noc);
    const ChipResult r = runWorkload(params, profile);
    std::printf("%-32s IPC %7.2f  noc %6.2f mm^2  chip %7.2f  "
                "IPC/mm^2 %.5f%s\n",
                label, r.ipc, noc.nocTotal(), chip,
                throughputEffectiveness(r.ipc, chip),
                r.timedOut ? "  (timed out)" : "");
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string abbr = argc > 1 ? argv[1] : "KM";
    const double scale = argc > 2 ? std::atof(argv[2]) : 0.5;
    const KernelProfile profile =
        scaleWorkload(findWorkload(abbr), scale);
    std::printf("exploring NoC designs on %s (%s)\n\n",
                profile.abbr.c_str(), profile.name.c_str());

    // The paper's named designs...
    for (ConfigId id : {ConfigId::BASELINE_TB_DOR, ConfigId::TB_DOR_2X,
                        ConfigId::CP_CR_4VC,
                        ConfigId::THROUGHPUT_EFFECTIVE,
                        ConfigId::CP_CR_2INJ_SINGLE}) {
        evaluate(configName(id), makeConfig(id), areaSpecFor(id),
                 profile);
    }

    // ...and a custom design: a checkerboard mesh with 12-byte
    // channels, 2 lanes per class, and 3 injection ports at MCs.
    ChipParams custom = makeConfig(ConfigId::CP_CR_4VC);
    custom.mesh.flitBytes = 12;
    custom.mesh.vcsPerClass = 2;
    custom.mesh.mcInjPorts = 3;

    MeshAreaSpec spec = areaSpecFor(ConfigId::CP_CR_4VC);
    spec.channelBytes = 12.0;
    spec.vcs = 8;
    spec.mcInjPorts = 3;
    evaluate("custom 12B/8VC/3-inj", custom, spec, profile);

    std::printf("\nthroughput-effectiveness (IPC/mm^2) is the paper's "
                "figure of merit: higher is better.\n");
    return 0;
}
