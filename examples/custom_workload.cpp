/**
 * @file
 * Custom-workload example: describe your own kernel as a
 * KernelProfile — instruction mix, coalescing, cache locality, DRAM
 * row locality, memory-level parallelism — and see how it behaves on
 * the baseline and throughput-effective NoCs, including its paper-
 * style LL/LH/HH classification.
 *
 * Usage: custom_workload [memFraction] [l1HitRate] [linesPerMemInst]
 */

#include <cstdio>
#include <cstdlib>

#include "accel/experiments.hh"

using namespace tenoc;

int
main(int argc, char **argv)
{
    KernelProfile kernel;
    kernel.abbr = "MYK";
    kernel.name = "my custom kernel";
    kernel.warpsPerCore = 32;
    kernel.warpInstsPerWarp = 120;
    kernel.memFraction = argc > 1 ? std::atof(argv[1]) : 0.2;
    kernel.l1HitRate = argc > 2 ? std::atof(argv[2]) : 0.4;
    kernel.avgLinesPerMemInst = argc > 3 ? std::atof(argv[3]) : 2.0;
    kernel.loadFraction = 0.85;
    kernel.l2HitRate = 0.3;
    kernel.writebackRate = 0.3;
    kernel.rowLocality = 0.7;
    kernel.maxPendingLines = 10;

    std::printf("kernel: mem %.2f, l1 %.2f, lines/inst %.1f "
                "(lambda = %.3f read lines per warp instruction)\n\n",
                kernel.memFraction, kernel.l1HitRate,
                kernel.avgLinesPerMemInst,
                kernel.memFraction * kernel.avgLinesPerMemInst *
                    (1.0 - kernel.l1HitRate));

    const auto base =
        runWorkload(makeConfig(ConfigId::BASELINE_TB_DOR), kernel);
    const auto perfect =
        runWorkload(makeConfig(ConfigId::PERFECT), kernel);
    const auto thr =
        runWorkload(makeConfig(ConfigId::THROUGHPUT_EFFECTIVE),
                    kernel);

    std::printf("baseline mesh     : IPC %7.2f  MC stall %5.1f%%  "
                "net latency %6.1f\n",
                base.ipc, 100.0 * base.mcStallFractionMean,
                base.avgNetLatency);
    std::printf("perfect NoC       : IPC %7.2f (%+.1f%%)\n",
                perfect.ipc, 100.0 * (perfect.ipc / base.ipc - 1.0));
    std::printf("throughput-eff.   : IPC %7.2f (%+.1f%%)\n", thr.ipc,
                100.0 * (thr.ipc / base.ipc - 1.0));

    const TrafficClass cls = classify(
        perfect.ipc / base.ipc, perfect.acceptedBytesPerNode);
    std::printf("\nclassification (Sec. III-B): %s  "
                "(perfect speedup %+.1f%%, accepted %.2f B/cyc/node)\n",
                trafficClassName(cls),
                100.0 * (perfect.ipc / base.ipc - 1.0),
                perfect.acceptedBytesPerNode);
    return 0;
}
