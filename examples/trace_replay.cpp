/**
 * @file
 * Trace-replay example: drive the closed-loop chip from per-warp
 * instruction traces with REAL tag-array L1/L2 caches (no statistical
 * locality), the fully structural mode of the simulator.
 *
 * Usage:
 *   trace_replay                 synthesizes a demo trace and runs it
 *   trace_replay FILE            replays FILE on every core
 *
 * Trace format (see gpu/inst_source.hh):
 *   <warp> A                 # one ALU instruction
 *   <warp> L <addr> [...]    # load touching these line addresses
 *   <warp> S <addr> [...]    # store
 */

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "accel/experiments.hh"

using namespace tenoc;

namespace
{

/** Builds a small streaming-with-reuse demo trace. */
std::string
demoTrace()
{
    std::ostringstream os;
    const unsigned warps = 16;
    const unsigned iters = 60;
    for (unsigned i = 0; i < iters; ++i) {
        for (unsigned w = 0; w < warps; ++w) {
            // Streaming read (coalesced across warps)...
            const Addr a = (static_cast<Addr>(i) * warps + w) * 64;
            os << w << " L 0x" << std::hex << a << std::dec << "\n";
            // ...a few ALU instructions...
            os << w << " A\n" << w << " A\n" << w << " A\n";
            // ...and an occasional reused-table load + result store.
            if (i % 4 == 3) {
                os << w << " L 0x" << std::hex << (0x800000 + w * 64)
                   << std::dec << "\n";
                os << w << " S 0x" << std::hex << (0xc00000 + a)
                   << std::dec << "\n";
            }
        }
    }
    return os.str();
}

} // namespace

int
main(int argc, char **argv)
{
    std::string text;
    if (argc > 1) {
        auto src = TraceInstSource::fromFile(argv[1]);
        (void)src; // validate early; rebuilt per core below
        std::ifstream f(argv[1]);
        std::stringstream ss;
        ss << f.rdbuf();
        text = ss.str();
    } else {
        text = demoTrace();
        std::printf("no trace given; using a built-in streaming demo "
                    "trace\n");
    }

    // The profile supplies structure (MLP, cache geometry); with
    // realCaches the statistical hit rates are ignored.
    KernelProfile profile;
    profile.abbr = "TRACE";
    profile.name = "trace replay";
    profile.realCaches = true;
    profile.maxPendingLines = 8;

    for (ConfigId id : {ConfigId::BASELINE_TB_DOR,
                        ConfigId::CP_CR_2INJ_SINGLE}) {
        Chip chip(makeConfig(id), profile,
                  [&](unsigned) { return TraceInstSource::fromText(text); });
        const auto r = chip.run();
        std::printf("%-28s IPC %7.2f  net-lat %6.1f  "
                    "DRAM row-hit %.2f%s\n",
                    configName(id), r.ipc, r.avgNetLatency,
                    r.dramRowHitRate, r.timedOut ? "  TIMEOUT" : "");
    }
    std::printf("\n(real-tag caches: L1 16KB/4-way per core, L2 128KB/"
                "8-way per MC; locality comes from the trace itself)\n");
    return 0;
}
