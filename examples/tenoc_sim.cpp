/**
 * @file
 * Config-file-driven simulator front end.
 *
 * Reads a dotted-key configuration (file and/or key=value command-line
 * overrides), runs one workload or the whole Table I suite closed-
 * loop, and prints results plus (optionally) a full statistics dump.
 *
 * Usage:
 *   tenoc_sim [config-file] [key=value ...]
 *
 * Extra keys on top of chipParamsFromConfig():
 *   workload = BFS | ... | suite   (default "suite")
 *   scale    = kernel-length scale (default 1.0)
 *   stats    = true to dump detailed statistics
 *
 * Example:
 *   tenoc_sim - workload=BFS base=thr-eff noc.mcInjPorts=2 scale=0.5
 */

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "accel/experiments.hh"

using namespace tenoc;

int
main(int argc, char **argv)
{
    Config cfg;
    int first_kv = 1;
    if (argc > 1 && std::string(argv[1]).find('=') == std::string::npos
        && std::string(argv[1]) != "-") {
        std::ifstream f(argv[1]);
        if (!f)
            tenoc_fatal("cannot open config file '", argv[1], "'");
        std::stringstream ss;
        ss << f.rdbuf();
        cfg.parseText(ss.str());
        first_kv = 2;
    } else if (argc > 1 && std::string(argv[1]) == "-") {
        first_kv = 2;
    }
    for (int i = first_kv; i < argc; ++i)
        cfg.parseText(argv[i]);

    const std::string workload = cfg.getString("workload", "suite");
    const double scale = cfg.getDouble("scale", 1.0);
    const bool dump_stats = cfg.getBool("stats", false);

    // Strip front-end keys before handing off to the chip builder.
    Config chip_cfg;
    for (const auto &key : cfg.keys()) {
        if (key != "workload" && key != "scale" && key != "stats")
            chip_cfg.set(key, cfg.getString(key));
    }
    const ChipParams params = chipParamsFromConfig(chip_cfg);

    std::printf("tenoc_sim: base=%s routing=%s flit=%uB "
                "mcInj=%u sliced=%s workload=%s scale=%.2f\n\n",
                chip_cfg.getString("base", "baseline").c_str(),
                params.mesh.routing.c_str(), params.mesh.flitBytes,
                params.mesh.mcInjPorts,
                params.netKind == NetKind::DOUBLE ? "yes" : "no",
                workload.c_str(), scale);

    auto report = [&](const SuiteRun &r) {
        std::printf("%-6s %-4s IPC %8.2f  mc-stall %5.1f%%  "
                    "net-lat %7.1f  acc %5.2f B/cyc/node  "
                    "dram-eff %.2f%s\n",
                    r.abbr.c_str(), trafficClassName(r.cls),
                    r.result.ipc, 100.0 * r.result.mcStallFractionMean,
                    r.result.avgNetLatency,
                    r.result.acceptedBytesPerNode,
                    r.result.dramEfficiency,
                    r.result.timedOut ? "  TIMEOUT" : "");
    };

    if (workload == "suite") {
        const auto runs = runSuite(params, scale);
        for (const auto &r : runs)
            report(r);
        std::printf("\nharmonic-mean IPC: %.2f\n",
                    harmonicMeanIpc(runs));
    } else {
        const auto profile =
            scaleWorkload(findWorkload(workload), scale);
        SuiteRun r;
        r.abbr = profile.abbr;
        r.cls = profile.expectedClass;
        r.result = runWorkload(params, profile);
        report(r);
        if (dump_stats) {
            std::printf("\nscalar insts      %llu\n",
                        static_cast<unsigned long long>(
                            r.result.scalarInsts));
            std::printf("core cycles       %llu\n",
                        static_cast<unsigned long long>(
                            r.result.coreCycles));
            std::printf("icnt cycles       %llu\n",
                        static_cast<unsigned long long>(
                            r.result.icntCycles));
            std::printf("mem cycles        %llu\n",
                        static_cast<unsigned long long>(
                            r.result.memCycles));
            std::printf("packets ejected   %llu\n",
                        static_cast<unsigned long long>(
                            r.result.packetsEjected));
            std::printf("MC inj rate       %.4f flits/cyc/MC\n",
                        r.result.mcInjectionRate);
            std::printf("MC:core inj ratio %.2f (paper: ~6.9)\n",
                        r.result.mcToCoreInjectionRatio);
            std::printf("DRAM row hit rate %.3f\n",
                        r.result.dramRowHitRate);
        }
    }
    return 0;
}
