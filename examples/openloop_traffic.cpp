/**
 * @file
 * Open-loop NoC study example: sweep offered load on any mesh
 * configuration under the accelerator's many-to-few-to-many pattern
 * and print the latency/throughput curve (the methodology behind
 * Fig. 21).
 *
 * Usage: openloop_traffic [routing xy|cr] [mcInjPorts] [hotspot]
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "noc/openloop.hh"

using namespace tenoc;

int
main(int argc, char **argv)
{
    const std::string routing = argc > 1 ? argv[1] : "cr";
    const unsigned inj_ports =
        argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : 1;
    const double hotspot = argc > 3 ? std::atof(argv[3]) : 0.0;

    OpenLoopParams p;
    p.net.routing = routing;
    if (routing == "cr") {
        p.net.topo.placement = McPlacement::CHECKERBOARD;
        p.net.topo.checkerboardRouters = true;
    }
    p.net.mcInjPorts = inj_ports;
    p.hotspotFraction = hotspot;
    p.seed = 7;

    std::printf("open-loop sweep: routing=%s, MC injection ports=%u, "
                "hotspot=%.0f%%\n", routing.c_str(), inj_ports,
                100.0 * hotspot);
    std::printf("(1-flit requests from 28 cores, 4-flit replies from "
                "8 MCs)\n\n");
    std::printf("%-10s %12s %12s %12s %10s\n", "offered",
                "accepted", "latency", "p95", "state");

    const auto results = sweepOpenLoop(p, 0.01, 0.01, 0.15);
    for (const auto &r : results) {
        std::printf("%-10.3f %12.3f %12.1f %12.1f %10s\n",
                    r.offeredLoad, r.acceptedLoad, r.avgLatency,
                    r.p95Latency,
                    r.saturated ? "SATURATED" : "stable");
    }
    std::printf("\ntip: compare `openloop_traffic xy 1` against "
                "`openloop_traffic cr 2` to see the paper's Fig. 21 "
                "gap.\n");
    return 0;
}
