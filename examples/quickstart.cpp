/**
 * @file
 * Quickstart: run one benchmark closed-loop on the baseline mesh and
 * on the throughput-effective NoC, and report IPC, the MC reply-path
 * stall fraction, and throughput-effectiveness (IPC/mm^2).
 *
 * Usage: quickstart [ABBR] [scale]
 *   ABBR   benchmark abbreviation from Table I (default BFS)
 *   scale  kernel-length scale factor (default 0.5)
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "accel/experiments.hh"
#include "area/area_model.hh"

int
main(int argc, char **argv)
{
    using namespace tenoc;

    const std::string abbr = argc > 1 ? argv[1] : "BFS";
    const double scale = argc > 2 ? std::atof(argv[2]) : 0.5;

    const KernelProfile profile =
        scaleWorkload(findWorkload(abbr), scale);
    std::printf("workload: %s (%s), class %s\n", profile.abbr.c_str(),
                profile.name.c_str(),
                trafficClassName(profile.expectedClass));

    const AreaModel area;
    for (ConfigId id : {ConfigId::BASELINE_TB_DOR,
                        ConfigId::THROUGHPUT_EFFECTIVE,
                        ConfigId::CP_CR_2INJ_SINGLE}) {
        const ChipParams params = makeConfig(id);
        const ChipResult r = runWorkload(params, profile);
        const auto noc = area.meshArea(areaSpecFor(id));
        const double chip_mm2 = area.chipArea(noc);
        std::printf(
            "%-28s IPC %7.2f  mc-stall %5.1f%%  net-lat %6.1f  "
            "noc-area %6.2f mm^2  IPC/mm^2 %.4f\n",
            configName(id), r.ipc, 100.0 * r.mcStallFractionMean,
            r.avgNetLatency, noc.nocTotal(),
            throughputEffectiveness(r.ipc, chip_mm2));
    }
    return 0;
}
