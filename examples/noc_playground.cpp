/**
 * @file
 * NoC library standalone example: build a checkerboard mesh directly,
 * inject individual packets, and trace their delivery — the lowest-
 * level public API (no cores, no DRAM).  Also demonstrates the
 * checkerboard routing modes (XY / YX / two-phase) on concrete pairs.
 */

#include <cstdio>

#include "noc/mesh_network.hh"

using namespace tenoc;

namespace
{

struct TraceSink : PacketSink
{
    bool tryReserve(const Packet &) override { return true; }

    void
    deliver(PacketPtr pkt, Cycle now) override
    {
        std::printf("  packet #%llu delivered at cycle %llu "
                    "(latency %llu, %u flits)\n",
                    static_cast<unsigned long long>(pkt->id),
                    static_cast<unsigned long long>(now),
                    static_cast<unsigned long long>(
                        now - pkt->createdCycle),
                    pkt->sizeFlits);
    }
};

const char *
modeName(RouteMode m)
{
    switch (m) {
      case RouteMode::XY: return "XY";
      case RouteMode::YX: return "YX (header bit set)";
      case RouteMode::TWO_PHASE: return "two-phase (via waypoint)";
      case RouteMode::TORUS_XY: return "torus XY (dateline)";
      case RouteMode::TORUS_YX: return "torus YX (dateline)";
    }
    return "?";
}

} // namespace

int
main()
{
    MeshNetworkParams params;
    params.topo.placement = McPlacement::CHECKERBOARD;
    params.topo.checkerboardRouters = true;
    params.routing = "cr";
    MeshNetwork net(params);
    const Topology &topo = net.topology();

    std::printf("6x6 checkerboard mesh: %zu compute nodes, %zu MCs "
                "(all at half-routers)\n\n%s\n",
                topo.computeNodes().size(), topo.mcNodes().size(),
                renderTopology(topo).c_str());

    TraceSink sink;
    for (NodeId n = 0; n < topo.numNodes(); ++n)
        net.setSink(n, &sink);

    // Demonstrate the three checkerboard routing modes.
    const CheckerboardRouting cr_probe(topo);
    Rng rng(3);
    struct Pair { unsigned sx, sy, dx, dy; };
    const Pair pairs[] = {
        {0, 0, 2, 2}, // full -> full, even distance: XY works
        {0, 0, 3, 2}, // full -> half via YX turn
        {1, 0, 3, 2}, // half -> half, even columns: two-phase
    };
    Cycle now = 0;
    for (const auto &pr : pairs) {
        auto pkt = makePacket();
        pkt->src = topo.nodeAt(pr.sx, pr.sy);
        pkt->dst = topo.nodeAt(pr.dx, pr.dy);
        pkt->op = MemOp::READ_REPLY;
        pkt->protoClass = 1;
        pkt->sizeFlits = net.packetFlits(MemOp::READ_REPLY);
        pkt->sizeBytes = memOpBytes(MemOp::READ_REPLY);

        Packet probe = *pkt;
        cr_probe.initPacket(probe, rng);
        std::printf("\n(%u,%u) -> (%u,%u): mode %s", pr.sx, pr.sy,
                    pr.dx, pr.dy, modeName(probe.mode));
        if (probe.intermediate != INVALID_NODE) {
            std::printf(" via (%u,%u)", topo.xOf(probe.intermediate),
                        topo.yOf(probe.intermediate));
        }
        std::printf("\n");

        net.inject(std::move(pkt), now);
        for (int i = 0; i < 80; ++i)
            net.cycle(now++);
    }

    std::printf("\nnetwork stats: %llu packets, %llu flits, mean "
                "latency %.1f cycles\n",
                static_cast<unsigned long long>(
                    net.stats().packetsEjected),
                static_cast<unsigned long long>(
                    net.stats().flitsEjected),
                net.stats().totalLatency.mean());
    return 0;
}
