/**
 * @file
 * Versioned binary checkpoint blobs.
 *
 * SnapshotWriter/SnapshotReader are small fixed-width little-endian
 * codecs used by the model classes' save()/restore() hooks to persist
 * all dynamic simulator state (router/VC/buffer occupancy, NI queues,
 * cache/MSHR/DRAM state, SIMT warps, RNG streams, clocks).  The sealed
 * file format carries a magic word, a snapshot format version, and the
 * simulator version string; loading rejects mismatches up front so a
 * checkpoint can never be silently interpreted by an incompatible
 * simulator build (see docs/fleet.md for the compatibility rules).
 *
 * Object identity: several restored containers may reference the same
 * heap object (e.g. all flits of one packet share one Packet).  The
 * writer assigns each distinct pointer a dense reference id via
 * refId(); the first site serializes the contents inline and later
 * sites store just the id.  The reader resolves ids back to the object
 * recreated by the first site.
 */

#ifndef TENOC_COMMON_SNAPSHOT_HH
#define TENOC_COMMON_SNAPSHOT_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace tenoc
{

/** Simulator version string baked into blobs and config hashes. */
const char *simulatorVersion();

/** Bumped whenever the serialized layout of any component changes. */
constexpr std::uint32_t SNAPSHOT_FORMAT_VERSION = 2;

/** Appends primitives to a growing byte buffer (little-endian). */
class SnapshotWriter
{
  public:
    void u8(std::uint8_t v) { buf_.push_back(v); }
    void boolean(bool v) { u8(v ? 1 : 0); }
    void u32(std::uint32_t v);
    void u64(std::uint64_t v);
    void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
    void f64(double v);
    void str(const std::string &s);

    /** Writes a 4-character section marker (corruption tripwire). */
    void tag(const char (&name)[5]);

    /**
     * Identity registry: @return the dense id for `p`, assigning the
     * next id on first sight; `*first` tells the caller whether to
     * serialize the object's contents inline.
     */
    std::uint64_t refId(const void *p, bool *first);

    const std::vector<std::uint8_t> &data() const { return buf_; }

  private:
    std::vector<std::uint8_t> buf_;
    std::unordered_map<const void *, std::uint64_t> refs_;
};

/** Consumes primitives from a byte buffer; panics on underrun or a
 *  section-tag mismatch (a corrupt or out-of-sync blob is a bug in the
 *  save/restore pairing, not a user error). */
class SnapshotReader
{
  public:
    SnapshotReader() = default;
    explicit SnapshotReader(std::vector<std::uint8_t> data)
        : buf_(std::move(data))
    {}

    std::uint8_t u8();
    bool boolean() { return u8() != 0; }
    std::uint32_t u32();
    std::uint64_t u64();
    std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
    double f64();
    std::string str();

    /** Reads and verifies a section marker written by tag(). */
    void tag(const char (&name)[5]);

    /** @return true when every byte has been consumed. */
    bool exhausted() const { return pos_ == buf_.size(); }

    /** Resolves a reference id registered by setRef(). */
    void *ref(std::uint64_t id) const;
    /** Registers the object recreated for reference id `id`. */
    void setRef(std::uint64_t id, void *obj);

  private:
    std::vector<std::uint8_t> buf_;
    std::size_t pos_ = 0;
    std::vector<void *> refs_;
};

/**
 * Seals `body` with the snapshot header (magic, format version,
 * simulator version) into one self-describing blob.
 */
std::vector<std::uint8_t> sealSnapshot(const SnapshotWriter &body);

/**
 * Validates a sealed blob's header and hands the body to `out`.
 * @return false (with `*error` set) on a magic / format-version /
 *         simulator-version mismatch or a truncated blob.
 */
bool openSnapshot(std::vector<std::uint8_t> blob, SnapshotReader &out,
                  std::string *error);

/** Seals and writes `body` to `path`. @return false + error on I/O. */
bool saveSnapshotFile(const std::string &path, const SnapshotWriter &body,
                      std::string *error);

/** Reads, validates, and opens the sealed blob at `path`. */
bool loadSnapshotFile(const std::string &path, SnapshotReader &out,
                      std::string *error);

// --- stat-object codecs shared by the model classes' hooks ---

class Counter;
class Accumulator;
class Histogram;

void saveStat(SnapshotWriter &w, const Counter &c);
void restoreStat(SnapshotReader &r, Counter &c);
void saveStat(SnapshotWriter &w, const Accumulator &a);
void restoreStat(SnapshotReader &r, Accumulator &a);
void saveStat(SnapshotWriter &w, const Histogram &h);
/** Restores a histogram; its bucket count must match the blob. */
void restoreStat(SnapshotReader &r, Histogram &h);

/** Writes a u64 vector with its length. */
void saveU64Vector(SnapshotWriter &w, const std::vector<std::uint64_t> &v);
/** Restores into `v`, whose size must match the blob. */
void restoreU64Vector(SnapshotReader &r, std::vector<std::uint64_t> &v);

} // namespace tenoc

#endif // TENOC_COMMON_SNAPSHOT_HH
