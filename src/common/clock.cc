/**
 * @file
 * Clock domain implementation.
 */

#include "common/clock.hh"

#include <cmath>
#include <limits>

#include "common/log.hh"

namespace tenoc
{

ClockDomain::ClockDomain(std::string name, double freq_mhz)
    : name_(std::move(name)), freq_mhz_(freq_mhz)
{
    tenoc_assert(freq_mhz > 0.0, "clock frequency must be positive");
    // period [ps] = 1e6 / freq[MHz]
    period_ps_ = static_cast<Picoseconds>(
        std::llround(1.0e6 / freq_mhz));
    tenoc_assert(period_ps_ > 0, "clock period rounds to zero ps");
    next_edge_ps_ = period_ps_;
}

void
ClockDomain::tick()
{
    ++cycles_;
    next_edge_ps_ += period_ps_;
}

void
ClockDomain::reset()
{
    cycles_ = 0;
    next_edge_ps_ = period_ps_;
}

ClockDomainSet::DomainId
ClockDomainSet::addDomain(const std::string &name, double freq_mhz)
{
    domains_.emplace_back(name, freq_mhz);
    ticked_.push_back(false);
    return domains_.size() - 1;
}

const std::vector<bool> &
ClockDomainSet::advance()
{
    tenoc_assert(!domains_.empty(), "no clock domains registered");
    Picoseconds earliest = std::numeric_limits<Picoseconds>::max();
    for (const auto &d : domains_)
        earliest = std::min(earliest, d.nextEdgePs());

    now_ps_ = earliest;
    for (std::size_t i = 0; i < domains_.size(); ++i) {
        if (domains_[i].nextEdgePs() == earliest) {
            domains_[i].tick();
            ticked_[i] = true;
        } else {
            ticked_[i] = false;
        }
    }
    return ticked_;
}

void
ClockDomainSet::reset()
{
    for (auto &d : domains_)
        d.reset();
    now_ps_ = 0;
}

} // namespace tenoc
