/**
 * @file
 * Flat FIFO ring queue with inline small storage.
 *
 * Replaces std::deque in simulator hot paths (channel in-flight
 * queues) where the common-case population is tiny and bounded by the
 * channel latency: the first INLINE items live inside the owning
 * object, so a steady-state channel performs no heap allocation at
 * all, and iteration touches one contiguous block in FIFO order.
 * Capacity grows geometrically (powers of two) when a queue backs up
 * (link-stall faults, frozen receivers), so behaviour is identical to
 * the unbounded deque it replaces.
 */

#ifndef TENOC_COMMON_RING_HH
#define TENOC_COMMON_RING_HH

#include <cstddef>
#include <memory>
#include <new>
#include <utility>

#include "common/log.hh"

namespace tenoc
{

/**
 * Fixed-order FIFO over a circular buffer.  INLINE (a power of two)
 * items of inline storage; spills to a heap ring when exceeded.
 * Deliberately neither copyable nor movable: instances are embedded in
 * components with stable addresses (channels in a std::deque).
 */
template <typename T, unsigned INLINE = 4>
class RingQueue
{
    static_assert(INLINE >= 1 && (INLINE & (INLINE - 1)) == 0,
                  "inline capacity must be a power of two");

  public:
    RingQueue() = default;
    RingQueue(const RingQueue &) = delete;
    RingQueue &operator=(const RingQueue &) = delete;

    ~RingQueue()
    {
        clear();
        if (heap_)
            std::allocator<T>().deallocate(heap_, cap_);
    }

    bool empty() const { return size_ == 0; }
    std::size_t size() const { return size_; }

    template <typename... Args>
    void
    emplace_back(Args &&...args)
    {
        if (size_ == cap_)
            grow();
        ::new (static_cast<void *>(slot((head_ + size_) & (cap_ - 1))))
            T(std::forward<Args>(args)...);
        ++size_;
    }

    T &
    front()
    {
        tenoc_assert(size_ != 0, "front() on empty ring");
        return *slot(head_);
    }

    const T &
    front() const
    {
        tenoc_assert(size_ != 0, "front() on empty ring");
        return *slot(head_);
    }

    void
    pop_front()
    {
        tenoc_assert(size_ != 0, "pop_front() on empty ring");
        slot(head_)->~T();
        head_ = (head_ + 1) & (cap_ - 1);
        --size_;
    }

    void
    clear()
    {
        while (size_ != 0)
            pop_front();
        head_ = 0;
    }

    /** Calls f(item) for every queued item, oldest first. */
    template <typename F>
    void
    forEach(F &&f) const
    {
        for (std::size_t i = 0; i < size_; ++i)
            f(*slot((head_ + i) & (cap_ - 1)));
    }

  private:
    T *
    slot(std::size_t i)
    {
        return (heap_ ? heap_
                      : std::launder(reinterpret_cast<T *>(inline_))) +
            i;
    }

    const T *
    slot(std::size_t i) const
    {
        return (heap_ ? heap_
                      : std::launder(
                            reinterpret_cast<const T *>(inline_))) +
            i;
    }

    void
    grow()
    {
        const std::size_t new_cap = cap_ * 2;
        T *fresh = std::allocator<T>().allocate(new_cap);
        for (std::size_t i = 0; i < size_; ++i) {
            T *src = slot((head_ + i) & (cap_ - 1));
            ::new (static_cast<void *>(fresh + i)) T(std::move(*src));
            src->~T();
        }
        if (heap_)
            std::allocator<T>().deallocate(heap_, cap_);
        heap_ = fresh;
        cap_ = new_cap;
        head_ = 0;
    }

    alignas(T) std::byte inline_[sizeof(T) * INLINE];
    T *heap_ = nullptr;
    std::size_t cap_ = INLINE;
    std::size_t head_ = 0;
    std::size_t size_ = 0;
};

} // namespace tenoc

#endif // TENOC_COMMON_RING_HH
