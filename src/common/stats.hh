/**
 * @file
 * Lightweight statistics package in the spirit of gem5's Stats.
 *
 * Provides scalar counters, averaging accumulators, distributions
 * (histograms), and a registry (StatGroup) that can dump all registered
 * statistics as text.  Harmonic/arithmetic mean helpers used by the
 * paper's figures live here as free functions.
 */

#ifndef TENOC_COMMON_STATS_HH
#define TENOC_COMMON_STATS_HH

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace tenoc
{

/** Simple named event counter. */
class Counter
{
  public:
    Counter() = default;
    explicit Counter(std::string name) : name_(std::move(name)) {}

    void inc(std::uint64_t n = 1) { value_ += n; }
    void reset() { value_ = 0; }
    /** Overwrites the count (checkpoint/restore). */
    void restore(std::uint64_t v) { value_ = v; }
    std::uint64_t value() const { return value_; }
    const std::string &name() const { return name_; }

  private:
    std::string name_;
    std::uint64_t value_ = 0;
};

/** Running mean/min/max accumulator over double samples. */
class Accumulator
{
  public:
    Accumulator() = default;
    explicit Accumulator(std::string name) : name_(std::move(name)) {}

    /** Adds one sample. */
    void sample(double v);
    void reset();

    /** Overwrites the aggregate state (checkpoint/restore). */
    void
    restore(std::uint64_t count, double sum, double min, double max)
    {
        count_ = count;
        sum_ = sum;
        min_ = min;
        max_ = max;
    }

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    const std::string &name() const { return name_; }

  private:
    std::string name_;
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Fixed-bucket histogram over [low, high) with uniform bucket width;
 * samples outside the range land in saturating edge buckets.
 */
class Histogram
{
  public:
    Histogram() : Histogram("", 0.0, 1.0, 1) {}

    /**
     * @param name stat name
     * @param low inclusive lower bound of the tracked range
     * @param high exclusive upper bound
     * @param buckets number of uniform buckets (>= 1)
     */
    Histogram(std::string name, double low, double high,
              std::size_t buckets);

    void sample(double v, std::uint64_t weight = 1);
    void reset();

    /** Overwrites bucket contents (checkpoint/restore); the bucket
     *  count must match this histogram's construction. */
    void
    restore(std::vector<std::uint64_t> buckets, std::uint64_t count,
            double sum)
    {
        buckets_ = std::move(buckets);
        count_ = count;
        sum_ = sum;
    }

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    /**
     * Percentile estimate from the bucket CDF: the upper edge of the
     * first bucket whose cumulative count reaches ceil(p * count).
     * p == 0 returns the lower edge of the first non-empty bucket
     * (the minimum's bucket), so percentile(0)..percentile(1) always
     * brackets the observed samples.  0 when empty.
     */
    double percentile(double p) const;
    const std::vector<std::uint64_t> &buckets() const { return buckets_; }
    double bucketLow(std::size_t i) const;
    double low() const { return low_; }
    double high() const { return high_; }
    double bucketWidth() const { return width_; }
    const std::string &name() const { return name_; }

  private:
    std::string name_;
    double low_;
    double high_;
    double width_;
    std::vector<std::uint64_t> buckets_;
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
};

/**
 * A named collection of statistics with hierarchical dump support.
 * Components own their stats and register pointers here; the group
 * never owns the stats.
 */
class StatGroup
{
  public:
    /** Lazily evaluated scalar (bridges plain struct fields and
     *  derived metrics into the registry without a Counter object). */
    using ValueFn = std::function<double()>;
    struct NamedValue
    {
        std::string name;
        ValueFn fn;
    };

    explicit StatGroup(std::string name = "") : name_(std::move(name)) {}

    void add(const Counter *c) { counters_.push_back(c); }
    void add(const Accumulator *a) { accums_.push_back(a); }
    void add(const Histogram *h) { histograms_.push_back(h); }
    void addChild(const StatGroup *g) { children_.push_back(g); }
    /** Registers a lazily evaluated scalar under `name`. */
    void
    addValue(std::string name, ValueFn fn)
    {
        values_.push_back({std::move(name), std::move(fn)});
    }

    /** Writes "group.stat value" lines for all registered stats. */
    void dump(std::ostream &os, const std::string &prefix = "") const;

    const std::string &name() const { return name_; }

    // --- traversal (used by telemetry exporters) ---
    const std::vector<const Counter *> &counters() const
    {
        return counters_;
    }
    const std::vector<const Accumulator *> &accumulators() const
    {
        return accums_;
    }
    const std::vector<const Histogram *> &histograms() const
    {
        return histograms_;
    }
    const std::vector<NamedValue> &values() const { return values_; }
    const std::vector<const StatGroup *> &children() const
    {
        return children_;
    }

  private:
    std::string name_;
    std::vector<const Counter *> counters_;
    std::vector<const Accumulator *> accums_;
    std::vector<const Histogram *> histograms_;
    std::vector<NamedValue> values_;
    std::vector<const StatGroup *> children_;
};

/** @return harmonic mean of positive values (0 if empty or any <= 0). */
double harmonicMean(const std::vector<double> &values);

/** @return arithmetic mean (0 if empty). */
double arithmeticMean(const std::vector<double> &values);

/** @return geometric mean of positive values (0 if empty or any <= 0). */
double geometricMean(const std::vector<double> &values);

} // namespace tenoc

#endif // TENOC_COMMON_STATS_HH
