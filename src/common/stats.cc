/**
 * @file
 * Statistics package implementation.
 */

#include "common/stats.hh"

#include "common/log.hh"

#include <algorithm>
#include <cmath>

namespace tenoc
{

void
Accumulator::sample(double v)
{
    if (count_ == 0) {
        min_ = v;
        max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    sum_ += v;
    ++count_;
}

void
Accumulator::reset()
{
    count_ = 0;
    sum_ = 0.0;
    min_ = 0.0;
    max_ = 0.0;
}

Histogram::Histogram(std::string name, double low, double high,
                     std::size_t buckets)
    : name_(std::move(name)), low_(low), high_(high),
      width_((high - low) / static_cast<double>(buckets == 0 ? 1 : buckets)),
      buckets_(std::max<std::size_t>(buckets, 1), 0)
{
    tenoc_assert(high > low, "histogram range must be non-empty");
}

void
Histogram::sample(double v, std::uint64_t weight)
{
    std::size_t idx;
    if (v < low_) {
        idx = 0;
    } else if (v >= high_) {
        idx = buckets_.size() - 1;
    } else {
        idx = static_cast<std::size_t>((v - low_) / width_);
        idx = std::min(idx, buckets_.size() - 1);
    }
    buckets_[idx] += weight;
    count_ += weight;
    sum_ += v * static_cast<double>(weight);
}

void
Histogram::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    count_ = 0;
    sum_ = 0.0;
}

double
Histogram::percentile(double p) const
{
    if (count_ == 0)
        return 0.0;
    p = std::clamp(p, 0.0, 1.0);
    if (p == 0.0) {
        // Lower edge of the minimum's bucket, not bucket 0's upper
        // edge (which over-reported whenever bucket 0 was empty).
        for (std::size_t i = 0; i < buckets_.size(); ++i) {
            if (buckets_[i] != 0)
                return bucketLow(i);
        }
        return low_;
    }
    // Smallest bucket upper edge whose cumulative count reaches
    // ceil(p * count).  Truncation here used to yield target 0 for
    // small p, short-circuiting to bucket 0 even when it was empty.
    const auto target = std::min<std::uint64_t>(
        count_,
        static_cast<std::uint64_t>(
            std::ceil(p * static_cast<double>(count_))));
    std::uint64_t running = 0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        running += buckets_[i];
        if (running >= target)
            return bucketLow(i) + width_;
    }
    return high_;
}

double
Histogram::bucketLow(std::size_t i) const
{
    return low_ + width_ * static_cast<double>(i);
}

void
StatGroup::dump(std::ostream &os, const std::string &prefix) const
{
    const std::string base =
        prefix.empty() ? name_ : (name_.empty() ? prefix
                                                : prefix + "." + name_);
    auto emit = [&](const std::string &stat, auto value) {
        os << (base.empty() ? stat : base + "." + stat) << " " << value
           << "\n";
    };
    for (const auto *c : counters_)
        emit(c->name(), c->value());
    for (const auto *a : accums_) {
        emit(a->name() + ".mean", a->mean());
        emit(a->name() + ".count", a->count());
    }
    for (const auto *h : histograms_) {
        emit(h->name() + ".mean", h->mean());
        emit(h->name() + ".count", h->count());
    }
    for (const auto &v : values_)
        emit(v.name, v.fn());
    for (const auto *g : children_)
        g->dump(os, base);
}

double
harmonicMean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double denom = 0.0;
    for (double v : values) {
        if (v <= 0.0)
            return 0.0;
        denom += 1.0 / v;
    }
    return static_cast<double>(values.size()) / denom;
}

double
arithmeticMean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

double
geometricMean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : values) {
        if (v <= 0.0)
            return 0.0;
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

} // namespace tenoc
