/**
 * @file
 * xoshiro256** implementation.
 */

#include "common/rng.hh"

#include "common/log.hh"

namespace tenoc
{

namespace
{

/** SplitMix64 step used for seed expansion. */
std::uint64_t
splitMix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed_value)
{
    seed(seed_value);
}

void
Rng::seed(std::uint64_t seed_value)
{
    std::uint64_t x = seed_value;
    for (auto &s : s_)
        s = splitMix64(x);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;

    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

std::uint64_t
Rng::nextRange(std::uint64_t bound)
{
    tenoc_assert(bound > 0, "nextRange bound must be positive");
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
        const std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

double
Rng::nextDouble()
{
    // 53 high-quality bits -> [0, 1).
    return (next() >> 11) * (1.0 / 9007199254740992.0);
}

bool
Rng::nextBool(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return nextDouble() < p;
}

std::uint64_t
deriveStreamSeed(std::uint64_t global_seed, std::uint64_t component_id)
{
    // Whiten the global seed first so trivially related globals
    // (seed, seed+1, ...) cannot collide with component-id offsets.
    std::uint64_t x = global_seed;
    const std::uint64_t whitened = splitMix64(x);
    x = whitened ^ component_id;
    return splitMix64(x);
}

} // namespace tenoc
