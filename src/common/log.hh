/**
 * @file
 * gem5-style status/error reporting.
 *
 * panic():  a condition that indicates a simulator bug; aborts.
 * fatal():  a condition caused by the user (bad configuration); exits.
 * warn()/inform(): non-terminating status messages.
 */

#ifndef TENOC_COMMON_LOG_HH
#define TENOC_COMMON_LOG_HH

#include <cstdlib>
#include <sstream>
#include <string>

namespace tenoc
{

namespace detail
{

/** Formats the variadic message parts into one string. */
template <typename... Args>
std::string
formatMessage(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

/** Emits a log line and aborts (simulator bug). */
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);

/** Emits a log line and exits with status 1 (user error). */
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);

/** Emits a warning line on stderr. */
void warnImpl(const std::string &msg);

/** Emits an informational line on stderr. */
void informImpl(const std::string &msg);

} // namespace detail

/** Global verbosity switch; when false, inform() is suppressed. */
void setVerbose(bool verbose);

/** @return current verbosity. */
bool verbose();

/** Number of warn() calls so far (useful for tests). */
std::uint64_t warnCount();

template <typename... Args>
void
warn(Args &&...args)
{
    detail::warnImpl(detail::formatMessage(std::forward<Args>(args)...));
}

template <typename... Args>
void
inform(Args &&...args)
{
    detail::informImpl(detail::formatMessage(std::forward<Args>(args)...));
}

} // namespace tenoc

/** Abort with a message; use for internal invariant violations. */
#define tenoc_panic(...)                                                    \
    ::tenoc::detail::panicImpl(__FILE__, __LINE__,                          \
        ::tenoc::detail::formatMessage(__VA_ARGS__))

/** Exit with a message; use for invalid user configuration. */
#define tenoc_fatal(...)                                                    \
    ::tenoc::detail::fatalImpl(__FILE__, __LINE__,                          \
        ::tenoc::detail::formatMessage(__VA_ARGS__))

/** Assert an invariant with a formatted message on failure. */
#define tenoc_assert(cond, ...)                                             \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::tenoc::detail::panicImpl(__FILE__, __LINE__,                  \
                ::tenoc::detail::formatMessage(                             \
                    "assertion failed: " #cond " ", __VA_ARGS__));          \
        }                                                                   \
    } while (0)

#endif // TENOC_COMMON_LOG_HH
