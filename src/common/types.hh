/**
 * @file
 * Fundamental type aliases and small enums shared across all tenoc
 * subsystems.
 */

#ifndef TENOC_COMMON_TYPES_HH
#define TENOC_COMMON_TYPES_HH

#include <cstdint>
#include <limits>
#include <string>

namespace tenoc
{

/** Simulation time in cycles of some clock domain. */
using Cycle = std::uint64_t;

/** Simulation time in picoseconds (global wall clock across domains). */
using Picoseconds = std::uint64_t;

/** Flat node identifier in a network (0 .. numNodes-1). */
using NodeId = std::uint32_t;

/** Byte address in the simulated global memory space. */
using Addr = std::uint64_t;

/** Invalid/unset node marker. */
inline constexpr NodeId INVALID_NODE = std::numeric_limits<NodeId>::max();

/** Invalid/unset cycle marker. */
inline constexpr Cycle INVALID_CYCLE = std::numeric_limits<Cycle>::max();

/** Memory request kinds carried over the NoC (Sec. III-D of the paper). */
enum class MemOp : std::uint8_t
{
    READ_REQUEST,   ///< small (8 B) core -> MC packet
    WRITE_REQUEST,  ///< large (64 B data) core -> MC packet
    READ_REPLY,     ///< large (64 B data) MC -> core packet
    WRITE_ACK       ///< small MC -> core packet
};

/** @return true for the core->MC direction (travels the request net). */
constexpr bool
isRequest(MemOp op)
{
    return op == MemOp::READ_REQUEST || op == MemOp::WRITE_REQUEST;
}

/** @return human-readable name of a MemOp. */
const char *memOpName(MemOp op);

/** Benchmark traffic classification used throughout the paper (Fig. 7). */
enum class TrafficClass : std::uint8_t
{
    LL,  ///< low perfect-NoC speedup, light traffic
    LH,  ///< low speedup, heavy traffic
    HH   ///< high speedup, heavy traffic
};

/** @return "LL"/"LH"/"HH". */
const char *trafficClassName(TrafficClass c);

} // namespace tenoc

#endif // TENOC_COMMON_TYPES_HH
