/**
 * @file
 * Deterministic intra-simulation parallelism.
 *
 * A single persistent worker pool (one per process, grown lazily)
 * executes small data-parallel regions inside one simulation: the
 * phases of MeshNetwork::cycle, the two slices of DoubleNetwork, and
 * Chip's per-core-clock SIMT core sweep.  Determinism comes from
 * *static ascending-index sharding*: parallelFor(n, fn) partitions
 * work into contiguous index ranges fixed by (n, thread count), each
 * shard mutates only its own components, and everything shared is
 * either phase-separated (a barrier between producer and consumer
 * phases) or accumulated per shard and folded back in index order.
 * Results are therefore bit-identical for every thread count — which
 * also makes the opportunistic serial fallback (pool busy, nested
 * call, tracer attached) always safe.
 *
 * Thread budget: TENOC_CYCLE_THREADS picks the per-simulation cycle
 * thread count (default 1 = today's serial execution, byte-for-byte).
 * When bench/sweep.hh fans whole simulations out over TENOC_THREADS
 * workers it installs a cycle-thread cap so the two levels split one
 * budget instead of multiplying (setCycleThreadCap).
 */

#ifndef TENOC_COMMON_PARALLEL_HH
#define TENOC_COMMON_PARALLEL_HH

#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <utility>

namespace tenoc::parallel
{

/** Hard ceiling on cycle threads (and thus worker-slot indices). */
constexpr unsigned MAX_CYCLE_THREADS = 16;

/**
 * Alignment/padding granule for per-worker scratch that different
 * workers write concurrently (deferred-mark buffers, per-shard
 * counters).  Two workers mutating fields on the same line serialize
 * on cache-coherence traffic even though they never touch the same
 * byte; padding each worker's slot to this size keeps them apart.
 * 64 bytes covers x86; 128 also covers adjacent-line prefetch pairs
 * and arm64 big cores.
 */
constexpr std::size_t CACHE_LINE = 128;

/**
 * A 64-bit counter padded to its own cache line.  Use one per worker
 * for tallies each worker increments privately during a phase (e.g.
 * per-shard switch-traversal counts) and the orchestrator folds at the
 * barrier; a bare uint64_t array would put several workers' counters
 * on one line.
 */
struct alignas(CACHE_LINE) PaddedU64
{
    std::uint64_t value = 0;
};

/**
 * Slot index of the calling thread inside a parallelFor region: the
 * orchestrating caller is slot 0, pool workers are 1..MAX-1.  Outside
 * a region (or on threads that never belonged to the pool) this is 0.
 * Per-slot scratch buffers (e.g. ActiveSet deferred marks) index with
 * this; size them with maxSlots().
 */
unsigned workerSlot();

/** Upper bound (exclusive) on workerSlot() values. */
constexpr unsigned
maxSlots()
{
    return MAX_CYCLE_THREADS;
}

/**
 * Installs a cap on resolveCycleThreads (0 = uncapped).  Used by
 * bench/sweep.hh to split the TENOC_THREADS budget between sweep
 * workers and per-simulation cycle pools.  @return the previous cap.
 */
unsigned setCycleThreadCap(unsigned cap);

/** Current cycle-thread cap (0 = uncapped). */
unsigned cycleThreadCap();

/**
 * Resolves a requested cycle-thread count: 0 means "use the
 * TENOC_CYCLE_THREADS environment variable" (default 1); the result is
 * clamped to [1, MAX_CYCLE_THREADS] and to the sweep cap.  Simulations
 * resolve once at construction so a run never changes shape mid-way.
 */
unsigned resolveCycleThreads(unsigned requested);

namespace detail
{

using TaskFn = void (*)(void *ctx, unsigned task);

/**
 * Runs fn(ctx, t) for t in [0, tasks) — task 0 on the caller, the
 * rest on pool workers (task index == worker slot).  Falls back to
 * running every task inline on the caller when the pool is already
 * busy (nested call or a concurrent region); by the determinism
 * contract above that produces identical results.  Exceptions from
 * any task are rethrown on the caller after all tasks finish.
 */
void run(unsigned tasks, TaskFn fn, void *ctx);

} // namespace detail

/**
 * Deterministic parallel-for over `tasks` static shards.  `fn` is
 * invoked as fn(task) for task in [0, tasks), each exactly once; the
 * caller runs task 0 and blocks until every task completes.
 */
template <typename F>
void
parallelFor(unsigned tasks, F &&fn)
{
    if (tasks <= 1) {
        if (tasks == 1)
            fn(0u);
        return;
    }
    using Fn = std::remove_reference_t<F>;
    auto thunk = [](void *ctx, unsigned task) {
        (*static_cast<Fn *>(ctx))(task);
    };
    detail::run(tasks, thunk, &fn);
}

/** Inclusive-exclusive bounds of shard `s` of [0, n) over S shards. */
constexpr std::pair<unsigned, unsigned>
shardRange(unsigned s, unsigned n, unsigned shards)
{
    const auto lo = static_cast<unsigned>(
        static_cast<std::size_t>(s) * n / shards);
    const auto hi = static_cast<unsigned>(
        static_cast<std::size_t>(s + 1) * n / shards);
    return {lo, hi};
}

} // namespace tenoc::parallel

#endif // TENOC_COMMON_PARALLEL_HH
