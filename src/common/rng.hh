/**
 * @file
 * Deterministic pseudo-random number generation for the simulators.
 *
 * All tenoc components draw randomness from an explicitly seeded Rng so
 * that every simulation is reproducible.  The generator is
 * xoshiro256** (Blackman & Vigna), which is fast and has excellent
 * statistical quality for simulation purposes.
 */

#ifndef TENOC_COMMON_RNG_HH
#define TENOC_COMMON_RNG_HH

#include <array>
#include <cstdint>
#include <vector>

namespace tenoc
{

/**
 * Seeded xoshiro256** pseudo-random number generator.
 */
class Rng
{
  public:
    /** Constructs a generator from a 64-bit seed (SplitMix64 expansion). */
    explicit Rng(std::uint64_t seed = 0x1badcafeULL);

    /** @return the next raw 64-bit value. */
    std::uint64_t next();

    /** @return uniform integer in [0, bound) ; bound must be > 0. */
    std::uint64_t nextRange(std::uint64_t bound);

    /** @return uniform double in [0, 1). */
    double nextDouble();

    /** @return true with probability p (clamped to [0,1]). */
    bool nextBool(double p);

    /** Picks a uniformly random element index from a non-empty vector. */
    template <typename T>
    const T &
    pick(const std::vector<T> &v)
    {
        return v[nextRange(v.size())];
    }

    /** Re-seeds the generator deterministically. */
    void seed(std::uint64_t seed);

    /** Raw xoshiro256** state (checkpoint/restore). */
    std::array<std::uint64_t, 4>
    state() const
    {
        return {s_[0], s_[1], s_[2], s_[3]};
    }

    /** Overwrites the generator state (checkpoint/restore). */
    void
    setState(const std::array<std::uint64_t, 4> &s)
    {
        for (int i = 0; i < 4; ++i)
            s_[i] = s[i];
    }

  private:
    std::uint64_t s_[4];
};

/**
 * Derives an independent per-component stream seed from a global seed
 * via SplitMix64: the global seed is whitened through one SplitMix64
 * step and the component id mixed through another, so component k's
 * stream depends only on (global seed, k).  Adding or removing a
 * component therefore never perturbs any other component's draws,
 * unlike handing every component one shared generator (where each
 * draw shifts everyone else's sequence).
 */
std::uint64_t deriveStreamSeed(std::uint64_t global_seed,
                               std::uint64_t component_id);

} // namespace tenoc

#endif // TENOC_COMMON_RNG_HH
