/**
 * @file
 * Implementation of the logging helpers.
 */

#include "common/log.hh"

#include "common/types.hh"

#include <atomic>
#include <cstdio>
#include <stdexcept>

namespace tenoc
{

namespace
{

std::atomic<bool> g_verbose{false};
std::atomic<std::uint64_t> g_warn_count{0};

} // namespace

void
setVerbose(bool verbose)
{
    g_verbose.store(verbose);
}

bool
verbose()
{
    return g_verbose.load();
}

std::uint64_t
warnCount()
{
    return g_warn_count.load();
}

namespace detail
{

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s\n  @ %s:%d\n", msg.c_str(), file, line);
    std::fflush(stderr);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s\n  @ %s:%d\n", msg.c_str(), file, line);
    std::fflush(stderr);
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    g_warn_count.fetch_add(1);
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    if (g_verbose.load())
        std::fprintf(stderr, "info: %s\n", msg.c_str());
}

} // namespace detail

const char *
memOpName(MemOp op)
{
    switch (op) {
      case MemOp::READ_REQUEST: return "READ_REQUEST";
      case MemOp::WRITE_REQUEST: return "WRITE_REQUEST";
      case MemOp::READ_REPLY: return "READ_REPLY";
      case MemOp::WRITE_ACK: return "WRITE_ACK";
    }
    return "UNKNOWN";
}

const char *
trafficClassName(TrafficClass c)
{
    switch (c) {
      case TrafficClass::LL: return "LL";
      case TrafficClass::LH: return "LH";
      case TrafficClass::HH: return "HH";
    }
    return "??";
}

} // namespace tenoc
