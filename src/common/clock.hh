/**
 * @file
 * Multi-clock-domain scheduler.
 *
 * The paper's closed-loop simulations (Table II) run three clock
 * domains: compute cores at 1296 MHz, interconnect + L2 at 602 MHz, and
 * the DRAM command clock at 1107 MHz.  ClockDomainSet advances a global
 * picosecond wall clock to the next edge among all domains and reports
 * which domains tick at that instant, exactly like GPGPU-Sim's
 * multi-clock main loop.
 */

#ifndef TENOC_COMMON_CLOCK_HH
#define TENOC_COMMON_CLOCK_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace tenoc
{

/** One clock domain: a name, a frequency, and a cycle counter. */
class ClockDomain
{
  public:
    /**
     * @param name domain name for reporting
     * @param freq_mhz frequency in MHz (> 0)
     */
    ClockDomain(std::string name, double freq_mhz);

    const std::string &name() const { return name_; }
    double freqMhz() const { return freq_mhz_; }

    /** Period in picoseconds (rounded to nearest ps). */
    Picoseconds periodPs() const { return period_ps_; }

    /** Cycles elapsed in this domain. */
    Cycle cycles() const { return cycles_; }

    /** Absolute time of the next edge, in ps. */
    Picoseconds nextEdgePs() const { return next_edge_ps_; }

    /** Advances past one edge (internal use by ClockDomainSet). */
    void tick();

    /** Resets the cycle counter and edge schedule. */
    void reset();

    /** Overwrites counter and edge schedule (checkpoint/restore). */
    void
    restore(Cycle cycles, Picoseconds next_edge_ps)
    {
        cycles_ = cycles;
        next_edge_ps_ = next_edge_ps;
    }

  private:
    std::string name_;
    double freq_mhz_;
    Picoseconds period_ps_;
    Cycle cycles_ = 0;
    Picoseconds next_edge_ps_;
};

/**
 * A set of clock domains sharing one picosecond wall clock.
 *
 * Usage:
 * @code
 *   ClockDomainSet clocks;
 *   auto core = clocks.addDomain("core", 1296.0);
 *   auto icnt = clocks.addDomain("icnt", 602.0);
 *   while (...) {
 *       auto ticked = clocks.advance();
 *       if (ticked[icnt]) network.cycle();
 *       if (ticked[core]) for (auto &c : cores) c.cycle();
 *   }
 * @endcode
 *
 * When several domains share an edge instant their tick flags are all
 * set in the same advance() call; callers choose the intra-instant
 * order by the order they inspect the flags.
 */
class ClockDomainSet
{
  public:
    using DomainId = std::size_t;

    /** Adds a domain; @return its id. */
    DomainId addDomain(const std::string &name, double freq_mhz);

    /** Number of domains. */
    std::size_t size() const { return domains_.size(); }

    /**
     * Advances wall time to the earliest pending edge and ticks every
     * domain whose edge falls at that instant.
     * @return per-domain flags: true if that domain ticked.
     */
    const std::vector<bool> &advance();

    /** Current wall time (time of the most recent edge). */
    Picoseconds nowPs() const { return now_ps_; }

    const ClockDomain &domain(DomainId id) const { return domains_[id]; }

    /** Resets all domains and wall time. */
    void reset();

    /** Overwrites one domain's state (checkpoint/restore). */
    void
    restoreDomain(DomainId id, Cycle cycles, Picoseconds next_edge_ps)
    {
        domains_[id].restore(cycles, next_edge_ps);
    }

    /** Overwrites wall time (checkpoint/restore). */
    void setNowPs(Picoseconds now_ps) { now_ps_ = now_ps; }

  private:
    std::vector<ClockDomain> domains_;
    std::vector<bool> ticked_;
    Picoseconds now_ps_ = 0;
};

} // namespace tenoc

#endif // TENOC_COMMON_CLOCK_HH
