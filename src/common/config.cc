/**
 * @file
 * Config implementation.
 */

#include "common/config.hh"

#include "common/log.hh"
#include "common/snapshot.hh"

#include <algorithm>
#include <cctype>
#include <sstream>

namespace tenoc
{

namespace
{

std::string
trim(const std::string &s)
{
    std::size_t b = 0;
    std::size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

} // namespace

void
Config::set(const std::string &key, const std::string &value)
{
    values_[key] = value;
}

void
Config::set(const std::string &key, const char *value)
{
    values_[key] = value;
}

void
Config::set(const std::string &key, bool value)
{
    values_[key] = value ? "true" : "false";
}

void
Config::set(const std::string &key, std::int64_t value)
{
    values_[key] = std::to_string(value);
}

void
Config::set(const std::string &key, std::uint64_t value)
{
    values_[key] = std::to_string(value);
}

void
Config::set(const std::string &key, int value)
{
    values_[key] = std::to_string(value);
}

void
Config::set(const std::string &key, unsigned value)
{
    values_[key] = std::to_string(value);
}

void
Config::set(const std::string &key, double value)
{
    std::ostringstream os;
    os << value;
    values_[key] = os.str();
}

bool
Config::has(const std::string &key) const
{
    return values_.count(key) != 0;
}

std::string
Config::getString(const std::string &key, const std::string &def) const
{
    auto it = values_.find(key);
    return it == values_.end() ? def : it->second;
}

bool
Config::getBool(const std::string &key, bool def) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return def;
    std::string v = it->second;
    std::transform(v.begin(), v.end(), v.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    if (v == "true" || v == "1" || v == "yes" || v == "on")
        return true;
    if (v == "false" || v == "0" || v == "no" || v == "off")
        return false;
    tenoc_fatal("config key '", key, "' has non-boolean value '",
                it->second, "'");
}

std::int64_t
Config::getInt(const std::string &key, std::int64_t def) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return def;
    try {
        std::size_t pos = 0;
        std::int64_t v = std::stoll(it->second, &pos, 0);
        if (pos != it->second.size())
            throw std::invalid_argument("trailing junk");
        return v;
    } catch (const std::exception &) {
        tenoc_fatal("config key '", key, "' has non-integer value '",
                    it->second, "'");
    }
}

std::uint64_t
Config::getUint(const std::string &key, std::uint64_t def) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return def;
    try {
        std::size_t pos = 0;
        std::uint64_t v = std::stoull(it->second, &pos, 0);
        if (pos != it->second.size())
            throw std::invalid_argument("trailing junk");
        return v;
    } catch (const std::exception &) {
        tenoc_fatal("config key '", key, "' has non-integer value '",
                    it->second, "'");
    }
}

double
Config::getDouble(const std::string &key, double def) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return def;
    try {
        std::size_t pos = 0;
        double v = std::stod(it->second, &pos);
        if (pos != it->second.size())
            throw std::invalid_argument("trailing junk");
        return v;
    } catch (const std::exception &) {
        tenoc_fatal("config key '", key, "' has non-numeric value '",
                    it->second, "'");
    }
}

std::size_t
Config::parseText(const std::string &text)
{
    std::istringstream is(text);
    std::string line;
    std::size_t n = 0;
    std::size_t line_no = 0;
    while (std::getline(is, line)) {
        ++line_no;
        const auto hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        line = trim(line);
        if (line.empty())
            continue;
        const auto eq = line.find('=');
        if (eq == std::string::npos)
            tenoc_fatal("config parse error at line ", line_no,
                        ": missing '=' in '", line, "'");
        const std::string key = trim(line.substr(0, eq));
        const std::string value = trim(line.substr(eq + 1));
        if (key.empty())
            tenoc_fatal("config parse error at line ", line_no,
                        ": empty key");
        set(key, value);
        ++n;
    }
    return n;
}

void
Config::merge(const Config &other)
{
    for (const auto &[k, v] : other.values_)
        values_[k] = v;
}

std::vector<std::string>
Config::keys() const
{
    std::vector<std::string> out;
    out.reserve(values_.size());
    for (const auto &[k, v] : values_)
        out.push_back(k);
    return out;
}

std::string
Config::toText() const
{
    std::ostringstream os;
    for (const auto &[k, v] : values_)
        os << k << " = " << v << "\n";
    return os.str();
}

std::string
Config::canonicalText() const
{
    // values_ is a std::map, so toText() already emits keys sorted;
    // appending the simulator version makes the hash reject results
    // produced by a build with different model behaviour.
    return toText() + "# simulator = " + simulatorVersion() + "\n";
}

std::uint64_t
Config::canonicalHash() const
{
    const std::string text = canonicalText();
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const unsigned char c : text) {
        h ^= c;
        h *= 0x100000001b3ULL;
    }
    return h;
}

std::string
Config::canonicalHashHex() const
{
    static const char digits[] = "0123456789abcdef";
    const std::uint64_t h = canonicalHash();
    std::string out(16, '0');
    for (int i = 0; i < 16; ++i)
        out[15 - i] = digits[(h >> (4 * i)) & 0xf];
    return out;
}

} // namespace tenoc
