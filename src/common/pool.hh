/**
 * @file
 * Freelist object pools for hot-path allocation.
 *
 * FreeListPool hands out raw objects from chunked storage and recycles
 * them through a freelist, so steady-state simulation performs no heap
 * allocation per object.  It is deliberately NOT thread-safe: pools
 * are accessed through thread_local instances and an object's
 * refcount is only ever touched by one thread at a time.  Two regimes
 * uphold that: each parallel-sweep worker (bench/sweep.hh) owns its
 * simulations end to end, and inside one simulation the phase-
 * parallel cycle engine (common/parallel.hh) confines each packet to
 * one shard per phase and replays final releases on the pool-owning
 * caller thread.  An object allocated from one thread's pool must
 * never be *freed* on another.
 */

#ifndef TENOC_COMMON_POOL_HH
#define TENOC_COMMON_POOL_HH

#include <cstddef>
#include <memory>
#include <unordered_set>
#include <vector>

#include "common/log.hh"

namespace tenoc
{

/**
 * Chunked freelist pool.  allocate() returns an object in an
 * unspecified state (freshly default-constructed for new chunks,
 * last-released state for recycled ones); callers reset fields
 * themselves.  release() must only be called with pointers obtained
 * from the same pool.
 *
 * In validate mode (setValidate) the pool mirrors the freelist in a
 * hash set and makes releasing an already-free object a hard error
 * instead of silently corrupting the freelist (the same object would
 * be handed out twice and aliased).  Off by default: the hot path pays
 * only one branch.
 */
template <typename T>
class FreeListPool
{
  public:
    explicit FreeListPool(std::size_t chunk_objects = 256)
        : chunk_objects_(chunk_objects ? chunk_objects : 1)
    {}

    FreeListPool(const FreeListPool &) = delete;
    FreeListPool &operator=(const FreeListPool &) = delete;

    /** Takes an object from the freelist, growing storage if empty. */
    T *
    allocate()
    {
        if (bypass_) {
            ++bypass_live_;
            return new T();
        }
        if (free_.empty())
            grow();
        T *obj = free_.back();
        free_.pop_back();
        if (validate_)
            free_set_.erase(obj);
        return obj;
    }

    /** Returns an object to the freelist for reuse. */
    void
    release(T *obj)
    {
        if (bypass_) {
            tenoc_assert(bypass_live_ > 0,
                         "pool bypass release without allocation");
            --bypass_live_;
            delete obj;
            return;
        }
        if (validate_ && !free_set_.insert(obj).second) {
            tenoc_panic("pool double-release: object ", obj,
                        " is already on the freelist");
        }
        free_.push_back(obj);
    }

    /**
     * Routes allocate()/release() through plain new/delete instead of
     * the freelist.  The reference allocator for pooled-vs-heap
     * bit-identity checks (the recycled-state fast path must never be
     * behavioural).  May only be toggled while no objects are live:
     * an object must be released by the same mechanism that produced
     * it.
     */
    void
    setBypass(bool on)
    {
        if (on == bypass_)
            return;
        tenoc_assert(liveObjects() == 0 && bypass_live_ == 0,
                     "pool bypass toggled with live objects");
        bypass_ = on;
    }

    /** @return true while the heap-bypass reference mode is active. */
    bool bypassed() const { return bypass_; }

    /**
     * Enables (or disables) double-release checking.  Turning it on
     * mid-life rebuilds the shadow set from the current freelist.
     */
    void
    setValidate(bool on)
    {
        validate_ = on;
        free_set_.clear();
        if (on)
            free_set_.insert(free_.begin(), free_.end());
    }

    /** @return true while double-release checking is enabled. */
    bool validating() const { return validate_; }

    /** Objects currently live (allocated and not yet released). */
    std::size_t
    liveObjects() const
    {
        return chunks_.size() * chunk_objects_ - free_.size();
    }

    /** Total objects ever materialized (capacity high-water mark). */
    std::size_t capacity() const { return chunks_.size() * chunk_objects_; }

  private:
    void
    grow()
    {
        chunks_.push_back(std::make_unique<T[]>(chunk_objects_));
        T *base = chunks_.back().get();
        free_.reserve(free_.size() + chunk_objects_);
        for (std::size_t i = 0; i < chunk_objects_; ++i) {
            free_.push_back(base + i);
            if (validate_)
                free_set_.insert(base + i);
        }
    }

    std::size_t chunk_objects_;
    std::vector<std::unique_ptr<T[]>> chunks_;
    std::vector<T *> free_;
    bool bypass_ = false;
    /** Objects handed out by the bypass path and not yet released. */
    std::size_t bypass_live_ = 0;
    bool validate_ = false;
    /** Shadow of `free_` for double-release detection (validate mode). */
    std::unordered_set<T *> free_set_;
};

} // namespace tenoc

#endif // TENOC_COMMON_POOL_HH
