#include "common/snapshot.hh"

#include <cstring>
#include <fstream>

#include "common/log.hh"
#include "common/stats.hh"

namespace tenoc
{

namespace
{

constexpr std::uint32_t SNAPSHOT_MAGIC = 0x544e4f43u; // "CONT" LE: TNOC

} // namespace

const char *
simulatorVersion()
{
    // Major.minor of the simulator's serialized-state contract; bumped
    // together with SNAPSHOT_FORMAT_VERSION or whenever a model change
    // alters simulation results for a fixed config.
    return "tenoc-6.0";
}

void
SnapshotWriter::u32(std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
SnapshotWriter::u64(std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
SnapshotWriter::f64(double v)
{
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
}

void
SnapshotWriter::str(const std::string &s)
{
    u64(s.size());
    buf_.insert(buf_.end(), s.begin(), s.end());
}

void
SnapshotWriter::tag(const char (&name)[5])
{
    for (int i = 0; i < 4; ++i)
        buf_.push_back(static_cast<std::uint8_t>(name[i]));
}

std::uint64_t
SnapshotWriter::refId(const void *p, bool *first)
{
    auto [it, inserted] = refs_.emplace(p, refs_.size());
    *first = inserted;
    return it->second;
}

std::uint8_t
SnapshotReader::u8()
{
    tenoc_assert(pos_ < buf_.size(), "snapshot underrun at byte ", pos_);
    return buf_[pos_++];
}

std::uint32_t
SnapshotReader::u32()
{
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(u8()) << (8 * i);
    return v;
}

std::uint64_t
SnapshotReader::u64()
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(u8()) << (8 * i);
    return v;
}

double
SnapshotReader::f64()
{
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
}

std::string
SnapshotReader::str()
{
    const std::uint64_t n = u64();
    tenoc_assert(pos_ + n <= buf_.size(),
                 "snapshot string overruns blob (len ", n, ")");
    std::string s(buf_.begin() + static_cast<std::ptrdiff_t>(pos_),
                  buf_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return s;
}

void
SnapshotReader::tag(const char (&name)[5])
{
    char got[5] = {0, 0, 0, 0, 0};
    for (int i = 0; i < 4; ++i)
        got[i] = static_cast<char>(u8());
    tenoc_assert(std::memcmp(got, name, 4) == 0,
                 "snapshot section mismatch: expected '", name, "' got '",
                 got, "' at byte ", pos_ - 4);
}

void *
SnapshotReader::ref(std::uint64_t id) const
{
    tenoc_assert(id < refs_.size(), "unresolved snapshot ref ", id);
    return refs_[id];
}

void
SnapshotReader::setRef(std::uint64_t id, void *obj)
{
    if (id >= refs_.size())
        refs_.resize(id + 1, nullptr);
    tenoc_assert(refs_[id] == nullptr, "duplicate snapshot ref ", id);
    refs_[id] = obj;
}

std::vector<std::uint8_t>
sealSnapshot(const SnapshotWriter &body)
{
    SnapshotWriter header;
    header.u32(SNAPSHOT_MAGIC);
    header.u32(SNAPSHOT_FORMAT_VERSION);
    header.str(simulatorVersion());
    header.u64(body.data().size());
    std::vector<std::uint8_t> blob = header.data();
    blob.insert(blob.end(), body.data().begin(), body.data().end());
    return blob;
}

bool
openSnapshot(std::vector<std::uint8_t> blob, SnapshotReader &out,
             std::string *error)
{
    const auto fail = [&](const std::string &msg) {
        if (error)
            *error = msg;
        return false;
    };
    // Parse the header by hand so a truncated or foreign file yields a
    // diagnosable error instead of the reader's underrun panic.
    std::size_t pos = 0;
    const auto readU32 = [&](std::uint32_t &v) {
        if (pos + 4 > blob.size())
            return false;
        v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(blob[pos++]) << (8 * i);
        return true;
    };
    const auto readU64 = [&](std::uint64_t &v) {
        if (pos + 8 > blob.size())
            return false;
        v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(blob[pos++]) << (8 * i);
        return true;
    };
    std::uint32_t magic = 0, format = 0;
    if (!readU32(magic) || magic != SNAPSHOT_MAGIC)
        return fail("not a tenoc snapshot (bad magic)");
    if (!readU32(format))
        return fail("truncated snapshot header");
    if (format != SNAPSHOT_FORMAT_VERSION)
        return fail("snapshot format version " + std::to_string(format) +
                    " incompatible with this build (expects " +
                    std::to_string(SNAPSHOT_FORMAT_VERSION) + ")");
    std::uint64_t ver_len = 0;
    if (!readU64(ver_len) || pos + ver_len > blob.size())
        return fail("truncated snapshot header");
    const std::string version(
        blob.begin() + static_cast<std::ptrdiff_t>(pos),
        blob.begin() + static_cast<std::ptrdiff_t>(pos + ver_len));
    pos += ver_len;
    if (version != simulatorVersion())
        return fail("snapshot written by simulator version '" + version +
                    "', this build is '" + simulatorVersion() + "'");
    std::uint64_t body_len = 0;
    if (!readU64(body_len) || pos + body_len != blob.size())
        return fail("snapshot body length mismatch");
    out = SnapshotReader(std::vector<std::uint8_t>(
        blob.begin() + static_cast<std::ptrdiff_t>(pos), blob.end()));
    return true;
}

bool
saveSnapshotFile(const std::string &path, const SnapshotWriter &body,
                 std::string *error)
{
    const std::vector<std::uint8_t> blob = sealSnapshot(body);
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    if (!os) {
        if (error)
            *error = "cannot open '" + path + "' for writing";
        return false;
    }
    os.write(reinterpret_cast<const char *>(blob.data()),
             static_cast<std::streamsize>(blob.size()));
    os.flush();
    if (!os) {
        if (error)
            *error = "short write to '" + path + "'";
        return false;
    }
    return true;
}

bool
loadSnapshotFile(const std::string &path, SnapshotReader &out,
                 std::string *error)
{
    std::ifstream is(path, std::ios::binary);
    if (!is) {
        if (error)
            *error = "cannot open '" + path + "'";
        return false;
    }
    std::vector<std::uint8_t> blob(
        (std::istreambuf_iterator<char>(is)),
        std::istreambuf_iterator<char>());
    return openSnapshot(std::move(blob), out, error);
}

void
saveStat(SnapshotWriter &w, const Counter &c)
{
    w.u64(c.value());
}

void
restoreStat(SnapshotReader &r, Counter &c)
{
    c.restore(r.u64());
}

void
saveStat(SnapshotWriter &w, const Accumulator &a)
{
    w.u64(a.count());
    w.f64(a.sum());
    w.f64(a.min());
    w.f64(a.max());
}

void
restoreStat(SnapshotReader &r, Accumulator &a)
{
    const std::uint64_t count = r.u64();
    const double sum = r.f64();
    const double min = r.f64();
    const double max = r.f64();
    a.restore(count, sum, min, max);
}

void
saveStat(SnapshotWriter &w, const Histogram &h)
{
    saveU64Vector(w, h.buckets());
    w.u64(h.count());
    w.f64(h.sum());
}

void
restoreStat(SnapshotReader &r, Histogram &h)
{
    std::vector<std::uint64_t> buckets(h.buckets().size());
    restoreU64Vector(r, buckets);
    const std::uint64_t count = r.u64();
    const double sum = r.f64();
    h.restore(std::move(buckets), count, sum);
}

void
saveU64Vector(SnapshotWriter &w, const std::vector<std::uint64_t> &v)
{
    w.u64(v.size());
    for (const std::uint64_t x : v)
        w.u64(x);
}

void
restoreU64Vector(SnapshotReader &r, std::vector<std::uint64_t> &v)
{
    const std::uint64_t n = r.u64();
    tenoc_assert(n == v.size(), "vector length mismatch in snapshot");
    for (std::uint64_t &x : v)
        x = r.u64();
}

} // namespace tenoc
