/**
 * @file
 * Persistent worker pool backing tenoc::parallel::parallelFor.
 *
 * Dispatch protocol: the task function, context and task count are
 * published by a release-store of a packed (generation, tasks) word;
 * workers acquire-load it, so reading the task fields is race-free.
 * Workers spin briefly on the generation (cycle phases are short) and
 * fall back to a condition variable, keeping idle simulations cheap.
 * The caller spins on an outstanding-task counter; every worker
 * release-decrements it when its task finishes, which also publishes
 * the worker's writes (shard state, deferred-mark buffers) to the
 * caller before the barrier returns.
 */

#include "common/parallel.hh"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "common/log.hh"

namespace tenoc::parallel
{

namespace
{

thread_local unsigned tls_slot = 0;
thread_local bool tls_in_worker = false;

std::atomic<unsigned> cycle_thread_cap{0};

inline void
cpuRelax()
{
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#elif defined(__aarch64__) || defined(__arm__)
    asm volatile("yield" ::: "memory");
#else
    std::this_thread::yield();
#endif
}

class WorkerPool
{
  public:
    static WorkerPool &
    instance()
    {
        static WorkerPool pool;
        return pool;
    }

    void
    run(unsigned tasks, detail::TaskFn fn, void *ctx)
    {
        tenoc_assert(tasks <= MAX_CYCLE_THREADS,
                     "parallelFor task count ", tasks,
                     " exceeds MAX_CYCLE_THREADS");
        // Nested or concurrent region: run inline on the caller.  The
        // static-sharding determinism contract makes this bit-exact.
        if (tls_in_worker || busy_.exchange(true, std::memory_order_acquire)) {
            for (unsigned t = 0; t < tasks; ++t)
                fn(ctx, t);
            return;
        }
        growWorkers(tasks - 1);

        fn_ = fn;
        ctx_ = ctx;
        pending_.store(tasks - 1, std::memory_order_relaxed);
        // Publish (fn_, ctx_) and the participation set in one packed
        // release-store; workers read the task count from the same
        // load that wakes them, so a straggler from a previous
        // generation can never adopt this one's task fields.
        const std::uint64_t gen =
            (packed_.load(std::memory_order_relaxed) >> 16) + 1;
        packed_.store((gen << 16) | tasks, std::memory_order_release);
        {
            // Pairs with the re-check inside the workers' cv wait so a
            // worker that just decided to sleep cannot miss the wake.
            std::lock_guard<std::mutex> lk(mu_);
        }
        cv_.notify_all();

        std::exception_ptr caller_error;
        try {
            fn(ctx, 0);
        } catch (...) {
            caller_error = std::current_exception();
        }
        // Barrier: wait for every worker task.  Spin first (phases are
        // microseconds), then yield so an oversubscribed machine makes
        // progress.
        unsigned spins = 0;
        while (pending_.load(std::memory_order_acquire) != 0) {
            if (++spins > 4096) {
                std::this_thread::yield();
            } else {
                cpuRelax();
            }
        }
        std::exception_ptr worker_error;
        {
            std::lock_guard<std::mutex> lk(mu_);
            worker_error = std::exchange(error_, nullptr);
        }
        busy_.store(false, std::memory_order_release);
        if (caller_error)
            std::rethrow_exception(caller_error);
        if (worker_error)
            std::rethrow_exception(worker_error);
    }

  private:
    WorkerPool() = default;

    ~WorkerPool()
    {
        stop_.store(true, std::memory_order_release);
        {
            std::lock_guard<std::mutex> lk(mu_);
        }
        cv_.notify_all();
        for (auto &t : threads_)
            t.join();
    }

    void
    growWorkers(unsigned needed)
    {
        // Capture the pre-dispatch generation for new workers: a
        // worker that sampled the generation itself could race the
        // imminent release-store, see the new generation as "already
        // seen", and skip the very task it was spawned for.
        const std::uint64_t gen =
            packed_.load(std::memory_order_relaxed) >> 16;
        while (threads_.size() < needed) {
            const auto slot = static_cast<unsigned>(threads_.size()) + 1;
            threads_.emplace_back(
                [this, slot, gen] { workerMain(slot, gen); });
        }
    }

    void
    workerMain(unsigned slot, std::uint64_t seen_gen)
    {
        tls_slot = slot;
        tls_in_worker = true;
        while (!stop_.load(std::memory_order_acquire)) {
            std::uint64_t packed = packed_.load(std::memory_order_acquire);
            if ((packed >> 16) == seen_gen) {
                unsigned spins = 0;
                while ((packed = packed_.load(std::memory_order_acquire),
                        (packed >> 16) == seen_gen) &&
                       !stop_.load(std::memory_order_acquire)) {
                    if (++spins > 2048) {
                        std::unique_lock<std::mutex> lk(mu_);
                        cv_.wait(lk, [&] {
                            return stop_.load(std::memory_order_acquire) ||
                                (packed_.load(std::memory_order_acquire) >>
                                 16) != seen_gen;
                        });
                        packed = packed_.load(std::memory_order_acquire);
                        break;
                    }
                    cpuRelax();
                }
                if (stop_.load(std::memory_order_acquire))
                    return;
            }
            seen_gen = packed >> 16;
            const auto tasks = static_cast<unsigned>(packed & 0xffff);
            if (slot >= tasks)
                continue; // not part of this region
            try {
                fn_(ctx_, slot);
            } catch (...) {
                std::lock_guard<std::mutex> lk(mu_);
                if (!error_)
                    error_ = std::current_exception();
            }
            pending_.fetch_sub(1, std::memory_order_release);
        }
    }

    std::vector<std::thread> threads_;
    std::mutex mu_;
    std::condition_variable cv_;
    std::atomic<bool> busy_{false};
    std::atomic<bool> stop_{false};
    /** (generation << 16) | tasks — see run(). */
    std::atomic<std::uint64_t> packed_{0};
    std::atomic<unsigned> pending_{0};
    detail::TaskFn fn_ = nullptr;
    void *ctx_ = nullptr;
    std::exception_ptr error_;
};

} // namespace

unsigned
workerSlot()
{
    return tls_slot;
}

unsigned
setCycleThreadCap(unsigned cap)
{
    return cycle_thread_cap.exchange(cap, std::memory_order_acq_rel);
}

unsigned
cycleThreadCap()
{
    return cycle_thread_cap.load(std::memory_order_acquire);
}

unsigned
resolveCycleThreads(unsigned requested)
{
    unsigned t = requested;
    if (t == 0) {
        t = 1;
        if (const char *env = std::getenv("TENOC_CYCLE_THREADS")) {
            char *end = nullptr;
            const long v = std::strtol(env, &end, 10);
            if (end == env || *end != '\0' || v < 1)
                warn("ignoring invalid TENOC_CYCLE_THREADS='", env,
                     "' (want a positive integer)");
            else
                t = static_cast<unsigned>(v);
        }
    }
    if (t > MAX_CYCLE_THREADS)
        t = MAX_CYCLE_THREADS;
    if (const unsigned cap = cycleThreadCap(); cap != 0 && t > cap)
        t = cap;
    return t == 0 ? 1 : t;
}

namespace detail
{

void
run(unsigned tasks, TaskFn fn, void *ctx)
{
    WorkerPool::instance().run(tasks, fn, ctx);
}

} // namespace detail

} // namespace tenoc::parallel
