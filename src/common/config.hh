/**
 * @file
 * Typed key-value configuration store.
 *
 * Components take a Config (or structured parameter objects built from
 * one).  Keys are dotted strings ("noc.vcs"), values are stored as
 * strings and converted on access with defaulting.  Parsing supports
 * "key = value" lines with '#' comments, so experiment sweeps can be
 * driven from small config files as well as programmatic overrides.
 */

#ifndef TENOC_COMMON_CONFIG_HH
#define TENOC_COMMON_CONFIG_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace tenoc
{

/** Dotted-key configuration dictionary with typed accessors. */
class Config
{
  public:
    Config() = default;

    /** Sets (or overrides) a key from any streamable value. */
    void set(const std::string &key, const std::string &value);
    void set(const std::string &key, const char *value);
    void set(const std::string &key, bool value);
    void set(const std::string &key, std::int64_t value);
    void set(const std::string &key, std::uint64_t value);
    void set(const std::string &key, int value);
    void set(const std::string &key, unsigned value);
    void set(const std::string &key, double value);

    /** @return true if the key is present. */
    bool has(const std::string &key) const;

    /** Typed getters; fatal() on malformed values. */
    std::string getString(const std::string &key,
                          const std::string &def = "") const;
    bool getBool(const std::string &key, bool def) const;
    std::int64_t getInt(const std::string &key, std::int64_t def) const;
    std::uint64_t getUint(const std::string &key, std::uint64_t def) const;
    double getDouble(const std::string &key, double def) const;

    /**
     * Parses "key = value" lines; '#' starts a comment; blank lines are
     * ignored.  @return number of keys set.
     */
    std::size_t parseText(const std::string &text);

    /** Merges another config over this one (other wins on conflict). */
    void merge(const Config &other);

    /** @return all keys in sorted order (for dumping). */
    std::vector<std::string> keys() const;

    /** Renders the config as "key = value" lines. */
    std::string toText() const;

    /**
     * Canonical dump used for content addressing: sorted
     * "key = value" lines followed by the simulator version string,
     * so two Configs hash equal iff they contain the same keys and
     * values and were built by the same simulator version.
     */
    std::string canonicalText() const;

    /** FNV-1a (64-bit) over canonicalText(). */
    std::uint64_t canonicalHash() const;

    /** canonicalHash() as a fixed-width lowercase hex string. */
    std::string canonicalHashHex() const;

  private:
    std::map<std::string, std::string> values_;
};

} // namespace tenoc

#endif // TENOC_COMMON_CONFIG_HH
