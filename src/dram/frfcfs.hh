/**
 * @file
 * FR-FCFS (first-ready, first-come-first-served) scheduling policy
 * (Table II: out-of-order memory controller).
 *
 * Row hits are serviced first (oldest hit wins); otherwise the oldest
 * request drives precharge/activate of its bank.
 */

#ifndef TENOC_DRAM_FRFCFS_HH
#define TENOC_DRAM_FRFCFS_HH

#include <cstdint>
#include <deque>
#include <optional>

#include "common/stats.hh"
#include "common/types.hh"
#include "dram/gddr3.hh"

namespace tenoc
{

/** One request in the controller queue. */
struct DramRequest
{
    Addr localAddr = 0;      ///< channel-local address
    bool write = false;
    std::uint64_t tag = 0;   ///< opaque handle returned on completion
    Cycle arrival = 0;       ///< queue entry time (mem cycles)
    DramCoord coord;         ///< filled by the channel on push
    bool openedRow = false;  ///< an ACTIVATE was issued for this request
};

/** Scheduling-decision statistics (owned by the channel). */
struct FrFcfsStats
{
    /** Row-hit selections that bypassed an older queued request. */
    Counter rowHitPicks{"row_hit_picks"};
    /** Queue depth skipped to reach the chosen row hit. */
    Accumulator reorderDepth{"reorder_depth"};
    /** Cycles CAS issue was gated by a full read-out buffer. */
    Counter blockedByReturnBuffer{"blocked_by_return_buffer"};
};

/** FR-FCFS selection over a request queue. */
class FrFcfsScheduler
{
  public:
    using Queue = std::deque<DramRequest>;

    /**
     * @return index into `queue` of the oldest row-hit request whose
     * bank can issue a CAS at `now`, if any.  When `stats` is given,
     * records the pick and how far it reordered past the queue head.
     */
    static std::optional<std::size_t>
    pickRowHit(const Queue &queue, const class DramChannel &ch,
               Cycle now, FrFcfsStats *stats = nullptr);

    /**
     * @return index of the oldest request overall (FCFS order), used
     * to steer precharge/activate when no row hit is ready.
     */
    static std::optional<std::size_t> pickOldest(const Queue &queue);
};

} // namespace tenoc

#endif // TENOC_DRAM_FRFCFS_HH
