/**
 * @file
 * GDDR3 address mapping helpers.
 */

#include "dram/gddr3.hh"

#include "common/log.hh"

namespace tenoc
{

DramCoord
mapAddress(const Gddr3Timing &t, Addr local_addr)
{
    DramCoord c;
    const Addr row_block = local_addr / t.rowBytes;
    c.bank = static_cast<unsigned>(row_block % t.numBanks);
    c.row = row_block / t.numBanks;
    return c;
}

Addr
compactAddress(Addr global, unsigned num_channels,
               unsigned interleave_bytes)
{
    tenoc_assert(num_channels > 0 && interleave_bytes > 0,
                 "bad interleaving");
    const Addr chunk = global / interleave_bytes;
    const Addr offset = global % interleave_bytes;
    return (chunk / num_channels) * interleave_bytes + offset;
}

unsigned
channelOf(Addr global, unsigned num_channels, unsigned interleave_bytes)
{
    return static_cast<unsigned>((global / interleave_bytes) %
                                 num_channels);
}

} // namespace tenoc
