/**
 * @file
 * DramBank implementation.
 */

#include "dram/dram_bank.hh"

#include <algorithm>

#include "common/log.hh"
#include "common/snapshot.hh"

namespace tenoc
{

bool
DramBank::canActivate(Cycle now) const
{
    if (state_ != State::IDLE || now < ready_at_)
        return false;
    if (ever_activated_ && now < last_activate_ + timing_.tRC)
        return false;
    return true;
}

bool
DramBank::canCas(Cycle now, std::uint64_t row) const
{
    return state_ == State::ACTIVE && active_row_ == row &&
        now >= ready_at_;
}

bool
DramBank::canPrecharge(Cycle now) const
{
    return state_ == State::ACTIVE && now >= ras_done_at_ &&
        now >= last_cas_end_ && now >= ready_at_;
}

void
DramBank::activate(Cycle now, std::uint64_t row)
{
    tenoc_assert(canActivate(now), "illegal ACTIVATE");
    state_ = State::ACTIVE;
    active_row_ = row;
    last_activate_ = now;
    ever_activated_ = true;
    ready_at_ = now + timing_.tRCD;
    ras_done_at_ = now + timing_.tRAS;
    last_cas_end_ = now;
    ++activations_;
}

void
DramBank::cas(Cycle now)
{
    tenoc_assert(state_ == State::ACTIVE && now >= ready_at_,
                 "illegal CAS");
    // Back-to-back CAS spacing equals the data burst length.
    ready_at_ = now + timing_.burstCycles();
    last_cas_end_ =
        std::max<Cycle>(last_cas_end_,
                        now + timing_.tCL + timing_.burstCycles());
}

void
DramBank::precharge(Cycle now)
{
    tenoc_assert(canPrecharge(now), "illegal PRECHARGE");
    state_ = State::IDLE;
    ready_at_ = now + timing_.tRP;
}

void
DramBank::save(SnapshotWriter &w) const
{
    w.u8(static_cast<std::uint8_t>(state_));
    w.u64(active_row_);
    w.u64(ready_at_);
    w.u64(last_activate_);
    w.u64(ras_done_at_);
    w.u64(last_cas_end_);
    w.boolean(ever_activated_);
    w.u64(activations_);
}

void
DramBank::restore(SnapshotReader &r)
{
    state_ = static_cast<State>(r.u8());
    active_row_ = r.u64();
    ready_at_ = r.u64();
    last_activate_ = r.u64();
    ras_done_at_ = r.u64();
    last_cas_end_ = r.u64();
    ever_activated_ = r.boolean();
    activations_ = r.u64();
}

} // namespace tenoc
