/**
 * @file
 * One GDDR3 channel: bounded request queue (32 entries, Table II),
 * FR-FCFS command scheduling over the banks, a shared data bus, and
 * completion delivery.
 */

#ifndef TENOC_DRAM_DRAM_CHANNEL_HH
#define TENOC_DRAM_DRAM_CHANNEL_HH

#include <deque>
#include <optional>
#include <vector>

#include "dram/dram_bank.hh"
#include "dram/frfcfs.hh"

namespace tenoc
{

class SnapshotWriter;
class SnapshotReader;

/** Channel configuration. */
struct DramChannelParams
{
    Gddr3Timing timing;
    unsigned queueCapacity = 32; ///< Table II
    /** Read-out buffer: when this many serviced requests are waiting
     *  to leave the controller (the reply path is blocked), no further
     *  CAS issues — the mechanism behind the paper's Fig. 11 stalls. */
    unsigned returnBufferCap = 4;
};

class DramChannel
{
  public:
    explicit DramChannel(const DramChannelParams &params);

    /** @return true if one more request fits in the queue. */
    bool canAccept() const;

    /** Enqueues a request (local address; caller compacted it). */
    void push(DramRequest req, Cycle now);

    /** Advances one memory clock. */
    void cycle(Cycle now);

    /** @return a completed request, if any (pop one per call). */
    std::optional<DramRequest> popCompleted();

    /** @return true when queue and in-flight pipeline are empty. */
    bool idle() const;

    const DramBank &bank(unsigned i) const { return banks_[i]; }

    // --- stats ---
    std::uint64_t rowHits() const { return row_hits_; }
    std::uint64_t rowMisses() const { return row_misses_; }
    std::uint64_t servedRequests() const { return served_; }
    std::uint64_t busBusyCycles() const { return bus_busy_cycles_; }
    std::uint64_t pendingCycles() const { return pending_cycles_; }

    /** DRAM efficiency per the paper's footnote 7: data-pin busy time
     *  over time with pending requests. */
    double efficiency() const;

    /** @return queue occupancy (for backpressure stats). */
    std::size_t queueDepth() const { return queue_.size(); }

    const FrFcfsStats &schedStats() const { return sched_stats_; }

    /** Registers all channel statistics under `group` (lazy values for
     *  the plain scalar fields plus the scheduler's stat objects). */
    void registerStats(StatGroup &group) const;

    /** Serializes queues, in-flight pipeline, bus/turnaround state,
     *  banks, and counters. */
    void save(SnapshotWriter &w) const;

    /** Restores state written by save(); bank count must match. */
    void restore(SnapshotReader &r);

    friend class FrFcfsScheduler;

  private:
    DramChannelParams params_;
    std::vector<DramBank> banks_;
    std::deque<DramRequest> queue_;

    struct InFlight
    {
        DramRequest req;
        Cycle doneAt;
    };
    std::deque<InFlight> in_flight_;
    std::deque<DramRequest> completed_;

    Cycle bus_free_at_ = 0;     ///< data bus reserved until
    Cycle last_activate_ = 0;   ///< channel-wide tRRD
    bool ever_activated_ = false;
    bool last_cas_was_write_ = false; ///< for turnaround penalties

    std::uint64_t row_hits_ = 0;
    std::uint64_t row_misses_ = 0;
    std::uint64_t served_ = 0;
    std::uint64_t bus_busy_cycles_ = 0;
    std::uint64_t pending_cycles_ = 0;
    FrFcfsStats sched_stats_;
};

} // namespace tenoc

#endif // TENOC_DRAM_DRAM_CHANNEL_HH
