/**
 * @file
 * FR-FCFS policy implementation.
 */

#include "dram/frfcfs.hh"

#include "dram/dram_channel.hh"

namespace tenoc
{

std::optional<std::size_t>
FrFcfsScheduler::pickRowHit(const Queue &queue, const DramChannel &ch,
                            Cycle now, FrFcfsStats *stats)
{
    for (std::size_t i = 0; i < queue.size(); ++i) {
        const auto &req = queue[i];
        if (ch.banks_[req.coord.bank].canCas(now, req.coord.row)) {
            if (stats) {
                stats->rowHitPicks.inc();
                stats->reorderDepth.sample(static_cast<double>(i));
            }
            return i;
        }
    }
    return std::nullopt;
}

std::optional<std::size_t>
FrFcfsScheduler::pickOldest(const Queue &queue)
{
    if (queue.empty())
        return std::nullopt;
    return 0; // queue is in arrival order
}

} // namespace tenoc
