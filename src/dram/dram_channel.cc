/**
 * @file
 * DramChannel implementation.
 */

#include "dram/dram_channel.hh"

#include "common/log.hh"
#include "common/snapshot.hh"

namespace tenoc
{

DramChannel::DramChannel(const DramChannelParams &params)
    : params_(params)
{
    tenoc_assert(params_.queueCapacity >= 1, "queue too small");
    tenoc_assert(params_.timing.numBanks >= 1 &&
                 params_.timing.numBanks <= 32,
                 "bank count must fit the scheduler's bank mask");
    banks_.assign(params_.timing.numBanks, DramBank(params_.timing));
}

bool
DramChannel::canAccept() const
{
    return queue_.size() < params_.queueCapacity;
}

void
DramChannel::push(DramRequest req, Cycle now)
{
    tenoc_assert(canAccept(), "DRAM queue overflow");
    req.arrival = now;
    req.coord = mapAddress(params_.timing, req.localAddr);
    queue_.push_back(std::move(req));
}

void
DramChannel::cycle(Cycle now)
{
    // Retire in-flight transfers whose data burst has finished.
    while (!in_flight_.empty() && in_flight_.front().doneAt <= now) {
        completed_.push_back(std::move(in_flight_.front().req));
        in_flight_.pop_front();
    }

    const bool pending = !queue_.empty() || !in_flight_.empty();
    if (pending)
        ++pending_cycles_;
    if (now < bus_free_at_)
        ++bus_busy_cycles_;

    if (queue_.empty())
        return;

    const auto &t = params_.timing;

    // One command per cycle.  First preference: a ready row hit whose
    // data burst can be scheduled on the bus (FR-FCFS).  CAS is gated
    // on read-out buffer space so a blocked reply path stalls the
    // DRAM pipeline (Fig. 11).
    const bool return_space =
        in_flight_.size() + completed_.size() < params_.returnBufferCap;
    if (!return_space)
        sched_stats_.blockedByReturnBuffer.inc();
    const auto hit = return_space
        ? FrFcfsScheduler::pickRowHit(queue_, *this, now,
                                      &sched_stats_)
        : std::optional<std::size_t>{};
    if (hit) {
        const std::size_t i = *hit;
        DramRequest req = queue_[i];
        auto &bank = banks_[req.coord.bank];
        // Switching the data bus between reads and writes costs a
        // turnaround bubble (tRTW / tWTR).
        Cycle bus_ready = bus_free_at_;
        if (served_ > 0 && req.write != last_cas_was_write_) {
            bus_ready += req.write ? t.tRTW : t.tWTR;
        }
        const Cycle data_start = std::max<Cycle>(now + t.tCL,
                                                 bus_ready);
        // Issue only if the data bus is free when the burst starts;
        // otherwise wait (bus contention).
        if (data_start == now + t.tCL) {
            bank.cas(now);
            bus_free_at_ = data_start + t.burstCycles();
            last_cas_was_write_ = req.write;
            if (req.openedRow)
                ++row_misses_;
            else
                ++row_hits_;
            InFlight fl;
            fl.req = std::move(req);
            fl.doneAt = data_start + t.burstCycles();
            in_flight_.push_back(std::move(fl));
            queue_.erase(queue_.begin() +
                         static_cast<std::ptrdiff_t>(i));
            ++served_;
            return;
        }
    }

    // Otherwise prepare a bank.  Banks are prepared in parallel: for
    // each bank, only its oldest queued request steers it (no row
    // thrashing), and the single command slot this cycle goes to the
    // eligible preparation whose request is oldest (FCFS).
    std::uint32_t seen_banks = 0;
    for (auto &req : queue_) {
        const std::uint32_t bit = 1u << req.coord.bank;
        if (seen_banks & bit)
            continue;
        seen_banks |= bit;
        auto &bank = banks_[req.coord.bank];
        if (bank.state() == DramBank::State::ACTIVE) {
            if (bank.activeRow() == req.coord.row)
                continue; // ready or waiting on CAS/bus
            if (bank.canPrecharge(now)) {
                bank.precharge(now);
                return;
            }
            continue;
        }
        // Bank idle: activate, honoring channel-wide tRRD.
        if (bank.canActivate(now) &&
            (!ever_activated_ || now >= last_activate_ + t.tRRD)) {
            bank.activate(now, req.coord.row);
            req.openedRow = true;
            last_activate_ = now;
            ever_activated_ = true;
            return;
        }
    }
}

std::optional<DramRequest>
DramChannel::popCompleted()
{
    if (completed_.empty())
        return std::nullopt;
    DramRequest r = std::move(completed_.front());
    completed_.pop_front();
    return r;
}

bool
DramChannel::idle() const
{
    return queue_.empty() && in_flight_.empty() && completed_.empty();
}

double
DramChannel::efficiency() const
{
    if (pending_cycles_ == 0)
        return 0.0;
    return static_cast<double>(bus_busy_cycles_) /
        static_cast<double>(pending_cycles_);
}

void
DramChannel::registerStats(StatGroup &group) const
{
    group.addValue("row_hits", [this] {
        return static_cast<double>(row_hits_);
    });
    group.addValue("row_misses", [this] {
        return static_cast<double>(row_misses_);
    });
    group.addValue("served_requests", [this] {
        return static_cast<double>(served_);
    });
    group.addValue("bus_busy_cycles", [this] {
        return static_cast<double>(bus_busy_cycles_);
    });
    group.addValue("pending_cycles", [this] {
        return static_cast<double>(pending_cycles_);
    });
    group.addValue("efficiency", [this] { return efficiency(); });
    group.add(&sched_stats_.rowHitPicks);
    group.add(&sched_stats_.reorderDepth);
    group.add(&sched_stats_.blockedByReturnBuffer);
}

namespace
{

void
saveRequest(SnapshotWriter &w, const DramRequest &req)
{
    w.u64(req.localAddr);
    w.boolean(req.write);
    w.u64(req.tag);
    w.u64(req.arrival);
    w.u32(req.coord.bank);
    w.u64(req.coord.row);
    w.boolean(req.openedRow);
}

DramRequest
loadRequest(SnapshotReader &r)
{
    DramRequest req;
    req.localAddr = r.u64();
    req.write = r.boolean();
    req.tag = r.u64();
    req.arrival = r.u64();
    req.coord.bank = r.u32();
    req.coord.row = r.u64();
    req.openedRow = r.boolean();
    return req;
}

} // namespace

void
DramChannel::save(SnapshotWriter &w) const
{
    w.tag("DRAM");
    w.u64(banks_.size());
    for (const DramBank &bank : banks_)
        bank.save(w);
    w.u64(queue_.size());
    for (const DramRequest &req : queue_)
        saveRequest(w, req);
    w.u64(in_flight_.size());
    for (const InFlight &inf : in_flight_) {
        saveRequest(w, inf.req);
        w.u64(inf.doneAt);
    }
    w.u64(completed_.size());
    for (const DramRequest &req : completed_)
        saveRequest(w, req);
    w.u64(bus_free_at_);
    w.u64(last_activate_);
    w.boolean(ever_activated_);
    w.boolean(last_cas_was_write_);
    w.u64(row_hits_);
    w.u64(row_misses_);
    w.u64(served_);
    w.u64(bus_busy_cycles_);
    w.u64(pending_cycles_);
    saveStat(w, sched_stats_.rowHitPicks);
    saveStat(w, sched_stats_.reorderDepth);
    saveStat(w, sched_stats_.blockedByReturnBuffer);
}

void
DramChannel::restore(SnapshotReader &r)
{
    r.tag("DRAM");
    const std::uint64_t nbanks = r.u64();
    tenoc_assert(nbanks == banks_.size(),
                 "DRAM bank count mismatch in snapshot");
    for (DramBank &bank : banks_)
        bank.restore(r);
    queue_.clear();
    const std::uint64_t nq = r.u64();
    for (std::uint64_t i = 0; i < nq; ++i)
        queue_.push_back(loadRequest(r));
    in_flight_.clear();
    const std::uint64_t nf = r.u64();
    for (std::uint64_t i = 0; i < nf; ++i) {
        InFlight inf;
        inf.req = loadRequest(r);
        inf.doneAt = r.u64();
        in_flight_.push_back(std::move(inf));
    }
    completed_.clear();
    const std::uint64_t nc = r.u64();
    for (std::uint64_t i = 0; i < nc; ++i)
        completed_.push_back(loadRequest(r));
    bus_free_at_ = r.u64();
    last_activate_ = r.u64();
    ever_activated_ = r.boolean();
    last_cas_was_write_ = r.boolean();
    row_hits_ = r.u64();
    row_misses_ = r.u64();
    served_ = r.u64();
    bus_busy_cycles_ = r.u64();
    pending_cycles_ = r.u64();
    restoreStat(r, sched_stats_.rowHitPicks);
    restoreStat(r, sched_stats_.reorderDepth);
    restoreStat(r, sched_stats_.blockedByReturnBuffer);
}

} // namespace tenoc
