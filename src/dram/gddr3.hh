/**
 * @file
 * GDDR3 timing parameters (Table II of the paper) and address mapping.
 *
 * All timings are in memory (command) clock cycles at 1107 MHz.  The
 * data bus is DDR: a 64-byte access occupies the bus for
 * burstCycles = 64 B / (busBytes * 2) command cycles.
 */

#ifndef TENOC_DRAM_GDDR3_HH
#define TENOC_DRAM_GDDR3_HH

#include <cstdint>

#include "common/types.hh"

namespace tenoc
{

/** GDDR3 device timing and geometry. */
struct Gddr3Timing
{
    // Table II values.
    unsigned tCL = 9;    ///< CAS latency
    unsigned tRP = 13;   ///< precharge period
    unsigned tRC = 34;   ///< row cycle (ACT to ACT, same bank)
    unsigned tRAS = 21;  ///< row active time (ACT to PRE)
    unsigned tRCD = 12;  ///< RAS-to-CAS delay
    unsigned tRRD = 8;   ///< ACT-to-ACT, different banks
    unsigned tRTW = 8;   ///< read-to-write data-bus turnaround
    unsigned tWTR = 8;   ///< write-to-read data-bus turnaround

    unsigned numBanks = 8;       ///< banks per channel
    unsigned rowBytes = 2048;    ///< page (row) size per bank
    unsigned busBytes = 8;       ///< data bus width (DDR)
    unsigned accessBytes = 64;   ///< transfer granularity (cache line)

    /** Data-bus occupancy of one access, in command cycles. */
    unsigned
    burstCycles() const
    {
        return accessBytes / (busBytes * 2);
    }
};

/** Decomposed DRAM address within one channel. */
struct DramCoord
{
    unsigned bank = 0;
    std::uint64_t row = 0;
};

/**
 * Maps a channel-local byte address to (bank, row).  Consecutive
 * `rowBytes` blocks interleave across banks, so streaming fills a row
 * in each bank before moving to the next row.
 */
DramCoord mapAddress(const Gddr3Timing &t, Addr local_addr);

/**
 * Compacts a global address to a channel-local address given that
 * global addresses are low-order interleaved across `num_channels`
 * every `interleave_bytes` (256 B in the paper, Sec. II).
 */
Addr compactAddress(Addr global, unsigned num_channels,
                    unsigned interleave_bytes);

/** Channel id owning a global address under low-order interleaving. */
unsigned channelOf(Addr global, unsigned num_channels,
                   unsigned interleave_bytes);

} // namespace tenoc

#endif // TENOC_DRAM_GDDR3_HH
