/**
 * @file
 * Per-bank DRAM state machine: IDLE -> (ACTIVATE) -> ACTIVE ->
 * (PRECHARGE) -> IDLE, with tRCD/tRAS/tRP/tRC/tRRD constraints.
 */

#ifndef TENOC_DRAM_DRAM_BANK_HH
#define TENOC_DRAM_DRAM_BANK_HH

#include <cstdint>

#include "common/types.hh"
#include "dram/gddr3.hh"

namespace tenoc
{

class SnapshotWriter;
class SnapshotReader;

/** One DRAM bank. */
class DramBank
{
  public:
    enum class State : std::uint8_t { IDLE, ACTIVE };

    explicit DramBank(const Gddr3Timing &timing) : timing_(timing) {}

    State state() const { return state_; }
    std::uint64_t activeRow() const { return active_row_; }

    /** @return true if ACTIVATE may issue at `now` (tRC/tRP honored;
     *  the cross-bank tRRD check belongs to the channel). */
    bool canActivate(Cycle now) const;

    /** @return true if a CAS to `row` may issue at `now`. */
    bool canCas(Cycle now, std::uint64_t row) const;

    /** @return true if PRECHARGE may issue at `now`. */
    bool canPrecharge(Cycle now) const;

    /** Issues ACTIVATE for `row`. */
    void activate(Cycle now, std::uint64_t row);

    /** Issues a CAS (read or write). */
    void cas(Cycle now);

    /** Issues PRECHARGE. */
    void precharge(Cycle now);

    std::uint64_t activations() const { return activations_; }

    /** Serializes the bank's dynamic timing state. */
    void save(SnapshotWriter &w) const;

    /** Restores state written by save(). */
    void restore(SnapshotReader &r);

  private:
    Gddr3Timing timing_; ///< by value so banks stay assignable
    State state_ = State::IDLE;
    std::uint64_t active_row_ = 0;
    Cycle ready_at_ = 0;        ///< earliest next command to this bank
    Cycle last_activate_ = 0;   ///< for tRC
    Cycle ras_done_at_ = 0;     ///< earliest precharge (tRAS)
    Cycle last_cas_end_ = 0;    ///< earliest precharge after CAS
    bool ever_activated_ = false;
    std::uint64_t activations_ = 0;
};

} // namespace tenoc

#endif // TENOC_DRAM_DRAM_BANK_HH
