/**
 * @file
 * Chip configuration and the named experiment configurations of the
 * paper (Table V abbreviations and Sec. V combinations).
 */

#ifndef TENOC_ACCEL_CHIP_CONFIG_HH
#define TENOC_ACCEL_CHIP_CONFIG_HH

#include <string>

#include "accel/mc_node.hh"
#include "common/config.hh"
#include "area/area_model.hh"
#include "gpu/simt_core.hh"
#include "noc/ideal_network.hh"
#include "noc/mesh_network.hh"

namespace tenoc
{

/** Which interconnect the chip instantiates. */
enum class NetKind
{
    MESH,       ///< single physical mesh
    DOUBLE,     ///< channel-sliced dedicated double network (Sec. IV-C)
    PERFECT,    ///< zero latency, infinite bandwidth (Sec. III-B)
    BW_LIMITED  ///< zero latency, aggregate BW cap (Sec. III-A)
};

/** Full chip configuration. */
struct ChipParams
{
    double coreClockMhz = 1296.0; ///< Table II
    double icntClockMhz = 602.0;
    double memClockMhz = 1107.0;

    SimtCoreParams core;
    McNodeParams mc;

    NetKind netKind = NetKind::MESH;
    MeshNetworkParams mesh;
    /** BW_LIMITED: aggregate accepted flits per interconnect cycle. */
    double idealFlitsPerCycle = 0.0;

    Cycle maxIcntCycles = 4'000'000;
    std::uint64_t seed = 1;
};

/** Named configurations used by the paper's experiments. */
enum class ConfigId
{
    BASELINE_TB_DOR,     ///< Sec. II/III baseline: TB placement, DOR,
                         ///< 16 B channels, 2 VCs, 4-stage routers
    TB_DOR_2X,           ///< 32 B channels ("2x BW")
    TB_DOR_1CYC,         ///< 1-cycle aggressive routers (Sec. III-C)
    PERFECT,             ///< perfect NoC
    CP_DOR_2VC,          ///< checkerboard placement, DOR, 2 VCs
    CP_DOR_4VC,          ///< CP, DOR, 4 VCs (Fig. 17)
    CP_CR_4VC,           ///< CP, checkerboard routing, 4 VCs (Fig. 17)
    CP_CR_SINGLE_16B_4VC,///< Fig. 18 single-network baseline
    CP_CR_DOUBLE,        ///< channel-sliced double network (Fig. 18)
    CP_CR_DOUBLE_2INJ,   ///< + 2 injection ports at MCs (Fig. 19)
    CP_CR_DOUBLE_2EJ,    ///< + 2 ejection ports at MCs (Fig. 19)
    CP_CR_DOUBLE_2INJ2EJ,///< + both (Fig. 19)
    THROUGHPUT_EFFECTIVE,///< final design (Fig. 20): CP+CR+double+2P
    /** CP + CR + 2 injection ports on a single 16B network (no
     *  channel slicing).  In our flit-accurate model this variant is
     *  the throughput-effective sweet spot; reported alongside the
     *  paper's exact final design (see EXPERIMENTS.md). */
    CP_CR_2INJ_SINGLE
};

/** @return human-readable configuration name. */
const char *configName(ConfigId id);

/** Builds the ChipParams for a named configuration. */
ChipParams makeConfig(ConfigId id, std::uint64_t seed = 1);

/** Builds the BW-limited ideal config for Fig. 6 (x = fraction of
 *  off-chip DRAM bandwidth). */
ChipParams makeBwLimitedConfig(double dram_bw_fraction,
                               std::uint64_t seed = 1);

/** Area-model spec matching a named configuration (Table VI rows). */
MeshAreaSpec areaSpecFor(ConfigId id);

/** Aggregate flits/icnt-cycle equal to the full DRAM bandwidth. */
double dramBandwidthFlitsPerIcntCycle(const ChipParams &p);

/**
 * Builds ChipParams from a dotted-key Config, starting from a named
 * base configuration.  Recognized keys (all optional):
 *
 *   base            = name of a base config (default "baseline"):
 *                     baseline | 2x | 1cyc | perfect | cp |
 *                     cp-dor-4vc | cp-cr | double | thr-eff | cp-cr-2p
 *   noc.rows, noc.cols, noc.mcs
 *   noc.routing     = xy | yx | cr | o1turn | romm | valiant
 *   noc.placement   = top-bottom | checkerboard
 *   noc.halfRouters = bool
 *   noc.flitBytes, noc.vcsPerClass, noc.vcDepth, noc.pipelineDepth,
 *   noc.halfPipelineDepth, noc.mcInjPorts, noc.mcEjPorts, noc.sliced
 *   clk.coreMhz, clk.icntMhz, clk.memMhz
 *   mc.inputQueueCap, mc.l2HitLatency
 *   dram.queueCapacity, dram.banks, dram.rowBytes
 *   sim.seed, sim.maxIcntCycles
 *
 * Unknown keys are fatal (catching typos in experiment scripts).
 */
ChipParams chipParamsFromConfig(const Config &cfg);

/** Parses a base-config name ("thr-eff", "baseline", ...). */
ConfigId configIdFromName(const std::string &name);

} // namespace tenoc

#endif // TENOC_ACCEL_CHIP_CONFIG_HH
