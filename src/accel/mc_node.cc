/**
 * @file
 * McNode implementation.
 */

#include "accel/mc_node.hh"

#include <algorithm>

#include "common/log.hh"
#include "common/snapshot.hh"

namespace tenoc
{

McNode::McNode(NodeId node, unsigned index, const McNodeParams &params,
               Network &net, std::uint64_t seed)
    : node_(node), index_(index), params_(params), net_(net),
      l2_(params.l2, seed ^ 0xabcd1234ULL), dram_(params.dram)
{}

bool
McNode::tryReserve(const Packet &pkt)
{
    (void)pkt;
    if (input_queue_.size() + reserved_ >= params_.inputQueueCap)
        return false;
    ++reserved_;
    return true;
}

void
McNode::deliver(PacketPtr pkt, Cycle now)
{
    (void)now;
    tenoc_assert(reserved_ > 0, "deliver without reservation");
    --reserved_;
    tenoc_assert(isRequest(pkt->op), "MC received a non-request");
    input_queue_.push_back(std::move(pkt));
}

void
McNode::icntCycle(Cycle icnt_now)
{
    ++icnt_cycles_;

    // 1. Reply injection: keep only a shallow window queued in the NI
    //    so network backpressure reaches the DRAM read-out quickly;
    //    count cycles where replies wait on the network (Fig. 11).
    bool progressed = false;
    while (!reply_queue_.empty()) {
        const unsigned space = net_.injectSpace(node_, 1);
        const unsigned used = space >= params_.niQueueCap
            ? 0u : params_.niQueueCap - space;
        if (used >= params_.niReplyDepth)
            break;
        injectReply(std::move(reply_queue_.front()), icnt_now);
        reply_queue_.pop_front();
        progressed = true;
    }
    if (!reply_queue_.empty() && !progressed)
        ++stall_cycles_;

    // 2. Release L2-hit replies whose latency elapsed.
    while (!l2_pipe_.empty() && l2_pipe_.front().readyAt <= icnt_now) {
        reply_queue_.push_back(std::move(l2_pipe_.front().pkt));
        l2_pipe_.pop_front();
    }

    // 2b. Dirty L2 victims (real-tag mode) become DRAM writes.
    while (!l2_writebacks_.empty() && dram_.canAccept()) {
        DramRequest req;
        req.localAddr =
            compactAddress(l2_writebacks_.front(),
                           params_.numChannels,
                           params_.interleaveBytes);
        req.write = true;
        req.tag = next_dram_tag_++;
        dram_pending_[req.tag] =
            PendingDram{INVALID_NODE, 0, l2_writebacks_.front(), true};
        dram_.push(std::move(req), mem_now_);
        l2_writebacks_.pop_front();
    }

    // 3. Retry a request stalled on the DRAM queue.
    if (dram_wait_ && dram_.canAccept()) {
        PacketPtr pkt = std::move(dram_wait_);
        dram_wait_.reset();
        DramRequest req;
        req.localAddr = compactAddress(pkt->addr, params_.numChannels,
                                       params_.interleaveBytes);
        req.write = (pkt->op == MemOp::WRITE_REQUEST);
        req.tag = next_dram_tag_++;
        dram_pending_[req.tag] =
            PendingDram{pkt->src, pkt->tag, pkt->addr, req.write};
        dram_.push(std::move(req), mem_now_);
    }

    // 4. One L2 lookup per interconnect cycle.
    if (dram_wait_ || input_queue_.empty())
        return;
    PacketPtr pkt = std::move(input_queue_.front());
    input_queue_.pop_front();
    ++requests_served_;

    const bool is_write = (pkt->op == MemOp::WRITE_REQUEST);
    const auto res = l2_.access(pkt->addr, is_write);
    if (res.hit) {
        if (!is_write) {
            auto reply = makePacket();
            reply->src = node_;
            reply->dst = pkt->src;
            reply->op = MemOp::READ_REPLY;
            reply->protoClass = 1;
            reply->addr = pkt->addr;
            reply->tag = pkt->tag; // route back to the core slot
            reply->sizeFlits = net_.packetFlits(MemOp::READ_REPLY);
            reply->sizeBytes = memOpBytes(MemOp::READ_REPLY);
            l2_pipe_.push_back(
                DelayedReply{std::move(reply),
                             icnt_now + params_.l2HitLatency});
        }
        // Writes that hit are absorbed by the L2 (writeback bank).
        return;
    }

    // L2 miss: go to DRAM (writes are no-allocate at the L2 and go
    // straight to memory; reads allocate on return).
    if (dram_.canAccept()) {
        DramRequest req;
        req.localAddr = compactAddress(pkt->addr, params_.numChannels,
                                       params_.interleaveBytes);
        req.write = is_write;
        req.tag = next_dram_tag_++;
        dram_pending_[req.tag] =
            PendingDram{pkt->src, pkt->tag, pkt->addr, is_write};
        dram_.push(std::move(req), mem_now_);
    } else {
        dram_wait_ = std::move(pkt); // head-of-line: MC input blocked
    }
}

void
McNode::memCycle(Cycle mem_now)
{
    mem_now_ = mem_now;
    dram_.cycle(mem_now);

    // Read out completed requests while the reply path has room.
    while (reply_queue_.size() + l2_pipe_.size() <
           params_.replyQueueSoftCap) {
        auto done = dram_.popCompleted();
        if (!done)
            break;
        auto it = dram_pending_.find(done->tag);
        tenoc_assert(it != dram_pending_.end(),
                     "DRAM completed unknown tag");
        const PendingDram meta = it->second;
        dram_pending_.erase(it);
        if (meta.write)
            continue; // writes are fire-and-forget
        if (const auto victim = l2_.fill(meta.addr, false))
            l2_writebacks_.push_back(*victim);
        auto reply = makePacket();
        reply->src = node_;
        reply->dst = meta.requester;
        reply->op = MemOp::READ_REPLY;
        reply->protoClass = 1;
        reply->addr = meta.addr;
        reply->tag = meta.requesterTag; // back to the core slot
        reply->sizeFlits = net_.packetFlits(MemOp::READ_REPLY);
        reply->sizeBytes = memOpBytes(MemOp::READ_REPLY);
        reply_queue_.push_back(std::move(reply));
    }
}

void
McNode::injectReply(PacketPtr reply, Cycle icnt_now)
{
    net_.inject(std::move(reply), icnt_now);
}

bool
McNode::idle() const
{
    return input_queue_.empty() && l2_pipe_.empty() &&
        reply_queue_.empty() && dram_pending_.empty() && !dram_wait_ &&
        l2_writebacks_.empty() && dram_.idle();
}

void
McNode::registerStats(StatGroup &group) const
{
    group.addValue("requests_served", [this] {
        return static_cast<double>(requests_served_);
    });
    group.addValue("stall_cycles", [this] {
        return static_cast<double>(stall_cycles_);
    });
    group.addValue("icnt_cycles", [this] {
        return static_cast<double>(icnt_cycles_);
    });
    group.addValue("stall_fraction",
                   [this] { return stallFraction(); });
}

void
McNode::save(SnapshotWriter &w) const
{
    w.tag("MCND");
    l2_.save(w);
    dram_.save(w);
    w.u32(reserved_);
    w.u64(input_queue_.size());
    for (const PacketPtr &pkt : input_queue_)
        savePacket(w, pkt);
    w.u64(l2_pipe_.size());
    for (const DelayedReply &dr : l2_pipe_) {
        savePacket(w, dr.pkt);
        w.u64(dr.readyAt);
    }
    // Sorted by tag so the blob is independent of hash-map iteration
    // order (identical state must hash to identical bytes).
    std::vector<std::uint64_t> tags;
    tags.reserve(dram_pending_.size());
    for (const auto &[tag, pending] : dram_pending_)
        tags.push_back(tag);
    std::sort(tags.begin(), tags.end());
    w.u64(tags.size());
    for (const std::uint64_t tag : tags) {
        const PendingDram &pending = dram_pending_.at(tag);
        w.u64(tag);
        w.u32(pending.requester);
        w.u64(pending.requesterTag);
        w.u64(pending.addr);
        w.boolean(pending.write);
    }
    w.u64(next_dram_tag_);
    w.boolean(dram_wait_ != nullptr);
    if (dram_wait_)
        savePacket(w, dram_wait_);
    w.u64(reply_queue_.size());
    for (const PacketPtr &pkt : reply_queue_)
        savePacket(w, pkt);
    w.u64(l2_writebacks_.size());
    for (const Addr addr : l2_writebacks_)
        w.u64(addr);
    w.u64(stall_cycles_);
    w.u64(icnt_cycles_);
    w.u64(requests_served_);
    w.u64(mem_now_);
}

void
McNode::restore(SnapshotReader &r)
{
    r.tag("MCND");
    l2_.restore(r);
    dram_.restore(r);
    reserved_ = r.u32();
    input_queue_.clear();
    const std::uint64_t nin = r.u64();
    for (std::uint64_t i = 0; i < nin; ++i)
        input_queue_.push_back(loadPacket(r));
    l2_pipe_.clear();
    const std::uint64_t npipe = r.u64();
    for (std::uint64_t i = 0; i < npipe; ++i) {
        DelayedReply dr;
        dr.pkt = loadPacket(r);
        dr.readyAt = r.u64();
        l2_pipe_.push_back(std::move(dr));
    }
    dram_pending_.clear();
    const std::uint64_t npend = r.u64();
    for (std::uint64_t i = 0; i < npend; ++i) {
        const std::uint64_t tag = r.u64();
        PendingDram pending;
        pending.requester = r.u32();
        pending.requesterTag = r.u64();
        pending.addr = r.u64();
        pending.write = r.boolean();
        dram_pending_.emplace(tag, pending);
    }
    next_dram_tag_ = r.u64();
    dram_wait_.reset();
    if (r.boolean())
        dram_wait_ = loadPacket(r);
    reply_queue_.clear();
    const std::uint64_t nreply = r.u64();
    for (std::uint64_t i = 0; i < nreply; ++i)
        reply_queue_.push_back(loadPacket(r));
    l2_writebacks_.clear();
    const std::uint64_t nwb = r.u64();
    for (std::uint64_t i = 0; i < nwb; ++i)
        l2_writebacks_.push_back(r.u64());
    stall_cycles_ = r.u64();
    icnt_cycles_ = r.u64();
    requests_served_ = r.u64();
    mem_now_ = r.u64();
}

} // namespace tenoc
