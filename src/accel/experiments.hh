/**
 * @file
 * Experiment drivers shared by the benchmark harnesses: run one
 * workload or the whole Table I suite under a named configuration.
 */

#ifndef TENOC_ACCEL_EXPERIMENTS_HH
#define TENOC_ACCEL_EXPERIMENTS_HH

#include <vector>

#include "accel/metrics.hh"
#include "gpu/workloads.hh"

namespace tenoc
{

/** Runs one workload on one chip configuration. */
ChipResult runWorkload(const ChipParams &params,
                       const KernelProfile &profile);

/**
 * Runs one workload with telemetry: attaches `hub` to the chip before
 * the run and writes every requested output file afterwards (the
 * metrics export uses the chip's full StatGroup hierarchy).  A null
 * hub behaves exactly like the plain overload.
 */
ChipResult runWorkload(const ChipParams &params,
                       const KernelProfile &profile,
                       telemetry::TelemetryHub *hub);

/**
 * Runs the full suite.  `scale` shrinks kernel lengths for quick runs
 * (1.0 = full length).
 */
std::vector<SuiteRun> runSuite(const ChipParams &params,
                               double scale = 1.0);

/** Convenience: run the suite under a named configuration. */
std::vector<SuiteRun> runSuite(ConfigId config, double scale = 1.0,
                               std::uint64_t seed = 1);

/**
 * Reads the TENOC_SCALE environment variable (default `def`), used by
 * benches so CI can run shortened experiments.
 */
double envScale(double def = 1.0);

} // namespace tenoc

#endif // TENOC_ACCEL_EXPERIMENTS_HH
