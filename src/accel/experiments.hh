/**
 * @file
 * Experiment drivers shared by the benchmark harnesses: run one
 * workload or the whole Table I suite under a named configuration.
 */

#ifndef TENOC_ACCEL_EXPERIMENTS_HH
#define TENOC_ACCEL_EXPERIMENTS_HH

#include <vector>

#include "accel/metrics.hh"
#include "gpu/workloads.hh"

namespace tenoc
{

/** Runs one workload on one chip configuration. */
ChipResult runWorkload(const ChipParams &params,
                       const KernelProfile &profile);

/**
 * Runs one workload with telemetry: attaches `hub` to the chip before
 * the run and writes every requested output file afterwards (the
 * metrics export uses the chip's full StatGroup hierarchy).  A null
 * hub behaves exactly like the plain overload.
 */
ChipResult runWorkload(const ChipParams &params,
                       const KernelProfile &profile,
                       telemetry::TelemetryHub *hub);

/** Checkpoint/restore options for one run (docs/fleet.md). */
struct RunOptions
{
    /** Interconnect cycle to checkpoint at during the run (0 = off). */
    Cycle checkpointAt = 0;
    /** Snapshot file written when checkpointAt triggers. */
    std::string checkpointOut;
    /** Snapshot file to resume from before running (empty = fresh). */
    std::string restoreFrom;

    /** Recurring checkpoint cadence in icnt cycles (0 = off); the
     *  fleet's retry-from-checkpoint insurance.  Writes are atomic
     *  (tmp + rename) and anchored to absolute cycle numbers. */
    Cycle checkpointEvery = 0;
    /** File the recurring checkpoints overwrite. */
    std::string checkpointEveryOut;

    /** Progress callback cadence in icnt cycles (0 = off). */
    Cycle progressEvery = 0;
    /** Invoked with live counters every progressEvery icnt cycles
     *  (heartbeat/telemetry streaming; must not mutate the chip). */
    Chip::ProgressFn onProgress;
};

/**
 * Runs one workload with checkpoint/restore: restores the chip from
 * `opts.restoreFrom` if given (fatal on mismatch), arms a one-shot
 * checkpoint if `opts.checkpointAt` is set, then runs to completion.
 * The chip must be configured identically to the checkpointing run.
 */
ChipResult runWorkload(const ChipParams &params,
                       const KernelProfile &profile,
                       telemetry::TelemetryHub *hub,
                       const RunOptions &opts);

/**
 * Runs the full suite.  `scale` shrinks kernel lengths for quick runs
 * (1.0 = full length).
 */
std::vector<SuiteRun> runSuite(const ChipParams &params,
                               double scale = 1.0);

/** Convenience: run the suite under a named configuration. */
std::vector<SuiteRun> runSuite(ConfigId config, double scale = 1.0,
                               std::uint64_t seed = 1);

/**
 * Reads the TENOC_SCALE environment variable (default `def`), used by
 * benches so CI can run shortened experiments.
 */
double envScale(double def = 1.0);

} // namespace tenoc

#endif // TENOC_ACCEL_EXPERIMENTS_HH
