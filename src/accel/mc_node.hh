/**
 * @file
 * Memory controller node (Fig. 5 of the paper): a shared L2 cache
 * bank, an FR-FCFS GDDR3 channel, and the reply-injection path whose
 * stalls the paper measures in Fig. 11.
 *
 * Request flow: NoC -> bounded input queue -> L2 bank (one lookup per
 * interconnect cycle) -> on miss, GDDR3 channel (memory clock) ->
 * read replies re-enter the NoC through the NI, one packet at a time,
 * limited by the MC router's injection terminal bandwidth.
 */

#ifndef TENOC_ACCEL_MC_NODE_HH
#define TENOC_ACCEL_MC_NODE_HH

#include <deque>
#include <unordered_map>

#include "cache/cache.hh"
#include "dram/dram_channel.hh"
#include "gpu/kernel_profile.hh"
#include "noc/network.hh"

namespace tenoc
{

/** MC node configuration. */
struct McNodeParams
{
    unsigned inputQueueCap = 8;   ///< packets buffered before the L2
    unsigned l2HitLatency = 8;    ///< icnt cycles from lookup to reply
    unsigned replyQueueSoftCap = 4; ///< gate on DRAM read-out
    /** Reply packets the MC keeps queued in its NI: kept shallow so a
     *  blocked reply network stalls the DRAM read-out quickly (the
     *  feedback loop behind Fig. 11). */
    unsigned niReplyDepth = 2;
    /** NI injection queue capacity (set by the chip from the network
     *  configuration; used to convert injectSpace into occupancy). */
    unsigned niQueueCap = 8;
    DramChannelParams dram;
    CacheParams l2; ///< profile-mode hit rate set per workload
    unsigned numChannels = 8;     ///< chip-wide MC count (interleaving)
    unsigned interleaveBytes = 256;
};

class McNode : public PacketSink
{
  public:
    /**
     * @param node NoC node id of this MC
     * @param index MC index (0-based) for stats
     * @param params configuration
     * @param net network used to inject replies
     * @param seed RNG seed for the profile-mode L2
     */
    McNode(NodeId node, unsigned index, const McNodeParams &params,
           Network &net, std::uint64_t seed);

    // PacketSink (requests arriving from cores)
    bool tryReserve(const Packet &pkt) override;
    void deliver(PacketPtr pkt, Cycle now) override;

    /** Interconnect-clock work: L2 pipeline and reply injection. */
    void icntCycle(Cycle icnt_now);

    /** Memory-clock work: DRAM scheduling and read-out. */
    void memCycle(Cycle mem_now);

    /** @return true when no request or reply is in flight here. */
    bool idle() const;

    // --- stats ---
    /** Cycles the reply path was blocked by the NoC (Fig. 11). */
    std::uint64_t stallCycles() const { return stall_cycles_; }
    std::uint64_t icntCycles() const { return icnt_cycles_; }
    double
    stallFraction() const
    {
        return icnt_cycles_
            ? static_cast<double>(stall_cycles_) / icnt_cycles_ : 0.0;
    }
    const DramChannel &dram() const { return dram_; }
    const Cache &l2() const { return l2_; }
    std::uint64_t requestsServed() const { return requests_served_; }

    /** Registers the MC's statistics under `group` (the DRAM channel
     *  registers its own under a child group). */
    void registerStats(StatGroup &group) const;

    /** Serializes queues, L2, DRAM, and pending-request maps. */
    void save(SnapshotWriter &w) const;

    /** Restores state written by save(). */
    void restore(SnapshotReader &r);

  private:
    void injectReply(PacketPtr reply, Cycle icnt_now);

    NodeId node_;
    unsigned index_;
    McNodeParams params_;
    Network &net_;
    Cache l2_;
    DramChannel dram_;

    unsigned reserved_ = 0; ///< slots promised via tryReserve
    std::deque<PacketPtr> input_queue_;

    /** L2-hit replies waiting out the hit latency. */
    struct DelayedReply
    {
        PacketPtr pkt;
        Cycle readyAt;
    };
    std::deque<DelayedReply> l2_pipe_;

    /** Requests waiting on DRAM, keyed by tag. */
    struct PendingDram
    {
        NodeId requester;
        /** Requester's packet tag, echoed on the reply (identifies the
         *  core slot behind a concentrated node; 0 for writebacks). */
        std::uint64_t requesterTag;
        Addr addr;
        bool write;
    };
    std::unordered_map<std::uint64_t, PendingDram> dram_pending_;
    std::uint64_t next_dram_tag_ = 1;

    /** Head-of-line request stalled waiting for DRAM queue space. */
    PacketPtr dram_wait_;

    /** Replies ready to enter the NoC. */
    std::deque<PacketPtr> reply_queue_;

    /** Dirty L2 victims waiting for DRAM queue space (real-tag L2). */
    std::deque<Addr> l2_writebacks_;

    std::uint64_t stall_cycles_ = 0;
    std::uint64_t icnt_cycles_ = 0;
    std::uint64_t requests_served_ = 0;
    Cycle mem_now_ = 0;
};

} // namespace tenoc

#endif // TENOC_ACCEL_MC_NODE_HH
