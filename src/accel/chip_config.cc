/**
 * @file
 * Named configuration construction.
 */

#include "accel/chip_config.hh"

#include <set>

#include "common/log.hh"

namespace tenoc
{

const char *
configName(ConfigId id)
{
    switch (id) {
      case ConfigId::BASELINE_TB_DOR: return "TB-DOR (baseline)";
      case ConfigId::TB_DOR_2X: return "TB-DOR 2x-BW";
      case ConfigId::TB_DOR_1CYC: return "TB-DOR 1-cycle routers";
      case ConfigId::PERFECT: return "Perfect NoC";
      case ConfigId::CP_DOR_2VC: return "CP-DOR 2VC";
      case ConfigId::CP_DOR_4VC: return "CP-DOR 4VC";
      case ConfigId::CP_CR_4VC: return "CP-CR 4VC";
      case ConfigId::CP_CR_SINGLE_16B_4VC: return "CP-CR single 16B 4VC";
      case ConfigId::CP_CR_DOUBLE: return "CP-CR double";
      case ConfigId::CP_CR_DOUBLE_2INJ: return "CP-CR double 2-inj";
      case ConfigId::CP_CR_DOUBLE_2EJ: return "CP-CR double 2-ej";
      case ConfigId::CP_CR_DOUBLE_2INJ2EJ:
        return "CP-CR double 2-inj 2-ej";
      case ConfigId::THROUGHPUT_EFFECTIVE:
        return "Throughput-Effective";
      case ConfigId::CP_CR_2INJ_SINGLE:
        return "CP-CR 16B 2-inj (single)";
    }
    return "unknown";
}

ChipParams
makeConfig(ConfigId id, std::uint64_t seed)
{
    ChipParams p;
    p.seed = seed;
    p.mesh.seed = seed * 2654435761ULL + 17;
    p.mesh.topo.rows = 6;
    p.mesh.topo.cols = 6;
    p.mesh.topo.numMcs = 8;
    p.mc.numChannels = 8;

    switch (id) {
      case ConfigId::BASELINE_TB_DOR:
        break;
      case ConfigId::TB_DOR_2X:
        p.mesh.flitBytes = 32;
        break;
      case ConfigId::TB_DOR_1CYC:
        p.mesh.pipelineDepth = 1;
        p.mesh.halfPipelineDepth = 1;
        break;
      case ConfigId::PERFECT:
        p.netKind = NetKind::PERFECT;
        break;
      case ConfigId::CP_DOR_2VC:
        p.mesh.topo.placement = McPlacement::CHECKERBOARD;
        break;
      case ConfigId::CP_DOR_4VC:
        p.mesh.topo.placement = McPlacement::CHECKERBOARD;
        p.mesh.vcsPerClass = 2;
        break;
      case ConfigId::CP_CR_4VC:
      case ConfigId::CP_CR_SINGLE_16B_4VC:
        p.mesh.topo.placement = McPlacement::CHECKERBOARD;
        p.mesh.topo.checkerboardRouters = true;
        p.mesh.routing = "cr";
        break;
      case ConfigId::CP_CR_2INJ_SINGLE:
        p.mesh.topo.placement = McPlacement::CHECKERBOARD;
        p.mesh.topo.checkerboardRouters = true;
        p.mesh.routing = "cr";
        p.mesh.mcInjPorts = 2;
        break;
      case ConfigId::CP_CR_DOUBLE:
        p.netKind = NetKind::DOUBLE;
        p.mesh.topo.placement = McPlacement::CHECKERBOARD;
        p.mesh.topo.checkerboardRouters = true;
        p.mesh.routing = "cr";
        break;
      case ConfigId::CP_CR_DOUBLE_2INJ:
      case ConfigId::THROUGHPUT_EFFECTIVE:
        p.netKind = NetKind::DOUBLE;
        p.mesh.topo.placement = McPlacement::CHECKERBOARD;
        p.mesh.topo.checkerboardRouters = true;
        p.mesh.routing = "cr";
        p.mesh.mcInjPorts = 2;
        break;
      case ConfigId::CP_CR_DOUBLE_2EJ:
        p.netKind = NetKind::DOUBLE;
        p.mesh.topo.placement = McPlacement::CHECKERBOARD;
        p.mesh.topo.checkerboardRouters = true;
        p.mesh.routing = "cr";
        p.mesh.mcEjPorts = 2;
        break;
      case ConfigId::CP_CR_DOUBLE_2INJ2EJ:
        p.netKind = NetKind::DOUBLE;
        p.mesh.topo.placement = McPlacement::CHECKERBOARD;
        p.mesh.topo.checkerboardRouters = true;
        p.mesh.routing = "cr";
        p.mesh.mcInjPorts = 2;
        p.mesh.mcEjPorts = 2;
        break;
    }
    return p;
}

double
dramBandwidthFlitsPerIcntCycle(const ChipParams &p)
{
    // 8 MCs x 16 B per memory clock, expressed in interconnect-clock
    // flits (footnote 3 of the paper).
    const double bytes_per_mclk =
        static_cast<double>(p.mc.numChannels) *
        (p.mc.dram.timing.busBytes * 2.0);
    const double bytes_per_icnt =
        bytes_per_mclk * (p.memClockMhz / p.icntClockMhz);
    return bytes_per_icnt / 16.0; // 16-byte flits
}

ChipParams
makeBwLimitedConfig(double dram_bw_fraction, std::uint64_t seed)
{
    ChipParams p = makeConfig(ConfigId::BASELINE_TB_DOR, seed);
    p.netKind = NetKind::BW_LIMITED;
    p.idealFlitsPerCycle =
        dram_bw_fraction * dramBandwidthFlitsPerIcntCycle(p);
    return p;
}

ConfigId
configIdFromName(const std::string &name)
{
    if (name == "baseline" || name == "tb-dor")
        return ConfigId::BASELINE_TB_DOR;
    if (name == "2x")
        return ConfigId::TB_DOR_2X;
    if (name == "1cyc")
        return ConfigId::TB_DOR_1CYC;
    if (name == "perfect")
        return ConfigId::PERFECT;
    if (name == "cp" || name == "cp-dor")
        return ConfigId::CP_DOR_2VC;
    if (name == "cp-dor-4vc")
        return ConfigId::CP_DOR_4VC;
    if (name == "cp-cr")
        return ConfigId::CP_CR_4VC;
    if (name == "double")
        return ConfigId::CP_CR_DOUBLE;
    if (name == "thr-eff")
        return ConfigId::THROUGHPUT_EFFECTIVE;
    if (name == "cp-cr-2p")
        return ConfigId::CP_CR_2INJ_SINGLE;
    tenoc_fatal("unknown base configuration '", name, "'");
}

ChipParams
chipParamsFromConfig(const Config &cfg)
{
    static const std::set<std::string> known = {
        "base", "noc.rows", "noc.cols", "noc.mcs", "noc.routing",
        "noc.topology", "noc.concentration",
        "noc.placement", "noc.halfRouters", "noc.flitBytes",
        "noc.vcsPerClass", "noc.vcDepth", "noc.pipelineDepth",
        "noc.halfPipelineDepth", "noc.mcInjPorts", "noc.mcEjPorts",
        "noc.sliced", "noc.agePriority", "clk.coreMhz", "clk.icntMhz",
        "clk.memMhz",
        "mc.inputQueueCap", "mc.l2HitLatency", "dram.queueCapacity",
        "dram.banks", "dram.rowBytes", "sim.seed", "sim.maxIcntCycles",
        "noc.validate", "noc.validateInterval", "noc.watchdogWindow",
        "noc.maxPacketAge", "noc.watchdogSnapshotPath",
        "fault.linkStallRate", "fault.linkStallDuration",
        "fault.routerFreezeRate", "fault.routerFreezeDuration",
        "fault.creditDropRate", "fault.maxCreditDrops", "fault.seed",
    };
    for (const auto &key : cfg.keys()) {
        if (!known.count(key))
            tenoc_fatal("unknown configuration key '", key, "'");
    }

    ChipParams p = makeConfig(
        configIdFromName(cfg.getString("base", "baseline")),
        cfg.getUint("sim.seed", 1));

    auto &m = p.mesh;
    m.topo.rows = static_cast<unsigned>(
        cfg.getUint("noc.rows", m.topo.rows));
    m.topo.cols = static_cast<unsigned>(
        cfg.getUint("noc.cols", m.topo.cols));
    m.topo.numMcs = static_cast<unsigned>(
        cfg.getUint("noc.mcs", m.topo.numMcs));
    p.mc.numChannels = m.topo.numMcs;
    m.routing = cfg.getString("noc.routing", m.routing);
    if (cfg.has("noc.topology")) {
        const std::string tk = cfg.getString("noc.topology");
        if (tk == "mesh")
            m.topo.kind = TopoKind::MESH;
        else if (tk == "torus")
            m.topo.kind = TopoKind::TORUS;
        else
            tenoc_fatal("unknown topology '", tk,
                        "' (expected 'mesh' or 'torus')");
    }
    m.topo.concentration = static_cast<unsigned>(
        cfg.getUint("noc.concentration", m.topo.concentration));
    if (cfg.has("noc.placement")) {
        const std::string pl = cfg.getString("noc.placement");
        if (pl == "top-bottom")
            m.topo.placement = McPlacement::TOP_BOTTOM;
        else if (pl == "checkerboard")
            m.topo.placement = McPlacement::CHECKERBOARD;
        else
            tenoc_fatal("unknown placement '", pl, "'");
    }
    m.topo.checkerboardRouters =
        cfg.getBool("noc.halfRouters", m.topo.checkerboardRouters);
    m.flitBytes = static_cast<unsigned>(
        cfg.getUint("noc.flitBytes", m.flitBytes));
    m.vcsPerClass = static_cast<unsigned>(
        cfg.getUint("noc.vcsPerClass", m.vcsPerClass));
    m.vcDepth = static_cast<unsigned>(
        cfg.getUint("noc.vcDepth", m.vcDepth));
    m.pipelineDepth = static_cast<unsigned>(
        cfg.getUint("noc.pipelineDepth", m.pipelineDepth));
    m.halfPipelineDepth = static_cast<unsigned>(
        cfg.getUint("noc.halfPipelineDepth", m.halfPipelineDepth));
    m.mcInjPorts = static_cast<unsigned>(
        cfg.getUint("noc.mcInjPorts", m.mcInjPorts));
    m.mcEjPorts = static_cast<unsigned>(
        cfg.getUint("noc.mcEjPorts", m.mcEjPorts));
    if (cfg.has("noc.sliced")) {
        p.netKind = cfg.getBool("noc.sliced", false)
            ? NetKind::DOUBLE : NetKind::MESH;
    }
    m.agePriority = cfg.getBool("noc.agePriority", m.agePriority);

    // Hardening knobs (noc/invariants.hh, noc/faults.hh).
    m.validate = cfg.getBool("noc.validate", m.validate);
    m.validateInterval =
        cfg.getUint("noc.validateInterval", m.validateInterval);
    m.watchdogWindow =
        cfg.getUint("noc.watchdogWindow", m.watchdogWindow);
    m.maxPacketAge = cfg.getUint("noc.maxPacketAge", m.maxPacketAge);
    m.watchdogSnapshotPath = cfg.getString("noc.watchdogSnapshotPath",
                                           m.watchdogSnapshotPath);
    m.faults.linkStallRate =
        cfg.getDouble("fault.linkStallRate", m.faults.linkStallRate);
    m.faults.linkStallDuration = cfg.getUint(
        "fault.linkStallDuration", m.faults.linkStallDuration);
    m.faults.routerFreezeRate = cfg.getDouble(
        "fault.routerFreezeRate", m.faults.routerFreezeRate);
    m.faults.routerFreezeDuration = cfg.getUint(
        "fault.routerFreezeDuration", m.faults.routerFreezeDuration);
    m.faults.creditDropRate =
        cfg.getDouble("fault.creditDropRate", m.faults.creditDropRate);
    m.faults.maxCreditDrops =
        cfg.getUint("fault.maxCreditDrops", m.faults.maxCreditDrops);
    m.faults.seed = cfg.getUint("fault.seed", m.faults.seed);
    for (double rate : {m.faults.linkStallRate,
                        m.faults.routerFreezeRate,
                        m.faults.creditDropRate}) {
        if (rate < 0.0 || rate > 1.0) {
            tenoc_fatal("invalid fault config: rates are per-component"
                        " per-cycle probabilities and must lie in"
                        " [0, 1] (got ", rate, ")");
        }
    }

    p.coreClockMhz = cfg.getDouble("clk.coreMhz", p.coreClockMhz);
    p.icntClockMhz = cfg.getDouble("clk.icntMhz", p.icntClockMhz);
    p.memClockMhz = cfg.getDouble("clk.memMhz", p.memClockMhz);
    if (p.coreClockMhz <= 0.0 || p.icntClockMhz <= 0.0 ||
        p.memClockMhz <= 0.0) {
        tenoc_fatal("invalid clock config: core/icnt/mem clocks must"
                    " all be positive MHz (got core=", p.coreClockMhz,
                    " icnt=", p.icntClockMhz, " mem=", p.memClockMhz,
                    ")");
    }

    p.mc.inputQueueCap = static_cast<unsigned>(
        cfg.getUint("mc.inputQueueCap", p.mc.inputQueueCap));
    p.mc.l2HitLatency = static_cast<unsigned>(
        cfg.getUint("mc.l2HitLatency", p.mc.l2HitLatency));
    p.mc.dram.queueCapacity = static_cast<unsigned>(
        cfg.getUint("dram.queueCapacity", p.mc.dram.queueCapacity));
    p.mc.dram.timing.numBanks = static_cast<unsigned>(
        cfg.getUint("dram.banks", p.mc.dram.timing.numBanks));
    p.mc.dram.timing.rowBytes = static_cast<unsigned>(
        cfg.getUint("dram.rowBytes", p.mc.dram.timing.rowBytes));

    p.maxIcntCycles = cfg.getUint("sim.maxIcntCycles",
                                  p.maxIcntCycles);
    return p;
}

MeshAreaSpec
areaSpecFor(ConfigId id)
{
    MeshAreaSpec s;
    s.rows = 6;
    s.cols = 6;
    s.numMcs = 8;
    s.vcs = 2;
    s.buffersPerVc = 8;
    s.channelBytes = 16.0;
    switch (id) {
      case ConfigId::BASELINE_TB_DOR:
      case ConfigId::TB_DOR_1CYC:
      case ConfigId::PERFECT:
      case ConfigId::CP_DOR_2VC:
        break;
      case ConfigId::TB_DOR_2X:
        s.channelBytes = 32.0;
        break;
      case ConfigId::CP_DOR_4VC:
        s.vcs = 4;
        break;
      case ConfigId::CP_CR_4VC:
      case ConfigId::CP_CR_SINGLE_16B_4VC:
        s.vcs = 4;
        s.checkerboard = true;
        break;
      case ConfigId::CP_CR_2INJ_SINGLE:
        s.vcs = 4;
        s.checkerboard = true;
        s.mcInjPorts = 2;
        break;
      case ConfigId::CP_CR_DOUBLE:
        s.subnetworks = 2;
        s.channelBytes = 8.0;
        s.vcs = 4; // 2 lanes per routing class (see DoubleNetwork)
        s.checkerboard = true;
        break;
      case ConfigId::CP_CR_DOUBLE_2INJ:
      case ConfigId::THROUGHPUT_EFFECTIVE:
        s.subnetworks = 2;
        s.channelBytes = 8.0;
        s.vcs = 4;
        s.checkerboard = true;
        s.mcInjPorts = 2;
        break;
      case ConfigId::CP_CR_DOUBLE_2EJ:
        s.subnetworks = 2;
        s.channelBytes = 8.0;
        s.vcs = 4;
        s.checkerboard = true;
        s.mcEjPorts = 2;
        break;
      case ConfigId::CP_CR_DOUBLE_2INJ2EJ:
        s.subnetworks = 2;
        s.channelBytes = 8.0;
        s.vcs = 4;
        s.checkerboard = true;
        s.mcInjPorts = 2;
        s.mcEjPorts = 2;
        break;
    }
    return s;
}

} // namespace tenoc
