/**
 * @file
 * Metrics implementation.
 */

#include "accel/metrics.hh"

#include "common/log.hh"
#include "common/stats.hh"

namespace tenoc
{

double
harmonicMeanIpc(const std::vector<SuiteRun> &runs)
{
    std::vector<double> v;
    v.reserve(runs.size());
    for (const auto &r : runs)
        v.push_back(r.result.ipc);
    return harmonicMean(v);
}

std::vector<double>
speedups(const std::vector<SuiteRun> &base,
         const std::vector<SuiteRun> &test)
{
    tenoc_assert(base.size() == test.size(),
                 "suite size mismatch in speedups()");
    std::vector<double> out;
    out.reserve(base.size());
    for (std::size_t i = 0; i < base.size(); ++i) {
        tenoc_assert(base[i].abbr == test[i].abbr,
                     "suite order mismatch at ", base[i].abbr, " vs ",
                     test[i].abbr);
        out.push_back(base[i].result.ipc > 0.0
                          ? test[i].result.ipc / base[i].result.ipc
                          : 0.0);
    }
    return out;
}

double
harmonicMeanSpeedup(const std::vector<SuiteRun> &base,
                    const std::vector<SuiteRun> &test)
{
    return harmonicMean(speedups(base, test));
}

TrafficClass
classify(double perfect_speedup, double accepted_bytes_per_node)
{
    const bool high_speedup = perfect_speedup > 1.30;
    const bool heavy = accepted_bytes_per_node > 1.0;
    if (high_speedup)
        return TrafficClass::HH; // no HL group exists (Sec. III-B)
    return heavy ? TrafficClass::LH : TrafficClass::LL;
}

double
harmonicMeanIpcOfClass(const std::vector<SuiteRun> &runs,
                       TrafficClass cls)
{
    std::vector<double> v;
    for (const auto &r : runs)
        if (r.cls == cls)
            v.push_back(r.result.ipc);
    return harmonicMean(v);
}

} // namespace tenoc
