/**
 * @file
 * Suite-level metrics: harmonic-mean IPC and speedups, the paper's
 * LL/LH/HH classification rule, and throughput-effectiveness.
 */

#ifndef TENOC_ACCEL_METRICS_HH
#define TENOC_ACCEL_METRICS_HH

#include <string>
#include <vector>

#include "accel/chip.hh"

namespace tenoc
{

/** One benchmark's result under one configuration. */
struct SuiteRun
{
    std::string abbr;
    TrafficClass cls = TrafficClass::LL;
    ChipResult result;
};

/** Harmonic mean of IPC over a suite. */
double harmonicMeanIpc(const std::vector<SuiteRun> &runs);

/**
 * Harmonic mean of per-benchmark speedups of `test` over `base`
 * (suites must be in the same benchmark order).
 */
double harmonicMeanSpeedup(const std::vector<SuiteRun> &base,
                           const std::vector<SuiteRun> &test);

/** Per-benchmark speedup (test over base), same order as inputs. */
std::vector<double> speedups(const std::vector<SuiteRun> &base,
                             const std::vector<SuiteRun> &test);

/**
 * The paper's two-letter classification (Sec. III-B): first letter H
 * if the perfect-NoC speedup exceeds 30%, second letter H if accepted
 * traffic with a perfect NoC exceeds 1 byte/cycle/node.
 */
TrafficClass classify(double perfect_speedup,
                      double accepted_bytes_per_node);

/** Mean over the subset of runs in a given class. */
double harmonicMeanIpcOfClass(const std::vector<SuiteRun> &runs,
                              TrafficClass cls);

} // namespace tenoc

#endif // TENOC_ACCEL_METRICS_HH
