/**
 * @file
 * Chip implementation.
 */

#include "accel/chip.hh"

#include <algorithm>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "common/log.hh"
#include "common/parallel.hh"
#include "common/snapshot.hh"
#include "dram/gddr3.hh"
#include "telemetry/telemetry.hh"

namespace tenoc
{

/** Core-side memory port: turns line requests into NoC packets. */
class Chip::CorePort : public CoreMemPort
{
  public:
    /**
     * @param slot core slot behind `node` (0 on an unconcentrated
     *        topology); stamped into each request's tag so MC replies
     *        demux back to the right core
     * @param node_deferred per-node deferred-request counter shared by
     *        all slots of `node`
     */
    CorePort(Chip &chip, NodeId node, unsigned slot,
             unsigned *node_deferred)
        : chip_(chip), node_(node), slot_(slot),
          node_deferred_(node_deferred)
    {}

    bool
    canSendRequests(unsigned n) const override
    {
        // Deferred requests still occupy their injection-queue slots
        // once replayed, so count them against the space now.  The
        // counter is shared by every core slot behind this node, and
        // a node's slots are swept in ascending order on one worker
        // (Chip::coreTick shards by node group), so the count a later
        // slot observes here equals exactly what serial immediate
        // injection would already have consumed.
        return chip_.net_->injectSpace(node_, 0) >=
            n + *node_deferred_;
    }

    void
    sendRead(Addr line) override
    {
        send(MemOp::READ_REQUEST, line);
    }

    void
    sendWrite(Addr line) override
    {
        send(MemOp::WRITE_REQUEST, line);
    }

    /** Parallel core sweep: buffer requests instead of injecting (the
     *  network's RNG and packet-id counter are shared). */
    void setDeferred(bool on) { defer_ = on; }

    /** Injects the buffered requests in issue order; called in core
     *  order on the orchestrating thread, so RNG draws and packet ids
     *  match the serial sweep exactly. */
    void
    flushDeferred()
    {
        for (const auto &[op, line] : deferred_)
            sendNow(op, line);
        *node_deferred_ -= static_cast<unsigned>(deferred_.size());
        deferred_.clear();
    }

  private:
    void
    send(MemOp op, Addr line)
    {
        if (defer_) {
            deferred_.emplace_back(op, line);
            ++*node_deferred_;
            return;
        }
        sendNow(op, line);
    }

    void
    sendNow(MemOp op, Addr line)
    {
        auto pkt = makePacket();
        pkt->src = node_;
        pkt->op = op;
        pkt->protoClass = 0;
        pkt->addr = line;
        pkt->tag = slot_; // reply demux key at a concentrated node
        pkt->sizeFlits = chip_.net_->packetFlits(op);
        pkt->sizeBytes = memOpBytes(op);
        const unsigned mc = channelOf(line, chip_.params_.mc.numChannels,
                                      chip_.params_.mc.interleaveBytes);
        pkt->dst = chip_.topology().mcNodes()[mc];
        chip_.net_->inject(std::move(pkt), chip_.icnt_now_);
    }

    Chip &chip_;
    NodeId node_;
    unsigned slot_;
    unsigned *node_deferred_;
    bool defer_ = false;
    std::vector<std::pair<MemOp, Addr>> deferred_;
};

/** Core-side packet sink: read replies wake waiting warps.  One sink
 *  per compute node; the reply's tag (the requesting slot index, set
 *  by CorePort and echoed by the MC) picks the core behind the node. */
class Chip::CoreSink : public PacketSink
{
  public:
    explicit CoreSink(std::vector<SimtCore *> slots)
        : slots_(std::move(slots))
    {}

    bool
    tryReserve(const Packet &pkt) override
    {
        (void)pkt;
        return true; // cores always accept replies (MSHR bounded)
    }

    void
    deliver(PacketPtr pkt, Cycle now) override
    {
        (void)now;
        tenoc_assert(pkt->op == MemOp::READ_REPLY,
                     "core received a non-reply packet");
        tenoc_assert(pkt->tag < slots_.size(), "reply tag ", pkt->tag,
                     " has no core slot at this node");
        slots_[pkt->tag]->onReadReply(pkt->addr);
    }

  private:
    std::vector<SimtCore *> slots_;
};

Chip::Chip(const ChipParams &params, const KernelProfile &profile,
           InstSourceFactory factory)
    : params_(params), profile_(profile)
{
    buildNetwork();
    const Topology &topo = net_->topology();

    core_dom_ = clocks_.addDomain("core", params_.coreClockMhz);
    icnt_dom_ = clocks_.addDomain("icnt", params_.icntClockMhz);
    mem_dom_ = clocks_.addDomain("mem", params_.memClockMhz);

    // MC nodes.
    McNodeParams mc_params = params_.mc;
    mc_params.niQueueCap = params_.mesh.ni.injQueueCap;
    if (profile_.realCaches) {
        mc_params.l2.mode = CacheParams::Mode::REAL;
    } else {
        mc_params.l2.mode = CacheParams::Mode::PROFILE;
        mc_params.l2.profileHitRate = profile_.l2HitRate;
    }
    mc_params.l2.sizeBytes = 128 * 1024; // Table II
    mc_params.l2.ways = 8;
    unsigned mc_index = 0;
    for (NodeId n : topo.mcNodes()) {
        mcs_.push_back(std::make_unique<McNode>(
            n, mc_index, mc_params, *net_,
            params_.seed + 31 * mc_index));
        net_->setSink(n, mcs_.back().get());
        ++mc_index;
    }

    // Compute cores: `concentration` core slots share each compute
    // node.  A slot injects with its index as the packet tag and the
    // node's single sink demuxes replies by that tag.
    core_nodes_ = topo.computeNodes();
    core_conc_ = topo.concentration();
    node_deferred_.assign(core_nodes_.size(), 0);
    unsigned core_id = 0;
    for (std::size_t g = 0; g < core_nodes_.size(); ++g) {
        const NodeId n = core_nodes_[g];
        std::vector<SimtCore *> slots;
        for (unsigned k = 0; k < core_conc_; ++k) {
            ports_.push_back(std::make_unique<CorePort>(
                *this, n, k, &node_deferred_[g]));
            cores_.push_back(std::make_unique<SimtCore>(
                core_id, params_.core, profile_, *ports_.back(),
                params_.seed, factory ? factory(core_id) : nullptr));
            slots.push_back(cores_.back().get());
            ++core_id;
        }
        sinks_.push_back(std::make_unique<CoreSink>(std::move(slots)));
        net_->setSink(n, sinks_.back().get());
    }

    // Parallel core sweep (see docs/performance.md): same thread
    // budget as the network's cycle engine.  Sharding is by node
    // group, never splitting a node's slots across workers, so the
    // shared deferred-request counters are raced by no one and later
    // slots observe earlier slots' claims exactly as the serial sweep
    // would.
    core_threads_ = std::max(1u, std::min<unsigned>(
        parallel::resolveCycleThreads(params_.mesh.cycleThreads),
        static_cast<unsigned>(core_nodes_.size())));
    if (core_threads_ > 1) {
        for (auto &p : ports_)
            p->setDeferred(true);
    }

    buildStatModel();
}

Chip::~Chip() = default;

void
Chip::buildStatModel()
{
    stats_root_.addValue("core_cycles", [this] {
        return static_cast<double>(core_now_);
    });
    stats_root_.addValue("icnt_cycles", [this] {
        return static_cast<double>(icnt_now_);
    });
    stats_root_.addValue("mem_cycles", [this] {
        return static_cast<double>(mem_now_);
    });
    stats_root_.addValue("scalar_insts", [this] {
        std::uint64_t n = 0;
        for (const auto &c : cores_)
            n += c->scalarInsts();
        return static_cast<double>(n);
    });
    stats_root_.addValue("ipc", [this] {
        std::uint64_t n = 0;
        for (const auto &c : cores_)
            n += c->scalarInsts();
        return core_now_
            ? static_cast<double>(n) / core_now_ : 0.0;
    });

    net_->stats().registerStats(net_group_);
    stats_root_.addChild(&net_group_);

    for (std::size_t i = 0; i < cores_.size(); ++i) {
        core_groups_.push_back(std::make_unique<StatGroup>(
            "core" + std::to_string(i)));
        cores_[i]->registerStats(*core_groups_.back());
        stats_root_.addChild(core_groups_.back().get());
    }
    for (std::size_t i = 0; i < mcs_.size(); ++i) {
        mc_groups_.push_back(std::make_unique<StatGroup>(
            "mc" + std::to_string(i)));
        mcs_[i]->registerStats(*mc_groups_.back());
        dram_groups_.push_back(std::make_unique<StatGroup>("dram"));
        mcs_[i]->dram().registerStats(*dram_groups_.back());
        mc_groups_.back()->addChild(dram_groups_.back().get());
        stats_root_.addChild(mc_groups_.back().get());
    }
}

void
Chip::attachTelemetry(telemetry::TelemetryHub &hub)
{
    hub_ = &hub;
    net_->attachTelemetry(hub);
    auto *sampler = hub.sampler();
    if (!sampler)
        return;
    sampler->addCounter("scalar_insts", [this] {
        std::uint64_t n = 0;
        for (const auto &c : cores_)
            n += c->scalarInsts();
        return static_cast<double>(n);
    });
    sampler->addCounterVector(
        "core_insts", cores_.size(), [this](std::size_t i) {
            return static_cast<double>(cores_[i]->scalarInsts());
        });
    sampler->addCounter("dram_row_hits", [this] {
        std::uint64_t n = 0;
        for (const auto &mc : mcs_)
            n += mc->dram().rowHits();
        return static_cast<double>(n);
    });
    sampler->addCounter("mc_stall_cycles", [this] {
        std::uint64_t n = 0;
        for (const auto &mc : mcs_)
            n += mc->stallCycles();
        return static_cast<double>(n);
    });
    sampler->addCounter("flits_injected", [this] {
        return static_cast<double>(net_->stats().flitsInjected);
    });
    sampler->addCounter("flits_ejected", [this] {
        return static_cast<double>(net_->stats().flitsEjected);
    });
}

void
Chip::buildNetwork()
{
    switch (params_.netKind) {
      case NetKind::MESH:
        net_ = std::make_unique<MeshNetwork>(params_.mesh);
        break;
      case NetKind::DOUBLE:
        net_ = std::make_unique<DoubleNetwork>(params_.mesh);
        break;
      case NetKind::PERFECT:
      case NetKind::BW_LIMITED: {
        IdealNetworkParams ip;
        ip.topo = params_.mesh.topo;
        ip.flitBytes = params_.mesh.flitBytes;
        ip.bandwidthLimited =
            (params_.netKind == NetKind::BW_LIMITED);
        ip.flitsPerCycle = params_.idealFlitsPerCycle;
        net_ = std::make_unique<IdealNetwork>(ip);
        break;
      }
    }
}

bool
Chip::allCoresDone() const
{
    for (const auto &c : cores_)
        if (!c->done())
            return false;
    return true;
}

void
Chip::icntTick()
{
    for (auto &mc : mcs_)
        mc->icntCycle(icnt_now_);
    net_->cycle(icnt_now_);
    ++icnt_now_;
    if (hub_)
        hub_->tick(icnt_now_);
}

void
Chip::coreTick()
{
    if (core_threads_ > 1) {
        // Cores are independent within one core-clock edge (replies
        // arrive from icntTick, not here); their memory requests
        // buffer in the CorePorts and replay below in core order.
        // Shards cover whole node groups so slots sharing a node's
        // deferred counter run on one worker, in ascending order.
        const auto groups = static_cast<unsigned>(core_nodes_.size());
        parallel::parallelFor(core_threads_, [&](unsigned s) {
            const auto [lo, hi] =
                parallel::shardRange(s, groups, core_threads_);
            for (unsigned g = lo; g < hi; ++g)
                for (unsigned k = 0; k < core_conc_; ++k)
                    cores_[g * core_conc_ + k]->cycle(core_now_);
        });
        for (auto &p : ports_)
            p->flushDeferred();
        ++core_now_;
        return;
    }
    for (auto &c : cores_)
        c->cycle(core_now_);
    ++core_now_;
}

void
Chip::memTick()
{
    for (auto &mc : mcs_)
        mc->memCycle(mem_now_);
    ++mem_now_;
}

ChipResult
Chip::run()
{
    bool timed_out = false;
    auto tick = [&] {
        const auto &ticked = clocks_.advance();
        if (ticked[mem_dom_])
            memTick();
        if (ticked[icnt_dom_])
            icntTick();
        if (ticked[core_dom_])
            coreTick();
        if (icnt_now_ >= params_.maxIcntCycles) {
            warn("chip run hit the cycle cap (", params_.maxIcntCycles,
                 " icnt cycles) for workload ", profile_.abbr);
            if (!net_->drained()) {
                // Undrained traffic at the cap smells like deadlock:
                // dump the network's wait-for state for diagnosis.
                const std::string report =
                    net_->diagnosticReport(icnt_now_);
                if (!report.empty())
                    warn("network diagnostic snapshot:\n", report);
            }
            timed_out = true;
        }
        return !timed_out;
    };
    auto quiescent = [&] {
        if (!net_->drained())
            return false;
        for (const auto &mc : mcs_)
            if (!mc->idle())
                return false;
        for (const auto &c : cores_)
            if (!c->flushed())
                return false;
        return true;
    };

    auto step = [&] {
        if (!tick())
            return false;
        if (checkpoint_at_ != 0 && !checkpoint_written_ &&
            icnt_now_ >= checkpoint_at_)
            writeCheckpoint();
        if (periodic_every_ != 0 && icnt_now_ >= periodic_next_) {
            writePeriodicCheckpoint();
            if (periodic_every_ != 0)
                while (periodic_next_ <= icnt_now_)
                    periodic_next_ += periodic_every_;
        }
        if (progress_every_ != 0 && icnt_now_ >= progress_next_) {
            progress_fn_(progressNow());
            while (progress_next_ <= icnt_now_)
                progress_next_ += progress_every_;
        }
        return true;
    };

    // An immediate first heartbeat tells the supervisor the worker is
    // alive before the first (possibly long) cycle interval elapses.
    if (progress_every_ != 0)
        progress_fn_(progressNow());

    const unsigned kernels = std::max(1u, profile_.numKernels);
    while (kernel_ < kernels && !timed_out) {
        if (phase_ == Phase::RUNNING) {
            while (!allCoresDone() && step()) {
            }
            if (timed_out)
                break;
            if (kernel_ + 1 == kernels)
                break; // the final launch needs no barrier
            phase_ = Phase::DRAINING;
        }
        // Kernel-launch barrier: drain every in-flight packet and
        // DRAM operation before the next launch (Sec. II's software-
        // managed coherence flushes between kernels).
        while (!quiescent() && step()) {
        }
        if (timed_out)
            break;
        for (auto &c : cores_)
            c->restart();
        phase_ = Phase::RUNNING;
        ++kernel_;
    }
    if (hub_)
        hub_->finish(icnt_now_);
    return collect(timed_out);
}

void
Chip::scheduleCheckpoint(Cycle icnt_cycle, std::string path)
{
    tenoc_assert(icnt_cycle > 0, "checkpoint cycle must be positive");
    checkpoint_at_ = icnt_cycle;
    checkpoint_path_ = std::move(path);
    checkpoint_written_ = false;
}

void
Chip::writeCheckpoint()
{
    std::string error;
    if (!saveToFile(checkpoint_path_, &error))
        tenoc_fatal("checkpoint write failed: ", error);
    checkpoint_written_ = true;
}

void
Chip::schedulePeriodicCheckpoint(Cycle every, std::string path)
{
    tenoc_assert(every > 0, "checkpoint interval must be positive");
    tenoc_assert(!path.empty(), "periodic checkpoint needs a path");
    periodic_every_ = every;
    periodic_path_ = std::move(path);
    // Anchor to absolute cycles so a resumed run checkpoints at the
    // same cycle numbers the original would have.
    periodic_next_ = (icnt_now_ / every + 1) * every;
}

void
Chip::writePeriodicCheckpoint()
{
    const std::string tmp = periodic_path_ + ".tmp";
    std::string error;
    if (!saveToFile(tmp, &error) ||
        std::rename(tmp.c_str(), periodic_path_.c_str()) != 0) {
        warn("periodic checkpoint to '", periodic_path_,
             "' failed (", error.empty() ? "rename failed" : error,
             "); disarming further checkpoints");
        std::remove(tmp.c_str());
        periodic_every_ = 0;
    }
}

void
Chip::setProgressCallback(Cycle every, ProgressFn fn)
{
    tenoc_assert(every > 0, "progress interval must be positive");
    tenoc_assert(static_cast<bool>(fn), "progress callback is empty");
    progress_every_ = every;
    progress_fn_ = std::move(fn);
    progress_next_ = (icnt_now_ / every + 1) * every;
}

Chip::Progress
Chip::progressNow() const
{
    Progress p;
    p.icntCycle = icnt_now_;
    p.coreCycle = core_now_;
    p.kernel = kernel_;
    for (const auto &c : cores_)
        p.scalarInsts += c->scalarInsts();
    p.packetsEjected =
        const_cast<Chip *>(this)->net_->stats().packetsEjected;
    return p;
}

void
Chip::save(SnapshotWriter &w) const
{
    w.tag("CHIP");
    w.u64(clocks_.size());
    for (std::size_t d = 0; d < clocks_.size(); ++d) {
        const ClockDomain &dom = clocks_.domain(d);
        w.u64(dom.cycles());
        w.u64(dom.nextEdgePs());
    }
    w.u64(clocks_.nowPs());
    w.u64(icnt_now_);
    w.u64(core_now_);
    w.u64(mem_now_);
    w.u32(kernel_);
    w.u8(static_cast<std::uint8_t>(phase_));
    net_->save(w);
    w.u64(mcs_.size());
    for (const auto &mc : mcs_)
        mc->save(w);
    w.u64(cores_.size());
    for (const auto &core : cores_)
        core->save(w);
    w.tag("CEND");
}

void
Chip::restore(SnapshotReader &r)
{
    r.tag("CHIP");
    const std::uint64_t ndoms = r.u64();
    tenoc_assert(ndoms == clocks_.size(),
                 "clock-domain count mismatch in snapshot");
    for (std::size_t d = 0; d < clocks_.size(); ++d) {
        const Cycle cycles = r.u64();
        const Picoseconds edge = r.u64();
        clocks_.restoreDomain(d, cycles, edge);
    }
    clocks_.setNowPs(r.u64());
    icnt_now_ = r.u64();
    core_now_ = r.u64();
    mem_now_ = r.u64();
    kernel_ = r.u32();
    phase_ = static_cast<Phase>(r.u8());
    net_->restore(r);
    const std::uint64_t nmcs = r.u64();
    tenoc_assert(nmcs == mcs_.size(), "MC count mismatch in snapshot");
    for (auto &mc : mcs_)
        mc->restore(r);
    const std::uint64_t ncores = r.u64();
    tenoc_assert(ncores == cores_.size(),
                 "core count mismatch in snapshot");
    for (auto &core : cores_)
        core->restore(r);
    r.tag("CEND");
}

bool
Chip::saveToFile(const std::string &path, std::string *error) const
{
    SnapshotWriter w;
    save(w);
    return saveSnapshotFile(path, w, error);
}

bool
Chip::restoreFromFile(const std::string &path, std::string *error)
{
    SnapshotReader r;
    if (!loadSnapshotFile(path, r, error))
        return false;
    restore(r);
    if (!r.exhausted()) {
        if (error)
            *error = "snapshot has trailing bytes (chip/blob mismatch)";
        return false;
    }
    return true;
}

ChipResult
Chip::collect(bool timed_out) const
{
    ChipResult r;
    r.timedOut = timed_out;
    r.coreCycles = core_now_;
    r.icntCycles = icnt_now_;
    r.memCycles = mem_now_;
    for (const auto &c : cores_)
        r.scalarInsts += c->scalarInsts();
    r.ipc = r.coreCycles
        ? static_cast<double>(r.scalarInsts) / r.coreCycles : 0.0;

    double stall_sum = 0.0;
    double eff_sum = 0.0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    for (const auto &mc : mcs_) {
        stall_sum += mc->stallFraction();
        r.mcStallFractionMax =
            std::max(r.mcStallFractionMax, mc->stallFraction());
        eff_sum += mc->dram().efficiency();
        hits += mc->dram().rowHits();
        misses += mc->dram().rowMisses();
    }
    if (!mcs_.empty()) {
        r.mcStallFractionMean = stall_sum / mcs_.size();
        r.dramEfficiency = eff_sum / mcs_.size();
    }
    r.dramRowHitRate = (hits + misses)
        ? static_cast<double>(hits) / (hits + misses) : 0.0;

    const auto &stats =
        const_cast<Chip *>(this)->net_->stats();
    r.mcInjectionRate = stats.injectionRate(topology().mcNodes());
    {
        std::uint64_t mc_bytes = 0;
        std::uint64_t core_bytes = 0;
        for (NodeId n : topology().mcNodes())
            mc_bytes += stats.nodeInjectedBytes[n];
        for (NodeId n : core_nodes_)
            core_bytes += stats.nodeInjectedBytes[n];
        const double mc_per = mcs_.empty()
            ? 0.0 : static_cast<double>(mc_bytes) / mcs_.size();
        const double core_per = core_nodes_.empty()
            ? 0.0 : static_cast<double>(core_bytes) / core_nodes_.size();
        r.mcToCoreInjectionRatio =
            core_per > 0.0 ? mc_per / core_per : 0.0;
    }
    r.avgNetLatency = stats.netLatency.mean();
    r.avgTotalLatency = stats.totalLatency.mean();
    r.acceptedBytesPerNode = stats.acceptedBytesPerCyclePerNode();
    r.packetsEjected = stats.packetsEjected;
    return r;
}

} // namespace tenoc
