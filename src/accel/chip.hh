/**
 * @file
 * Closed-loop manycore-accelerator chip simulator.
 *
 * Assembles 28 SIMT cores, the NoC (mesh / double mesh / ideal), and
 * 8 MC nodes (L2 bank + FR-FCFS GDDR3) across three clock domains
 * (Table II: core 1296 MHz, interconnect + L2 602 MHz, DRAM 1107 MHz)
 * and runs a kernel profile to completion, reporting application-level
 * throughput (scalar IPC) and the network/memory statistics used by
 * the paper's figures.
 */

#ifndef TENOC_ACCEL_CHIP_HH
#define TENOC_ACCEL_CHIP_HH

#include <functional>
#include <memory>
#include <vector>

#include "accel/chip_config.hh"
#include "accel/mc_node.hh"
#include "common/clock.hh"
#include "gpu/simt_core.hh"
#include "noc/ideal_network.hh"
#include "noc/mesh_network.hh"

namespace tenoc
{

/** Results of one closed-loop run. */
struct ChipResult
{
    double ipc = 0.0;              ///< scalar instructions / core cycle
    std::uint64_t scalarInsts = 0;
    Cycle coreCycles = 0;
    Cycle icntCycles = 0;
    Cycle memCycles = 0;
    bool timedOut = false;

    double mcStallFractionMean = 0.0; ///< Fig. 11
    double mcStallFractionMax = 0.0;
    double mcInjectionRate = 0.0;     ///< flits/cycle/MC node (Fig. 8)
    double avgNetLatency = 0.0;       ///< Fig. 10
    double avgTotalLatency = 0.0;
    double acceptedBytesPerNode = 0.0;///< classification (Sec. III-B)
    /** Ratio of per-MC to per-core injected bytes/cycle (the paper
     *  reports 6.9x on average, Sec. III-D). */
    double mcToCoreInjectionRatio = 0.0;
    double dramEfficiency = 0.0;      ///< Fig. 19 discussion
    double dramRowHitRate = 0.0;
    std::uint64_t packetsEjected = 0;
};

class Chip
{
  public:
    /** Builds a per-core instruction source (e.g. a trace slice). */
    using InstSourceFactory =
        std::function<std::unique_ptr<InstSource>(unsigned core_id)>;

    /**
     * @param params chip configuration
     * @param profile kernel to execute (cache modes, MLP; and the
     *        instruction statistics when no factory is given)
     * @param factory optional per-core instruction sources (trace
     *        replay); null uses the profile's statistics
     */
    Chip(const ChipParams &params, const KernelProfile &profile,
         InstSourceFactory factory = {});
    ~Chip();

    /**
     * Runs the kernel to completion (or the cycle cap).  Resumes from
     * the kernel/phase position left by restore(); a fresh chip starts
     * at kernel 0.
     */
    ChipResult run();

    /**
     * Arms a one-shot checkpoint: once the interconnect clock reaches
     * `icnt_cycle` during run(), the full simulator state is sealed
     * into `path` and the run continues.  fatal() if the file cannot
     * be written or the network kind cannot be checkpointed.
     */
    void scheduleCheckpoint(Cycle icnt_cycle, std::string path);

    /**
     * Arms recurring checkpoints: every `every` interconnect cycles
     * the full state is sealed into `path` (written to `path.tmp`,
     * then renamed, so a reader — or a retry resuming from the file —
     * never sees a torn snapshot).  The cadence is anchored to
     * absolute cycle numbers, so a run resumed from one of these
     * checkpoints re-arms on the same schedule as the original.
     * A failed write warns and disarms instead of killing the run:
     * checkpointing is an insurance policy, not a correctness
     * dependency.
     */
    void schedulePeriodicCheckpoint(Cycle every, std::string path);

    /** Live counters handed to the progress callback during run(). */
    struct Progress
    {
        Cycle icntCycle = 0;
        Cycle coreCycle = 0;
        std::uint64_t scalarInsts = 0;
        std::uint64_t packetsEjected = 0;
        unsigned kernel = 0;
    };
    using ProgressFn = std::function<void(const Progress &)>;

    /**
     * Registers a callback invoked every `every` interconnect cycles
     * during run() (and once immediately before the first tick), with
     * live cumulative counters.  The fleet worker uses this to stream
     * heartbeat/telemetry frames to its supervisor; the callback must
     * not mutate the chip.  Like the checkpoint schedule, the cadence
     * is anchored to absolute cycle numbers.
     */
    void setProgressCallback(Cycle every, ProgressFn fn);

    /** Serializes clocks, network, MCs, and cores. */
    void save(SnapshotWriter &w) const;

    /** Restores state written by save() into an identically
     *  configured chip (same config file + overrides + workload). */
    void restore(SnapshotReader &r);

    /** save() sealed into `path`. @return false + error on I/O. */
    bool saveToFile(const std::string &path, std::string *error) const;

    /** Restores from a sealed snapshot file.  @return false + error
     *  on I/O or a version/format mismatch; fatal() on a blob that
     *  does not match this chip's structure. */
    bool restoreFromFile(const std::string &path, std::string *error);

    Network &network() { return *net_; }
    const Topology &topology() const { return net_->topology(); }

    /**
     * Attaches a telemetry hub before run(): registers interval-
     * sampler probes (per-core instructions, DRAM row hits, MC stalls,
     * network flit flow), wires flit tracers into the network, and
     * ticks the sampler from the interconnect clock.
     */
    void attachTelemetry(telemetry::TelemetryHub &hub);

    /** Full chip statistics hierarchy (root group "chip"). */
    const StatGroup &statGroup() const { return stats_root_; }

  private:
    class CorePort;
    class CoreSink;

    void buildNetwork();
    void buildStatModel();
    void writeCheckpoint();
    void writePeriodicCheckpoint();
    Progress progressNow() const;
    void icntTick();
    void coreTick();
    void memTick();
    bool allCoresDone() const;
    ChipResult collect(bool timed_out) const;

    ChipParams params_;
    KernelProfile profile_;

    std::unique_ptr<Network> net_;
    std::vector<std::unique_ptr<SimtCore>> cores_;
    std::vector<std::unique_ptr<CorePort>> ports_;
    std::vector<std::unique_ptr<CoreSink>> sinks_;
    std::vector<std::unique_ptr<McNode>> mcs_;
    std::vector<NodeId> core_nodes_;
    /** Core slots per compute node (topology concentration). */
    unsigned core_conc_ = 1;
    /** Per-compute-node deferred-request counts, shared by the node's
     *  CorePorts so concentrated slots see each other's queued claims
     *  on the injection queue (exactness of canSendRequests). */
    std::vector<unsigned> node_deferred_;

    ClockDomainSet clocks_;
    ClockDomainSet::DomainId core_dom_ = 0;
    ClockDomainSet::DomainId icnt_dom_ = 0;
    ClockDomainSet::DomainId mem_dom_ = 0;

    Cycle icnt_now_ = 0;
    Cycle core_now_ = 0;
    Cycle mem_now_ = 0;

    /** Kernel-sequence position, serialized so a restored chip resumes
     *  run() exactly where the checkpointed one stood. */
    enum class Phase : std::uint8_t
    {
        RUNNING, ///< executing warps until every core retires
        DRAINING ///< kernel-launch barrier: draining NoC/MC/DRAM
    };
    unsigned kernel_ = 0;
    Phase phase_ = Phase::RUNNING;

    Cycle checkpoint_at_ = 0; ///< 0 = no checkpoint armed
    std::string checkpoint_path_;
    bool checkpoint_written_ = false;

    // Recurring checkpoints and progress heartbeats are per-attempt
    // supervision plumbing: deliberately not serialized, so a resumed
    // run re-arms its own schedule (anchored to absolute cycles) and
    // the blob stays identical to an unsupervised run's.
    Cycle periodic_every_ = 0; ///< 0 = no periodic checkpoints
    Cycle periodic_next_ = 0;
    std::string periodic_path_;
    Cycle progress_every_ = 0; ///< 0 = no progress callback
    Cycle progress_next_ = 0;
    ProgressFn progress_fn_;

    /** Worker threads for the per-core-clock SIMT sweep (resolved from
     *  mesh.cycleThreads; 1 = serial).  Cores shard by index; their
     *  memory requests defer in the CorePorts and replay in core order
     *  so network RNG draws and packet ids match serial exactly. */
    unsigned core_threads_ = 1;

    // Statistics hierarchy (groups are registries of pointers into the
    // components above, so they must outlive nothing).
    StatGroup stats_root_{"chip"};
    StatGroup net_group_{"net"};
    std::vector<std::unique_ptr<StatGroup>> core_groups_;
    std::vector<std::unique_ptr<StatGroup>> mc_groups_;
    std::vector<std::unique_ptr<StatGroup>> dram_groups_;

    telemetry::TelemetryHub *hub_ = nullptr;
};

} // namespace tenoc

#endif // TENOC_ACCEL_CHIP_HH
