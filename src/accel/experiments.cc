/**
 * @file
 * Experiment driver implementation.
 */

#include "accel/experiments.hh"

#include <cstdlib>

#include "common/log.hh"

namespace tenoc
{

ChipResult
runWorkload(const ChipParams &params, const KernelProfile &profile)
{
    Chip chip(params, profile);
    return chip.run();
}

std::vector<SuiteRun>
runSuite(const ChipParams &params, double scale)
{
    std::vector<SuiteRun> out;
    for (const auto &profile : workloadSuite()) {
        const KernelProfile scaled =
            scale == 1.0 ? profile : scaleWorkload(profile, scale);
        SuiteRun run;
        run.abbr = profile.abbr;
        run.cls = profile.expectedClass;
        run.result = runWorkload(params, scaled);
        out.push_back(std::move(run));
    }
    return out;
}

std::vector<SuiteRun>
runSuite(ConfigId config, double scale, std::uint64_t seed)
{
    return runSuite(makeConfig(config, seed), scale);
}

double
envScale(double def)
{
    const char *env = std::getenv("TENOC_SCALE");
    if (!env)
        return def;
    const double v = std::atof(env);
    if (v <= 0.0) {
        warn("ignoring invalid TENOC_SCALE='", env, "'");
        return def;
    }
    return v;
}

} // namespace tenoc
