/**
 * @file
 * Experiment driver implementation.
 */

#include "accel/experiments.hh"

#include <cstdlib>

#include "common/log.hh"
#include "telemetry/telemetry.hh"

namespace tenoc
{

ChipResult
runWorkload(const ChipParams &params, const KernelProfile &profile)
{
    return runWorkload(params, profile, nullptr);
}

ChipResult
runWorkload(const ChipParams &params, const KernelProfile &profile,
            telemetry::TelemetryHub *hub)
{
    return runWorkload(params, profile, hub, RunOptions{});
}

ChipResult
runWorkload(const ChipParams &params, const KernelProfile &profile,
            telemetry::TelemetryHub *hub, const RunOptions &opts)
{
    Chip chip(params, profile);
    if (!opts.restoreFrom.empty()) {
        std::string error;
        if (!chip.restoreFromFile(opts.restoreFrom, &error))
            tenoc_fatal("cannot restore checkpoint '",
                        opts.restoreFrom, "': ", error);
    }
    if (opts.checkpointAt != 0) {
        if (opts.checkpointOut.empty())
            tenoc_fatal("checkpoint cycle given without an output "
                        "file");
        chip.scheduleCheckpoint(opts.checkpointAt, opts.checkpointOut);
    }
    if (opts.checkpointEvery != 0) {
        if (opts.checkpointEveryOut.empty())
            tenoc_fatal("periodic checkpoint interval given without "
                        "an output file");
        chip.schedulePeriodicCheckpoint(opts.checkpointEvery,
                                        opts.checkpointEveryOut);
    }
    if (opts.progressEvery != 0) {
        if (!opts.onProgress)
            tenoc_fatal("progress interval given without a callback");
        chip.setProgressCallback(opts.progressEvery, opts.onProgress);
    }
    if (hub)
        chip.attachTelemetry(*hub);
    ChipResult result = chip.run();
    if (hub)
        hub->writeOutputs(&chip.statGroup());
    return result;
}

std::vector<SuiteRun>
runSuite(const ChipParams &params, double scale)
{
    std::vector<SuiteRun> out;
    for (const auto &profile : workloadSuite()) {
        const KernelProfile scaled =
            scale == 1.0 ? profile : scaleWorkload(profile, scale);
        SuiteRun run;
        run.abbr = profile.abbr;
        run.cls = profile.expectedClass;
        run.result = runWorkload(params, scaled);
        out.push_back(std::move(run));
    }
    return out;
}

std::vector<SuiteRun>
runSuite(ConfigId config, double scale, std::uint64_t seed)
{
    return runSuite(makeConfig(config, seed), scale);
}

double
envScale(double def)
{
    const char *env = std::getenv("TENOC_SCALE");
    if (!env)
        return def;
    const double v = std::atof(env);
    if (v <= 0.0) {
        warn("ignoring invalid TENOC_SCALE='", env, "'");
        return def;
    }
    return v;
}

} // namespace tenoc
