/**
 * @file
 * Fork/exec process pool with per-job wall-clock timeouts.
 *
 * Each submitted command runs in its own child process; a child that
 * crashes (signal), calls tenoc_fatal (exit 1), or exceeds its timeout
 * (SIGKILL) is reported through ProcessResult without disturbing its
 * siblings.  This is the isolation layer that lets tenoc_server sweep
 * hostile configs: the deadlock watchdog aborting one config's
 * simulation is just another nonzero exit here.
 */

#ifndef TENOC_FLEET_POOL_HH
#define TENOC_FLEET_POOL_HH

#include <functional>
#include <string>
#include <sys/types.h>
#include <vector>

namespace tenoc::fleet
{

/** How one child process ended. */
struct ProcessResult
{
    int exitCode = -1;   ///< exit status (if exited normally)
    int termSignal = 0;  ///< terminating signal (0 = exited normally)
    bool timedOut = false; ///< killed by the pool's timeout

    bool ok() const { return !timedOut && termSignal == 0 && exitCode == 0; }
};

class ProcessPool
{
  public:
    using DoneFn = std::function<void(std::size_t job_index,
                                      const ProcessResult &)>;

    /** @param workers maximum concurrent children (min 1). */
    explicit ProcessPool(unsigned workers);

    /**
     * Queues `argv` (argv[0] = executable path) as job `job_index`.
     * `timeout_seconds` of wall clock (0 = unlimited) before the child
     * is SIGKILLed.
     */
    void submit(std::size_t job_index, std::vector<std::string> argv,
                unsigned timeout_seconds);

    /**
     * Runs every queued job across the worker slots and invokes
     * `done` (on this thread) as each child is reaped.  Returns when
     * all jobs have finished.
     */
    void runAll(const DoneFn &done);

    unsigned workers() const { return workers_; }

  private:
    struct Pending
    {
        std::size_t index;
        std::vector<std::string> argv;
        unsigned timeoutSeconds;
    };

    struct Running
    {
        std::size_t index;
        pid_t pid;
        unsigned timeoutSeconds;
        double startedAt; ///< monotonic seconds
    };

    unsigned workers_;
    std::vector<Pending> queue_;
};

} // namespace tenoc::fleet

#endif // TENOC_FLEET_POOL_HH
