/**
 * @file
 * Fork/exec process pool with per-job timeouts, heartbeat
 * supervision, and resource limits.
 *
 * Each submitted command runs in its own child process; a child that
 * crashes (signal), calls tenoc_fatal (exit 1), or exceeds its timeout
 * (SIGKILL) is reported through ProcessResult without disturbing its
 * siblings.  This is the isolation layer that lets tenoc_server sweep
 * hostile configs: the deadlock watchdog aborting one config's
 * simulation is just another nonzero exit here.
 *
 * On top of isolation, the pool supervises: every child gets a status
 * pipe on fd STATUS_FD over which workers stream newline-delimited
 * heartbeat/telemetry frames.  A child that stops framing for longer
 * than its heartbeat timeout is declared *hung* — distinct from a
 * simulator deadlock, which the in-process watchdog converts into a
 * diagnosed exit — SIGKILL'd, and reported with `hung = true` so the
 * server can retry it.  Children can also be dispatched with a start
 * delay (retry backoff) and per-process rlimits (address space, CPU),
 * and jobs may be re-submitted from inside the completion callback,
 * which is how the server's retry loop re-dispatches failures without
 * tearing the pool down.
 */

#ifndef TENOC_FLEET_POOL_HH
#define TENOC_FLEET_POOL_HH

#include <csignal>
#include <functional>
#include <string>
#include <sys/types.h>
#include <vector>

namespace tenoc::fleet
{

/** How one child process ended. */
struct ProcessResult
{
    int exitCode = -1;   ///< exit status (if exited normally)
    int termSignal = 0;  ///< terminating signal (0 = exited normally)
    bool timedOut = false; ///< killed by the pool's wall-clock timeout
    bool hung = false;   ///< killed for missing its heartbeat deadline

    bool
    ok() const
    {
        return !timedOut && !hung && termSignal == 0 && exitCode == 0;
    }
};

/** Per-job scheduling and supervision knobs. */
struct SpawnOptions
{
    unsigned timeoutSeconds = 0;   ///< wall clock to SIGKILL (0 = off)
    unsigned heartbeatTimeoutSeconds = 0; ///< frame silence to SIGKILL
    double startDelaySeconds = 0.0; ///< retry backoff before spawning
    unsigned rlimitAsMb = 0;       ///< RLIMIT_AS in MiB (0 = off)
    unsigned rlimitCpuSeconds = 0; ///< RLIMIT_CPU (0 = off)
};

class ProcessPool
{
  public:
    /** Child-side fd the status pipe is dup'd onto. */
    static constexpr int STATUS_FD = 3;

    using DoneFn = std::function<void(std::size_t job_index,
                                      const ProcessResult &)>;
    /** One newline-delimited frame from a child's status pipe. */
    using FrameFn = std::function<void(std::size_t job_index,
                                       const std::string &frame)>;

    /** @param workers maximum concurrent children (min 1). */
    explicit ProcessPool(unsigned workers);

    /** Kills and reaps anything still running (no zombies left for
     *  init to inherit blame for). */
    ~ProcessPool();

    ProcessPool(const ProcessPool &) = delete;
    ProcessPool &operator=(const ProcessPool &) = delete;

    /**
     * Queues `argv` (argv[0] = executable path) as job `job_index`.
     * Legal from inside the runAll() completion callback: the job is
     * picked up by the running loop (after `opts.startDelaySeconds`).
     */
    void submit(std::size_t job_index, std::vector<std::string> argv,
                const SpawnOptions &opts);

    /** Back-compat convenience: timeout only. */
    void
    submit(std::size_t job_index, std::vector<std::string> argv,
           unsigned timeout_seconds)
    {
        SpawnOptions o;
        o.timeoutSeconds = timeout_seconds;
        submit(job_index, std::move(argv), o);
    }

    /**
     * Runs every queued job across the worker slots and invokes
     * `done` (on this thread) as each child is reaped and `frames`
     * (if given) for each status-pipe line as it arrives.  Returns
     * when all jobs — including any re-submitted from `done` — have
     * finished, or promptly after the stop flag trips (remaining
     * children are SIGKILL'd and reaped, pending jobs dropped).
     */
    void runAll(const DoneFn &done, const FrameFn &frames = {});

    /** Points the pool at an external stop flag (e.g. a SIGINT
     *  handler's sig_atomic_t); null disables. */
    void
    setStopFlag(const volatile std::sig_atomic_t *flag)
    {
        stop_flag_ = flag;
    }

    unsigned workers() const { return workers_; }

  private:
    struct Pending
    {
        std::size_t index;
        std::vector<std::string> argv;
        SpawnOptions opts;
        double readyAt; ///< monotonic seconds
    };

    struct Running
    {
        std::size_t index;
        pid_t pid;
        SpawnOptions opts;
        double startedAt;   ///< monotonic seconds
        double lastFrameAt; ///< last status-pipe activity
        int statusFd;       ///< read end of the status pipe
        std::string buf;    ///< partial frame carry-over
    };

    /** Reads everything available from r's status pipe; @return true
     *  on activity. */
    bool drainStatus(Running &r, const FrameFn &frames);
    /** SIGKILL + blocking reap of `r`; fills exit info into `res`. */
    void killAndReap(Running &r, ProcessResult &res);
    void reapAllRunning();
    bool stopRequested() const
    {
        return stop_flag_ && *stop_flag_;
    }

    unsigned workers_;
    std::vector<Pending> queue_;
    std::vector<Running> running_;
    const volatile std::sig_atomic_t *stop_flag_ = nullptr;
};

} // namespace tenoc::fleet

#endif // TENOC_FLEET_POOL_HH
