/**
 * @file
 * Fleet retry policy: exponential backoff with seeded jitter.
 *
 * A job whose worker crashed, hung, or timed out is re-dispatched up
 * to `maxAttempts` times.  The delay before attempt N doubles each
 * round and is scaled by a jitter factor drawn deterministically from
 * (seed, job hash, attempt), so (a) a sweep full of simultaneous
 * failures does not re-dispatch as a thundering herd and (b) the exact
 * schedule of any run can be reproduced from its seed.  Whether a
 * retry restarts cold or resumes from the job's last periodic
 * checkpoint is the server's business (docs/fleet.md); this header is
 * only the arithmetic.
 */

#ifndef TENOC_FLEET_RETRY_HH
#define TENOC_FLEET_RETRY_HH

#include <algorithm>
#include <cstdint>
#include <string>

#include "common/rng.hh"

namespace tenoc::fleet
{

/** FNV-1a 64-bit hash (stable job-hash -> jitter-stream mixing). */
inline std::uint64_t
fnv1a64(const void *data, std::size_t len,
        std::uint64_t h = 0xcbf29ce484222325ULL)
{
    const auto *p = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < len; ++i) {
        h ^= p[i];
        h *= 0x100000001b3ULL;
    }
    return h;
}

inline std::uint64_t
fnv1a64(const std::string &s)
{
    return fnv1a64(s.data(), s.size());
}

struct RetryPolicy
{
    /** Total attempts per job, including the first (1 = no retry). */
    unsigned maxAttempts = 1;
    /** Delay before the first retry (attempt 2), in seconds. */
    double backoffBaseSeconds = 0.5;
    /** Ceiling on the exponential delay, in seconds. */
    double backoffMaxSeconds = 30.0;
    /** Seed for the jitter stream. */
    std::uint64_t jitterSeed = 0x7e0cf1ee7ULL;

    /** @return true when attempt `attempt` (1-based) failing leaves
     *  retry budget. */
    bool
    shouldRetry(unsigned attempt) const
    {
        return attempt < maxAttempts;
    }

    /**
     * Delay in seconds before dispatching attempt `attempt` (2-based:
     * the first attempt never waits).  Exponential in the attempt
     * number, capped, then scaled into [0.5, 1.0) by jitter drawn from
     * (jitterSeed, hash, attempt).
     */
    double
    delayForAttempt(const std::string &hash, unsigned attempt) const
    {
        if (attempt <= 1)
            return 0.0;
        double d = backoffBaseSeconds;
        for (unsigned i = 2; i < attempt && d < backoffMaxSeconds; ++i)
            d *= 2.0;
        d = std::min(d, backoffMaxSeconds);
        Rng rng(jitterSeed ^ fnv1a64(hash) ^
                (0x9e3779b97f4a7c15ULL * attempt));
        return d * (0.5 + 0.5 * rng.nextDouble());
    }
};

} // namespace tenoc::fleet

#endif // TENOC_FLEET_RETRY_HH
