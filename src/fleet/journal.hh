/**
 * @file
 * Crash-safe write-ahead job journal (`tenoc-journal-v1`).
 *
 * The orchestrator appends one JSON line per job-state transition —
 * batch opened, attempt dispatched, job done (with the full result
 * document) — and fsyncs after every record.  A server that is
 * SIGKILL'd mid-sweep therefore leaves a journal from which a restart
 * can reconstruct exactly which jobs finished (their recorded results
 * are served without recompute, independent of the result cache) and
 * which must be re-enqueued.  Replay tolerates a torn final line: the
 * crash window between write and fsync costs at most the record being
 * written, never the records before it.
 *
 * Record shapes (one JSON object per line):
 *   {"event":"batch","schema":"tenoc-journal-v1","jobs":[h...]}
 *   {"event":"attempt","hash":h,"attempt":n}
 *   {"event":"done","hash":h,"status":s,"result":{...}}
 *   {"event":"batch-done","ok":n,"failed":m}
 */

#ifndef TENOC_FLEET_JOURNAL_HH
#define TENOC_FLEET_JOURNAL_HH

#include <map>
#include <string>
#include <vector>

#include "telemetry/json.hh"

namespace tenoc::fleet
{

/** Append-only, fsync'd record log. */
class Journal
{
  public:
    Journal() = default;
    ~Journal();
    Journal(const Journal &) = delete;
    Journal &operator=(const Journal &) = delete;

    /** Opens `path` for appending (creating it if absent).
     *  @return false + error if the file cannot be opened. */
    bool open(const std::string &path, std::string *error);

    /** Appends one record line and fsyncs.  Serialization failures
     *  warn (the journal is a recovery aid; losing a record must not
     *  kill the sweep). */
    void append(const telemetry::JsonValue &record);

    // Typed appenders for the tenoc-journal-v1 record shapes.
    void batchOpened(const std::vector<std::string> &hashes);
    void attemptStarted(const std::string &hash, unsigned attempt);
    void jobDone(const std::string &hash, const std::string &status,
                 const std::string &result_json);
    void batchClosed(std::size_t ok, std::size_t failed);

    void close();
    bool isOpen() const { return fd_ >= 0; }
    const std::string &path() const { return path_; }

  private:
    int fd_ = -1;
    std::string path_;
};

/** What a replayed journal says about an interrupted sweep. */
struct JournalState
{
    /** hash -> final result document (one line) of completed jobs. */
    std::map<std::string, std::string> doneResults;
    /** hash -> status string of completed jobs. */
    std::map<std::string, std::string> doneStatus;
    /** hash -> highest attempt number dispatched. */
    std::map<std::string, unsigned> attempts;
    /** Hashes named by the last batch record, in order. */
    std::vector<std::string> batchHashes;
    /** The batch ran to completion (batch-done record present). */
    bool batchDone = false;
    /** Records successfully parsed. */
    std::size_t records = 0;
    /** A torn/garbled trailing line was discarded. */
    bool truncated = false;

    /** Completed with a recoverable result document. */
    bool
    isDone(const std::string &hash) const
    {
        const auto it = doneResults.find(hash);
        return it != doneResults.end() && !it->second.empty();
    }
};

/**
 * Replays the journal at `path` into `out`.  A missing file yields an
 * empty state and returns true (nothing to recover).  A torn final
 * line is expected after a crash and sets `out.truncated`; a garbled
 * line anywhere else fails with an error.
 */
bool replayJournal(const std::string &path, JournalState &out,
                   std::string *error);

} // namespace tenoc::fleet

#endif // TENOC_FLEET_JOURNAL_HH
