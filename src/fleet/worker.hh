/**
 * @file
 * Fleet worker: runs exactly one job inside a fork/exec'd process.
 *
 * tenoc_server re-executes itself with `--worker --job FILE --out FILE
 * ...`; runWorkerJob() is everything that happens on the far side of
 * that exec.  Keeping the job in its own process means a crash,
 * deadlock watchdog abort, or runaway config only loses that job — the
 * server harvests the exit status (and any watchdog snapshot) and
 * keeps the sweep going.
 *
 * Supervision plumbing (all per-attempt, applied after the config hash
 * is computed so harvest paths never perturb content addressing):
 *
 * - `statusFd` streams newline-delimited `tenoc-fleet-frame-v1` JSON
 *   frames — an immediate `start`, a heartbeat with live interval
 *   telemetry every `heartbeatCycles` icnt cycles, `resumed` when a
 *   checkpoint is picked up, and a final `result` — so the server can
 *   tell a hung harness (silence) from a deadlocked simulator
 *   (watchdog exit) and stream live progress to clients.
 * - `checkpointEvery`/`checkpointFile` arm recurring atomic
 *   checkpoints; if `checkpointFile` already exists on entry the run
 *   *resumes* from it, which is how a timed-out/killed attempt's
 *   retry picks up where the last checkpoint left off instead of
 *   restarting (bit-identical: tests/test_fleet_recovery.cc).
 * - `chaosKillAtCycle`/`chaosStallAtCycle` are the chaos monkey's
 *   levers (docs/fleet.md): raise(SIGKILL), or stop heartbeating
 *   forever, at the given icnt cycle.
 */

#ifndef TENOC_FLEET_WORKER_HH
#define TENOC_FLEET_WORKER_HH

#include <string>

#include "common/types.hh"

namespace tenoc::fleet
{

/** Everything --worker mode parses from its argv. */
struct WorkerOptions
{
    std::string jobFile;      ///< single-job spec (required)
    std::string outFile;      ///< result document sink (required)
    std::string watchdogPath; ///< watchdog snapshot redirect
    int statusFd = -1;        ///< heartbeat pipe ( -1 = no streaming)
    Cycle heartbeatCycles = 0;  ///< frame cadence (0 = default)
    Cycle checkpointEvery = 0;  ///< recurring checkpoint cadence
    std::string checkpointFile; ///< recurring checkpoint target
    Cycle chaosKillAtCycle = 0;  ///< chaos: SIGKILL self at cycle
    Cycle chaosStallAtCycle = 0; ///< chaos: stop heartbeating at cycle
};

/**
 * Runs the single-job spec and writes a tenoc-fleet-result-v1 JSON
 * document to `outFile`.
 *
 * @return process exit code (0 = result written, including runs that
 *         hit their cycle budget; nonzero = bad spec).
 */
int runWorkerJob(const WorkerOptions &opts);

/** Back-compat convenience over the options struct. */
int runWorkerJob(const std::string &job_file,
                 const std::string &out_file,
                 const std::string &watchdog_path);

} // namespace tenoc::fleet

#endif // TENOC_FLEET_WORKER_HH
