/**
 * @file
 * Fleet worker: runs exactly one job inside a fork/exec'd process.
 *
 * tenoc_server re-executes itself with `--worker --job FILE --out FILE
 * --watchdog-out FILE`; runWorkerJob() is everything that happens on
 * the far side of that exec.  Keeping the job in its own process means
 * a crash, deadlock watchdog abort, or runaway config only loses that
 * job — the server harvests the exit status (and any watchdog
 * snapshot) and keeps the sweep going.
 */

#ifndef TENOC_FLEET_WORKER_HH
#define TENOC_FLEET_WORKER_HH

#include <string>

namespace tenoc::fleet
{

/**
 * Runs the single-job spec in `job_file` and writes a
 * tenoc-fleet-result-v1 JSON document to `out_file`.
 *
 * `watchdog_path`, if non-empty, redirects the network watchdog's
 * diagnostic snapshot there.  It is applied after the config hash is
 * computed, so harvest paths never perturb content addressing.
 *
 * @return process exit code (0 = result written, including runs that
 *         hit their cycle budget; nonzero = bad spec).
 */
int runWorkerJob(const std::string &job_file,
                 const std::string &out_file,
                 const std::string &watchdog_path);

} // namespace tenoc::fleet

#endif // TENOC_FLEET_WORKER_HH
