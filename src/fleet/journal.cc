/**
 * @file
 * Write-ahead journal implementation.
 */

#include "fleet/journal.hh"

#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <fstream>
#include <sstream>
#include <unistd.h>

#include "common/log.hh"

namespace tenoc::fleet
{

using telemetry::JsonValue;

Journal::~Journal()
{
    close();
}

bool
Journal::open(const std::string &path, std::string *error)
{
    close();
    int fd;
    do {
        fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    } while (fd < 0 && errno == EINTR);
    if (fd < 0) {
        if (error)
            *error = "cannot open journal '" + path +
                     "': " + std::strerror(errno);
        return false;
    }
    fd_ = fd;
    path_ = path;
    return true;
}

void
Journal::append(const JsonValue &record)
{
    if (fd_ < 0)
        return;
    const std::string line = record.toString(0) + "\n";
    std::size_t off = 0;
    while (off < line.size()) {
        const ssize_t n =
            ::write(fd_, line.data() + off, line.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            warn("journal: write to '", path_,
                 "' failed: ", std::strerror(errno));
            return;
        }
        off += static_cast<std::size_t>(n);
    }
    // The fsync is the whole point: a SIGKILL after append() returns
    // must never lose this record.
    while (::fsync(fd_) != 0) {
        if (errno != EINTR) {
            warn("journal: fsync '", path_,
                 "' failed: ", std::strerror(errno));
            return;
        }
    }
}

void
Journal::batchOpened(const std::vector<std::string> &hashes)
{
    JsonValue rec = JsonValue::makeObject();
    rec.set("event", JsonValue("batch"));
    rec.set("schema", JsonValue("tenoc-journal-v1"));
    JsonValue arr = JsonValue::makeArray();
    for (const auto &h : hashes)
        arr.push(JsonValue(h));
    rec.set("jobs", std::move(arr));
    append(rec);
}

void
Journal::attemptStarted(const std::string &hash, unsigned attempt)
{
    JsonValue rec = JsonValue::makeObject();
    rec.set("event", JsonValue("attempt"));
    rec.set("hash", JsonValue(hash));
    rec.set("attempt", JsonValue(static_cast<double>(attempt)));
    append(rec);
}

void
Journal::jobDone(const std::string &hash, const std::string &status,
                 const std::string &result_json)
{
    JsonValue rec = JsonValue::makeObject();
    rec.set("event", JsonValue("done"));
    rec.set("hash", JsonValue(hash));
    rec.set("status", JsonValue(status));
    JsonValue result;
    std::string err;
    if (JsonValue::parse(result_json, result, &err)) {
        rec.set("result", std::move(result));
    } else {
        // Never journal something replay would choke on.
        warn("journal: result for ", hash, " is not valid JSON (",
             err, "); recording the status only");
    }
    append(rec);
}

void
Journal::batchClosed(std::size_t ok, std::size_t failed)
{
    JsonValue rec = JsonValue::makeObject();
    rec.set("event", JsonValue("batch-done"));
    rec.set("ok", JsonValue(static_cast<double>(ok)));
    rec.set("failed", JsonValue(static_cast<double>(failed)));
    append(rec);
}

void
Journal::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    path_.clear();
}

bool
replayJournal(const std::string &path, JournalState &out,
              std::string *error)
{
    out = JournalState{};
    std::ifstream is(path);
    if (!is)
        return true; // no journal: nothing recorded, nothing to do

    std::string line;
    std::vector<std::string> lines;
    while (std::getline(is, line))
        lines.push_back(line);

    for (std::size_t i = 0; i < lines.size(); ++i) {
        if (lines[i].empty())
            continue;
        JsonValue rec;
        std::string jerr;
        if (!JsonValue::parse(lines[i], rec, &jerr) ||
            !rec.isObject()) {
            if (i + 1 == lines.size()) {
                // Torn final record: the expected crash signature.
                out.truncated = true;
                return true;
            }
            if (error)
                *error = "journal '" + path + "' line " +
                         std::to_string(i + 1) + " is garbled: " + jerr;
            return false;
        }
        const JsonValue *ev = rec.find("event");
        if (!ev || !ev->isString()) {
            if (error)
                *error = "journal '" + path + "' line " +
                         std::to_string(i + 1) + " has no event";
            return false;
        }
        ++out.records;
        const std::string &event = ev->asString();
        const JsonValue *hash = rec.find("hash");
        const std::string h =
            hash && hash->isString() ? hash->asString() : std::string{};
        if (event == "batch") {
            // A new batch record restarts the story (a journal reused
            // across runs keeps only the last batch's membership).
            out.batchHashes.clear();
            out.batchDone = false;
            if (const JsonValue *jobs = rec.find("jobs");
                jobs && jobs->isArray()) {
                for (const JsonValue &jv : jobs->asArray())
                    if (jv.isString())
                        out.batchHashes.push_back(jv.asString());
            }
        } else if (event == "attempt" && !h.empty()) {
            const JsonValue *a = rec.find("attempt");
            const unsigned n =
                a && a->isNumber()
                    ? static_cast<unsigned>(a->asNumber()) : 1;
            auto it = out.attempts.find(h);
            if (it == out.attempts.end() || it->second < n)
                out.attempts[h] = n;
        } else if (event == "done" && !h.empty()) {
            const JsonValue *status = rec.find("status");
            out.doneStatus[h] = status && status->isString()
                                    ? status->asString()
                                    : std::string{"unknown"};
            if (const JsonValue *result = rec.find("result"))
                out.doneResults[h] = result->toString(0);
            else
                out.doneResults[h] = std::string{};
        } else if (event == "batch-done") {
            out.batchDone = true;
        }
        // Unknown events are skipped: forward compatibility.
    }
    return true;
}

} // namespace tenoc::fleet
