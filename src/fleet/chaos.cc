/**
 * @file
 * Chaos monkey implementation.
 */

#include "fleet/chaos.hh"

#include <cstdlib>
#include <sstream>

#include "common/rng.hh"
#include "fleet/retry.hh"

namespace tenoc::fleet
{

namespace
{

bool
fail(std::string *error, const std::string &msg)
{
    if (error)
        *error = msg;
    return false;
}

} // namespace

bool
parseChaosSpec(const char *text, ChaosSpec &out, std::string *error)
{
    out = ChaosSpec{};
    if (!text || !*text)
        return true;
    std::stringstream ss(text);
    std::string field;
    while (std::getline(ss, field, ',')) {
        if (field.empty())
            continue;
        const auto eq = field.find('=');
        if (eq == std::string::npos || eq == 0)
            return fail(error, "chaos field '" + field +
                        "' is not key=value");
        const std::string key = field.substr(0, eq);
        const std::string val = field.substr(eq + 1);
        char *end = nullptr;
        const double num = std::strtod(val.c_str(), &end);
        if (!end || *end != '\0')
            return fail(error, "chaos field '" + key +
                        "' has a non-numeric value '" + val + "'");
        if (key == "kill" || key == "stall" || key == "corrupt" ||
            key == "drop") {
            if (num < 0.0 || num > 1.0)
                return fail(error, "chaos rate '" + key +
                            "' must be in [0, 1]");
            if (key == "kill")
                out.killRate = num;
            else if (key == "stall")
                out.stallRate = num;
            else if (key == "corrupt")
                out.corruptRate = num;
            else
                out.dropRate = num;
        } else if (key == "seed") {
            out.seed = static_cast<std::uint64_t>(num);
        } else if (key == "budget") {
            if (num < 0.0)
                return fail(error, "chaos budget must be >= 0");
            out.faultBudgetPerJob = static_cast<unsigned>(num);
        } else {
            return fail(error, "unknown chaos key '" + key + "'");
        }
    }
    return true;
}

bool
ChaosMonkey::chargeBudget(const std::string &hash)
{
    unsigned &spent = spent_[hash];
    if (spent >= spec_.faultBudgetPerJob)
        return false;
    ++spent;
    return true;
}

ChaosMonkey::WorkerFault
ChaosMonkey::workerFault(const std::string &hash, unsigned attempt,
                         std::uint64_t *out_at_cycle)
{
    if (out_at_cycle)
        *out_at_cycle = 0;
    if (spec_.killRate <= 0.0 && spec_.stallRate <= 0.0)
        return WorkerFault::NONE;
    const auto it = spent_.find(hash);
    if (it != spent_.end() && it->second >= spec_.faultBudgetPerJob)
        return WorkerFault::NONE;

    Rng rng(spec_.seed ^ fnv1a64(hash) ^
            (0xda3e39cb94b95bdbULL * attempt));
    const double u = rng.nextDouble();
    WorkerFault fault = WorkerFault::NONE;
    if (u < spec_.killRate)
        fault = WorkerFault::KILL;
    else if (u < spec_.killRate + spec_.stallRate)
        fault = WorkerFault::STALL;
    if (fault == WorkerFault::NONE || !chargeBudget(hash))
        return WorkerFault::NONE;

    // Fire somewhere mid-run: late enough that a periodic checkpoint
    // can land first (so retries exercise resume), early enough that
    // short CI workloads — a few hundred icnt cycles — still reach
    // it.  The worker only checks at progress-callback firings, so
    // the fault lands at the next heartbeat boundary past this cycle.
    if (out_at_cycle)
        *out_at_cycle = 50 + rng.nextRange(450);
    if (fault == WorkerFault::KILL)
        ++kills_;
    else
        ++stalls_;
    return fault;
}

bool
ChaosMonkey::corruptStore(const std::string &hash)
{
    if (spec_.corruptRate <= 0.0)
        return false;
    Rng rng(spec_.seed ^ fnv1a64(hash) ^ 0x5deece66dULL);
    if (rng.nextDouble() >= spec_.corruptRate || !chargeBudget(hash))
        return false;
    ++corruptions_;
    return true;
}

bool
ChaosMonkey::dropConnection(std::uint64_t n) const
{
    if (spec_.dropRate <= 0.0)
        return false;
    Rng rng(spec_.seed ^ (0xa0761d6478bd642fULL * (n + 1)));
    return rng.nextDouble() < spec_.dropRate;
}

} // namespace tenoc::fleet
