/**
 * @file
 * Content-addressed result cache.
 *
 * One directory, one `<hash>.json` file per result, keyed by
 * Config::canonicalHash() of the job's fully resolved configuration
 * (which folds in the simulator version — see
 * Config::canonicalText()).  Failures are cached too: a config that
 * crashed yesterday will crash today, and serving the recorded failure
 * is what makes an immediate resubmit of a mixed sweep all-hits.
 */

#ifndef TENOC_FLEET_CACHE_HH
#define TENOC_FLEET_CACHE_HH

#include <optional>
#include <string>

namespace tenoc::fleet
{

class ResultCache
{
  public:
    /** Opens (creating if needed) the cache directory.  An empty path
     *  disables the cache: lookups miss, stores are dropped. */
    explicit ResultCache(std::string dir);

    /** @return the cached result JSON for `hash`, if present. */
    std::optional<std::string> lookup(const std::string &hash) const;

    /** Stores `result_json` under `hash` (atomic tmp + rename, so a
     *  crashed server never leaves a torn cache entry). */
    void store(const std::string &hash, const std::string &result_json);

    bool enabled() const { return !dir_.empty(); }
    const std::string &dir() const { return dir_; }

  private:
    std::string path(const std::string &hash) const;

    std::string dir_;
};

} // namespace tenoc::fleet

#endif // TENOC_FLEET_CACHE_HH
