/**
 * @file
 * Content-addressed result cache with integrity checking.
 *
 * One directory, one `<hash>.json` file per result, keyed by
 * Config::canonicalHash() of the job's fully resolved configuration
 * (which folds in the simulator version — see
 * Config::canonicalText()).  Failures are cached too: a config that
 * crashed yesterday will crash today, and serving the recorded failure
 * is what makes an immediate resubmit of a mixed sweep all-hits.
 *
 * Every entry carries an FNV-1a trailer (`#tenoc-cache-v1 <hex>`)
 * over its payload; lookup() verifies it and **evicts** a corrupt,
 * truncated, or trailer-less entry instead of serving it, so a torn
 * write or bit-rot costs one recompute, never a silently wrong
 * result.
 */

#ifndef TENOC_FLEET_CACHE_HH
#define TENOC_FLEET_CACHE_HH

#include <cstdint>
#include <optional>
#include <string>

namespace tenoc::fleet
{

class ResultCache
{
  public:
    /** Opens (creating if needed) the cache directory.  An empty path
     *  disables the cache: lookups miss, stores are dropped. */
    explicit ResultCache(std::string dir);

    /**
     * @return the cached result JSON for `hash`, if present and its
     * integrity trailer verifies.  A corrupt/truncated entry is
     * unlinked (and counted) so the caller recomputes the job.
     */
    std::optional<std::string> lookup(const std::string &hash) const;

    /** Stores `result_json` under `hash` with an integrity trailer
     *  (write + fsync + atomic rename, so a crashed server never
     *  leaves a torn cache entry in place). */
    void store(const std::string &hash, const std::string &result_json);

    /**
     * Deliberately damages the stored entry for `hash` (truncates the
     * payload mid-line, leaving the now-stale trailer).  Chaos mode
     * and the recovery tests use this to prove corrupt entries are
     * evicted and recomputed, never served.
     * @return false if no entry exists.
     */
    bool corruptEntry(const std::string &hash);

    /** Entries evicted by failed integrity checks so far. */
    std::uint64_t evictions() const { return evictions_; }

    bool enabled() const { return !dir_.empty(); }
    const std::string &dir() const { return dir_; }

    /** Path of the entry file for `hash` (exists or not). */
    std::string entryPath(const std::string &hash) const;

  private:
    std::string dir_;
    mutable std::uint64_t evictions_ = 0;
};

} // namespace tenoc::fleet

#endif // TENOC_FLEET_CACHE_HH
