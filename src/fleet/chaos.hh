/**
 * @file
 * Chaos engineering for the fleet (docs/fleet.md, "Chaos mode").
 *
 * `TENOC_CHAOS` arms a deterministic fault monkey inside the
 * orchestrator: worker processes are randomly SIGKILL'd mid-run,
 * stalled so their heartbeats stop (exercising hung-worker detection),
 * freshly stored cache entries are corrupted (exercising integrity
 * eviction), and listen-mode connections are dropped at accept
 * (exercising client reconnect).  Every decision is drawn from
 * (seed, job hash, attempt), so a chaos run is exactly reproducible,
 * and each job's fault budget is capped so a sweep with retries
 * provably converges: once a job has absorbed `budget` faults, its
 * remaining attempts run clean.
 *
 * Spec syntax (comma-separated, all fields optional):
 *   TENOC_CHAOS="kill=0.5,stall=0.25,corrupt=0.3,drop=0.2,seed=7,budget=2"
 */

#ifndef TENOC_FLEET_CHAOS_HH
#define TENOC_FLEET_CHAOS_HH

#include <cstdint>
#include <map>
#include <string>

namespace tenoc::fleet
{

struct ChaosSpec
{
    double killRate = 0.0;    ///< P(SIGKILL a worker attempt)
    double stallRate = 0.0;   ///< P(stall a worker's heartbeats)
    double corruptRate = 0.0; ///< P(corrupt a stored cache entry)
    double dropRate = 0.0;    ///< P(drop an accepted connection)
    unsigned faultBudgetPerJob = 2; ///< max faults charged per job
    std::uint64_t seed = 1;

    bool
    enabled() const
    {
        return killRate > 0.0 || stallRate > 0.0 ||
               corruptRate > 0.0 || dropRate > 0.0;
    }
};

/**
 * Parses a TENOC_CHAOS-style spec string.  An empty/null string
 * yields a disabled spec.  @return false + error on a malformed
 * field, unknown key, or rate outside [0, 1].
 */
bool parseChaosSpec(const char *text, ChaosSpec &out,
                    std::string *error);

/** Stateful monkey: tracks per-job fault budgets. */
class ChaosMonkey
{
  public:
    explicit ChaosMonkey(const ChaosSpec &spec) : spec_(spec) {}

    /** What to inflict on one worker attempt. */
    enum class WorkerFault
    {
        NONE,
        KILL, ///< worker SIGKILLs itself mid-run
        STALL ///< worker stops heartbeating mid-run
    };

    /**
     * Decides the fault for (hash, attempt) and charges the job's
     * budget when one is chosen.  Deterministic in (seed, hash,
     * attempt).  @param out_at_cycle icnt cycle the fault fires at.
     */
    WorkerFault workerFault(const std::string &hash, unsigned attempt,
                            std::uint64_t *out_at_cycle);

    /** Whether to corrupt the cache entry just stored for `hash`
     *  (charges the budget when chosen). */
    bool corruptStore(const std::string &hash);

    /** Whether to drop the `n`-th accepted connection. */
    bool dropConnection(std::uint64_t n) const;

    bool enabled() const { return spec_.enabled(); }
    const ChaosSpec &spec() const { return spec_; }

    /** Faults inflicted so far, by kind (reporting). */
    std::uint64_t killsInjected() const { return kills_; }
    std::uint64_t stallsInjected() const { return stalls_; }
    std::uint64_t corruptionsInjected() const { return corruptions_; }

  private:
    bool chargeBudget(const std::string &hash);

    ChaosSpec spec_;
    std::map<std::string, unsigned> spent_;
    std::uint64_t kills_ = 0;
    std::uint64_t stalls_ = 0;
    std::uint64_t corruptions_ = 0;
};

} // namespace tenoc::fleet

#endif // TENOC_FLEET_CHAOS_HH
