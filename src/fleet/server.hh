/**
 * @file
 * Sweep orchestrator: shards jobs over a process pool, serves repeats
 * from the result cache, and harvests the wreckage of jobs that crash,
 * deadlock, or time out (docs/fleet.md).
 */

#ifndef TENOC_FLEET_SERVER_HH
#define TENOC_FLEET_SERVER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "fleet/cache.hh"
#include "fleet/job.hh"
#include "fleet/pool.hh"

namespace tenoc::fleet
{

/** Server-wide knobs (see tenoc_server --help). */
struct ServerOptions
{
    std::string workerExe;   ///< binary to re-exec for --worker runs
    std::string cacheDir;    ///< result cache ("" disables caching)
    std::string resultsDir = "tenoc_results"; ///< scratch + harvest dir
    unsigned workers = 2;    ///< concurrent worker processes
    unsigned defaultTimeoutSeconds = 0; ///< per job, 0 = unlimited
};

/** One finished job as the server reports it. */
struct JobOutcome
{
    std::string hash;     ///< canonical config hash
    std::string json;     ///< tenoc-fleet-result-v1 document (one line)
    bool cached = false;  ///< served from the result cache
    bool ok = false;      ///< worker produced a result (even timed_out)
};

class FleetServer
{
  public:
    explicit FleetServer(ServerOptions opts);

    /**
     * Runs a batch: cache-hits are returned immediately, everything
     * else is sharded over the process pool.  Outcomes are indexed
     * like `jobs`.
     */
    std::vector<JobOutcome> runJobs(const std::vector<JobSpec> &jobs);

    /** Runs a spec file and streams outcome JSON lines to stdout.
     *  @return 0 when every job produced a result. */
    int runSpecFile(const std::string &path);

    /**
     * Watches `spool_dir` for `*.json` spec files; each is executed
     * and answered with a sibling `<name>.results.jsonl`, then renamed
     * to `<name>.done`.  `once` processes what is present and returns
     * (CI mode); otherwise loops until SIGINT/SIGTERM.
     */
    int runSpool(const std::string &spool_dir, bool once);

    /**
     * Serves a Unix-domain stream socket.  Protocol, line oriented:
     *   client: SUBMIT <job-json>     (repeatable)
     *   client: RUN
     *   server: RESULT <outcome-json> (one per submitted job)
     *   server: DONE
     * EOF or QUIT ends the connection; the server keeps listening
     * until SIGINT/SIGTERM.
     */
    int runListen(const std::string &socket_path);

    const ServerOptions &options() const { return opts_; }

  private:
    /** Turns a reaped worker process into an outcome (reading its
     *  result file on success, synthesizing a failure record — and
     *  harvesting any watchdog snapshot — otherwise). */
    JobOutcome harvest(const JobSpec &job, const std::string &hash,
                       const ProcessResult &pres,
                       const std::string &out_file,
                       const std::string &watchdog_file);

    ServerOptions opts_;
    ResultCache cache_;
    std::uint64_t batch_seq_ = 0; ///< uniquifies scratch file names
};

} // namespace tenoc::fleet

#endif // TENOC_FLEET_SERVER_HH
