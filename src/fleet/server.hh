/**
 * @file
 * Self-healing sweep orchestrator: shards jobs over a supervised
 * process pool, serves repeats from the result cache, retries
 * crashed/hung/timed-out jobs with backoff (resuming from their last
 * periodic checkpoint), and journals every job-state transition so a
 * SIGKILL'd server can restart mid-sweep and finish (docs/fleet.md).
 */

#ifndef TENOC_FLEET_SERVER_HH
#define TENOC_FLEET_SERVER_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/types.hh"
#include "fleet/cache.hh"
#include "fleet/chaos.hh"
#include "fleet/job.hh"
#include "fleet/journal.hh"
#include "fleet/pool.hh"
#include "fleet/retry.hh"

namespace tenoc::fleet
{

/** Server-wide knobs (see tenoc_server --help). */
struct ServerOptions
{
    std::string workerExe;   ///< binary to re-exec for --worker runs
    std::string cacheDir;    ///< result cache ("" disables caching)
    std::string resultsDir = "tenoc_results"; ///< scratch + harvest dir
    unsigned workers = 2;    ///< concurrent worker processes
    unsigned defaultTimeoutSeconds = 0; ///< per job, 0 = unlimited

    /** Retry failed/hung/timed-out jobs (maxAttempts = 1 disables). */
    RetryPolicy retry{/*maxAttempts=*/3};
    /** Auto-checkpoint cadence for every job (icnt cycles; 0 = off;
     *  a job's own checkpoint_every wins).  Retries of a checkpointed
     *  job resume instead of restarting. */
    Cycle checkpointEveryCycles = 0;
    /** SIGKILL a worker whose status pipe is silent this long
     *  (seconds; 0 disables hung-worker detection). */
    unsigned heartbeatTimeoutSeconds = 0;
    /** Worker heartbeat cadence in icnt cycles. */
    Cycle heartbeatIntervalCycles = 500;
    /** Per-worker address-space rlimit in MiB (0 = unlimited). */
    unsigned rlimitAsMb = 0;
    /** Per-worker CPU-seconds rlimit (0 = unlimited). */
    unsigned rlimitCpuSeconds = 0;
    /** Admission control: listen-mode SUBMITs beyond this many queued
     *  jobs are refused with an ERROR (0 = unlimited). */
    std::size_t maxQueueDepth = 0;
    /** Write-ahead journal for --spec runs ("" = off; spool mode
     *  journals automatically beside each spec file). */
    std::string journalPath;
    /** Fault injection (normally parsed from TENOC_CHAOS). */
    ChaosSpec chaos;
};

/** One finished job as the server reports it. */
struct JobOutcome
{
    std::string hash;     ///< canonical config hash
    std::string json;     ///< tenoc-fleet-result-v1 document (one line)
    bool cached = false;  ///< served from the result cache
    bool replayed = false;///< served from a journal replay
    bool ok = false;      ///< worker produced a result (even timed_out)
    unsigned attempts = 0;///< dispatch attempts (0 = never dispatched)
};

class FleetServer
{
  public:
    explicit FleetServer(ServerOptions opts);

    /** Live frame sink: (job config hash, one frame line). */
    using FrameFn = std::function<void(const std::string &hash,
                                       const std::string &frame)>;

    /** Optional per-batch recovery hooks for runJobs(). */
    struct RunHooks
    {
        Journal *journal = nullptr;       ///< appended to, if open
        const JournalState *replay = nullptr; ///< pre-completed jobs
        FrameFn onFrame;                  ///< heartbeat/telemetry taps
    };

    /**
     * Runs a batch: journal-replayed and cache-hit jobs are returned
     * immediately, everything else is sharded over the process pool
     * with retry-on-failure.  Outcomes are indexed like `jobs`.
     */
    std::vector<JobOutcome> runJobs(const std::vector<JobSpec> &jobs);
    std::vector<JobOutcome> runJobs(const std::vector<JobSpec> &jobs,
                                    const RunHooks &hooks);

    /** Runs a spec file (journaled when options().journalPath is set)
     *  and streams outcome JSON lines to stdout.
     *  @return 0 when every job produced a result. */
    int runSpecFile(const std::string &path);

    /**
     * Watches `spool_dir` for `*.json` spec files; each is executed
     * under a write-ahead journal (`<name>.json.journal`) and answered
     * with a sibling `<name>.results.jsonl`, then renamed to
     * `<name>.done`.  A server killed mid-spec leaves the spec file
     * and its journal in place; the restarted server replays the
     * journal, serves completed jobs from it, and re-enqueues the
     * rest.  `once` processes what is present and returns (CI mode);
     * otherwise loops until SIGINT/SIGTERM.
     */
    int runSpool(const std::string &spool_dir, bool once);

    /**
     * Serves a Unix-domain stream socket.  Protocol, line oriented:
     *   client: SUBMIT <job-json>     (repeatable)
     *   client: RUN
     *   server: TELEM <hash> <frame>  (live, while jobs run)
     *   server: RESULT <outcome-json> (one per submitted job)
     *   server: DONE
     * SUBMIT beyond maxQueueDepth is refused with ERROR (admission
     * control).  EOF or QUIT ends the connection; the server keeps
     * listening until SIGINT/SIGTERM.
     */
    int runListen(const std::string &socket_path);

    const ServerOptions &options() const { return opts_; }
    const ResultCache &cache() const { return cache_; }
    ChaosMonkey &chaosMonkey() { return chaos_; }

  private:
    /** Turns a reaped worker process into an outcome (reading its
     *  result file on success, synthesizing a failure record — and
     *  harvesting any watchdog snapshot — otherwise). */
    JobOutcome harvest(const JobSpec &job, const std::string &hash,
                       const ProcessResult &pres,
                       const std::string &out_file,
                       const std::string &watchdog_file,
                       unsigned attempts);

    ServerOptions opts_;
    ResultCache cache_;
    ChaosMonkey chaos_;
    std::uint64_t batch_seq_ = 0; ///< uniquifies scratch file names
    std::uint64_t conn_seq_ = 0;  ///< accepted connections (chaos)
};

} // namespace tenoc::fleet

#endif // TENOC_FLEET_SERVER_HH
