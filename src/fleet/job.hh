/**
 * @file
 * Fleet job specifications (docs/fleet.md).
 *
 * A job names everything needed to reproduce one simulation: a config
 * file, key overrides, a workload, and optional cycle budget and
 * checkpoint/restore directives.  Jobs travel as JSON (spec files in a
 * spool directory, or single lines over the tenoc_server socket) and
 * are content-addressed by the canonical hash of their fully resolved
 * configuration, so identical work is served from the result cache.
 */

#ifndef TENOC_FLEET_JOB_HH
#define TENOC_FLEET_JOB_HH

#include <string>
#include <vector>

#include "common/config.hh"
#include "common/types.hh"
#include "telemetry/json.hh"

namespace tenoc::fleet
{

/** One simulation job. */
struct JobSpec
{
    std::string name;       ///< label for results ("" = derived)
    std::string configFile; ///< "key = value" file ("" = base default)
    Config overrides;       ///< dotted-key overrides (win over file)
    std::string workload;   ///< Table I abbreviation (required)
    double scale = 1.0;     ///< kernel-length scale factor
    Cycle maxIcntCycles = 0;///< cycle budget (0 = config default)
    unsigned timeoutSeconds = 0; ///< wall-clock kill (0 = server's)

    // Checkpoint/restore (see Chip::scheduleCheckpoint / restore).
    Cycle checkpointAt = 0;
    std::string checkpointOut;
    std::string restoreFrom;

    /**
     * Auto-checkpoint cadence in icnt cycles (0 = server default).
     * Like timeoutSeconds this is a *scheduling* knob — it feeds the
     * retry-from-checkpoint machinery, is excluded from the resolved
     * config, and therefore never perturbs content addressing.
     */
    Cycle checkpointEveryCycles = 0;
};

/**
 * Parses one job object.  Recognized members: name, config_file,
 * overrides (object of string/number/bool values), workload (required),
 * scale, max_icnt_cycles, timeout_seconds, checkpoint_every,
 * checkpoint_at, checkpoint_out, restore_from.
 * @return false + error on a malformed spec.
 */
bool jobFromJson(const telemetry::JsonValue &v, JobSpec &out,
                 std::string *error);

/** Renders a job back to its JSON form (round-trips jobFromJson). */
telemetry::JsonValue jobToJson(const JobSpec &job);

/**
 * Parses a spec document: either one job object or
 * `{"jobs": [ <job>, ... ]}`.
 */
bool parseSpecText(const std::string &text, std::vector<JobSpec> &out,
                   std::string *error);

/** parseSpecText() over a file's contents. */
bool parseSpecFile(const std::string &path, std::vector<JobSpec> &out,
                   std::string *error);

/**
 * The job's fully resolved configuration: the config file's keys,
 * then the overrides, then the fleet-level keys (`workload`,
 * `workload.scale`, and the checkpoint directives as `fleet.*`) and
 * any `sim.maxIcntCycles` budget.  This is the Config whose
 * canonicalHash() content-addresses the job.  fatal() if the config
 * file cannot be read.
 */
Config resolvedConfig(const JobSpec &job);

/** Canonical content hash of the job (resolvedConfig hex hash). */
std::string jobHash(const JobSpec &job);

/**
 * Strips the fleet-level keys (`workload*`, `fleet.*`) from a
 * resolved config, leaving exactly the keys chipParamsFromConfig
 * accepts.
 */
Config chipConfig(const Config &resolved);

} // namespace tenoc::fleet

#endif // TENOC_FLEET_JOB_HH
