/**
 * @file
 * Self-healing sweep orchestrator implementation.
 */

#include "fleet/server.hh"

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstring>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/log.hh"
#include "telemetry/json.hh"

namespace tenoc::fleet
{

namespace fs = std::filesystem;
using telemetry::JsonValue;

namespace
{

volatile std::sig_atomic_t g_stop = 0;

void
stopHandler(int)
{
    g_stop = 1;
}

void
installStopHandlers()
{
    struct sigaction sa{};
    sa.sa_handler = stopHandler;
    sigaction(SIGINT, &sa, nullptr);
    sigaction(SIGTERM, &sa, nullptr);
}

std::string
slurp(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        return {};
    std::stringstream ss;
    ss << is.rdbuf();
    return ss.str();
}

/** Trims to the single-line form results travel in. */
std::string
oneLine(std::string s)
{
    while (!s.empty() && (s.back() == '\n' || s.back() == '\r'))
        s.pop_back();
    return s;
}

/** @return the "status" member of a result document ("" if absent). */
std::string
resultStatus(const std::string &json)
{
    JsonValue doc;
    std::string err;
    if (!JsonValue::parse(json, doc, &err) || !doc.isObject())
        return {};
    const JsonValue *s = doc.find("status");
    return s && s->isString() ? s->asString() : std::string{};
}

/** Sets one member of a one-line result document in place (a no-op on
 *  unparseable input — annotation never turns a result into garbage). */
void
annotate(std::string &json, const char *key, JsonValue value)
{
    JsonValue doc;
    std::string err;
    if (JsonValue::parse(json, doc, &err) && doc.isObject()) {
        doc.set(key, std::move(value));
        json = doc.toString(0);
    }
}

} // namespace

FleetServer::FleetServer(ServerOptions opts)
    : opts_(std::move(opts)), cache_(opts_.cacheDir),
      chaos_(opts_.chaos)
{
    std::error_code ec;
    fs::create_directories(opts_.resultsDir, ec);
    if (ec)
        tenoc_fatal("cannot create results directory '",
                    opts_.resultsDir, "': ", ec.message());
    tenoc_assert(!opts_.workerExe.empty(),
                 "FleetServer needs a worker executable path");
    if (chaos_.enabled())
        inform("fleet: chaos armed (kill=", opts_.chaos.killRate,
               " stall=", opts_.chaos.stallRate,
               " corrupt=", opts_.chaos.corruptRate,
               " drop=", opts_.chaos.dropRate,
               " seed=", opts_.chaos.seed,
               " budget=", opts_.chaos.faultBudgetPerJob, ")");
}

std::vector<JobOutcome>
FleetServer::runJobs(const std::vector<JobSpec> &jobs)
{
    return runJobs(jobs, RunHooks{});
}

std::vector<JobOutcome>
FleetServer::runJobs(const std::vector<JobSpec> &jobs,
                     const RunHooks &hooks)
{
    std::vector<JobOutcome> outcomes(jobs.size());
    ProcessPool pool(opts_.workers);
    pool.setStopFlag(&g_stop);

    struct Slot
    {
        std::string jobFile;
        std::string outFile;
        std::string watchdogFile;
        std::string ckptFile;
        Cycle ckptEvery = 0;
        unsigned timeout = 0;
        unsigned attempt = 0;
    };
    std::vector<Slot> slots(jobs.size());

    std::vector<std::string> hashes(jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        hashes[i] = jobHash(jobs[i]);
        outcomes[i].hash = hashes[i];
    }
    if (hooks.journal)
        hooks.journal->batchOpened(hashes);

    auto recordDone = [&](const JobOutcome &o) {
        if (hooks.journal)
            hooks.journal->jobDone(o.hash, resultStatus(o.json),
                                   o.json);
    };

    // Re-dispatches (or first-dispatches) one job attempt.  Callable
    // from the pool's done callback: that is the retry loop.
    auto dispatch = [&](std::size_t i, unsigned attempt,
                        double delay) {
        Slot &s = slots[i];
        s.attempt = attempt;
        if (hooks.journal)
            hooks.journal->attemptStarted(hashes[i], attempt);

        std::vector<std::string> argv = {
            opts_.workerExe, "--worker", "--job", s.jobFile,
            "--out", s.outFile, "--watchdog-out", s.watchdogFile,
            "--status-fd", std::to_string(ProcessPool::STATUS_FD),
            "--hb-cycles",
            std::to_string(opts_.heartbeatIntervalCycles)};
        if (s.ckptEvery != 0) {
            argv.insert(argv.end(),
                        {"--checkpoint-every",
                         std::to_string(s.ckptEvery),
                         "--checkpoint-file", s.ckptFile});
        }
        std::uint64_t at = 0;
        switch (chaos_.workerFault(hashes[i], attempt, &at)) {
          case ChaosMonkey::WorkerFault::KILL:
            warn("chaos: killing ", hashes[i], " attempt ", attempt,
                 " at cycle ", at);
            argv.insert(argv.end(),
                        {"--chaos-kill-at", std::to_string(at)});
            break;
          case ChaosMonkey::WorkerFault::STALL:
            warn("chaos: stalling ", hashes[i], " attempt ", attempt,
                 " at cycle ", at);
            argv.insert(argv.end(),
                        {"--chaos-stall-at", std::to_string(at)});
            break;
          case ChaosMonkey::WorkerFault::NONE:
            break;
        }

        SpawnOptions so;
        so.timeoutSeconds = s.timeout;
        so.heartbeatTimeoutSeconds = opts_.heartbeatTimeoutSeconds;
        so.startDelaySeconds = delay;
        so.rlimitAsMb = opts_.rlimitAsMb;
        so.rlimitCpuSeconds = opts_.rlimitCpuSeconds;
        pool.submit(i, std::move(argv), so);
    };

    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const JobSpec &job = jobs[i];
        const std::string &hash = hashes[i];

        // Journal replay first: a restarted server serves jobs the
        // previous incarnation finished straight from the journal,
        // even with caching disabled.
        if (hooks.replay && hooks.replay->isDone(hash)) {
            outcomes[i].json = hooks.replay->doneResults.at(hash);
            outcomes[i].replayed = true;
            outcomes[i].ok = resultStatus(outcomes[i].json) == "ok";
            const auto ait = hooks.replay->attempts.find(hash);
            if (ait != hooks.replay->attempts.end())
                outcomes[i].attempts = ait->second;
            annotate(outcomes[i].json, "replayed", JsonValue(true));
            continue;
        }

        if (auto hit = cache_.lookup(hash)) {
            outcomes[i].json = oneLine(*hit);
            outcomes[i].cached = true;
            outcomes[i].ok = resultStatus(outcomes[i].json) == "ok";
            // Annotate the emitted copy only; the stored entry stays
            // annotation-free so hits and fresh runs hash alike.
            annotate(outcomes[i].json, "cached", JsonValue(true));
            recordDone(outcomes[i]);
            continue;
        }

        const std::string base = opts_.resultsDir + "/" + hash + "-" +
                                 std::to_string(batch_seq_) + "-" +
                                 std::to_string(i);
        ++batch_seq_;
        Slot &s = slots[i];
        s.jobFile = base + ".job.json";
        s.outFile = base + ".result.json";
        s.watchdogFile = base + ".watchdog.json";
        s.ckptFile = base + ".ckpt";
        s.ckptEvery = job.checkpointEveryCycles != 0
                          ? job.checkpointEveryCycles
                          : opts_.checkpointEveryCycles;
        s.timeout = job.timeoutSeconds != 0
                        ? job.timeoutSeconds
                        : opts_.defaultTimeoutSeconds;
        // A previous server process may have left files at this
        // slot's paths (the sequence counter restarts at 0 in a new
        // results dir reuse): a stale checkpoint must never be
        // resumed by a run that did not write it — it can even be
        // from an incompatible snapshot format — and stale
        // watchdog/result files would taint the retry and harvest
        // decisions.
        fs::remove(s.outFile);
        fs::remove(s.watchdogFile);
        fs::remove(s.ckptFile);
        {
            std::ofstream os(s.jobFile);
            if (!os)
                tenoc_fatal("cannot write job file '", s.jobFile,
                            "'");
            jobToJson(job).write(os, 0);
            os << "\n";
        }
        dispatch(i, 1, 0.0);
    }

    pool.runAll(
        [&](std::size_t i, const ProcessResult &pres) {
            Slot &s = slots[i];
            const std::string &hash = hashes[i];

            // Retry crashed/hung/timed-out attempts while budget
            // remains.  A watchdog-diagnosed deadlock is determinate —
            // rerunning it buys nothing — and clean nonzero exits
            // (bad spec, unwritable result) are config errors, so
            // neither is retried.
            const bool retryable =
                (pres.timedOut || pres.hung || pres.termSignal != 0) &&
                !fs::exists(s.watchdogFile);
            if (retryable && opts_.retry.shouldRetry(s.attempt) &&
                !g_stop) {
                const unsigned next = s.attempt + 1;
                const double delay =
                    opts_.retry.delayForAttempt(hash, next);
                const bool resumable = s.ckptEvery != 0 &&
                                       fs::exists(s.ckptFile);
                warn("fleet: ", hash, " attempt ", s.attempt,
                     pres.hung ? " hung"
                     : pres.timedOut ? " timed out"
                                     : " crashed",
                     "; retry ", next, "/", opts_.retry.maxAttempts,
                     " in ", delay, "s",
                     resumable ? " (resuming from checkpoint)" : "");
                dispatch(i, next, delay);
                return;
            }

            outcomes[i] = harvest(jobs[i], hash, pres, s.outFile,
                                  s.watchdogFile, s.attempt);
            recordDone(outcomes[i]);
        },
        [&](std::size_t i, const std::string &frame) {
            if (hooks.onFrame)
                hooks.onFrame(hashes[i], frame);
        });

    if (hooks.journal) {
        std::size_t ok = 0, failed = 0;
        for (const auto &o : outcomes)
            (o.ok ? ok : failed) += 1;
        hooks.journal->batchClosed(ok, failed);
    }
    return outcomes;
}

JobOutcome
FleetServer::harvest(const JobSpec &job, const std::string &hash,
                     const ProcessResult &pres,
                     const std::string &out_file,
                     const std::string &watchdog_file,
                     unsigned attempts)
{
    JobOutcome out;
    out.hash = hash;
    out.attempts = attempts;

    if (pres.ok()) {
        const std::string text = slurp(out_file);
        if (!text.empty()) {
            out.json = oneLine(text);
            out.ok = true;
            cache_.store(hash, out.json);
            if (chaos_.corruptStore(hash)) {
                warn("chaos: corrupting cache entry ", hash);
                cache_.corruptEntry(hash);
            }
            // Annotate the emitted copy only (the cached entry stays
            // canonical): how many dispatches this result cost.
            if (attempts > 1)
                annotate(out.json, "attempts",
                         JsonValue(static_cast<double>(attempts)));
            return out;
        }
        warn("worker for ", hash,
             " exited cleanly but wrote no result");
    }

    // The job died for good: synthesize (and cache) a failure record.
    // Caching failures is deliberate — rerunning a crashing config
    // gives the same crash, and all-hit resubmits are how a sweep is
    // resumed.
    const bool watchdog_fired = fs::exists(watchdog_file);
    std::string status = "failed";
    if (pres.hung)
        status = "hung";
    else if (pres.timedOut)
        status = "timeout";
    else if (pres.termSignal != 0)
        status = "crashed";
    else if (watchdog_fired)
        status = "deadlocked";

    JsonValue doc = JsonValue::makeObject();
    doc.set("schema", JsonValue("tenoc-fleet-result-v1"));
    doc.set("name", JsonValue(job.name.empty() ? job.workload
                                               : job.name));
    doc.set("config_hash", JsonValue(hash));
    doc.set("workload", JsonValue(job.workload));
    doc.set("status", JsonValue(status));
    doc.set("exit_code", JsonValue(pres.exitCode));
    doc.set("signal", JsonValue(pres.termSignal));
    doc.set("timed_out", JsonValue(pres.timedOut));
    doc.set("attempts", JsonValue(static_cast<double>(attempts)));
    if (watchdog_fired)
        doc.set("watchdog_snapshot", JsonValue(watchdog_file));
    out.json = doc.toString(0);
    out.ok = false;
    cache_.store(hash, out.json);
    return out;
}

int
FleetServer::runSpecFile(const std::string &path)
{
    std::vector<JobSpec> jobs;
    std::string error;
    if (!parseSpecFile(path, jobs, &error)) {
        std::cerr << "tenoc_server: " << error << "\n";
        return 2;
    }

    Journal journal;
    JournalState replay;
    RunHooks hooks;
    if (!opts_.journalPath.empty()) {
        std::string jerr;
        if (!replayJournal(opts_.journalPath, replay, &jerr)) {
            warn("journal: ", jerr, " -- starting fresh");
            replay = JournalState{};
        }
        if (replay.records != 0)
            inform("journal: replayed ", replay.records, " records, ",
                   replay.doneResults.size(), " jobs recoverable");
        std::string oerr;
        if (!journal.open(opts_.journalPath, &oerr))
            warn("journal: ", oerr, " -- continuing without one");
        if (journal.isOpen())
            hooks.journal = &journal;
        hooks.replay = &replay;
    }

    const auto outcomes = runJobs(jobs, hooks);
    std::size_t ok = 0, cached = 0, replayed = 0;
    for (const auto &o : outcomes) {
        if (!o.json.empty())
            std::cout << o.json << "\n";
        ok += o.ok ? 1 : 0;
        cached += o.cached ? 1 : 0;
        replayed += o.replayed ? 1 : 0;
    }
    std::cerr << "fleet: " << outcomes.size() << " jobs, " << ok
              << " ok, " << outcomes.size() - ok << " failed, "
              << cached << " cached";
    if (replayed != 0)
        std::cerr << ", " << replayed << " replayed";
    std::cerr << "\n";
    return ok == outcomes.size() ? 0 : 1;
}

int
FleetServer::runSpool(const std::string &spool_dir, bool once)
{
    installStopHandlers();
    std::error_code ec;
    fs::create_directories(spool_dir, ec);
    if (ec)
        tenoc_fatal("cannot create spool directory '", spool_dir,
                    "': ", ec.message());

    while (!g_stop) {
        std::vector<std::string> specs;
        for (const auto &entry : fs::directory_iterator(spool_dir)) {
            if (entry.is_regular_file() &&
                entry.path().extension() == ".json")
                specs.push_back(entry.path().string());
        }
        std::sort(specs.begin(), specs.end());

        for (const auto &spec_path : specs) {
            if (g_stop)
                break;
            std::vector<JobSpec> jobs;
            std::string error;
            if (!parseSpecFile(spec_path, jobs, &error)) {
                warn("spool: skipping '", spec_path, "': ", error);
                fs::rename(spec_path, spec_path + ".bad", ec);
                continue;
            }

            // Every spool spec runs under a write-ahead journal.  A
            // server SIGKILL'd mid-spec leaves spec + journal behind;
            // the restarted server replays the journal and only runs
            // what is still missing.
            const std::string journal_path = spec_path + ".journal";
            Journal journal;
            JournalState replay;
            std::string jerr;
            if (!replayJournal(journal_path, replay, &jerr)) {
                warn("spool: journal for '", spec_path, "': ", jerr,
                     " -- starting fresh");
                replay = JournalState{};
            }
            if (!replay.doneResults.empty())
                inform("spool: resuming '", spec_path, "' -- ",
                       replay.doneResults.size(), " of ", jobs.size(),
                       " jobs recovered from journal",
                       replay.truncated ? " (torn final record)"
                                        : "");
            std::string oerr;
            if (!journal.open(journal_path, &oerr))
                warn("spool: ", oerr, " -- continuing without one");
            RunHooks hooks;
            if (journal.isOpen())
                hooks.journal = &journal;
            hooks.replay = &replay;

            const auto outcomes = runJobs(jobs, hooks);
            if (g_stop)
                break; // incomplete: keep spec + journal for restart

            const std::string results_path =
                spec_path.substr(0, spec_path.size() - 5) +
                ".results.jsonl";
            std::ofstream os(results_path);
            for (const auto &o : outcomes)
                os << o.json << "\n";
            fs::rename(spec_path, spec_path + ".done", ec);
            if (ec)
                warn("spool: cannot retire '", spec_path,
                     "': ", ec.message());
            journal.close();
            fs::remove(journal_path, ec);
            inform("spool: ", spec_path, " -> ", results_path, " (",
                   outcomes.size(), " jobs)");
        }
        if (once)
            break;
        if (specs.empty()) {
            timespec nap{0, 200'000'000}; // 200 ms scan interval
            nanosleep(&nap, nullptr);
        }
    }
    return 0;
}

int
FleetServer::runListen(const std::string &socket_path)
{
    installStopHandlers();
    signal(SIGPIPE, SIG_IGN); // a vanished client must not kill us

    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (socket_path.size() >= sizeof(addr.sun_path))
        tenoc_fatal("socket path too long: '", socket_path, "'");
    std::strncpy(addr.sun_path, socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);

    const int listen_fd = socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd < 0)
        tenoc_fatal("socket failed: ", std::strerror(errno));
    unlink(socket_path.c_str());
    if (bind(listen_fd, reinterpret_cast<sockaddr *>(&addr),
             sizeof(addr)) != 0)
        tenoc_fatal("cannot bind '", socket_path,
                    "': ", std::strerror(errno));
    if (listen(listen_fd, 4) != 0)
        tenoc_fatal("listen failed: ", std::strerror(errno));
    inform("fleet: listening on ", socket_path);

    while (!g_stop) {
        const int fd = accept(listen_fd, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            warn("accept failed: ", std::strerror(errno));
            break;
        }
        ++conn_seq_;
        if (chaos_.dropConnection(conn_seq_)) {
            warn("chaos: dropping connection ", conn_seq_);
            close(fd);
            continue;
        }

        std::vector<JobSpec> batch;
        std::string buf;
        char chunk[4096];
        auto sendLine = [&](const std::string &line) {
            std::string msg = line + "\n";
            std::size_t off = 0;
            while (off < msg.size()) {
                const ssize_t n =
                    write(fd, msg.data() + off, msg.size() - off);
                if (n < 0 && errno == EINTR)
                    continue;
                if (n <= 0)
                    return false;
                off += static_cast<std::size_t>(n);
            }
            return true;
        };
        auto handleLine = [&](const std::string &line) {
            if (line.rfind("SUBMIT ", 0) == 0) {
                // Admission control: refuse rather than queue without
                // bound (a stuck client cannot balloon the server).
                if (opts_.maxQueueDepth != 0 &&
                    batch.size() >= opts_.maxQueueDepth) {
                    sendLine("ERROR queue full (admission limit " +
                             std::to_string(opts_.maxQueueDepth) +
                             ")");
                    return true;
                }
                JsonValue jv;
                std::string err;
                JobSpec job;
                if (!JsonValue::parse(line.substr(7), jv, &err) ||
                    !jobFromJson(jv, job, &err)) {
                    sendLine("ERROR " + err);
                    return true;
                }
                batch.push_back(std::move(job));
                sendLine("OK " + std::to_string(batch.size()));
                return true;
            }
            if (line == "RUN") {
                RunHooks hooks;
                // Live heartbeat/telemetry frames stream to the
                // client as they arrive from the workers.
                hooks.onFrame = [&](const std::string &hash,
                                    const std::string &frame) {
                    sendLine("TELEM " + hash + " " + frame);
                };
                const auto outcomes = runJobs(batch, hooks);
                batch.clear();
                for (const auto &o : outcomes)
                    sendLine("RESULT " + o.json);
                sendLine("DONE");
                return true;
            }
            if (line == "QUIT")
                return false;
            if (!line.empty())
                sendLine("ERROR unknown command");
            return true;
        };

        bool open = true;
        while (open && !g_stop) {
            const ssize_t n = read(fd, chunk, sizeof(chunk));
            if (n < 0 && errno == EINTR)
                continue;
            if (n <= 0)
                break;
            buf.append(chunk, static_cast<std::size_t>(n));
            std::size_t nl;
            while (open && (nl = buf.find('\n')) != std::string::npos) {
                std::string line = buf.substr(0, nl);
                buf.erase(0, nl + 1);
                if (!line.empty() && line.back() == '\r')
                    line.pop_back();
                open = handleLine(line);
            }
        }
        close(fd);
    }
    close(listen_fd);
    unlink(socket_path.c_str());
    return 0;
}

} // namespace tenoc::fleet
