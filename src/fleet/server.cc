/**
 * @file
 * Sweep orchestrator implementation.
 */

#include "fleet/server.hh"

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstring>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/log.hh"
#include "fleet/pool.hh"
#include "telemetry/json.hh"

namespace tenoc::fleet
{

namespace fs = std::filesystem;
using telemetry::JsonValue;

namespace
{

volatile std::sig_atomic_t g_stop = 0;

void
stopHandler(int)
{
    g_stop = 1;
}

void
installStopHandlers()
{
    struct sigaction sa{};
    sa.sa_handler = stopHandler;
    sigaction(SIGINT, &sa, nullptr);
    sigaction(SIGTERM, &sa, nullptr);
}

std::string
slurp(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        return {};
    std::stringstream ss;
    ss << is.rdbuf();
    return ss.str();
}

/** Trims to the single-line form results travel in. */
std::string
oneLine(std::string s)
{
    while (!s.empty() && (s.back() == '\n' || s.back() == '\r'))
        s.pop_back();
    return s;
}

/** @return the "status" member of a result document ("" if absent). */
std::string
resultStatus(const std::string &json)
{
    JsonValue doc;
    std::string err;
    if (!JsonValue::parse(json, doc, &err) || !doc.isObject())
        return {};
    const JsonValue *s = doc.find("status");
    return s && s->isString() ? s->asString() : std::string{};
}

} // namespace

FleetServer::FleetServer(ServerOptions opts)
    : opts_(std::move(opts)), cache_(opts_.cacheDir)
{
    std::error_code ec;
    fs::create_directories(opts_.resultsDir, ec);
    if (ec)
        tenoc_fatal("cannot create results directory '",
                    opts_.resultsDir, "': ", ec.message());
    tenoc_assert(!opts_.workerExe.empty(),
                 "FleetServer needs a worker executable path");
}

std::vector<JobOutcome>
FleetServer::runJobs(const std::vector<JobSpec> &jobs)
{
    std::vector<JobOutcome> outcomes(jobs.size());
    ProcessPool pool(opts_.workers);

    struct Scratch
    {
        std::string outFile;
        std::string watchdogFile;
    };
    std::vector<Scratch> scratch(jobs.size());

    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const JobSpec &job = jobs[i];
        const std::string hash = jobHash(job);
        outcomes[i].hash = hash;

        if (auto hit = cache_.lookup(hash)) {
            outcomes[i].json = oneLine(*hit);
            outcomes[i].cached = true;
            outcomes[i].ok = resultStatus(outcomes[i].json) == "ok";
            // Annotate the emitted copy only; the stored entry stays
            // annotation-free so hits and fresh runs hash alike.
            JsonValue doc;
            std::string err;
            if (JsonValue::parse(outcomes[i].json, doc, &err) &&
                doc.isObject()) {
                doc.set("cached", JsonValue(true));
                outcomes[i].json = doc.toString(0);
            }
            continue;
        }

        const std::string base = opts_.resultsDir + "/" + hash + "-" +
                                 std::to_string(batch_seq_) + "-" +
                                 std::to_string(i);
        ++batch_seq_;
        const std::string job_file = base + ".job.json";
        scratch[i] = {base + ".result.json", base + ".watchdog.json"};
        {
            std::ofstream os(job_file);
            if (!os)
                tenoc_fatal("cannot write job file '", job_file, "'");
            jobToJson(job).write(os, 0);
            os << "\n";
        }

        const unsigned timeout = job.timeoutSeconds != 0
                                     ? job.timeoutSeconds
                                     : opts_.defaultTimeoutSeconds;
        pool.submit(i,
                    {opts_.workerExe, "--worker", "--job", job_file,
                     "--out", scratch[i].outFile, "--watchdog-out",
                     scratch[i].watchdogFile},
                    timeout);
    }

    pool.runAll([&](std::size_t i, const ProcessResult &pres) {
        outcomes[i] = harvest(jobs[i], outcomes[i].hash, pres,
                              scratch[i].outFile,
                              scratch[i].watchdogFile);
    });
    return outcomes;
}

JobOutcome
FleetServer::harvest(const JobSpec &job, const std::string &hash,
                     const ProcessResult &pres,
                     const std::string &out_file,
                     const std::string &watchdog_file)
{
    JobOutcome out;
    out.hash = hash;

    if (pres.ok()) {
        const std::string text = slurp(out_file);
        if (!text.empty()) {
            out.json = oneLine(text);
            out.ok = true;
            cache_.store(hash, out.json);
            return out;
        }
        warn("worker for ", hash,
             " exited cleanly but wrote no result");
    }

    // The job died: synthesize (and cache) a failure record.  Caching
    // failures is deliberate — rerunning a crashing config gives the
    // same crash, and all-hit resubmits are how a sweep is resumed.
    const bool watchdog_fired = fs::exists(watchdog_file);
    std::string status = "failed";
    if (pres.timedOut)
        status = "timeout";
    else if (pres.termSignal != 0)
        status = "crashed";
    else if (watchdog_fired)
        status = "deadlocked";

    JsonValue doc = JsonValue::makeObject();
    doc.set("schema", JsonValue("tenoc-fleet-result-v1"));
    doc.set("name", JsonValue(job.name.empty() ? job.workload
                                               : job.name));
    doc.set("config_hash", JsonValue(hash));
    doc.set("workload", JsonValue(job.workload));
    doc.set("status", JsonValue(status));
    doc.set("exit_code", JsonValue(pres.exitCode));
    doc.set("signal", JsonValue(pres.termSignal));
    doc.set("timed_out", JsonValue(pres.timedOut));
    if (watchdog_fired)
        doc.set("watchdog_snapshot", JsonValue(watchdog_file));
    out.json = doc.toString(0);
    out.ok = false;
    cache_.store(hash, out.json);
    return out;
}

int
FleetServer::runSpecFile(const std::string &path)
{
    std::vector<JobSpec> jobs;
    std::string error;
    if (!parseSpecFile(path, jobs, &error)) {
        std::cerr << "tenoc_server: " << error << "\n";
        return 2;
    }
    const auto outcomes = runJobs(jobs);
    std::size_t ok = 0, cached = 0;
    for (const auto &o : outcomes) {
        std::cout << o.json << "\n";
        ok += o.ok ? 1 : 0;
        cached += o.cached ? 1 : 0;
    }
    std::cerr << "fleet: " << outcomes.size() << " jobs, " << ok
              << " ok, " << outcomes.size() - ok << " failed, "
              << cached << " cached\n";
    return ok == outcomes.size() ? 0 : 1;
}

int
FleetServer::runSpool(const std::string &spool_dir, bool once)
{
    installStopHandlers();
    std::error_code ec;
    fs::create_directories(spool_dir, ec);
    if (ec)
        tenoc_fatal("cannot create spool directory '", spool_dir,
                    "': ", ec.message());

    while (!g_stop) {
        std::vector<std::string> specs;
        for (const auto &entry : fs::directory_iterator(spool_dir)) {
            if (entry.is_regular_file() &&
                entry.path().extension() == ".json")
                specs.push_back(entry.path().string());
        }
        std::sort(specs.begin(), specs.end());

        for (const auto &spec_path : specs) {
            if (g_stop)
                break;
            std::vector<JobSpec> jobs;
            std::string error;
            if (!parseSpecFile(spec_path, jobs, &error)) {
                warn("spool: skipping '", spec_path, "': ", error);
                fs::rename(spec_path, spec_path + ".bad", ec);
                continue;
            }
            const auto outcomes = runJobs(jobs);
            const std::string results_path =
                spec_path.substr(0, spec_path.size() - 5) +
                ".results.jsonl";
            std::ofstream os(results_path);
            for (const auto &o : outcomes)
                os << o.json << "\n";
            fs::rename(spec_path, spec_path + ".done", ec);
            if (ec)
                warn("spool: cannot retire '", spec_path,
                     "': ", ec.message());
            inform("spool: ", spec_path, " -> ", results_path, " (",
                   outcomes.size(), " jobs)");
        }
        if (once)
            break;
        if (specs.empty()) {
            timespec nap{0, 200'000'000}; // 200 ms scan interval
            nanosleep(&nap, nullptr);
        }
    }
    return 0;
}

int
FleetServer::runListen(const std::string &socket_path)
{
    installStopHandlers();
    signal(SIGPIPE, SIG_IGN); // a vanished client must not kill us

    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (socket_path.size() >= sizeof(addr.sun_path))
        tenoc_fatal("socket path too long: '", socket_path, "'");
    std::strncpy(addr.sun_path, socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);

    const int listen_fd = socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd < 0)
        tenoc_fatal("socket failed: ", std::strerror(errno));
    unlink(socket_path.c_str());
    if (bind(listen_fd, reinterpret_cast<sockaddr *>(&addr),
             sizeof(addr)) != 0)
        tenoc_fatal("cannot bind '", socket_path,
                    "': ", std::strerror(errno));
    if (listen(listen_fd, 4) != 0)
        tenoc_fatal("listen failed: ", std::strerror(errno));
    inform("fleet: listening on ", socket_path);

    while (!g_stop) {
        const int fd = accept(listen_fd, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            warn("accept failed: ", std::strerror(errno));
            break;
        }

        std::vector<JobSpec> batch;
        std::string buf;
        char chunk[4096];
        auto sendLine = [&](const std::string &line) {
            std::string msg = line + "\n";
            std::size_t off = 0;
            while (off < msg.size()) {
                const ssize_t n =
                    write(fd, msg.data() + off, msg.size() - off);
                if (n <= 0)
                    return false;
                off += static_cast<std::size_t>(n);
            }
            return true;
        };
        auto handleLine = [&](const std::string &line) {
            if (line.rfind("SUBMIT ", 0) == 0) {
                JsonValue jv;
                std::string err;
                JobSpec job;
                if (!JsonValue::parse(line.substr(7), jv, &err) ||
                    !jobFromJson(jv, job, &err)) {
                    sendLine("ERROR " + err);
                    return true;
                }
                batch.push_back(std::move(job));
                sendLine("OK " + std::to_string(batch.size()));
                return true;
            }
            if (line == "RUN") {
                const auto outcomes = runJobs(batch);
                batch.clear();
                for (const auto &o : outcomes)
                    sendLine("RESULT " + o.json);
                sendLine("DONE");
                return true;
            }
            if (line == "QUIT")
                return false;
            if (!line.empty())
                sendLine("ERROR unknown command");
            return true;
        };

        bool open = true;
        while (open && !g_stop) {
            const ssize_t n = read(fd, chunk, sizeof(chunk));
            if (n <= 0)
                break;
            buf.append(chunk, static_cast<std::size_t>(n));
            std::size_t nl;
            while (open && (nl = buf.find('\n')) != std::string::npos) {
                std::string line = buf.substr(0, nl);
                buf.erase(0, nl + 1);
                if (!line.empty() && line.back() == '\r')
                    line.pop_back();
                open = handleLine(line);
            }
        }
        close(fd);
    }
    close(listen_fd);
    unlink(socket_path.c_str());
    return 0;
}

} // namespace tenoc::fleet
