/**
 * @file
 * Content-addressed result cache (directory of <hash>.json files).
 */

#include "fleet/cache.hh"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/log.hh"

namespace tenoc::fleet
{

ResultCache::ResultCache(std::string dir) : dir_(std::move(dir))
{
    if (dir_.empty())
        return;
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    if (ec)
        tenoc_fatal("cannot create cache directory '", dir_,
                    "': ", ec.message());
}

std::string
ResultCache::path(const std::string &hash) const
{
    return dir_ + "/" + hash + ".json";
}

std::optional<std::string>
ResultCache::lookup(const std::string &hash) const
{
    if (dir_.empty())
        return std::nullopt;
    std::ifstream is(path(hash));
    if (!is)
        return std::nullopt;
    std::stringstream ss;
    ss << is.rdbuf();
    return ss.str();
}

void
ResultCache::store(const std::string &hash,
                   const std::string &result_json)
{
    if (dir_.empty())
        return;
    const std::string final_path = path(hash);
    const std::string tmp_path = final_path + ".tmp";
    {
        std::ofstream os(tmp_path);
        if (!os) {
            warn("cache: cannot write '", tmp_path, "'");
            return;
        }
        os << result_json;
        if (!result_json.empty() && result_json.back() != '\n')
            os << "\n";
        if (!os) {
            warn("cache: short write to '", tmp_path, "'");
            return;
        }
    }
    if (std::rename(tmp_path.c_str(), final_path.c_str()) != 0)
        warn("cache: cannot rename '", tmp_path, "' into place");
}

} // namespace tenoc::fleet
