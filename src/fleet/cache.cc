/**
 * @file
 * Content-addressed result cache (directory of <hash>.json files with
 * integrity trailers).
 */

#include "fleet/cache.hh"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fcntl.h>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <unistd.h>

#include "common/log.hh"
#include "fleet/retry.hh" // fnv1a64

namespace tenoc::fleet
{

namespace
{

constexpr const char *TRAILER_PREFIX = "#tenoc-cache-v1 ";

std::string
hashHex(const std::string &payload)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(fnv1a64(payload)));
    return buf;
}

} // namespace

ResultCache::ResultCache(std::string dir) : dir_(std::move(dir))
{
    if (dir_.empty())
        return;
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    if (ec)
        tenoc_fatal("cannot create cache directory '", dir_,
                    "': ", ec.message());
}

std::string
ResultCache::entryPath(const std::string &hash) const
{
    return dir_ + "/" + hash + ".json";
}

std::optional<std::string>
ResultCache::lookup(const std::string &hash) const
{
    if (dir_.empty())
        return std::nullopt;
    const std::string p = entryPath(hash);
    std::ifstream is(p);
    if (!is)
        return std::nullopt;
    std::stringstream ss;
    ss << is.rdbuf();
    std::string text = ss.str();

    // Split off the trailer: the last non-empty line must be the
    // integrity record and must match the payload above it.
    const auto evict = [&](const char *why) {
        warn("cache: evicting ", why, " entry '", p, "'");
        std::remove(p.c_str());
        ++evictions_;
        return std::nullopt;
    };
    while (!text.empty() && text.back() == '\n')
        text.pop_back();
    const auto nl = text.rfind('\n');
    if (nl == std::string::npos)
        return evict("trailer-less");
    const std::string trailer = text.substr(nl + 1);
    if (trailer.rfind(TRAILER_PREFIX, 0) != 0)
        return evict("trailer-less");
    std::string payload = text.substr(0, nl + 1); // keep final '\n'
    if (trailer.substr(std::strlen(TRAILER_PREFIX)) != hashHex(payload))
        return evict("corrupt");
    while (!payload.empty() && payload.back() == '\n')
        payload.pop_back();
    return payload;
}

void
ResultCache::store(const std::string &hash,
                   const std::string &result_json)
{
    if (dir_.empty())
        return;
    std::string payload = result_json;
    if (payload.empty() || payload.back() != '\n')
        payload += '\n';
    const std::string body =
        payload + TRAILER_PREFIX + hashHex(payload) + "\n";

    const std::string final_path = entryPath(hash);
    const std::string tmp_path = final_path + ".tmp";
    int fd;
    do {
        fd = ::open(tmp_path.c_str(),
                    O_WRONLY | O_CREAT | O_TRUNC, 0644);
    } while (fd < 0 && errno == EINTR);
    if (fd < 0) {
        warn("cache: cannot write '", tmp_path,
             "': ", std::strerror(errno));
        return;
    }
    std::size_t off = 0;
    while (off < body.size()) {
        const ssize_t n =
            ::write(fd, body.data() + off, body.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            warn("cache: short write to '", tmp_path,
                 "': ", std::strerror(errno));
            ::close(fd);
            std::remove(tmp_path.c_str());
            return;
        }
        off += static_cast<std::size_t>(n);
    }
    // fsync before rename: the rename must never publish a name whose
    // data is still in flight.
    while (::fsync(fd) != 0 && errno == EINTR) {
    }
    ::close(fd);
    if (std::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
        warn("cache: cannot rename '", tmp_path, "' into place");
        std::remove(tmp_path.c_str());
    }
}

bool
ResultCache::corruptEntry(const std::string &hash)
{
    if (dir_.empty())
        return false;
    const std::string p = entryPath(hash);
    std::ifstream is(p);
    if (!is)
        return false;
    std::stringstream ss;
    ss << is.rdbuf();
    std::string text = ss.str();
    is.close();
    // Chop the payload mid-line; the stale trailer (or its absence)
    // must now fail verification.
    std::ofstream os(p, std::ios::trunc);
    os << text.substr(0, text.size() / 2);
    return static_cast<bool>(os);
}

} // namespace tenoc::fleet
