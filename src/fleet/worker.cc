/**
 * @file
 * One-job worker process body.
 */

#include "fleet/worker.hh"

#include <cerrno>
#include <csignal>
#include <ctime>
#include <fstream>
#include <iostream>
#include <sys/stat.h>
#include <unistd.h>

#include "accel/chip_config.hh"
#include "accel/experiments.hh"
#include "common/log.hh"
#include "fleet/job.hh"
#include "gpu/workloads.hh"
#include "telemetry/json.hh"

namespace tenoc::fleet
{

using telemetry::JsonValue;

namespace
{

constexpr Cycle DEFAULT_HEARTBEAT_CYCLES = 500;

bool
fileExists(const std::string &path)
{
    struct stat st{};
    return !path.empty() && ::stat(path.c_str(), &st) == 0;
}

/** Writes one frame line to the status pipe (EINTR-safe; a vanished
 *  supervisor is ignored — the simulation result still matters). */
void
writeFrame(int fd, const JsonValue &frame)
{
    if (fd < 0)
        return;
    const std::string line = frame.toString(0) + "\n";
    std::size_t off = 0;
    while (off < line.size()) {
        const ssize_t n =
            ::write(fd, line.data() + off, line.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return; // EPIPE etc.: supervisor is gone, keep simulating
        }
        off += static_cast<std::size_t>(n);
    }
}

JsonValue
frameOf(const char *type)
{
    JsonValue f = JsonValue::makeObject();
    f.set("schema", JsonValue("tenoc-fleet-frame-v1"));
    f.set("type", JsonValue(type));
    return f;
}

} // namespace

int
runWorkerJob(const WorkerOptions &wopts)
{
    std::vector<JobSpec> jobs;
    std::string error;
    if (!parseSpecFile(wopts.jobFile, jobs, &error) ||
        jobs.size() != 1) {
        std::cerr << "tenoc worker: bad job file '" << wopts.jobFile
                  << "': " << (error.empty() ? "want exactly one job"
                                             : error)
                  << "\n";
        return 2;
    }
    const JobSpec &job = jobs.front();

    const Config resolved = resolvedConfig(job);
    const std::string hash = resolved.canonicalHashHex();
    ChipParams params = chipParamsFromConfig(chipConfig(resolved));
    // Harvest paths are per-attempt plumbing, not experiment identity:
    // applied after hashing so identical configs share a cache entry.
    if (!wopts.watchdogPath.empty())
        params.mesh.watchdogSnapshotPath = wopts.watchdogPath;

    KernelProfile profile = findWorkload(job.workload);
    if (job.scale != 1.0)
        profile = scaleWorkload(profile, job.scale);

    RunOptions opts;
    opts.checkpointAt = job.checkpointAt;
    opts.checkpointOut = job.checkpointOut;
    opts.restoreFrom = job.restoreFrom;

    // Retry-from-checkpoint: a previous attempt's periodic checkpoint
    // outranks the job's own restore_from (it is a strictly later
    // state of the same run).
    bool resumed = false;
    if (wopts.checkpointEvery != 0 && !wopts.checkpointFile.empty()) {
        opts.checkpointEvery = wopts.checkpointEvery;
        opts.checkpointEveryOut = wopts.checkpointFile;
        if (fileExists(wopts.checkpointFile)) {
            opts.restoreFrom = wopts.checkpointFile;
            resumed = true;
        }
    }

    {
        JsonValue f = frameOf("start");
        f.set("config_hash", JsonValue(hash));
        f.set("workload", JsonValue(job.workload));
        if (resumed) {
            f.set("resumed_from", JsonValue(wopts.checkpointFile));
        }
        writeFrame(wopts.statusFd, f);
    }

    // Heartbeats with live interval telemetry: cumulative counters
    // plus per-interval deltas, so a supervisor (or a client watching
    // TELEM lines) sees throughput evolve while the run is live.
    const Cycle hb = wopts.heartbeatCycles != 0
                         ? wopts.heartbeatCycles
                         : DEFAULT_HEARTBEAT_CYCLES;
    std::uint64_t last_insts = 0;
    std::uint64_t last_pkts = 0;
    Cycle last_cycle = 0;
    opts.progressEvery = hb;
    opts.onProgress = [&](const Chip::Progress &p) {
        if (wopts.chaosKillAtCycle != 0 &&
            p.icntCycle >= wopts.chaosKillAtCycle)
            raise(SIGKILL);
        if (wopts.chaosStallAtCycle != 0 &&
            p.icntCycle >= wopts.chaosStallAtCycle) {
            // Chaos stall: a harness hang, as opposed to a simulator
            // deadlock — no frames, no progress, no exit.  Only the
            // supervisor's heartbeat deadline gets us out of here.
            for (;;)
                pause();
        }
        JsonValue f = frameOf("hb");
        f.set("cycle", JsonValue(static_cast<double>(p.icntCycle)));
        f.set("core_cycle",
              JsonValue(static_cast<double>(p.coreCycle)));
        f.set("kernel", JsonValue(static_cast<double>(p.kernel)));
        f.set("insts", JsonValue(static_cast<double>(p.scalarInsts)));
        f.set("pkts",
              JsonValue(static_cast<double>(p.packetsEjected)));
        f.set("d_cycle", JsonValue(static_cast<double>(
                             p.icntCycle - last_cycle)));
        f.set("d_insts", JsonValue(static_cast<double>(
                             p.scalarInsts - last_insts)));
        f.set("d_pkts", JsonValue(static_cast<double>(
                            p.packetsEjected - last_pkts)));
        writeFrame(wopts.statusFd, f);
        last_insts = p.scalarInsts;
        last_pkts = p.packetsEjected;
        last_cycle = p.icntCycle;
    };

    const ChipResult r = runWorkload(params, profile, nullptr, opts);

    JsonValue doc = JsonValue::makeObject();
    doc.set("schema", JsonValue(std::string("tenoc-fleet-result-v1")));
    doc.set("name",
            JsonValue(job.name.empty() ? job.workload + "@" + hash
                                       : job.name));
    doc.set("config_hash", JsonValue(hash));
    doc.set("workload", JsonValue(job.workload));
    doc.set("status", JsonValue(std::string("ok")));
    doc.set("timed_out", JsonValue(r.timedOut));
    doc.set("ipc", JsonValue(r.ipc));
    doc.set("scalar_insts",
            JsonValue(static_cast<double>(r.scalarInsts)));
    doc.set("core_cycles", JsonValue(static_cast<double>(r.coreCycles)));
    doc.set("icnt_cycles", JsonValue(static_cast<double>(r.icntCycles)));
    doc.set("mem_cycles", JsonValue(static_cast<double>(r.memCycles)));
    doc.set("avg_net_latency", JsonValue(r.avgNetLatency));
    doc.set("avg_total_latency", JsonValue(r.avgTotalLatency));
    doc.set("mc_injection_rate", JsonValue(r.mcInjectionRate));
    doc.set("dram_efficiency", JsonValue(r.dramEfficiency));
    doc.set("dram_row_hit_rate", JsonValue(r.dramRowHitRate));
    doc.set("packets_ejected",
            JsonValue(static_cast<double>(r.packetsEjected)));

    std::ofstream os(wopts.outFile);
    if (!os) {
        std::cerr << "tenoc worker: cannot write result file '"
                  << wopts.outFile << "'\n";
        return 3;
    }
    doc.write(os, 0);
    os << "\n";
    os.flush();
    if (!os)
        return 3;

    {
        JsonValue f = frameOf("result");
        f.set("config_hash", JsonValue(hash));
        f.set("status", JsonValue("ok"));
        writeFrame(wopts.statusFd, f);
    }
    return 0;
}

int
runWorkerJob(const std::string &job_file, const std::string &out_file,
             const std::string &watchdog_path)
{
    WorkerOptions opts;
    opts.jobFile = job_file;
    opts.outFile = out_file;
    opts.watchdogPath = watchdog_path;
    return runWorkerJob(opts);
}

} // namespace tenoc::fleet
