/**
 * @file
 * One-job worker process body.
 */

#include "fleet/worker.hh"

#include <fstream>
#include <iostream>

#include "accel/chip_config.hh"
#include "accel/experiments.hh"
#include "common/log.hh"
#include "fleet/job.hh"
#include "gpu/workloads.hh"
#include "telemetry/json.hh"

namespace tenoc::fleet
{

using telemetry::JsonValue;

int
runWorkerJob(const std::string &job_file, const std::string &out_file,
             const std::string &watchdog_path)
{
    std::vector<JobSpec> jobs;
    std::string error;
    if (!parseSpecFile(job_file, jobs, &error) || jobs.size() != 1) {
        std::cerr << "tenoc worker: bad job file '" << job_file
                  << "': " << (error.empty() ? "want exactly one job"
                                             : error)
                  << "\n";
        return 2;
    }
    const JobSpec &job = jobs.front();

    const Config resolved = resolvedConfig(job);
    const std::string hash = resolved.canonicalHashHex();
    ChipParams params = chipParamsFromConfig(chipConfig(resolved));
    // Harvest paths are per-attempt plumbing, not experiment identity:
    // applied after hashing so identical configs share a cache entry.
    if (!watchdog_path.empty())
        params.mesh.watchdogSnapshotPath = watchdog_path;

    KernelProfile profile = findWorkload(job.workload);
    if (job.scale != 1.0)
        profile = scaleWorkload(profile, job.scale);

    RunOptions opts;
    opts.checkpointAt = job.checkpointAt;
    opts.checkpointOut = job.checkpointOut;
    opts.restoreFrom = job.restoreFrom;

    const ChipResult r = runWorkload(params, profile, nullptr, opts);

    JsonValue doc = JsonValue::makeObject();
    doc.set("schema", JsonValue(std::string("tenoc-fleet-result-v1")));
    doc.set("name",
            JsonValue(job.name.empty() ? job.workload + "@" + hash
                                       : job.name));
    doc.set("config_hash", JsonValue(hash));
    doc.set("workload", JsonValue(job.workload));
    doc.set("status", JsonValue(std::string("ok")));
    doc.set("timed_out", JsonValue(r.timedOut));
    doc.set("ipc", JsonValue(r.ipc));
    doc.set("scalar_insts",
            JsonValue(static_cast<double>(r.scalarInsts)));
    doc.set("core_cycles", JsonValue(static_cast<double>(r.coreCycles)));
    doc.set("icnt_cycles", JsonValue(static_cast<double>(r.icntCycles)));
    doc.set("mem_cycles", JsonValue(static_cast<double>(r.memCycles)));
    doc.set("avg_net_latency", JsonValue(r.avgNetLatency));
    doc.set("avg_total_latency", JsonValue(r.avgTotalLatency));
    doc.set("mc_injection_rate", JsonValue(r.mcInjectionRate));
    doc.set("dram_efficiency", JsonValue(r.dramEfficiency));
    doc.set("dram_row_hit_rate", JsonValue(r.dramRowHitRate));
    doc.set("packets_ejected",
            JsonValue(static_cast<double>(r.packetsEjected)));

    std::ofstream os(out_file);
    if (!os) {
        std::cerr << "tenoc worker: cannot write result file '"
                  << out_file << "'\n";
        return 3;
    }
    doc.write(os, 0);
    os << "\n";
    return os ? 0 : 3;
}

} // namespace tenoc::fleet
