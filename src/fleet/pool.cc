/**
 * @file
 * Fork/exec process pool with supervision.
 */

#include "fleet/pool.hh"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <fcntl.h>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include "common/log.hh"

namespace tenoc::fleet
{

namespace
{

double
monotonicSeconds()
{
    timespec ts{};
    clock_gettime(CLOCK_MONOTONIC, &ts);
    return static_cast<double>(ts.tv_sec) +
           static_cast<double>(ts.tv_nsec) * 1e-9;
}

/** waitpid with EINTR retry. */
pid_t
waitRetry(pid_t pid, int *status, int flags)
{
    pid_t w;
    do {
        w = waitpid(pid, status, flags);
    } while (w < 0 && errno == EINTR);
    return w;
}

/** Spawns argv with the status pipe's write end on STATUS_FD.
 *  @return child pid; the read end (nonblocking) in *status_fd. */
pid_t
spawn(const std::vector<std::string> &argv, const SpawnOptions &opts,
      int *status_fd)
{
    std::vector<char *> cargv;
    cargv.reserve(argv.size() + 1);
    for (const auto &a : argv)
        cargv.push_back(const_cast<char *>(a.c_str()));
    cargv.push_back(nullptr);

    int fds[2];
    if (pipe(fds) != 0)
        tenoc_fatal("pipe failed: ", std::strerror(errno));

    const pid_t pid = fork();
    if (pid < 0)
        tenoc_fatal("fork failed: ", std::strerror(errno));
    if (pid == 0) {
        close(fds[0]);
        if (fds[1] != ProcessPool::STATUS_FD) {
            dup2(fds[1], ProcessPool::STATUS_FD);
            close(fds[1]);
        }
        // A supervisor that stopped reading must never SIGPIPE-kill
        // the worker mid-simulation.
        signal(SIGPIPE, SIG_IGN);
        if (opts.rlimitAsMb != 0) {
            rlimit rl{};
            rl.rlim_cur = rl.rlim_max =
                static_cast<rlim_t>(opts.rlimitAsMb) * 1024 * 1024;
            setrlimit(RLIMIT_AS, &rl);
        }
        if (opts.rlimitCpuSeconds != 0) {
            rlimit rl{};
            rl.rlim_cur = rl.rlim_max = opts.rlimitCpuSeconds;
            setrlimit(RLIMIT_CPU, &rl);
        }
        execv(cargv[0], cargv.data());
        // Exec failure in the child: the only safe report is an exit
        // code the parent can distinguish from a simulator failure.
        _exit(127);
    }
    close(fds[1]);
    const int fl = fcntl(fds[0], F_GETFL);
    fcntl(fds[0], F_SETFL, fl | O_NONBLOCK);
    *status_fd = fds[0];
    return pid;
}

} // namespace

ProcessPool::ProcessPool(unsigned workers)
    : workers_(workers > 0 ? workers : 1)
{
    // Pool lifetimes span worker deaths; a closed status pipe must be
    // an EPIPE errno, not a process-killing signal.
    signal(SIGPIPE, SIG_IGN);
}

ProcessPool::~ProcessPool()
{
    reapAllRunning();
}

void
ProcessPool::submit(std::size_t job_index,
                    std::vector<std::string> argv,
                    const SpawnOptions &opts)
{
    tenoc_assert(!argv.empty(), "ProcessPool::submit needs an argv");
    queue_.push_back({job_index, std::move(argv), opts,
                      monotonicSeconds() + opts.startDelaySeconds});
}

bool
ProcessPool::drainStatus(Running &r, const FrameFn &frames)
{
    if (r.statusFd < 0)
        return false;
    bool activity = false;
    char chunk[4096];
    for (;;) {
        const ssize_t n = read(r.statusFd, chunk, sizeof(chunk));
        if (n > 0) {
            activity = true;
            r.buf.append(chunk, static_cast<std::size_t>(n));
            std::size_t nl;
            while ((nl = r.buf.find('\n')) != std::string::npos) {
                std::string line = r.buf.substr(0, nl);
                r.buf.erase(0, nl + 1);
                if (frames && !line.empty())
                    frames(r.index, line);
            }
            continue;
        }
        if (n == 0) { // EOF: child closed its end
            close(r.statusFd);
            r.statusFd = -1;
            break;
        }
        if (errno == EINTR)
            continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            break;
        close(r.statusFd);
        r.statusFd = -1;
        break;
    }
    if (activity)
        r.lastFrameAt = monotonicSeconds();
    return activity;
}

void
ProcessPool::killAndReap(Running &r, ProcessResult &res)
{
    kill(r.pid, SIGKILL);
    // SIGKILL cannot be caught; the blocking reap is prompt.
    int status = 0;
    waitRetry(r.pid, &status, 0);
    if (WIFEXITED(status))
        res.exitCode = WEXITSTATUS(status);
}

void
ProcessPool::reapAllRunning()
{
    for (auto &r : running_) {
        kill(r.pid, SIGKILL);
        int status = 0;
        waitRetry(r.pid, &status, 0);
        if (r.statusFd >= 0)
            close(r.statusFd);
    }
    running_.clear();
}

void
ProcessPool::runAll(const DoneFn &done, const FrameFn &frames)
{
    while (!queue_.empty() || !running_.empty()) {
        if (stopRequested()) {
            // Shutdown: no orphaned children, no zombies.
            reapAllRunning();
            queue_.clear();
            break;
        }

        // Fill free worker slots with whatever backoff has released.
        const double now = monotonicSeconds();
        for (std::size_t q = 0;
             running_.size() < workers_ && q < queue_.size();) {
            if (queue_[q].readyAt > now) {
                ++q;
                continue;
            }
            Pending p = std::move(queue_[q]);
            queue_.erase(queue_.begin() +
                         static_cast<std::ptrdiff_t>(q));
            int status_fd = -1;
            const pid_t pid = spawn(p.argv, p.opts, &status_fd);
            const double t = monotonicSeconds();
            running_.push_back(
                {p.index, pid, p.opts, t, t, status_fd, {}});
        }

        // Reap whoever finished; kill whoever overstayed or went
        // silent.
        bool progressed = false;
        for (std::size_t i = 0; i < running_.size();) {
            Running &r = running_[i];
            if (drainStatus(r, frames))
                progressed = true;

            const auto finish = [&](ProcessResult res) {
                // The child is gone: collect its last words before
                // closing the pipe.
                if (r.statusFd >= 0) {
                    drainStatus(r, frames);
                    if (r.statusFd >= 0)
                        close(r.statusFd);
                    r.statusFd = -1;
                }
                const std::size_t index = r.index;
                running_.erase(running_.begin() +
                               static_cast<std::ptrdiff_t>(i));
                // `done` may submit() retries; `r` is dead past here.
                done(index, res);
                progressed = true;
            };

            int status = 0;
            const pid_t w = waitRetry(r.pid, &status, WNOHANG);
            if (w == r.pid) {
                ProcessResult res;
                res.timedOut =
                    r.opts.timeoutSeconds != 0 &&
                    monotonicSeconds() - r.startedAt >=
                        static_cast<double>(r.opts.timeoutSeconds);
                if (WIFEXITED(status)) {
                    res.exitCode = WEXITSTATUS(status);
                } else if (WIFSIGNALED(status)) {
                    res.termSignal = WTERMSIG(status);
                }
                // A SIGKILL we sent is a timeout, not a crash.
                if (res.termSignal == SIGKILL && res.timedOut)
                    res.termSignal = 0;
                finish(res);
                continue;
            }
            if (w < 0 && errno != ECHILD)
                tenoc_fatal("waitpid failed: ", std::strerror(errno));

            const double t = monotonicSeconds();
            if (r.opts.timeoutSeconds != 0 &&
                t - r.startedAt >=
                    static_cast<double>(r.opts.timeoutSeconds)) {
                ProcessResult res;
                res.timedOut = true;
                killAndReap(r, res);
                finish(res);
                continue;
            }
            if (r.opts.heartbeatTimeoutSeconds != 0 &&
                t - r.lastFrameAt >=
                    static_cast<double>(
                        r.opts.heartbeatTimeoutSeconds)) {
                // Silent worker: indistinguishable from progress only
                // to itself.  Kill it and let the server retry.
                ProcessResult res;
                res.hung = true;
                killAndReap(r, res);
                finish(res);
                continue;
            }
            ++i;
        }
        if (!progressed) {
            timespec nap{0, 20'000'000}; // 20 ms supervision poll
            nanosleep(&nap, nullptr);    // EINTR: loop re-checks stop
        }
    }
    queue_.clear();
}

} // namespace tenoc::fleet
