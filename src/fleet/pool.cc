/**
 * @file
 * Fork/exec process pool.
 */

#include "fleet/pool.hh"

#include <cerrno>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <sys/wait.h>
#include <unistd.h>

#include "common/log.hh"

namespace tenoc::fleet
{

namespace
{

double
monotonicSeconds()
{
    timespec ts{};
    clock_gettime(CLOCK_MONOTONIC, &ts);
    return static_cast<double>(ts.tv_sec) +
           static_cast<double>(ts.tv_nsec) * 1e-9;
}

pid_t
spawn(const std::vector<std::string> &argv)
{
    std::vector<char *> cargv;
    cargv.reserve(argv.size() + 1);
    for (const auto &a : argv)
        cargv.push_back(const_cast<char *>(a.c_str()));
    cargv.push_back(nullptr);

    const pid_t pid = fork();
    if (pid < 0)
        tenoc_fatal("fork failed: ", std::strerror(errno));
    if (pid == 0) {
        execv(cargv[0], cargv.data());
        // Exec failure in the child: the only safe report is an exit
        // code the parent can distinguish from a simulator failure.
        _exit(127);
    }
    return pid;
}

} // namespace

ProcessPool::ProcessPool(unsigned workers)
    : workers_(workers > 0 ? workers : 1)
{
}

void
ProcessPool::submit(std::size_t job_index, std::vector<std::string> argv,
                    unsigned timeout_seconds)
{
    tenoc_assert(!argv.empty(), "ProcessPool::submit needs an argv");
    queue_.push_back({job_index, std::move(argv), timeout_seconds});
}

void
ProcessPool::runAll(const DoneFn &done)
{
    std::vector<Running> running;
    std::size_t next = 0;

    while (next < queue_.size() || !running.empty()) {
        // Fill free worker slots.
        while (running.size() < workers_ && next < queue_.size()) {
            const Pending &p = queue_[next];
            running.push_back({p.index, spawn(p.argv), p.timeoutSeconds,
                               monotonicSeconds()});
            ++next;
        }

        // Reap whoever finished; kill whoever overstayed.
        bool progressed = false;
        for (std::size_t i = 0; i < running.size();) {
            Running &r = running[i];
            int status = 0;
            const pid_t w = waitpid(r.pid, &status, WNOHANG);
            if (w == r.pid) {
                ProcessResult res;
                res.timedOut =
                    r.timeoutSeconds != 0 &&
                    monotonicSeconds() - r.startedAt >=
                        static_cast<double>(r.timeoutSeconds);
                if (WIFEXITED(status)) {
                    res.exitCode = WEXITSTATUS(status);
                } else if (WIFSIGNALED(status)) {
                    res.termSignal = WTERMSIG(status);
                }
                // A SIGKILL we sent is a timeout, not a crash.
                if (res.termSignal == SIGKILL && res.timedOut)
                    res.termSignal = 0;
                done(r.index, res);
                running.erase(running.begin() +
                              static_cast<std::ptrdiff_t>(i));
                progressed = true;
                continue;
            }
            if (w < 0 && errno != EINTR)
                tenoc_fatal("waitpid failed: ", std::strerror(errno));
            if (r.timeoutSeconds != 0 &&
                monotonicSeconds() - r.startedAt >=
                    static_cast<double>(r.timeoutSeconds)) {
                kill(r.pid, SIGKILL);
                // SIGKILL cannot be caught; the blocking reap is
                // prompt.
                int kstatus = 0;
                waitpid(r.pid, &kstatus, 0);
                ProcessResult res;
                res.timedOut = true;
                if (WIFEXITED(kstatus))
                    res.exitCode = WEXITSTATUS(kstatus);
                done(r.index, res);
                running.erase(running.begin() +
                              static_cast<std::ptrdiff_t>(i));
                progressed = true;
                continue;
            }
            ++i;
        }
        if (!progressed) {
            timespec nap{0, 50'000'000}; // 50 ms poll
            nanosleep(&nap, nullptr);
        }
    }
    queue_.clear();
}

} // namespace tenoc::fleet
