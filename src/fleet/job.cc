/**
 * @file
 * Job spec JSON I/O and config resolution.
 */

#include "fleet/job.hh"

#include <cmath>
#include <fstream>
#include <sstream>

#include "common/log.hh"

namespace tenoc::fleet
{

using telemetry::JsonValue;

namespace
{

/** Renders a JSON scalar the way a config file would spell it. */
bool
scalarToConfigString(const JsonValue &v, std::string &out)
{
    switch (v.kind()) {
      case JsonValue::Kind::STRING:
        out = v.asString();
        return true;
      case JsonValue::Kind::BOOL:
        out = v.asBool() ? "true" : "false";
        return true;
      case JsonValue::Kind::NUMBER: {
        const double d = v.asNumber();
        if (d == std::floor(d) && std::abs(d) < 1e15) {
            out = std::to_string(static_cast<long long>(d));
        } else {
            std::ostringstream os;
            os << d;
            out = os.str();
        }
        return true;
      }
      default:
        return false;
    }
}

bool
fail(std::string *error, const std::string &msg)
{
    if (error)
        *error = msg;
    return false;
}

} // namespace

bool
jobFromJson(const JsonValue &v, JobSpec &out, std::string *error)
{
    if (!v.isObject())
        return fail(error, "job spec must be a JSON object");
    out = JobSpec{};
    for (const auto &[key, val] : v.asObject()) {
        if (key == "name") {
            if (!val.isString())
                return fail(error, "'name' must be a string");
            out.name = val.asString();
        } else if (key == "config_file") {
            if (!val.isString())
                return fail(error, "'config_file' must be a string");
            out.configFile = val.asString();
        } else if (key == "overrides") {
            if (!val.isObject())
                return fail(error, "'overrides' must be an object");
            for (const auto &[okey, oval] : val.asObject()) {
                std::string text;
                if (!scalarToConfigString(oval, text))
                    return fail(error, "override '" + okey +
                                "' must be a scalar");
                out.overrides.set(okey, text);
            }
        } else if (key == "workload") {
            if (!val.isString())
                return fail(error, "'workload' must be a string");
            out.workload = val.asString();
        } else if (key == "scale") {
            if (!val.isNumber() || val.asNumber() <= 0.0)
                return fail(error, "'scale' must be a positive number");
            out.scale = val.asNumber();
        } else if (key == "max_icnt_cycles") {
            if (!val.isNumber() || val.asNumber() < 0)
                return fail(error,
                            "'max_icnt_cycles' must be a number >= 0");
            out.maxIcntCycles = static_cast<Cycle>(val.asNumber());
        } else if (key == "timeout_seconds") {
            if (!val.isNumber() || val.asNumber() < 0)
                return fail(error,
                            "'timeout_seconds' must be a number >= 0");
            out.timeoutSeconds =
                static_cast<unsigned>(val.asNumber());
        } else if (key == "checkpoint_every") {
            if (!val.isNumber() || val.asNumber() < 0)
                return fail(error,
                            "'checkpoint_every' must be a number >= 0");
            out.checkpointEveryCycles = static_cast<Cycle>(val.asNumber());
        } else if (key == "checkpoint_at") {
            if (!val.isNumber() || val.asNumber() < 0)
                return fail(error,
                            "'checkpoint_at' must be a number >= 0");
            out.checkpointAt = static_cast<Cycle>(val.asNumber());
        } else if (key == "checkpoint_out") {
            if (!val.isString())
                return fail(error, "'checkpoint_out' must be a string");
            out.checkpointOut = val.asString();
        } else if (key == "restore_from") {
            if (!val.isString())
                return fail(error, "'restore_from' must be a string");
            out.restoreFrom = val.asString();
        } else {
            return fail(error, "unknown job spec member '" + key + "'");
        }
    }
    if (out.workload.empty())
        return fail(error, "job spec needs a 'workload'");
    if (out.checkpointAt != 0 && out.checkpointOut.empty())
        return fail(error,
                    "'checkpoint_at' needs a 'checkpoint_out' path");
    return true;
}

JsonValue
jobToJson(const JobSpec &job)
{
    JsonValue v = JsonValue::makeObject();
    if (!job.name.empty())
        v.set("name", JsonValue(job.name));
    if (!job.configFile.empty())
        v.set("config_file", JsonValue(job.configFile));
    const auto okeys = job.overrides.keys();
    if (!okeys.empty()) {
        JsonValue o = JsonValue::makeObject();
        for (const auto &key : okeys)
            o.set(key, JsonValue(job.overrides.getString(key)));
        v.set("overrides", std::move(o));
    }
    v.set("workload", JsonValue(job.workload));
    if (job.scale != 1.0)
        v.set("scale", JsonValue(job.scale));
    if (job.maxIcntCycles != 0)
        v.set("max_icnt_cycles",
              JsonValue(static_cast<double>(job.maxIcntCycles)));
    if (job.timeoutSeconds != 0)
        v.set("timeout_seconds",
              JsonValue(static_cast<double>(job.timeoutSeconds)));
    if (job.checkpointEveryCycles != 0)
        v.set("checkpoint_every",
              JsonValue(static_cast<double>(job.checkpointEveryCycles)));
    if (job.checkpointAt != 0)
        v.set("checkpoint_at",
              JsonValue(static_cast<double>(job.checkpointAt)));
    if (!job.checkpointOut.empty())
        v.set("checkpoint_out", JsonValue(job.checkpointOut));
    if (!job.restoreFrom.empty())
        v.set("restore_from", JsonValue(job.restoreFrom));
    return v;
}

bool
parseSpecText(const std::string &text, std::vector<JobSpec> &out,
              std::string *error)
{
    JsonValue doc;
    std::string jerr;
    if (!JsonValue::parse(text, doc, &jerr))
        return fail(error, "spec is not valid JSON: " + jerr);
    const JsonValue *jobs = doc.isObject() ? doc.find("jobs") : nullptr;
    if (!jobs) {
        JobSpec job;
        if (!jobFromJson(doc, job, error))
            return false;
        out.push_back(std::move(job));
        return true;
    }
    if (!jobs->isArray())
        return fail(error, "'jobs' must be an array");
    for (const JsonValue &jv : jobs->asArray()) {
        JobSpec job;
        if (!jobFromJson(jv, job, error))
            return false;
        out.push_back(std::move(job));
    }
    if (out.empty())
        return fail(error, "spec contains no jobs");
    return true;
}

bool
parseSpecFile(const std::string &path, std::vector<JobSpec> &out,
              std::string *error)
{
    std::ifstream is(path);
    if (!is)
        return fail(error, "cannot open spec file '" + path + "'");
    std::stringstream ss;
    ss << is.rdbuf();
    return parseSpecText(ss.str(), out, error);
}

Config
resolvedConfig(const JobSpec &job)
{
    Config cfg;
    if (!job.configFile.empty()) {
        std::ifstream is(job.configFile);
        if (!is)
            tenoc_fatal("cannot open config file '", job.configFile,
                        "'");
        std::stringstream ss;
        ss << is.rdbuf();
        cfg.parseText(ss.str());
    }
    cfg.merge(job.overrides);
    cfg.set("workload", job.workload);
    if (job.scale != 1.0)
        cfg.set("workload.scale", job.scale);
    if (job.maxIcntCycles != 0)
        cfg.set("sim.maxIcntCycles",
                static_cast<std::uint64_t>(job.maxIcntCycles));
    if (job.checkpointAt != 0) {
        cfg.set("fleet.checkpointAt",
                static_cast<std::uint64_t>(job.checkpointAt));
        cfg.set("fleet.checkpointOut", job.checkpointOut);
    }
    if (!job.restoreFrom.empty())
        cfg.set("fleet.restoreFrom", job.restoreFrom);
    return cfg;
}

std::string
jobHash(const JobSpec &job)
{
    return resolvedConfig(job).canonicalHashHex();
}

Config
chipConfig(const Config &resolved)
{
    Config out;
    for (const auto &key : resolved.keys()) {
        if (key == "workload" || key.rfind("workload.", 0) == 0 ||
            key.rfind("fleet.", 0) == 0)
            continue;
        out.set(key, resolved.getString(key));
    }
    return out;
}

} // namespace tenoc::fleet
