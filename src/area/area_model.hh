/**
 * @file
 * ORION-2.0-style analytical NoC area model (65 nm).
 *
 * The paper (Sec. V-F, Tables IV and VI) uses ORION 2.0 with a matrix
 * crossbar and SRAM buffers at 65 nm to compare router organizations.
 * We reproduce that comparison with a small analytical model whose
 * constants are calibrated against the published per-component areas in
 * Table VI:
 *
 *  - crossbar: matrix crossbar, area proportional to the number of
 *    crosspoints times the square of the channel width (wire-dominated),
 *  - input buffers: SRAM, area proportional to total storage bytes
 *    (ports x VCs x depth x flit bytes),
 *  - allocators: area proportional to VC^2 scaled by switch complexity,
 *  - links: area proportional to channel width per directed link.
 *
 * A full-router's crossbar has (4 + injPorts) x (4 + ejPorts)
 * crosspoints; a half-router (Fig. 13) has only the E<->W and N<->S
 * through paths plus injection/ejection fan-in/out, i.e.
 * 4 + 4*injPorts + 4*ejPorts crosspoints, which reproduces the paper's
 * ~52% half/full crossbar ratio and ~56% router ratio.
 */

#ifndef TENOC_AREA_AREA_MODEL_HH
#define TENOC_AREA_AREA_MODEL_HH

#include <cstdint>
#include <string>
#include <vector>

namespace tenoc
{

/** Physical description of one router for area purposes. */
struct RouterAreaParams
{
    bool half = false;            ///< half-router (limited connectivity)
    unsigned vcs = 2;             ///< virtual channels per input port
    unsigned buffersPerVc = 8;    ///< flit slots per VC
    double channelBytes = 16.0;   ///< channel/flit width in bytes
    unsigned injPorts = 1;        ///< injection ports (Sec. IV-D)
    unsigned ejPorts = 1;         ///< ejection ports

    /** Number of crossbar crosspoints for this organization. */
    unsigned crosspoints() const;
    /** Number of buffered input ports (4 mesh directions + injection). */
    unsigned bufferedPorts() const { return 4 + injPorts; }
};

/** Per-component area breakdown of one router, in mm^2. */
struct RouterAreaBreakdown
{
    double crossbar = 0.0;
    double buffer = 0.0;
    double allocator = 0.0;
    double total = 0.0;
};

/** Description of a (possibly sliced / heterogeneous) mesh for area. */
struct MeshAreaSpec
{
    unsigned rows = 6;
    unsigned cols = 6;
    unsigned subnetworks = 1;      ///< channel-sliced parallel networks
    double channelBytes = 16.0;    ///< per-subnetwork channel width
    unsigned vcs = 2;
    unsigned buffersPerVc = 8;
    bool checkerboard = false;     ///< alternate half-/full-routers
    unsigned mcInjPorts = 1;       ///< injection ports at MC routers
    unsigned mcEjPorts = 1;        ///< ejection ports at MC routers
    unsigned numMcs = 0;           ///< number of MC-attached routers
};

/** Aggregate NoC area report (mm^2). */
struct NocAreaReport
{
    double linkAreaPerLink = 0.0;
    double linkAreaSum = 0.0;
    double routerAreaSum = 0.0;
    /** One breakdown per distinct router type present in the spec. */
    std::vector<std::pair<std::string, RouterAreaBreakdown>> routerTypes;

    double nocTotal() const { return linkAreaSum + routerAreaSum; }
};

/**
 * Calibrated 65 nm area model.  All outputs are mm^2.
 */
class AreaModel
{
  public:
    /** Calibration constants (defaults match Table VI). */
    struct Calibration
    {
        /** mm^2 per crosspoint per byte^2 of channel width. */
        double crossbarPerCrosspointByte2 = 1.73 / (25.0 * 16.0 * 16.0);
        /** mm^2 per byte of SRAM buffer storage. */
        double bufferPerByte = 0.17 / (5.0 * 2.0 * 8.0 * 16.0);
        /** mm^2 per VC^2 at full 5x5 switch complexity. */
        double allocatorPerVc2 = 0.004 / (2.0 * 2.0);
        /** mm^2 per byte of channel width per directed link. */
        double linkPerByte = 0.175 / 16.0;
    };

    AreaModel() = default;
    explicit AreaModel(const Calibration &cal) : cal_(cal) {}

    /** Area of one router, decomposed by component. */
    RouterAreaBreakdown routerArea(const RouterAreaParams &p) const;

    /** Area of one directed inter-router link. */
    double linkArea(double channel_bytes) const;

    /** Number of directed inter-router links in a rows x cols mesh. */
    static unsigned meshDirectedLinks(unsigned rows, unsigned cols);

    /** Full report for a mesh NoC (all subnetworks summed). */
    NocAreaReport meshArea(const MeshAreaSpec &spec) const;

    /**
     * Total chip area given a compute-logic area (the paper subtracts
     * the baseline NoC from the GTX280's 576 mm^2 to get 486 mm^2).
     */
    double chipArea(const NocAreaReport &noc,
                    double compute_mm2 = kComputeAreaMm2) const;

    /** GTX280 die area at 65 nm used as the reference (Sec. V-F). */
    static constexpr double kGtx280AreaMm2 = 576.0;
    /** Compute-portion area (576 minus baseline NoC). */
    static constexpr double kComputeAreaMm2 = 486.0;

  private:
    Calibration cal_;
};

/** Throughput-effectiveness: application IPC per mm^2 of chip area. */
double throughputEffectiveness(double ipc, double chip_area_mm2);

} // namespace tenoc

#endif // TENOC_AREA_AREA_MODEL_HH
