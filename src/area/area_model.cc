/**
 * @file
 * Area model implementation.
 */

#include "area/area_model.hh"

#include "common/log.hh"

namespace tenoc
{

unsigned
RouterAreaParams::crosspoints() const
{
    if (half) {
        // E->W, W->E, N->S, S->N through paths, plus injection fan-out
        // to the four directions and ejection fan-in from them
        // (Fig. 13).
        return 4 + 4 * injPorts + 4 * ejPorts;
    }
    // Matrix crossbar between all buffered inputs and all outputs.
    return (4 + injPorts) * (4 + ejPorts);
}

RouterAreaBreakdown
AreaModel::routerArea(const RouterAreaParams &p) const
{
    tenoc_assert(p.vcs >= 1 && p.buffersPerVc >= 1 && p.channelBytes > 0,
                 "invalid router area parameters");
    RouterAreaBreakdown out;
    const double xp = static_cast<double>(p.crosspoints());
    out.crossbar = cal_.crossbarPerCrosspointByte2 * xp *
        p.channelBytes * p.channelBytes;
    out.buffer = cal_.bufferPerByte * p.bufferedPorts() * p.vcs *
        p.buffersPerVc * p.channelBytes;
    // Allocator complexity grows with VC count squared and with the
    // fraction of the full 5x5 switch that must be arbitrated.
    const double switch_frac = xp / 25.0;
    out.allocator = cal_.allocatorPerVc2 * p.vcs * p.vcs *
        switch_frac * switch_frac;
    out.total = out.crossbar + out.buffer + out.allocator;
    return out;
}

double
AreaModel::linkArea(double channel_bytes) const
{
    return cal_.linkPerByte * channel_bytes;
}

unsigned
AreaModel::meshDirectedLinks(unsigned rows, unsigned cols)
{
    // Each adjacent pair is connected by one link per direction.
    return 2 * (rows * (cols - 1) + cols * (rows - 1));
}

NocAreaReport
AreaModel::meshArea(const MeshAreaSpec &spec) const
{
    tenoc_assert(spec.rows >= 2 && spec.cols >= 2, "mesh too small");
    tenoc_assert(spec.subnetworks >= 1, "need at least one subnetwork");

    NocAreaReport report;
    report.linkAreaPerLink = linkArea(spec.channelBytes);
    const unsigned links = meshDirectedLinks(spec.rows, spec.cols);
    report.linkAreaSum = report.linkAreaPerLink * links *
        spec.subnetworks;

    const unsigned nodes = spec.rows * spec.cols;
    unsigned half_nodes = 0;
    if (spec.checkerboard) {
        for (unsigned y = 0; y < spec.rows; ++y)
            for (unsigned x = 0; x < spec.cols; ++x)
                if ((x + y) % 2 == 1)
                    ++half_nodes;
    }
    const unsigned full_nodes = nodes - half_nodes;

    auto base_params = [&](bool half) {
        RouterAreaParams p;
        p.half = half;
        p.vcs = spec.vcs;
        p.buffersPerVc = spec.buffersPerVc;
        p.channelBytes = spec.channelBytes;
        return p;
    };

    const auto full_b = routerArea(base_params(false));
    const auto half_b = routerArea(base_params(true));

    double router_sum = 0.0;
    report.routerTypes.emplace_back("full", full_b);
    if (half_nodes > 0)
        report.routerTypes.emplace_back("half", half_b);

    // MC terminal ports are direction-specific: with a dedicated
    // double network, extra ejection ports live on the request slice
    // and extra injection ports on the reply slice (Sec. IV-D), so
    // each slice upgrades its MC routers independently.
    for (unsigned sub = 0; sub < spec.subnetworks; ++sub) {
        unsigned inj = spec.mcInjPorts;
        unsigned ej = spec.mcEjPorts;
        if (spec.subnetworks == 2) {
            if (sub == 0)
                inj = 1; // request slice: MCs only eject
            else
                ej = 1;  // reply slice: MCs only inject
        }
        const bool multi = (inj > 1 || ej > 1);
        unsigned plain_half = half_nodes;
        unsigned plain_full = full_nodes;
        double mc_total = 0.0;
        if (multi) {
            RouterAreaParams mc_p = base_params(spec.checkerboard);
            mc_p.injPorts = inj;
            mc_p.ejPorts = ej;
            const auto mc_b = routerArea(mc_p);
            mc_total = spec.numMcs * mc_b.total;
            if (spec.checkerboard) {
                tenoc_assert(spec.numMcs <= plain_half,
                             "more multi-port MCs than half-routers");
                plain_half -= spec.numMcs;
            } else {
                tenoc_assert(spec.numMcs <= plain_full,
                             "more multi-port MCs than routers");
                plain_full -= spec.numMcs;
            }
            report.routerTypes.emplace_back(
                sub == 0 && spec.subnetworks == 2
                    ? "mc-multiport-req" : "mc-multiport",
                mc_b);
        }
        router_sum += plain_full * full_b.total +
            plain_half * half_b.total + mc_total;
    }
    report.routerAreaSum = router_sum;
    return report;
}

double
AreaModel::chipArea(const NocAreaReport &noc, double compute_mm2) const
{
    return compute_mm2 + noc.nocTotal();
}

double
throughputEffectiveness(double ipc, double chip_area_mm2)
{
    tenoc_assert(chip_area_mm2 > 0.0, "chip area must be positive");
    return ipc / chip_area_mm2;
}

} // namespace tenoc
