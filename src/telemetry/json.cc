/**
 * @file
 * JSON writer / parser implementation.
 */

#include "telemetry/json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

namespace tenoc::telemetry
{

JsonValue
JsonValue::makeArray()
{
    JsonValue v;
    v.kind_ = Kind::ARRAY;
    return v;
}

JsonValue
JsonValue::makeObject()
{
    JsonValue v;
    v.kind_ = Kind::OBJECT;
    return v;
}

void
JsonValue::push(JsonValue v)
{
    kind_ = Kind::ARRAY;
    arr_.push_back(std::move(v));
}

void
JsonValue::set(std::string key, JsonValue v)
{
    kind_ = Kind::OBJECT;
    for (auto &member : obj_) {
        if (member.first == key) {
            member.second = std::move(v);
            return;
        }
    }
    obj_.emplace_back(std::move(key), std::move(v));
}

const JsonValue *
JsonValue::find(std::string_view key) const
{
    if (kind_ != Kind::OBJECT)
        return nullptr;
    for (const auto &member : obj_) {
        if (member.first == key)
            return &member.second;
    }
    return nullptr;
}

std::size_t
JsonValue::size() const
{
    switch (kind_) {
      case Kind::ARRAY: return arr_.size();
      case Kind::OBJECT: return obj_.size();
      case Kind::STRING: return str_.size();
      default: return 0;
    }
}

void
writeJsonString(std::ostream &os, std::string_view s)
{
    os << '"';
    for (unsigned char c : s) {
        switch (c) {
          case '"': os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\b': os << "\\b"; break;
          case '\f': os << "\\f"; break;
          case '\n': os << "\\n"; break;
          case '\r': os << "\\r"; break;
          case '\t': os << "\\t"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                os << buf;
            } else {
                os << static_cast<char>(c);
            }
        }
    }
    os << '"';
}

void
writeJsonNumber(std::ostream &os, double v)
{
    if (!std::isfinite(v)) {
        os << "null"; // JSON has no NaN/Inf
        return;
    }
    // Integers (the common case for counters) print without exponent
    // or trailing zeros; everything else uses round-trip precision.
    if (v == std::floor(v) && std::abs(v) < 1e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.0f", v);
        os << buf;
        return;
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    // Trim to the shortest representation that round-trips.
    for (int prec = 1; prec < 17; ++prec) {
        char probe[32];
        std::snprintf(probe, sizeof(probe), "%.*g", prec, v);
        if (std::strtod(probe, nullptr) == v) {
            os << probe;
            return;
        }
    }
    os << buf;
}

void
JsonValue::writeIndented(std::ostream &os, unsigned indent,
                         unsigned depth) const
{
    const auto newline = [&](unsigned d) {
        if (indent == 0)
            return;
        os << '\n';
        for (unsigned i = 0; i < indent * d; ++i)
            os << ' ';
    };
    switch (kind_) {
      case Kind::NUL:
        os << "null";
        break;
      case Kind::BOOL:
        os << (bool_ ? "true" : "false");
        break;
      case Kind::NUMBER:
        writeJsonNumber(os, num_);
        break;
      case Kind::STRING:
        writeJsonString(os, str_);
        break;
      case Kind::ARRAY: {
        if (arr_.empty()) {
            os << "[]";
            break;
        }
        os << '[';
        for (std::size_t i = 0; i < arr_.size(); ++i) {
            if (i)
                os << ',';
            newline(depth + 1);
            arr_[i].writeIndented(os, indent, depth + 1);
        }
        newline(depth);
        os << ']';
        break;
      }
      case Kind::OBJECT: {
        if (obj_.empty()) {
            os << "{}";
            break;
        }
        os << '{';
        for (std::size_t i = 0; i < obj_.size(); ++i) {
            if (i)
                os << ',';
            newline(depth + 1);
            writeJsonString(os, obj_[i].first);
            os << (indent ? ": " : ":");
            obj_[i].second.writeIndented(os, indent, depth + 1);
        }
        newline(depth);
        os << '}';
        break;
      }
    }
}

void
JsonValue::write(std::ostream &os, unsigned indent) const
{
    writeIndented(os, indent, 0);
}

std::string
JsonValue::toString(unsigned indent) const
{
    std::ostringstream os;
    write(os, indent);
    return os.str();
}

namespace
{

/** Strict recursive-descent JSON parser over a string_view. */
class Parser
{
  public:
    Parser(std::string_view text, std::string *error)
        : text_(text), error_(error)
    {}

    bool
    parseDocument(JsonValue &out)
    {
        skipWs();
        if (!parseValue(out, 0))
            return false;
        skipWs();
        if (pos_ != text_.size())
            return fail("trailing characters after document");
        return true;
    }

  private:
    bool
    fail(const std::string &msg)
    {
        if (error_ && error_->empty()) {
            *error_ = msg + " at offset " + std::to_string(pos_);
        }
        return false;
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r')) {
            ++pos_;
        }
    }

    bool
    literal(std::string_view word)
    {
        if (text_.substr(pos_, word.size()) != word)
            return false;
        pos_ += word.size();
        return true;
    }

    bool
    parseValue(JsonValue &out, unsigned depth)
    {
        if (depth > 256)
            return fail("nesting too deep");
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        const char c = text_[pos_];
        switch (c) {
          case 'n':
            if (!literal("null"))
                return fail("bad literal");
            out = JsonValue();
            return true;
          case 't':
            if (!literal("true"))
                return fail("bad literal");
            out = JsonValue(true);
            return true;
          case 'f':
            if (!literal("false"))
                return fail("bad literal");
            out = JsonValue(false);
            return true;
          case '"': {
            std::string s;
            if (!parseString(s))
                return false;
            out = JsonValue(std::move(s));
            return true;
          }
          case '[':
            return parseArray(out, depth);
          case '{':
            return parseObject(out, depth);
          default:
            return parseNumber(out);
        }
    }

    bool
    parseNumber(JsonValue &out)
    {
        const std::size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        if (pos_ >= text_.size() ||
            !std::isdigit(static_cast<unsigned char>(text_[pos_])))
            return fail("bad number");
        while (pos_ < text_.size() &&
               std::isdigit(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
        if (pos_ < text_.size() && text_[pos_] == '.') {
            ++pos_;
            if (pos_ >= text_.size() ||
                !std::isdigit(static_cast<unsigned char>(text_[pos_])))
                return fail("bad fraction");
            while (pos_ < text_.size() &&
                   std::isdigit(
                       static_cast<unsigned char>(text_[pos_])))
                ++pos_;
        }
        if (pos_ < text_.size() &&
            (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < text_.size() &&
                (text_[pos_] == '+' || text_[pos_] == '-'))
                ++pos_;
            if (pos_ >= text_.size() ||
                !std::isdigit(static_cast<unsigned char>(text_[pos_])))
                return fail("bad exponent");
            while (pos_ < text_.size() &&
                   std::isdigit(
                       static_cast<unsigned char>(text_[pos_])))
                ++pos_;
        }
        const std::string token(text_.substr(start, pos_ - start));
        out = JsonValue(std::strtod(token.c_str(), nullptr));
        return true;
    }

    bool
    parseHex4(unsigned &out)
    {
        if (pos_ + 4 > text_.size())
            return fail("truncated \\u escape");
        out = 0;
        for (int i = 0; i < 4; ++i) {
            const char c = text_[pos_++];
            out <<= 4;
            if (c >= '0' && c <= '9')
                out |= static_cast<unsigned>(c - '0');
            else if (c >= 'a' && c <= 'f')
                out |= static_cast<unsigned>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                out |= static_cast<unsigned>(c - 'A' + 10);
            else
                return fail("bad \\u escape");
        }
        return true;
    }

    void
    appendUtf8(std::string &s, unsigned cp)
    {
        if (cp < 0x80) {
            s += static_cast<char>(cp);
        } else if (cp < 0x800) {
            s += static_cast<char>(0xC0 | (cp >> 6));
            s += static_cast<char>(0x80 | (cp & 0x3F));
        } else if (cp < 0x10000) {
            s += static_cast<char>(0xE0 | (cp >> 12));
            s += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            s += static_cast<char>(0x80 | (cp & 0x3F));
        } else {
            s += static_cast<char>(0xF0 | (cp >> 18));
            s += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
            s += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            s += static_cast<char>(0x80 | (cp & 0x3F));
        }
    }

    bool
    parseString(std::string &out)
    {
        ++pos_; // opening quote
        while (true) {
            if (pos_ >= text_.size())
                return fail("unterminated string");
            const char c = text_[pos_++];
            if (c == '"')
                return true;
            if (c == '\\') {
                if (pos_ >= text_.size())
                    return fail("unterminated escape");
                const char e = text_[pos_++];
                switch (e) {
                  case '"': out += '"'; break;
                  case '\\': out += '\\'; break;
                  case '/': out += '/'; break;
                  case 'b': out += '\b'; break;
                  case 'f': out += '\f'; break;
                  case 'n': out += '\n'; break;
                  case 'r': out += '\r'; break;
                  case 't': out += '\t'; break;
                  case 'u': {
                    unsigned cp = 0;
                    if (!parseHex4(cp))
                        return false;
                    // Surrogate pair.
                    if (cp >= 0xD800 && cp <= 0xDBFF &&
                        pos_ + 1 < text_.size() &&
                        text_[pos_] == '\\' && text_[pos_ + 1] == 'u') {
                        pos_ += 2;
                        unsigned lo = 0;
                        if (!parseHex4(lo))
                            return false;
                        if (lo >= 0xDC00 && lo <= 0xDFFF) {
                            cp = 0x10000 + ((cp - 0xD800) << 10) +
                                 (lo - 0xDC00);
                        }
                    }
                    appendUtf8(out, cp);
                    break;
                  }
                  default:
                    return fail("bad escape character");
                }
            } else if (static_cast<unsigned char>(c) < 0x20) {
                return fail("raw control character in string");
            } else {
                out += c;
            }
        }
    }

    bool
    parseArray(JsonValue &out, unsigned depth)
    {
        ++pos_; // '['
        out = JsonValue::makeArray();
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            JsonValue elem;
            skipWs();
            if (!parseValue(elem, depth + 1))
                return false;
            out.push(std::move(elem));
            skipWs();
            if (pos_ >= text_.size())
                return fail("unterminated array");
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == ']') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or ']'");
        }
    }

    bool
    parseObject(JsonValue &out, unsigned depth)
    {
        ++pos_; // '{'
        out = JsonValue::makeObject();
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            if (pos_ >= text_.size() || text_[pos_] != '"')
                return fail("expected object key");
            std::string key;
            if (!parseString(key))
                return false;
            skipWs();
            if (pos_ >= text_.size() || text_[pos_] != ':')
                return fail("expected ':'");
            ++pos_;
            skipWs();
            JsonValue value;
            if (!parseValue(value, depth + 1))
                return false;
            out.set(std::move(key), std::move(value));
            skipWs();
            if (pos_ >= text_.size())
                return fail("unterminated object");
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == '}') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or '}'");
        }
    }

    std::string_view text_;
    std::string *error_;
    std::size_t pos_ = 0;
};

} // namespace

bool
JsonValue::parse(std::string_view text, JsonValue &out,
                 std::string *error)
{
    if (error)
        error->clear();
    Parser p(text, error);
    return p.parseDocument(out);
}

} // namespace tenoc::telemetry
