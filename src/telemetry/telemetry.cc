/**
 * @file
 * TelemetryHub and CLI flag parsing.
 */

#include "telemetry/telemetry.hh"

#include <cstdlib>
#include <cstring>
#include <fstream>

#include "common/log.hh"

namespace tenoc::telemetry
{

namespace
{

/**
 * Matches `--name value` / `--name=value` at argv[i].
 * @return true and sets `value` (advancing `i` past a separate value
 *         argument) on a match.
 */
bool
matchFlag(int argc, char **argv, int &i, const char *name,
          std::string &value)
{
    const char *arg = argv[i];
    if (std::strncmp(arg, "--", 2) != 0)
        return false;
    const std::size_t name_len = std::strlen(name);
    if (std::strncmp(arg + 2, name, name_len) != 0)
        return false;
    const char *rest = arg + 2 + name_len;
    if (*rest == '=') {
        value = rest + 1;
        return true;
    }
    if (*rest == '\0') {
        // A following "--..." argument is another flag, not a value:
        // --stats-json --trace t.json must not eat --trace.
        if (i + 1 >= argc ||
            std::strncmp(argv[i + 1], "--", 2) == 0) {
            warn("telemetry flag --", name, " needs a value; ignored");
            value.clear();
            return true;
        }
        value = argv[++i];
        return true;
    }
    return false; // prefix of a longer flag (e.g. --interval-csv)
}

} // namespace

TelemetryConfig
parseTelemetryFlags(int &argc, char **argv)
{
    TelemetryConfig cfg;
    int out = 1;
    for (int i = 1; i < argc; ++i) {
        std::string value;
        // Longest names first: matchFlag rejects strict prefixes via
        // the '=' / '\0' check, but keeping this order makes that
        // obvious.
        if (matchFlag(argc, argv, i, "interval-csv", value)) {
            cfg.intervalCsvPath = value;
        } else if (matchFlag(argc, argv, i, "interval", value)) {
            const long long n = std::atoll(value.c_str());
            if (n >= 1)
                cfg.intervalCycles = static_cast<Cycle>(n);
            else
                warn("ignoring invalid --interval '", value, "'");
        } else if (matchFlag(argc, argv, i, "stats-json", value)) {
            cfg.statsJsonPath = value;
        } else if (matchFlag(argc, argv, i, "stats-csv", value)) {
            cfg.statsCsvPath = value;
        } else if (matchFlag(argc, argv, i, "trace-sample", value)) {
            const long long n = std::atoll(value.c_str());
            if (n >= 1)
                cfg.traceSampleEvery = static_cast<std::uint64_t>(n);
            else
                warn("ignoring invalid --trace-sample '", value, "'");
        } else if (matchFlag(argc, argv, i, "trace", value)) {
            cfg.tracePath = value;
        } else {
            argv[out++] = argv[i];
        }
    }
    argc = out;
    argv[argc] = nullptr;
    return cfg;
}

TelemetryHub::TelemetryHub(const TelemetryConfig &config)
    : config_(config)
{
    if (!config_.intervalCsvPath.empty())
        sampler_ =
            std::make_unique<IntervalSampler>(config_.intervalCycles);
    if (!config_.tracePath.empty())
        tracer_ =
            std::make_unique<ChromeTraceSink>(config_.traceSampleEvery);
}

TelemetryHub::~TelemetryHub() = default;

void
TelemetryHub::finish(Cycle now)
{
    if (sampler_)
        sampler_->finish(now);
}

bool
TelemetryHub::writeOutputs(const StatGroup *root)
{
    bool ok = true;
    auto toFile = [&](const std::string &path, auto &&writer) {
        std::ofstream os(path);
        if (!os) {
            warn("telemetry: cannot open '", path, "' for writing");
            ok = false;
            return;
        }
        writer(os);
        if (!os) {
            warn("telemetry: short write to '", path, "'");
            ok = false;
        }
    };
    if (!config_.statsJsonPath.empty()) {
        if (root) {
            toFile(config_.statsJsonPath, [&](std::ostream &os) {
                JsonValue doc = JsonMetricSink::toJson(*root);
                if (!config_.configHash.empty())
                    doc.set("config_hash",
                            JsonValue(config_.configHash));
                doc.write(os, 2);
                os << "\n";
            });
        } else {
            warn("telemetry: --stats-json requested but no stats "
                 "registry was provided");
            ok = false;
        }
    }
    if (!config_.statsCsvPath.empty()) {
        if (root) {
            toFile(config_.statsCsvPath, [&](std::ostream &os) {
                CsvMetricSink().write(*root, os);
            });
        } else {
            ok = false;
        }
    }
    if (sampler_ && !config_.intervalCsvPath.empty()) {
        toFile(config_.intervalCsvPath, [&](std::ostream &os) {
            sampler_->writeCsv(os);
            // Trailing metadata comment: the header row must stay on
            // line 1 for existing consumers.
            if (!config_.configHash.empty())
                os << "# config_hash=" << config_.configHash << "\n";
        });
    }
    if (tracer_ && !config_.tracePath.empty()) {
        toFile(config_.tracePath,
               [&](std::ostream &os) { tracer_->write(os); });
    }
    return ok;
}

} // namespace tenoc::telemetry
