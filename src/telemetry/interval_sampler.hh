/**
 * @file
 * Per-interval time-series recorder driven by the interconnect clock.
 *
 * Components register probes; every `window` cycles the sampler
 * snapshots all of them into one row.  Two probe semantics:
 *
 *  - counter: the probe reads a monotonically non-decreasing total;
 *    the recorded value is the per-window delta (e.g. flits injected
 *    this window),
 *  - gauge: the recorded value is the instantaneous reading at the
 *    window boundary (e.g. buffer occupancy).
 *
 * Vector probes expand to one column per element (`name[i]`), which is
 * how per-router occupancy and per-link utilization become CSV heatmap
 * matrices: rows are time windows, columns are routers/links.
 *
 * The sampler is clock-domain agnostic: `tick(now)` takes the driving
 * domain's cycle count and emits one row per crossed window boundary,
 * so a caller whose clock jumps several windows between ticks still
 * gets a row per window (deltas land in the first crossed window and
 * gauges repeat their reading).
 */

#ifndef TENOC_TELEMETRY_INTERVAL_SAMPLER_HH
#define TENOC_TELEMETRY_INTERVAL_SAMPLER_HH

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "common/types.hh"

namespace tenoc::telemetry
{

/** Interval time-series recorder (see file comment). */
class IntervalSampler
{
  public:
    using Probe = std::function<double()>;
    using VectorProbe = std::function<double(std::size_t)>;

    /** @param window sampling window length in driving-clock cycles */
    explicit IntervalSampler(Cycle window);

    Cycle window() const { return window_; }

    /** Registers a per-window-delta probe over a running total. */
    void addCounter(std::string name, Probe fn);
    /** Registers an instantaneous-reading probe. */
    void addGauge(std::string name, Probe fn);
    /** Registers `n` delta probes as columns `name[0..n)`. */
    void addCounterVector(std::string name, std::size_t n,
                          VectorProbe fn);
    /** Registers `n` gauge probes as columns `name[0..n)`. */
    void addGaugeVector(std::string name, std::size_t n,
                        VectorProbe fn);

    /**
     * Anchors window boundaries to `origin` instead of cycle 0, so a
     * harness with a warmup phase can make its measurement window start
     * coincide with a row boundary.  Cycles [0, origin) are emitted as
     * one dedicated warmup row (keeping counter deltas exhaustive: the
     * column sums still equal the final totals), and regular windows
     * run [origin, origin+window), ...  Must be called before any row
     * has been recorded.
     */
    void alignTo(Cycle origin);

    /**
     * Advances to `now` (driving-domain cycles); emits one row per
     * window boundary crossed since the last call.  Cheap when no
     * boundary is crossed (one comparison).
     */
    void
    tick(Cycle now)
    {
        if (window_start_ < origin_ ? now >= origin_
                                    : now - window_start_ >= window_)
            advanceTo(now);
    }

    /** Flushes the final partial window (row end = `now`). */
    void finish(Cycle now);

    /** Column headers, in CSV order (excludes window/start/end). */
    const std::vector<std::string> &columns() const { return columns_; }
    std::size_t numRows() const { return rows_.size(); }
    /** Raw row data (columns in `columns()` order). */
    const std::vector<double> &row(std::size_t i) const
    {
        return rows_[i].values;
    }
    Cycle rowStart(std::size_t i) const { return rows_[i].start; }
    Cycle rowEnd(std::size_t i) const { return rows_[i].end; }

    /**
     * Writes the time series as CSV: a header
     * `window,start,end,<col>...` then one row per window.
     */
    void writeCsv(std::ostream &os) const;

  private:
    struct ProbeEntry
    {
        bool delta;      ///< counter (delta) vs gauge semantics
        Probe fn;
        double last = 0; ///< previous total, for deltas
    };
    struct Row
    {
        Cycle start;
        Cycle end;
        std::vector<double> values;
    };

    void advanceTo(Cycle now);
    void emitRow(Cycle start, Cycle end);

    Cycle window_;
    Cycle window_start_ = 0;
    /** First aligned window boundary; [0, origin_) is the warmup row. */
    Cycle origin_ = 0;
    std::vector<std::string> columns_;
    std::vector<ProbeEntry> probes_;
    std::vector<Row> rows_;
    bool finished_ = false;
};

} // namespace tenoc::telemetry

#endif // TENOC_TELEMETRY_INTERVAL_SAMPLER_HH
