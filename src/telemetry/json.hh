/**
 * @file
 * Minimal JSON document model with a writer and a strict
 * recursive-descent parser.
 *
 * Used by the telemetry subsystem to emit machine-readable metric /
 * trace files and by the tests to parse them back (well-formedness is
 * part of the telemetry contract).  Object member order is preserved
 * so emitted files are stable across runs and diffs stay readable.
 * No external dependencies.
 */

#ifndef TENOC_TELEMETRY_JSON_HH
#define TENOC_TELEMETRY_JSON_HH

#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace tenoc::telemetry
{

/** One JSON value (null / bool / number / string / array / object). */
class JsonValue
{
  public:
    enum class Kind : std::uint8_t
    {
        NUL,
        BOOL,
        NUMBER,
        STRING,
        ARRAY,
        OBJECT
    };

    using Array = std::vector<JsonValue>;
    /** Insertion-ordered object members. */
    using Object = std::vector<std::pair<std::string, JsonValue>>;

    JsonValue() : kind_(Kind::NUL) {}
    JsonValue(bool b) : kind_(Kind::BOOL), bool_(b) {}
    JsonValue(double d) : kind_(Kind::NUMBER), num_(d) {}
    JsonValue(int i) : kind_(Kind::NUMBER), num_(i) {}
    JsonValue(std::uint64_t u)
        : kind_(Kind::NUMBER), num_(static_cast<double>(u))
    {}
    JsonValue(std::int64_t i)
        : kind_(Kind::NUMBER), num_(static_cast<double>(i))
    {}
    JsonValue(const char *s) : kind_(Kind::STRING), str_(s) {}
    JsonValue(std::string s) : kind_(Kind::STRING), str_(std::move(s)) {}

    /** @return an empty array value. */
    static JsonValue makeArray();
    /** @return an empty object value. */
    static JsonValue makeObject();

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::NUL; }
    bool isBool() const { return kind_ == Kind::BOOL; }
    bool isNumber() const { return kind_ == Kind::NUMBER; }
    bool isString() const { return kind_ == Kind::STRING; }
    bool isArray() const { return kind_ == Kind::ARRAY; }
    bool isObject() const { return kind_ == Kind::OBJECT; }

    bool asBool() const { return bool_; }
    double asNumber() const { return num_; }
    const std::string &asString() const { return str_; }
    const Array &asArray() const { return arr_; }
    const Object &asObject() const { return obj_; }

    /** Appends to an array value. */
    void push(JsonValue v);
    /** Sets (or appends) an object member. */
    void set(std::string key, JsonValue v);
    /** @return the member named `key`, or nullptr. */
    const JsonValue *find(std::string_view key) const;
    /** @return true if the object has a member named `key`. */
    bool has(std::string_view key) const { return find(key) != nullptr; }
    std::size_t size() const;

    /**
     * Serializes this value.
     * @param os output stream
     * @param indent spaces per nesting level; 0 writes compact
     *        single-line JSON
     */
    void write(std::ostream &os, unsigned indent = 2) const;
    /** @return the serialized text. */
    std::string toString(unsigned indent = 2) const;

    /**
     * Parses a complete JSON document (trailing garbage is an error).
     * @param text document text
     * @param error optional out-parameter receiving a message with a
     *        byte offset on failure
     * @return the parsed value, or std::nullopt-like null + error set
     *         (check via the error parameter; a valid document may
     *         itself be `null`)
     */
    static bool parse(std::string_view text, JsonValue &out,
                      std::string *error = nullptr);

  private:
    void writeIndented(std::ostream &os, unsigned indent,
                       unsigned depth) const;

    Kind kind_;
    bool bool_ = false;
    double num_ = 0.0;
    std::string str_;
    Array arr_;
    Object obj_;
};

/** Writes a JSON-escaped string literal (with quotes) to `os`. */
void writeJsonString(std::ostream &os, std::string_view s);

/** Formats a double as JSON (shortest round-trip; NaN/Inf as null). */
void writeJsonNumber(std::ostream &os, double v);

} // namespace tenoc::telemetry

#endif // TENOC_TELEMETRY_JSON_HH
