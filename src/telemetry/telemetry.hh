/**
 * @file
 * Telemetry front door: configuration, CLI flag parsing, and the hub
 * that owns the optional sinks.
 *
 * A TelemetryHub bundles the three observability channels:
 *
 *  1. final-state metrics: a StatGroup hierarchy exported as JSON/CSV
 *     (`--stats-json` / `--stats-csv`),
 *  2. interval time-series: an IntervalSampler ticked by the
 *     interconnect clock (`--interval-csv`, window via `--interval`),
 *  3. flit-level event traces: a ChromeTraceSink behind a packet-id
 *     sampling rate (`--trace`, rate via `--trace-sample`).
 *
 * Components receive the hub through `Network::attachTelemetry` /
 * `Chip::attachTelemetry` and register probes / wire tracer pointers.
 * When a channel is not requested its accessor returns nullptr and the
 * instrumentation hooks reduce to a single pointer test (the null-sink
 * fast path), so an un-instrumented simulation pays nothing.
 */

#ifndef TENOC_TELEMETRY_TELEMETRY_HH
#define TENOC_TELEMETRY_TELEMETRY_HH

#include <memory>
#include <string>

#include "common/stats.hh"
#include "telemetry/interval_sampler.hh"
#include "telemetry/metric_sink.hh"
#include "telemetry/trace_sink.hh"

namespace tenoc::telemetry
{

/** Which sinks to create and where their output files go. */
struct TelemetryConfig
{
    std::string statsJsonPath;   ///< final metrics as JSON ("" = off)
    std::string statsCsvPath;    ///< final metrics as CSV ("" = off)
    std::string intervalCsvPath; ///< interval time-series ("" = off)
    std::string tracePath;       ///< Chrome trace JSON ("" = off)
    Cycle intervalCycles = 1000; ///< sampling window (icnt cycles)
    std::uint64_t traceSampleEvery = 64; ///< packet-id sampling rate
    /** Canonical config hash (Config::canonicalHashHex()) echoed into
     *  the stats-JSON header and as interval-CSV trailing metadata so
     *  output files are traceable to the exact configuration that
     *  produced them ("" = omit). */
    std::string configHash;

    bool
    any() const
    {
        return !statsJsonPath.empty() || !statsCsvPath.empty() ||
               !intervalCsvPath.empty() || !tracePath.empty();
    }
};

/**
 * Strips the telemetry flags from an argv vector and returns the
 * parsed configuration; unrecognized arguments are left in place (and
 * argc is updated), so harness-specific positional arguments keep
 * working.  Recognized flags (both `--flag value` and `--flag=value`):
 *
 *   --stats-json PATH    --stats-csv PATH
 *   --interval-csv PATH  --interval CYCLES
 *   --trace PATH         --trace-sample N
 */
TelemetryConfig parseTelemetryFlags(int &argc, char **argv);

/** Owns the sinks requested by a TelemetryConfig (see file comment). */
class TelemetryHub
{
  public:
    explicit TelemetryHub(const TelemetryConfig &config);
    ~TelemetryHub();

    const TelemetryConfig &config() const { return config_; }

    /** @return the interval sampler, or nullptr when not requested. */
    IntervalSampler *sampler() { return sampler_.get(); }

    /** @return the flit tracer, or nullptr when not requested. */
    TraceSink *tracer() { return tracer_.get(); }

    /** @return true if a final-metrics export was requested. */
    bool
    wantsStats() const
    {
        return !config_.statsJsonPath.empty() ||
               !config_.statsCsvPath.empty();
    }

    /** Forwards the driving clock to the sampler (hot path). */
    void
    tick(Cycle now)
    {
        if (sampler_)
            sampler_->tick(now);
    }

    /** Flushes the sampler's final partial window. */
    void finish(Cycle now);

    /**
     * Writes all requested output files.  `root` may be null when no
     * final-metrics export was requested.
     * @return true if every requested file was written.
     */
    bool writeOutputs(const StatGroup *root);

  private:
    TelemetryConfig config_;
    std::unique_ptr<IntervalSampler> sampler_;
    std::unique_ptr<ChromeTraceSink> tracer_;
};

} // namespace tenoc::telemetry

#endif // TENOC_TELEMETRY_TELEMETRY_HH
