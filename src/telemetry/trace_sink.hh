/**
 * @file
 * Flit-level event tracing in Chrome trace-event format.
 *
 * A TraceSink receives lifecycle events for *sampled* packets:
 * injection queueing at the source NI, per-hop VC allocation and
 * switch traversal at every router, and ejection at the destination
 * NI.  Sampling is by packet id (`id % sampleEvery == 0`) so soak
 * tests and long closed-loop runs stay fast and the trace file stays
 * loadable; hooks compile down to a null-pointer check when no sink
 * is attached.
 *
 * ChromeTraceSink buffers events in memory and writes a JSON array of
 * Chrome trace-event objects ({name, ph, ts, pid, tid, ...}) loadable
 * in chrome://tracing / Perfetto:
 *
 *  - pid = the router/node where the event happened,
 *  - tid = the packet id (one "thread" lane per traced packet),
 *  - ts/dur = interconnect cycles ("X" complete events span a flit's
 *    residency; "i" instants mark allocation decisions).
 */

#ifndef TENOC_TELEMETRY_TRACE_SINK_HH
#define TENOC_TELEMETRY_TRACE_SINK_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "common/types.hh"

namespace tenoc::telemetry
{

/** Receiver of sampled flit lifecycle events. */
class TraceSink
{
  public:
    /** @param sample_every trace packets whose id is a multiple of
     *         this (1 = every packet; must be >= 1) */
    explicit TraceSink(std::uint64_t sample_every = 1)
        : sample_every_(sample_every ? sample_every : 1)
    {}
    virtual ~TraceSink() = default;

    /** @return true if events for this packet should be recorded.
     *  Non-virtual and inline: this is the hot-path gate. */
    bool
    wants(std::uint64_t pkt_id) const
    {
        return pkt_id % sample_every_ == 0;
    }

    std::uint64_t sampleEvery() const { return sample_every_; }

    /** Records a duration ("X") event spanning [start, end]. */
    virtual void complete(const char *name, std::uint64_t pid,
                          std::uint64_t tid, Cycle start,
                          Cycle end) = 0;

    /** Records an instant ("i") event at `ts`. */
    virtual void instant(const char *name, std::uint64_t pid,
                         std::uint64_t tid, Cycle ts) = 0;

  private:
    std::uint64_t sample_every_;
};

/** In-memory Chrome trace-event recorder. */
class ChromeTraceSink : public TraceSink
{
  public:
    explicit ChromeTraceSink(std::uint64_t sample_every = 1)
        : TraceSink(sample_every)
    {}

    void complete(const char *name, std::uint64_t pid,
                  std::uint64_t tid, Cycle start, Cycle end) override;
    void instant(const char *name, std::uint64_t pid,
                 std::uint64_t tid, Cycle ts) override;

    std::size_t numEvents() const { return events_.size(); }

    /** Writes the JSON array-of-events document. */
    void write(std::ostream &os) const;

  private:
    struct Event
    {
        std::string name;
        char ph;            ///< 'X' (complete) or 'i' (instant)
        std::uint64_t pid;
        std::uint64_t tid;
        Cycle ts;
        Cycle dur;          ///< 'X' only
    };
    std::vector<Event> events_;
};

} // namespace tenoc::telemetry

#endif // TENOC_TELEMETRY_TRACE_SINK_HH
