/**
 * @file
 * ChromeTraceSink implementation.
 */

#include "telemetry/trace_sink.hh"

#include "telemetry/json.hh"

namespace tenoc::telemetry
{

void
ChromeTraceSink::complete(const char *name, std::uint64_t pid,
                          std::uint64_t tid, Cycle start, Cycle end)
{
    events_.push_back(
        {name, 'X', pid, tid, start, end >= start ? end - start : 0});
}

void
ChromeTraceSink::instant(const char *name, std::uint64_t pid,
                         std::uint64_t tid, Cycle ts)
{
    events_.push_back({name, 'i', pid, tid, ts, 0});
}

void
ChromeTraceSink::write(std::ostream &os) const
{
    // Streamed by hand rather than built as one JsonValue: traces can
    // hold hundreds of thousands of events.
    os << "[";
    for (std::size_t i = 0; i < events_.size(); ++i) {
        const Event &e = events_[i];
        if (i)
            os << ",";
        os << "\n  {\"name\": ";
        writeJsonString(os, e.name);
        os << ", \"ph\": \"" << e.ph << "\", \"ts\": " << e.ts
           << ", \"pid\": " << e.pid << ", \"tid\": " << e.tid;
        if (e.ph == 'X')
            os << ", \"dur\": " << e.dur;
        if (e.ph == 'i')
            os << ", \"s\": \"t\"";
        os << "}";
    }
    os << "\n]\n";
}

} // namespace tenoc::telemetry
