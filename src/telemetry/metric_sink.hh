/**
 * @file
 * Structured exporters for the StatGroup registry.
 *
 * A MetricSink serializes a StatGroup hierarchy (counters,
 * accumulators, histograms with full bucket data, and lazy values) to
 * a machine-readable format.  Two implementations:
 *
 *  - JsonMetricSink: a JSON document with a flat `metrics` map whose
 *    keys are exactly the dotted names StatGroup::dump prints (plus
 *    extra accumulator min/max/sum detail), and a `histograms` map
 *    carrying bucket edges and counts for heatmaps / CDF plots.
 *  - CsvMetricSink: two-column `name,value` CSV with the same flat
 *    names (histogram buckets as name.bucket[i] rows).
 *
 * Every bench binary gains `--stats-json <path>` on top of its text
 * output through these sinks (see telemetry.hh).
 */

#ifndef TENOC_TELEMETRY_METRIC_SINK_HH
#define TENOC_TELEMETRY_METRIC_SINK_HH

#include <ostream>
#include <string>

#include "common/stats.hh"
#include "telemetry/json.hh"

namespace tenoc::telemetry
{

/** Serializes a StatGroup hierarchy to a stream. */
class MetricSink
{
  public:
    virtual ~MetricSink() = default;

    /** Writes the whole hierarchy rooted at `root`. */
    virtual void write(const StatGroup &root, std::ostream &os) = 0;

    /** @return the conventional file extension (without the dot). */
    virtual const char *extension() const = 0;
};

/** JSON exporter (schema `tenoc-metrics-v1`). */
class JsonMetricSink : public MetricSink
{
  public:
    void write(const StatGroup &root, std::ostream &os) override;
    const char *extension() const override { return "json"; }

    /** Builds the document without serializing (used by tests and by
     *  callers that embed metrics in a larger document). */
    static JsonValue toJson(const StatGroup &root);
};

/** Two-column CSV exporter (`name,value`). */
class CsvMetricSink : public MetricSink
{
  public:
    void write(const StatGroup &root, std::ostream &os) override;
    const char *extension() const override { return "csv"; }
};

/**
 * Writes `root` to `path` choosing the sink by file extension
 * (".csv" -> CSV, anything else -> JSON).
 * @return true on success (false: could not open the file).
 */
bool writeMetricsFile(const StatGroup &root, const std::string &path);

} // namespace tenoc::telemetry

#endif // TENOC_TELEMETRY_METRIC_SINK_HH
