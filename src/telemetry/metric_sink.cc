/**
 * @file
 * MetricSink implementations.
 */

#include "telemetry/metric_sink.hh"

#include <fstream>
#include <functional>

namespace tenoc::telemetry
{

namespace
{

std::string
joinName(const std::string &base, const std::string &leaf)
{
    return base.empty() ? leaf : base + "." + leaf;
}

/**
 * Walks a StatGroup depth-first with the same naming rule as
 * StatGroup::dump, invoking `scalar` for every flat stat line dump
 * would print and `histogram` once per histogram (for bucket data).
 */
void
walk(const StatGroup &g, const std::string &prefix,
     const std::function<void(const std::string &, double)> &scalar,
     const std::function<void(const std::string &, const Histogram &)>
         &histogram)
{
    const std::string base = prefix.empty()
        ? g.name()
        : (g.name().empty() ? prefix : prefix + "." + g.name());
    for (const auto *c : g.counters())
        scalar(joinName(base, c->name()),
               static_cast<double>(c->value()));
    for (const auto *a : g.accumulators()) {
        scalar(joinName(base, a->name() + ".mean"), a->mean());
        scalar(joinName(base, a->name() + ".count"),
               static_cast<double>(a->count()));
        scalar(joinName(base, a->name() + ".min"), a->min());
        scalar(joinName(base, a->name() + ".max"), a->max());
        scalar(joinName(base, a->name() + ".sum"), a->sum());
    }
    for (const auto *h : g.histograms()) {
        scalar(joinName(base, h->name() + ".mean"), h->mean());
        scalar(joinName(base, h->name() + ".count"),
               static_cast<double>(h->count()));
        histogram(joinName(base, h->name()), *h);
    }
    for (const auto &v : g.values())
        scalar(joinName(base, v.name), v.fn());
    for (const auto *child : g.children())
        walk(*child, base, scalar, histogram);
}

} // namespace

JsonValue
JsonMetricSink::toJson(const StatGroup &root)
{
    JsonValue doc = JsonValue::makeObject();
    doc.set("schema", "tenoc-metrics-v1");
    JsonValue metrics = JsonValue::makeObject();
    JsonValue histograms = JsonValue::makeObject();
    walk(
        root, "",
        [&](const std::string &name, double v) {
            metrics.set(name, JsonValue(v));
        },
        [&](const std::string &name, const Histogram &h) {
            JsonValue hv = JsonValue::makeObject();
            hv.set("low", JsonValue(h.low()));
            hv.set("high", JsonValue(h.high()));
            hv.set("bucket_width", JsonValue(h.bucketWidth()));
            hv.set("count",
                   JsonValue(static_cast<double>(h.count())));
            hv.set("mean", JsonValue(h.mean()));
            hv.set("p50", JsonValue(h.percentile(0.5)));
            hv.set("p95", JsonValue(h.percentile(0.95)));
            hv.set("p99", JsonValue(h.percentile(0.99)));
            JsonValue counts = JsonValue::makeArray();
            for (auto b : h.buckets())
                counts.push(JsonValue(static_cast<double>(b)));
            hv.set("counts", std::move(counts));
            histograms.set(name, std::move(hv));
        });
    doc.set("metrics", std::move(metrics));
    doc.set("histograms", std::move(histograms));
    return doc;
}

void
JsonMetricSink::write(const StatGroup &root, std::ostream &os)
{
    toJson(root).write(os, 2);
    os << "\n";
}

void
CsvMetricSink::write(const StatGroup &root, std::ostream &os)
{
    os << "name,value\n";
    walk(
        root, "",
        [&](const std::string &name, double v) {
            os << name << ",";
            writeJsonNumber(os, v); // same compact number format
            os << "\n";
        },
        [&](const std::string &name, const Histogram &h) {
            const auto &buckets = h.buckets();
            for (std::size_t i = 0; i < buckets.size(); ++i) {
                os << name << ".bucket[" << i << "]," << buckets[i]
                   << "\n";
            }
        });
}

bool
writeMetricsFile(const StatGroup &root, const std::string &path)
{
    std::ofstream os(path);
    if (!os)
        return false;
    if (path.size() >= 4 &&
        path.compare(path.size() - 4, 4, ".csv") == 0) {
        CsvMetricSink sink;
        sink.write(root, os);
    } else {
        JsonMetricSink sink;
        sink.write(root, os);
    }
    return static_cast<bool>(os);
}

} // namespace tenoc::telemetry
