/**
 * @file
 * IntervalSampler implementation.
 */

#include "telemetry/interval_sampler.hh"

#include "common/log.hh"
#include "telemetry/json.hh"

namespace tenoc::telemetry
{

IntervalSampler::IntervalSampler(Cycle window) : window_(window)
{
    tenoc_assert(window >= 1, "sampling window must be >= 1 cycle");
}

void
IntervalSampler::addCounter(std::string name, Probe fn)
{
    columns_.push_back(std::move(name));
    probes_.push_back({true, std::move(fn), 0.0});
}

void
IntervalSampler::addGauge(std::string name, Probe fn)
{
    columns_.push_back(std::move(name));
    probes_.push_back({false, std::move(fn), 0.0});
}

void
IntervalSampler::addCounterVector(std::string name, std::size_t n,
                                  VectorProbe fn)
{
    for (std::size_t i = 0; i < n; ++i) {
        addCounter(name + "[" + std::to_string(i) + "]",
                   [fn, i] { return fn(i); });
    }
}

void
IntervalSampler::addGaugeVector(std::string name, std::size_t n,
                                VectorProbe fn)
{
    for (std::size_t i = 0; i < n; ++i) {
        addGauge(name + "[" + std::to_string(i) + "]",
                 [fn, i] { return fn(i); });
    }
}

void
IntervalSampler::emitRow(Cycle start, Cycle end)
{
    Row row;
    row.start = start;
    row.end = end;
    row.values.reserve(probes_.size());
    for (auto &p : probes_) {
        const double v = p.fn();
        if (p.delta) {
            row.values.push_back(v - p.last);
            p.last = v;
        } else {
            row.values.push_back(v);
        }
    }
    rows_.push_back(std::move(row));
}

void
IntervalSampler::alignTo(Cycle origin)
{
    tenoc_assert(rows_.empty() && window_start_ == 0,
                 "alignTo must precede the first recorded row");
    origin_ = origin;
}

void
IntervalSampler::advanceTo(Cycle now)
{
    if (window_start_ < origin_) {
        if (now < origin_)
            return;
        // Close out warmup as its own row so measurement windows start
        // exactly at the origin boundary.
        emitRow(window_start_, origin_);
        window_start_ = origin_;
    }
    while (now - window_start_ >= window_) {
        emitRow(window_start_, window_start_ + window_);
        window_start_ += window_;
    }
}

void
IntervalSampler::finish(Cycle now)
{
    if (finished_)
        return;
    finished_ = true;
    if (now > window_start_)
        advanceTo(now);
    // Partial final window (deltas since the last boundary).
    if (now > window_start_)
        emitRow(window_start_, now);
}

void
IntervalSampler::writeCsv(std::ostream &os) const
{
    os << "window,start,end";
    for (const auto &c : columns_)
        os << "," << c;
    os << "\n";
    for (std::size_t i = 0; i < rows_.size(); ++i) {
        os << i << "," << rows_[i].start << "," << rows_[i].end;
        for (double v : rows_[i].values) {
            os << ",";
            writeJsonNumber(os, v);
        }
        os << "\n";
    }
}

} // namespace tenoc::telemetry
