/**
 * @file
 * Instruction sources for the SIMT core.
 *
 * A core consumes decoded warp instructions from an InstSource.  Two
 * implementations ship with tenoc:
 *  - ProfileInstSource: draws instructions from a statistical
 *    KernelProfile (the Table I synthetic suite; DESIGN.md
 *    "Substitutions"),
 *  - TraceInstSource: replays a per-warp instruction trace, enabling
 *    fully structural simulation (real-tag caches) from user-provided
 *    traces.
 */

#ifndef TENOC_GPU_INST_SOURCE_HH
#define TENOC_GPU_INST_SOURCE_HH

#include <memory>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "gpu/coalescer.hh"
#include "gpu/kernel_profile.hh"
#include "gpu/warp.hh"

namespace tenoc
{

class SnapshotWriter;
class SnapshotReader;

/** Produces decoded warp instructions. */
class InstSource
{
  public:
    virtual ~InstSource() = default;

    /** Number of resident warps this kernel wants (pre-clamp). */
    virtual unsigned numWarps() const = 0;

    /** Instructions warp `warp` executes before retiring. */
    virtual std::uint64_t warpLength(unsigned warp) const = 0;

    /**
     * Decodes warp `warp`'s next instruction into `out` (valid is set
     * by the caller).  Called exactly warpLength(warp) times per warp,
     * in program order per warp.
     */
    virtual void decode(unsigned warp, Warp::PendingInst &out,
                        Rng &rng) = 0;

    /**
     * Prepares the source for the next kernel launch.  Statistical
     * sources keep streaming (fresh data per launch); trace sources
     * rewind and replay.
     */
    virtual void rewind() {}

    /** Serializes the source's dynamic position (default: none). */
    virtual void save(SnapshotWriter &w) const { (void)w; }

    /** Restores state written by save(). */
    virtual void restore(SnapshotReader &r) { (void)r; }
};

/** Statistical source driven by a KernelProfile. */
class ProfileInstSource : public InstSource
{
  public:
    /**
     * @param profile kernel description (kept by reference)
     * @param core_id core index (address-space base derives from it)
     * @param num_warps resident warps after clamping
     * @param line_bytes cache line size
     * @param warp_size threads per warp (clamps coalescing)
     */
    ProfileInstSource(const KernelProfile &profile, unsigned core_id,
                      unsigned num_warps, unsigned line_bytes,
                      unsigned warp_size);

    unsigned numWarps() const override;
    std::uint64_t warpLength(unsigned warp) const override;
    void decode(unsigned warp, Warp::PendingInst &out,
                Rng &rng) override;
    void save(SnapshotWriter &w) const override;
    void restore(SnapshotReader &r) override;

  private:
    const KernelProfile &profile_;
    Coalescer coalescer_;
    std::vector<AddressStream> streams_;
};

/**
 * Trace replay source.
 *
 * Trace format (text; '#' comments):
 *   <warp> A                  one ALU instruction
 *   <warp> L <addr> [...]     load touching the given line addresses
 *   <warp> S <addr> [...]     store touching the given line addresses
 * Addresses may be decimal or 0x-prefixed hex; they are line-aligned
 * by the core's L1.  Warps are dense indices starting at 0.
 */
class TraceInstSource : public InstSource
{
  public:
    /** Parses a trace from text; fatal() on malformed input. */
    static std::unique_ptr<TraceInstSource>
    fromText(const std::string &text);

    /** Loads a trace file; fatal() if unreadable. */
    static std::unique_ptr<TraceInstSource>
    fromFile(const std::string &path);

    unsigned numWarps() const override;
    std::uint64_t warpLength(unsigned warp) const override;
    void decode(unsigned warp, Warp::PendingInst &out,
                Rng &rng) override;
    void rewind() override;
    void save(SnapshotWriter &w) const override;
    void restore(SnapshotReader &r) override;

  private:
    std::vector<std::vector<Warp::PendingInst>> per_warp_;
    std::vector<std::size_t> cursor_;
};

} // namespace tenoc

#endif // TENOC_GPU_INST_SOURCE_HH
