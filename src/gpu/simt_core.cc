/**
 * @file
 * SimtCore implementation.
 */

#include "gpu/simt_core.hh"

#include "common/log.hh"
#include "common/snapshot.hh"

namespace tenoc
{

namespace
{

/** L1 cache parameters from the kernel profile. */
CacheParams
l1Params(const KernelProfile &profile, unsigned line_bytes)
{
    CacheParams p;
    p.sizeBytes = 16 * 1024; // Table II
    p.lineBytes = line_bytes;
    p.ways = 4;
    if (profile.realCaches) {
        p.mode = CacheParams::Mode::REAL;
    } else {
        p.mode = CacheParams::Mode::PROFILE;
        p.profileHitRate = profile.l1HitRate;
        p.profileWritebackRate = profile.writebackRate;
    }
    return p;
}

} // namespace

SimtCore::SimtCore(unsigned id, const SimtCoreParams &params,
                   const KernelProfile &profile, CoreMemPort &port,
                   std::uint64_t seed,
                   std::unique_ptr<InstSource> source)
    : id_(id), params_(params), profile_(profile), port_(port),
      rng_(seed ^ (0x5851f42d4c957f2dULL * (id + 1))),
      l1_(l1Params(profile, params.lineBytes), seed + id),
      mshrs_(params.mshrEntries), source_(std::move(source))
{
    unsigned want_warps;
    if (source_) {
        want_warps = source_->numWarps();
    } else {
        want_warps = profile_.warpsPerCore;
    }
    const unsigned warps = std::min(want_warps, params_.maxWarps);
    tenoc_assert(warps >= 1, "kernel needs at least one warp");
    if (!source_) {
        source_ = std::make_unique<ProfileInstSource>(
            profile_, id_, warps, params_.lineBytes,
            params_.warpSize);
    }
    warps_.resize(warps);
    for (unsigned w = 0; w < warps; ++w) {
        warps_[w].id = w;
        warps_[w].instsRemaining = source_->warpLength(w);
        if (warps_[w].instsRemaining == 0) {
            warps_[w].state = Warp::State::DONE;
            ++warps_done_;
        }
    }
    slot_countdown_ = params_.issueInterval();
}

void
SimtCore::restart()
{
    tenoc_assert(done(), "restart before the previous kernel retired");
    tenoc_assert(mshrs_.size() == 0 && pending_writebacks_.empty(),
                 "restart with memory traffic in flight");
    source_->rewind();
    warps_done_ = 0;
    rr_warp_ = 0;
    slot_countdown_ = params_.issueInterval();
    for (auto &warp : warps_) {
        warp.state = Warp::State::READY;
        warp.instsRemaining = source_->warpLength(warp.id);
        warp.pendingReplies = 0;
        warp.next = Warp::PendingInst{};
        if (warp.instsRemaining == 0) {
            warp.state = Warp::State::DONE;
            ++warps_done_;
        }
    }
}

void
SimtCore::cycle(Cycle core_cycle)
{
    // Retry dirty-victim writebacks that found the port full (these
    // may outlive the warps that caused them).
    while (!pending_writebacks_.empty() && port_.canSendRequests(1)) {
        port_.sendWrite(pending_writebacks_.front());
        pending_writebacks_.pop_front();
        ++writes_sent_;
    }
    if (done())
        return;
    if (--slot_countdown_ > 0)
        return;
    slot_countdown_ = params_.issueInterval();
    if (!issueSlot(core_cycle))
        ++stall_slots_;
    if (done())
        finish_cycle_ = core_cycle;
}

bool
SimtCore::issueSlot(Cycle core_cycle)
{
    (void)core_cycle;
    const unsigned n = static_cast<unsigned>(warps_.size());
    for (unsigned i = 0; i < n; ++i) {
        const unsigned w = (rr_warp_ + i) % n;
        Warp &warp = warps_[w];
        if (!warp.canIssue(profile_.maxPendingLines))
            continue;

        // Decode once; a structurally stalled instruction is retried
        // as-is so congestion cannot bias the instruction mix.
        if (!warp.next.valid) {
            source_->decode(w, warp.next, rng_);
            warp.next.valid = true;
        }
        if (warp.next.isMem) {
            if (!executeMemInst(warp)) {
                // Structural stall (MSHRs or injection queue full):
                // this warp holds its decoded instruction; the
                // scheduler tries the next ready warp.
                continue;
            }
            ++mem_insts_;
        }
        warp.next = Warp::PendingInst{};
        ++warp_insts_;
        scalar_insts_ += params_.warpSize;
        tenoc_assert(warp.instsRemaining > 0, "warp over-ran kernel");
        --warp.instsRemaining;
        if (warp.instsRemaining == 0 && warp.pendingReplies == 0) {
            warp.state = Warp::State::DONE;
            ++warps_done_;
        } else if (warp.instsRemaining == 0) {
            // Retire once the last loads come back.
            warp.state = Warp::State::BLOCKED;
        }
        rr_warp_ = (w + 1) % n;
        return true;
    }
    return false; // no ready warp
}

bool
SimtCore::executeMemInst(Warp &warp)
{
    const bool is_store = warp.next.isStore;
    const auto &lines = warp.next.lines;

    // Conservative resource check: every line might miss and every
    // miss might add a dirty eviction.
    if (!port_.canSendRequests(
            static_cast<unsigned>(lines.size()) * 2)) {
        return false;
    }
    unsigned new_entries = 0;
    for (Addr raw : lines) {
        const Addr line = l1_.lineAddr(raw);
        if (!mshrs_.canAllocate(line))
            return false;
        if (!mshrs_.pending(line))
            ++new_entries;
    }
    if (mshrs_.size() + new_entries > mshrs_.capacity())
        return false;

    for (Addr raw : lines) {
        const Addr line = l1_.lineAddr(raw);
        const auto res = l1_.access(line, is_store);
        if (res.hit)
            continue;
        if (res.writeback) {
            port_.sendWrite(*res.writeback);
            ++writes_sent_;
        }
        // Write-allocate: stores fetch the line too.
        const bool is_new = mshrs_.allocate(
            line, (static_cast<std::uint64_t>(warp.id)));
        if (is_new) {
            port_.sendRead(line);
            ++reads_sent_;
        }
        if (is_store)
            pending_store_lines_.insert(line);
        ++warp.pendingReplies;
    }
    if (warp.pendingReplies >= profile_.maxPendingLines)
        warp.state = Warp::State::BLOCKED;
    return true;
}

void
SimtCore::onReadReply(Addr line)
{
    // Real-tag mode: install the line; a dirty victim becomes a write
    // request (queued if the injection port is momentarily full).
    if (l1_.params().mode == CacheParams::Mode::REAL) {
        const bool dirty = pending_store_lines_.erase(line) > 0;
        if (const auto wb = l1_.fill(line, dirty)) {
            if (port_.canSendRequests(1)) {
                port_.sendWrite(*wb);
                ++writes_sent_;
            } else {
                pending_writebacks_.push_back(*wb);
            }
        }
    } else {
        pending_store_lines_.erase(line);
    }

    for (std::uint64_t waiter : mshrs_.release(line)) {
        auto &warp = warps_[static_cast<std::size_t>(waiter)];
        tenoc_assert(warp.pendingReplies > 0,
                     "reply for warp with no pending requests");
        --warp.pendingReplies;
        if (warp.state != Warp::State::BLOCKED)
            continue;
        if (warp.instsRemaining == 0) {
            if (warp.pendingReplies == 0) {
                warp.state = Warp::State::DONE;
                ++warps_done_;
            }
        } else if (warp.pendingReplies < profile_.maxPendingLines) {
            warp.state = Warp::State::READY;
        }
    }
}

void
SimtCore::registerStats(StatGroup &group) const
{
    group.addValue("scalar_insts", [this] {
        return static_cast<double>(scalar_insts_);
    });
    group.addValue("warp_insts", [this] {
        return static_cast<double>(warp_insts_);
    });
    group.addValue("stall_slots", [this] {
        return static_cast<double>(stall_slots_);
    });
    group.addValue("mem_insts", [this] {
        return static_cast<double>(mem_insts_);
    });
    group.addValue("reads_sent", [this] {
        return static_cast<double>(reads_sent_);
    });
    group.addValue("writes_sent", [this] {
        return static_cast<double>(writes_sent_);
    });
}

void
SimtCore::save(SnapshotWriter &w) const
{
    w.tag("CORE");
    const auto st = rng_.state();
    for (const std::uint64_t s : st)
        w.u64(s);
    l1_.save(w);
    mshrs_.save(w);
    source_->save(w);
    w.u64(warps_.size());
    for (const Warp &warp : warps_) {
        w.u8(static_cast<std::uint8_t>(warp.state));
        w.u64(warp.instsRemaining);
        w.u32(warp.pendingReplies);
        w.boolean(warp.next.valid);
        w.boolean(warp.next.isMem);
        w.boolean(warp.next.isStore);
        w.u64(warp.next.lines.size());
        for (const Addr line : warp.next.lines)
            w.u64(line);
    }
    w.u64(pending_store_lines_.size());
    for (const Addr line : pending_store_lines_)
        w.u64(line);
    w.u64(pending_writebacks_.size());
    for (const Addr line : pending_writebacks_)
        w.u64(line);
    w.u32(rr_warp_);
    w.u32(slot_countdown_);
    w.u64(warps_done_);
    w.u64(scalar_insts_);
    w.u64(warp_insts_);
    w.u64(stall_slots_);
    w.u64(mem_insts_);
    w.u64(reads_sent_);
    w.u64(writes_sent_);
    w.u64(finish_cycle_);
}

void
SimtCore::restore(SnapshotReader &r)
{
    r.tag("CORE");
    std::array<std::uint64_t, 4> st;
    for (std::uint64_t &s : st)
        s = r.u64();
    rng_.setState(st);
    l1_.restore(r);
    mshrs_.restore(r);
    source_->restore(r);
    const std::uint64_t nwarps = r.u64();
    tenoc_assert(nwarps == warps_.size(),
                 "warp count mismatch in snapshot");
    for (Warp &warp : warps_) {
        warp.state = static_cast<Warp::State>(r.u8());
        warp.instsRemaining = r.u64();
        warp.pendingReplies = r.u32();
        warp.next.valid = r.boolean();
        warp.next.isMem = r.boolean();
        warp.next.isStore = r.boolean();
        warp.next.lines.clear();
        const std::uint64_t nlines = r.u64();
        for (std::uint64_t i = 0; i < nlines; ++i)
            warp.next.lines.push_back(r.u64());
    }
    pending_store_lines_.clear();
    const std::uint64_t nstore = r.u64();
    for (std::uint64_t i = 0; i < nstore; ++i)
        pending_store_lines_.insert(r.u64());
    pending_writebacks_.clear();
    const std::uint64_t nwb = r.u64();
    for (std::uint64_t i = 0; i < nwb; ++i)
        pending_writebacks_.push_back(r.u64());
    rr_warp_ = r.u32();
    slot_countdown_ = r.u32();
    warps_done_ = static_cast<std::size_t>(r.u64());
    scalar_insts_ = r.u64();
    warp_insts_ = r.u64();
    stall_slots_ = r.u64();
    mem_insts_ = r.u64();
    reads_sent_ = r.u64();
    writes_sent_ = r.u64();
    finish_cycle_ = r.u64();
}

} // namespace tenoc
