/**
 * @file
 * Coalescer implementation.
 */

#include "gpu/coalescer.hh"

#include <algorithm>
#include <cmath>

#include "common/log.hh"

namespace tenoc
{

unsigned
Coalescer::linesForAccess(const KernelProfile &profile, Rng &rng) const
{
    const double avg = profile.avgLinesPerMemInst;
    tenoc_assert(avg >= 1.0, "need at least one line per access");
    const double fl = std::floor(avg);
    unsigned n = static_cast<unsigned>(fl);
    if (rng.nextBool(avg - fl))
        ++n;
    return std::clamp(n, 1u, warp_size_);
}

std::vector<Addr>
Coalescer::coalesce(const KernelProfile &profile, AddressStream &stream,
                    Rng &rng) const
{
    const unsigned n = linesForAccess(profile, rng);
    std::vector<Addr> lines;
    lines.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        lines.push_back(stream.next(rng));
    return lines;
}

} // namespace tenoc
