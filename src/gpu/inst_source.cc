/**
 * @file
 * InstSource implementations.
 */

#include "gpu/inst_source.hh"

#include <cctype>
#include <fstream>
#include <sstream>

#include "common/log.hh"
#include "common/snapshot.hh"

namespace tenoc
{

ProfileInstSource::ProfileInstSource(const KernelProfile &profile,
                                     unsigned core_id,
                                     unsigned num_warps,
                                     unsigned line_bytes,
                                     unsigned warp_size)
    : profile_(profile), coalescer_(warp_size)
{
    streams_.reserve(num_warps);
    for (unsigned w = 0; w < num_warps; ++w) {
        // Warps interleave through a shared per-core region (adjacent
        // warps touch adjacent lines, as in coalesced CUDA kernels).
        const Addr core_base = static_cast<Addr>(core_id) << 34;
        streams_.emplace_back(core_base, w, num_warps, profile_,
                              line_bytes);
    }
}

unsigned
ProfileInstSource::numWarps() const
{
    return static_cast<unsigned>(streams_.size());
}

std::uint64_t
ProfileInstSource::warpLength(unsigned warp) const
{
    (void)warp;
    return profile_.warpInstsPerWarp;
}

void
ProfileInstSource::decode(unsigned warp, Warp::PendingInst &out,
                          Rng &rng)
{
    out.isMem = rng.nextBool(profile_.memFraction);
    if (out.isMem) {
        out.isStore = !rng.nextBool(profile_.loadFraction);
        out.lines =
            coalescer_.coalesce(profile_, streams_[warp], rng);
    } else {
        out.isStore = false;
        out.lines.clear();
    }
}

std::unique_ptr<TraceInstSource>
TraceInstSource::fromText(const std::string &text)
{
    auto src = std::unique_ptr<TraceInstSource>(new TraceInstSource);
    std::istringstream is(text);
    std::string line;
    std::size_t line_no = 0;
    while (std::getline(is, line)) {
        ++line_no;
        const auto hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        std::istringstream ls(line);
        unsigned warp = 0;
        std::string op;
        if (!(ls >> warp >> op))
            continue; // blank/comment line
        if (warp >= src->per_warp_.size())
            src->per_warp_.resize(warp + 1);
        Warp::PendingInst inst;
        if (op == "A" || op == "a") {
            inst.isMem = false;
        } else if (op == "L" || op == "l" || op == "S" || op == "s") {
            inst.isMem = true;
            inst.isStore = (op == "S" || op == "s");
            std::string tok;
            while (ls >> tok) {
                try {
                    inst.lines.push_back(std::stoull(tok, nullptr, 0));
                } catch (const std::exception &) {
                    tenoc_fatal("trace line ", line_no,
                                ": bad address '", tok, "'");
                }
            }
            if (inst.lines.empty())
                tenoc_fatal("trace line ", line_no,
                            ": memory op without addresses");
        } else {
            tenoc_fatal("trace line ", line_no, ": unknown op '", op,
                        "' (expected A, L, or S)");
        }
        src->per_warp_[warp].push_back(std::move(inst));
    }
    if (src->per_warp_.empty())
        tenoc_fatal("trace contains no instructions");
    src->cursor_.assign(src->per_warp_.size(), 0);
    return src;
}

std::unique_ptr<TraceInstSource>
TraceInstSource::fromFile(const std::string &path)
{
    std::ifstream f(path);
    if (!f)
        tenoc_fatal("cannot open trace file '", path, "'");
    std::stringstream ss;
    ss << f.rdbuf();
    return fromText(ss.str());
}

void
TraceInstSource::rewind()
{
    std::fill(cursor_.begin(), cursor_.end(), 0);
}

unsigned
TraceInstSource::numWarps() const
{
    return static_cast<unsigned>(per_warp_.size());
}

std::uint64_t
TraceInstSource::warpLength(unsigned warp) const
{
    return warp < per_warp_.size() ? per_warp_[warp].size() : 0;
}

void
TraceInstSource::decode(unsigned warp, Warp::PendingInst &out,
                        Rng &rng)
{
    (void)rng;
    tenoc_assert(warp < per_warp_.size() &&
                 cursor_[warp] < per_warp_[warp].size(),
                 "trace replay past end of warp ", warp);
    const auto &inst = per_warp_[warp][cursor_[warp]++];
    out.isMem = inst.isMem;
    out.isStore = inst.isStore;
    out.lines = inst.lines;
}

void
ProfileInstSource::save(SnapshotWriter &w) const
{
    w.u64(streams_.size());
    for (const AddressStream &stream : streams_)
        w.u64(stream.step());
}

void
ProfileInstSource::restore(SnapshotReader &r)
{
    const std::uint64_t n = r.u64();
    tenoc_assert(n == streams_.size(),
                 "address-stream count mismatch in snapshot");
    for (AddressStream &stream : streams_)
        stream.setStep(r.u64());
}

void
TraceInstSource::save(SnapshotWriter &w) const
{
    w.u64(cursor_.size());
    for (const std::size_t c : cursor_)
        w.u64(c);
}

void
TraceInstSource::restore(SnapshotReader &r)
{
    const std::uint64_t n = r.u64();
    tenoc_assert(n == cursor_.size(),
                 "trace cursor count mismatch in snapshot");
    for (std::size_t &c : cursor_)
        c = static_cast<std::size_t>(r.u64());
}

} // namespace tenoc
