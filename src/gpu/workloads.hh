/**
 * @file
 * The synthetic benchmark suite mirroring Table I of the paper.
 *
 * Each of the 31 CUDA benchmarks is modeled as a KernelProfile
 * calibrated so it lands in the traffic class the paper reports in
 * Fig. 7 (LL / LH / HH) and exhibits the corresponding closed-loop
 * behaviour (light traffic, heavy-but-balanced traffic, or traffic
 * that saturates the MC reply path).  Absolute magnitudes are ours;
 * classes and relative behaviour follow the paper.
 */

#ifndef TENOC_GPU_WORKLOADS_HH
#define TENOC_GPU_WORKLOADS_HH

#include <string>
#include <vector>

#include "gpu/kernel_profile.hh"

namespace tenoc
{

/** @return the full 31-benchmark suite in the paper's Fig. 7 order. */
const std::vector<KernelProfile> &workloadSuite();

/** @return profile by abbreviation (AES, BFS, ...); fatal if absent. */
const KernelProfile &findWorkload(const std::string &abbr);

/**
 * @return a copy of `p` with kernel length scaled by `factor`
 * (useful for quick tests and CI-speed benchmark runs).
 */
KernelProfile scaleWorkload(const KernelProfile &p, double factor);

} // namespace tenoc

#endif // TENOC_GPU_WORKLOADS_HH
