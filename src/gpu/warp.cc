/**
 * @file
 * Warp (header-only state; this TU anchors the target).
 */

#include "gpu/warp.hh"
