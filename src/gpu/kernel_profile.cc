/**
 * @file
 * AddressStream implementation.
 */

#include "gpu/kernel_profile.hh"

#include "common/log.hh"

namespace tenoc
{

AddressStream::AddressStream(Addr core_base, unsigned warp_id,
                             unsigned num_warps,
                             const KernelProfile &profile,
                             unsigned line_bytes)
    : base_(core_base + static_cast<Addr>(warp_id) * line_bytes),
      stride_(static_cast<Addr>(num_warps) * line_bytes),
      profile_(&profile)
{
    tenoc_assert(line_bytes > 0 && num_warps > 0, "bad stream config");
    steps_ = profile.footprintBytes / stride_;
    if (steps_ == 0)
        steps_ = 1;
}

Addr
AddressStream::next(Rng &rng)
{
    if (!rng.nextBool(profile_->rowLocality))
        step_ = rng.nextRange(steps_); // random jump in the footprint
    const Addr out = base_ + step_ * stride_;
    ++step_;
    if (step_ >= steps_)
        step_ = 0;
    return out;
}

} // namespace tenoc
