/**
 * @file
 * Memory divergence detection / coalescing stage (the "DD" box in
 * Fig. 4 of the paper).
 *
 * Coalescing merges the 32 scalar accesses of one warp memory
 * instruction into as few cache-line requests as possible.  The
 * synthetic model draws the number of distinct lines from the
 * profile's avgLinesPerMemInst and pulls that many line addresses
 * from the warp's address stream.
 */

#ifndef TENOC_GPU_COALESCER_HH
#define TENOC_GPU_COALESCER_HH

#include <vector>

#include "common/rng.hh"
#include "gpu/kernel_profile.hh"

namespace tenoc
{

class Coalescer
{
  public:
    /** @param warp_size scalar threads per warp (clamps line count) */
    explicit Coalescer(unsigned warp_size = 32)
        : warp_size_(warp_size)
    {}

    /**
     * Samples the number of distinct lines one warp memory instruction
     * touches: floor(avg) plus one with the fractional probability,
     * clamped to [1, warp_size].
     */
    unsigned linesForAccess(const KernelProfile &profile, Rng &rng) const;

    /**
     * Generates the coalesced line addresses for one warp memory
     * instruction.
     */
    std::vector<Addr> coalesce(const KernelProfile &profile,
                               AddressStream &stream, Rng &rng) const;

  private:
    unsigned warp_size_;
};

} // namespace tenoc

#endif // TENOC_GPU_COALESCER_HH
