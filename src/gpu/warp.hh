/**
 * @file
 * Warp state for the SIMT core model.
 */

#ifndef TENOC_GPU_WARP_HH
#define TENOC_GPU_WARP_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "gpu/kernel_profile.hh"

namespace tenoc
{

/** One warp (32 scalar threads executing in lock step). */
struct Warp
{
    enum class State : std::uint8_t
    {
        READY,   ///< may issue its next instruction
        BLOCKED, ///< waiting on outstanding memory replies
        DONE     ///< retired all instructions
    };

    unsigned id = 0;
    State state = State::READY;
    std::uint64_t instsRemaining = 0;
    unsigned pendingReplies = 0; ///< outstanding line refills

    /** @return true if the warp may issue given its MLP budget. */
    bool
    canIssue(unsigned max_pending) const
    {
        return state == State::READY && pendingReplies < max_pending;
    }

    /**
     * The decoded-but-not-yet-issued instruction.  Drawn once and held
     * across structural stalls so that congestion cannot bias the
     * instruction mix (a stalled memory instruction must eventually
     * issue as that same memory instruction).
     */
    struct PendingInst
    {
        bool valid = false;
        bool isMem = false;
        bool isStore = false;
        std::vector<Addr> lines; ///< coalesced line addresses
    };
    PendingInst next;

    bool ready() const { return state == State::READY; }
    bool done() const { return state == State::DONE; }
};

} // namespace tenoc

#endif // TENOC_GPU_WARP_HH
