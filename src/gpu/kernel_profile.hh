/**
 * @file
 * Parametric synthetic kernel profiles.
 *
 * The paper evaluates 31 CUDA benchmarks (Table I) through GPGPU-Sim's
 * PTX frontend.  We model each benchmark as a statistical kernel
 * profile executed closed-loop by the SIMT core model: instruction
 * mix, coalescing behaviour, cache locality, DRAM row locality, and
 * occupancy.  See DESIGN.md "Substitutions" for the rationale.
 */

#ifndef TENOC_GPU_KERNEL_PROFILE_HH
#define TENOC_GPU_KERNEL_PROFILE_HH

#include <cstdint>
#include <string>

#include "common/rng.hh"
#include "common/types.hh"

namespace tenoc
{

/** Statistical description of one benchmark kernel. */
struct KernelProfile
{
    std::string name;    ///< full benchmark name (Table I)
    std::string abbr;    ///< abbreviation (AES, BFS, ...)
    TrafficClass expectedClass = TrafficClass::LL;

    /** Resident warps per core (occupancy; 32 = fully occupied). */
    unsigned warpsPerCore = 32;
    /** Warp instructions each warp executes before retiring. */
    std::uint64_t warpInstsPerWarp = 200;
    /**
     * Kernel launches per run.  Launch boundaries are global
     * barriers: every core retires its warps and the memory system
     * drains before the next launch starts, exposing tail latency the
     * way multi-kernel CUDA applications do.
     */
    unsigned numKernels = 1;

    /** Fraction of warp instructions that access global memory. */
    double memFraction = 0.10;
    /** Of memory instructions, fraction that are loads. */
    double loadFraction = 0.85;
    /** Mean distinct cache lines touched per warp memory instruction
     *  after coalescing (1 = perfectly coalesced, up to 32). */
    double avgLinesPerMemInst = 1.5;

    /** L1 data cache hit rate (profile locality mode). */
    double l1HitRate = 0.5;
    /** L2 bank hit rate for requests that miss L1. */
    double l2HitRate = 0.3;
    /** Probability a miss also evicts a dirty line (write traffic). */
    double writebackRate = 0.10;

    /** Memory-level parallelism per warp: a warp keeps issuing until
     *  this many cache lines are outstanding (independent loads before
     *  the first use; 1-2 for pointer-chasing code, large for unrolled
     *  streaming kernels). */
    unsigned maxPendingLines = 8;

    /** Probability the next line in a warp's address stream is
     *  sequential (drives DRAM row locality). */
    double rowLocality = 0.8;
    /** Random-jump footprint per warp, in bytes. */
    std::uint64_t footprintBytes = 4ull << 20;

    /**
     * Use real tag-array caches (L1 and L2) instead of the profile
     * locality mode.  The statistical hit rates are then ignored;
     * locality is whatever the address stream produces.  Primarily
     * for trace replay (TraceInstSource).
     */
    bool realCaches = false;

    /** Total warp instructions across the whole chip. */
    std::uint64_t
    totalWarpInsts(unsigned num_cores) const
    {
        return static_cast<std::uint64_t>(num_cores) * warpsPerCore *
            warpInstsPerWarp;
    }
};

/**
 * Per-warp address stream.
 *
 * Models the access pattern of data-parallel CUDA kernels: the warps
 * of a core march through a shared per-core array with warp w touching
 * lines w, w + W, w + 2W, ... (W = warps per core), so neighbouring
 * warps touch neighbouring lines and, advancing in lock step, they
 * cover DRAM rows densely — the cross-warp spatial locality real
 * coalesced kernels exhibit.  With probability (1 - rowLocality) a
 * step is replaced by a random jump inside the footprint, which is
 * what destroys DRAM row locality for irregular benchmarks.
 */
class AddressStream
{
  public:
    /**
     * @param core_base start of the core's shared address region
     * @param warp_id this warp's index within the core
     * @param num_warps warps per core (the interleave stride)
     * @param profile kernel parameters (rowLocality, footprint)
     * @param line_bytes cache line size
     */
    AddressStream(Addr core_base, unsigned warp_id, unsigned num_warps,
                  const KernelProfile &profile, unsigned line_bytes);

    /** @return the next line address. */
    Addr next(Rng &rng);

    /** Stream position (the only dynamic state), for checkpoints. */
    std::uint64_t step() const { return step_; }
    void setStep(std::uint64_t step) { step_ = step; }

  private:
    Addr base_;          ///< core_base + warp offset
    Addr stride_;        ///< num_warps * line_bytes
    std::uint64_t steps_; ///< footprint size in strides
    std::uint64_t step_ = 0;
    const KernelProfile *profile_;
};

} // namespace tenoc

#endif // TENOC_GPU_KERNEL_PROFILE_HH
