/**
 * @file
 * SIMT compute core model (Fig. 4 of the paper).
 *
 * 8-wide SIMD pipeline executing 32-thread warps over four core
 * cycles; a dispatch queue of up to 32 ready warps; memory divergence
 * detection / coalescing; an L1 data cache (profile-locality mode for
 * the synthetic workloads) with a 64-entry MSHR table.  Global loads
 * that miss L1 send read requests into the NoC and block their warp
 * until the read reply returns; dirty evictions send write requests
 * (the paper's core->MC traffic is read requests plus less-frequent
 * writes, and MC->core traffic is read replies only).
 */

#ifndef TENOC_GPU_SIMT_CORE_HH
#define TENOC_GPU_SIMT_CORE_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <set>
#include <vector>

#include "cache/cache.hh"
#include "cache/mshr.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "gpu/inst_source.hh"
#include "gpu/kernel_profile.hh"
#include "gpu/warp.hh"

namespace tenoc
{

/**
 * The core's window into the memory system; implemented by the Chip,
 * which turns these into NoC packets with proper interconnect-domain
 * timestamps and MC routing by address interleaving.
 */
class CoreMemPort
{
  public:
    virtual ~CoreMemPort() = default;
    /** @return true if `n` more request packets can be queued now. */
    virtual bool canSendRequests(unsigned n) const = 0;
    /** Sends a read request for one line. */
    virtual void sendRead(Addr line) = 0;
    /** Sends a 64-byte write (dirty eviction / store flush). */
    virtual void sendWrite(Addr line) = 0;
};

/** SIMT core configuration (Table II). */
struct SimtCoreParams
{
    unsigned warpSize = 32;
    unsigned simdWidth = 8;
    unsigned maxWarps = 32;      ///< 1024 threads / 32
    unsigned mshrEntries = 64;
    unsigned lineBytes = 64;
    /** Core cycles per issue slot: warpSize / simdWidth. */
    unsigned
    issueInterval() const
    {
        return warpSize / simdWidth;
    }
};

class SimtCore
{
  public:
    /**
     * @param id core index (address-space base derives from it)
     * @param params core configuration
     * @param profile kernel profile (cache config, MLP; and the
     *        instruction statistics when no explicit source is given)
     * @param port memory system access
     * @param seed deterministic RNG seed
     * @param source optional instruction source (e.g. a trace);
     *        defaults to a ProfileInstSource over `profile`
     */
    SimtCore(unsigned id, const SimtCoreParams &params,
             const KernelProfile &profile, CoreMemPort &port,
             std::uint64_t seed,
             std::unique_ptr<InstSource> source = nullptr);

    /** Advances one core clock. */
    void cycle(Cycle core_cycle);

    /**
     * Starts the next kernel launch: rewinds the instruction source
     * and re-arms every warp.  Caches stay warm (as on real GPUs);
     * all MSHRs must have drained (global launch barrier).
     */
    void restart();

    /** Read reply arrived for `line`; wakes merged waiter warps. */
    void onReadReply(Addr line);

    /** @return true when every warp has retired. */
    bool done() const { return warps_done_ == warps_.size(); }

    /** @return true when no queued writebacks remain to be sent. */
    bool flushed() const { return pending_writebacks_.empty(); }

    // --- stats ---
    std::uint64_t scalarInsts() const { return scalar_insts_; }
    std::uint64_t warpInstsIssued() const { return warp_insts_; }
    std::uint64_t stallSlots() const { return stall_slots_; }
    std::uint64_t memInsts() const { return mem_insts_; }
    std::uint64_t readsSent() const { return reads_sent_; }
    std::uint64_t writesSent() const { return writes_sent_; }
    Cycle finishCycle() const { return finish_cycle_; }
    const Cache &l1() const { return l1_; }
    const MshrTable &mshrs() const { return mshrs_; }

    /** Registers the core's statistics under `group`. */
    void registerStats(StatGroup &group) const;

    /** Serializes warps, caches, MSHRs, RNG, and the inst source. */
    void save(SnapshotWriter &w) const;

    /** Restores state written by save(); warp count must match. */
    void restore(SnapshotReader &r);

  private:
    /** Attempts to issue one warp instruction; @return success. */
    bool issueSlot(Cycle core_cycle);

    /** Executes a memory instruction for `warp`; @return success. */
    bool executeMemInst(Warp &warp);

    unsigned id_;
    SimtCoreParams params_;
    const KernelProfile &profile_;
    CoreMemPort &port_;
    Rng rng_;

    Cache l1_;
    MshrTable mshrs_;
    std::unique_ptr<InstSource> source_;

    std::vector<Warp> warps_;
    /** Lines whose pending refill was triggered by a store
     *  (write-allocate dirtiness for real-tag caches). */
    std::set<Addr> pending_store_lines_;
    /** Dirty victims waiting for injection-queue space. */
    std::deque<Addr> pending_writebacks_;
    unsigned rr_warp_ = 0;
    unsigned slot_countdown_ = 0;
    std::size_t warps_done_ = 0;

    std::uint64_t scalar_insts_ = 0;
    std::uint64_t warp_insts_ = 0;
    std::uint64_t stall_slots_ = 0;
    std::uint64_t mem_insts_ = 0;
    std::uint64_t reads_sent_ = 0;
    std::uint64_t writes_sent_ = 0;
    Cycle finish_cycle_ = 0;
};

} // namespace tenoc

#endif // TENOC_GPU_SIMT_CORE_HH
