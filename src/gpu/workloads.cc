/**
 * @file
 * Benchmark profile definitions.
 *
 * Parameter meanings: m = fraction of warp instructions touching
 * global memory; lines = mean coalesced lines per memory instruction;
 * l1/l2 = hit rates; wb = dirty-eviction probability per miss; row =
 * address-stream sequentiality (DRAM row locality); warps = occupancy
 * per core; insts = warp instructions per warp.
 *
 * The key derived quantity is lambda = m * lines * (1 - l1): read
 * lines injected per warp instruction.  With 28 cores at peak issue
 * the baseline reply path (one injection port per MC, 5-flit replies)
 * supports lambda up to roughly 0.1; LL benchmarks sit far below it,
 * LH benchmarks below it, and HH benchmarks well above it, which is
 * what produces the paper's three-way classification.
 */

#include "gpu/workloads.hh"

#include <algorithm>

#include "common/log.hh"

namespace tenoc
{

namespace
{

KernelProfile
make(const char *abbr, const char *name, TrafficClass cls,
     unsigned warps, std::uint64_t insts, double m, double loads,
     double lines, double l1, double l2, double wb, double row,
     unsigned mlp)
{
    KernelProfile p;
    p.abbr = abbr;
    p.name = name;
    p.expectedClass = cls;
    p.warpsPerCore = warps;
    p.warpInstsPerWarp = insts;
    p.memFraction = m;
    p.loadFraction = loads;
    p.avgLinesPerMemInst = lines;
    p.l1HitRate = l1;
    p.l2HitRate = l2;
    p.writebackRate = wb;
    p.rowLocality = row;
    p.maxPendingLines = mlp;
    return p;
}

std::vector<KernelProfile>
buildSuite()
{
    using TC = TrafficClass;
    std::vector<KernelProfile> s;

    // --- LL: little demand on the network (heavy use of shared
    //     memory / high L1 hit rates; Sec. III-B).
    s.push_back(make("AES", "AES Cryptography", TC::LL,
                     32, 250, 0.04, 0.90, 1.0, 0.90, 0.45, 0.25, 0.90, 3));
    s.push_back(make("BIN", "Binomial Option Pricing", TC::LL,
                     32, 250, 0.03, 0.92, 1.0, 0.85, 0.40, 0.20, 0.92, 3));
    s.push_back(make("HSP", "HotSpot", TC::LL,
                     32, 250, 0.06, 0.88, 1.5, 0.85, 0.45, 0.30, 0.85, 3));
    s.push_back(make("NE", "Neural Network Digit Recognition", TC::LL,
                     8, 250, 0.05, 0.90, 1.2, 0.80, 0.40, 0.25, 0.88, 1));
    s.push_back(make("NDL", "Needleman-Wunsch", TC::LL,
                     8, 250, 0.08, 0.85, 1.5, 0.85, 0.40, 0.35, 0.80, 1));
    s.push_back(make("HW", "Heart Wall Tracking", TC::LL,
                     12, 250, 0.05, 0.90, 1.3, 0.90, 0.50, 0.25, 0.85, 1));
    s.push_back(make("LE", "Leukocyte", TC::LL,
                     32, 250, 0.04, 0.92, 1.2, 0.92, 0.50, 0.20, 0.88, 3));
    s.push_back(make("HIS", "64-bin Histogram", TC::LL,
                     12, 250, 0.06, 0.85, 1.5, 0.88, 0.45, 0.35, 0.82, 1));
    s.push_back(make("LU", "LU Decomposition", TC::LL,
                     8, 250, 0.07, 0.85, 1.4, 0.85, 0.45, 0.35, 0.80, 1));
    s.push_back(make("SLA", "Scan of Large Arrays", TC::LL,
                     32, 250, 0.08, 0.80, 1.0, 0.90, 0.50, 0.40, 0.95, 4));
    s.push_back(make("BP", "Back Propagation", TC::LL,
                     32, 250, 0.07, 0.85, 1.3, 0.87, 0.45, 0.30, 0.85, 3));

    // --- LH: heavy traffic but little perfect-NoC speedup (balanced;
    //     latency well hidden by multithreading).
    s.push_back(make("CON", "Separable Convolution", TC::LH,
                     32, 200, 0.13, 0.85, 1.4, 0.64, 0.45, 0.35, 0.90, 10));
    s.push_back(make("NNC", "Nearest Neighbor", TC::LH,
                     12, 200, 0.15, 0.90, 1.5, 0.70, 0.40, 0.25, 0.75, 6));
    s.push_back(make("BLK", "Black-Scholes Option Pricing", TC::LH,
                     32, 200, 0.11, 0.80, 1.0, 0.35, 0.25, 0.40, 0.95, 12));
    s.push_back(make("MM", "Matrix Multiplication", TC::LH,
                     32, 200, 0.20, 0.92, 1.2, 0.69, 0.50, 0.30, 0.88, 10));
    s.push_back(make("LPS", "3D Laplace Solver", TC::LH,
                     32, 200, 0.15, 0.85, 1.3, 0.59, 0.45, 0.35, 0.85, 10));
    s.push_back(make("RAY", "Ray Tracing", TC::LH,
                     32, 200, 0.12, 0.90, 2.0, 0.72, 0.40, 0.25, 0.60, 8));
    s.push_back(make("DG", "gpuDG", TC::LH,
                     32, 200, 0.18, 0.88, 1.3, 0.66, 0.45, 0.35, 0.82, 10));
    s.push_back(make("SS", "Similarity Score", TC::LH,
                     32, 200, 0.15, 0.85, 1.5, 0.62, 0.40, 0.35, 0.78, 10));
    s.push_back(make("TRA", "Matrix Transpose", TC::LH,
                     32, 200, 0.13, 0.60, 1.7, 0.64, 0.35, 0.50, 0.40, 10));
    s.push_back(make("SR", "Speckle Reducing Anisotropic Diffusion",
                     TC::LH,
                     32, 200, 0.14, 0.85, 1.4, 0.62, 0.42, 0.40, 0.82, 10));
    s.push_back(make("WP", "Weather Prediction", TC::LH,
                     32, 200, 0.16, 0.85, 1.5, 0.72, 0.42, 0.40, 0.78, 10));

    // --- HH: heavy traffic and large perfect-NoC speedup (the
    //     many-to-few-to-many reply bottleneck bites).
    s.push_back(make("MUM", "MUMmerGPU", TC::HH,
                     32, 140, 0.25, 0.90, 3.0, 0.55, 0.35, 0.30, 0.35, 6));
    s.push_back(make("LIB", "LIBOR Monte Carlo", TC::HH,
                     32, 150, 0.20, 0.85, 1.5, 0.35, 0.30, 0.35, 0.55, 10));
    s.push_back(make("FWT", "Fast Walsh Transform", TC::HH,
                     32, 150, 0.22, 0.70, 1.5, 0.50, 0.30, 0.45, 0.50, 10));
    s.push_back(make("SCP", "Scalar Product", TC::HH,
                     32, 150, 0.25, 0.90, 1.0, 0.30, 0.25, 0.12, 0.95, 10));
    s.push_back(make("STC", "Streamcluster", TC::HH,
                     32, 140, 0.20, 0.85, 1.8, 0.45, 0.30, 0.35, 0.50, 10));
    s.push_back(make("KM", "Kmeans", TC::HH,
                     32, 150, 0.22, 0.88, 1.5, 0.45, 0.30, 0.30, 0.55, 10));
    s.push_back(make("CFD", "CFD Solver", TC::HH,
                     32, 140, 0.25, 0.85, 2.0, 0.50, 0.30, 0.35, 0.45, 10));
    s.push_back(make("BFS", "BFS Graph Traversal", TC::HH,
                     32, 120, 0.30, 0.80, 3.5, 0.45, 0.30, 0.30, 0.30, 8));
    s.push_back(make("RD", "Parallel Reduction", TC::HH,
                     32, 150, 0.28, 0.85, 1.2, 0.20, 0.20, 0.18, 0.95, 10));
    return s;
}

} // namespace

const std::vector<KernelProfile> &
workloadSuite()
{
    static const std::vector<KernelProfile> suite = buildSuite();
    return suite;
}

const KernelProfile &
findWorkload(const std::string &abbr)
{
    for (const auto &p : workloadSuite())
        if (p.abbr == abbr)
            return p;
    tenoc_fatal("unknown workload '", abbr, "'");
}

KernelProfile
scaleWorkload(const KernelProfile &p, double factor)
{
    tenoc_assert(factor > 0.0, "scale factor must be positive");
    KernelProfile out = p;
    out.warpInstsPerWarp = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               static_cast<double>(p.warpInstsPerWarp) * factor));
    return out;
}

} // namespace tenoc
