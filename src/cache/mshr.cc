/**
 * @file
 * MshrTable implementation.
 */

#include "cache/mshr.hh"

#include "common/log.hh"

namespace tenoc
{

MshrTable::MshrTable(unsigned entries, unsigned max_merged)
    : entries_(entries), max_merged_(max_merged)
{
    tenoc_assert(entries_ >= 1 && max_merged_ >= 1, "bad MSHR geometry");
}

bool
MshrTable::canAllocate(Addr line) const
{
    auto it = table_.find(line);
    if (it != table_.end())
        return it->second.size() < max_merged_;
    return table_.size() < entries_;
}

bool
MshrTable::allocate(Addr line, std::uint64_t waiter)
{
    auto it = table_.find(line);
    if (it != table_.end()) {
        tenoc_assert(it->second.size() < max_merged_,
                     "MSHR merge overflow");
        it->second.push_back(waiter);
        ++merges_;
        return false;
    }
    tenoc_assert(table_.size() < entries_, "MSHR table overflow");
    table_.emplace(line, std::vector<std::uint64_t>{waiter});
    ++allocations_;
    return true;
}

std::vector<std::uint64_t>
MshrTable::release(Addr line)
{
    auto it = table_.find(line);
    tenoc_assert(it != table_.end(), "release of unknown MSHR line");
    std::vector<std::uint64_t> waiters = std::move(it->second);
    table_.erase(it);
    return waiters;
}

std::size_t
MshrTable::waiters(Addr line) const
{
    auto it = table_.find(line);
    return it == table_.end() ? 0 : it->second.size();
}

} // namespace tenoc
