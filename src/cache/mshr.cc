/**
 * @file
 * MshrTable implementation.
 */

#include "cache/mshr.hh"

#include <algorithm>

#include "common/log.hh"
#include "common/snapshot.hh"

namespace tenoc
{

MshrTable::MshrTable(unsigned entries, unsigned max_merged)
    : entries_(entries), max_merged_(max_merged)
{
    tenoc_assert(entries_ >= 1 && max_merged_ >= 1, "bad MSHR geometry");
}

bool
MshrTable::canAllocate(Addr line) const
{
    auto it = table_.find(line);
    if (it != table_.end())
        return it->second.size() < max_merged_;
    return table_.size() < entries_;
}

bool
MshrTable::allocate(Addr line, std::uint64_t waiter)
{
    auto it = table_.find(line);
    if (it != table_.end()) {
        tenoc_assert(it->second.size() < max_merged_,
                     "MSHR merge overflow");
        it->second.push_back(waiter);
        ++merges_;
        return false;
    }
    tenoc_assert(table_.size() < entries_, "MSHR table overflow");
    table_.emplace(line, std::vector<std::uint64_t>{waiter});
    ++allocations_;
    return true;
}

std::vector<std::uint64_t>
MshrTable::release(Addr line)
{
    auto it = table_.find(line);
    tenoc_assert(it != table_.end(), "release of unknown MSHR line");
    std::vector<std::uint64_t> waiters = std::move(it->second);
    table_.erase(it);
    return waiters;
}

std::size_t
MshrTable::waiters(Addr line) const
{
    auto it = table_.find(line);
    return it == table_.end() ? 0 : it->second.size();
}

void
MshrTable::save(SnapshotWriter &w) const
{
    w.tag("MSHR");
    std::vector<Addr> lines;
    lines.reserve(table_.size());
    for (const auto &[line, waiters] : table_)
        lines.push_back(line);
    std::sort(lines.begin(), lines.end());
    w.u64(lines.size());
    for (const Addr line : lines) {
        w.u64(line);
        const auto &waiters = table_.at(line);
        w.u64(waiters.size());
        for (const std::uint64_t waiter : waiters)
            w.u64(waiter);
    }
    w.u64(allocations_);
    w.u64(merges_);
}

void
MshrTable::restore(SnapshotReader &r)
{
    r.tag("MSHR");
    table_.clear();
    const std::uint64_t n = r.u64();
    for (std::uint64_t i = 0; i < n; ++i) {
        const Addr line = r.u64();
        auto &waiters = table_[line];
        const std::uint64_t m = r.u64();
        waiters.reserve(m);
        for (std::uint64_t j = 0; j < m; ++j)
            waiters.push_back(r.u64());
    }
    allocations_ = r.u64();
    merges_ = r.u64();
}

} // namespace tenoc
