/**
 * @file
 * Set-associative cache model (L1 data caches per core, shared L2
 * banks at the MC nodes; Table II).
 *
 * Two operating modes:
 *  - REAL: tag array with LRU replacement, writeback / write-allocate
 *    (the paper's L1 policy, Sec. II).
 *  - PROFILE: hit/miss outcomes drawn from a calibrated hit rate while
 *    the structural path (MSHRs, request/reply packets, DRAM row
 *    stream) is still fully simulated.  Used by the synthetic workload
 *    suite; see DESIGN.md "Substitutions".
 */

#ifndef TENOC_CACHE_CACHE_HH
#define TENOC_CACHE_CACHE_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"

namespace tenoc
{

class SnapshotWriter;
class SnapshotReader;

/** Cache geometry and mode. */
struct CacheParams
{
    std::uint64_t sizeBytes = 16 * 1024;
    unsigned lineBytes = 64;
    unsigned ways = 4;

    enum class Mode { REAL, PROFILE } mode = Mode::REAL;
    /** PROFILE mode: probability an access hits. */
    double profileHitRate = 0.0;
    /** PROFILE mode: probability a miss evicts a dirty line. */
    double profileWritebackRate = 0.0;
};

/** Outcome of a cache access. */
struct CacheAccessResult
{
    bool hit = false;
    /** Dirty eviction to perform (REAL: on fill; PROFILE: on miss). */
    std::optional<Addr> writeback;
};

class Cache
{
  public:
    explicit Cache(const CacheParams &params, std::uint64_t seed = 7);

    const CacheParams &params() const { return params_; }
    unsigned numSets() const { return num_sets_; }

    /** Aligns an address to its line. */
    Addr lineAddr(Addr a) const { return a & ~static_cast<Addr>(
        params_.lineBytes - 1); }

    /**
     * Performs a load/store lookup.  REAL mode: on hit, updates LRU
     * (and dirty bit for stores).  On miss the line is NOT filled;
     * call fill() when the refill returns.
     */
    CacheAccessResult access(Addr addr, bool write);

    /**
     * Installs a line after a refill (REAL mode); returns a dirty
     * victim address if one was evicted.  PROFILE mode: no-op.
     */
    std::optional<Addr> fill(Addr addr, bool dirty);

    /** @return true if the line is present (REAL mode only). */
    bool probe(Addr addr) const;

    /** Invalidates everything (e.g. between kernels). */
    void flush();

    /** Serializes tag array, LRU clock, RNG and counters. */
    void save(SnapshotWriter &w) const;

    /** Restores state written by save(); geometry must match. */
    void restore(SnapshotReader &r);

    // --- stats ---
    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    double
    hitRate() const
    {
        const auto total = hits_ + misses_;
        return total ? static_cast<double>(hits_) / total : 0.0;
    }

  private:
    struct Line
    {
        bool valid = false;
        bool dirty = false;
        Addr tag = 0;
        std::uint64_t lruStamp = 0;
    };

    unsigned setOf(Addr addr) const;
    Addr tagOf(Addr addr) const;

    CacheParams params_;
    unsigned num_sets_;
    std::vector<Line> lines_; ///< num_sets_ * ways, row-major
    std::uint64_t stamp_ = 0;
    Rng rng_;

    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

} // namespace tenoc

#endif // TENOC_CACHE_CACHE_HH
