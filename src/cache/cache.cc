/**
 * @file
 * Cache implementation.
 */

#include "cache/cache.hh"

#include "common/log.hh"
#include "common/snapshot.hh"

namespace tenoc
{

namespace
{

bool
isPow2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

} // namespace

Cache::Cache(const CacheParams &params, std::uint64_t seed)
    : params_(params), rng_(seed)
{
    tenoc_assert(isPow2(params_.lineBytes), "line size must be pow2");
    tenoc_assert(params_.ways >= 1, "need at least one way");
    const std::uint64_t lines = params_.sizeBytes / params_.lineBytes;
    tenoc_assert(lines % params_.ways == 0,
                 "size/line/ways geometry mismatch");
    num_sets_ = static_cast<unsigned>(lines / params_.ways);
    tenoc_assert(isPow2(num_sets_), "set count must be pow2");
    lines_.assign(lines, Line{});
    if (params_.mode == CacheParams::Mode::PROFILE) {
        tenoc_assert(params_.profileHitRate >= 0.0 &&
                     params_.profileHitRate <= 1.0,
                     "profile hit rate out of range");
    }
}

unsigned
Cache::setOf(Addr addr) const
{
    return static_cast<unsigned>((addr / params_.lineBytes) &
                                 (num_sets_ - 1));
}

Addr
Cache::tagOf(Addr addr) const
{
    return addr / params_.lineBytes / num_sets_;
}

CacheAccessResult
Cache::access(Addr addr, bool write)
{
    CacheAccessResult res;
    if (params_.mode == CacheParams::Mode::PROFILE) {
        res.hit = rng_.nextBool(params_.profileHitRate);
        if (res.hit) {
            ++hits_;
        } else {
            ++misses_;
            if (rng_.nextBool(params_.profileWritebackRate)) {
                // Synthesize a victim in the same set region so the
                // writeback address stream stays plausible.
                res.writeback = lineAddr(addr) ^
                    (static_cast<Addr>(num_sets_) * params_.lineBytes);
            }
        }
        return res;
    }

    const unsigned set = setOf(addr);
    const Addr tag = tagOf(addr);
    Line *base = &lines_[static_cast<std::size_t>(set) * params_.ways];
    for (unsigned w = 0; w < params_.ways; ++w) {
        Line &ln = base[w];
        if (ln.valid && ln.tag == tag) {
            ln.lruStamp = ++stamp_;
            if (write)
                ln.dirty = true;
            ++hits_;
            res.hit = true;
            return res;
        }
    }
    ++misses_;
    return res;
}

std::optional<Addr>
Cache::fill(Addr addr, bool dirty)
{
    if (params_.mode == CacheParams::Mode::PROFILE)
        return std::nullopt;

    const unsigned set = setOf(addr);
    const Addr tag = tagOf(addr);
    Line *base = &lines_[static_cast<std::size_t>(set) * params_.ways];

    // Already present (e.g. duplicate fill after MSHR merge): refresh.
    for (unsigned w = 0; w < params_.ways; ++w) {
        if (base[w].valid && base[w].tag == tag) {
            base[w].lruStamp = ++stamp_;
            base[w].dirty = base[w].dirty || dirty;
            return std::nullopt;
        }
    }

    // Choose victim: first invalid way, else LRU.
    unsigned victim = 0;
    bool found_invalid = false;
    std::uint64_t oldest = UINT64_MAX;
    for (unsigned w = 0; w < params_.ways; ++w) {
        if (!base[w].valid) {
            victim = w;
            found_invalid = true;
            break;
        }
        if (base[w].lruStamp < oldest) {
            oldest = base[w].lruStamp;
            victim = w;
        }
    }

    std::optional<Addr> wb;
    if (!found_invalid && base[victim].dirty) {
        const Addr victim_line =
            (base[victim].tag * num_sets_ + set) * params_.lineBytes;
        wb = victim_line;
    }
    base[victim].valid = true;
    base[victim].dirty = dirty;
    base[victim].tag = tag;
    base[victim].lruStamp = ++stamp_;
    return wb;
}

bool
Cache::probe(Addr addr) const
{
    if (params_.mode == CacheParams::Mode::PROFILE)
        return false;
    const unsigned set = setOf(addr);
    const Addr tag = tagOf(addr);
    const Line *base =
        &lines_[static_cast<std::size_t>(set) * params_.ways];
    for (unsigned w = 0; w < params_.ways; ++w)
        if (base[w].valid && base[w].tag == tag)
            return true;
    return false;
}

void
Cache::flush()
{
    for (auto &ln : lines_)
        ln = Line{};
}

void
Cache::save(SnapshotWriter &w) const
{
    w.tag("CACH");
    w.u64(lines_.size());
    for (const Line &ln : lines_) {
        w.boolean(ln.valid);
        w.boolean(ln.dirty);
        w.u64(ln.tag);
        w.u64(ln.lruStamp);
    }
    w.u64(stamp_);
    const auto st = rng_.state();
    for (const std::uint64_t s : st)
        w.u64(s);
    w.u64(hits_);
    w.u64(misses_);
}

void
Cache::restore(SnapshotReader &r)
{
    r.tag("CACH");
    const std::uint64_t n = r.u64();
    tenoc_assert(n == lines_.size(), "cache geometry mismatch");
    for (Line &ln : lines_) {
        ln.valid = r.boolean();
        ln.dirty = r.boolean();
        ln.tag = r.u64();
        ln.lruStamp = r.u64();
    }
    stamp_ = r.u64();
    std::array<std::uint64_t, 4> st;
    for (std::uint64_t &s : st)
        s = r.u64();
    rng_.setState(st);
    hits_ = r.u64();
    misses_ = r.u64();
}

} // namespace tenoc
