/**
 * @file
 * Miss-status holding registers (64 per core, Table II).
 *
 * Tracks outstanding line refills; accesses to an already-pending line
 * merge onto the existing entry instead of issuing another request.
 * A full table stalls the core's memory stage (the closed-loop
 * self-throttling the paper's simulations rely on).
 */

#ifndef TENOC_CACHE_MSHR_HH
#define TENOC_CACHE_MSHR_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.hh"

namespace tenoc
{

class SnapshotWriter;
class SnapshotReader;

/** MSHR table keyed by line address. */
class MshrTable
{
  public:
    /**
     * @param entries maximum outstanding distinct lines
     * @param max_merged maximum accesses merged per entry
     */
    explicit MshrTable(unsigned entries, unsigned max_merged = 32);

    unsigned capacity() const { return entries_; }
    std::size_t size() const { return table_.size(); }
    bool full() const { return table_.size() >= entries_; }

    /** @return true if a refill for this line is already pending. */
    bool pending(Addr line) const { return table_.count(line) != 0; }

    /**
     * @return true if a new access for `line` can be tracked (either a
     * fresh entry is available or the existing entry can merge).
     */
    bool canAllocate(Addr line) const;

    /**
     * Records an access waiting on `line` with opaque `waiter`.
     * @return true if this allocated a NEW entry (i.e. a request must
     * be sent); false if merged onto an existing one.
     */
    bool allocate(Addr line, std::uint64_t waiter);

    /**
     * Completes the refill of `line`, returning all merged waiters.
     */
    std::vector<std::uint64_t> release(Addr line);

    /** Merged-access count for a pending line. */
    std::size_t waiters(Addr line) const;

    /** Serializes pending entries (sorted by line address so blobs
     *  are independent of hash-map iteration order) and counters. */
    void save(SnapshotWriter &w) const;

    /** Restores state written by save(). */
    void restore(SnapshotReader &r);

    // --- stats ---
    std::uint64_t allocations() const { return allocations_; }
    std::uint64_t merges() const { return merges_; }

  private:
    unsigned entries_;
    unsigned max_merged_;
    std::unordered_map<Addr, std::vector<std::uint64_t>> table_;
    std::uint64_t allocations_ = 0;
    std::uint64_t merges_ = 0;
};

} // namespace tenoc

#endif // TENOC_CACHE_MSHR_HH
