/**
 * @file
 * Abstract network interface shared by the mesh simulator, the
 * channel-sliced double network, and the ideal networks used in the
 * paper's limit studies.
 */

#ifndef TENOC_NOC_NETWORK_HH
#define TENOC_NOC_NETWORK_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "noc/flit.hh"
#include "noc/topology.hh"

namespace tenoc
{

namespace telemetry
{
class TelemetryHub;
} // namespace telemetry

class SnapshotWriter;
class SnapshotReader;

/**
 * Consumer of packets at a node (compute core or MC).
 *
 * tryReserve() is called when a packet's head flit reaches the front
 * of the NI ejection buffer; returning false applies backpressure into
 * the network.  deliver() is called when the tail flit drains.
 *
 * Thread contract (phase-parallel cycles, common/parallel.hh): with
 * cycleThreads > 1 the network still calls tryReserve() and deliver()
 * only from the thread that calls Network::cycle — deliveries are
 * buffered per NI during the parallel drain phase and replayed, in
 * ascending node order, after the cycle's barriers.  Sinks therefore
 * need no synchronization of their own; a sink that injects from
 * inside deliver() must do so only into the network that delivered
 * (same-cycle echo into a sibling slice of a DoubleNetwork would
 * observe that slice mid-cycle).
 */
class PacketSink
{
  public:
    virtual ~PacketSink() = default;
    virtual bool tryReserve(const Packet &pkt) = 0;
    virtual void deliver(PacketPtr pkt, Cycle now) = 0;
};

/** Aggregate network statistics (shared across sliced subnetworks). */
struct NetStats
{
    explicit NetStats(unsigned num_nodes = 0)
        : nodeInjectedFlits(num_nodes, 0),
          nodeEjectedFlits(num_nodes, 0),
          nodeInjectedBytes(num_nodes, 0),
          nodeEjectedBytes(num_nodes, 0)
    {}

    std::uint64_t cycles = 0;
    std::uint64_t packetsInjected = 0;
    std::uint64_t packetsEjected = 0;
    std::uint64_t flitsInjected = 0;
    std::uint64_t flitsEjected = 0;

    /** Packet latency: NI enqueue -> tail ejected (queueing included). */
    Accumulator totalLatency{"total_latency"};
    /** Network latency: head entered router -> tail ejected. */
    Accumulator netLatency{"net_latency"};
    /** Distribution of total latency (for tail percentiles). */
    Histogram totalLatencyHist{"total_latency_hist", 0.0, 4000.0, 400};

    // --- per-packet latency breakdown (telemetry) ---
    /** Source-side queueing: NI enqueue -> head entered router. */
    Histogram queueLatencyHist{"queue_latency_hist", 0.0, 2000.0, 200};
    /** Traversal: head entered router -> head ejected. */
    Histogram traversalLatencyHist{
        "traversal_latency_hist", 0.0, 1000.0, 200};
    /** Serialization: head ejected -> tail ejected. */
    Histogram serializationLatencyHist{
        "serialization_latency_hist", 0.0, 256.0, 64};

    std::vector<std::uint64_t> nodeInjectedFlits;
    std::vector<std::uint64_t> nodeEjectedFlits;
    std::vector<std::uint64_t> nodeInjectedBytes;
    std::vector<std::uint64_t> nodeEjectedBytes;

    /** Mean accepted traffic over all nodes, bytes/cycle/node. */
    double acceptedBytesPerCyclePerNode() const;

    /** Mean injection rate of a node set, flits/cycle/node. */
    double injectionRate(const std::vector<NodeId> &nodes) const;

    /** Registers every field (scalars lazily, via StatGroup::addValue)
     *  under `group` for structured metrics export. */
    void registerStats(StatGroup &group);

    /** Serializes every field (checkpoint/restore). */
    void save(SnapshotWriter &w) const;

    /** Restores state written by save(). */
    void restore(SnapshotReader &r);
};

/** Abstract interconnect. */
class Network
{
  public:
    virtual ~Network() = default;

    virtual const Topology &topology() const = 0;
    virtual unsigned flitBytes() const = 0;

    /** @return true if the NI at `n` can queue one more packet. */
    virtual bool canInject(NodeId n, int proto_class) const = 0;

    /** @return number of packets the NI at `n` can still queue. */
    virtual unsigned injectSpace(NodeId n, int proto_class) const = 0;

    /** Queues a packet for injection (caller checked canInject). */
    virtual void inject(PacketPtr pkt, Cycle now) = 0;

    /** Registers the packet consumer at node `n`. */
    virtual void setSink(NodeId n, PacketSink *sink) = 0;

    /** Advances one interconnect cycle. */
    virtual void cycle(Cycle now) = 0;

    /** @return true when no traffic remains in flight. */
    virtual bool drained() const = 0;

    /**
     * Wires the hub's sampler probes and flit tracer into the network.
     * Default is a no-op (ideal networks have nothing to sample).
     */
    virtual void attachTelemetry(telemetry::TelemetryHub &hub)
    {
        (void)hub;
    }

    virtual NetStats &stats() = 0;
    const NetStats &stats() const
    {
        return const_cast<Network *>(this)->stats();
    }

    /**
     * Structured JSON snapshot of the network's internal state
     * (per-router VC states, credits, oldest packets, wait-for edges)
     * for deadlock diagnosis.  Harnesses print it when a run fails to
     * drain.  Default is empty (ideal networks have no such state).
     */
    virtual std::string
    diagnosticReport(Cycle now) const
    {
        (void)now;
        return "";
    }

    /**
     * Serializes all dynamic network state at a cycle boundary
     * (checkpoint/restore).  The default fatals: ideal networks model
     * no restorable state and cannot be checkpointed.
     */
    virtual void save(SnapshotWriter &w) const;

    /** Restores state written by save() into a structurally identical
     *  network.  Default fatals (see save()). */
    virtual void restore(SnapshotReader &r);

    /** Flits needed to carry a memory operation on this network. */
    unsigned
    packetFlits(MemOp op) const
    {
        return flitsForBytes(memOpBytes(op), flitBytes());
    }

    /**
     * Source-forked multicast: clones `proto` once per destination and
     * injects each copy, all sharing `proto`'s collectiveId so sinks
     * can merge the membership (reduction / barrier traffic).  The NoC
     * itself carries ordinary unicast worms — forking happens at the
     * source NI boundary, which keeps every oracle (route legality,
     * flit conservation, zero-load latency) valid per fork.
     *
     * All-or-nothing: returns false without injecting anything unless
     * the source NI has queue space for all `dsts.size()` forks in
     * `proto.protoClass` (atomicity keeps collective membership counts
     * exact for the merge sinks).
     *
     * @param dsts   destination nodes, one fork each (deduplicated by
     *               the caller; must be non-empty)
     * @param proto  prototype carrying src/protoClass/size/collectiveId
     * @param forked when non-null, receives a borrowed pointer to each
     *               fork *after* injection (headers routed), in `dsts`
     *               order — for shadow-model registration
     * @return true if all forks were injected
     */
    bool injectMulticast(const std::vector<NodeId> &dsts,
                         const Packet &proto, Cycle now,
                         std::vector<const Packet *> *forked = nullptr);
};

} // namespace tenoc

#endif // TENOC_NOC_NETWORK_HH
