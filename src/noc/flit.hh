/**
 * @file
 * Packets and flits.
 *
 * A Packet is the unit injected by a network interface; it is broken
 * into one or more 16-byte (or 8-byte, for channel-sliced networks)
 * Flits for transmission.  The traffic mix follows Sec. III-D of the
 * paper: small read-request / write-ack packets and large write-request
 * / read-reply packets carrying a 64-byte cache line.
 */

#ifndef TENOC_NOC_FLIT_HH
#define TENOC_NOC_FLIT_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "common/pool.hh"
#include "common/types.hh"

namespace tenoc
{

/** Routing mode chosen for a packet at injection time. */
enum class RouteMode : std::uint8_t
{
    XY,       ///< dimension-order, X first
    YX,       ///< dimension-order, Y first (CR "header bit" set)
    TWO_PHASE,///< CR: YX to an intermediate full router, then XY
    TORUS_XY, ///< torus dimension-order, X first (dateline classes)
    TORUS_YX  ///< torus dimension-order, Y first (dateline classes)
};

/**
 * One network packet.  Owned via PacketPtr (an intrusive, non-atomic
 * refcount over a thread_local freelist pool); flits reference it.
 * The refcount must therefore only ever be touched by one thread at a
 * time.  Each parallel sweep point (bench/sweep.hh) runs its whole
 * simulation on one worker thread; within one simulation the phase-
 * parallel cycle engine (common/parallel.hh) keeps every packet
 * inside a single shard per phase — shards own disjoint component
 * ranges and phase barriers order cross-phase hand-offs — and defers
 * sink deliveries so the final release happens on the thread whose
 * pool owns the packet.
 */
struct Packet
{
    std::uint64_t id = 0;          ///< unique id (assigned by network)
    NodeId src = INVALID_NODE;     ///< source node
    NodeId dst = INVALID_NODE;     ///< destination node
    MemOp op = MemOp::READ_REQUEST;///< semantic payload type
    unsigned sizeFlits = 1;        ///< length in flits
    unsigned sizeBytes = 8;        ///< semantic size in bytes
    int protoClass = 0;            ///< 0 = request, 1 = reply
    Addr addr = 0;                 ///< memory address (closed loop)
    std::uint64_t tag = 0;         ///< opaque payload handle

    // --- routing state (set by RoutingAlgorithm::initPacket) ---
    RouteMode mode = RouteMode::XY;
    NodeId intermediate = INVALID_NODE; ///< TWO_PHASE waypoint
    bool phase2 = false;           ///< TWO_PHASE: reached waypoint
    /** TORUS_*: the packet has crossed the dateline (wrap link) of its
     *  current ring; switches it to route class 1 (see TorusRouting). */
    bool dateline = false;
    /** TORUS_*: dimension of the current leg (0 = X ring, 1 = Y ring);
     *  the dateline flag resets when the leg changes dimension. */
    std::uint8_t ringDim = 0;

    /** Collective membership: all unicast copies forked from one
     *  multicast (or contributing to one reduction) share this id;
     *  0 = not part of a collective (see Network::injectMulticast). */
    std::uint64_t collectiveId = 0;

    // --- timing (interconnect cycles) ---
    /** Creation time; stamped by the source (or, if unset, by the NI
     *  at enqueue) so latency includes source-side queueing. */
    Cycle createdCycle = INVALID_CYCLE;
    Cycle injectedCycle = INVALID_CYCLE; ///< head flit entered router
    Cycle headEjectedCycle = INVALID_CYCLE; ///< head flit left network
    Cycle ejectedCycle = INVALID_CYCLE;  ///< tail flit left network

    /** Current routing class: 0 for an XY leg, 1 for a YX leg. */
    int routeClass() const;

    /** Intrusive reference count (managed by PacketPtr; not atomic —
     *  see the struct comment on thread confinement). */
    std::uint32_t refCount = 0;
};

/** The thread-local packet pool backing makePacket(). */
FreeListPool<Packet> &packetPool();

/**
 * Intrusive smart pointer for pooled packets.  Copying bumps a plain
 * (non-atomic) counter; the last owner returns the packet to the
 * thread-local pool.  API mirrors the shared_ptr subset the simulator
 * uses (get/reset/bool/deref/compare).
 */
class PacketPtr
{
  public:
    PacketPtr() = default;
    PacketPtr(std::nullptr_t) {}

    /** Adopts a pooled packet; the pointer holds one new reference. */
    explicit PacketPtr(Packet *p) : p_(p)
    {
        if (p_)
            ++p_->refCount;
    }

    PacketPtr(const PacketPtr &o) : p_(o.p_)
    {
        if (p_)
            ++p_->refCount;
    }

    PacketPtr(PacketPtr &&o) noexcept : p_(o.p_) { o.p_ = nullptr; }

    PacketPtr &
    operator=(const PacketPtr &o)
    {
        if (this != &o) {
            drop();
            p_ = o.p_;
            if (p_)
                ++p_->refCount;
        }
        return *this;
    }

    PacketPtr &
    operator=(PacketPtr &&o) noexcept
    {
        if (this != &o) {
            drop();
            p_ = o.p_;
            o.p_ = nullptr;
        }
        return *this;
    }

    ~PacketPtr() { drop(); }

    Packet *get() const { return p_; }
    Packet &operator*() const { return *p_; }
    Packet *operator->() const { return p_; }
    explicit operator bool() const { return p_ != nullptr; }

    void
    reset()
    {
        drop();
        p_ = nullptr;
    }

    /** Number of PacketPtrs sharing the packet (0 for null). */
    std::uint32_t use_count() const { return p_ ? p_->refCount : 0; }

    friend bool
    operator==(const PacketPtr &a, const PacketPtr &b)
    {
        return a.p_ == b.p_;
    }
    friend bool
    operator!=(const PacketPtr &a, const PacketPtr &b)
    {
        return a.p_ != b.p_;
    }
    friend bool
    operator==(const PacketPtr &a, std::nullptr_t)
    {
        return a.p_ == nullptr;
    }
    friend bool
    operator!=(const PacketPtr &a, std::nullptr_t)
    {
        return a.p_ != nullptr;
    }

  private:
    void
    drop()
    {
        if (p_ && --p_->refCount == 0)
            packetPool().release(p_);
    }

    Packet *p_ = nullptr;
};

/** Allocates a default-initialized packet from the thread-local pool. */
PacketPtr makePacket();

/** Returns the semantic byte size for a MemOp (8 B header convention). */
unsigned memOpBytes(MemOp op);

/** Number of flits for `bytes` payload with `flit_bytes` channels. */
unsigned flitsForBytes(unsigned bytes, unsigned flit_bytes);

/**
 * One flit.  Flits move between routers over Channels; the VC field is
 * rewritten by each hop's switch allocation.
 */
struct Flit
{
    PacketPtr pkt;          ///< owning packet
    unsigned seq = 0;       ///< flit index within packet
    bool head = false;      ///< first flit (carries routing info)
    bool tail = false;      ///< last flit (releases VCs)
    unsigned vc = 0;        ///< virtual channel on the current link
    Cycle enqueueCycle = 0; ///< arrival time at the current buffer
};

/** Builds the flit sequence for a packet. */
void makeFlits(const PacketPtr &pkt, std::vector<Flit> &out);

class SnapshotWriter;
class SnapshotReader;

/**
 * Serializes a PacketPtr by identity: the first reference writes the
 * packet's contents inline, later references just its registry id, so
 * all flits of one packet resolve to one shared object on restore.
 */
void savePacket(SnapshotWriter &w, const PacketPtr &pkt);

/** Reads a packet reference written by savePacket(). */
PacketPtr loadPacket(SnapshotReader &r);

/** Serializes one flit (packet by reference, fields inline). */
void saveFlit(SnapshotWriter &w, const Flit &flit);

/** Reads a flit written by saveFlit(). */
Flit loadFlit(SnapshotReader &r);

} // namespace tenoc

#endif // TENOC_NOC_FLIT_HH
