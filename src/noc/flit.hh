/**
 * @file
 * Packets and flits.
 *
 * A Packet is the unit injected by a network interface; it is broken
 * into one or more 16-byte (or 8-byte, for channel-sliced networks)
 * Flits for transmission.  The traffic mix follows Sec. III-D of the
 * paper: small read-request / write-ack packets and large write-request
 * / read-reply packets carrying a 64-byte cache line.
 */

#ifndef TENOC_NOC_FLIT_HH
#define TENOC_NOC_FLIT_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.hh"

namespace tenoc
{

/** Routing mode chosen for a packet at injection time. */
enum class RouteMode : std::uint8_t
{
    XY,       ///< dimension-order, X first
    YX,       ///< dimension-order, Y first (CR "header bit" set)
    TWO_PHASE ///< CR: YX to an intermediate full router, then XY
};

/**
 * One network packet.  Owned via shared_ptr; flits reference it.
 */
struct Packet
{
    std::uint64_t id = 0;          ///< unique id (assigned by network)
    NodeId src = INVALID_NODE;     ///< source node
    NodeId dst = INVALID_NODE;     ///< destination node
    MemOp op = MemOp::READ_REQUEST;///< semantic payload type
    unsigned sizeFlits = 1;        ///< length in flits
    unsigned sizeBytes = 8;        ///< semantic size in bytes
    int protoClass = 0;            ///< 0 = request, 1 = reply
    Addr addr = 0;                 ///< memory address (closed loop)
    std::uint64_t tag = 0;         ///< opaque payload handle

    // --- routing state (set by RoutingAlgorithm::initPacket) ---
    RouteMode mode = RouteMode::XY;
    NodeId intermediate = INVALID_NODE; ///< TWO_PHASE waypoint
    bool phase2 = false;           ///< TWO_PHASE: reached waypoint

    // --- timing (interconnect cycles) ---
    /** Creation time; stamped by the source (or, if unset, by the NI
     *  at enqueue) so latency includes source-side queueing. */
    Cycle createdCycle = INVALID_CYCLE;
    Cycle injectedCycle = INVALID_CYCLE; ///< head flit entered router
    Cycle headEjectedCycle = INVALID_CYCLE; ///< head flit left network
    Cycle ejectedCycle = INVALID_CYCLE;  ///< tail flit left network

    /** Current routing class: 0 for an XY leg, 1 for a YX leg. */
    int routeClass() const;
};

using PacketPtr = std::shared_ptr<Packet>;

/** Returns the semantic byte size for a MemOp (8 B header convention). */
unsigned memOpBytes(MemOp op);

/** Number of flits for `bytes` payload with `flit_bytes` channels. */
unsigned flitsForBytes(unsigned bytes, unsigned flit_bytes);

/**
 * One flit.  Flits move between routers over Channels; the VC field is
 * rewritten by each hop's switch allocation.
 */
struct Flit
{
    PacketPtr pkt;          ///< owning packet
    unsigned seq = 0;       ///< flit index within packet
    bool head = false;      ///< first flit (carries routing info)
    bool tail = false;      ///< last flit (releases VCs)
    unsigned vc = 0;        ///< virtual channel on the current link
    Cycle enqueueCycle = 0; ///< arrival time at the current buffer
};

/** Builds the flit sequence for a packet. */
void makeFlits(const PacketPtr &pkt, std::vector<Flit> &out);

} // namespace tenoc

#endif // TENOC_NOC_FLIT_HH
