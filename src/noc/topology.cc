/**
 * @file
 * Topology implementation.
 */

#include "noc/topology.hh"

#include <algorithm>
#include <cctype>
#include <cmath>

#include "common/log.hh"

namespace tenoc
{

const char *
dirName(unsigned d)
{
    switch (d) {
      case DIR_WEST: return "W";
      case DIR_EAST: return "E";
      case DIR_NORTH: return "N";
      case DIR_SOUTH: return "S";
      case PORT_EJECT: return "EJ";
    }
    // Indices above PORT_EJECT are side-dependent local ports; naming
    // them here would mislabel (input 4 is an injection port, output 4
    // an ejection port).  Same masking pattern as the old opposite().
    tenoc_panic("dirName() of non-direction port index ", d,
                "; use inputPortName()/outputPortName()");
}

std::string
inputPortName(unsigned in)
{
    if (in < NUM_DIRS)
        return dirName(in);
    return "INJ" + std::to_string(in - NUM_DIRS);
}

std::string
outputPortName(unsigned out)
{
    if (out < NUM_DIRS)
        return dirName(out);
    return "EJ" + std::to_string(out - NUM_DIRS);
}

const char *
topoKindName(TopoKind kind)
{
    return kind == TopoKind::TORUS ? "torus" : "mesh";
}

std::vector<std::pair<unsigned, unsigned>>
defaultCheckerboardMcs6x6()
{
    // Two diagonals ("X" shape), all cells odd parity.
    return {{1, 0}, {2, 1}, {4, 3}, {5, 4}, {4, 1}, {3, 2}, {1, 4},
            {0, 5}};
}

Topology::Topology(const TopologyParams &params) : params_(params)
{
    if (params_.rows < 2 || params_.cols < 2) {
        tenoc_fatal("invalid topology: a mesh needs at least 2x2 nodes"
                    " (got ", params_.rows, "x", params_.cols,
                    "); set rows/cols >= 2");
    }
    const unsigned n = numNodes();
    if (params_.numMcs >= n) {
        tenoc_fatal("invalid topology: numMcs=", params_.numMcs,
                    " must leave at least one compute node on a ",
                    params_.rows, "x", params_.cols, " mesh (", n,
                    " nodes total)");
    }
    if (params_.concentration < 1) {
        tenoc_fatal("invalid topology: concentration must be >= 1"
                    " (1 = one terminal per router)");
    }
    if (params_.kind == TopoKind::TORUS && params_.checkerboardRouters) {
        tenoc_fatal("invalid topology: checkerboard half-routers are a"
                    " mesh organization (Sec. IV-A); the torus uses"
                    " full routers with dateline VC classes instead");
    }
    is_mc_.assign(n, false);
    is_half_.assign(n, false);

    if (params_.checkerboardRouters) {
        for (unsigned y = 0; y < params_.rows; ++y)
            for (unsigned x = 0; x < params_.cols; ++x)
                if (parity(x, y) == 1)
                    is_half_[nodeAt(x, y)] = true;
    }

    placeMcs();

    for (NodeId i = 0; i < n; ++i) {
        if (is_mc_[i])
            mc_nodes_.push_back(i);
        else
            compute_nodes_.push_back(i);
    }
    validate();
}

NodeId
Topology::nodeAt(unsigned x, unsigned y) const
{
    tenoc_assert(x < params_.cols && y < params_.rows,
                 "coordinates out of range: (", x, ",", y, ")");
    return y * params_.cols + x;
}

void
Topology::placeMcs()
{
    auto mark = [&](unsigned x, unsigned y) {
        if (x >= params_.cols || y >= params_.rows) {
            tenoc_fatal("invalid topology: MC placement (", x, ",", y,
                        ") is off the ", params_.cols, "x",
                        params_.rows,
                        " mesh; coordinates must satisfy x < cols and"
                        " y < rows");
        }
        NodeId id = nodeAt(x, y);
        if (is_mc_[id]) {
            tenoc_fatal("invalid topology: duplicate MC placement at (",
                        x, ",", y, "); every MC needs a distinct node");
        }
        is_mc_[id] = true;
    };

    switch (params_.placement) {
      case McPlacement::TOP_BOTTOM: {
        // Half the MCs on the top row, half on the bottom, packed into
        // the central columns (Fig. 3).
        const unsigned per_row = params_.numMcs / 2;
        const unsigned rem = params_.numMcs % 2;
        if (per_row + rem > params_.cols) {
            tenoc_fatal("invalid topology: top/bottom placement fits at"
                        " most ", 2 * params_.cols, " MCs on a ",
                        params_.cols, "-column mesh (requested ",
                        params_.numMcs, ")");
        }
        const unsigned start_top = (params_.cols - (per_row + rem)) / 2;
        for (unsigned i = 0; i < per_row + rem; ++i)
            mark(start_top + i, 0);
        const unsigned start_bot = (params_.cols - per_row) / 2;
        for (unsigned i = 0; i < per_row; ++i)
            mark(start_bot + i, params_.rows - 1);
        break;
      }
      case McPlacement::CHECKERBOARD: {
        std::vector<std::pair<unsigned, unsigned>> coords;
        if (params_.rows == 6 && params_.cols == 6 &&
            params_.numMcs == 8) {
            coords = defaultCheckerboardMcs6x6();
        } else {
            // Generic staggered placement: walk odd-parity cells in a
            // diagonal-major order and take every k-th.
            std::vector<std::pair<unsigned, unsigned>> odd_cells;
            for (unsigned y = 0; y < params_.rows; ++y)
                for (unsigned x = 0; x < params_.cols; ++x)
                    if (parity(x, y) == 1)
                        odd_cells.emplace_back(x, y);
            if (params_.numMcs > odd_cells.size()) {
                tenoc_fatal("invalid topology: checkerboard placement"
                            " has only ", odd_cells.size(),
                            " half-router cells for ", params_.numMcs,
                            " MCs; reduce numMcs or grow the mesh");
            }
            const double stride =
                static_cast<double>(odd_cells.size()) / params_.numMcs;
            for (unsigned i = 0; i < params_.numMcs; ++i)
                coords.push_back(
                    odd_cells[static_cast<std::size_t>(i * stride)]);
        }
        for (auto [x, y] : coords)
            mark(x, y);
        break;
      }
      case McPlacement::CUSTOM: {
        if (params_.customMcs.size() != params_.numMcs) {
            tenoc_fatal("invalid topology: custom placement lists ",
                        params_.customMcs.size(),
                        " MC coordinates but numMcs=", params_.numMcs,
                        "; the two must match");
        }
        for (auto [x, y] : params_.customMcs)
            mark(x, y);
        break;
      }
    }
}

void
Topology::validate() const
{
    tenoc_assert(mc_nodes_.size() == params_.numMcs,
                 "MC placement produced wrong count");
    if (params_.checkerboardRouters) {
        // Sec. IV-A: MC (and L2 bank) nodes must sit at half-routers so
        // that no full-to-full route is ever required.
        for (NodeId mc : mc_nodes_) {
            if (!is_half_[mc]) {
                tenoc_fatal("MC node ", mc, " at (", xOf(mc), ",",
                            yOf(mc),
                            ") is not on a half-router cell; "
                            "checkerboard routing would be infeasible");
            }
        }
    }
}

// neighbor() wraps coordinates modulo the dimension on a torus (the
// wrapNoCCoord idiom): stepping west from x=0 lands at x=cols-1, etc.
NodeId
Topology::neighbor(NodeId n, Direction d) const
{
    const unsigned x = xOf(n);
    const unsigned y = yOf(n);
    const bool wrap = isTorus();
    switch (d) {
      case DIR_WEST:
        if (x == 0)
            return wrap ? nodeAt(params_.cols - 1, y) : INVALID_NODE;
        return nodeAt(x - 1, y);
      case DIR_EAST:
        if (x == params_.cols - 1)
            return wrap ? nodeAt(0, y) : INVALID_NODE;
        return nodeAt(x + 1, y);
      case DIR_NORTH:
        if (y == 0)
            return wrap ? nodeAt(x, params_.rows - 1) : INVALID_NODE;
        return nodeAt(x, y - 1);
      case DIR_SOUTH:
        if (y == params_.rows - 1)
            return wrap ? nodeAt(x, 0) : INVALID_NODE;
        return nodeAt(x, y + 1);
      default:
        return INVALID_NODE;
    }
}

std::string
renderTopology(const Topology &topo)
{
    std::string out;
    for (unsigned y = 0; y < topo.rows(); ++y) {
        for (unsigned x = 0; x < topo.cols(); ++x) {
            const NodeId n = topo.nodeAt(x, y);
            char c = topo.isMc(n) ? 'M' : 'C';
            if (topo.isHalfRouter(n))
                c = static_cast<char>(std::tolower(c));
            out += c;
            if (x + 1 < topo.cols())
                out += "--";
        }
        out += '\n';
        if (y + 1 < topo.rows()) {
            for (unsigned x = 0; x < topo.cols(); ++x) {
                out += '|';
                if (x + 1 < topo.cols())
                    out += "  ";
            }
            out += '\n';
        }
    }
    return out;
}

unsigned
Topology::hopDistance(NodeId a, NodeId b) const
{
    const unsigned dx = static_cast<unsigned>(std::abs(
        static_cast<int>(xOf(a)) - static_cast<int>(xOf(b))));
    const unsigned dy = static_cast<unsigned>(std::abs(
        static_cast<int>(yOf(a)) - static_cast<int>(yOf(b))));
    if (!isTorus())
        return dx + dy;
    // Per-dimension shortest way around the ring.
    return std::min(dx, params_.cols - dx) +
           std::min(dy, params_.rows - dy);
}

} // namespace tenoc
