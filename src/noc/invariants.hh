/**
 * @file
 * Runtime invariant checking for the mesh NoC.
 *
 * The InvariantChecker walks one MeshNetwork's routers, channels and
 * network interfaces and verifies the structural invariants that
 * credit-based wormhole routing guarantees when the implementation is
 * correct:
 *
 *  - credit conservation: for every (link, VC), upstream credits +
 *    flits in flight + credits in flight + downstream occupancy equals
 *    the VC depth — a leaked or duplicated credit shows up here;
 *  - flit conservation: flits that entered a router minus flits that
 *    left an ejection buffer equals the flits currently buffered in
 *    routers, channels and ejection buffers;
 *  - packet conservation: the O(1) in-flight counter behind
 *    Network::drained() equals the packets actually held by NIs plus
 *    tail flits in transit;
 *  - VC state-machine legality and output-VC ownership consistency;
 *  - buffer occupancy bounds and half-router connectivity compliance;
 *  - idle-skip activity: any component that could make progress is
 *    marked in its active set (a violation here means idle-skip would
 *    silently strand traffic).
 *
 * The checker is wired by MeshNetwork when MeshNetworkParams::validate
 * is set (tests enable it; TENOC_VALIDATE=1 forces it everywhere) and
 * runs every `validateInterval` cycles.  It only reads simulator
 * state, so enabling it never changes simulated behaviour — the
 * regression suite asserts zero stat deltas with it on.
 *
 * This header also defines the deadlock-watchdog report types used by
 * MeshNetwork (see MeshNetworkParams::watchdogWindow).
 */

#ifndef TENOC_NOC_INVARIANTS_HH
#define TENOC_NOC_INVARIANTS_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "noc/channel.hh"
#include "noc/flit.hh"

namespace tenoc
{

class ActiveSet;
class NetworkInterface;
class Router;

/** One detected invariant violation. */
struct Violation
{
    enum class Kind : std::uint8_t
    {
        CREDIT_CONSERVATION, ///< credits + in-flight + occupancy != depth
        FLIT_CONSERVATION,   ///< injected - drained != buffered
        PACKET_CONSERVATION, ///< in-flight counter != held packets
        VC_STATE,            ///< illegal input-VC pipeline state
        VC_OWNERSHIP,        ///< output-VC owner bookkeeping mismatch
        OCCUPANCY,           ///< buffer over capacity / counter drift
        CONNECTIVITY,        ///< half-router mask / port-range breach
        ACTIVITY             ///< workable component not in active set
    };

    Kind kind;
    std::string message; ///< precise location and observed values
};

/** @return short name of a violation kind ("credit_conservation", ...). */
const char *violationKindName(Violation::Kind kind);

/** @return true when TENOC_VALIDATE is set to a non-zero value in the
 *  environment (forces MeshNetworkParams::validate on). */
bool validateForcedByEnv();

/**
 * Read-only auditor over one MeshNetwork's components.  The owning
 * network registers everything at construction time and calls
 * check(now) on a cycle stride.
 */
class InvariantChecker
{
  public:
    /** @param vc_depth flit slots per VC (credit conservation bound) */
    explicit InvariantChecker(unsigned vc_depth) : vc_depth_(vc_depth) {}

    void addRouter(const Router *router);
    void addNi(const NetworkInterface *ni);
    /**
     * Registers one inter-router link: `up`'s output `out_dir`, its
     * flit and returning credit channel, and the downstream router's
     * receiving input port `down_in`.
     */
    void addLink(const Router *up, unsigned out_dir,
                 const Channel<Flit> *flit_chan,
                 const Channel<Credit> *credit_chan, const Router *down,
                 unsigned down_in);
    /** Points the checker at the network-level conservation counters:
     *  packets in flight, flits injected into routers, flits drained
     *  from ejection buffers. */
    void setCounters(const std::uint64_t *inflight,
                     const std::uint64_t *flits_in,
                     const std::uint64_t *flits_out);
    /** Enables activity checking against the idle-skip sets. */
    void setActivity(const ActiveSet *router_set, const ActiveSet *ni_set);

    /**
     * Runs every check and returns the violations found (empty when
     * the network is consistent).  Reading only; never mutates
     * simulator state.  At most `maxViolations` are collected.
     */
    std::vector<Violation> audit(Cycle now) const;

    /** audit() + panic listing every violation when any is found. */
    void check(Cycle now) const;

    /**
     * Earliest createdCycle among all packets currently held anywhere
     * in the network (NIs, router buffers, channels), or INVALID_CYCLE
     * when empty.  Used by the watchdog's over-age scan.
     */
    Cycle oldestCreated() const;

    static constexpr std::size_t maxViolations = 64;

  private:
    struct LinkRecord
    {
        const Router *up;
        unsigned outDir;
        const Channel<Flit> *flitChan;
        const Channel<Credit> *creditChan;
        const Router *down;
        unsigned downIn;
    };

    void checkRouter(const Router &r, std::vector<Violation> &out) const;
    void checkLink(const LinkRecord &link,
                   std::vector<Violation> &out) const;
    void checkNis(std::vector<Violation> &out) const;
    void checkConservation(std::vector<Violation> &out) const;
    void checkActivity(Cycle now, std::vector<Violation> &out) const;

    unsigned vc_depth_;
    std::vector<const Router *> routers_;
    std::vector<const NetworkInterface *> nis_;
    std::vector<LinkRecord> links_;
    const std::uint64_t *inflight_ = nullptr;
    const std::uint64_t *flits_in_ = nullptr;
    const std::uint64_t *flits_out_ = nullptr;
    const ActiveSet *router_set_ = nullptr;
    const ActiveSet *ni_set_ = nullptr;
};

/**
 * Diagnostic report handed to the watchdog handler when a network
 * makes no progress for a full window (or a packet exceeds its age
 * bound).  `snapshotJson` is the structured network snapshot
 * (schema "tenoc-watchdog-v1"); the default handler writes it to
 * MeshNetworkParams::watchdogSnapshotPath and exits.
 */
struct WatchdogReport
{
    Cycle now = 0;
    Cycle window = 0;        ///< zero-progress cycles observed
    std::uint64_t inflight = 0;
    Cycle oldestAge = 0;     ///< age of the oldest stuck packet
    std::string reason;      ///< "no_progress" or "packet_age"
    std::string snapshotJson;
};

/** Watchdog callback; tests install one to observe firings instead of
 *  terminating the process. */
using WatchdogHandler = std::function<void(const WatchdogReport &)>;

} // namespace tenoc

#endif // TENOC_NOC_INVARIANTS_HH
