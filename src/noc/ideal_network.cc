/**
 * @file
 * IdealNetwork implementation.
 */

#include "noc/ideal_network.hh"

#include <algorithm>

#include "common/log.hh"

namespace tenoc
{

IdealNetwork::IdealNetwork(const IdealNetworkParams &params)
    : params_(params), topo_(params.topo), stats_(topo_.numNodes())
{
    if (params_.bandwidthLimited) {
        tenoc_assert(params_.flitsPerCycle > 0.0,
                     "bandwidth-limited network needs a positive cap");
    }
    pending_.resize(topo_.numNodes());
    sinks_.assign(topo_.numNodes(), nullptr);
}

bool
IdealNetwork::canInject(NodeId n, int proto_class) const
{
    (void)n;
    (void)proto_class;
    // Sources are never blocked at injection; the BW token bucket
    // gates acceptance instead (Sec. III-A's model).
    return true;
}

unsigned
IdealNetwork::injectSpace(NodeId n, int proto_class) const
{
    (void)n;
    (void)proto_class;
    return 1u << 20; // effectively unbounded
}

void
IdealNetwork::inject(PacketPtr pkt, Cycle now)
{
    pkt->id = next_pkt_id_++;
    if (pkt->createdCycle == INVALID_CYCLE)
        pkt->createdCycle = now;
    ++stats_.packetsInjected;
    stats_.flitsInjected += pkt->sizeFlits;
    stats_.nodeInjectedFlits[pkt->src] += pkt->sizeFlits;
    stats_.nodeInjectedBytes[pkt->src] += pkt->sizeBytes;
    if (params_.bandwidthLimited)
        waiting_.push_back(std::move(pkt));
    else
        pending_[pkt->dst].push_back(std::move(pkt));
}

void
IdealNetwork::setSink(NodeId n, PacketSink *sink)
{
    sinks_[n] = sink;
}

void
IdealNetwork::cycle(Cycle now)
{
    ++stats_.cycles;

    if (params_.bandwidthLimited) {
        tokens_ = std::min(tokens_ + params_.flitsPerCycle,
                           4.0 * params_.flitsPerCycle);
        while (!waiting_.empty() && tokens_ > 0.0) {
            PacketPtr pkt = std::move(waiting_.front());
            waiting_.pop_front();
            tokens_ -= static_cast<double>(pkt->sizeFlits);
            pending_[pkt->dst].push_back(std::move(pkt));
        }
    }

    for (NodeId n = 0; n < topo_.numNodes(); ++n) {
        auto &q = pending_[n];
        while (!q.empty()) {
            Packet &pkt = *q.front();
            if (sinks_[n] && !sinks_[n]->tryReserve(pkt))
                break;
            PacketPtr p = std::move(q.front());
            q.pop_front();
            p->injectedCycle = now;
            p->ejectedCycle = now;
            ++stats_.packetsEjected;
            stats_.flitsEjected += p->sizeFlits;
            stats_.nodeEjectedFlits[n] += p->sizeFlits;
            stats_.nodeEjectedBytes[n] += p->sizeBytes;
            stats_.totalLatency.sample(
                static_cast<double>(now - p->createdCycle));
            stats_.totalLatencyHist.sample(
                static_cast<double>(now - p->createdCycle));
            stats_.netLatency.sample(0.0);
            if (sinks_[n])
                sinks_[n]->deliver(std::move(p), now);
        }
    }
}

bool
IdealNetwork::drained() const
{
    if (!waiting_.empty())
        return false;
    for (const auto &q : pending_)
        if (!q.empty())
            return false;
    return true;
}

} // namespace tenoc
