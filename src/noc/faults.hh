/**
 * @file
 * Seeded fault injection for the mesh NoC.
 *
 * The engine perturbs a running MeshNetwork on deterministic schedules
 * so that the hardening machinery (invariant checker, deadlock
 * watchdog) can be exercised on purpose, and so `bench/fault_sweep`
 * can chart throughput degradation against injected fault rate.
 * Three fault classes, mirroring the failure modes a credit-based
 * wormhole network actually has:
 *
 *  - LINK_STALL:    a flit channel stops delivering for a window; the
 *                   backlog arrives in a burst when the stall clears.
 *  - ROUTER_FREEZE: a router is not ticked for a window; traffic
 *                   through it (and credits it owes) stand still.
 *  - CREDIT_DROP:   one downstream credit is leaked permanently — the
 *                   buffer slot it represents is never usable again.
 *                   Enough drops deadlock the network; the invariant
 *                   checker reports the leak precisely.
 *
 * Faults come from two deterministic sources: an explicit schedule
 * (exact cycle/place, used by tests) and seeded Bernoulli processes
 * per link/router (rates, used by the sweep).  Same seed, same
 * workload -> same fault pattern.
 */

#ifndef TENOC_NOC_FAULTS_HH
#define TENOC_NOC_FAULTS_HH

#include <array>
#include <cstdint>
#include <vector>

#include "common/rng.hh"
#include "noc/channel.hh"
#include "noc/flit.hh"
#include "noc/topology.hh"

namespace tenoc
{

class Router;

/** Fault classes (see file comment). */
enum class FaultKind : std::uint8_t
{
    LINK_STALL,
    ROUTER_FREEZE,
    CREDIT_DROP
};

/** @return short name of a fault kind ("link_stall", ...). */
const char *faultKindName(FaultKind kind);

/** One scheduled fault. */
struct FaultEvent
{
    FaultKind kind = FaultKind::LINK_STALL;
    Cycle at = 0;       ///< activation cycle
    /** Stall/freeze length in cycles; 0 = permanent. */
    Cycle duration = 0;
    NodeId node = 0;    ///< router owning the faulted output / frozen
    unsigned port = 0;  ///< output direction (LINK_STALL, CREDIT_DROP)
    unsigned vc = 0;    ///< virtual channel (CREDIT_DROP)
};

/** Fault process configuration (all-zero = no faults). */
struct FaultConfig
{
    /** Per-link per-cycle stall probability. */
    double linkStallRate = 0.0;
    Cycle linkStallDuration = 32;
    /** Per-router per-cycle freeze probability. */
    double routerFreezeRate = 0.0;
    Cycle routerFreezeDuration = 32;
    /** Per-router per-cycle credit-drop probability. */
    double creditDropRate = 0.0;
    /** Cap on total dropped credits (random process only); keeps a
     *  degradation sweep from decaying into certain deadlock. */
    std::uint64_t maxCreditDrops = UINT64_MAX;
    std::uint64_t seed = 0xfa0175ULL;
    /** Exact scheduled faults (sorted by the engine). */
    std::vector<FaultEvent> schedule;

    bool
    any() const
    {
        return linkStallRate > 0.0 || routerFreezeRate > 0.0 ||
               creditDropRate > 0.0 || !schedule.empty();
    }
};

/** Counts of applied faults (reported by bench/fault_sweep). */
struct FaultStats
{
    std::uint64_t linkStalls = 0;
    std::uint64_t routerFreezes = 0;
    std::uint64_t creditDrops = 0;
};

/**
 * Applies a FaultConfig to one MeshNetwork.  The network registers its
 * routers and outgoing flit channels, then calls tick(now) at the top
 * of every cycle; routerFrozen() gates the scheduler's router ticks.
 */
class FaultEngine
{
  public:
    FaultEngine(const FaultConfig &config, unsigned num_nodes);

    /** Registers the flit channel leaving `node` in direction `dir`. */
    void registerLink(NodeId node, unsigned dir, Channel<Flit> *channel);
    /** Registers a router (freeze / credit-drop target). */
    void registerRouter(NodeId node, Router *router);

    /** Starts due faults, expires elapsed ones; once per icnt cycle. */
    void tick(Cycle now);

    /** @return true while router `n` is frozen (must not be ticked). */
    bool
    routerFrozen(NodeId n) const
    {
        return frozen_[n];
    }

    /**
     * @return true while any router is frozen.  The scheduler hoists
     * this out of the per-router phase loops: when it is false (the
     * overwhelmingly common case) the fault hook costs one pointer
     * test per cycle instead of one vector<bool> read per router tick.
     */
    bool anyFrozen() const { return frozen_count_ != 0; }

    /** @return true while any stall/freeze is active. */
    bool quiet() const { return active_.empty(); }

    const FaultStats &stats() const { return stats_; }

  private:
    struct ActiveFault
    {
        FaultKind kind;
        NodeId node;
        unsigned port;
        Cycle until; ///< INVALID_CYCLE = permanent
    };

    void apply(const FaultEvent &ev, Cycle now);
    void start(FaultKind kind, NodeId node, unsigned port, Cycle now,
               Cycle duration);
    void stop(const ActiveFault &fault);

    FaultConfig config_;
    Rng rng_;
    std::vector<std::array<Channel<Flit> *, NUM_DIRS>> links_;
    std::vector<Router *> routers_;
    std::vector<bool> frozen_;
    unsigned frozen_count_ = 0;
    std::vector<ActiveFault> active_;
    std::size_t next_scheduled_ = 0;
    FaultStats stats_;
};

} // namespace tenoc

#endif // TENOC_NOC_FAULTS_HH
