/**
 * @file
 * Round-robin arbiters used by the separable (iSLIP-style) allocators.
 */

#ifndef TENOC_NOC_ARBITER_HH
#define TENOC_NOC_ARBITER_HH

#include <bit>
#include <cstdint>
#include <vector>

#include "common/log.hh"

namespace tenoc
{

/**
 * Classic rotating-priority arbiter.  grant() scans requestors starting
 * just after the last winner; in iSLIP fashion the pointer only
 * advances when a grant is accepted (callers that implement plain
 * round-robin can pass update=true unconditionally).
 */
class RoundRobinArbiter
{
  public:
    explicit RoundRobinArbiter(unsigned size = 0) : size_(size) {}

    void resize(unsigned size)
    {
        size_ = size;
        if (pointer_ >= size_)
            pointer_ = 0;
    }

    unsigned size() const { return size_; }

    /**
     * @param requests request flags, size() entries
     * @return winning index, or size() if no requests
     */
    unsigned
    grant(const std::vector<bool> &requests) const
    {
        tenoc_assert(requests.size() == size_, "arbiter size mismatch");
        for (unsigned i = 0; i < size_; ++i) {
            const unsigned idx = (pointer_ + i) % size_;
            if (requests[idx])
                return idx;
        }
        return size_;
    }

    /**
     * Bitmask grant: identical result to grant() with requests packed
     * into bit i of `requests`, in O(1) via count-trailing-zeros (the
     * winner is the lowest set bit at or after the pointer, else the
     * lowest set bit overall).  Usable whenever size() <= 64 — every
     * router-local arbiter (inputs * vcs requestors) qualifies.
     *
     * @return winning index, or size() if no requests
     */
    unsigned
    grantMask(std::uint64_t requests) const
    {
        tenoc_assert(size_ <= 64, "mask arbiter needs <= 64 requestors");
        if (requests == 0)
            return size_;
        const std::uint64_t at_or_after =
            requests & (~std::uint64_t{0} << pointer_);
        return static_cast<unsigned>(std::countr_zero(
            at_or_after ? at_or_after : requests));
    }

    /** Advances priority past `winner` (call when grant is accepted). */
    void
    accept(unsigned winner)
    {
        tenoc_assert(winner < size_, "accept of invalid winner");
        pointer_ = (winner + 1) % size_;
    }

    /** Current priority pointer (checkpoint/restore). */
    unsigned pointer() const { return pointer_; }

    /** Overwrites the priority pointer (checkpoint/restore). */
    void
    setPointer(unsigned p)
    {
        tenoc_assert(size_ == 0 || p < size_, "arbiter pointer ", p,
                     " out of range ", size_);
        pointer_ = p;
    }

  private:
    unsigned size_;
    unsigned pointer_ = 0;
};

} // namespace tenoc

#endif // TENOC_NOC_ARBITER_HH
