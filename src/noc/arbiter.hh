/**
 * @file
 * Round-robin arbiters used by the separable (iSLIP-style) allocators.
 */

#ifndef TENOC_NOC_ARBITER_HH
#define TENOC_NOC_ARBITER_HH

#include <bit>
#include <cstdint>
#include <vector>

#include "common/log.hh"

namespace tenoc
{

/**
 * Classic rotating-priority arbiter.  grant() scans requestors starting
 * just after the last winner; in iSLIP fashion the pointer only
 * advances when a grant is accepted (callers that implement plain
 * round-robin can pass update=true unconditionally).
 */
class RoundRobinArbiter
{
  public:
    explicit RoundRobinArbiter(unsigned size = 0) : size_(size) {}

    void resize(unsigned size)
    {
        size_ = size;
        if (pointer_ >= size_)
            pointer_ = 0;
    }

    unsigned size() const { return size_; }

    /**
     * @param requests request flags, size() entries
     * @return winning index, or size() if no requests
     */
    unsigned
    grant(const std::vector<bool> &requests) const
    {
        tenoc_assert(requests.size() == size_, "arbiter size mismatch");
        for (unsigned i = 0; i < size_; ++i) {
            const unsigned idx = (pointer_ + i) % size_;
            if (requests[idx])
                return idx;
        }
        return size_;
    }

    /**
     * Bitmask grant: identical result to grant() with requests packed
     * into bit i of `requests`, in O(1) via count-trailing-zeros (the
     * winner is the lowest set bit at or after the pointer, else the
     * lowest set bit overall).  Usable whenever size() <= 64 — every
     * router-local arbiter (inputs * vcs requestors) qualifies.
     *
     * @return winning index, or size() if no requests
     */
    unsigned
    grantMask(std::uint64_t requests) const
    {
        tenoc_assert(size_ <= 64, "mask arbiter needs <= 64 requestors");
        if (requests == 0)
            return size_;
        const std::uint64_t at_or_after =
            requests & (~std::uint64_t{0} << pointer_);
        return static_cast<unsigned>(std::countr_zero(
            at_or_after ? at_or_after : requests));
    }

    /**
     * Multi-word bitmask grant: identical result to grant() with
     * requests packed into bit (i % 64) of words[i / 64].  The scan is
     * O(words) via count-trailing-zeros: lowest set bit at or after
     * the pointer, else lowest set bit overall.  This is the wide
     * companion of grantMask() for requestor counts above 64
     * (concentrated / high-radix routers); callers must zero any bits
     * at or above size().
     *
     * @param words  request bits, `nwords` words covering size() bits
     * @param nwords word count; nwords * 64 must cover size()
     * @return winning index, or size() if no requests
     */
    unsigned
    grantWords(const std::uint64_t *words, unsigned nwords) const
    {
        tenoc_assert(static_cast<std::uint64_t>(nwords) * 64 >= size_,
                     "grantWords needs ", (size_ + 63) / 64,
                     " words for ", size_, " requestors, got ", nwords);
        if (size_ == 0)
            return 0;
        const unsigned pw = pointer_ >> 6;
        const unsigned pb = pointer_ & 63;
        // At or after the pointer first (rotating priority)...
        std::uint64_t w = words[pw] & (~std::uint64_t{0} << pb);
        if (w != 0)
            return pw * 64 + static_cast<unsigned>(std::countr_zero(w));
        for (unsigned i = pw + 1; i < nwords; ++i) {
            if (words[i] != 0) {
                return i * 64 +
                       static_cast<unsigned>(std::countr_zero(words[i]));
            }
        }
        // ...then wrap around to the lowest set bit before it.
        for (unsigned i = 0; i < pw; ++i) {
            if (words[i] != 0) {
                return i * 64 +
                       static_cast<unsigned>(std::countr_zero(words[i]));
            }
        }
        w = pb == 0 ? 0
                    : words[pw] & ~(~std::uint64_t{0} << pb);
        if (w != 0)
            return pw * 64 + static_cast<unsigned>(std::countr_zero(w));
        return size_;
    }

    /** Advances priority past `winner` (call when grant is accepted). */
    void
    accept(unsigned winner)
    {
        tenoc_assert(winner < size_, "accept of invalid winner");
        pointer_ = (winner + 1) % size_;
    }

    /** Current priority pointer (checkpoint/restore). */
    unsigned pointer() const { return pointer_; }

    /** Overwrites the priority pointer (checkpoint/restore). */
    void
    setPointer(unsigned p)
    {
        tenoc_assert(size_ == 0 || p < size_, "arbiter pointer ", p,
                     " out of range ", size_);
        pointer_ = p;
    }

  private:
    unsigned size_;
    unsigned pointer_ = 0;
};

} // namespace tenoc

#endif // TENOC_NOC_ARBITER_HH
