/**
 * @file
 * Packet/flit helpers.
 */

#include "noc/flit.hh"

#include <vector>

#include "common/log.hh"

namespace tenoc
{

FreeListPool<Packet> &
packetPool()
{
    thread_local FreeListPool<Packet> pool;
    return pool;
}

PacketPtr
makePacket()
{
    Packet *p = packetPool().allocate();
    *p = Packet{}; // recycled objects carry their previous state
    return PacketPtr(p);
}

int
Packet::routeClass() const
{
    switch (mode) {
      case RouteMode::XY:
        return 0;
      case RouteMode::YX:
        return 1;
      case RouteMode::TWO_PHASE:
        // Phase 1 is a YX leg to the intermediate router; phase 2 an
        // XY leg to the destination (Sec. IV-B).
        return phase2 ? 0 : 1;
    }
    return 0;
}

unsigned
memOpBytes(MemOp op)
{
    // Sec. III-D: read requests are small 8-byte packets; write
    // requests and read replies are large 64-byte packets (control
    // header piggybacked on the line transfer, matching the 4-flit
    // replies of the paper's open-loop runs at 16-byte flits).
    switch (op) {
      case MemOp::READ_REQUEST: return 8;
      case MemOp::WRITE_REQUEST: return 64;
      case MemOp::READ_REPLY: return 64;
      case MemOp::WRITE_ACK: return 8;
    }
    return 8;
}

unsigned
flitsForBytes(unsigned bytes, unsigned flit_bytes)
{
    tenoc_assert(flit_bytes > 0, "flit size must be positive");
    return (bytes + flit_bytes - 1) / flit_bytes;
}

void
makeFlits(const PacketPtr &pkt, std::vector<Flit> &out)
{
    tenoc_assert(pkt && pkt->sizeFlits >= 1, "invalid packet");
    out.clear();
    out.reserve(pkt->sizeFlits);
    for (unsigned i = 0; i < pkt->sizeFlits; ++i) {
        Flit f;
        f.pkt = pkt;
        f.seq = i;
        f.head = (i == 0);
        f.tail = (i == pkt->sizeFlits - 1);
        out.push_back(std::move(f));
    }
}

} // namespace tenoc
