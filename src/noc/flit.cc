/**
 * @file
 * Packet/flit helpers.
 */

#include "noc/flit.hh"

#include <vector>

#include "common/log.hh"
#include "common/snapshot.hh"

namespace tenoc
{

FreeListPool<Packet> &
packetPool()
{
    thread_local FreeListPool<Packet> pool;
    return pool;
}

PacketPtr
makePacket()
{
    Packet *p = packetPool().allocate();
    *p = Packet{}; // recycled objects carry their previous state
    return PacketPtr(p);
}

int
Packet::routeClass() const
{
    switch (mode) {
      case RouteMode::XY:
        return 0;
      case RouteMode::YX:
        return 1;
      case RouteMode::TWO_PHASE:
        // Phase 1 is a YX leg to the intermediate router; phase 2 an
        // XY leg to the destination (Sec. IV-B).
        return phase2 ? 0 : 1;
      case RouteMode::TORUS_XY:
      case RouteMode::TORUS_YX:
        // Dateline discipline: class 0 until the packet's current ring
        // leg crosses its wrap link, class 1 after — wrap links never
        // carry class 0, which breaks the ring's channel cycle.
        return dateline ? 1 : 0;
    }
    return 0;
}

unsigned
memOpBytes(MemOp op)
{
    // Sec. III-D: read requests are small 8-byte packets; write
    // requests and read replies are large 64-byte packets (control
    // header piggybacked on the line transfer, matching the 4-flit
    // replies of the paper's open-loop runs at 16-byte flits).
    switch (op) {
      case MemOp::READ_REQUEST: return 8;
      case MemOp::WRITE_REQUEST: return 64;
      case MemOp::READ_REPLY: return 64;
      case MemOp::WRITE_ACK: return 8;
    }
    return 8;
}

unsigned
flitsForBytes(unsigned bytes, unsigned flit_bytes)
{
    tenoc_assert(flit_bytes > 0, "flit size must be positive");
    return (bytes + flit_bytes - 1) / flit_bytes;
}

void
makeFlits(const PacketPtr &pkt, std::vector<Flit> &out)
{
    tenoc_assert(pkt && pkt->sizeFlits >= 1, "invalid packet");
    out.clear();
    out.reserve(pkt->sizeFlits);
    for (unsigned i = 0; i < pkt->sizeFlits; ++i) {
        Flit f;
        f.pkt = pkt;
        f.seq = i;
        f.head = (i == 0);
        f.tail = (i == pkt->sizeFlits - 1);
        out.push_back(std::move(f));
    }
}

void
savePacket(SnapshotWriter &w, const PacketPtr &pkt)
{
    if (!pkt) {
        w.u8(0);
        return;
    }
    bool first = false;
    const std::uint64_t id = w.refId(pkt.get(), &first);
    w.u8(first ? 1 : 2);
    w.u64(id);
    if (!first)
        return;
    const Packet &p = *pkt;
    w.u64(p.id);
    w.u32(p.src);
    w.u32(p.dst);
    w.u8(static_cast<std::uint8_t>(p.op));
    w.u32(p.sizeFlits);
    w.u32(p.sizeBytes);
    w.i64(p.protoClass);
    w.u64(p.addr);
    w.u64(p.tag);
    w.u8(static_cast<std::uint8_t>(p.mode));
    w.u32(p.intermediate);
    w.boolean(p.phase2);
    w.boolean(p.dateline);
    w.u8(p.ringDim);
    w.u64(p.collectiveId);
    w.u64(p.createdCycle);
    w.u64(p.injectedCycle);
    w.u64(p.headEjectedCycle);
    w.u64(p.ejectedCycle);
}

PacketPtr
loadPacket(SnapshotReader &r)
{
    const std::uint8_t kind = r.u8();
    if (kind == 0)
        return nullptr;
    const std::uint64_t id = r.u64();
    if (kind == 2)
        return PacketPtr(static_cast<Packet *>(r.ref(id)));
    tenoc_assert(kind == 1, "corrupt packet reference kind ", kind);
    PacketPtr pkt = makePacket();
    Packet &p = *pkt;
    p.id = r.u64();
    p.src = r.u32();
    p.dst = r.u32();
    p.op = static_cast<MemOp>(r.u8());
    p.sizeFlits = r.u32();
    p.sizeBytes = r.u32();
    p.protoClass = static_cast<int>(r.i64());
    p.addr = r.u64();
    p.tag = r.u64();
    p.mode = static_cast<RouteMode>(r.u8());
    p.intermediate = r.u32();
    p.phase2 = r.boolean();
    p.dateline = r.boolean();
    p.ringDim = r.u8();
    p.collectiveId = r.u64();
    p.createdCycle = r.u64();
    p.injectedCycle = r.u64();
    p.headEjectedCycle = r.u64();
    p.ejectedCycle = r.u64();
    r.setRef(id, pkt.get());
    return pkt;
}

void
saveFlit(SnapshotWriter &w, const Flit &flit)
{
    savePacket(w, flit.pkt);
    w.u32(flit.seq);
    w.boolean(flit.head);
    w.boolean(flit.tail);
    w.u32(flit.vc);
    w.u64(flit.enqueueCycle);
}

Flit
loadFlit(SnapshotReader &r)
{
    Flit f;
    f.pkt = loadPacket(r);
    f.seq = r.u32();
    f.head = r.boolean();
    f.tail = r.boolean();
    f.vc = r.u32();
    f.enqueueCycle = r.u64();
    return f;
}

} // namespace tenoc
