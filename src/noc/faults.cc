/**
 * @file
 * FaultEngine implementation.
 */

#include "noc/faults.hh"

#include <algorithm>

#include "common/log.hh"
#include "noc/router.hh"

namespace tenoc
{

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::LINK_STALL:
        return "link_stall";
      case FaultKind::ROUTER_FREEZE:
        return "router_freeze";
      case FaultKind::CREDIT_DROP:
        return "credit_drop";
    }
    return "unknown";
}

FaultEngine::FaultEngine(const FaultConfig &config, unsigned num_nodes)
    : config_(config), rng_(config.seed), links_(num_nodes),
      routers_(num_nodes, nullptr), frozen_(num_nodes, false)
{
    for (auto &dirs : links_)
        dirs.fill(nullptr);
    std::stable_sort(config_.schedule.begin(), config_.schedule.end(),
                     [](const FaultEvent &a, const FaultEvent &b) {
                         return a.at < b.at;
                     });
}

void
FaultEngine::registerLink(NodeId node, unsigned dir, Channel<Flit> *channel)
{
    tenoc_assert(node < links_.size() && dir < NUM_DIRS,
                 "fault engine: bad link registration");
    links_[node][dir] = channel;
}

void
FaultEngine::registerRouter(NodeId node, Router *router)
{
    tenoc_assert(node < routers_.size(),
                 "fault engine: bad router registration");
    routers_[node] = router;
}

void
FaultEngine::tick(Cycle now)
{
    // Expire elapsed stalls / freezes.
    for (std::size_t i = 0; i < active_.size();) {
        if (active_[i].until != INVALID_CYCLE && now >= active_[i].until) {
            stop(active_[i]);
            active_[i] = active_.back();
            active_.pop_back();
        } else {
            ++i;
        }
    }

    // Fire due scheduled faults.
    while (next_scheduled_ < config_.schedule.size() &&
           config_.schedule[next_scheduled_].at <= now) {
        apply(config_.schedule[next_scheduled_], now);
        ++next_scheduled_;
    }

    // Seeded random fault processes.  The rates are per component per
    // cycle; a component already faulted is left alone (no stacking).
    if (config_.linkStallRate > 0.0) {
        for (NodeId n = 0; n < links_.size(); ++n) {
            for (unsigned d = 0; d < NUM_DIRS; ++d) {
                Channel<Flit> *ch = links_[n][d];
                if (!ch || ch->stalled())
                    continue;
                if (rng_.nextBool(config_.linkStallRate)) {
                    start(FaultKind::LINK_STALL, n, d, now,
                          config_.linkStallDuration);
                }
            }
        }
    }
    if (config_.routerFreezeRate > 0.0) {
        for (NodeId n = 0; n < routers_.size(); ++n) {
            if (!routers_[n] || frozen_[n])
                continue;
            if (rng_.nextBool(config_.routerFreezeRate)) {
                start(FaultKind::ROUTER_FREEZE, n, 0, now,
                      config_.routerFreezeDuration);
            }
        }
    }
    if (config_.creditDropRate > 0.0 &&
        stats_.creditDrops < config_.maxCreditDrops) {
        for (NodeId n = 0; n < routers_.size(); ++n) {
            Router *r = routers_[n];
            if (!r || !rng_.nextBool(config_.creditDropRate))
                continue;
            const unsigned out = static_cast<unsigned>(
                rng_.nextRange(NUM_DIRS));
            const unsigned vc = static_cast<unsigned>(
                rng_.nextRange(r->numVcs()));
            if (r->outputConnected(out) && r->dropCredit(out, vc))
                ++stats_.creditDrops;
            if (stats_.creditDrops >= config_.maxCreditDrops)
                break;
        }
    }
}

void
FaultEngine::apply(const FaultEvent &ev, Cycle now)
{
    switch (ev.kind) {
      case FaultKind::LINK_STALL:
      case FaultKind::ROUTER_FREEZE:
        start(ev.kind, ev.node, ev.port, now, ev.duration);
        break;
      case FaultKind::CREDIT_DROP: {
        Router *r = ev.node < routers_.size() ? routers_[ev.node] : nullptr;
        tenoc_assert(r, "scheduled credit drop on unregistered router ",
                     ev.node);
        if (r->dropCredit(ev.port, ev.vc))
            ++stats_.creditDrops;
        break;
      }
    }
}

void
FaultEngine::start(FaultKind kind, NodeId node, unsigned port, Cycle now,
                   Cycle duration)
{
    const Cycle until =
        duration == 0 ? INVALID_CYCLE : now + duration;
    switch (kind) {
      case FaultKind::LINK_STALL: {
        Channel<Flit> *ch =
            node < links_.size() && port < NUM_DIRS
                ? links_[node][port] : nullptr;
        tenoc_assert(ch, "scheduled link stall on unregistered link (",
                     node, ", dir ", port, ")");
        if (ch->stalled())
            return; // already faulted; no stacking
        ch->setStalled(true);
        ++stats_.linkStalls;
        active_.push_back({kind, node, port, until});
        break;
      }
      case FaultKind::ROUTER_FREEZE:
        tenoc_assert(node < frozen_.size() && routers_[node],
                     "scheduled freeze on unregistered router ", node);
        if (frozen_[node])
            return;
        frozen_[node] = true;
        ++frozen_count_;
        ++stats_.routerFreezes;
        active_.push_back({kind, node, port, until});
        break;
      case FaultKind::CREDIT_DROP:
        tenoc_panic("credit drops are instantaneous, not active faults");
    }
}

void
FaultEngine::stop(const ActiveFault &fault)
{
    switch (fault.kind) {
      case FaultKind::LINK_STALL:
        links_[fault.node][fault.port]->setStalled(false);
        break;
      case FaultKind::ROUTER_FREEZE:
        frozen_[fault.node] = false;
        --frozen_count_;
        break;
      case FaultKind::CREDIT_DROP:
        break;
    }
}

} // namespace tenoc
