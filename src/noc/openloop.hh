/**
 * @file
 * Open-loop latency-vs-load harness (Fig. 21).
 */

#ifndef TENOC_NOC_OPENLOOP_HH
#define TENOC_NOC_OPENLOOP_HH

#include <vector>

#include "noc/mesh_network.hh"

namespace tenoc
{

/** One open-loop experiment. */
struct OpenLoopParams
{
    MeshNetworkParams net;
    /** Request packets per cycle per compute node (x axis). */
    double injectionRate = 0.02;
    /** Fraction of requests aimed at one MC (0 = uniform random). */
    double hotspotFraction = 0.0;
    unsigned requestFlits = 1; ///< compute nodes inject 1-flit packets
    unsigned replyFlits = 4;   ///< MCs inject 4-flit packets
    Cycle warmupCycles = 2000;
    Cycle measureCycles = 8000;
    Cycle drainCycles = 30000;
    /** Source queues beyond this depth flag saturation. */
    std::size_t saturationQueue = 400;
    /** Mean packet latency beyond this flags saturation (the reply
     *  backlog at MC echo sinks shows up as latency, not as source
     *  queueing). */
    double saturationLatency = 300.0;
    std::uint64_t seed = 12345;
    /**
     * Drive every source from one shared Rng (the pre-stream-split
     * behavior) instead of per-source SplitMix64-derived streams.  Only
     * for pinned-seed compatibility tests; shared-generator draws make
     * every node's traffic depend on every other node's draw order.
     */
    bool legacySharedRng = false;
    /**
     * Optional telemetry hub: attached to the network, aligned so the
     * interval CSV's warmup cycles land in a dedicated leading row, and
     * ticked/finished by the harness.  Not owned.
     */
    telemetry::TelemetryHub *telemetry = nullptr;
};

/** Results of one open-loop run. */
struct OpenLoopResult
{
    double offeredLoad = 0.0;   ///< flits/cycle/compute node offered
    /** Measurement-tagged flits delivered per cycle per node (same
     *  packet population as the latency statistics). */
    double acceptedLoad = 0.0;
    double avgLatency = 0.0;    ///< mean packet latency (cycles)
    double avgRequestLatency = 0.0;
    double avgReplyLatency = 0.0;
    /** 95th-percentile packet latency over the whole run. */
    double p95Latency = 0.0;
    bool saturated = false;
};

/** Runs one open-loop point. */
OpenLoopResult runOpenLoop(const OpenLoopParams &params);

/**
 * Sweeps injection rate from `start` in steps of `step` until the
 * network saturates (or `max_rate`), returning one result per point.
 */
std::vector<OpenLoopResult> sweepOpenLoop(OpenLoopParams params,
                                          double start, double step,
                                          double max_rate);

} // namespace tenoc

#endif // TENOC_NOC_OPENLOOP_HH
