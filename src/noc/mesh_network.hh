/**
 * @file
 * Flit-level 2D mesh network, plus the channel-sliced "double network"
 * (Sec. IV-C) that runs requests and replies on two parallel
 * half-width physical networks.
 */

#ifndef TENOC_NOC_MESH_NETWORK_HH
#define TENOC_NOC_MESH_NETWORK_HH

#include <memory>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "noc/network.hh"
#include "noc/network_interface.hh"
#include "noc/router.hh"

namespace tenoc
{

/** Mesh network configuration (defaults follow Table III). */
struct MeshNetworkParams
{
    TopologyParams topo;
    std::string routing = "xy";     ///< "xy", "yx", or "cr"
    unsigned flitBytes = 16;        ///< channel width
    unsigned protoClasses = 2;      ///< VC protocol classes
    unsigned vcsPerClass = 1;       ///< lanes per (proto, route) class
    unsigned vcDepth = 8;           ///< buffers per VC
    unsigned pipelineDepth = 4;     ///< full-router pipeline stages
    unsigned halfPipelineDepth = 3; ///< half-router pipeline stages
    Cycle channelLatency = 1;
    unsigned mcInjPorts = 1;        ///< injection ports at MC routers
    unsigned mcEjPorts = 1;         ///< ejection ports at MC routers
    /** Oldest-first switch allocation (global fairness; see
     *  Router::Params::agePriority). */
    bool agePriority = false;
    /**
     * Idle-skip scheduling: tick only routers/NIs that can make
     * progress this cycle (tracked by ActiveSet) instead of sweeping
     * every component.  Bit-exact with the full sweep — an idle router
     * performs no state change when ticked — so this is on by default;
     * turn off to get the reference full-tick scheduler (used by the
     * equivalence regression and the noc_speed benchmark).
     */
    bool idleSkip = true;
    NiParams ni;
    std::uint64_t seed = 1;
};

/** Cycle-accurate mesh NoC. */
class MeshNetwork : public Network
{
  public:
    /**
     * @param params configuration
     * @param shared_stats optional external stats block (used by
     *        DoubleNetwork to aggregate both slices); when null the
     *        network owns its stats.
     */
    explicit MeshNetwork(const MeshNetworkParams &params,
                         NetStats *shared_stats = nullptr);

    const Topology &topology() const override { return topo_; }
    unsigned flitBytes() const override { return params_.flitBytes; }
    bool canInject(NodeId n, int proto_class) const override;
    unsigned injectSpace(NodeId n, int proto_class) const override;
    void inject(PacketPtr pkt, Cycle now) override;
    void setSink(NodeId n, PacketSink *sink) override;
    void cycle(Cycle now) override;
    bool drained() const override;
    void attachTelemetry(telemetry::TelemetryHub &hub) override;
    NetStats &stats() override { return *stats_; }

    /**
     * attachTelemetry with a column-name prefix; the double network
     * uses "req_" / "rep_" so both slices' probes coexist in one
     * interval CSV.
     */
    void attachTelemetryPrefixed(telemetry::TelemetryHub &hub,
                                 const std::string &prefix);

    const VcMap &vcMap() const { return vc_map_; }
    const RoutingAlgorithm &routing() const { return *routing_; }
    Router &router(NodeId n) { return *routers_[n]; }
    const MeshNetworkParams &params() const { return params_; }

  private:
    MeshNetworkParams params_;
    Topology topo_;
    std::unique_ptr<RoutingAlgorithm> routing_;
    VcMap vc_map_;
    Rng rng_;

    std::vector<std::unique_ptr<Router>> routers_;
    std::vector<std::unique_ptr<NetworkInterface>> nis_;
    std::vector<std::unique_ptr<Channel<Flit>>> flit_channels_;
    std::vector<std::unique_ptr<Channel<Credit>>> credit_channels_;

    std::unique_ptr<NetStats> owned_stats_;
    NetStats *stats_;
    std::uint64_t next_pkt_id_ = 1;

    /** Routers that may have work this cycle (idle-skip). */
    ActiveSet router_active_;
    /** NIs with packets queued/in flight or ejection flits buffered. */
    ActiveSet ni_active_;
    /** Packets inside the network (enqueue .. tail ejection); makes
     *  drained() O(1). */
    std::uint64_t inflight_ = 0;
    /** Running sum of router switch traversals (telemetry). */
    std::uint64_t flits_traversed_total_ = 0;
};

/**
 * Dedicated double network (Sec. IV-C): one physical network carries
 * request packets, the other replies; each slice has half-width
 * channels and needs no protocol VCs.
 */
class DoubleNetwork : public Network
{
  public:
    /**
     * Builds two slices from `base`: channel width halved, protocol
     * classes dropped to 1 per slice.
     */
    explicit DoubleNetwork(const MeshNetworkParams &base);

    const Topology &topology() const override
    {
        return request_->topology();
    }
    unsigned flitBytes() const override;
    bool canInject(NodeId n, int proto_class) const override;
    unsigned injectSpace(NodeId n, int proto_class) const override;
    void inject(PacketPtr pkt, Cycle now) override;
    void setSink(NodeId n, PacketSink *sink) override;
    void cycle(Cycle now) override;
    bool drained() const override;
    void attachTelemetry(telemetry::TelemetryHub &hub) override;
    NetStats &stats() override { return *stats_; }

    MeshNetwork &requestNet() { return *request_; }
    MeshNetwork &replyNet() { return *reply_; }

  private:
    MeshNetwork &subnetFor(int proto_class) const;

    std::unique_ptr<NetStats> stats_;
    std::unique_ptr<MeshNetwork> request_;
    std::unique_ptr<MeshNetwork> reply_;
};

/**
 * Builds either a single MeshNetwork or a DoubleNetwork depending on
 * `sliced`; when sliced, channel width is halved per slice so total
 * bisection bandwidth is unchanged (the paper's comparison).
 */
std::unique_ptr<Network> makeMeshNetwork(const MeshNetworkParams &params,
                                         bool sliced);

} // namespace tenoc

#endif // TENOC_NOC_MESH_NETWORK_HH
