/**
 * @file
 * Flit-level 2D mesh network, plus the channel-sliced "double network"
 * (Sec. IV-C) that runs requests and replies on two parallel
 * half-width physical networks.
 */

#ifndef TENOC_NOC_MESH_NETWORK_HH
#define TENOC_NOC_MESH_NETWORK_HH

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "common/parallel.hh"
#include "common/rng.hh"
#include "noc/faults.hh"
#include "noc/invariants.hh"
#include "noc/network.hh"
#include "noc/network_interface.hh"
#include "noc/router.hh"
#include "noc/slab.hh"
#include "telemetry/json.hh"

namespace tenoc
{

/** Mesh network configuration (defaults follow Table III). */
struct MeshNetworkParams
{
    TopologyParams topo;
    std::string routing = "xy";     ///< "xy", "yx", or "cr"
    unsigned flitBytes = 16;        ///< channel width
    unsigned protoClasses = 2;      ///< VC protocol classes
    unsigned vcsPerClass = 1;       ///< lanes per (proto, route) class
    unsigned vcDepth = 8;           ///< buffers per VC
    unsigned pipelineDepth = 4;     ///< full-router pipeline stages
    unsigned halfPipelineDepth = 3; ///< half-router pipeline stages
    Cycle channelLatency = 1;
    unsigned mcInjPorts = 1;        ///< injection ports at MC routers
    unsigned mcEjPorts = 1;         ///< ejection ports at MC routers
    /** Oldest-first switch allocation (global fairness; see
     *  Router::Params::agePriority). */
    bool agePriority = false;
    /**
     * Idle-skip scheduling: tick only routers/NIs that can make
     * progress this cycle (tracked by ActiveSet) instead of sweeping
     * every component.  Bit-exact with the full sweep — an idle router
     * performs no state change when ticked — so this is on by default;
     * turn off to get the reference full-tick scheduler (used by the
     * equivalence regression and the noc_speed benchmark).
     */
    bool idleSkip = true;
    /**
     * Arrival-scheduled channel delivery: every Channel::send posts a
     * wake at its exact delivery cycle into a per-network timing wheel
     * (noc/arrival.hh) instead of marking the receiver immediately, so
     * readInputs drains only ports with a matured front entry and a
     * retired router sleeps until its earliest in-flight arrival.
     * Bit-exact with mark-on-send — every tick it skips is a no-op
     * (see docs/performance.md, "Sleep-until-arrival") — so this is on
     * by default; TENOC_ARRIVAL_SLEEP=0/1 in the environment overrides
     * it everywhere (equivalence tests cross both settings).
     */
    bool arrivalSleep = true;
    NiParams ni;
    std::uint64_t seed = 1;
    /**
     * Runtime invariant checking (see noc/invariants.hh): audits
     * credit/flit/packet conservation, VC state legality, occupancy
     * bounds and idle-skip activity every `validateInterval` cycles
     * and panics on the first inconsistency.  Pure observation — never
     * changes simulated behaviour.  Off by default for speed; the test
     * suite turns it on, and TENOC_VALIDATE=1 in the environment
     * forces it on everywhere.
     */
    bool validate = false;
    Cycle validateInterval = 64;
    /**
     * Deadlock/livelock watchdog: when packets are in flight but no
     * flit moves (no injection, traversal or ejection) for this many
     * consecutive cycles, the network emits a structured diagnostic
     * snapshot (written to `watchdogSnapshotPath`) and fails fast
     * instead of hanging.  0 disables.  Tests install a handler via
     * MeshNetwork::setWatchdogHandler to observe firings instead of
     * terminating.
     */
    Cycle watchdogWindow = 200000;
    /** Livelock bound: a packet older than this (cycles since NI
     *  enqueue) trips the watchdog.  0 disables the age scan. */
    Cycle maxPacketAge = 0;
    std::string watchdogSnapshotPath = "tenoc_watchdog_snapshot.json";
    /** Seeded fault injection (see noc/faults.hh); inert when empty. */
    FaultConfig faults;
    /**
     * Intra-cycle parallelism: number of worker threads ticking this
     * network's phases (and, through Chip, its SIMT cores).  0 means
     * "use the TENOC_CYCLE_THREADS environment variable" (default 1 =
     * today's serial scheduler, byte-for-byte).  Any value >1 runs
     * each phase data-parallel over static ascending-index shards with
     * barriers between phases; results are bit-identical to serial for
     * every thread count (see docs/performance.md).  Resolved once at
     * construction (common/parallel.hh:resolveCycleThreads).
     */
    unsigned cycleThreads = 0;
};

/**
 * Fatal-checks a MeshNetworkParams for configurations that cannot
 * simulate (0 VCs, 0-depth buffers, ...) with actionable messages.
 * Called by the MeshNetwork constructor; exposed for config frontends
 * that want to fail before constructing anything.
 */
void validateMeshNetworkParams(const MeshNetworkParams &params);

/**
 * Per-phase wall-time breakdown of MeshNetwork::cycle, accumulated
 * while a profile is attached (noc_speed --profile).  "Bookkeeping"
 * covers everything outside the four component phases: arrival-wheel
 * firing, fault ticks, deferred-mark merges, retirement and postCycle.
 */
struct PhaseProfile
{
    std::uint64_t readInputsNs = 0;
    std::uint64_t injectNs = 0;
    std::uint64_t computeNs = 0;
    std::uint64_t drainNs = 0;
    std::uint64_t bookkeepingNs = 0;
    std::uint64_t cycles = 0;
};

/** Cycle-accurate mesh NoC. */
class MeshNetwork : public Network
{
  public:
    /**
     * @param params configuration
     * @param shared_stats optional external stats block (used by
     *        DoubleNetwork to aggregate both slices); when null the
     *        network owns its stats.
     * @param shared_ids optional external packet-id counter (used by
     *        DoubleNetwork so ids stay unique across both slices —
     *        telemetry traces and differential shadows key on them);
     *        when null the network numbers packets itself.
     */
    explicit MeshNetwork(const MeshNetworkParams &params,
                         NetStats *shared_stats = nullptr,
                         std::uint64_t *shared_ids = nullptr);

    const Topology &topology() const override { return topo_; }
    unsigned flitBytes() const override { return params_.flitBytes; }
    bool canInject(NodeId n, int proto_class) const override;
    unsigned injectSpace(NodeId n, int proto_class) const override;
    void inject(PacketPtr pkt, Cycle now) override;
    void setSink(NodeId n, PacketSink *sink) override;
    void cycle(Cycle now) override;
    bool drained() const override;
    void attachTelemetry(telemetry::TelemetryHub &hub) override;
    NetStats &stats() override { return *stats_; }

    /**
     * attachTelemetry with a column-name prefix; the double network
     * uses "req_" / "rep_" so both slices' probes coexist in one
     * interval CSV.
     */
    void attachTelemetryPrefixed(telemetry::TelemetryHub &hub,
                                 const std::string &prefix);

    const VcMap &vcMap() const { return vc_map_; }
    const RoutingAlgorithm &routing() const { return *routing_; }
    Router &router(NodeId n) { return *routers_[n]; }
    const MeshNetworkParams &params() const { return params_; }

    // --- hardening layer ---
    /** The network's invariant auditor (always wired; only *runs*
     *  periodically when params().validate is set). */
    const InvariantChecker &checker() const { return *checker_; }
    /** Fault stats when fault injection is configured, else nullptr. */
    const FaultStats *faultStats() const
    {
        return faults_ ? &faults_->stats() : nullptr;
    }
    /** Replaces the fail-fast watchdog action (snapshot file + exit)
     *  with `handler`; pass nullptr to restore the default. */
    void setWatchdogHandler(WatchdogHandler handler)
    {
        wd_handler_ = std::move(handler);
    }
    /** Structured deadlock-diagnosis snapshot (JSON). */
    std::string diagnosticReport(Cycle now) const override;
    /** Same snapshot as a JSON document (schema "tenoc-watchdog-v1"):
     *  per-router VC states and credits, wait-for edges, oldest packet
     *  ages, live invariant audit, fault summary. */
    telemetry::JsonValue diagnosticSnapshot(Cycle now) const;

    /** Test hook: corrupts the O(1) in-flight packet counter by
     *  `delta` so mutation tests can prove the checker catches it. */
    void debugAdjustInflight(std::int64_t delta)
    {
        inflight_ = static_cast<std::uint64_t>(
            static_cast<std::int64_t>(inflight_) + delta);
    }
    /** Test hook: retires router `n` from the active set as if it ran
     *  dry (an idle-skip scheduling bug the checker must detect). */
    void debugRetireRouter(NodeId n) { router_active_.clear(n); }

    /** Resolved intra-cycle thread count (1 = serial scheduler). */
    unsigned cycleThreads() const { return cycle_threads_; }

    /** Attaches (or detaches, with nullptr) a per-phase wall-time
     *  profile accumulated by every subsequent cycle() call. */
    void setPhaseProfile(PhaseProfile *profile) { profile_ = profile; }

    // --- checkpoint/restore ---
    /** Serializes all dynamic network state (routers, NIs, channels,
     *  activity masks, counters, RNG).  Must be called at a cycle
     *  boundary; fatals when fault injection is configured (the fault
     *  engine's schedule position is not serialized). */
    void save(SnapshotWriter &w) const override;

    /** Restores state written by save(); topology/VC structure must
     *  match the saving network. */
    void restore(SnapshotReader &r) override;

  private:
    friend class DoubleNetwork;

    void postCycle(Cycle now);
    void fireWatchdog(Cycle now, const char *reason);
    /** Phase-parallel cycle (cycle_threads_ > 1). */
    void engineCycle(Cycle now);
    /** Applies the NIs' deferred stat deltas and replays deliveries in
     *  ascending NI order (the serial drain order). Caller thread. */
    void flushEngineDeferred();
    /** DoubleNetwork slice wiring: the parent flushes deferred state
     *  and runs postCycle itself, in request-then-reply order. */
    void
    setEngineParent()
    {
        defer_to_parent_ = true;
        count_cycles_ = false;
    }

    MeshNetworkParams params_;
    Topology topo_;
    std::unique_ptr<RoutingAlgorithm> routing_;
    VcMap vc_map_;
    Rng rng_;

    /**
     * Structure-of-arrays arena holding every router's VC state
     * machines, flit rings and output-VC bookkeeping in node order
     * (see slab.hh).  Declared before the routers that view it so it
     * outlives them on destruction.
     */
    VcSlabs slabs_;
    /** SoA arena for the NIs' hot state (class queues, active packet
     *  slots, ejection rings); declared before the NIs that view it. */
    NiSlabs ni_slabs_;

    std::vector<std::unique_ptr<Router>> routers_;
    std::vector<std::unique_ptr<NetworkInterface>> nis_;
    /** Channels by value in wiring order (a deque constructs in place
     *  and never relocates, so wired pointers stay stable). */
    std::deque<Channel<Flit>> flit_channels_;
    std::deque<Channel<Credit>> credit_channels_;

    std::unique_ptr<NetStats> owned_stats_;
    NetStats *stats_;
    std::uint64_t own_pkt_ids_ = 1;
    /** Points at own_pkt_ids_, or at the DoubleNetwork's shared
     *  counter so both slices draw from one id space. */
    std::uint64_t *pkt_ids_ = &own_pkt_ids_;

    /** Routers that may have work this cycle (idle-skip). */
    ActiveSet router_active_;
    /** NIs with packets queued/in flight or ejection flits buffered. */
    ActiveSet ni_active_;
    /** Arrival-cycle wake scheduler for all channels (arrivalSleep);
     *  unconfigured when the feature is disabled. */
    ArrivalScheduler arrival_;
    /** Per-phase wall-time accumulator; null unless profiling. */
    PhaseProfile *profile_ = nullptr;
    /** Packets inside the network (enqueue .. tail ejection); makes
     *  drained() O(1). */
    std::uint64_t inflight_ = 0;
    /** Running sum of router switch traversals (telemetry). */
    std::uint64_t flits_traversed_total_ = 0;

    // --- intra-cycle parallel engine (see docs/performance.md) ---
    /** Resolved at construction; 1 = serial scheduler. */
    unsigned cycle_threads_ = 1;
    /** DoubleNetwork slice mode: skip flush/postCycle in engineCycle
     *  (the parent runs them in request-then-reply order). */
    bool defer_to_parent_ = false;
    /** False for DoubleNetwork slices in engine mode (the parent
     *  counts wall cycles once). */
    bool count_cycles_ = true;
    /** A flit tracer is attached: run shards inline on the caller so
     *  trace callbacks stay single-threaded and in component order. */
    bool tracer_attached_ = false;
    /** Per-shard switch-traversal counts, folded into
     *  flits_traversed_total_ at the end-of-cycle barrier.  One cache
     *  line per shard: each worker increments its counter on every
     *  switch traversal, so adjacent bare words would false-share. */
    std::vector<parallel::PaddedU64> shard_traversed_;

    /** Monotone flit entry/exit counters for THIS network (NetStats
     *  totals are shared between double-network slices); their
     *  difference is the exact in-network flit population and their
     *  sum a progress signal for the watchdog. */
    std::uint64_t net_flits_in_ = 0;
    std::uint64_t net_flits_out_ = 0;

    std::unique_ptr<InvariantChecker> checker_;
    std::unique_ptr<FaultEngine> faults_;
    Cycle next_check_ = 0;

    WatchdogHandler wd_handler_;
    std::uint64_t wd_last_progress_ = 0;
    Cycle wd_last_change_ = 0;
};

/**
 * Dedicated double network (Sec. IV-C): one physical network carries
 * request packets, the other replies; each slice has half-width
 * channels and needs no protocol VCs.
 */
class DoubleNetwork : public Network
{
  public:
    /**
     * Builds two slices from `base`: channel width halved, protocol
     * classes dropped to 1 per slice.
     */
    explicit DoubleNetwork(const MeshNetworkParams &base);

    const Topology &topology() const override
    {
        return request_->topology();
    }
    unsigned flitBytes() const override;
    bool canInject(NodeId n, int proto_class) const override;
    unsigned injectSpace(NodeId n, int proto_class) const override;
    void inject(PacketPtr pkt, Cycle now) override;
    void setSink(NodeId n, PacketSink *sink) override;
    void cycle(Cycle now) override;
    bool drained() const override;
    void attachTelemetry(telemetry::TelemetryHub &hub) override;
    NetStats &stats() override { return *stats_; }

    MeshNetwork &requestNet() { return *request_; }
    MeshNetwork &replyNet() { return *reply_; }

    /** Combined snapshot of both slices. */
    std::string diagnosticReport(Cycle now) const override;

    /** Serializes shared state plus both slices (checkpoint). */
    void save(SnapshotWriter &w) const override;

    /** Restores state written by save(). */
    void restore(SnapshotReader &r) override;
    /** Installs `handler` on both slices. */
    void
    setWatchdogHandler(WatchdogHandler handler)
    {
        request_->setWatchdogHandler(handler);
        reply_->setWatchdogHandler(std::move(handler));
    }

  private:
    MeshNetwork &subnetFor(int proto_class) const;

    /** Run the two slices as pool tasks (cycleThreads > 1). */
    bool engine_ = false;
    /** A tracer is attached: slices must run serially. */
    bool telemetry_attached_ = false;
    std::unique_ptr<NetStats> stats_;
    /** Shared packet-id counter: ids must stay unique across slices. */
    std::uint64_t next_pkt_id_ = 1;
    std::unique_ptr<MeshNetwork> request_;
    std::unique_ptr<MeshNetwork> reply_;
};

/**
 * Builds either a single MeshNetwork or a DoubleNetwork depending on
 * `sliced`; when sliced, channel width is halved per slice so total
 * bisection bandwidth is unchanged (the paper's comparison).
 */
std::unique_ptr<Network> makeMeshNetwork(const MeshNetworkParams &params,
                                         bool sliced);

} // namespace tenoc

#endif // TENOC_NOC_MESH_NETWORK_HH
