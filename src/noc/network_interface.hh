/**
 * @file
 * Network interface (NI): the glue between a node (compute core or MC)
 * and its router.
 *
 * Injection side: per-protocol-class packet queues; each injection
 * port streams one flit per cycle into the router's injection buffer
 * (this per-port limit is exactly the terminal bandwidth that the
 * paper's multi-port MC routers raise).
 *
 * Ejection side: a small flit buffer per ejection port drained at one
 * flit per cycle into the node, with backpressure through
 * PacketSink::tryReserve (an MC whose request queue is full blocks the
 * ejection buffer, which backs up into the network).
 */

#ifndef TENOC_NOC_NETWORK_INTERFACE_HH
#define TENOC_NOC_NETWORK_INTERFACE_HH

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "noc/network.hh"
#include "noc/router.hh"

namespace tenoc
{

/** NI configuration. */
struct NiParams
{
    unsigned injQueueCap = 8;    ///< packets per protocol class
    /** Flit slots per ejection port.  Sized to hold several maximum-
     *  size packets so one in-flight write worm cannot head-of-line
     *  block the node interface. */
    unsigned ejBufferFlits = 32;
};

/** Snapshot of one NI's bookkeeping (invariant checker / watchdog). */
struct NiAuditInfo
{
    unsigned queuedPackets = 0;   ///< packets waiting in class queues
    unsigned activeSlots = 0;     ///< packets mid-injection
    unsigned pendingInject = 0;   ///< NI's cached queued+active counter
    unsigned ejFlits = 0;         ///< flits buffered across ej ports
    unsigned ejTails = 0;         ///< tail flits among those
    unsigned ejOccupancyCounter = 0; ///< NI's cached ejection counter
    unsigned maxEjPortOccupancy = 0; ///< fullest single ejection port
    unsigned ejCapacity = 0;      ///< configured flits per ej port
    bool idle = false;
    /** Earliest createdCycle among held packets (INVALID_CYCLE if none). */
    Cycle oldestCreated = INVALID_CYCLE;
};

class NetworkInterface : public EjectionSink
{
  public:
    /**
     * @param node node id
     * @param router local router (already constructed)
     * @param vc_map network VC organization
     * @param params NI configuration
     * @param stats shared network statistics block
     * @param slab optional network-owned SoA arena (see NiSlabs);
     *        must already be configured.  When null the NI owns a
     *        private single-NI arena with the same layout (standalone
     *        / unit-test use).
     * @param slab_index this NI's index into `slab`'s per-NI arrays
     */
    NetworkInterface(NodeId node, Router &router, const VcMap &vc_map,
                     const NiParams &params, NetStats &stats,
                     NiSlabs *slab = nullptr, unsigned slab_index = 0);

    NodeId node() const { return node_; }

    void setSink(PacketSink *sink) { sink_ = sink; }

    /** Registers this NI in its network's active set (idle-skip). */
    void
    setActivity(ActiveSet *set, unsigned idx)
    {
        active_set_ = set;
        active_idx_ = idx;
    }

    /** Points packet arrivals/departures at the owning network's
     *  in-flight counter, making Network::drained() O(1). */
    void setInFlightCounter(std::uint64_t *c) { inflight_ = c; }

    /**
     * Points per-flit router entry/exit at two monotone network-level
     * counters.  Their difference is the exact flit population of the
     * network (router buffers + channels + ejection buffers), checked
     * by the invariant checker; their sum is a per-network progress
     * signal for the deadlock watchdog (NetStats totals are shared
     * between double-network slices and cannot serve either purpose).
     */
    void
    setNetFlitCounters(std::uint64_t *injected, std::uint64_t *ejected)
    {
        net_flits_in_ = injected;
        net_flits_out_ = ejected;
    }

    /** Snapshot of queue/buffer bookkeeping for the checker. */
    NiAuditInfo audit() const;

    /** Attaches (or detaches, with nullptr) a flit-event tracer. */
    void setTracer(telemetry::TraceSink *tracer) { tracer_ = tracer; }

    /** @return true if one more packet fits in the class queue. */
    bool canInject(int proto_class) const;

    /** @return free packet slots in the class queue. */
    unsigned injectSpace(int proto_class) const;

    /** Queues a packet (route must already be initialized). */
    void enqueue(PacketPtr pkt, Cycle now);

    /** Streams flits into the router; call once per icnt cycle. */
    void injectPhase(Cycle now);

    /** Drains ejection buffers into the node; once per icnt cycle. */
    void drainPhase(Cycle now);

    // EjectionSink
    bool ejectReady(unsigned ej_port) const override;
    void ejectFlit(unsigned ej_port, Flit &&flit, Cycle now) override;

    /** @return true when all queues and buffers are empty. */
    bool idle() const;

    // --- checkpoint/restore ---
    /** Serializes all dynamic NI state.  Must be called at a cycle
     *  boundary, where the deferred-stats delta is empty. */
    void save(SnapshotWriter &w) const;

    /** Restores state written by save(). */
    void restore(SnapshotReader &r);

    // --- deferred stats (parallel phase execution) ---

    /**
     * In deferred mode every shared-state side effect of the phase
     * methods (NetStats counters, latency samples, the network flit /
     * in-flight counters, and sink deliveries) is buffered in a
     * private delta instead of applied live, so injectPhase/drainPhase
     * can run on a pool worker while other NIs run concurrently.  The
     * orchestrating thread applies the deltas NI-by-NI in ascending
     * index order at the end-of-cycle barrier — the exact order the
     * serial scheduler produces them — so accumulator and histogram
     * contents stay bit-identical.  Deliveries are replayed on the
     * caller too, which keeps final PacketPtr releases on the thread
     * that owns the packet pool (see noc/pool.hh).
     */
    void setDeferredStats(bool on) { defer_ = on; }

    /** Folds the buffered counter/sample delta into the shared stats
     *  block.  Caller thread only. */
    void applyDeferredStats();

    /** Replays buffered sink deliveries in eject order.  Caller thread
     *  only; may re-enter the network (echo sinks enqueue replies). */
    void flushDeferredDeliveries();

  private:
    /** Buffered side effects of one cycle's phases (deferred mode). */
    struct NiStatDelta
    {
        bool dirty = false;
        std::uint64_t flitsInjected = 0;
        std::uint64_t flitsEjected = 0;
        std::uint64_t packetsInjected = 0;
        std::uint64_t packetsEjected = 0;
        std::uint64_t nodeInjFlits = 0;
        std::uint64_t nodeEjFlits = 0;
        std::uint64_t nodeInjBytes = 0;
        std::uint64_t nodeEjBytes = 0;
        std::uint64_t netIn = 0;
        std::uint64_t netOut = 0;
        std::uint64_t inflightDec = 0;
        /** (stat tag, value) in sample order; see applyDeferredStats. */
        std::vector<std::pair<std::uint8_t, double>> samples;
        /** (packet, eject cycle) in eject order. */
        std::vector<std::pair<PacketPtr, Cycle>> deliveries;
    };

    /** Tries to assign one queued packet to a free (port, vc) slot. */
    bool refillOne(Cycle now);

    NodeId node_;
    Router &router_;
    VcMap vc_map_;
    NiParams params_;
    NetStats &stats_;
    PacketSink *sink_ = nullptr;
    telemetry::TraceSink *tracer_ = nullptr;
    ActiveSet *active_set_ = nullptr;
    unsigned active_idx_ = 0;
    std::uint64_t *inflight_ = nullptr;
    std::uint64_t *net_flits_in_ = nullptr;
    std::uint64_t *net_flits_out_ = nullptr;

    /** Deferred-stats mode (parallel phase execution). */
    bool defer_ = false;
    NiStatDelta delta_;

    /**
     * SoA hot state: injection class queues, one in-flight packet per
     * (injection port, VC) — which removes NI head-of-line blocking
     * while keeping the 1 flit/cycle/port terminal bandwidth that
     * multi-port MC routers raise — and per-port ejection rings, all
     * stored in a NiSlabs arena (network-owned, or the private
     * `owned_nslab_` for standalone NIs).  The pending-inject and
     * ejection-occupancy counters live there too, so the network's
     * phase loops early-out with one contiguous array read per NI.
     */
    std::unique_ptr<NiSlabs> owned_nslab_;
    NiSlabs *nslab_ = nullptr;
    unsigned ni_ = 0;       ///< index into the arena's per-NI arrays
    std::size_t qbase_ = 0; ///< first class-queue index (ni * classes)
    std::size_t sbase_ = 0; ///< first active-slot index
    std::size_t ebase_ = 0; ///< first ejection-ring index
    unsigned ports_ = 0;    ///< injection ports
    unsigned ej_ports_ = 0; ///< ejection ports
    unsigned vcs_ = 0;      ///< VCs per port

    std::vector<unsigned> lane_rr_;                 ///< per class
    std::vector<unsigned> vc_rr_;                   ///< per port
    unsigned class_rr_ = 0;
    unsigned port_rr_ = 0;
};

} // namespace tenoc

#endif // TENOC_NOC_NETWORK_INTERFACE_HH
