/**
 * @file
 * Network interface (NI): the glue between a node (compute core or MC)
 * and its router.
 *
 * Injection side: per-protocol-class packet queues; each injection
 * port streams one flit per cycle into the router's injection buffer
 * (this per-port limit is exactly the terminal bandwidth that the
 * paper's multi-port MC routers raise).
 *
 * Ejection side: a small flit buffer per ejection port drained at one
 * flit per cycle into the node, with backpressure through
 * PacketSink::tryReserve (an MC whose request queue is full blocks the
 * ejection buffer, which backs up into the network).
 */

#ifndef TENOC_NOC_NETWORK_INTERFACE_HH
#define TENOC_NOC_NETWORK_INTERFACE_HH

#include <deque>
#include <vector>

#include "noc/network.hh"
#include "noc/router.hh"

namespace tenoc
{

/** NI configuration. */
struct NiParams
{
    unsigned injQueueCap = 8;    ///< packets per protocol class
    /** Flit slots per ejection port.  Sized to hold several maximum-
     *  size packets so one in-flight write worm cannot head-of-line
     *  block the node interface. */
    unsigned ejBufferFlits = 32;
};

class NetworkInterface : public EjectionSink
{
  public:
    /**
     * @param node node id
     * @param router local router (already constructed)
     * @param vc_map network VC organization
     * @param params NI configuration
     * @param stats shared network statistics block
     */
    NetworkInterface(NodeId node, Router &router, const VcMap &vc_map,
                     const NiParams &params, NetStats &stats);

    NodeId node() const { return node_; }

    void setSink(PacketSink *sink) { sink_ = sink; }

    /** Registers this NI in its network's active set (idle-skip). */
    void
    setActivity(ActiveSet *set, unsigned idx)
    {
        active_set_ = set;
        active_idx_ = idx;
    }

    /** Points packet arrivals/departures at the owning network's
     *  in-flight counter, making Network::drained() O(1). */
    void setInFlightCounter(std::uint64_t *c) { inflight_ = c; }

    /** Attaches (or detaches, with nullptr) a flit-event tracer. */
    void setTracer(telemetry::TraceSink *tracer) { tracer_ = tracer; }

    /** @return true if one more packet fits in the class queue. */
    bool canInject(int proto_class) const;

    /** @return free packet slots in the class queue. */
    unsigned injectSpace(int proto_class) const;

    /** Queues a packet (route must already be initialized). */
    void enqueue(PacketPtr pkt, Cycle now);

    /** Streams flits into the router; call once per icnt cycle. */
    void injectPhase(Cycle now);

    /** Drains ejection buffers into the node; once per icnt cycle. */
    void drainPhase(Cycle now);

    // EjectionSink
    bool ejectReady(unsigned ej_port) const override;
    void ejectFlit(unsigned ej_port, Flit &&flit, Cycle now) override;

    /** @return true when all queues and buffers are empty. */
    bool idle() const;

  private:
    struct ActivePacket
    {
        PacketPtr pkt;
        std::vector<Flit> flits;
        unsigned next = 0;
        bool valid = false;
    };

    /** Tries to assign one queued packet to a free (port, vc) slot. */
    bool refillOne(Cycle now);

    NodeId node_;
    Router &router_;
    VcMap vc_map_;
    NiParams params_;
    NetStats &stats_;
    PacketSink *sink_ = nullptr;
    telemetry::TraceSink *tracer_ = nullptr;
    ActiveSet *active_set_ = nullptr;
    unsigned active_idx_ = 0;
    std::uint64_t *inflight_ = nullptr;

    /** Packets queued or mid-injection (inj queues + active slots). */
    unsigned pending_inject_ = 0;
    /** Flits buffered across all ejection ports. */
    unsigned ej_occupancy_ = 0;

    std::vector<std::deque<PacketPtr>> inj_queues_; ///< per class
    /** One in-flight packet per (injection port, VC): removes NI
     *  head-of-line blocking while keeping the 1 flit/cycle/port
     *  terminal bandwidth that multi-port MC routers raise. */
    std::vector<std::vector<ActivePacket>> active_; ///< [port][vc]
    std::vector<unsigned> lane_rr_;                 ///< per class
    std::vector<unsigned> vc_rr_;                   ///< per port
    unsigned class_rr_ = 0;
    unsigned port_rr_ = 0;

    std::vector<std::deque<Flit>> ej_bufs_;         ///< per ej port
};

} // namespace tenoc

#endif // TENOC_NOC_NETWORK_INTERFACE_HH
