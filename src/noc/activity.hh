/**
 * @file
 * Activity tracking for idle-skip scheduling.
 *
 * An ActiveSet is a bitmask over component indices (routers or NIs of
 * one network).  Components mark themselves active when work arrives
 * (a flit buffered, a credit in flight, a packet enqueued); the
 * network ticks only marked components each interconnect cycle and
 * retires the ones that ran out of work.  Iteration visits indices in
 * ascending order, so the tick order is identical to the full
 * tick-everything sweep and the simulation stays bit-exact (see
 * docs/performance.md).
 *
 * Parallel phase execution (common/parallel.hh) adds a *deferred
 * marking* mode: while a phase runs data-parallel across shards, the
 * word array is frozen and mark() appends the index to a per-worker
 * buffer instead of writing a shared word.  mergeDeferredMarks() ORs
 * the buffers back at the phase barrier; since marking is idempotent
 * the merge order cannot matter, and because the words are frozen
 * during the phase no snapshot copy is needed — readers of test() see
 * exactly the mask the phase started with, matching the serial
 * scheduler's "marks become visible at the next phase" semantics.
 */

#ifndef TENOC_NOC_ACTIVITY_HH
#define TENOC_NOC_ACTIVITY_HH

#include <bit>
#include <cstdint>
#include <vector>

#include "common/log.hh"
#include "common/parallel.hh"

namespace tenoc
{

/** Dense bitmask of active component indices. */
class ActiveSet
{
  public:
    explicit ActiveSet(unsigned n = 0) { resize(n); }

    /** Clears the set and sizes it for indices [0, n). */
    void
    resize(unsigned n)
    {
        words_.assign((n + 63) / 64, 0);
    }

    void
    mark(unsigned i)
    {
        if (deferring_) {
            // Words are frozen during a parallel phase, so this test
            // races with nothing and already-set bits (the common
            // case: waking an active component) cost no buffer entry.
            if (!test(i))
                deferred_[parallel::workerSlot()].buf.push_back(i);
            return;
        }
        words_[i >> 6] |= WORD_ONE << (i & 63);
    }

    void clear(unsigned i) { words_[i >> 6] &= ~(WORD_ONE << (i & 63)); }

    bool
    test(unsigned i) const
    {
        return (words_[i >> 6] >> (i & 63)) & 1;
    }

    bool
    empty() const
    {
        for (auto w : words_)
            if (w)
                return false;
        return true;
    }

    /** Number of marked indices. */
    unsigned
    popCount() const
    {
        unsigned n = 0;
        for (auto w : words_)
            n += static_cast<unsigned>(std::popcount(w));
        return n;
    }

    /** Raw mask words (checkpoint/restore). */
    const std::vector<std::uint64_t> &words() const { return words_; }

    /** Overwrites the mask words (checkpoint/restore); the word count
     *  must match this set's size. */
    void
    setWords(const std::vector<std::uint64_t> &words)
    {
        tenoc_assert(words.size() == words_.size(),
                     "active-set word count mismatch");
        words_ = words;
    }

    // --- deferred marking (parallel phase execution) ---

    /** Allocates per-worker mark buffers; idempotent. */
    void
    enableDeferredMarks()
    {
        if (deferred_.empty())
            deferred_.resize(parallel::maxSlots());
    }

    /** Freezes the word array: marks buffer until the next merge. */
    void beginDeferred() { deferring_ = true; }

    /** Leaves deferred mode (words become directly writable again). */
    void endDeferred() { deferring_ = false; }

    /**
     * ORs every buffered mark into the word array and empties the
     * buffers.  Call only at a phase barrier (single-threaded).  The
     * result is independent of buffer order — marking is idempotent —
     * so it is bit-identical to the serial scheduler's live marks.
     */
    void
    mergeDeferredMarks()
    {
        for (auto &slot : deferred_) {
            for (const unsigned i : slot.buf)
                words_[i >> 6] |= WORD_ONE << (i & 63);
            slot.buf.clear();
        }
    }

    /**
     * Calls f(index) for each marked index in ascending order.  Bits
     * set during iteration inside the word currently being scanned are
     * not visited this pass; callers rely only on marks set in earlier
     * phases of the cycle being visited (see MeshNetwork::cycle).
     */
    template <typename F>
    void
    forEach(F &&f) const
    {
        for (std::size_t w = 0; w < words_.size(); ++w) {
            std::uint64_t bits = words_[w];
            while (bits) {
                const auto b =
                    static_cast<unsigned>(std::countr_zero(bits));
                bits &= bits - 1;
                f(static_cast<unsigned>(w * 64 + b));
            }
        }
    }

    /**
     * Calls f(index) for each marked index in [lo, hi), ascending.
     * Used by the parallel scheduler to iterate one shard's slice of a
     * frozen mask; shard boundaries fall mid-word without double
     * visits because both edges are masked.
     */
    template <typename F>
    void
    forEachInRange(unsigned lo, unsigned hi, F &&f) const
    {
        if (lo >= hi)
            return;
        const std::size_t w0 = lo >> 6;
        const std::size_t w1 = (hi - 1) >> 6;
        for (std::size_t w = w0; w <= w1; ++w) {
            std::uint64_t bits = words_[w];
            if (w == w0 && (lo & 63) != 0)
                bits &= ~std::uint64_t{0} << (lo & 63);
            if (w == w1 && (hi & 63) != 0)
                bits &= (WORD_ONE << (hi & 63)) - 1;
            while (bits) {
                const auto b =
                    static_cast<unsigned>(std::countr_zero(bits));
                bits &= bits - 1;
                f(static_cast<unsigned>(w * 64 + b));
            }
        }
    }

    /** Clears every marked index for which `pred(index)` is true. */
    template <typename Pred>
    void
    retireIf(Pred &&pred)
    {
        for (std::size_t w = 0; w < words_.size(); ++w) {
            std::uint64_t bits = words_[w];
            while (bits) {
                const auto b =
                    static_cast<unsigned>(std::countr_zero(bits));
                bits &= bits - 1;
                const auto idx = static_cast<unsigned>(w * 64 + b);
                if (pred(idx))
                    clear(idx);
            }
        }
    }

  private:
    static constexpr std::uint64_t WORD_ONE = 1;

    /**
     * One worker's mark buffer, padded to a cache line: adjacent
     * std::vector headers (size/capacity pointers mutated on every
     * push_back) otherwise share a line and false-share across the
     * workers of a parallel phase.
     */
    struct alignas(parallel::CACHE_LINE) DeferredSlot
    {
        std::vector<unsigned> buf;
    };

    std::vector<std::uint64_t> words_;
    bool deferring_ = false;
    /** Per-worker-slot mark buffers (see file comment). */
    std::vector<DeferredSlot> deferred_;
};

} // namespace tenoc

#endif // TENOC_NOC_ACTIVITY_HH
