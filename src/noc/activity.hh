/**
 * @file
 * Activity tracking for idle-skip scheduling.
 *
 * An ActiveSet is a bitmask over component indices (routers or NIs of
 * one network).  Components mark themselves active when work arrives
 * (a flit buffered, a credit in flight, a packet enqueued); the
 * network ticks only marked components each interconnect cycle and
 * retires the ones that ran out of work.  Iteration visits indices in
 * ascending order, so the tick order is identical to the full
 * tick-everything sweep and the simulation stays bit-exact (see
 * docs/performance.md).
 */

#ifndef TENOC_NOC_ACTIVITY_HH
#define TENOC_NOC_ACTIVITY_HH

#include <bit>
#include <cstdint>
#include <vector>

namespace tenoc
{

/** Dense bitmask of active component indices. */
class ActiveSet
{
  public:
    explicit ActiveSet(unsigned n = 0) { resize(n); }

    /** Clears the set and sizes it for indices [0, n). */
    void
    resize(unsigned n)
    {
        words_.assign((n + 63) / 64, 0);
    }

    void mark(unsigned i) { words_[i >> 6] |= WORD_ONE << (i & 63); }
    void clear(unsigned i) { words_[i >> 6] &= ~(WORD_ONE << (i & 63)); }

    bool
    test(unsigned i) const
    {
        return (words_[i >> 6] >> (i & 63)) & 1;
    }

    bool
    empty() const
    {
        for (auto w : words_)
            if (w)
                return false;
        return true;
    }

    /**
     * Calls f(index) for each marked index in ascending order.  Bits
     * set during iteration inside the word currently being scanned are
     * not visited this pass; callers rely only on marks set in earlier
     * phases of the cycle being visited (see MeshNetwork::cycle).
     */
    template <typename F>
    void
    forEach(F &&f) const
    {
        for (std::size_t w = 0; w < words_.size(); ++w) {
            std::uint64_t bits = words_[w];
            while (bits) {
                const auto b =
                    static_cast<unsigned>(std::countr_zero(bits));
                bits &= bits - 1;
                f(static_cast<unsigned>(w * 64 + b));
            }
        }
    }

    /** Clears every marked index for which `pred(index)` is true. */
    template <typename Pred>
    void
    retireIf(Pred &&pred)
    {
        for (std::size_t w = 0; w < words_.size(); ++w) {
            std::uint64_t bits = words_[w];
            while (bits) {
                const auto b =
                    static_cast<unsigned>(std::countr_zero(bits));
                bits &= bits - 1;
                const auto idx = static_cast<unsigned>(w * 64 + b);
                if (pred(idx))
                    clear(idx);
            }
        }
    }

  private:
    static constexpr std::uint64_t WORD_ONE = 1;
    std::vector<std::uint64_t> words_;
};

} // namespace tenoc

#endif // TENOC_NOC_ACTIVITY_HH
