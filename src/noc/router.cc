/**
 * @file
 * Router implementation.
 */

#include "noc/router.hh"

#include <algorithm>
#include <bit>

#include "common/snapshot.hh"
#include "telemetry/trace_sink.hh"

namespace tenoc
{

Router::Router(NodeId id, const Topology &topo,
               RoutingAlgorithm &routing, const Params &params)
    : id_(id), topo_(topo), routing_(routing), params_(params),
      nvcs_(params.vcMap.numVcs()),
      owned_slab_(std::make_unique<VcSlabs>()),
      slab_(owned_slab_.get()), in_base_(0), out_base_(0)
{
    tenoc_assert(params_.numInjPorts >= 1 && params_.numEjPorts >= 1,
                 "router needs at least one injection/ejection port");
    owned_slab_->configure(numInputs() * nvcs_, numOutputs() * nvcs_,
                           params_.vcDepth);
    initPorts();
}

Router::Router(NodeId id, const Topology &topo,
               RoutingAlgorithm &routing, const Params &params,
               VcSlabs &slab, std::size_t in_vc_base,
               std::size_t out_vc_base)
    : id_(id), topo_(topo), routing_(routing), params_(params),
      nvcs_(params.vcMap.numVcs()), slab_(&slab), in_base_(in_vc_base),
      out_base_(out_vc_base)
{
    tenoc_assert(params_.numInjPorts >= 1 && params_.numEjPorts >= 1,
                 "router needs at least one injection/ejection port");
    tenoc_assert(in_base_ + numInputs() * nvcs_ <= slab.numInputVcs() &&
                     out_base_ + numOutputs() * nvcs_ <=
                         slab.numOutputVcs() &&
                     slab.depth() == params_.vcDepth,
                 "router view exceeds slab at node ", id_);
    initPorts();
}

void
Router::initPorts()
{
    const unsigned vcs = nvcs_;
    inputs_.reserve(numInputs());
    for (unsigned in = 0; in < numInputs(); ++in) {
        inputs_.emplace_back(*slab_, in_base_ + in * vcs, vcs,
                             params_.vcDepth);
    }
    outputs_.resize(numOutputs());
    in_links_.resize(NUM_DIRS);
    sa_input_arb_.assign(numInputs(), RoundRobinArbiter(vcs));
    mask_alloc_ = numInputs() * vcs <= 64;
    va_out_reqs_.resize(numOutputs());
    sa_out_mask_.resize(numOutputs());
    va_words_ = (numInputs() * vcs + 63) / 64;
    vc_words_ = (vcs + 63) / 64;
    in_words_ = (numInputs() + 63) / 64;
    if (!mask_alloc_) {
        va_wide_reqs_.resize(numOutputs() * va_words_);
        sa_vc_words_.resize(vc_words_);
        sa_out_words_.resize(numOutputs() * in_words_);
    }
    sa_nominee_.resize(numInputs());
    for (unsigned o = 0; o < numOutputs(); ++o) {
        outputs_[o].vaArb.resize(numInputs() * vcs);
        outputs_[o].saArb.resize(numInputs());
        // Output VC credits start at zero (slab configure() default):
        // mesh outputs gain vcDepth credits when wired via
        // connectOutput(); ejection capacity is governed by the NI
        // sink, not credits.
    }
}

void
Router::connectOutput(Direction d, Channel<Flit> *flit_out,
                      Channel<Credit> *credit_in)
{
    tenoc_assert(d < NUM_DIRS, "invalid output direction");
    outputs_[d].flitOut = flit_out;
    outputs_[d].creditIn = credit_in;
    if (arrival_sched_ && credit_in)
        credit_in->setArrivalTarget(arrival_sched_, arrival_idx_,
                                    arrivalCreditBit(d));
    for (unsigned vc = 0; vc < nvcs_; ++vc)
        slab_->outCredits[ov(d, vc)] = params_.vcDepth;
}

void
Router::connectInput(Direction d, Channel<Flit> *flit_in,
                     Channel<Credit> *credit_out)
{
    tenoc_assert(d < NUM_DIRS, "invalid input direction");
    in_links_[d].flitIn = flit_in;
    in_links_[d].creditOut = credit_out;
    if (arrival_sched_ && flit_in)
        flit_in->setArrivalTarget(arrival_sched_, arrival_idx_,
                                  arrivalFlitBit(d));
}

void
Router::setArrival(ArrivalScheduler *sched, unsigned idx)
{
    arrival_sched_ = sched;
    arrival_idx_ = idx;
    for (unsigned d = 0; d < NUM_DIRS; ++d) {
        if (in_links_[d].flitIn)
            in_links_[d].flitIn->setArrivalTarget(sched, idx,
                                                  arrivalFlitBit(d));
        if (outputs_[d].creditIn)
            outputs_[d].creditIn->setArrivalTarget(sched, idx,
                                                   arrivalCreditBit(d));
    }
}

unsigned
Router::injFreeSlots(unsigned inj, unsigned vc) const
{
    return inputs_[NUM_DIRS + inj].freeSlots(vc);
}

void
Router::injectFlit(unsigned inj, Flit &&flit, Cycle now)
{
    inputs_[NUM_DIRS + inj].push(std::move(flit), now);
    if (active_set_)
        active_set_->mark(active_idx_);
}

bool
Router::connectivityAllows(unsigned in, unsigned out) const
{
    if (isInjection(in))
        return true; // injection reaches every output
    if (isEjection(out))
        return true;             // every input reaches ejection
    if (!params_.half) {
        // Full crossbar; U-turns are legal (non-minimal schemes such
        // as Valiant may reverse direction at their waypoint).
        return true;
    }
    // Half-router: through traffic must continue straight (Fig. 13).
    return out == opposite(static_cast<Direction>(in));
}

void
Router::readInputs(Cycle now)
{
    if (arrival_sched_) {
        // Event-driven drain: only ports whose pending bit fired have
        // a matured front entry; everything else is guaranteed to
        // deliver nothing, so skipping the receive() poll is exact.
        std::uint32_t bits = arrival_sched_->pending(arrival_idx_);
        if (bits == 0)
            return;
        std::uint32_t keep = 0;
        while (bits) {
            const auto b =
                static_cast<unsigned>(std::countr_zero(bits));
            bits &= bits - 1;
            if (b < NUM_DIRS) {
                Channel<Flit> *ch = in_links_[b].flitIn;
                while (auto f = ch->receive(now))
                    inputs_[b].push(std::move(*f), now);
                // A stalled link keeps its matured backlog; the bit
                // stays pending so the router keeps polling (exactly
                // the cycles mark-on-send would have kept it awake).
                if (ch->earliestArrival() <= now)
                    keep |= arrivalFlitBit(b);
            } else {
                const unsigned d = b - NUM_DIRS;
                Channel<Credit> *ch = outputs_[d].creditIn;
                while (auto c = ch->receive(now))
                    ++slab_->outCredits[ov(d, c->vc)];
                if (ch->earliestArrival() <= now)
                    keep |= arrivalCreditBit(d);
            }
        }
        arrival_sched_->setPending(arrival_idx_, keep);
        return;
    }
    for (unsigned d = 0; d < NUM_DIRS; ++d) {
        if (in_links_[d].flitIn) {
            while (auto f = in_links_[d].flitIn->receive(now))
                inputs_[d].push(std::move(*f), now);
        }
        if (outputs_[d].creditIn) {
            while (auto c = outputs_[d].creditIn->receive(now))
                ++slab_->outCredits[ov(d, c->vc)];
        }
    }
}

void
Router::compute(Cycle now)
{
    routeCompute(now);
    vcAllocate(now);
    switchAllocate(now);
}

Cycle
Router::packetAge(const Flit &f)
{
    return f.pkt->injectedCycle != INVALID_CYCLE
        ? f.pkt->injectedCycle : f.pkt->createdCycle;
}

unsigned
Router::nextEjectionPort()
{
    const unsigned p = ej_rr_ % params_.numEjPorts;
    ++ej_rr_;
    return NUM_DIRS + p;
}

void
Router::routeCompute(Cycle now)
{
    (void)now;
    const unsigned vcs = nvcs_;
    const unsigned n = numInputs() * vcs;
    // Contiguous-scan early-out: RC only acts on an idle VC with a
    // buffered head flit; with none present the stage is a no-op.
    const VcState *st = slab_->inState.data() + in_base_;
    const std::uint32_t *cnt = slab_->ringCount.data() + in_base_;
    bool eligible = false;
    for (unsigned i = 0; i < n; ++i) {
        if (st[i] == VcState::IDLE && cnt[i] != 0) {
            eligible = true;
            break;
        }
    }
    if (!eligible)
        return;
    for (unsigned in = 0; in < numInputs(); ++in) {
        for (unsigned vc = 0; vc < vcs; ++vc) {
            auto &port = inputs_[in];
            if (port.state(vc) != VcState::IDLE || port.empty(vc))
                continue;
            const Flit &head = port.front(vc);
            tenoc_assert(head.head,
                         "non-head flit at front of idle VC (router ",
                         id_, " in ", in, " vc ", vc, ")");
            Packet &pkt = *head.pkt;
            unsigned out = routing_.route(id_, pkt);
            if (out == PORT_EJECT) {
                tenoc_assert(pkt.dst == id_,
                             "ejection at non-destination node");
                out = nextEjectionPort();
            } else {
                tenoc_assert(out < NUM_DIRS &&
                             topo_.neighbor(id_,
                                 static_cast<Direction>(out)) !=
                                 INVALID_NODE,
                             "route off mesh edge at node ", id_);
            }
            tenoc_assert(connectivityAllows(in, out),
                         "illegal turn at ", params_.half ? "half" :
                         "full", "-router ", id_, ": in=",
                         inputPortName(in), " out=", outputPortName(out));
            port.setOutPort(vc, out);
            // The packet is already hot here; caching its VC-class base
            // spares VC allocation the pointer chase entirely.
            port.setBaseVc(vc, params_.vcMap.baseVc(pkt));
            port.setState(vc, VcState::VC_ALLOC);
        }
    }
}

void
Router::vcAllocate(Cycle now)
{
    if (!mask_alloc_) {
        vcAllocateWide(now);
        return;
    }
    const unsigned vcs = nvcs_;
    const unsigned n = numInputs() * vcs;
    // One contiguous pass over the state slab builds the per-output
    // requestor masks (bit i = input VC i wants this output); outputs
    // with no requestors are skipped entirely, which is bit-exact
    // because an arbiter only advances when a grant is accepted.
    const VcState *st = slab_->inState.data() + in_base_;
    const std::uint32_t *op = slab_->inOutPort.data() + in_base_;
    bool any = false;
    std::fill(va_out_reqs_.begin(), va_out_reqs_.end(), 0);
    for (unsigned i = 0; i < n; ++i) {
        if (st[i] == VcState::VC_ALLOC) {
            va_out_reqs_[op[i]] |= std::uint64_t{1} << i;
            any = true;
        }
    }
    if (!any)
        return;
    for (unsigned o = 0; o < numOutputs(); ++o) {
        std::uint64_t reqs = va_out_reqs_[o];
        if (reqs == 0)
            continue;
        auto &out = outputs_[o];
        // Grant output VCs in round-robin requestor order until the
        // eligible VCs run out.
        while (reqs != 0) {
            const unsigned idx = out.vaArb.grantMask(reqs);
            const unsigned in = idx / vcs;
            const unsigned vc = idx % vcs;
            const unsigned base = inputs_[in].baseVc(vc);
            unsigned granted = vcs;
            for (unsigned l = 0; l < params_.vcMap.vcsPerClass; ++l) {
                const unsigned cand = base + l;
                if (!slab_->outOwned[ov(o, cand)]) {
                    granted = cand;
                    break;
                }
            }
            reqs &= ~(std::uint64_t{1} << idx);
            if (granted == vcs) {
                // No eligible VC free; the requestor retries next
                // cycle.  Other requestors may still want different
                // (protocol/routing class) VCs.
                continue;
            }
            const std::size_t g = ov(o, granted);
            slab_->outOwned[g] = 1;
            slab_->outOwnerIn[g] = in;
            slab_->outOwnerVc[g] = vc;
            inputs_[in].setOutVc(vc, granted);
            inputs_[in].setState(vc, VcState::ACTIVE);
            out.vaArb.accept(idx);
            if (tracer_) {
                const Packet &pkt = *inputs_[in].front(vc).pkt;
                if (tracer_->wants(pkt.id))
                    tracer_->instant("va", id_, pkt.id, now);
            }
        }
    }
}

void
Router::vcAllocateWide(Cycle now)
{
    const unsigned vcs = nvcs_;
    const unsigned n = numInputs() * vcs;
    const VcState *st = slab_->inState.data() + in_base_;
    const std::uint32_t *op = slab_->inOutPort.data() + in_base_;
    // One contiguous pass builds the per-output requestor word arrays
    // (bit i of output o's set = input VC i wants o) — the same
    // request sets as the single-word fast path, just spread over
    // va_words_ words per output.
    std::fill(va_wide_reqs_.begin(), va_wide_reqs_.end(), 0);
    bool any = false;
    for (unsigned i = 0; i < n; ++i) {
        if (st[i] == VcState::VC_ALLOC) {
            va_wide_reqs_[op[i] * va_words_ + (i >> 6)] |=
                std::uint64_t{1} << (i & 63);
            any = true;
        }
    }
    if (!any)
        return;
    for (unsigned o = 0; o < numOutputs(); ++o) {
        std::uint64_t *reqs = va_wide_reqs_.data() + o * va_words_;
        std::uint64_t live = 0;
        for (unsigned w = 0; w < va_words_; ++w)
            live |= reqs[w];
        if (live == 0)
            continue;
        auto &out = outputs_[o];
        // Grant output VCs in round-robin requestor order until the
        // eligible VCs run out.
        while (true) {
            const unsigned idx = out.vaArb.grantWords(reqs, va_words_);
            if (idx >= n)
                break;
            const unsigned in = idx / vcs;
            const unsigned vc = idx % vcs;
            const unsigned base = inputs_[in].baseVc(vc);
            unsigned granted = vcs;
            for (unsigned l = 0; l < params_.vcMap.vcsPerClass; ++l) {
                const unsigned cand = base + l;
                if (!slab_->outOwned[ov(o, cand)]) {
                    granted = cand;
                    break;
                }
            }
            reqs[idx >> 6] &= ~(std::uint64_t{1} << (idx & 63));
            if (granted == vcs) {
                // No eligible VC free; the requestor retries next
                // cycle.  Other requestors may still want different
                // (protocol/routing class) VCs.
                continue;
            }
            const std::size_t g = ov(o, granted);
            slab_->outOwned[g] = 1;
            slab_->outOwnerIn[g] = in;
            slab_->outOwnerVc[g] = vc;
            inputs_[in].setOutVc(vc, granted);
            inputs_[in].setState(vc, VcState::ACTIVE);
            out.vaArb.accept(idx);
            if (tracer_) {
                const Packet &pkt = *inputs_[in].front(vc).pkt;
                if (tracer_->wants(pkt.id))
                    tracer_->instant("va", id_, pkt.id, now);
            }
        }
    }
}

void
Router::switchAllocate(Cycle now)
{
    if (!mask_alloc_) {
        switchAllocateWide(now);
        return;
    }
    const unsigned vcs = nvcs_;
    const unsigned n = numInputs() * vcs;
    // One contiguous pass over the state slab finds every ACTIVE VC
    // with a buffered flit (bit i = input VC i); the expensive per-flit
    // eligibility checks below only touch those bits.
    const VcState *st = slab_->inState.data() + in_base_;
    const std::uint32_t *cnt = slab_->ringCount.data() + in_base_;
    std::uint64_t cand = 0;
    for (unsigned i = 0; i < n; ++i) {
        if (st[i] == VcState::ACTIVE && cnt[i] != 0)
            cand |= std::uint64_t{1} << i;
    }
    if (cand == 0)
        return;

    // Input stage: each input port nominates one ready VC.
    auto &nominee = sa_nominee_;
    nominee.assign(numInputs(), vcs);
    std::fill(sa_out_mask_.begin(), sa_out_mask_.end(), 0);
    const std::uint64_t vc_mask =
        vcs >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << vcs) - 1;
    bool any_nominee = false;
    for (unsigned in = 0; in < numInputs(); ++in) {
        std::uint64_t req = (cand >> (in * vcs)) & vc_mask;
        if (req == 0)
            continue;
        auto &port = inputs_[in];
        std::uint64_t eligible = 0;
        for (std::uint64_t m = req; m != 0; m &= m - 1) {
            const unsigned vc =
                static_cast<unsigned>(std::countr_zero(m));
            const Flit &f = port.front(vc);
            // A flit spends `pipelineDepth` cycles in the router (it
            // departs no earlier than arrival + depth), giving the
            // paper's 5-cycle hops for 4-stage routers + 1-cycle
            // channels (Sec. III-B).
            if (f.enqueueCycle + params_.pipelineDepth > now)
                continue; // still in the router pipeline
            const unsigned o = port.outPort(vc);
            if (isEjection(o)) {
                tenoc_assert(sink_, "no ejection sink attached");
                if (!sink_->ejectReady(o - NUM_DIRS))
                    continue;
            } else {
                if (slab_->outCredits[ov(o, port.outVc(vc))] == 0)
                    continue;
            }
            eligible |= std::uint64_t{1} << vc;
        }
        if (eligible == 0)
            continue;
        unsigned win = vcs;
        if (params_.agePriority) {
            Cycle best = INVALID_CYCLE;
            for (std::uint64_t m = eligible; m != 0; m &= m - 1) {
                const unsigned vc =
                    static_cast<unsigned>(std::countr_zero(m));
                const Cycle age = packetAge(port.front(vc));
                if (win == vcs || age < best) {
                    best = age;
                    win = vc;
                }
            }
        } else {
            win = sa_input_arb_[in].grantMask(eligible);
        }
        nominee[in] = win;
        sa_out_mask_[port.outPort(win)] |= std::uint64_t{1} << in;
        any_nominee = true;
    }
    if (!any_nominee)
        return;

    // Output stage: one winner per output port.
    for (unsigned o = 0; o < numOutputs(); ++o) {
        const std::uint64_t reqs = sa_out_mask_[o];
        if (reqs == 0)
            continue;
        unsigned in = numInputs();
        if (params_.agePriority) {
            Cycle best = INVALID_CYCLE;
            for (std::uint64_t m = reqs; m != 0; m &= m - 1) {
                const unsigned c =
                    static_cast<unsigned>(std::countr_zero(m));
                const Cycle age = packetAge(inputs_[c].front(nominee[c]));
                if (in == numInputs() || age < best) {
                    best = age;
                    in = c;
                }
            }
        } else {
            in = outputs_[o].saArb.grantMask(reqs);
        }
        const unsigned vc = nominee[in];

        // Switch traversal.
        Flit flit = inputs_[in].pop(vc);
        const unsigned out_vc = inputs_[in].outVc(vc);
        const bool tail = flit.tail;
        if (!isInjection(in) && in_links_[in].creditOut)
            in_links_[in].creditOut->send(Credit{flit.vc}, now);
        if (tracer_ && flit.head && tracer_->wants(flit.pkt->id)) {
            tracer_->complete(isEjection(o) ? "eject_hop" : "hop", id_,
                              flit.pkt->id, flit.enqueueCycle, now);
        }
        flit.vc = out_vc;
        if (isEjection(o)) {
            sink_->ejectFlit(o - NUM_DIRS, std::move(flit), now);
        } else {
            auto &credits = slab_->outCredits[ov(o, out_vc)];
            tenoc_assert(credits > 0, "SA granted without credit");
            --credits;
            outputs_[o].flitOut->send(std::move(flit), now);
            ++link_flits_[o];
        }
        if (tail) {
            slab_->outOwned[ov(o, out_vc)] = 0;
            inputs_[in].setState(vc, VcState::IDLE);
        }
        ++flits_traversed_;
        if (net_traversed_)
            ++*net_traversed_;
        sa_input_arb_[in].accept(vc);
        outputs_[o].saArb.accept(in);
    }
}

void
Router::switchAllocateWide(Cycle now)
{
    const unsigned vcs = nvcs_;
    const unsigned n = numInputs() * vcs;
    // Contiguous-scan early-out: SA considers only active VCs with
    // buffered flits; with none present neither stage builds a request,
    // so no arbiter moves and no flit traverses — a no-op.
    {
        const VcState *st = slab_->inState.data() + in_base_;
        const std::uint32_t *cnt = slab_->ringCount.data() + in_base_;
        bool eligible = false;
        for (unsigned i = 0; i < n; ++i) {
            if (st[i] == VcState::ACTIVE && cnt[i] != 0) {
                eligible = true;
                break;
            }
        }
        if (!eligible)
            return;
    }
    // Input stage: each input port nominates one ready VC.  The
    // eligibility set lives in a word array so the arbiter grant is
    // O(words) (RoundRobinArbiter::grantWords), not an O(vcs) scan.
    auto &nominee = sa_nominee_;
    nominee.assign(numInputs(), vcs);
    std::fill(sa_out_words_.begin(), sa_out_words_.end(), 0);
    bool any_nominee = false;
    for (unsigned in = 0; in < numInputs(); ++in) {
        auto &port = inputs_[in];
        std::uint64_t *elig = sa_vc_words_.data();
        std::fill(sa_vc_words_.begin(), sa_vc_words_.end(), 0);
        bool any = false;
        for (unsigned vc = 0; vc < vcs; ++vc) {
            if (port.state(vc) != VcState::ACTIVE || port.empty(vc))
                continue;
            const Flit &f = port.front(vc);
            // A flit spends `pipelineDepth` cycles in the router (it
            // departs no earlier than arrival + depth), giving the
            // paper's 5-cycle hops for 4-stage routers + 1-cycle
            // channels (Sec. III-B).
            if (f.enqueueCycle + params_.pipelineDepth > now)
                continue; // still in the router pipeline
            const unsigned o = port.outPort(vc);
            if (isEjection(o)) {
                tenoc_assert(sink_, "no ejection sink attached");
                if (!sink_->ejectReady(o - NUM_DIRS))
                    continue;
            } else {
                if (slab_->outCredits[ov(o, port.outVc(vc))] == 0)
                    continue;
            }
            elig[vc >> 6] |= std::uint64_t{1} << (vc & 63);
            any = true;
        }
        if (!any)
            continue;
        unsigned win = vcs;
        if (params_.agePriority) {
            Cycle best = INVALID_CYCLE;
            for (unsigned w = 0; w < vc_words_; ++w) {
                for (std::uint64_t m = elig[w]; m != 0; m &= m - 1) {
                    const unsigned vc = w * 64 +
                        static_cast<unsigned>(std::countr_zero(m));
                    const Cycle age = packetAge(port.front(vc));
                    if (win == vcs || age < best) {
                        best = age;
                        win = vc;
                    }
                }
            }
        } else {
            win = sa_input_arb_[in].grantWords(elig, vc_words_);
        }
        nominee[in] = win;
        sa_out_words_[port.outPort(win) * in_words_ + (in >> 6)] |=
            std::uint64_t{1} << (in & 63);
        any_nominee = true;
    }
    if (!any_nominee)
        return;

    // Output stage: one winner per output port.
    for (unsigned o = 0; o < numOutputs(); ++o) {
        const std::uint64_t *reqs = sa_out_words_.data() + o * in_words_;
        std::uint64_t live = 0;
        for (unsigned w = 0; w < in_words_; ++w)
            live |= reqs[w];
        if (live == 0)
            continue;
        unsigned in = numInputs();
        if (params_.agePriority) {
            Cycle best = INVALID_CYCLE;
            for (unsigned w = 0; w < in_words_; ++w) {
                for (std::uint64_t m = reqs[w]; m != 0; m &= m - 1) {
                    const unsigned cand = w * 64 +
                        static_cast<unsigned>(std::countr_zero(m));
                    const Cycle age =
                        packetAge(inputs_[cand].front(nominee[cand]));
                    if (in == numInputs() || age < best) {
                        best = age;
                        in = cand;
                    }
                }
            }
        } else {
            in = outputs_[o].saArb.grantWords(reqs, in_words_);
        }
        if (in >= numInputs())
            continue;
        const unsigned vc = nominee[in];

        // Switch traversal.
        Flit flit = inputs_[in].pop(vc);
        const unsigned out_vc = inputs_[in].outVc(vc);
        const bool tail = flit.tail;
        if (!isInjection(in) && in_links_[in].creditOut)
            in_links_[in].creditOut->send(Credit{flit.vc}, now);
        if (tracer_ && flit.head && tracer_->wants(flit.pkt->id)) {
            tracer_->complete(isEjection(o) ? "eject_hop" : "hop", id_,
                              flit.pkt->id, flit.enqueueCycle, now);
        }
        flit.vc = out_vc;
        if (isEjection(o)) {
            sink_->ejectFlit(o - NUM_DIRS, std::move(flit), now);
        } else {
            auto &credits = slab_->outCredits[ov(o, out_vc)];
            tenoc_assert(credits > 0, "SA granted without credit");
            --credits;
            outputs_[o].flitOut->send(std::move(flit), now);
            ++link_flits_[o];
        }
        if (tail) {
            slab_->outOwned[ov(o, out_vc)] = 0;
            inputs_[in].setState(vc, VcState::IDLE);
        }
        ++flits_traversed_;
        if (net_traversed_)
            ++*net_traversed_;
        sa_input_arb_[in].accept(vc);
        outputs_[o].saArb.accept(in);
    }
}

bool
Router::empty() const
{
    for (const auto &p : inputs_)
        if (p.totalOccupancy() != 0)
            return false;
    return true;
}

bool
Router::couldWork() const
{
    if (arrival_sched_) {
        // Items merely in flight no longer hold the router awake: the
        // arrival scheduler wakes it on the delivery cycle, so only
        // buffered flits or matured, undrained arrivals count.
        return arrival_sched_->pending(arrival_idx_) != 0 || !empty();
    }
    if (!empty())
        return true;
    for (unsigned d = 0; d < NUM_DIRS; ++d) {
        if (in_links_[d].flitIn && !in_links_[d].flitIn->empty())
            return true;
        if (outputs_[d].creditIn && !outputs_[d].creditIn->empty())
            return true;
    }
    return false;
}

bool
Router::hasMaturedArrival(Cycle now) const
{
    // Clamp to the wheel's delivered-through horizon: an arrival due
    // at a cycle fire() has not yet been asked for is legitimately
    // still asleep, not a lost wake.
    if (arrival_sched_)
        now = std::min(now, arrival_sched_->firedThrough());
    for (unsigned d = 0; d < NUM_DIRS; ++d) {
        if (in_links_[d].flitIn &&
            in_links_[d].flitIn->earliestArrival() <= now)
            return true;
        if (outputs_[d].creditIn &&
            outputs_[d].creditIn->earliestArrival() <= now)
            return true;
    }
    return false;
}

std::uint64_t
Router::bufferedFlits() const
{
    std::uint64_t n = 0;
    for (const auto &p : inputs_)
        n += p.totalOccupancy();
    return n;
}

void
Router::save(SnapshotWriter &w) const
{
    w.tag("RTRS");
    for (const InputPort &in : inputs_)
        in.save(w);
    for (unsigned o = 0; o < numOutputs(); ++o) {
        for (unsigned vc = 0; vc < nvcs_; ++vc) {
            const std::size_t i = ov(o, vc);
            w.boolean(slab_->outOwned[i] != 0);
            w.u32(slab_->outOwnerIn[i]);
            w.u32(slab_->outOwnerVc[i]);
            w.u32(slab_->outCredits[i]);
        }
        w.u32(outputs_[o].vaArb.pointer());
        w.u32(outputs_[o].saArb.pointer());
    }
    for (const RoundRobinArbiter &arb : sa_input_arb_)
        w.u32(arb.pointer());
    w.u32(ej_rr_);
    w.u64(flits_traversed_);
    for (const std::uint64_t f : link_flits_)
        w.u64(f);
}

void
Router::restore(SnapshotReader &r)
{
    r.tag("RTRS");
    for (InputPort &in : inputs_) {
        in.restore(r);
        // The VC-class base cached by RC is derived state outside the
        // snapshot format; rebuild it for VCs awaiting allocation.
        for (unsigned vc = 0; vc < nvcs_; ++vc) {
            if (in.state(vc) == VcState::VC_ALLOC)
                in.setBaseVc(vc, params_.vcMap.baseVc(*in.front(vc).pkt));
        }
    }
    for (unsigned o = 0; o < numOutputs(); ++o) {
        for (unsigned vc = 0; vc < nvcs_; ++vc) {
            const std::size_t i = ov(o, vc);
            slab_->outOwned[i] = r.boolean() ? 1 : 0;
            slab_->outOwnerIn[i] = r.u32();
            slab_->outOwnerVc[i] = r.u32();
            slab_->outCredits[i] = r.u32();
        }
        outputs_[o].vaArb.setPointer(r.u32());
        outputs_[o].saArb.setPointer(r.u32());
    }
    for (RoundRobinArbiter &arb : sa_input_arb_)
        arb.setPointer(r.u32());
    ej_rr_ = r.u32();
    flits_traversed_ = r.u64();
    for (std::uint64_t &f : link_flits_)
        f = r.u64();
}

} // namespace tenoc
