/**
 * @file
 * Router implementation.
 */

#include "noc/router.hh"

#include "common/snapshot.hh"
#include "telemetry/trace_sink.hh"

namespace tenoc
{

Router::Router(NodeId id, const Topology &topo,
               RoutingAlgorithm &routing, const Params &params)
    : id_(id), topo_(topo), routing_(routing), params_(params)
{
    tenoc_assert(params_.numInjPorts >= 1 && params_.numEjPorts >= 1,
                 "router needs at least one injection/ejection port");
    const unsigned vcs = numVcs();
    inputs_.assign(numInputs(), InputPort(vcs, params_.vcDepth));
    outputs_.resize(numOutputs());
    in_links_.resize(NUM_DIRS);
    sa_input_arb_.assign(numInputs(), RoundRobinArbiter(vcs));
    va_requests_.resize(numInputs() * vcs);
    sa_vc_requests_.resize(vcs);
    sa_out_requests_.resize(numInputs());
    sa_nominee_.resize(numInputs());
    for (unsigned o = 0; o < numOutputs(); ++o) {
        outputs_[o].vcs.resize(vcs);
        outputs_[o].vaArb.resize(numInputs() * vcs);
        outputs_[o].saArb.resize(numInputs());
        if (isEjection(o)) {
            // Ejection capacity is governed by the NI sink, not
            // credits.
            for (auto &v : outputs_[o].vcs)
                v.credits = 0;
        }
    }
}

void
Router::connectOutput(Direction d, Channel<Flit> *flit_out,
                      Channel<Credit> *credit_in)
{
    tenoc_assert(d < NUM_DIRS, "invalid output direction");
    outputs_[d].flitOut = flit_out;
    outputs_[d].creditIn = credit_in;
    for (auto &v : outputs_[d].vcs)
        v.credits = params_.vcDepth;
}

void
Router::connectInput(Direction d, Channel<Flit> *flit_in,
                     Channel<Credit> *credit_out)
{
    tenoc_assert(d < NUM_DIRS, "invalid input direction");
    in_links_[d].flitIn = flit_in;
    in_links_[d].creditOut = credit_out;
}

unsigned
Router::injFreeSlots(unsigned inj, unsigned vc) const
{
    return inputs_[NUM_DIRS + inj].freeSlots(vc);
}

void
Router::injectFlit(unsigned inj, Flit &&flit, Cycle now)
{
    inputs_[NUM_DIRS + inj].push(std::move(flit), now);
    if (active_set_)
        active_set_->mark(active_idx_);
}

bool
Router::connectivityAllows(unsigned in, unsigned out) const
{
    if (isInjection(in))
        return true; // injection reaches every output
    if (isEjection(out))
        return true;             // every input reaches ejection
    if (!params_.half) {
        // Full crossbar; U-turns are legal (non-minimal schemes such
        // as Valiant may reverse direction at their waypoint).
        return true;
    }
    // Half-router: through traffic must continue straight (Fig. 13).
    return out == opposite(static_cast<Direction>(in));
}

void
Router::readInputs(Cycle now)
{
    for (unsigned d = 0; d < NUM_DIRS; ++d) {
        if (in_links_[d].flitIn) {
            while (auto f = in_links_[d].flitIn->receive(now))
                inputs_[d].push(std::move(*f), now);
        }
        if (outputs_[d].creditIn) {
            while (auto c = outputs_[d].creditIn->receive(now))
                ++outputs_[d].vcs[c->vc].credits;
        }
    }
}

void
Router::compute(Cycle now)
{
    routeCompute(now);
    vcAllocate(now);
    switchAllocate(now);
}

Cycle
Router::packetAge(const Flit &f)
{
    return f.pkt->injectedCycle != INVALID_CYCLE
        ? f.pkt->injectedCycle : f.pkt->createdCycle;
}

unsigned
Router::nextEjectionPort()
{
    const unsigned p = ej_rr_ % params_.numEjPorts;
    ++ej_rr_;
    return NUM_DIRS + p;
}

void
Router::routeCompute(Cycle now)
{
    (void)now;
    const unsigned vcs = numVcs();
    for (unsigned in = 0; in < numInputs(); ++in) {
        for (unsigned vc = 0; vc < vcs; ++vc) {
            auto &port = inputs_[in];
            if (port.state(vc) != VcState::IDLE || port.empty(vc))
                continue;
            const Flit &head = port.front(vc);
            tenoc_assert(head.head,
                         "non-head flit at front of idle VC (router ",
                         id_, " in ", in, " vc ", vc, ")");
            Packet &pkt = *head.pkt;
            unsigned out = routing_.route(id_, pkt);
            if (out == PORT_EJECT) {
                tenoc_assert(pkt.dst == id_,
                             "ejection at non-destination node");
                out = nextEjectionPort();
            } else {
                tenoc_assert(out < NUM_DIRS &&
                             topo_.neighbor(id_,
                                 static_cast<Direction>(out)) !=
                                 INVALID_NODE,
                             "route off mesh edge at node ", id_);
            }
            tenoc_assert(connectivityAllows(in, out),
                         "illegal turn at ", params_.half ? "half" :
                         "full", "-router ", id_, ": in=", dirName(in),
                         " out=", dirName(out));
            port.setOutPort(vc, out);
            port.setState(vc, VcState::VC_ALLOC);
        }
    }
}

void
Router::vcAllocate(Cycle now)
{
    const unsigned vcs = numVcs();
    auto &requests = va_requests_;
    for (unsigned o = 0; o < numOutputs(); ++o) {
        auto &out = outputs_[o];
        // Collect requestors targeting this output.
        requests.assign(numInputs() * vcs, false);
        bool any = false;
        for (unsigned in = 0; in < numInputs(); ++in) {
            for (unsigned vc = 0; vc < vcs; ++vc) {
                if (inputs_[in].state(vc) == VcState::VC_ALLOC &&
                    inputs_[in].outPort(vc) == o) {
                    requests[in * vcs + vc] = true;
                    any = true;
                }
            }
        }
        if (!any)
            continue;
        // Grant output VCs in round-robin requestor order until the
        // eligible VCs run out.
        while (true) {
            const unsigned idx = out.vaArb.grant(requests);
            if (idx >= requests.size())
                break;
            const unsigned in = idx / vcs;
            const unsigned vc = idx % vcs;
            const Packet &pkt = *inputs_[in].front(vc).pkt;
            const unsigned base = params_.vcMap.baseVc(pkt);
            unsigned granted = vcs;
            for (unsigned l = 0; l < params_.vcMap.vcsPerClass; ++l) {
                const unsigned cand = base + l;
                if (!out.vcs[cand].owned) {
                    granted = cand;
                    break;
                }
            }
            requests[idx] = false;
            if (granted == vcs) {
                // No eligible VC free; the requestor retries next
                // cycle.  Other requestors may still want different
                // (protocol/routing class) VCs.
                continue;
            }
            out.vcs[granted].owned = true;
            out.vcs[granted].ownerIn = in;
            out.vcs[granted].ownerVc = vc;
            inputs_[in].setOutVc(vc, granted);
            inputs_[in].setState(vc, VcState::ACTIVE);
            out.vaArb.accept(idx);
            if (tracer_ && tracer_->wants(pkt.id))
                tracer_->instant("va", id_, pkt.id, now);
        }
    }
}

void
Router::switchAllocate(Cycle now)
{
    const unsigned vcs = numVcs();
    // Input stage: each input port nominates one ready VC.
    auto &nominee = sa_nominee_;
    nominee.assign(numInputs(), vcs);
    auto &requests = sa_vc_requests_;
    for (unsigned in = 0; in < numInputs(); ++in) {
        requests.assign(vcs, false);
        bool any = false;
        for (unsigned vc = 0; vc < vcs; ++vc) {
            auto &port = inputs_[in];
            if (port.state(vc) != VcState::ACTIVE || port.empty(vc))
                continue;
            const Flit &f = port.front(vc);
            // A flit spends `pipelineDepth` cycles in the router (it
            // departs no earlier than arrival + depth), giving the
            // paper's 5-cycle hops for 4-stage routers + 1-cycle
            // channels (Sec. III-B).
            if (f.enqueueCycle + params_.pipelineDepth > now)
                continue; // still in the router pipeline
            const unsigned o = port.outPort(vc);
            if (isEjection(o)) {
                tenoc_assert(sink_, "no ejection sink attached");
                if (!sink_->ejectReady(o - NUM_DIRS))
                    continue;
            } else {
                if (outputs_[o].vcs[port.outVc(vc)].credits == 0)
                    continue;
            }
            requests[vc] = true;
            any = true;
        }
        if (!any)
            continue;
        if (params_.agePriority) {
            Cycle best = INVALID_CYCLE;
            for (unsigned vc = 0; vc < vcs; ++vc) {
                if (!requests[vc])
                    continue;
                const Cycle age = packetAge(inputs_[in].front(vc));
                if (nominee[in] == vcs || age < best) {
                    best = age;
                    nominee[in] = vc;
                }
            }
        } else {
            nominee[in] = sa_input_arb_[in].grant(requests);
        }
    }

    // Output stage: one winner per output port.
    auto &out_requests = sa_out_requests_;
    for (unsigned o = 0; o < numOutputs(); ++o) {
        out_requests.assign(numInputs(), false);
        bool any = false;
        for (unsigned in = 0; in < numInputs(); ++in) {
            if (nominee[in] < vcs &&
                inputs_[in].outPort(nominee[in]) == o) {
                out_requests[in] = true;
                any = true;
            }
        }
        if (!any)
            continue;
        unsigned in = numInputs();
        if (params_.agePriority) {
            Cycle best = INVALID_CYCLE;
            for (unsigned cand = 0; cand < numInputs(); ++cand) {
                if (!out_requests[cand])
                    continue;
                const Cycle age =
                    packetAge(inputs_[cand].front(nominee[cand]));
                if (in == numInputs() || age < best) {
                    best = age;
                    in = cand;
                }
            }
        } else {
            in = outputs_[o].saArb.grant(out_requests);
        }
        if (in >= numInputs())
            continue;
        const unsigned vc = nominee[in];

        // Switch traversal.
        Flit flit = inputs_[in].pop(vc);
        const unsigned out_vc = inputs_[in].outVc(vc);
        const bool tail = flit.tail;
        if (!isInjection(in) && in_links_[in].creditOut)
            in_links_[in].creditOut->send(Credit{flit.vc}, now);
        if (tracer_ && flit.head && tracer_->wants(flit.pkt->id)) {
            tracer_->complete(isEjection(o) ? "eject_hop" : "hop", id_,
                              flit.pkt->id, flit.enqueueCycle, now);
        }
        flit.vc = out_vc;
        if (isEjection(o)) {
            sink_->ejectFlit(o - NUM_DIRS, std::move(flit), now);
        } else {
            auto &ovc = outputs_[o].vcs[out_vc];
            tenoc_assert(ovc.credits > 0, "SA granted without credit");
            --ovc.credits;
            outputs_[o].flitOut->send(std::move(flit), now);
            ++link_flits_[o];
        }
        if (tail) {
            outputs_[o].vcs[out_vc].owned = false;
            inputs_[in].setState(vc, VcState::IDLE);
        }
        ++flits_traversed_;
        if (net_traversed_)
            ++*net_traversed_;
        sa_input_arb_[in].accept(vc);
        outputs_[o].saArb.accept(in);
    }
}

bool
Router::empty() const
{
    for (const auto &p : inputs_)
        if (p.totalOccupancy() != 0)
            return false;
    return true;
}

bool
Router::couldWork() const
{
    if (!empty())
        return true;
    for (unsigned d = 0; d < NUM_DIRS; ++d) {
        if (in_links_[d].flitIn && !in_links_[d].flitIn->empty())
            return true;
        if (outputs_[d].creditIn && !outputs_[d].creditIn->empty())
            return true;
    }
    return false;
}

std::uint64_t
Router::bufferedFlits() const
{
    std::uint64_t n = 0;
    for (const auto &p : inputs_)
        n += p.totalOccupancy();
    return n;
}

void
Router::save(SnapshotWriter &w) const
{
    w.tag("RTRS");
    for (const InputPort &in : inputs_)
        in.save(w);
    for (const OutputPort &out : outputs_) {
        for (const OutputVcState &vc : out.vcs) {
            w.boolean(vc.owned);
            w.u32(vc.ownerIn);
            w.u32(vc.ownerVc);
            w.u32(vc.credits);
        }
        w.u32(out.vaArb.pointer());
        w.u32(out.saArb.pointer());
    }
    for (const RoundRobinArbiter &arb : sa_input_arb_)
        w.u32(arb.pointer());
    w.u32(ej_rr_);
    w.u64(flits_traversed_);
    for (const std::uint64_t f : link_flits_)
        w.u64(f);
}

void
Router::restore(SnapshotReader &r)
{
    r.tag("RTRS");
    for (InputPort &in : inputs_)
        in.restore(r);
    for (OutputPort &out : outputs_) {
        for (OutputVcState &vc : out.vcs) {
            vc.owned = r.boolean();
            vc.ownerIn = r.u32();
            vc.ownerVc = r.u32();
            vc.credits = r.u32();
        }
        out.vaArb.setPointer(r.u32());
        out.saArb.setPointer(r.u32());
    }
    for (RoundRobinArbiter &arb : sa_input_arb_)
        arb.setPointer(r.u32());
    ej_rr_ = r.u32();
    flits_traversed_ = r.u64();
    for (std::uint64_t &f : link_flits_)
        f = r.u64();
}

} // namespace tenoc
