/**
 * @file
 * Open-loop harness implementation.
 */

#include "noc/openloop.hh"

#include <algorithm>
#include <memory>

#include "common/log.hh"
#include "noc/traffic.hh"
#include "telemetry/telemetry.hh"

namespace tenoc
{

OpenLoopResult
runOpenLoop(const OpenLoopParams &params)
{
    MeshNetworkParams net_params = params.net;
    net_params.seed = params.seed;
    // A genuine deadlock (routing bug, injected fault) would otherwise
    // sit silently until the bounded loop runs out; cap the watchdog
    // window at the drain budget so it fires — with a diagnostic
    // snapshot — before the run just peters out.
    if (net_params.watchdogWindow != 0 && params.drainCycles != 0) {
        net_params.watchdogWindow =
            std::min(net_params.watchdogWindow, params.drainCycles);
    }
    // The paper's open-loop runs use a single network with two logical
    // (request/reply) networks; keep whatever protoClasses the caller
    // configured.
    MeshNetwork net(net_params);
    const Topology &topo = net.topology();

    if (params.telemetry) {
        net.attachTelemetry(*params.telemetry);
        // Warmup cycles land in a dedicated leading interval row so no
        // measurement window mixes warmup and measured traffic.
        if (auto *sampler = params.telemetry->sampler())
            sampler->alignTo(params.warmupCycles);
    }

    // One independent stream per source: a node's Bernoulli draws and
    // destination picks depend only on (seed, node), never on how many
    // draws its neighbors happened to make.
    const std::uint64_t traffic_seed = params.seed ^ 0xfeedfaceULL;
    Rng shared_rng(traffic_seed);
    DestinationChooser dests(topo.mcNodes(), params.hotspotFraction);

    Accumulator req_lat("req_latency");
    Accumulator rep_lat("rep_latency");
    OpenLoopMeasure measure;

    std::vector<std::unique_ptr<Rng>> source_rngs;
    std::vector<std::unique_ptr<OpenLoopSource>> sources;
    std::vector<std::unique_ptr<McEchoSink>> mcs;
    std::vector<std::unique_ptr<CollectorSink>> cores;

    for (NodeId n : topo.computeNodes()) {
        Rng *rng = &shared_rng;
        if (!params.legacySharedRng) {
            source_rngs.push_back(std::make_unique<Rng>(
                deriveStreamSeed(traffic_seed, n)));
            rng = source_rngs.back().get();
        }
        sources.push_back(std::make_unique<OpenLoopSource>(
            n, params.injectionRate, params.requestFlits, dests, net,
            *rng));
        cores.push_back(
            std::make_unique<CollectorSink>(rep_lat, &measure));
        net.setSink(n, cores.back().get());
    }
    for (NodeId n : topo.mcNodes()) {
        mcs.push_back(std::make_unique<McEchoSink>(
            n, params.replyFlits, net, req_lat, &measure));
        net.setSink(n, mcs.back().get());
    }

    const Cycle measure_end = params.warmupCycles + params.measureCycles;
    const Cycle hard_end = measure_end + params.drainCycles;
    bool saturated = false;

    Cycle now = 0;
    for (; now < hard_end; ++now) {
        const bool measuring =
            now >= params.warmupCycles && now < measure_end;
        // Generation stops at the end of the measurement window so the
        // network can drain the tagged packets.
        if (now < measure_end) {
            for (auto &s : sources)
                s->cycle(now, measuring);
        }
        for (auto &m : mcs)
            m->cycle(now);
        net.cycle(now);
        if (params.telemetry)
            params.telemetry->tick(now);

        if (now == measure_end) {
            for (auto &s : sources) {
                if (s->queueDepth() > params.saturationQueue)
                    saturated = true;
            }
        }
    }
    if (params.telemetry)
        params.telemetry->finish(now);

    // If tagged traffic never fully drained we are far past saturation.
    for (auto &s : sources)
        if (s->queueDepth() > 0)
            saturated = true;
    for (auto &m : mcs)
        if (!m->idle())
            saturated = true;

    OpenLoopResult r;
    r.offeredLoad = params.injectionRate *
        static_cast<double>(params.requestFlits);
    // Accepted load counts only measurement-tagged deliveries — the
    // same population the latency accumulators sample — so warmup
    // stragglers draining after the window opens no longer inflate it.
    r.acceptedLoad = static_cast<double>(measure.taggedFlitsDelivered) /
        (static_cast<double>(params.measureCycles) * topo.numNodes());
    r.avgRequestLatency = req_lat.mean();
    r.avgReplyLatency = rep_lat.mean();
    const auto n_req = static_cast<double>(req_lat.count());
    const auto n_rep = static_cast<double>(rep_lat.count());
    r.avgLatency = (n_req + n_rep) > 0.0
        ? (req_lat.sum() + rep_lat.sum()) / (n_req + n_rep)
        : 0.0;
    r.p95Latency = net.stats().totalLatencyHist.percentile(0.95);
    if (r.avgLatency > params.saturationLatency)
        saturated = true;
    r.saturated = saturated;
    return r;
}

std::vector<OpenLoopResult>
sweepOpenLoop(OpenLoopParams params, double start, double step,
              double max_rate)
{
    tenoc_assert(step > 0.0, "sweep step must be positive");
    std::vector<OpenLoopResult> out;
    for (double rate = start; rate <= max_rate + 1e-12; rate += step) {
        params.injectionRate = rate;
        out.push_back(runOpenLoop(params));
        if (out.back().saturated)
            break;
    }
    return out;
}

} // namespace tenoc
