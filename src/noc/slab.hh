/**
 * @file
 * Structure-of-arrays storage for the mesh hot state.
 *
 * All per-(router, port, VC) state of one network lives in flat
 * parallel arrays owned by a single VcSlabs arena instead of
 * pointer-rich per-object storage:
 *
 *   - input-VC state machines: pipeline state, assigned output port,
 *     granted output VC — one contiguous array each, indexed by a
 *     global input-VC index (router's base + port * vcs + vc),
 *   - flit buffers: one ring of `vcDepth` slots per input VC, all
 *     rings packed back to back in one flit slab (ring i occupies
 *     slots [i*depth, (i+1)*depth)),
 *   - output-VC bookkeeping: owned flag, owning input (port, VC) and
 *     credit count, indexed by a global output-VC index.
 *
 * Routers receive contiguous index ranges in node order at network
 * construction, so the ActiveSet's ascending-index iteration streams
 * the arrays front to back and the parallel engine's shard boundaries
 * (contiguous node ranges) partition the slabs into disjoint
 * contiguous blocks.  Standalone routers (unit tests) own a private
 * arena with the same layout.
 *
 * The arena is pure storage: every state-machine transition still
 * happens in Router/InputPort code, so the refactor is invisible to
 * stats, snapshots and the invariant checker.
 */

#ifndef TENOC_NOC_SLAB_HH
#define TENOC_NOC_SLAB_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/log.hh"
#include "noc/flit.hh"

namespace tenoc
{

/** Pipeline state of one input virtual channel. */
enum class VcState : std::uint8_t
{
    IDLE,     ///< no packet being routed through this VC
    ROUTING,  ///< head flit buffered, awaiting route computation
    VC_ALLOC, ///< route known, awaiting an output VC
    ACTIVE    ///< output VC held; flits may traverse the switch
};

/** SoA arena for one network's router/VC/flit hot state. */
class VcSlabs
{
  public:
    VcSlabs() = default;

    /**
     * Allocates (or re-initializes, reusing capacity) storage for
     * `input_vcs` input VCs with `depth`-flit rings and `output_vcs`
     * output VCs.  All state resets to IDLE/unowned/zero-credit.
     */
    void
    configure(std::size_t input_vcs, std::size_t output_vcs,
              unsigned depth)
    {
        tenoc_assert(depth >= 1, "slab ring depth must be >= 1");
        depth_ = depth;
        inState.assign(input_vcs, VcState::IDLE);
        inOutPort.assign(input_vcs, 0);
        inOutVc.assign(input_vcs, 0);
        inBaseVc.assign(input_vcs, 0);
        ringHead.assign(input_vcs, 0);
        ringCount.assign(input_vcs, 0);
        // Rings of a re-used arena may still hold flits (and thus
        // packet references) from the previous configuration; assign()
        // on the vector releases them.
        flits.assign(input_vcs * depth, Flit{});
        outOwned.assign(output_vcs, 0);
        outOwnerIn.assign(output_vcs, 0);
        outOwnerVc.assign(output_vcs, 0);
        outCredits.assign(output_vcs, 0);
    }

    unsigned depth() const { return depth_; }
    std::size_t numInputVcs() const { return inState.size(); }
    std::size_t numOutputVcs() const { return outOwned.size(); }

    /**
     * Arms out-of-range index checking on the ring operations (the
     * state arrays are accessed through already-checked ring indices).
     * Wired to MeshNetworkParams::validate / TENOC_VALIDATE=1.
     */
    void setValidate(bool on) { validate_ = on; }
    bool validate() const { return validate_; }

    // --- flit rings (index = global input-VC index) ---

    /** Appends a flit to ring `vc_idx`; panics on overflow (a credit
     *  protocol violation). */
    void
    pushFlit(std::size_t vc_idx, Flit &&flit)
    {
        if (validate_) {
            tenoc_assert(vc_idx < ringCount.size(),
                         "slab input-VC index ", vc_idx,
                         " out of range ", ringCount.size());
        }
        const std::uint32_t count = ringCount[vc_idx];
        tenoc_assert(count < depth_,
                     "VC buffer overflow (credit protocol violated),"
                     " slab vc index=", vc_idx);
        std::size_t pos = ringHead[vc_idx] + count;
        if (pos >= depth_)
            pos -= depth_;
        flits[vc_idx * depth_ + pos] = std::move(flit);
        ringCount[vc_idx] = count + 1;
    }

    /** Removes and returns the head flit of ring `vc_idx`. */
    Flit
    popFlit(std::size_t vc_idx)
    {
        if (validate_) {
            tenoc_assert(vc_idx < ringCount.size(),
                         "slab input-VC index ", vc_idx,
                         " out of range ", ringCount.size());
        }
        tenoc_assert(ringCount[vc_idx] != 0, "pop() on empty VC");
        const std::uint32_t head = ringHead[vc_idx];
        Flit f = std::move(flits[vc_idx * depth_ + head]);
        ringHead[vc_idx] = head + 1 == depth_ ? 0 : head + 1;
        --ringCount[vc_idx];
        return f;
    }

    /** Head flit of ring `vc_idx` (must be non-empty). */
    const Flit &
    frontFlit(std::size_t vc_idx) const
    {
        tenoc_assert(ringCount[vc_idx] != 0, "front() on empty VC");
        return flits[vc_idx * depth_ + ringHead[vc_idx]];
    }

    /** Calls f(flit) for each flit of ring `vc_idx`, head first. */
    template <typename F>
    void
    forEachRingFlit(std::size_t vc_idx, F &&f) const
    {
        const std::size_t base = vc_idx * depth_;
        std::size_t pos = ringHead[vc_idx];
        for (std::uint32_t i = 0; i < ringCount[vc_idx]; ++i) {
            f(flits[base + pos]);
            if (++pos == depth_)
                pos = 0;
        }
    }

    /** Overwrites ring slot `i` (0 = head) of `vc_idx` directly;
     *  restore-path helper (checkpoint). */
    void
    setRingSlot(std::size_t vc_idx, std::uint32_t i, Flit &&flit)
    {
        std::size_t pos = ringHead[vc_idx] + i;
        while (pos >= depth_)
            pos -= depth_;
        flits[vc_idx * depth_ + pos] = std::move(flit);
    }

    // --- input-VC state machines ---
    std::vector<VcState> inState;
    std::vector<std::uint32_t> inOutPort; ///< RC-assigned output port
    std::vector<std::uint32_t> inOutVc;   ///< VA-granted output VC
    /// First eligible output VC of the head packet, cached by RC so VA
    /// never dereferences the packet.  Derived state: reconstructed on
    /// checkpoint restore, not part of the snapshot format.
    std::vector<std::uint32_t> inBaseVc;

    // --- output-VC bookkeeping ---
    std::vector<std::uint8_t> outOwned;
    std::vector<std::uint32_t> outOwnerIn;
    std::vector<std::uint32_t> outOwnerVc;
    std::vector<std::uint32_t> outCredits;

    // --- flit rings ---
    std::vector<std::uint32_t> ringHead;
    std::vector<std::uint32_t> ringCount;
    std::vector<Flit> flits;

  private:
    unsigned depth_ = 1;
    bool validate_ = false;
};

/**
 * SoA arena for one network's NI hot state, mirroring VcSlabs: all
 * per-NI injection class queues, per-(port, VC) active-packet slots
 * and per-port ejection buffers live in flat parallel arrays indexed
 * in node order, replacing the per-object std::deque storage.  Every
 * container is a fixed-capacity ring (the NI protocol already bounds
 * class queues by injQueueCap and ejection ports by ejBufferFlits),
 * so the steady state touches no heap.  Injection-port and
 * ejection-port counts vary per node (multi-port MC routers), hence
 * the per-NI base offsets.  Standalone NIs (unit tests) own a private
 * arena with the same layout.
 */
class NiSlabs
{
  public:
    NiSlabs() = default;

    /**
     * Allocates (or re-initializes) storage for one NI per entry of
     * `inj_ports`/`ej_ports`: `classes` class queues of `inj_cap`
     * packets each, inj_ports[n] * `vcs` active slots, and ej_ports[n]
     * ejection rings of `ej_cap` flits.
     */
    void
    configure(const std::vector<unsigned> &inj_ports, unsigned vcs,
              unsigned classes, unsigned inj_cap,
              const std::vector<unsigned> &ej_ports, unsigned ej_cap)
    {
        tenoc_assert(inj_ports.size() == ej_ports.size(),
                     "NI slab port-count vectors disagree");
        tenoc_assert(classes >= 1 && inj_cap >= 1 && ej_cap >= 1,
                     "NI slab capacities must be >= 1");
        const std::size_t nis = inj_ports.size();
        classes_ = classes;
        inj_cap_ = inj_cap;
        ej_cap_ = ej_cap;
        slotBase.resize(nis);
        ejPortBase.resize(nis);
        std::size_t slots = 0, eports = 0;
        for (std::size_t n = 0; n < nis; ++n) {
            slotBase[n] = slots;
            ejPortBase[n] = eports;
            slots += std::size_t{inj_ports[n]} * vcs;
            eports += ej_ports[n];
        }
        pendingInject.assign(nis, 0);
        ejOccupancy.assign(nis, 0);
        const std::size_t queues = nis * classes;
        injQHead.assign(queues, 0);
        injQCount.assign(queues, 0);
        // assign() releases packet references a re-used arena may
        // still hold from its previous configuration.
        injQ.assign(queues * inj_cap, PacketPtr{});
        actValid.assign(slots, 0);
        actNext.assign(slots, 0);
        actPkt.assign(slots, PacketPtr{});
        actFlits.assign(slots, std::vector<Flit>{});
        ejHead.assign(eports, 0);
        ejCount.assign(eports, 0);
        ejFlits.assign(eports * ej_cap, Flit{});
    }

    unsigned classes() const { return classes_; }
    unsigned injCap() const { return inj_cap_; }
    unsigned ejCap() const { return ej_cap_; }

    // --- injection class queues (index = ni * classes + class) ---

    std::uint32_t qSize(std::size_t q) const { return injQCount[q]; }

    void
    qPush(std::size_t q, PacketPtr &&pkt)
    {
        const std::uint32_t count = injQCount[q];
        tenoc_assert(count < inj_cap_, "NI slab class-queue overflow");
        std::size_t pos = injQHead[q] + count;
        if (pos >= inj_cap_)
            pos -= inj_cap_;
        injQ[q * inj_cap_ + pos] = std::move(pkt);
        injQCount[q] = count + 1;
    }

    const PacketPtr &
    qFront(std::size_t q) const
    {
        tenoc_assert(injQCount[q] != 0, "front() on empty class queue");
        return injQ[q * inj_cap_ + injQHead[q]];
    }

    PacketPtr
    qPop(std::size_t q)
    {
        tenoc_assert(injQCount[q] != 0, "pop() on empty class queue");
        const std::uint32_t head = injQHead[q];
        PacketPtr p = std::move(injQ[q * inj_cap_ + head]);
        injQHead[q] = head + 1 == inj_cap_ ? 0 : head + 1;
        --injQCount[q];
        return p;
    }

    /** Calls f(pkt) for each queued packet of queue `q`, FIFO order. */
    template <typename F>
    void
    forEachQueued(std::size_t q, F &&f) const
    {
        const std::size_t base = q * inj_cap_;
        std::size_t pos = injQHead[q];
        for (std::uint32_t i = 0; i < injQCount[q]; ++i) {
            f(injQ[base + pos]);
            if (++pos == inj_cap_)
                pos = 0;
        }
    }

    // --- ejection rings (index = ejPortBase[ni] + port) ---

    std::uint32_t ejSize(std::size_t p) const { return ejCount[p]; }

    void
    ejPush(std::size_t p, Flit &&flit)
    {
        const std::uint32_t count = ejCount[p];
        tenoc_assert(count < ej_cap_, "NI slab ejection-ring overflow");
        std::size_t pos = ejHead[p] + count;
        if (pos >= ej_cap_)
            pos -= ej_cap_;
        ejFlits[p * ej_cap_ + pos] = std::move(flit);
        ejCount[p] = count + 1;
    }

    const Flit &
    ejFront(std::size_t p) const
    {
        tenoc_assert(ejCount[p] != 0, "front() on empty ejection ring");
        return ejFlits[p * ej_cap_ + ejHead[p]];
    }

    Flit
    ejPop(std::size_t p)
    {
        tenoc_assert(ejCount[p] != 0, "pop() on empty ejection ring");
        const std::uint32_t head = ejHead[p];
        Flit f = std::move(ejFlits[p * ej_cap_ + head]);
        ejHead[p] = head + 1 == ej_cap_ ? 0 : head + 1;
        --ejCount[p];
        return f;
    }

    /** Calls f(flit) for each buffered flit of ring `p`, FIFO order. */
    template <typename F>
    void
    forEachEjFlit(std::size_t p, F &&f) const
    {
        const std::size_t base = p * ej_cap_;
        std::size_t pos = ejHead[p];
        for (std::uint32_t i = 0; i < ejCount[p]; ++i) {
            f(ejFlits[base + pos]);
            if (++pos == ej_cap_)
                pos = 0;
        }
    }

    // --- per-NI counters (contiguous early-out scans) ---
    /// Packets queued or mid-injection at each NI.
    std::vector<std::uint32_t> pendingInject;
    /// Flits buffered across each NI's ejection ports.
    std::vector<std::uint32_t> ejOccupancy;

    // --- per-NI base offsets ---
    /// First active-slot index of each NI (slots = port * vcs + vc).
    std::vector<std::size_t> slotBase;
    /// First ejection-ring index of each NI.
    std::vector<std::size_t> ejPortBase;

    // --- active packet slots (index = slotBase[ni] + port*vcs + vc) ---
    std::vector<std::uint8_t> actValid;
    std::vector<std::uint32_t> actNext;
    std::vector<PacketPtr> actPkt;
    /// Flitized packet; cleared (capacity kept) when the slot frees.
    std::vector<std::vector<Flit>> actFlits;

    // --- injection class-queue rings ---
    std::vector<std::uint32_t> injQHead;
    std::vector<std::uint32_t> injQCount;
    std::vector<PacketPtr> injQ;

    // --- ejection rings ---
    std::vector<std::uint32_t> ejHead;
    std::vector<std::uint32_t> ejCount;
    std::vector<Flit> ejFlits;

  private:
    unsigned classes_ = 1;
    unsigned inj_cap_ = 1;
    unsigned ej_cap_ = 1;
};

} // namespace tenoc

#endif // TENOC_NOC_SLAB_HH
