/**
 * @file
 * Structure-of-arrays storage for the mesh hot state.
 *
 * All per-(router, port, VC) state of one network lives in flat
 * parallel arrays owned by a single VcSlabs arena instead of
 * pointer-rich per-object storage:
 *
 *   - input-VC state machines: pipeline state, assigned output port,
 *     granted output VC — one contiguous array each, indexed by a
 *     global input-VC index (router's base + port * vcs + vc),
 *   - flit buffers: one ring of `vcDepth` slots per input VC, all
 *     rings packed back to back in one flit slab (ring i occupies
 *     slots [i*depth, (i+1)*depth)),
 *   - output-VC bookkeeping: owned flag, owning input (port, VC) and
 *     credit count, indexed by a global output-VC index.
 *
 * Routers receive contiguous index ranges in node order at network
 * construction, so the ActiveSet's ascending-index iteration streams
 * the arrays front to back and the parallel engine's shard boundaries
 * (contiguous node ranges) partition the slabs into disjoint
 * contiguous blocks.  Standalone routers (unit tests) own a private
 * arena with the same layout.
 *
 * The arena is pure storage: every state-machine transition still
 * happens in Router/InputPort code, so the refactor is invisible to
 * stats, snapshots and the invariant checker.
 */

#ifndef TENOC_NOC_SLAB_HH
#define TENOC_NOC_SLAB_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/log.hh"
#include "noc/flit.hh"

namespace tenoc
{

/** Pipeline state of one input virtual channel. */
enum class VcState : std::uint8_t
{
    IDLE,     ///< no packet being routed through this VC
    ROUTING,  ///< head flit buffered, awaiting route computation
    VC_ALLOC, ///< route known, awaiting an output VC
    ACTIVE    ///< output VC held; flits may traverse the switch
};

/** SoA arena for one network's router/VC/flit hot state. */
class VcSlabs
{
  public:
    VcSlabs() = default;

    /**
     * Allocates (or re-initializes, reusing capacity) storage for
     * `input_vcs` input VCs with `depth`-flit rings and `output_vcs`
     * output VCs.  All state resets to IDLE/unowned/zero-credit.
     */
    void
    configure(std::size_t input_vcs, std::size_t output_vcs,
              unsigned depth)
    {
        tenoc_assert(depth >= 1, "slab ring depth must be >= 1");
        depth_ = depth;
        inState.assign(input_vcs, VcState::IDLE);
        inOutPort.assign(input_vcs, 0);
        inOutVc.assign(input_vcs, 0);
        inBaseVc.assign(input_vcs, 0);
        ringHead.assign(input_vcs, 0);
        ringCount.assign(input_vcs, 0);
        // Rings of a re-used arena may still hold flits (and thus
        // packet references) from the previous configuration; assign()
        // on the vector releases them.
        flits.assign(input_vcs * depth, Flit{});
        outOwned.assign(output_vcs, 0);
        outOwnerIn.assign(output_vcs, 0);
        outOwnerVc.assign(output_vcs, 0);
        outCredits.assign(output_vcs, 0);
    }

    unsigned depth() const { return depth_; }
    std::size_t numInputVcs() const { return inState.size(); }
    std::size_t numOutputVcs() const { return outOwned.size(); }

    /**
     * Arms out-of-range index checking on the ring operations (the
     * state arrays are accessed through already-checked ring indices).
     * Wired to MeshNetworkParams::validate / TENOC_VALIDATE=1.
     */
    void setValidate(bool on) { validate_ = on; }
    bool validate() const { return validate_; }

    // --- flit rings (index = global input-VC index) ---

    /** Appends a flit to ring `vc_idx`; panics on overflow (a credit
     *  protocol violation). */
    void
    pushFlit(std::size_t vc_idx, Flit &&flit)
    {
        if (validate_) {
            tenoc_assert(vc_idx < ringCount.size(),
                         "slab input-VC index ", vc_idx,
                         " out of range ", ringCount.size());
        }
        const std::uint32_t count = ringCount[vc_idx];
        tenoc_assert(count < depth_,
                     "VC buffer overflow (credit protocol violated),"
                     " slab vc index=", vc_idx);
        std::size_t pos = ringHead[vc_idx] + count;
        if (pos >= depth_)
            pos -= depth_;
        flits[vc_idx * depth_ + pos] = std::move(flit);
        ringCount[vc_idx] = count + 1;
    }

    /** Removes and returns the head flit of ring `vc_idx`. */
    Flit
    popFlit(std::size_t vc_idx)
    {
        if (validate_) {
            tenoc_assert(vc_idx < ringCount.size(),
                         "slab input-VC index ", vc_idx,
                         " out of range ", ringCount.size());
        }
        tenoc_assert(ringCount[vc_idx] != 0, "pop() on empty VC");
        const std::uint32_t head = ringHead[vc_idx];
        Flit f = std::move(flits[vc_idx * depth_ + head]);
        ringHead[vc_idx] = head + 1 == depth_ ? 0 : head + 1;
        --ringCount[vc_idx];
        return f;
    }

    /** Head flit of ring `vc_idx` (must be non-empty). */
    const Flit &
    frontFlit(std::size_t vc_idx) const
    {
        tenoc_assert(ringCount[vc_idx] != 0, "front() on empty VC");
        return flits[vc_idx * depth_ + ringHead[vc_idx]];
    }

    /** Calls f(flit) for each flit of ring `vc_idx`, head first. */
    template <typename F>
    void
    forEachRingFlit(std::size_t vc_idx, F &&f) const
    {
        const std::size_t base = vc_idx * depth_;
        std::size_t pos = ringHead[vc_idx];
        for (std::uint32_t i = 0; i < ringCount[vc_idx]; ++i) {
            f(flits[base + pos]);
            if (++pos == depth_)
                pos = 0;
        }
    }

    /** Overwrites ring slot `i` (0 = head) of `vc_idx` directly;
     *  restore-path helper (checkpoint). */
    void
    setRingSlot(std::size_t vc_idx, std::uint32_t i, Flit &&flit)
    {
        std::size_t pos = ringHead[vc_idx] + i;
        while (pos >= depth_)
            pos -= depth_;
        flits[vc_idx * depth_ + pos] = std::move(flit);
    }

    // --- input-VC state machines ---
    std::vector<VcState> inState;
    std::vector<std::uint32_t> inOutPort; ///< RC-assigned output port
    std::vector<std::uint32_t> inOutVc;   ///< VA-granted output VC
    /// First eligible output VC of the head packet, cached by RC so VA
    /// never dereferences the packet.  Derived state: reconstructed on
    /// checkpoint restore, not part of the snapshot format.
    std::vector<std::uint32_t> inBaseVc;

    // --- output-VC bookkeeping ---
    std::vector<std::uint8_t> outOwned;
    std::vector<std::uint32_t> outOwnerIn;
    std::vector<std::uint32_t> outOwnerVc;
    std::vector<std::uint32_t> outCredits;

    // --- flit rings ---
    std::vector<std::uint32_t> ringHead;
    std::vector<std::uint32_t> ringCount;
    std::vector<Flit> flits;

  private:
    unsigned depth_ = 1;
    bool validate_ = false;
};

} // namespace tenoc

#endif // TENOC_NOC_SLAB_HH
