/**
 * @file
 * Oblivious routing algorithms: dimension-order (XY / YX) and the
 * paper's checkerboard routing (CR, Sec. IV-B).
 *
 * CR selects, per packet at injection time:
 *  - XY when the XY turn node is a full router,
 *  - else YX when the YX turn node is a full router (one header bit),
 *  - else a two-phase route: YX to a random intermediate *full* router
 *    inside the minimal quadrant (not in the source row, an even number
 *    of columns from the source), then XY to the destination.  The
 *    checkerboard parity guarantees both phases turn only at full
 *    routers.
 *
 * Each leg class (XY vs YX) uses its own virtual-channel class, as in
 * O1Turn, which together with the YX->XY phase ordering keeps the
 * algorithm deadlock-free.
 */

#ifndef TENOC_NOC_ROUTING_HH
#define TENOC_NOC_ROUTING_HH

#include <memory>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "noc/flit.hh"
#include "noc/topology.hh"

namespace tenoc
{

/** Abstract per-hop routing function. */
class RoutingAlgorithm
{
  public:
    explicit RoutingAlgorithm(const Topology &topo) : topo_(topo) {}
    virtual ~RoutingAlgorithm() = default;

    virtual const char *name() const = 0;

    /** Number of routing VC classes required (1 for DOR, 2 for CR). */
    virtual unsigned numRouteClasses() const = 0;

    /**
     * Chooses the packet's route mode (and waypoint, for CR) at
     * injection time.  Must be called exactly once per packet.
     */
    virtual void initPacket(Packet &pkt, Rng &rng) const = 0;

    /**
     * Computes the output direction at node `cur` for the head flit of
     * `pkt`.  Returns a Direction, or PORT_EJECT on arrival.  For
     * two-phase packets this advances pkt.phase2 when the waypoint is
     * reached.
     */
    virtual unsigned route(NodeId cur, Packet &pkt) const = 0;

    const Topology &topology() const { return topo_; }

  protected:
    /** Dimension-order step toward `target` (x_first selects XY/YX). */
    unsigned dorStep(NodeId cur, NodeId target, bool x_first) const;

    const Topology &topo_;
};

/** Plain dimension-order routing (Table III baseline, "DOR"). */
class DorRouting : public RoutingAlgorithm
{
  public:
    /**
     * @param topo topology
     * @param x_first true for XY order, false for YX
     */
    DorRouting(const Topology &topo, bool x_first = true)
        : RoutingAlgorithm(topo), x_first_(x_first)
    {}

    const char *name() const override { return x_first_ ? "XY" : "YX"; }
    unsigned numRouteClasses() const override { return 1; }
    void initPacket(Packet &pkt, Rng &rng) const override;
    unsigned route(NodeId cur, Packet &pkt) const override;

  private:
    bool x_first_;
};

/** Checkerboard routing (Sec. IV-B). */
class CheckerboardRouting : public RoutingAlgorithm
{
  public:
    explicit CheckerboardRouting(const Topology &topo);

    const char *name() const override { return "CR"; }
    unsigned numRouteClasses() const override { return 2; }
    void initPacket(Packet &pkt, Rng &rng) const override;
    unsigned route(NodeId cur, Packet &pkt) const override;

    /**
     * Enumerates the legal intermediate full routers for a two-phase
     * route (exposed for tests).
     */
    std::vector<NodeId> twoPhaseCandidates(NodeId src, NodeId dst) const;

    /** @return true if a turn is possible at `n` (i.e. full router). */
    bool canTurnAt(NodeId n) const { return !topo_.isHalfRouter(n); }
};

/**
 * O1Turn routing (Seo et al., cited as [42]): each packet picks XY or
 * YX uniformly at random, using one VC class per orientation.  Near-
 * optimal worst-case throughput on meshes; requires full routers
 * everywhere (packets may turn anywhere).
 */
class O1TurnRouting : public RoutingAlgorithm
{
  public:
    explicit O1TurnRouting(const Topology &topo);

    const char *name() const override { return "O1TURN"; }
    unsigned numRouteClasses() const override { return 2; }
    void initPacket(Packet &pkt, Rng &rng) const override;
    unsigned route(NodeId cur, Packet &pkt) const override;
};

/**
 * Two-phase ROMM (Nesson & Johnsson, cited as [34]): route XY to a
 * uniformly random intermediate node inside the minimal quadrant,
 * then XY to the destination.  Minimal; the phase index provides the
 * two VC classes.  Checkerboard routing is the paper's half-router-
 * aware refinement of this scheme (Sec. VI).
 */
class RommRouting : public RoutingAlgorithm
{
  public:
    explicit RommRouting(const Topology &topo);

    const char *name() const override { return "ROMM"; }
    unsigned numRouteClasses() const override { return 2; }
    void initPacket(Packet &pkt, Rng &rng) const override;
    unsigned route(NodeId cur, Packet &pkt) const override;
};

/**
 * Valiant routing (cited as [45]): route XY to a uniformly random
 * intermediate node anywhere in the mesh, then XY to the destination.
 * Non-minimal; trades locality for worst-case load balance.  Unlike
 * the paper's footnote-5 strawman, packets turn at the intermediate
 * router without being ejected and reinjected.
 */
class ValiantRouting : public RoutingAlgorithm
{
  public:
    explicit ValiantRouting(const Topology &topo);

    const char *name() const override { return "VALIANT"; }
    unsigned numRouteClasses() const override { return 2; }
    void initPacket(Packet &pkt, Rng &rng) const override;
    unsigned route(NodeId cur, Packet &pkt) const override;
};

/**
 * Dimension-order torus routing with dateline virtual-channel classes.
 *
 * Each hop travels the shortest way around the current ring (ties at
 * exactly half the ring prefer EAST / SOUTH so both copies of a
 * minimal route agree).  Deadlock freedom: a packet starts each ring
 * leg in route class 0 and switches to class 1 at the moment its next
 * hop uses the ring's wrap link (route() flips pkt.dateline *before*
 * returning, and RC derives the outgoing VC class after route(), so
 * the wrap link itself already carries class 1).  Class 0 therefore
 * never uses a wrap link, breaking the ring's channel cycle; a class-1
 * packet has at most floor(dim/2) - 1 hops left in its ring and can
 * never reach the wrap link again, so class 1 is acyclic too.
 * Dimension order (X then Y, or Y then X) rules out cross-dimension
 * cycles, and the dateline state resets when the leg changes
 * dimension (tracked in pkt.ringDim).
 */
class TorusRouting : public RoutingAlgorithm
{
  public:
    /**
     * @param topo torus topology (fatal on a mesh)
     * @param x_first true for X-then-Y order, false for Y-then-X
     */
    TorusRouting(const Topology &topo, bool x_first = true);

    const char *
    name() const override
    {
        return x_first_ ? "TORUS_XY" : "TORUS_YX";
    }
    unsigned numRouteClasses() const override { return 2; }
    void initPacket(Packet &pkt, Rng &rng) const override;
    unsigned route(NodeId cur, Packet &pkt) const override;

    /**
     * Direction of travel from ring coordinate `c` toward `t` on a
     * ring of `size` nodes: the shorter way around, preferring the
     * positive direction (EAST / SOUTH) on an exact tie.  `x_dim`
     * selects E/W vs S/N naming.  Exposed so the golden model can
     * replicate the tie-break exactly.
     */
    static Direction ringDirection(unsigned c, unsigned t, unsigned size,
                                   bool x_dim);

  private:
    bool x_first_;
};

/**
 * Creates a routing algorithm by name: "xy", "yx", "cr"
 * (checkerboard), "o1turn", "romm", or "valiant".  On a torus topology
 * "xy"/"yx" resolve to TorusRouting (dateline dimension-order); the
 * mesh-only schemes (cr, o1turn, romm, valiant) are fatal there.
 */
std::unique_ptr<RoutingAlgorithm> makeRouting(const std::string &name,
                                              const Topology &topo);

} // namespace tenoc

#endif // TENOC_NOC_ROUTING_HH
