/**
 * @file
 * Virtual-channel organization.
 *
 * VCs are partitioned first by protocol class (request vs reply, for
 * protocol-deadlock avoidance on a shared physical network), then by
 * routing class (XY vs YX legs under checkerboard routing), then into
 * `vcsPerClass` interchangeable lanes:
 *
 *   vc = ((protoClass * routeClasses) + routeClass) * vcsPerClass + lane
 *
 * Examples from the paper:
 *  - baseline single net, DOR:        2 proto x 1 route x 1 = 2 VCs
 *  - CP DOR 4VC (Fig. 17):            2 proto x 1 route x 2 = 4 VCs
 *  - CP CR 4VC (Fig. 17):             2 proto x 2 route x 1 = 4 VCs
 *  - dedicated double network w/ CR:  1 proto x 2 route x 1 = 2 VCs
 */

#ifndef TENOC_NOC_VC_MAP_HH
#define TENOC_NOC_VC_MAP_HH

#include "common/log.hh"
#include "noc/flit.hh"

namespace tenoc
{

/** Mapping between (protocol, routing) classes and VC indices. */
struct VcMap
{
    unsigned protoClasses = 2;
    unsigned routeClasses = 1;
    unsigned vcsPerClass = 1;

    unsigned numVcs() const
    {
        return protoClasses * routeClasses * vcsPerClass;
    }

    /** First VC index eligible for a packet in its current leg. */
    unsigned
    baseVc(const Packet &pkt) const
    {
        const unsigned proto =
            static_cast<unsigned>(pkt.protoClass) % protoClasses;
        const unsigned route =
            static_cast<unsigned>(pkt.routeClass()) % routeClasses;
        return (proto * routeClasses + route) * vcsPerClass;
    }
};

} // namespace tenoc

#endif // TENOC_NOC_VC_MAP_HH
