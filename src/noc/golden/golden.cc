/**
 * @file
 * Golden reference model implementation.
 */

#include "noc/golden/golden.hh"

#include <algorithm>
#include <sstream>

#include "common/log.hh"

namespace tenoc
{

GoldenModel::GoldenModel(const Topology &topo,
                         const MeshNetworkParams &params)
    : topo_(topo), params_(params)
{}

void
GoldenModel::appendDorLeg(NodeId from, NodeId to, bool x_first,
                          std::vector<NodeId> &out) const
{
    unsigned cx = topo_.xOf(from);
    unsigned cy = topo_.yOf(from);
    const unsigned tx = topo_.xOf(to);
    const unsigned ty = topo_.yOf(to);

    if (x_first) {
        while (cx != tx) {
            cx = cx < tx ? cx + 1 : cx - 1;
            out.push_back(topo_.nodeAt(cx, cy));
        }
        while (cy != ty) {
            cy = cy < ty ? cy + 1 : cy - 1;
            out.push_back(topo_.nodeAt(cx, cy));
        }
    } else {
        while (cy != ty) {
            cy = cy < ty ? cy + 1 : cy - 1;
            out.push_back(topo_.nodeAt(cx, cy));
        }
        while (cx != tx) {
            cx = cx < tx ? cx + 1 : cx - 1;
            out.push_back(topo_.nodeAt(cx, cy));
        }
    }
}

void
GoldenModel::appendTorusLeg(NodeId from, NodeId to, bool x_first,
                            std::vector<NodeId> &out) const
{
    unsigned cx = topo_.xOf(from);
    unsigned cy = topo_.yOf(from);
    const unsigned tx = topo_.xOf(to);
    const unsigned ty = topo_.yOf(to);
    const unsigned cols = topo_.cols();
    const unsigned rows = topo_.rows();

    auto walk_x = [&]() {
        while (cx != tx) {
            const Direction d =
                TorusRouting::ringDirection(cx, tx, cols, true);
            cx = d == DIR_EAST ? (cx + 1) % cols : (cx + cols - 1) % cols;
            out.push_back(topo_.nodeAt(cx, cy));
        }
    };
    auto walk_y = [&]() {
        while (cy != ty) {
            const Direction d =
                TorusRouting::ringDirection(cy, ty, rows, false);
            cy = d == DIR_SOUTH ? (cy + 1) % rows : (cy + rows - 1) % rows;
            out.push_back(topo_.nodeAt(cx, cy));
        }
    };
    if (x_first) {
        walk_x();
        walk_y();
    } else {
        walk_y();
        walk_x();
    }
}

void
GoldenModel::reconstructRoute(const Packet &pkt,
                              std::vector<NodeId> &out) const
{
    out.clear();
    out.push_back(pkt.src);
    switch (pkt.mode) {
      case RouteMode::XY:
        appendDorLeg(pkt.src, pkt.dst, true, out);
        break;
      case RouteMode::YX:
        appendDorLeg(pkt.src, pkt.dst, false, out);
        break;
      case RouteMode::TWO_PHASE: {
        // Checkerboard routing runs YX to the waypoint so the first
        // turn lands on a full router; ROMM and Valiant are XY-XY.
        const bool cr_leg = params_.routing == "cr" ||
                            params_.routing == "checkerboard";
        appendDorLeg(pkt.src, pkt.intermediate, !cr_leg, out);
        appendDorLeg(pkt.intermediate, pkt.dst, true, out);
        break;
      }
      case RouteMode::TORUS_XY:
        appendTorusLeg(pkt.src, pkt.dst, true, out);
        break;
      case RouteMode::TORUS_YX:
        appendTorusLeg(pkt.src, pkt.dst, false, out);
        break;
    }
}

Cycle
GoldenModel::zeroLoadLatency(const std::vector<NodeId> &route,
                             unsigned size_flits) const
{
    tenoc_assert(!route.empty(), "empty route");
    tenoc_assert(size_flits >= 1, "packet must have flits");
    Cycle lat = 0;
    for (NodeId n : route) {
        lat += topo_.isHalfRouter(n) ? params_.halfPipelineDepth
                                     : params_.pipelineDepth;
    }
    lat += static_cast<Cycle>(route.size() - 1) * params_.channelLatency;
    lat += size_flits - 1; // tail serialization behind the head
    return lat;
}

void
GoldenModel::checkRoute(const Packet &pkt,
                        const std::vector<NodeId> &route,
                        std::vector<std::string> &violations) const
{
    auto fail = [&](const std::string &what) {
        std::ostringstream os;
        os << "route check: packet " << pkt.id << " (" << pkt.src
           << " -> " << pkt.dst << "): " << what;
        violations.push_back(os.str());
    };

    if (route.empty() || route.front() != pkt.src ||
        route.back() != pkt.dst) {
        fail("route endpoints do not match the packet header");
        return;
    }

    for (std::size_t i = 1; i < route.size(); ++i) {
        unsigned dx = topo_.xOf(route[i]) > topo_.xOf(route[i - 1])
            ? topo_.xOf(route[i]) - topo_.xOf(route[i - 1])
            : topo_.xOf(route[i - 1]) - topo_.xOf(route[i]);
        unsigned dy = topo_.yOf(route[i]) > topo_.yOf(route[i - 1])
            ? topo_.yOf(route[i]) - topo_.yOf(route[i - 1])
            : topo_.yOf(route[i - 1]) - topo_.yOf(route[i]);
        if (topo_.isTorus()) {
            // A wrap link connects coordinates dim-1 apart; fold the
            // ring distance so wrap hops count as one step.
            dx = std::min(dx, topo_.cols() - dx);
            dy = std::min(dy, topo_.rows() - dy);
        }
        if (dx + dy != 1) {
            fail("hop " + std::to_string(i) + " is not " +
                 (topo_.isTorus() ? "torus" : "mesh") + "-adjacent");
            return;
        }
    }

    // A direction change at an interior node is a turn; half-routers
    // only pass straight-through traffic (Sec. IV-A).
    for (std::size_t i = 1; i + 1 < route.size(); ++i) {
        const bool in_horizontal =
            topo_.yOf(route[i]) == topo_.yOf(route[i - 1]);
        const bool out_horizontal =
            topo_.yOf(route[i + 1]) == topo_.yOf(route[i]);
        if (in_horizontal != out_horizontal &&
            topo_.isHalfRouter(route[i])) {
            fail("turn at half-router node " +
                 std::to_string(route[i]));
        }
    }

    // Per-leg minimality: every algorithm here routes each leg
    // minimally, so total hops must equal the leg hop distances.
    unsigned expect_hops;
    if (pkt.mode == RouteMode::TWO_PHASE) {
        expect_hops = topo_.hopDistance(pkt.src, pkt.intermediate) +
                      topo_.hopDistance(pkt.intermediate, pkt.dst);
    } else {
        expect_hops = topo_.hopDistance(pkt.src, pkt.dst);
    }
    if (route.size() - 1 != expect_hops) {
        fail("route has " + std::to_string(route.size() - 1) +
             " hops, expected " + std::to_string(expect_hops));
    }
}

GoldenShadow::GoldenShadow(const GoldenModel &model, const Topology &topo)
    : model_(model), topo_(topo),
      node_in_flits_(topo.numNodes(), 0),
      node_out_flits_(topo.numNodes(), 0),
      node_in_bytes_(topo.numNodes(), 0),
      node_out_bytes_(topo.numNodes(), 0)
{}

void
GoldenShadow::check(bool ok, std::string what)
{
    if (!ok)
        violations_.push_back(std::move(what));
}

void
GoldenShadow::onInject(const Packet &pkt, Cycle now)
{
    model_.reconstructRoute(pkt, route_scratch_);
    model_.checkRoute(pkt, route_scratch_, violations_);

    Expected e;
    e.dst = pkt.dst;
    e.sizeFlits = pkt.sizeFlits;
    e.sizeBytes = pkt.sizeBytes;
    e.created = pkt.createdCycle != INVALID_CYCLE ? pkt.createdCycle
                                                  : now;
    e.zeroLoad = model_.zeroLoadLatency(route_scratch_, pkt.sizeFlits);
    check(inflight_.emplace(pkt.id, e).second,
          "duplicate packet id " + std::to_string(pkt.id) +
              " injected");

    ++packets_in_;
    flits_in_ += pkt.sizeFlits;
    node_in_flits_[pkt.src] += pkt.sizeFlits;
    node_in_bytes_[pkt.src] += pkt.sizeBytes;
}

void
GoldenShadow::onDeliver(const Packet &pkt, NodeId at, Cycle now)
{
    auto it = inflight_.find(pkt.id);
    if (it == inflight_.end()) {
        check(false, "packet " + std::to_string(pkt.id) +
                         " delivered but never injected (or "
                         "delivered twice)");
        return;
    }
    const Expected &e = it->second;
    check(at == e.dst, "packet " + std::to_string(pkt.id) +
                           " delivered at node " + std::to_string(at) +
                           ", addressed to " + std::to_string(e.dst));

    const Cycle lat = now - e.created;
    if (expect_zero_load_) {
        check(lat == e.zeroLoad,
              "packet " + std::to_string(pkt.id) + " latency " +
                  std::to_string(lat) + " != zero-load latency " +
                  std::to_string(e.zeroLoad));
    } else {
        check(lat >= e.zeroLoad,
              "packet " + std::to_string(pkt.id) + " latency " +
                  std::to_string(lat) +
                  " beats the zero-load lower bound " +
                  std::to_string(e.zeroLoad));
    }

    ++packets_out_;
    flits_out_ += e.sizeFlits;
    node_out_flits_[e.dst] += e.sizeFlits;
    node_out_bytes_[e.dst] += e.sizeBytes;
    const auto dlat = static_cast<double>(lat);
    if (lat_count_ == 0) {
        lat_min_ = lat_max_ = dlat;
    } else {
        lat_min_ = std::min(lat_min_, dlat);
        lat_max_ = std::max(lat_max_, dlat);
    }
    ++lat_count_;
    lat_sum_ += dlat;
    inflight_.erase(it);
}

void
GoldenShadow::finalCheck(const NetStats &stats, bool drained)
{
    auto eq_u64 = [&](std::uint64_t got, std::uint64_t want,
                      const char *what) {
        if (got != want) {
            std::ostringstream os;
            os << what << ": network reports " << got << ", shadow "
               << want;
            violations_.push_back(os.str());
        }
    };
    auto eq_dbl = [&](double got, double want, const char *what) {
        if (got != want) {
            std::ostringstream os;
            os.precision(17);
            os << what << ": network reports " << got << ", shadow "
               << want;
            violations_.push_back(os.str());
        }
    };

    if (drained) {
        check(inflight_.empty(),
              std::to_string(inflight_.size()) +
                  " packets injected but never delivered on a "
                  "drained network");
    }

    eq_u64(stats.packetsInjected, packets_in_, "packetsInjected");
    eq_u64(stats.packetsEjected, packets_out_, "packetsEjected");
    eq_u64(stats.flitsInjected, flits_in_, "flitsInjected");
    eq_u64(stats.flitsEjected, flits_out_, "flitsEjected");

    for (NodeId n = 0; n < topo_.numNodes(); ++n) {
        eq_u64(stats.nodeInjectedFlits[n], node_in_flits_[n],
               "nodeInjectedFlits");
        eq_u64(stats.nodeEjectedFlits[n], node_out_flits_[n],
               "nodeEjectedFlits");
        eq_u64(stats.nodeInjectedBytes[n], node_in_bytes_[n],
               "nodeInjectedBytes");
        eq_u64(stats.nodeEjectedBytes[n], node_out_bytes_[n],
               "nodeEjectedBytes");
    }

    eq_u64(stats.totalLatency.count(), lat_count_,
           "totalLatency.count");
    eq_u64(stats.totalLatencyHist.count(), lat_count_,
           "totalLatencyHist.count");
    eq_dbl(stats.totalLatency.sum(), lat_sum_, "totalLatency.sum");
    if (lat_count_ > 0) {
        eq_dbl(stats.totalLatency.min(), lat_min_, "totalLatency.min");
        eq_dbl(stats.totalLatency.max(), lat_max_, "totalLatency.max");
    }
}

} // namespace tenoc
