/**
 * @file
 * Differential-testing harness implementation.
 */

#include "noc/golden/diff.hh"

#include <algorithm>
#include <deque>
#include <functional>
#include <map>
#include <sstream>

#include "common/log.hh"
#include "noc/golden/golden.hh"
#include "noc/routing.hh"
#include "noc/traffic.hh"

namespace tenoc
{

namespace
{

/** Count of odd-parity (half-router) cells on a rows x cols mesh. */
unsigned
oddParityCells(unsigned rows, unsigned cols)
{
    return rows * cols / 2;
}

/**
 * Independent checkerboard routability predicate (Sec. IV-B): the only
 * pairs CR cannot route are full-router to full-router with both
 * coordinate offsets odd — then both DOR turn nodes and every minimal-
 * quadrant waypoint's second-leg turn land on half-routers.
 */
bool
crUnroutable(const Topology &topo, NodeId src, NodeId dst)
{
    if (topo.isHalfRouter(src) || topo.isHalfRouter(dst))
        return false;
    const unsigned dx = topo.xOf(src) > topo.xOf(dst)
        ? topo.xOf(src) - topo.xOf(dst)
        : topo.xOf(dst) - topo.xOf(src);
    const unsigned dy = topo.yOf(src) > topo.yOf(dst)
        ? topo.yOf(src) - topo.yOf(dst)
        : topo.yOf(dst) - topo.yOf(src);
    return dx % 2 == 1 && dy % 2 == 1;
}

bool
routablePair(const DiffConfig &cfg, const Topology &topo, NodeId src,
             NodeId dst)
{
    if (src == dst)
        return false;
    if (cfg.checkerboard)
        return !crUnroutable(topo, src, dst);
    return true;
}

/** Caps a violation list so one broken config can't flood the log. */
constexpr std::size_t MAX_VIOLATIONS = 64;

bool
full(const std::vector<std::string> &violations)
{
    return violations.size() >= MAX_VIOLATIONS;
}

// ---------------------------------------------------------------------
// Oracle 1: routing sweep
// ---------------------------------------------------------------------

void
routingSweepOracle(const DiffConfig &cfg,
                   std::vector<std::string> &violations)
{
    const MeshNetworkParams np = cfg.toNetParams();
    Topology topo(np.topo);
    auto algo = makeRouting(np.routing, topo);
    GoldenModel golden(topo, np);
    Rng rng(deriveStreamSeed(cfg.seed, 0x5eedULL));

    std::vector<NodeId> expect, actual;
    for (NodeId src = 0; src < topo.numNodes(); ++src) {
        for (NodeId dst = 0; dst < topo.numNodes(); ++dst) {
            if (src == dst || full(violations))
                continue;
            if (cfg.checkerboard && crUnroutable(topo, src, dst)) {
                // The implementation must agree these are impossible:
                // an empty waypoint set (initPacket would panic, which
                // the death tests cover; here we introspect instead).
                auto &cr =
                    static_cast<const CheckerboardRouting &>(*algo);
                if (!cr.twoPhaseCandidates(src, dst).empty()) {
                    violations.push_back(
                        "routing sweep: CR offers waypoints for the "
                        "unroutable full-full odd/odd pair " +
                        std::to_string(src) + " -> " +
                        std::to_string(dst));
                }
                continue;
            }

            Packet pkt;
            pkt.src = src;
            pkt.dst = dst;
            algo->initPacket(pkt, rng);

            // Walk the real per-hop routing function.
            actual.clear();
            actual.push_back(src);
            NodeId cur = src;
            bool walk_ok = true;
            for (unsigned steps = 0;; ++steps) {
                if (steps > 4 * topo.numNodes()) {
                    violations.push_back(
                        "routing sweep: livelocked walk " +
                        std::to_string(src) + " -> " +
                        std::to_string(dst));
                    walk_ok = false;
                    break;
                }
                const unsigned port = algo->route(cur, pkt);
                if (port == PORT_EJECT)
                    break;
                const NodeId nxt =
                    topo.neighbor(cur, static_cast<Direction>(port));
                if (nxt == INVALID_NODE) {
                    violations.push_back(
                        "routing sweep: walk " + std::to_string(src) +
                        " -> " + std::to_string(dst) +
                        " stepped off the mesh");
                    walk_ok = false;
                    break;
                }
                actual.push_back(nxt);
                cur = nxt;
            }
            if (!walk_ok)
                continue;

            golden.reconstructRoute(pkt, expect);
            if (actual != expect) {
                violations.push_back(
                    "routing sweep: realized route for " +
                    std::to_string(src) + " -> " + std::to_string(dst) +
                    " diverges from the golden reconstruction");
            }
            golden.checkRoute(pkt, actual, violations);
        }
    }
}

// ---------------------------------------------------------------------
// Shared harness machinery
// ---------------------------------------------------------------------

/** Sink feeding every delivery to the shadow. */
class ShadowSink : public PacketSink
{
  public:
    ShadowSink(GoldenShadow &shadow, NodeId node)
        : shadow_(shadow), node_(node)
    {}

    bool tryReserve(const Packet &) override { return true; }
    void
    deliver(PacketPtr pkt, Cycle now) override
    {
        shadow_.onDeliver(*pkt, node_, now);
    }

  private:
    GoldenShadow &shadow_;
    NodeId node_;
};

/** Sink that absorbs deliveries (stats accounting is unaffected). */
class NullSink : public PacketSink
{
  public:
    bool tryReserve(const Packet &) override { return true; }
    void deliver(PacketPtr, Cycle) override {}
};

/** RAII heap-bypass window for the thread-local packet pool. */
class PoolBypassGuard
{
  public:
    explicit PoolBypassGuard(bool on) : on_(on)
    {
        if (on_)
            packetPool().setBypass(true);
    }
    ~PoolBypassGuard()
    {
        if (on_)
            packetPool().setBypass(false);
    }
    PoolBypassGuard(const PoolBypassGuard &) = delete;
    PoolBypassGuard &operator=(const PoolBypassGuard &) = delete;

  private:
    bool on_;
};

/** One generated packet of the deterministic traffic schedule. */
struct GenPacket
{
    NodeId src;
    NodeId dst;
    int protoClass;
    unsigned sizeFlits;
    Cycle created;
    /** Nonzero when this packet is one fork of a collective (the whole
     *  fork group shares the id; the network treats forks as ordinary
     *  unicasts, so every oracle applies unchanged). */
    std::uint64_t collectiveId = 0;
};

/**
 * Deterministic traffic schedule generator: each node owns a derived
 * RNG stream, so the schedule depends only on (cfg, node) — never on
 * network state — making it byte-identical across the baseline,
 * rerun, toggle, and sliced-equivalence executions.
 */
class TrafficSchedule
{
  public:
    TrafficSchedule(const DiffConfig &cfg, const Topology &topo)
        : cfg_(cfg), topo_(topo),
          collective_seqs_(topo.numNodes(), 0)
    {
        for (NodeId n = 0; n < topo.numNodes(); ++n)
            rngs_.emplace_back(deriveStreamSeed(cfg.seed, n));
    }

    /** Appends this cycle's new packets (in node order) to `out`. */
    void
    generate(Cycle now, std::vector<GenPacket> &out)
    {
        for (NodeId n = 0; n < topo_.numNodes(); ++n) {
            Rng &rng = rngs_[n];
            if (rng.nextBool(cfg_.rate)) {
                GenPacket g;
                g.src = n;
                g.created = now;
                if (topo_.isMc(n)) {
                    // MC -> compute "reply" burst (4 flits, class 1).
                    g.dst = topo_.computeNodes()[rng.nextRange(
                        topo_.computeNodes().size())];
                    g.protoClass = 1;
                    g.sizeFlits = 4;
                } else {
                    // compute -> MC "request" (1 flit, class 0).
                    g.dst = topo_.mcNodes()[rng.nextRange(
                        topo_.mcNodes().size())];
                    g.protoClass = 0;
                    g.sizeFlits = 1;
                }
                out.push_back(g);
            }
            // Collective draw (compute nodes only): one multicast
            // expanded here into per-fork unicasts to a prefix of the
            // MC list, all stamped with a shared collective id.  The
            // extra draw only happens when the rate is nonzero, so
            // legacy corpus configs keep their exact RNG sequences.
            if (cfg_.collectiveRate > 0.0 && !topo_.isMc(n) &&
                rng.nextBool(cfg_.collectiveRate)) {
                const auto &mcs = topo_.mcNodes();
                const unsigned fanout = 2 + static_cast<unsigned>(
                    rng.nextRange(mcs.size() - 1));
                const std::uint64_t id =
                    collectiveIdFor(n, collective_seqs_[n]++);
                for (unsigned k = 0; k < fanout; ++k) {
                    GenPacket g;
                    g.src = n;
                    g.dst = mcs[k];
                    g.protoClass = 0;
                    g.sizeFlits = 1;
                    g.created = now;
                    g.collectiveId = id;
                    out.push_back(g);
                }
            }
        }
    }

  private:
    const DiffConfig &cfg_;
    const Topology &topo_;
    std::vector<std::uint64_t> collective_seqs_;
    std::vector<Rng> rngs_;
};

/** Everything that must be bit-identical between equivalent runs. */
struct RunSignature
{
    Cycle endCycle = 0;
    std::uint64_t packetsInjected = 0, packetsEjected = 0;
    std::uint64_t flitsInjected = 0, flitsEjected = 0;
    std::uint64_t latCount = 0;
    double latSum = 0.0, latMin = 0.0, latMax = 0.0;
    std::vector<std::uint64_t> nodeInjFlits, nodeEjFlits;
    std::vector<std::uint64_t> nodeInjBytes, nodeEjBytes;
    std::vector<std::uint64_t> histBuckets;
};

RunSignature
captureSignature(const NetStats &stats, Cycle end_cycle)
{
    RunSignature s;
    s.endCycle = end_cycle;
    s.packetsInjected = stats.packetsInjected;
    s.packetsEjected = stats.packetsEjected;
    s.flitsInjected = stats.flitsInjected;
    s.flitsEjected = stats.flitsEjected;
    s.latCount = stats.totalLatency.count();
    s.latSum = stats.totalLatency.sum();
    s.latMin = stats.totalLatency.min();
    s.latMax = stats.totalLatency.max();
    s.nodeInjFlits = stats.nodeInjectedFlits;
    s.nodeEjFlits = stats.nodeEjectedFlits;
    s.nodeInjBytes = stats.nodeInjectedBytes;
    s.nodeEjBytes = stats.nodeEjectedBytes;
    s.histBuckets = stats.totalLatencyHist.buckets();
    return s;
}

/** Adds `b`'s totals into `a` (merging two slices into one view). */
void
mergeSignature(RunSignature &a, const RunSignature &b)
{
    a.endCycle = std::max(a.endCycle, b.endCycle);
    a.packetsInjected += b.packetsInjected;
    a.packetsEjected += b.packetsEjected;
    a.flitsInjected += b.flitsInjected;
    a.flitsEjected += b.flitsEjected;
    if (b.latCount > 0) {
        a.latMin = a.latCount ? std::min(a.latMin, b.latMin) : b.latMin;
        a.latMax = a.latCount ? std::max(a.latMax, b.latMax) : b.latMax;
    }
    a.latCount += b.latCount;
    a.latSum += b.latSum;
    auto add = [](std::vector<std::uint64_t> &x,
                  const std::vector<std::uint64_t> &y) {
        tenoc_assert(x.size() == y.size(), "signature size mismatch");
        for (std::size_t i = 0; i < x.size(); ++i)
            x[i] += y[i];
    };
    add(a.nodeInjFlits, b.nodeInjFlits);
    add(a.nodeEjFlits, b.nodeEjFlits);
    add(a.nodeInjBytes, b.nodeInjBytes);
    add(a.nodeEjBytes, b.nodeEjBytes);
    add(a.histBuckets, b.histBuckets);
}

void
compareSignatures(const RunSignature &a, const RunSignature &b,
                  const std::string &what, bool compare_end,
                  std::vector<std::string> &violations)
{
    auto fail = [&](const std::string &field) {
        violations.push_back(what + ": " + field +
                             " differs between the two runs");
    };
    if (compare_end && a.endCycle != b.endCycle)
        fail("end cycle");
    if (a.packetsInjected != b.packetsInjected)
        fail("packetsInjected");
    if (a.packetsEjected != b.packetsEjected)
        fail("packetsEjected");
    if (a.flitsInjected != b.flitsInjected)
        fail("flitsInjected");
    if (a.flitsEjected != b.flitsEjected)
        fail("flitsEjected");
    if (a.latCount != b.latCount)
        fail("latency count");
    if (a.latSum != b.latSum)
        fail("latency sum");
    if (a.latCount > 0 && b.latCount > 0 &&
        (a.latMin != b.latMin || a.latMax != b.latMax))
        fail("latency min/max");
    if (a.nodeInjFlits != b.nodeInjFlits)
        fail("per-node injected flits");
    if (a.nodeEjFlits != b.nodeEjFlits)
        fail("per-node ejected flits");
    if (a.nodeInjBytes != b.nodeInjBytes)
        fail("per-node injected bytes");
    if (a.nodeEjBytes != b.nodeEjBytes)
        fail("per-node ejected bytes");
    if (a.histBuckets != b.histBuckets)
        fail("latency histogram");
}

/** Optimization/diagnostic toggles that must never change results. */
struct Toggles
{
    bool idleSkip = true;
    bool validate = false;
    bool poolBypass = false;
    /** Intra-cycle parallel engine thread count (1 = serial; the
     *  default 0 resolves TENOC_CYCLE_THREADS, so a fuzz run under
     *  that env var exercises the threaded engine as its base run —
     *  bit-exactness makes the resolved count irrelevant to results,
     *  and the shadow combos below pin explicit counts either way). */
    unsigned cycleThreads = 0;
    /** Arrival-scheduled channels (sleep-until-arrival wheel). */
    bool arrivalSleep = true;

    std::string
    describe() const
    {
        std::string s = "idleSkip=";
        s += idleSkip ? "1" : "0";
        s += " validate=";
        s += validate ? "1" : "0";
        s += " poolBypass=";
        s += poolBypass ? "1" : "0";
        s += " cycleThreads=";
        s += std::to_string(cycleThreads);
        s += " arrivalSleep=";
        s += arrivalSleep ? "1" : "0";
        return s;
    }
};

/** Hard cap on post-generation drain time before declaring deadlock. */
constexpr Cycle DRAIN_CAP = 200000;

/**
 * Oracles 3-5 share this: run the deterministic schedule on a network
 * built from (cfg, toggles), audited by a GoldenShadow, and return the
 * final-statistics signature.
 */
RunSignature
shadowRun(const DiffConfig &cfg, const Toggles &toggles,
          std::vector<std::string> &violations)
{
    PoolBypassGuard bypass(toggles.poolBypass);

    MeshNetworkParams np = cfg.toNetParams();
    np.idleSkip = toggles.idleSkip;
    np.validate = toggles.validate;
    np.cycleThreads = toggles.cycleThreads;
    np.arrivalSleep = toggles.arrivalSleep;
    np.watchdogWindow = DRAIN_CAP / 2;

    bool watchdog_fired = false;
    std::unique_ptr<Network> net;
    if (cfg.sliced) {
        auto dn = std::make_unique<DoubleNetwork>(np);
        dn->setWatchdogHandler(
            [&](const WatchdogReport &) { watchdog_fired = true; });
        net = std::move(dn);
    } else {
        auto mn = std::make_unique<MeshNetwork>(np);
        mn->setWatchdogHandler(
            [&](const WatchdogReport &) { watchdog_fired = true; });
        net = std::move(mn);
    }

    const Topology &topo = net->topology();
    GoldenModel golden(topo, np);
    GoldenShadow shadow(golden, topo);

    std::vector<std::unique_ptr<ShadowSink>> sinks;
    for (NodeId n = 0; n < topo.numNodes(); ++n) {
        sinks.push_back(std::make_unique<ShadowSink>(shadow, n));
        net->setSink(n, sinks.back().get());
    }

    TrafficSchedule schedule(cfg, topo);
    std::vector<std::deque<PacketPtr>> pending(topo.numNodes());
    std::size_t pending_total = 0;
    std::vector<GenPacket> fresh;

    Cycle now = 0;
    const Cycle hard_end = cfg.genCycles + DRAIN_CAP;
    for (; now < hard_end; ++now) {
        if (now < cfg.genCycles) {
            fresh.clear();
            schedule.generate(now, fresh);
            for (const GenPacket &g : fresh) {
                auto pkt = makePacket();
                pkt->src = g.src;
                pkt->dst = g.dst;
                pkt->op = g.protoClass == 0 ? MemOp::READ_REQUEST
                                            : MemOp::READ_REPLY;
                pkt->protoClass = g.protoClass;
                pkt->sizeFlits = g.sizeFlits;
                pkt->sizeBytes = g.sizeFlits * net->flitBytes();
                pkt->createdCycle = g.created;
                pkt->collectiveId = g.collectiveId;
                pending[g.src].push_back(std::move(pkt));
                ++pending_total;
            }
        }
        for (NodeId n = 0; n < topo.numNodes(); ++n) {
            auto &q = pending[n];
            while (!q.empty() &&
                   net->canInject(n, q.front()->protoClass)) {
                PacketPtr held = q.front(); // keep a ref for the shadow
                net->inject(std::move(q.front()), now);
                q.pop_front();
                --pending_total;
                shadow.onInject(*held, now);
            }
        }
        if (now >= cfg.genCycles && pending_total == 0 &&
            net->drained()) {
            break;
        }
        net->cycle(now);
        if (watchdog_fired)
            break;
    }

    const bool drained = pending_total == 0 && net->drained();
    if (watchdog_fired) {
        violations.push_back("shadow run (" + toggles.describe() +
                             "): deadlock watchdog fired");
    } else if (!drained) {
        violations.push_back("shadow run (" + toggles.describe() +
                             "): traffic failed to drain within " +
                             std::to_string(hard_end) + " cycles");
    }
    shadow.finalCheck(net->stats(), drained);
    for (const std::string &v : shadow.violations()) {
        if (full(violations))
            break;
        violations.push_back("shadow run (" + toggles.describe() +
                             "): " + v);
    }
    return captureSignature(net->stats(), now);
}

// ---------------------------------------------------------------------
// Oracle 2: zero-load probes
// ---------------------------------------------------------------------

void
zeroLoadOracle(const DiffConfig &cfg, const DiffOptions &opts,
               std::vector<std::string> &violations)
{
    MeshNetworkParams np = cfg.toNetParams();
    MeshNetwork net(np);
    const Topology &topo = net.topology();
    GoldenModel golden(topo, np);
    GoldenShadow shadow(golden, topo);
    shadow.setExpectZeroLoad(true);

    std::vector<std::unique_ptr<ShadowSink>> sinks;
    for (NodeId n = 0; n < topo.numNodes(); ++n) {
        sinks.push_back(std::make_unique<ShadowSink>(shadow, n));
        net.setSink(n, sinks.back().get());
    }

    Rng rng(deriveStreamSeed(cfg.seed, 0x960b3ULL));
    Cycle now = 0;
    for (unsigned probe = 0; probe < opts.zeroLoadProbes; ++probe) {
        NodeId src, dst;
        do {
            src = static_cast<NodeId>(rng.nextRange(topo.numNodes()));
            dst = static_cast<NodeId>(rng.nextRange(topo.numNodes()));
        } while (!routablePair(cfg, topo, src, dst));

        auto pkt = makePacket();
        pkt->src = src;
        pkt->dst = dst;
        pkt->op = MemOp::READ_REQUEST;
        pkt->protoClass = 0;
        // The zero-load formula is exact only while the packet fits in
        // one VC buffer; larger packets stall on the credit round trip
        // (those are still covered by the shadow run's lower bound).
        pkt->sizeFlits = 1 + static_cast<unsigned>(rng.nextRange(
            std::min<std::uint64_t>(4, cfg.vcDepth)));
        pkt->sizeBytes = pkt->sizeFlits * net.flitBytes();
        pkt->createdCycle = now;
        PacketPtr held = pkt;
        tenoc_assert(net.canInject(src, 0), "idle NI rejected a probe");
        net.inject(std::move(pkt), now);
        shadow.onInject(*held, now);
        held.reset();

        const Cycle probe_cap = now + 100000;
        while (!net.drained() && now < probe_cap) {
            net.cycle(now);
            ++now;
        }
        if (!net.drained()) {
            violations.push_back(
                "zero-load probe: packet " + std::to_string(src) +
                " -> " + std::to_string(dst) +
                " never drained on an idle network");
            return;
        }
        ++now; // idle gap so probes can't interact
        if (full(violations))
            break;
    }
    shadow.finalCheck(net.stats(), net.drained());
    for (const std::string &v : shadow.violations()) {
        if (full(violations))
            break;
        violations.push_back("zero-load probe: " + v);
    }
}

// ---------------------------------------------------------------------
// Oracle 6: sliced double network == two independent slices
// ---------------------------------------------------------------------

void
slicedEquivalenceOracle(const DiffConfig &cfg,
                        std::vector<std::string> &violations)
{
    MeshNetworkParams np = cfg.toNetParams();
    np.watchdogWindow = DRAIN_CAP / 2;

    // Pass 1: the real DoubleNetwork.
    RunSignature combined_sig;
    MeshNetworkParams req_params, rep_params;
    {
        DoubleNetwork dn(np);
        bool fired = false;
        dn.setWatchdogHandler(
            [&](const WatchdogReport &) { fired = true; });
        req_params = dn.requestNet().params();
        rep_params = dn.replyNet().params();

        const Topology &topo = dn.topology();
        NullSink sink;
        for (NodeId n = 0; n < topo.numNodes(); ++n)
            dn.setSink(n, &sink);

        TrafficSchedule schedule(cfg, topo);
        std::vector<std::deque<PacketPtr>> pending(topo.numNodes());
        std::size_t pending_total = 0;
        std::vector<GenPacket> fresh;
        const unsigned slice_flit_bytes = cfg.flitBytes / 2;

        Cycle now = 0;
        const Cycle hard_end = cfg.genCycles + DRAIN_CAP;
        for (; now < hard_end; ++now) {
            if (now < cfg.genCycles) {
                fresh.clear();
                schedule.generate(now, fresh);
                for (const GenPacket &g : fresh) {
                    auto pkt = makePacket();
                    pkt->src = g.src;
                    pkt->dst = g.dst;
                    pkt->op = g.protoClass == 0 ? MemOp::READ_REQUEST
                                                : MemOp::READ_REPLY;
                    pkt->protoClass = g.protoClass;
                    pkt->sizeFlits = g.sizeFlits;
                    pkt->sizeBytes = g.sizeFlits * slice_flit_bytes;
                    pkt->createdCycle = g.created;
                    pkt->collectiveId = g.collectiveId;
                    pending[g.src].push_back(std::move(pkt));
                    ++pending_total;
                }
            }
            for (NodeId n = 0; n < topo.numNodes(); ++n) {
                auto &q = pending[n];
                while (!q.empty() &&
                       dn.canInject(n, q.front()->protoClass)) {
                    dn.inject(std::move(q.front()), now);
                    q.pop_front();
                    --pending_total;
                }
            }
            if (now >= cfg.genCycles && pending_total == 0 &&
                dn.drained()) {
                break;
            }
            dn.cycle(now);
            if (fired)
                break;
        }
        if (fired || pending_total != 0 || !dn.drained()) {
            violations.push_back(
                "sliced equivalence: double network failed to drain");
            return;
        }
        combined_sig = captureSignature(dn.stats(), now);
    }

    // Pass 2: the same schedule on two standalone slice networks built
    // from the exact per-slice parameters the double network used.
    MeshNetwork req(req_params);
    MeshNetwork rep(rep_params);
    bool fired = false;
    req.setWatchdogHandler([&](const WatchdogReport &) { fired = true; });
    rep.setWatchdogHandler([&](const WatchdogReport &) { fired = true; });

    const Topology &topo = req.topology();
    NullSink sink;
    for (NodeId n = 0; n < topo.numNodes(); ++n) {
        req.setSink(n, &sink);
        rep.setSink(n, &sink);
    }

    TrafficSchedule schedule(cfg, topo);
    std::vector<std::deque<PacketPtr>> pending_req(topo.numNodes());
    std::vector<std::deque<PacketPtr>> pending_rep(topo.numNodes());
    std::size_t pending_total = 0;
    std::vector<GenPacket> fresh;
    const unsigned slice_flit_bytes = cfg.flitBytes / 2;

    Cycle now = 0;
    const Cycle hard_end = cfg.genCycles + DRAIN_CAP;
    for (; now < hard_end; ++now) {
        if (now < cfg.genCycles) {
            fresh.clear();
            schedule.generate(now, fresh);
            for (const GenPacket &g : fresh) {
                auto pkt = makePacket();
                pkt->src = g.src;
                pkt->dst = g.dst;
                pkt->op = g.protoClass == 0 ? MemOp::READ_REQUEST
                                            : MemOp::READ_REPLY;
                pkt->protoClass = g.protoClass;
                pkt->sizeFlits = g.sizeFlits;
                pkt->sizeBytes = g.sizeFlits * slice_flit_bytes;
                pkt->createdCycle = g.created;
                pkt->collectiveId = g.collectiveId;
                auto &q = g.protoClass == 0 ? pending_req[g.src]
                                            : pending_rep[g.src];
                q.push_back(std::move(pkt));
                ++pending_total;
            }
        }
        for (NodeId n = 0; n < topo.numNodes(); ++n) {
            while (!pending_req[n].empty() &&
                   req.canInject(n, pending_req[n].front()->protoClass)) {
                req.inject(std::move(pending_req[n].front()), now);
                pending_req[n].pop_front();
                --pending_total;
            }
            while (!pending_rep[n].empty() &&
                   rep.canInject(n, pending_rep[n].front()->protoClass)) {
                rep.inject(std::move(pending_rep[n].front()), now);
                pending_rep[n].pop_front();
                --pending_total;
            }
        }
        if (now >= cfg.genCycles && pending_total == 0 &&
            req.drained() && rep.drained()) {
            break;
        }
        req.cycle(now);
        rep.cycle(now);
        if (fired)
            break;
    }
    if (fired || pending_total != 0 || !req.drained() ||
        !rep.drained()) {
        violations.push_back(
            "sliced equivalence: standalone slices failed to drain");
        return;
    }

    RunSignature slices_sig = captureSignature(req.stats(), now);
    mergeSignature(slices_sig, captureSignature(rep.stats(), now));
    compareSignatures(combined_sig, slices_sig,
                      "sliced equivalence (double net vs standalone "
                      "slices)",
                      true, violations);
}

} // namespace

// ---------------------------------------------------------------------
// DiffConfig
// ---------------------------------------------------------------------

MeshNetworkParams
DiffConfig::toNetParams() const
{
    MeshNetworkParams np;
    np.topo.rows = rows;
    np.topo.cols = cols;
    np.topo.numMcs = numMcs;
    np.topo.placement = checkerboard ? McPlacement::CHECKERBOARD
                                     : McPlacement::TOP_BOTTOM;
    np.topo.checkerboardRouters = checkerboard;
    np.topo.kind =
        topology == "torus" ? TopoKind::TORUS : TopoKind::MESH;
    np.topo.concentration = concentration;
    np.routing = routing;
    np.flitBytes = flitBytes;
    np.protoClasses = protoClasses;
    np.vcsPerClass = vcsPerClass;
    np.vcDepth = vcDepth;
    np.pipelineDepth = pipelineDepth;
    np.halfPipelineDepth = halfPipelineDepth;
    np.channelLatency = channelLatency;
    np.mcInjPorts = mcInjPorts;
    np.mcEjPorts = mcEjPorts;
    np.agePriority = agePriority;
    np.seed = seed;
    return np;
}

std::string
DiffConfig::serialize() const
{
    std::ostringstream os;
    os.precision(17);
    os << "rows = " << rows << "\n"
       << "cols = " << cols << "\n"
       << "numMcs = " << numMcs << "\n"
       << "checkerboard = " << (checkerboard ? 1 : 0) << "\n"
       << "routing = " << routing << "\n"
       << "topology = " << topology << "\n"
       << "concentration = " << concentration << "\n"
       << "flitBytes = " << flitBytes << "\n"
       << "protoClasses = " << protoClasses << "\n"
       << "vcsPerClass = " << vcsPerClass << "\n"
       << "vcDepth = " << vcDepth << "\n"
       << "pipelineDepth = " << pipelineDepth << "\n"
       << "halfPipelineDepth = " << halfPipelineDepth << "\n"
       << "channelLatency = " << channelLatency << "\n"
       << "mcInjPorts = " << mcInjPorts << "\n"
       << "mcEjPorts = " << mcEjPorts << "\n"
       << "agePriority = " << (agePriority ? 1 : 0) << "\n"
       << "sliced = " << (sliced ? 1 : 0) << "\n"
       << "rate = " << rate << "\n"
       << "collectiveRate = " << collectiveRate << "\n"
       << "genCycles = " << genCycles << "\n"
       << "seed = " << seed << "\n";
    return os.str();
}

bool
DiffConfig::parse(const std::string &text, DiffConfig &out,
                  std::string *err)
{
    auto fail = [&](const std::string &why) {
        if (err)
            *err = why;
        return false;
    };

    DiffConfig cfg;
    std::istringstream is(text);
    std::string line;
    while (std::getline(is, line)) {
        const auto hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        const auto first = line.find_first_not_of(" \t\r");
        if (first == std::string::npos)
            continue;
        const auto eq = line.find('=');
        if (eq == std::string::npos)
            return fail("malformed line (no '='): " + line);
        auto trim = [](std::string s) {
            const auto b = s.find_first_not_of(" \t\r");
            const auto e = s.find_last_not_of(" \t\r");
            return b == std::string::npos
                ? std::string()
                : s.substr(b, e - b + 1);
        };
        const std::string key = trim(line.substr(0, eq));
        const std::string val = trim(line.substr(eq + 1));
        if (key.empty() || val.empty())
            return fail("malformed line: " + line);

        try {
            if (key == "rows")
                cfg.rows = static_cast<unsigned>(std::stoul(val));
            else if (key == "cols")
                cfg.cols = static_cast<unsigned>(std::stoul(val));
            else if (key == "numMcs")
                cfg.numMcs = static_cast<unsigned>(std::stoul(val));
            else if (key == "checkerboard")
                cfg.checkerboard = std::stoul(val) != 0;
            else if (key == "routing")
                cfg.routing = val;
            else if (key == "topology")
                cfg.topology = val;
            else if (key == "concentration")
                cfg.concentration =
                    static_cast<unsigned>(std::stoul(val));
            else if (key == "flitBytes")
                cfg.flitBytes = static_cast<unsigned>(std::stoul(val));
            else if (key == "protoClasses")
                cfg.protoClasses =
                    static_cast<unsigned>(std::stoul(val));
            else if (key == "vcsPerClass")
                cfg.vcsPerClass =
                    static_cast<unsigned>(std::stoul(val));
            else if (key == "vcDepth")
                cfg.vcDepth = static_cast<unsigned>(std::stoul(val));
            else if (key == "pipelineDepth")
                cfg.pipelineDepth =
                    static_cast<unsigned>(std::stoul(val));
            else if (key == "halfPipelineDepth")
                cfg.halfPipelineDepth =
                    static_cast<unsigned>(std::stoul(val));
            else if (key == "channelLatency")
                cfg.channelLatency = std::stoull(val);
            else if (key == "mcInjPorts")
                cfg.mcInjPorts = static_cast<unsigned>(std::stoul(val));
            else if (key == "mcEjPorts")
                cfg.mcEjPorts = static_cast<unsigned>(std::stoul(val));
            else if (key == "agePriority")
                cfg.agePriority = std::stoul(val) != 0;
            else if (key == "sliced")
                cfg.sliced = std::stoul(val) != 0;
            else if (key == "rate")
                cfg.rate = std::stod(val);
            else if (key == "collectiveRate")
                cfg.collectiveRate = std::stod(val);
            else if (key == "genCycles")
                cfg.genCycles = std::stoull(val);
            else if (key == "seed")
                cfg.seed = std::stoull(val);
            else
                return fail("unknown key: " + key);
        } catch (const std::exception &) {
            return fail("bad value for " + key + ": " + val);
        }
    }
    if (!legalDiffConfig(cfg))
        return fail("parsed config violates the config-space rules");
    out = cfg;
    return true;
}

bool
legalDiffConfig(const DiffConfig &cfg)
{
    if (cfg.rows < 2 || cfg.cols < 2)
        return false;
    if (cfg.numMcs < 1 || cfg.numMcs >= cfg.rows * cfg.cols)
        return false;
    if (cfg.topology != "mesh" && cfg.topology != "torus")
        return false;
    if (cfg.topology == "torus") {
        // Dateline VC classes exist only for dimension-order routing,
        // and the checkerboard organization is mesh-only.
        if (cfg.checkerboard)
            return false;
        if (cfg.routing != "xy" && cfg.routing != "yx")
            return false;
    }
    if (cfg.concentration < 1 || cfg.concentration > 4)
        return false;
    if (cfg.checkerboard) {
        if (cfg.routing != "cr")
            return false;
        if (cfg.numMcs > oddParityCells(cfg.rows, cfg.cols))
            return false;
        if (cfg.concentration != 1)
            return false;
    } else {
        if (cfg.routing == "cr" || cfg.routing == "checkerboard")
            return false;
        // TOP_BOTTOM packs ceil(numMcs/2) MCs into the top row.
        if ((cfg.numMcs + 1) / 2 > cfg.cols)
            return false;
    }
    if (cfg.flitBytes < 1)
        return false;
    if (cfg.protoClasses < 1 || cfg.vcsPerClass < 1 || cfg.vcDepth < 1)
        return false;
    if (cfg.pipelineDepth < 1 || cfg.halfPipelineDepth < 1 ||
        cfg.halfPipelineDepth > cfg.pipelineDepth)
        return false;
    if (cfg.channelLatency < 1)
        return false;
    if (cfg.mcInjPorts < 1 || cfg.mcEjPorts < 1)
        return false;
    if (cfg.sliced) {
        if (cfg.protoClasses != 2)
            return false;
        if (cfg.flitBytes % 2 != 0 || cfg.flitBytes / 2 < 2)
            return false;
    }
    if (cfg.rate < 0.0 || cfg.rate > 1.0)
        return false;
    if (cfg.collectiveRate < 0.0 || cfg.collectiveRate > 1.0)
        return false;
    // Collective fanout is drawn from [2, numMcs].
    if (cfg.collectiveRate > 0.0 && cfg.numMcs < 2)
        return false;
    if (cfg.genCycles < 1)
        return false;
    return true;
}

DiffConfig
sampleDiffConfig(Rng &rng)
{
    DiffConfig cfg;
    cfg.rows = 4 + static_cast<unsigned>(rng.nextRange(5));
    cfg.cols = 4 + static_cast<unsigned>(rng.nextRange(5));

    cfg.checkerboard = rng.nextBool(0.4);
    if (cfg.checkerboard) {
        cfg.routing = "cr";
        const unsigned cap =
            std::min(oddParityCells(cfg.rows, cfg.cols), 8u);
        cfg.numMcs = 2 + static_cast<unsigned>(rng.nextRange(cap - 1));
    } else {
        // A quarter of the non-checkerboard draws are tori, which
        // restrict routing to the dateline dimension-order pair.
        if (rng.nextBool(0.25)) {
            cfg.topology = "torus";
            cfg.routing = rng.nextBool(0.5) ? "xy" : "yx";
        } else {
            static const char *const kRoutings[] = {
                "xy", "yx", "o1turn", "romm", "valiant"};
            cfg.routing = kRoutings[rng.nextRange(5)];
        }
        const unsigned cap = std::min(2 * cfg.cols, 8u);
        cfg.numMcs = 2 + static_cast<unsigned>(rng.nextRange(cap - 1));
        if (rng.nextBool(0.25))
            cfg.concentration = rng.nextBool(0.5) ? 2 : 4;
        if (rng.nextBool(0.3))
            cfg.collectiveRate = 0.002 + 0.01 * rng.nextDouble();
    }

    cfg.flitBytes = rng.nextBool(0.5) ? 8 : 16;
    cfg.protoClasses = 1 + static_cast<unsigned>(rng.nextRange(2));
    cfg.vcsPerClass = 1 + static_cast<unsigned>(rng.nextRange(2));
    cfg.vcDepth = 2 + static_cast<unsigned>(rng.nextRange(7));
    cfg.pipelineDepth = 2 + static_cast<unsigned>(rng.nextRange(4));
    cfg.halfPipelineDepth =
        2 + static_cast<unsigned>(rng.nextRange(cfg.pipelineDepth - 1));
    cfg.channelLatency = 1 + rng.nextRange(2);
    cfg.mcInjPorts = 1 + static_cast<unsigned>(rng.nextRange(2));
    cfg.mcEjPorts = 1 + static_cast<unsigned>(rng.nextRange(2));
    cfg.agePriority = rng.nextBool(0.3);
    cfg.sliced = cfg.protoClasses == 2 && rng.nextBool(0.3);
    cfg.rate = 0.01 + 0.05 * rng.nextDouble();
    cfg.genCycles = 300 + rng.nextRange(500);
    cfg.seed = rng.next();

    tenoc_assert(legalDiffConfig(cfg), "sampler produced illegal config");
    return cfg;
}

// ---------------------------------------------------------------------
// runDiff / minimizeConfig
// ---------------------------------------------------------------------

DiffReport
runDiff(const DiffConfig &cfg, const DiffOptions &opts)
{
    DiffReport rep;
    if (!legalDiffConfig(cfg)) {
        rep.violations.push_back(
            "config violates the legal configuration space");
        return rep;
    }

    routingSweepOracle(cfg, rep.violations);
    zeroLoadOracle(cfg, opts, rep.violations);

    const RunSignature base =
        shadowRun(cfg, Toggles{}, rep.violations);

    // Oracle 4: determinism — bit-identical rerun.
    {
        std::vector<std::string> rerun_violations;
        const RunSignature rerun =
            shadowRun(cfg, Toggles{}, rerun_violations);
        compareSignatures(base, rerun, "determinism rerun", true,
                          rep.violations);
    }

    // Oracle 5: idle-skip / validate / pool-bypass / cycle-thread /
    // arrival-sleep invariance.  The parallel engine claims
    // bit-identical results for any thread count and the arrival
    // wheel claims bit-identical results either way; every fuzzed
    // config re-proves both.
    std::vector<Toggles> combos;
    if (opts.thorough) {
        for (int i = 1; i < 32; ++i)
            combos.push_back(Toggles{(i & 1) != 0, (i & 2) != 0,
                                     (i & 4) != 0,
                                     (i & 8) != 0 ? 2u : 1u,
                                     (i & 16) == 0});
    } else {
        combos.push_back(Toggles{false, true, true, 1, true});
        combos.push_back(Toggles{true, false, false, 2, true});
        combos.push_back(Toggles{false, true, true, 2, false});
        combos.push_back(Toggles{true, false, false, 1, false});
    }
    for (const Toggles &t : combos) {
        if (full(rep.violations))
            break;
        std::vector<std::string> toggled_violations;
        const RunSignature sig = shadowRun(cfg, t, toggled_violations);
        for (std::string &v : toggled_violations) {
            if (!full(rep.violations))
                rep.violations.push_back(std::move(v));
        }
        compareSignatures(base, sig,
                          "toggle invariance (" + t.describe() + ")",
                          true, rep.violations);
    }

    // Oracle 6: channel-sliced double network.
    if (cfg.sliced && !full(rep.violations))
        slicedEquivalenceOracle(cfg, rep.violations);

    if (rep.violations.size() > MAX_VIOLATIONS)
        rep.violations.resize(MAX_VIOLATIONS);
    return rep;
}

DiffConfig
minimizeConfig(const DiffConfig &bad, const DiffOptions &opts,
               unsigned max_trials)
{
    DiffConfig best = bad;
    unsigned trials = 0;

    // Candidate shrink steps, coarse first.  Each returns false when it
    // cannot shrink the field any further.
    using Mutation = std::function<bool(DiffConfig &)>;
    const std::vector<Mutation> mutations = {
        [](DiffConfig &c) {
            if (c.genCycles <= 50)
                return false;
            c.genCycles = std::max<Cycle>(50, c.genCycles / 2);
            return true;
        },
        [](DiffConfig &c) {
            if (c.rows <= 4)
                return false;
            --c.rows;
            return true;
        },
        [](DiffConfig &c) {
            if (c.cols <= 4)
                return false;
            --c.cols;
            return true;
        },
        [](DiffConfig &c) {
            if (c.numMcs <= 2)
                return false;
            --c.numMcs;
            return true;
        },
        [](DiffConfig &c) {
            if (!c.sliced)
                return false;
            c.sliced = false;
            return true;
        },
        [](DiffConfig &c) {
            if (c.collectiveRate == 0.0)
                return false;
            c.collectiveRate = 0.0;
            return true;
        },
        [](DiffConfig &c) {
            if (c.concentration <= 1)
                return false;
            c.concentration = 1;
            return true;
        },
        [](DiffConfig &c) {
            // xy/yx stay legal when the wrap links come off.
            if (c.topology != "torus")
                return false;
            c.topology = "mesh";
            return true;
        },
        [](DiffConfig &c) {
            if (c.vcsPerClass <= 1)
                return false;
            c.vcsPerClass = 1;
            return true;
        },
        [](DiffConfig &c) {
            if (c.protoClasses <= 1 || c.sliced)
                return false;
            c.protoClasses = 1;
            return true;
        },
        [](DiffConfig &c) {
            if (c.mcInjPorts == 1 && c.mcEjPorts == 1)
                return false;
            c.mcInjPorts = c.mcEjPorts = 1;
            return true;
        },
        [](DiffConfig &c) {
            if (!c.agePriority)
                return false;
            c.agePriority = false;
            return true;
        },
        [](DiffConfig &c) {
            if (c.vcDepth == 8)
                return false;
            c.vcDepth = 8;
            return true;
        },
        [](DiffConfig &c) {
            if (c.pipelineDepth == 4 && c.halfPipelineDepth == 3)
                return false;
            c.pipelineDepth = 4;
            c.halfPipelineDepth = 3;
            return true;
        },
        [](DiffConfig &c) {
            if (c.channelLatency <= 1)
                return false;
            c.channelLatency = 1;
            return true;
        },
    };

    bool improved = true;
    while (improved && trials < max_trials) {
        improved = false;
        for (const Mutation &m : mutations) {
            if (trials >= max_trials)
                break;
            DiffConfig candidate = best;
            if (!m(candidate) || !legalDiffConfig(candidate))
                continue;
            ++trials;
            if (!runDiff(candidate, opts).ok()) {
                best = candidate;
                improved = true;
            }
        }
    }
    return best;
}

} // namespace tenoc
