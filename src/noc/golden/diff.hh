/**
 * @file
 * Differential-testing harness: a legal-configuration space, an oracle
 * battery that compares the optimized simulator against the golden
 * models (see golden.hh) and against itself, and a greedy config
 * minimizer for failure repros.
 *
 * A DiffConfig is one point in the legal configuration space.  For
 * each point, runDiff() executes:
 *
 *  1. routing sweep — every (src, dst) pair's realized route is walked
 *     step by step through the real RoutingAlgorithm and compared with
 *     the golden model's independent reconstruction, plus legality
 *     (half-router turn rules) and minimality checks; unroutable
 *     checkerboard pairs must be exactly the full-to-full odd/odd
 *     offset pairs,
 *  2. zero-load probes — single packets on an idle network must meet
 *     the golden zero-load latency *exactly*,
 *  3. shadow run — seeded random traffic with a GoldenShadow auditing
 *     conservation and final statistics,
 *  4. determinism — an identical rerun must reproduce the statistics
 *     bit for bit,
 *  5. toggle invariance — idle-skip scheduling, invariant validation,
 *     and packet-pool bypass are pure optimizations/diagnostics; any
 *     combination must be bit-identical to the baseline,
 *  6. sliced equivalence — a DoubleNetwork must behave exactly like
 *     two independently simulated half-width slices fed the same
 *     traffic schedule.
 *
 * Configs serialize to a line-oriented `key = value` format so failing
 * repros can be checked into tests/corpus/ and replayed forever.
 */

#ifndef TENOC_NOC_GOLDEN_DIFF_HH
#define TENOC_NOC_GOLDEN_DIFF_HH

#include <string>
#include <vector>

#include "common/rng.hh"
#include "noc/mesh_network.hh"

namespace tenoc
{

/** One fuzzable configuration point (see file comment). */
struct DiffConfig
{
    unsigned rows = 6;
    unsigned cols = 6;
    unsigned numMcs = 8;
    /** Checkerboard organization: half-routers + MCs at half-router
     *  cells + CR routing (the three are only legal together). */
    bool checkerboard = false;
    std::string routing = "xy";
    /** "mesh" or "torus" (torus requires xy/yx dateline routing and
     *  excludes the checkerboard organization). */
    std::string topology = "mesh";
    /** Terminals per router (concentrated mesh/torus); 1 = classic. */
    unsigned concentration = 1;

    unsigned flitBytes = 16;
    unsigned protoClasses = 2;
    unsigned vcsPerClass = 1;
    unsigned vcDepth = 8;
    unsigned pipelineDepth = 4;
    unsigned halfPipelineDepth = 3;
    Cycle channelLatency = 1;
    unsigned mcInjPorts = 1;
    unsigned mcEjPorts = 1;
    bool agePriority = false;
    bool sliced = false;

    double rate = 0.02;     ///< per-node packet generation probability
    /** Per-compute-node probability of drawing a collective: a class-0
     *  multicast forked to a random prefix of the MC nodes (0 = no
     *  collective traffic; requires numMcs >= 2). */
    double collectiveRate = 0.0;
    Cycle genCycles = 500;  ///< traffic generation window
    std::uint64_t seed = 1;

    /** Expands to full network parameters. */
    MeshNetworkParams toNetParams() const;

    /** Line-oriented `key = value` form (stable across versions). */
    std::string serialize() const;

    /**
     * Parses serialize() output (unknown keys and malformed lines are
     * errors; missing keys keep their defaults).
     * @return true on success; on failure `err` explains why.
     */
    static bool parse(const std::string &text, DiffConfig &out,
                      std::string *err);
};

/** @return true if `cfg` violates none of the config-space rules. */
bool legalDiffConfig(const DiffConfig &cfg);

/** Draws a uniformly random *legal* configuration. */
DiffConfig sampleDiffConfig(Rng &rng);

/** Outcome of one oracle battery. */
struct DiffReport
{
    std::vector<std::string> violations;
    bool ok() const { return violations.empty(); }
};

struct DiffOptions
{
    /** Run all 8 idle-skip x validate x pool-bypass combinations
     *  instead of baseline + all-flipped (slower, used by tests). */
    bool thorough = false;
    /** Zero-load single-packet probes per config. */
    unsigned zeroLoadProbes = 32;
};

/** Runs the full oracle battery on one configuration. */
DiffReport runDiff(const DiffConfig &cfg, const DiffOptions &opts = {});

/**
 * Greedily shrinks a failing config toward smaller/simpler values
 * while it keeps failing, re-running the oracle battery per candidate
 * (at most `max_trials` times).  Returns the smallest still-failing
 * config found.
 */
DiffConfig minimizeConfig(const DiffConfig &bad,
                          const DiffOptions &opts = {},
                          unsigned max_trials = 48);

} // namespace tenoc

#endif // TENOC_NOC_GOLDEN_DIFF_HH
