/**
 * @file
 * Golden reference models for differential testing of the mesh NoC.
 *
 * The optimized simulator (4-stage pipelines, credit flow control,
 * idle-skip scheduling, pooled packets) is checked against two
 * deliberately simple references that share none of its machinery:
 *
 *  - GoldenModel: a global-knowledge route/timing oracle.  Given a
 *    packet whose header state was fixed at injection (mode,
 *    intermediate), it independently reconstructs the full hop
 *    sequence, judges its legality (adjacency, half-router turn
 *    restrictions) and minimality, and computes the exact zero-load
 *    latency the pipelined network must achieve on an idle mesh.
 *
 *  - GoldenShadow: a conservation bookkeeper that mirrors every
 *    injection and delivery into its own counters and replays the
 *    latency accumulation, then demands the network's NetStats agree
 *    exactly.  Any dropped, duplicated, or misrouted packet — or any
 *    delivery faster than physically possible — surfaces as a
 *    violation string.
 *
 * Neither model allocates per packet in steady state beyond a hash-map
 * entry, and neither reads any simulator internals: they observe only
 * the public inject/deliver boundary, which is what makes their
 * agreement meaningful.
 */

#ifndef TENOC_NOC_GOLDEN_GOLDEN_HH
#define TENOC_NOC_GOLDEN_GOLDEN_HH

#include <string>
#include <unordered_map>
#include <vector>

#include "noc/mesh_network.hh"

namespace tenoc
{

/** Global-knowledge route and zero-load timing oracle. */
class GoldenModel
{
  public:
    /**
     * @param topo the mesh topology (must outlive the model)
     * @param params the network configuration under test
     */
    GoldenModel(const Topology &topo, const MeshNetworkParams &params);

    /**
     * Independently rebuilds the node sequence (src .. dst inclusive)
     * a packet must traverse, from its post-initPacket header state
     * alone.  Two-phase legs follow the algorithm's documented
     * orientation: checkerboard routing runs YX to the waypoint then
     * XY; ROMM/Valiant run XY on both legs.
     */
    void reconstructRoute(const Packet &pkt,
                          std::vector<NodeId> &out) const;

    /**
     * Exact latency of `route` on an otherwise idle network:
     * the sum of per-hop router pipeline depths (half-routers use the
     * shorter pipeline) plus per-hop channel latency plus tail
     * serialization, measured NI-enqueue to tail-ejection.
     *
     * Exact only while the whole packet fits in one VC buffer
     * (vcDepth >= sizeFlits); shallower buffers stall the tail on the
     * credit round trip, making this a strict lower bound instead.
     */
    Cycle zeroLoadLatency(const std::vector<NodeId> &route,
                          unsigned size_flits) const;

    /**
     * Appends one violation string per defect found in `route` for
     * `pkt`: non-adjacent hops, wrong endpoints, a direction change at
     * a half-router, or a non-minimal leg (every algorithm here is
     * minimal per leg; Valiant is only non-minimal end to end).
     */
    void checkRoute(const Packet &pkt,
                    const std::vector<NodeId> &route,
                    std::vector<std::string> &violations) const;

    const MeshNetworkParams &params() const { return params_; }

  private:
    /** Appends the DOR walk from `from` to `to` (excluding `from`). */
    void appendDorLeg(NodeId from, NodeId to, bool x_first,
                      std::vector<NodeId> &out) const;

    /** Appends the torus dimension-order walk from `from` to `to`
     *  (excluding `from`): per-dimension shortest way around the ring,
     *  replicating TorusRouting's tie-break exactly. */
    void appendTorusLeg(NodeId from, NodeId to, bool x_first,
                        std::vector<NodeId> &out) const;

    const Topology &topo_;
    MeshNetworkParams params_;
};

/**
 * Conservation and latency shadow.  Call onInject() immediately after
 * Network::inject() (header routing state is set by then), onDeliver()
 * from every sink, and finalCheck() once the run ends.  Violations
 * accumulate in violations().
 */
class GoldenShadow
{
  public:
    GoldenShadow(const GoldenModel &model, const Topology &topo);

    /**
     * When set, deliveries must meet the zero-load latency *exactly*
     * instead of treating it as a lower bound.  Only valid for runs
     * with at most one packet in flight at a time.
     */
    void setExpectZeroLoad(bool on) { expect_zero_load_ = on; }

    void onInject(const Packet &pkt, Cycle now);
    void onDeliver(const Packet &pkt, NodeId at, Cycle now);

    /**
     * Cross-checks the network's aggregate statistics against the
     * shadow's own bookkeeping.  Exact equality everywhere: latency
     * samples are integer-valued doubles far below 2^53, so even the
     * running sums must match bit for bit.
     * @param drained pass Network::drained(); when true every injected
     *        packet must have been delivered.
     */
    void finalCheck(const NetStats &stats, bool drained);

    std::size_t inFlight() const { return inflight_.size(); }
    const std::vector<std::string> &violations() const
    {
        return violations_;
    }

  private:
    struct Expected
    {
        NodeId dst;
        unsigned sizeFlits;
        unsigned sizeBytes;
        Cycle created;
        Cycle zeroLoad;
    };

    void check(bool ok, std::string what);

    const GoldenModel &model_;
    const Topology &topo_;
    bool expect_zero_load_ = false;

    std::unordered_map<std::uint64_t, Expected> inflight_;
    std::vector<NodeId> route_scratch_;
    std::vector<std::string> violations_;

    // Shadow aggregates mirroring NetStats.
    std::uint64_t packets_in_ = 0, packets_out_ = 0;
    std::uint64_t flits_in_ = 0, flits_out_ = 0;
    std::vector<std::uint64_t> node_in_flits_, node_out_flits_;
    std::vector<std::uint64_t> node_in_bytes_, node_out_bytes_;
    std::uint64_t lat_count_ = 0;
    double lat_sum_ = 0.0, lat_min_ = 0.0, lat_max_ = 0.0;
};

} // namespace tenoc

#endif // TENOC_NOC_GOLDEN_GOLDEN_HH
